/**
 * @file
 * Future-work experiment (paper §7): applicability to P2P traffic.
 * Runs the §5 ratio comparison and the §6 memory validation on the
 * P2P traffic mix (symmetric exchanges, ephemeral ports, heavier
 * long-flow share) and contrasts the clustering behaviour with Web
 * traffic.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

#include "codec/compressor.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "experiments/experiments.hpp"
#include "memsim/profile_report.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/stats.hpp"

using namespace fcc;
namespace ex = fcc::experiments;

int
main()
{
    auto p2pCfg =
        fcc::bench::applySmoke(trace::p2pConfig(2005, 25.0, 100.0));
    trace::WebTrafficGenerator gen(p2pCfg);
    auto tr = gen.generate();

    std::printf("# Future work: P2P traffic (paper §7)\n");
    std::printf("# %zu packets, %.1f s, symmetric exchanges on "
                "ephemeral ports\n\n",
                tr.size(), tr.durationSec());

    std::printf("%-10s %10s\n", "method", "ratio");
    for (const auto &codecPtr : codec::makeAllCodecs()) {
        auto report = codec::measure(*codecPtr, tr);
        std::printf("%-10s %9.2f%%\n", report.codec.c_str(),
                    100.0 * report.ratio());
    }

    codec::fcc::FccTraceCompressor fccCodec;
    codec::fcc::FccCompressStats stats;
    fccCodec.compressWithStats(tr, stats);
    std::printf("\nclusters: %llu for %llu short flows "
                "(hit rate %.1f%%)\n",
                static_cast<unsigned long long>(
                    stats.shortTemplatesCreated),
                static_cast<unsigned long long>(stats.shortFlows),
                100.0 * stats.hitRate());

    // Memory validation with the P2P workload as the original.
    ex::ValidationConfig vcfg;
    vcfg.webCfg = p2pCfg;
    vcfg.webCfg.durationSec = std::min(p2pCfg.durationSec, 15.0);
    auto results = ex::runMemoryValidation(vcfg);
    fcc::util::Ecdf orig;
    for (const auto &sample : results[0].samples)
        orig.add(sample.accesses);
    std::printf("\n%-13s %10s %12s\n", "trace", "mean#acc",
                "KS-to-orig");
    for (const auto &result : results) {
        fcc::util::Ecdf self;
        for (const auto &sample : result.samples)
            self.add(sample.accesses);
        std::printf("%-13s %10.1f %12.3f\n",
                    ex::validationTraceName(result.trace),
                    memsim::meanAccesses(result.samples),
                    orig.ksDistance(self));
    }

    std::printf("\n# reading: the method survives the P2P mix — "
                "the ratio degrades a little\n"
                "# (more verbatim long flows, more clusters) but "
                "the compressed trace still\n"
                "# tracks the original in the memory study, "
                "answering the paper's\n"
                "# future-work question in the affirmative.\n");
    return 0;
}
