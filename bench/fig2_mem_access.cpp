/**
 * @file
 * E3 — Figure 2: cumulative traffic (%) against the number of
 * per-packet memory accesses of the Radix Tree Routing kernel, for
 * the four §6.1 traces: original, decompressed, random-address and
 * fracexp. Prints the CDF series plus the access-range shares the
 * paper quotes in the text.
 */

#include <cstdio>

#include "bench_common.hpp"

#include "experiments/experiments.hpp"
#include "memsim/profile_report.hpp"
#include "util/stats.hpp"

namespace ex = fcc::experiments;
namespace memsim = fcc::memsim;

int
main()
{
    ex::ValidationConfig cfg;
    cfg.webCfg.seed = 2005;
    cfg.webCfg.durationSec = 30.0;
    cfg.webCfg.flowsPerSec = 100.0;
    cfg.webCfg = fcc::bench::applySmoke(cfg.webCfg);
    cfg.kernel = ex::Kernel::Route;

    auto results = ex::runMemoryValidation(cfg);

    std::printf("# Figure 2: cumulative traffic vs per-packet memory "
                "accesses (Radix Tree Routing)\n");
    std::printf("# kernel=%s, routing table=%zu entries, packets "
                "per trace=%zu\n",
                ex::kernelName(cfg.kernel), cfg.routingEntries,
                results[0].samples.size());

    // Sampled CDF at fixed access counts, one column per trace.
    std::printf("%8s", "#accs");
    for (const auto &result : results)
        std::printf(" %13s", ex::validationTraceName(result.trace));
    std::printf("\n");
    for (uint32_t x = 5; x <= 100; x += 5) {
        std::printf("%8u", x);
        for (const auto &result : results) {
            fcc::util::Ecdf ecdf;
            for (const auto &sample : result.samples)
                ecdf.add(sample.accesses);
            std::printf(" %12.1f%%", 100.0 * ecdf.at(x));
        }
        std::printf("\n");
    }

    std::printf("\n# traffic share with 20..45 accesses "
                "(paper quotes 53..67 on its table/machine):\n");
    for (const auto &result : results)
        std::printf("  %-13s %5.1f%%\n",
                    ex::validationTraceName(result.trace),
                    100.0 * memsim::trafficShareInAccessRange(
                                result.samples, 20, 45));

    std::printf("\n# mean accesses per packet:\n");
    for (const auto &result : results)
        std::printf("  %-13s %6.1f\n",
                    ex::validationTraceName(result.trace),
                    memsim::meanAccesses(result.samples));

    // Kolmogorov-Smirnov distances against the original trace: the
    // quantitative form of "similar behavior".
    fcc::util::Ecdf orig;
    for (const auto &sample : results[0].samples)
        orig.add(sample.accesses);
    std::printf("\n# KS distance to original (lower = closer):\n");
    for (size_t i = 1; i < results.size(); ++i) {
        fcc::util::Ecdf other;
        for (const auto &sample : results[i].samples)
            other.add(sample.accesses);
        std::printf("  %-13s %.3f\n",
                    ex::validationTraceName(results[i].trace),
                    orig.ksDistance(other));
    }
    return 0;
}
