/**
 * @file
 * Adversarial scenario matrix bench: compression factor, throughput
 * and trace complexity (Avin et al.) for every hostile scenario in
 * trace/scenario_gen.hpp, across the container/backend cells.
 *
 * Every cell must reconstruct byte-identical TSH output (the codec
 * is lossy, so cross-cell equality — FCC2 vs FCC3 vs indexed — is
 * the round-trip property); any mismatch is a hard FAIL (exit 1).
 *
 * Run: ./build/bench/scenario_matrix [--smoke] [--json out.json]
 *
 * The JSON output feeds the CI scenario-matrix gate; see
 * scripts/perf_check.py and bench/scenario_baseline.json. The
 * compression factors and the round-trip flag are deterministic
 * given the seeds, so their floors trip on codec regressions, not
 * machine noise; throughput numbers are informational only (not in
 * the baseline).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "analysis/complexity.hpp"
#include "bench_common.hpp"
#include "codec/backend/backend.hpp"
#include "codec/fcc/stream.hpp"
#include "trace/scenario_gen.hpp"
#include "trace/tsh.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;
using backendEnum = fcc::codec::backend::EntropyBackend;

namespace {

/** Explicit TSH spec for the raw 44-byte record fixtures. */
const trace::TraceFormatSpec kTsh =
    trace::parseTraceFormatSpec("tsh");

double
secondsOf(const std::function<void()> &fn, int reps)
{
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::vector<uint8_t> bytes;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return bytes;
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

/** Bench-sized scenario config (smoke mode shrinks flow counts). */
trace::ScenarioConfig
benchConfig(trace::ScenarioKind kind, bool smoke)
{
    trace::ScenarioConfig cfg = trace::scenarioDefaults(kind, 2005);
    cfg.durationSec = smoke ? 3.0 : 20.0;
    switch (kind) {
    case trace::ScenarioKind::SynFlood: cfg.flows = 20000; break;
    case trace::ScenarioKind::PortScan: cfg.flows = 8000; break;
    case trace::ScenarioKind::Elephants: cfg.flows = 256; break;
    case trace::ScenarioKind::Incast: cfg.flows = 128; break;
    case trace::ScenarioKind::Reordering: cfg.flows = 3000; break;
    case trace::ScenarioKind::LossStorm: cfg.flows = 1200; break;
    case trace::ScenarioKind::MixedTail: cfg.flows = 4000; break;
    }
    if (smoke)
        cfg.flows = std::max<uint32_t>(8, cfg.flows / 16);
    return cfg;
}

struct Cell
{
    const char *label;   ///< table + metric suffix
    fccc::ContainerFormat container;
    backendEnum backend;
    bool index;
    bool gated;          ///< factor floor kept in the baseline
};

std::vector<Cell>
cells()
{
    return {
        {"fcc2", fccc::ContainerFormat::Fcc2, backendEnum::Deflate,
         false, true},
        {"fcc3", fccc::ContainerFormat::Fcc3, backendEnum::Deflate,
         false, true},
        {"fcc3_range", fccc::ContainerFormat::Fcc3,
         backendEnum::Range, false, false},
        {"fcc3_indexed", fccc::ContainerFormat::Fcc3,
         backendEnum::Deflate, true, false},
    };
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = bench::smokeMode();
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }
    bench::JsonMetrics metrics;
    const int reps = smoke ? 1 : 3;
    bool allRoundTrip = true;

    std::printf("# adversarial scenario matrix, seed=2005%s\n",
                smoke ? " (smoke mode)" : "");
    std::printf("# complexity: H = pair entropy (bits/pkt), "
                "T = temporal gap (bits/pkt)\n\n");
    std::printf("%-11s %8s %7s %6s %6s | %-12s %7s %9s %9s\n",
                "scenario", "packets", "flows", "H", "T", "cell",
                "factor", "comp MB/s", "dec MB/s");

    for (trace::ScenarioKind kind : trace::allScenarios()) {
        const char *name = trace::scenarioName(kind);
        trace::ScenarioConfig scfg = benchConfig(kind, smoke);
        trace::ScenarioGenerator gen(scfg);
        trace::Trace trace = gen.generate();

        auto cx = analysis::measureComplexity(trace);
        std::string tshPath =
            std::string("scenario_matrix_") + name + ".tsh";
        trace::writeTshFile(trace, tshPath);

        std::printf("%-11s %8zu %7llu %6.2f %6.2f |\n", name,
                    trace.size(),
                    static_cast<unsigned long long>(
                        gen.info().flows),
                    cx.pairEntropyBits, cx.temporalBitsPerPacket());

        std::vector<uint8_t> reference;
        for (const Cell &cell : cells()) {
            fccc::FccConfig cfg;
            cfg.container = cell.container;
            cfg.backend = cell.backend;
            cfg.index = cell.index;
            cfg.threads = 2;
            cfg.chunkRecords = smoke ? 64 : 512;

            std::string fccPath =
                std::string("scenario_matrix_") + name + ".fcc";
            std::string backPath =
                std::string("scenario_matrix_") + name + "_rt.tsh";

            fccc::StreamStats cstats;
            double compSec = secondsOf(
                [&] {
                    cstats = fccc::compressTraceFile(
                        tshPath, fccPath, cfg, kTsh);
                },
                reps);
            double decSec = secondsOf(
                [&] {
                    fccc::decompressTraceFile(fccPath, backPath,
                                              cfg, kTsh);
                },
                reps);

            // Round trip: all cells reconstruct identical bytes.
            std::vector<uint8_t> back = readFileBytes(backPath);
            bool ok = back.size() ==
                trace.size() * trace::tshRecordBytes;
            if (reference.empty())
                reference = back;
            else
                ok = ok && back == reference;
            if (!ok) {
                std::fprintf(stderr,
                             "FAIL: %s/%s reconstruction is not "
                             "byte-identical across cells\n",
                             name, cell.label);
                allRoundTrip = false;
            }

            double factor = cstats.outputBytes
                ? static_cast<double>(cstats.inputBytes) /
                    static_cast<double>(cstats.outputBytes)
                : 0.0;
            double inMb =
                static_cast<double>(cstats.inputBytes) / 1e6;
            std::printf("%-11s %8s %7s %6s %6s | %-12s %7.2f "
                        "%9.1f %9.1f\n",
                        "", "", "", "", "", cell.label, factor,
                        compSec > 0 ? inMb / compSec : 0.0,
                        decSec > 0 ? inMb / decSec : 0.0);

            std::string prefix = std::string("scn_") + name;
            if (cell.gated)
                metrics.add(prefix + "_factor_" + cell.label,
                            factor);
            if (std::strcmp(cell.label, "fcc2") == 0)
                metrics.add(prefix + "_compress_mbps",
                            compSec > 0 ? inMb / compSec : 0.0);

            std::remove(fccPath.c_str());
            std::remove(backPath.c_str());
        }

        std::string prefix = std::string("scn_") + name;
        metrics.add(prefix + "_roundtrip",
                    allRoundTrip ? 1.0 : 0.0);
        metrics.add(prefix + "_nontemporal_bits",
                    cx.pairEntropyBits);
        metrics.add(prefix + "_temporal_bits",
                    cx.temporalBitsPerPacket());
        std::remove(tshPath.c_str());
    }

    if (!jsonPath.empty()) {
        if (!metrics.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("\n# metrics written to %s\n", jsonPath.c_str());
    }
    if (!allRoundTrip) {
        std::fprintf(stderr,
                     "FAIL: scenario matrix round trip broken\n");
        return 1;
    }
    return 0;
}
