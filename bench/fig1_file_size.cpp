/**
 * @file
 * E1 — Figure 1: "File size comparison". Compressed file size (MB)
 * against elapsed trace time (seconds) for the original TSH file,
 * GZIP, Van Jacobson, Peuhkuri and the proposed flow-clustering
 * method. Regenerates the exact series the paper plots.
 */

#include <cstdio>

#include "bench_common.hpp"

#include "experiments/experiments.hpp"

int
main()
{
    fcc::trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = 100.0;
    cfg.flowsPerSec = 60.0;
    cfg = fcc::bench::applySmoke(cfg);

    std::vector<double> slices;
    for (int k = 1; k <= 10; ++k)
        slices.push_back(cfg.durationSec * k / 10.0);

    auto rows = fcc::experiments::runFileSizeComparison(cfg, slices);

    std::printf("# Figure 1: file size vs elapsed time\n");
    std::printf("# workload: synthetic web trace, seed=%llu, "
                "%.0f flows/s\n",
                static_cast<unsigned long long>(cfg.seed),
                cfg.flowsPerSec);
    std::printf("%8s %10s %12s %12s %12s %12s %12s\n", "time(s)",
                "packets", "original.MB", "gzip.MB", "vj.MB",
                "peuhkuri.MB", "proposed.MB");
    auto mb = [](uint64_t bytes) {
        return static_cast<double>(bytes) / 1e6;
    };
    for (const auto &row : rows) {
        std::printf("%8.0f %10llu %12.3f %12.3f %12.3f %12.3f "
                    "%12.3f\n",
                    row.elapsedSec,
                    static_cast<unsigned long long>(row.packets),
                    mb(row.originalTshBytes), mb(row.gzipBytes),
                    mb(row.vjBytes), mb(row.peuhkuriBytes),
                    mb(row.fccBytes));
    }

    const auto &last = rows.back();
    std::printf("\n# final ratios vs original TSH: gzip=%.1f%% "
                "vj=%.1f%% peuhkuri=%.1f%% proposed=%.1f%%\n",
                100.0 * last.gzipBytes / last.originalTshBytes,
                100.0 * last.vjBytes / last.originalTshBytes,
                100.0 * last.peuhkuriBytes / last.originalTshBytes,
                100.0 * last.fccBytes / last.originalTshBytes);
    std::printf("# paper reports:                gzip=50%%  vj=30%%  "
                "peuhkuri=16%%  proposed=3%%\n");
    return 0;
}
