/**
 * @file
 * Random-access microbenchmark: what does the chunk/flow index of a
 * seekable FCC3 archive save on the seed-2005 reference trace?
 *
 * Compresses the trace once as an indexed archive, then compares a
 * full decompression against indexed queries (single-flow
 * extraction, a time window): chunks decoded, archive bytes read
 * and wall time, plus the index's size overhead.
 *
 * Run: ./build/bench/micro_query [--smoke] [--json out.json]
 *
 * The JSON output feeds the CI perf-regression gate; see
 * scripts/perf_check.py and bench/perf_baseline.json. The
 * chunk/byte reductions are structural (deterministic given the
 * seed), so their floors trip on planner regressions, not on
 * machine noise.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "codec/fcc/datasets.hpp"
#include "codec/fcc/index.hpp"
#include "codec/fcc/stream.hpp"
#include "query/aggregate.hpp"
#include "query/catalog.hpp"
#include "query/expr.hpp"
#include "query/query.hpp"
#include "trace/packet.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

double
secondsOf(const std::function<void()> &fn, int reps)
{
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

void
printRow(const char *mode, const query::QueryStats &stats,
         double seconds, double fullSeconds)
{
    std::printf("%-14s %8llu/%-6llu %10.3f %8.1f%% %9.2f %8.2fx\n",
                mode,
                static_cast<unsigned long long>(stats.chunksDecoded),
                static_cast<unsigned long long>(stats.chunksTotal),
                static_cast<double>(stats.bytesRead) / 1e6,
                stats.fileBytes
                    ? 100.0 * static_cast<double>(stats.bytesRead) /
                          static_cast<double>(stats.fileBytes)
                    : 0.0,
                seconds * 1e3,
                seconds > 0 ? fullSeconds / seconds : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = bench::smokeMode();
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }
    bench::JsonMetrics metrics;
    const int reps = smoke ? 2 : 5;

    trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = smoke ? 3.0 : 60.0;
    cfg.flowsPerSec = smoke ? 60.0 : 200.0;
    trace::WebTrafficGenerator gen(cfg);
    trace::Trace trace = gen.generate();

    std::string tshPath = "micro_query_tmp.tsh";
    std::string fccPath = "micro_query_tmp.fcc";
    trace::writeTshFile(trace, tshPath);

    fccc::FccConfig fcfg;
    fcfg.container = fccc::ContainerFormat::Fcc3;
    fcfg.chunkRecords = smoke ? 32 : 256;
    fcfg.threads = 1;
    fcfg.index = true;
    auto cstats = fccc::compressTraceFile(tshPath, fccPath, fcfg);

    fccc::ContainerStat stat;
    query::FccArchive archive(fccPath, fcfg);

    std::printf("# random access vs full decode, seed=2005, "
                "%zu packets, %llu flows, %u-record chunks%s\n",
                trace.size(),
                static_cast<unsigned long long>(cstats.flows),
                fcfg.chunkRecords, smoke ? " (smoke mode)" : "");
    std::printf("# archive: %llu bytes (index included)\n\n",
                static_cast<unsigned long long>(
                    cstats.outputBytes));

    // Decode the datasets once to build predicates. The flow to
    // extract uses a server from the Zipf tail (the last address
    // is among the least popular — discovered, not hard-coded, so
    // the workload stays meaningful if the generator's popularity
    // model changes).
    fccc::Datasets d;
    {
        auto src = util::openByteSource(fccPath);
        std::vector<uint8_t> owned;
        d = fccc::deserialize(util::readAllBytes(*src, owned),
                              nullptr, &stat);
    }
    uint32_t rareIp = d.addresses.back();
    uint64_t midUs = d.timeSeq[d.timeSeq.size() / 2].firstTimestampUs;

    std::printf("%-14s %15s %10s %9s %9s %9s\n", "mode",
                "chunks dec/tot", "MB read", "% read", "ms",
                "speedup");

    query::Predicate all;
    query::QueryStats fullStats;
    double fullSec = secondsOf(
        [&] {
            query::NullTraceSink sink;
            fullStats = archive.run(all, sink,
                                    /*forceFullDecode=*/true);
        },
        reps);
    printRow("full decode", fullStats, fullSec, fullSec);

    query::Predicate flowPred;
    flowPred.serverIp = rareIp;
    query::QueryStats flowStats;
    double flowSec = secondsOf(
        [&] {
            query::NullTraceSink sink;
            flowStats = archive.run(flowPred, sink);
        },
        reps);
    printRow("--flow", flowStats, flowSec, fullSec);

    query::Predicate timePred;
    timePred.timeUs = {midUs, midUs + 1'000'000};
    query::QueryStats timeStats;
    double timeSec = secondsOf(
        [&] {
            query::NullTraceSink sink;
            timeStats = archive.run(timePred, sink);
        },
        reps);
    printRow("--time (1s)", timeStats, timeSec, fullSec);

    // ---- multi-archive catalog ---------------------------------
    // Three time-shifted copies of the archive, partitioned wider
    // than the longest reconstructed flow span (read off the index,
    // so the partitioning stays sound if the generator changes),
    // queried through the catalog with a window inside the middle
    // partition: two archives answer from their indexes alone.
    uint64_t spanUs = 0;
    {
        auto src = util::openByteSource(fccPath);
        std::vector<uint8_t> owned;
        auto idx =
            fccc::readArchiveIndex(util::readAllBytes(*src, owned));
        for (const fccc::ChunkSummary &c : idx->chunks)
            spanUs = std::max(spanUs, c.maxEndUs);
    }
    uint64_t shiftSec = spanUs / 1'000'000 + 2;
    std::vector<std::string> catalogPaths;
    for (int i = 0; i < 3; ++i) {
        std::vector<trace::PacketRecord> shifted = trace.packets();
        for (trace::PacketRecord &p : shifted)
            p.timestampNs += static_cast<uint64_t>(i) * shiftSec *
                             1'000'000'000ull;
        trace::Trace shiftedTrace(std::move(shifted));
        std::string member = "micro_query_tmp_cat" +
                             std::to_string(i) + ".fcc";
        trace::writeTshFile(shiftedTrace, tshPath);
        fccc::compressTraceFile(tshPath, member, fcfg);
        catalogPaths.push_back(member);
    }
    query::ArchiveCatalog catalog =
        query::ArchiveCatalog::fromPaths(catalogPaths, fcfg);
    query::Expr catalogExpr = query::parseExpr(
        "time within [" + std::to_string(shiftSec + 1) + ", " +
        std::to_string(shiftSec + 2) + "]");
    query::CatalogQueryStats catStats;
    double catSec = secondsOf(
        [&] {
            query::NullTraceSink sink;
            catStats = catalog.run(catalogExpr, sink);
        },
        reps);
    query::CatalogQueryStats catFullStats;
    double catFullSec = secondsOf(
        [&] {
            query::NullTraceSink sink;
            catFullStats = catalog.run(catalogExpr, sink,
                                       /*forceFullDecode=*/true);
        },
        reps);
    std::printf("%-14s %8llu/%-6llu %10.3f %8.1f%% %9.2f %8.2fx"
                "  (%llu/%llu archives pruned)\n",
                "catalog window",
                static_cast<unsigned long long>(
                    catStats.chunksDecoded),
                static_cast<unsigned long long>(
                    catStats.chunksTotal),
                static_cast<double>(catStats.bytesRead) / 1e6,
                catStats.fileBytes
                    ? 100.0 *
                          static_cast<double>(catStats.bytesRead) /
                          static_cast<double>(catStats.fileBytes)
                    : 0.0,
                catSec * 1e3,
                catSec > 0 ? catFullSec / catSec : 0.0,
                static_cast<unsigned long long>(
                    catStats.archivesPruned),
                static_cast<unsigned long long>(catStats.archives));

    // ---- aggregate without reconstruction ----------------------
    // Per-server flow counts for one subnet: answered from index
    // blocks plus the selected columns of planned chunks, never
    // expanding a packet.
    query::AggregateRequest aggReq;
    aggReq.kind = query::AggregateKind::FlowCounts;
    aggReq.expr = query::Expr::serverIn(rareIp, 24);
    query::AggregateResult aggResult;
    double aggSec = secondsOf(
        [&] { aggResult = archive.aggregate(aggReq); }, reps);
    std::printf("%-14s %8s/%-6s %10.3f %8.1f%% %9.2f %8.2fx"
                "  (reconstruction would read %.3f MB)\n",
                "agg /24 counts", "-", "-",
                static_cast<double>(aggResult.stats.bytesTouched) /
                    1e6,
                aggResult.stats.fileBytes
                    ? 100.0 *
                          static_cast<double>(
                              aggResult.stats.bytesTouched) /
                          static_cast<double>(
                              aggResult.stats.fileBytes)
                    : 0.0,
                aggSec * 1e3, aggSec > 0 ? fullSec / aggSec : 0.0,
                static_cast<double>(
                    aggResult.stats.reconstructBytes) /
                    1e6);

    std::printf("\nindex overhead: %llu bytes (%.2f%% of "
                "archive)\n",
                static_cast<unsigned long long>(stat.sizes.indexBytes),
                cstats.outputBytes
                    ? 100.0 * static_cast<double>(stat.sizes.indexBytes) /
                          static_cast<double>(cstats.outputBytes)
                    : 0.0);

    // Gate metrics (higher = better). The reductions are
    // deterministic properties of the planner on the seed workload;
    // the floors in bench/perf_baseline.json trip when a change
    // makes queries touch more chunks or bytes than they must.
    double chunkReduction = flowStats.chunksDecoded
        ? static_cast<double>(flowStats.chunksTotal) /
            static_cast<double>(flowStats.chunksDecoded)
        : 0.0;
    double bytesReduction = flowStats.bytesRead
        ? static_cast<double>(flowStats.fileBytes) /
            static_cast<double>(flowStats.bytesRead)
        : 0.0;
    metrics.add("query_flow_chunk_reduction", chunkReduction);
    metrics.add("query_flow_bytes_reduction", bytesReduction);
    metrics.add("query_flow_speedup",
                flowSec > 0 ? fullSec / flowSec : 0.0);

    // Catalog and aggregate cells: also structural. Time-partition
    // pruning must drop two of the three archives entirely, and an
    // aggregate must touch fewer bytes than the reconstruction it
    // replaces.
    metrics.add("query_catalog_bytes_reduction",
                catStats.bytesRead
                    ? static_cast<double>(catStats.fileBytes) /
                          static_cast<double>(catStats.bytesRead)
                    : 0.0);
    metrics.add("query_catalog_archives_pruned",
                static_cast<double>(catStats.archivesPruned));
    metrics.add("query_agg_bytes_reduction",
                aggResult.stats.bytesTouched
                    ? static_cast<double>(
                          aggResult.stats.reconstructBytes) /
                          static_cast<double>(
                              aggResult.stats.bytesTouched)
                    : 0.0);

    std::remove(tshPath.c_str());
    std::remove(fccPath.c_str());
    for (const std::string &member : catalogPaths)
        std::remove(member.c_str());

    if (flowStats.chunksDecoded >= flowStats.chunksTotal ||
        flowStats.bytesRead >= flowStats.fileBytes) {
        std::fprintf(stderr,
                     "FAIL: single-flow query did not beat the "
                     "full decode\n");
        return 1;
    }
    if (catStats.archivesPruned < 2) {
        std::fprintf(stderr,
                     "FAIL: time-partitioned catalog did not prune "
                     "the disjoint archives\n");
        return 1;
    }
    if (aggResult.stats.bytesTouched >=
        aggResult.stats.reconstructBytes) {
        std::fprintf(stderr,
                     "FAIL: aggregate touched no fewer bytes than "
                     "reconstruction\n");
        return 1;
    }

    if (!jsonPath.empty()) {
        if (!metrics.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("\n# metrics written to %s\n", jsonPath.c_str());
    }
    return 0;
}
