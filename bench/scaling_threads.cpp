/**
 * @file
 * Thread-scaling study of the sharded compression pipeline: wall
 * time, throughput (MB/s of TSH input, packets/s) and speedup of
 * FCC compression and decompression at 1/2/4/8 threads on the
 * synthetic web trace, plus a byte-identity check between every
 * thread count (the pipeline's determinism contract).
 *
 * Run: ./build/bench/scaling_threads [--smoke] [--json out.json]
 *
 * The JSON output feeds the CI perf-regression gate; see
 * scripts/perf_check.py.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/thread_pool.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

double
secondsOf(const std::function<void()> &fn, int reps)
{
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = bench::smokeMode();
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }
    bench::JsonMetrics metrics;

    trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = smoke ? 3.0 : 90.0;
    cfg.flowsPerSec = smoke ? 60.0 : 250.0;
    trace::WebTrafficGenerator gen(cfg);
    trace::Trace trace = gen.generate();

    double tshMb = static_cast<double>(trace.size() *
                                       trace::tshRecordBytes) /
                   1e6;
    unsigned hw = util::ThreadPool::hardwareThreads();
    std::printf("# thread scaling of the sharded FCC pipeline\n");
    std::printf("# workload: synthetic web trace, seed=%llu, "
                "%zu packets, %.1f MB as TSH%s\n",
                static_cast<unsigned long long>(cfg.seed),
                trace.size(), tshMb, smoke ? " (smoke mode)" : "");
    std::printf("# hardware threads: %u%s\n\n", hw,
                hw < 4 ? " — speedups are bounded by the machine, "
                         "not the pipeline"
                       : "");

    const int reps = smoke ? 1 : 3;
    const uint32_t threadCounts[] = {1, 2, 4, 8};

    std::vector<uint8_t> reference;
    double baseCompress = 0.0;
    std::printf("## compression\n");
    std::printf("%8s %10s %10s %12s %9s %10s\n", "threads", "time_s",
                "MB/s", "packets/s", "speedup", "identical");
    for (uint32_t t : threadCounts) {
        fccc::FccConfig fcfg;
        fcfg.threads = t;
        fccc::FccTraceCompressor codec(fcfg);
        std::vector<uint8_t> bytes;
        double sec = secondsOf([&] { bytes = codec.compress(trace); },
                               reps);
        if (t == 1) {
            reference = bytes;
            baseCompress = sec;
        }
        std::printf("%8u %10.3f %10.1f %12.0f %8.2fx %10s\n", t, sec,
                    tshMb / sec,
                    static_cast<double>(trace.size()) / sec,
                    baseCompress / sec,
                    bytes == reference ? "yes" : "NO!");
        metrics.add("fcc_compress_mbps_t" + std::to_string(t),
                    tshMb / sec);
    }

    double baseExpand = 0.0;
    std::printf("\n## decompression\n");
    std::printf("%8s %10s %10s %12s %9s\n", "threads", "time_s",
                "MB/s", "packets/s", "speedup");
    for (uint32_t t : threadCounts) {
        fccc::FccConfig fcfg;
        fcfg.threads = t;
        fccc::FccTraceCompressor codec(fcfg);
        trace::Trace restored;
        double sec = secondsOf(
            [&] { restored = codec.decompress(reference); }, reps);
        if (t == 1)
            baseExpand = sec;
        std::printf("%8u %10.3f %10.1f %12.0f %8.2fx\n", t, sec,
                    tshMb / sec,
                    static_cast<double>(restored.size()) / sec,
                    baseExpand / sec);
        metrics.add("fcc_decompress_mbps_t" + std::to_string(t),
                    tshMb / sec);
    }

    std::printf("\n# identical=yes on every row is the determinism "
                "contract: thread count\n# changes wall time only, "
                "never the compressed bytes.\n");

    if (!jsonPath.empty()) {
        if (!metrics.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("# metrics written to %s\n", jsonPath.c_str());
    }
    return 0;
}
