/**
 * @file
 * E4 — Figure 3: traffic (%) per cache-miss-rate bucket (0-5 %,
 * 5-10 %, 10-20 %, > 20 %) of the Radix Tree Routing kernel over the
 * four §6.1 traces.
 */

#include <cstdio>

#include "bench_common.hpp"

#include "experiments/experiments.hpp"
#include "memsim/profile_report.hpp"

namespace ex = fcc::experiments;
namespace memsim = fcc::memsim;

int
main()
{
    ex::ValidationConfig cfg;
    cfg.webCfg.seed = 2005;
    cfg.webCfg.durationSec = 30.0;
    cfg.webCfg.flowsPerSec = 100.0;
    cfg.webCfg = fcc::bench::applySmoke(cfg.webCfg);
    cfg.kernel = ex::Kernel::Route;
    // Geometry chosen so the original trace sits near the paper's
    // operating point (majority of packets below 5 % miss rate).
    cfg.cache.sizeBytes = 32 * 1024;
    cfg.cache.ways = 4;

    auto results = ex::runMemoryValidation(cfg);

    std::printf("# Figure 3: traffic per cache-miss-rate bucket "
                "(Radix Tree Routing)\n");
    std::printf("# cache: %u KB, %u-way, %u B lines\n",
                cfg.cache.sizeBytes / 1024, cfg.cache.ways,
                cfg.cache.lineBytes);

    std::printf("%-13s", "trace");
    for (size_t b = 0; b < memsim::MissRateBuckets::count; ++b)
        std::printf(" %9s", memsim::MissRateBuckets::label(b));
    std::printf("\n");

    for (const auto &result : results) {
        auto buckets = memsim::missRateBuckets(result.samples);
        std::printf("%-13s", ex::validationTraceName(result.trace));
        for (size_t b = 0; b < memsim::MissRateBuckets::count; ++b)
            std::printf(" %8.1f%%", 100.0 * buckets.share[b]);
        std::printf("\n");
    }

    std::printf("\n# paper: ~60%% of original/decompressed traffic "
                "below 5%% miss rate;\n"
                "# random shows almost none there (inverse in the "
                "5-10%% bucket);\n"
                "# the fractal trace stays low-miss like the "
                "original.\n");
    return 0;
}
