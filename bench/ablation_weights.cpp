/**
 * @file
 * Ablation — the characterization weights w = {w1, w2, w3}. The
 * paper uses {16, 4, 1} and notes the weights "give us a higher
 * degree of flexibility". Since the similarity threshold (eq. 4) is
 * defined on the weighted values, scaling weights up makes packets
 * look more different (more clusters); shrinking them does the
 * opposite. Only decodable (mixed-radix) weight vectors are legal.
 */

#include <cstdio>

#include "bench_common.hpp"

#include "codec/fcc/fcc_codec.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;

int
main()
{
    trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = 30.0;
    cfg.flowsPerSec = 100.0;
    cfg = fcc::bench::applySmoke(cfg);
    trace::WebTrafficGenerator gen(cfg);
    auto tr = gen.generate();
    uint64_t tshBytes = tr.size() * trace::tshRecordBytes;

    const flow::Weights candidates[] = {
        {7, 3, 1},    // smallest decodable code
        {16, 4, 1},   // the paper's choice
        {16, 8, 2},   // heavier dependence/size terms
        {32, 8, 2},   // paper's shape, scaled 2x
        {64, 16, 4},  // scaled 4x
    };

    std::printf("# Ablation: characterization weights "
                "(paper: {16,4,1})\n");
    std::printf("%14s %10s %10s %10s %10s\n", "weights", "ratio",
                "clusters", "hit-rate", "maxS");
    for (const auto &weights : candidates) {
        codec::fcc::FccConfig fccCfg;
        fccCfg.weights = weights;
        codec::fcc::FccTraceCompressor codec(fccCfg);
        codec::fcc::FccCompressStats stats;
        auto bytes = codec.compressWithStats(tr, stats);
        flow::Characterizer chi(weights);
        char label[24];
        std::snprintf(label, sizeof(label), "{%u,%u,%u}",
                      weights.w1, weights.w2, weights.w3);
        std::printf("%14s %9.2f%% %10llu %9.1f%% %10u\n", label,
                    100.0 * static_cast<double>(bytes.size()) /
                        static_cast<double>(tshBytes),
                    static_cast<unsigned long long>(
                        stats.shortTemplatesCreated),
                    100.0 * stats.hitRate(), chi.maxValue());
    }
    std::printf("\n# reading: scaling the weight vector scales all "
                "L1 distances while eq. 4's\n"
                "# threshold stays n*50*2%%, so larger weights mean "
                "finer clusters (more\n"
                "# templates, lower hit rate) and vice versa.\n");
    return 0;
}
