/**
 * @file
 * google-benchmark microbenchmarks: compression and decompression
 * throughput of the four trace codecs on a fixed synthetic web
 * trace. Items processed = packets.
 */

#include <benchmark/benchmark.h>

#include "codec/compressor.hpp"
#include "trace/tsh.hpp"
#include "codec/deflate/deflate.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/peuhkuri/peuhkuri.hpp"
#include "codec/vj/vj.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;

namespace {

const trace::Trace &
benchTrace()
{
    static trace::Trace tr = [] {
        trace::WebGenConfig cfg;
        cfg.seed = 99;
        cfg.durationSec = 8.0;
        cfg.flowsPerSec = 80.0;
        trace::WebTrafficGenerator gen(cfg);
        return gen.generate();
    }();
    return tr;
}

template <typename Codec>
void
compressBench(benchmark::State &state)
{
    Codec codec;
    const auto &tr = benchTrace();
    for (auto _ : state) {
        auto out = codec.compress(tr);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * tr.size()));
    state.SetBytesProcessed(static_cast<int64_t>(
        state.iterations() * tr.size() * trace::tshRecordBytes));
}

template <typename Codec>
void
decompressBench(benchmark::State &state)
{
    Codec codec;
    const auto &tr = benchTrace();
    auto compressed = codec.compress(tr);
    for (auto _ : state) {
        auto out = codec.decompress(compressed);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * tr.size()));
}

void
BM_Compress_Gzip(benchmark::State &state)
{
    compressBench<codec::deflate::GzipTraceCompressor>(state);
}

void
BM_Compress_Vj(benchmark::State &state)
{
    compressBench<codec::vj::VjTraceCompressor>(state);
}

void
BM_Compress_Peuhkuri(benchmark::State &state)
{
    compressBench<codec::peuhkuri::PeuhkuriTraceCompressor>(state);
}

void
BM_Compress_Fcc(benchmark::State &state)
{
    compressBench<codec::fcc::FccTraceCompressor>(state);
}

void
BM_Decompress_Gzip(benchmark::State &state)
{
    decompressBench<codec::deflate::GzipTraceCompressor>(state);
}

void
BM_Decompress_Vj(benchmark::State &state)
{
    decompressBench<codec::vj::VjTraceCompressor>(state);
}

void
BM_Decompress_Peuhkuri(benchmark::State &state)
{
    decompressBench<codec::peuhkuri::PeuhkuriTraceCompressor>(state);
}

void
BM_Decompress_Fcc(benchmark::State &state)
{
    decompressBench<codec::fcc::FccTraceCompressor>(state);
}

} // namespace

BENCHMARK(BM_Compress_Gzip)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Compress_Vj)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Compress_Peuhkuri)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Compress_Fcc)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decompress_Gzip)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decompress_Vj)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decompress_Peuhkuri)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decompress_Fcc)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
