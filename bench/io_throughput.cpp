/**
 * @file
 * Source/sink throughput of the streaming trace I/O subsystem:
 * MB/s and packets/s for writing and reading each supported capture
 * format (TSH, pcap, pcapng, gzip'd TSH and pcapng), plus the mmap
 * vs buffered-stdio read comparison for the flat formats.
 *
 * Run: ./build/bench/io_throughput [--smoke] [--scalar]
 *                                  [--json out.json]
 *
 * Read throughput is measured over *container* bytes consumed (for
 * the gzip formats that is the decompressed stream, the honest unit
 * of parser work). The JSON output feeds the CI perf-regression
 * gate; see scripts/perf_check.py.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "codec/deflate/deflate.hpp"
#include "trace/pcap.hpp"
#include "trace/pcapng.hpp"
#include "trace/source.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/io.hpp"

using namespace fcc;

namespace {

double
secondsOf(const std::function<void()> &fn, int reps)
{
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

struct ReadResult
{
    uint64_t packets = 0;
    uint64_t containerBytes = 0;
};

/** Drain a source built by @p open, counting packets and bytes. */
ReadResult
drain(const std::function<std::unique_ptr<trace::TraceSource>()> &open)
{
    auto src = open();
    ReadResult result;
    std::vector<trace::PacketRecord> batch(4096);
    size_t n;
    while ((n = src->read(batch)) > 0)
        result.packets += n;
    result.containerBytes = src->bytesConsumed();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = bench::smokeMode();
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--scalar") == 0)
            // Same effect as FCC_FORCE_SCALAR=1: every Auto
            // dispatch below resolves to the scalar path. Must run
            // before the first dispatch caches the env.
            ::setenv("FCC_FORCE_SCALAR", "1", 1);
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }

    trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = smoke ? 3.0 : 60.0;
    cfg.flowsPerSec = smoke ? 60.0 : 200.0;
    trace::WebTrafficGenerator gen(cfg);
    trace::Trace trace = gen.generate();
    const double packets = static_cast<double>(trace.size());

    std::printf("# streaming trace I/O throughput\n");
    std::printf("# workload: synthetic web trace, %zu packets%s\n\n",
                trace.size(), smoke ? " (smoke mode)" : "");
    std::printf("%-12s %12s %12s %14s\n", "format", "write_MB/s",
                "read_MB/s", "read_pkts/s");

    const int reps = smoke ? 1 : 3;
    bench::JsonMetrics metrics;

    struct Format
    {
        const char *name;
        bool gzip;
    };
    const Format formats[] = {
        {"tsh", false},     {"pcap", false},     {"pcapng", false},
        {"tsh.gz", true},   {"pcapng.gz", true},
    };

    for (const auto &fmt : formats) {
        std::string base(fmt.name);
        std::string inner = fmt.gzip
            ? base.substr(0, base.size() - 3)
            : base;
        std::string path = "io_throughput_tmp." + base;

        // --- write ---
        double writeSec = 0.0;
        if (!fmt.gzip) {
            trace::TraceFormatSpec spec =
                trace::parseTraceFormatSpec(inner);
            writeSec = secondsOf(
                [&] {
                    auto sink = trace::openTraceSink(path, spec);
                    trace::writeAllPackets(*sink, trace);
                },
                reps);
        } else {
            // gzip output is produced one-shot (the encoder is not
            // streaming); timed anyway for the table.
            writeSec = secondsOf(
                [&] {
                    std::vector<uint8_t> raw;
                    if (inner == "tsh")
                        raw = trace::writeTsh(trace);
                    else
                        raw = trace::writePcapng(trace);
                    auto gz = codec::deflate::gzipCompress(raw);
                    util::FileByteSink out(path);
                    out.write(gz);
                    out.close();
                },
                reps);
        }

        // --- read (auto-detected, mmap-preferred path) ---
        ReadResult rd;
        double readSec = secondsOf(
            [&] { rd = drain([&] {
                      return trace::openTraceSource(path);
                  }); },
            reps);

        double containerMb =
            static_cast<double>(rd.containerBytes) / 1e6;
        double writeMb = containerMb;  // same container either way
        std::printf("%-12s %12.1f %12.1f %14.0f\n", fmt.name,
                    writeMb / writeSec, containerMb / readSec,
                    packets / readSec);
        std::string key(fmt.name);
        for (auto &c : key)
            if (c == '.')
                c = '_';
        metrics.add("io_" + key + "_write_mbps", writeMb / writeSec);
        metrics.add("io_" + key + "_read_mbps",
                    containerMb / readSec);
        std::remove(path.c_str());
    }

    // --- mmap vs stdio vs readahead on the flat TSH container ---
    {
        std::string path = "io_throughput_tmp.stdio.tsh";
        auto sink = trace::openTraceSink(path);
        trace::writeAllPackets(*sink, trace);
        struct SourceKind
        {
            const char *label;
            const char *metric;
            int kind;  // 0 = mmap, 1 = stdio, 2 = readahead
        };
        const SourceKind kinds[] = {
            {"tsh (mmap)", "io_tsh_read_mmap_mbps", 0},
            {"tsh (stdio)", "io_tsh_read_stdio_mbps", 1},
            {"tsh (rahead)", "io_tsh_read_readahead_mbps", 2},
        };
        for (const SourceKind &k : kinds) {
            if (k.kind == 2 && !util::ReadaheadByteSource::supported())
                continue;
            ReadResult rd;
            double sec = secondsOf(
                [&] {
                    rd = drain([&] {
                        auto src =
                            k.kind == 2
                                ? std::unique_ptr<util::ByteSource>(
                                      std::make_unique<
                                          util::
                                              ReadaheadByteSource>(
                                          path))
                                : util::openByteSource(path,
                                                       k.kind == 0);
                        return std::make_unique<trace::TshSource>(
                            std::move(src));
                    });
                },
                reps);
            double mb = static_cast<double>(rd.containerBytes) / 1e6;
            std::printf("%-12s %12s %12.1f %14.0f\n", k.label, "-",
                        mb / sec, packets / sec);
            metrics.add(k.metric, mb / sec);
        }
        std::remove(path.c_str());
    }

    if (!jsonPath.empty()) {
        if (!metrics.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("\n# metrics written to %s\n", jsonPath.c_str());
    }
    return 0;
}
