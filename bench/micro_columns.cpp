/**
 * @file
 * Per-column microbenchmark of the FCC3 codec layer: encode and
 * decode throughput (MB/s of raw u64 column data) and compression
 * ratio for every field-codec × entropy-backend cell, measured on
 * the real columns of the seed-2005 synthetic web trace.
 *
 * Run: ./build/bench/micro_columns [--smoke] [--scalar]
 *                                  [--json out.json]
 *
 * Every codec row reports the scalar reference path next to the
 * dispatched (SWAR/interleaved) path, and the bench fails if their
 * output bytes ever differ. --scalar (or FCC_FORCE_SCALAR=1) makes
 * the dispatched column run the scalar path too — the CI A/B cell.
 *
 * The JSON output feeds the CI perf-regression gate; see
 * scripts/perf_check.py and bench/perf_baseline.json.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "codec/backend/backend.hpp"
#include "codec/backend/range_coder.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/field/field_codec.hpp"
#include "trace/web_gen.hpp"
#include "util/simd.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;
namespace field = fcc::codec::field;
namespace backend = fcc::codec::backend;

namespace {

double
secondsOf(const std::function<void()> &fn, int reps)
{
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

struct Column
{
    const char *name;
    std::vector<uint64_t> values;
};

/** The interesting FCC3 columns of the seed-2005 datasets. */
std::vector<Column>
buildColumns(const fccc::Datasets &d)
{
    std::vector<Column> cols;
    Column shortS{"short_s", {}};
    for (const auto &tmpl : d.shortTemplates)
        for (uint16_t s : tmpl.values)
            shortS.values.push_back(s);
    cols.push_back(std::move(shortS));

    Column longIpt{"long_ipt", {}};
    for (const auto &tmpl : d.longTemplates)
        longIpt.values.insert(longIpt.values.end(),
                              tmpl.iptUs.begin(), tmpl.iptUs.end());
    cols.push_back(std::move(longIpt));

    Column addr{"addr", {}};
    for (uint32_t a : d.addresses)
        addr.values.push_back(a);
    cols.push_back(std::move(addr));

    Column tsTime{"ts_time", {}};
    Column tsIsLong{"ts_islong", {}};
    Column tsTemplate{"ts_template", {}};
    Column tsRtt{"ts_rtt", {}};
    for (const auto &rec : d.timeSeq) {
        tsTime.values.push_back(rec.firstTimestampUs);
        tsIsLong.values.push_back(rec.isLong ? 1 : 0);
        tsTemplate.values.push_back(rec.templateIndex);
        if (!rec.isLong)
            tsRtt.values.push_back(rec.rttUs);
    }
    cols.push_back(std::move(tsTime));
    cols.push_back(std::move(tsIsLong));
    cols.push_back(std::move(tsTemplate));
    cols.push_back(std::move(tsRtt));
    return cols;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = bench::smokeMode();
    std::string jsonPath;
    // Auto already honors FCC_FORCE_SCALAR; --scalar is the explicit
    // command-line spelling of the same thing.
    util::Dispatch disp = util::Dispatch::Auto;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--scalar") == 0)
            disp = util::Dispatch::Scalar;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }
    bench::JsonMetrics metrics;
    const int reps = smoke ? 2 : 5;

    trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = smoke ? 3.0 : 60.0;
    cfg.flowsPerSec = smoke ? 60.0 : 200.0;
    trace::WebTrafficGenerator gen(cfg);
    trace::Trace trace = gen.generate();

    fccc::FccConfig fcfg;
    fcfg.threads = 1;
    fccc::FccTraceCompressor codec(fcfg);
    fccc::FccCompressStats stats;
    fccc::Datasets d = codec.buildDatasets(trace, stats);
    auto columns = buildColumns(d);

    std::printf("# per-column codec x backend study, seed=2005, "
                "%zu packets%s\n\n", trace.size(),
                smoke ? " (smoke mode)" : "");

    // ---- field codecs, per column ----
    const field::FieldCodec codecs[] = {
        field::FieldCodec::Plain, field::FieldCodec::ZigzagDelta,
        field::FieldCodec::Dict, field::FieldCodec::Rle};
    std::printf("## field codecs (raw MB = 8 B/value; "
                "scl = scalar, dsp = dispatched)\n");
    std::printf("%-12s %8s %-8s %9s %9s %9s %9s %8s %6s\n", "column",
                "values", "codec", "enc-scl", "enc-dsp", "dec-scl",
                "dec-dsp", "bytes", "ratio");
    for (const auto &col : columns) {
        double rawMb =
            static_cast<double>(col.values.size() * 8) / 1e6;
        field::FieldCodec chosen = field::chooseCodec(col.values);
        for (field::FieldCodec fc : codecs) {
            std::vector<uint8_t> scalarBytes;
            double encSclSec = secondsOf(
                [&] {
                    scalarBytes = field::encodeColumn(
                        col.values, fc, util::Dispatch::Scalar);
                },
                reps);
            std::vector<uint8_t> encoded;
            double encSec = secondsOf(
                [&] {
                    encoded =
                        field::encodeColumn(col.values, fc, disp);
                },
                reps);
            if (encoded != scalarBytes) {
                std::fprintf(stderr,
                             "dispatch MISMATCH (encode): %s/%s\n",
                             col.name, field::fieldCodecName(fc));
                return 1;
            }
            std::vector<uint64_t> scalarDecoded;
            double decSclSec = secondsOf(
                [&] {
                    scalarDecoded = field::decodeColumn(
                        encoded, fc, col.values.size(),
                        util::Dispatch::Scalar);
                },
                reps);
            std::vector<uint64_t> decoded;
            double decSec = secondsOf(
                [&] {
                    decoded = field::decodeColumn(
                        encoded, fc, col.values.size(), disp);
                },
                reps);
            if (decoded != col.values ||
                scalarDecoded != col.values) {
                std::fprintf(stderr, "round-trip MISMATCH: %s/%s\n",
                             col.name, field::fieldCodecName(fc));
                return 1;
            }
            double rawBytes =
                static_cast<double>(col.values.size() * 8);
            std::printf(
                "%-12s %8zu %-8s%s %8.1f %9.1f %9.1f %9.1f %8zu "
                "%5.1f%%\n",
                col.name, col.values.size(),
                field::fieldCodecName(fc), fc == chosen ? "*" : " ",
                encSclSec > 0 ? rawMb / encSclSec : 0.0,
                encSec > 0 ? rawMb / encSec : 0.0,
                decSclSec > 0 ? rawMb / decSclSec : 0.0,
                decSec > 0 ? rawMb / decSec : 0.0, encoded.size(),
                rawBytes > 0 ? 100.0 *
                                   static_cast<double>(
                                       encoded.size()) /
                                   rawBytes
                             : 0.0);
        }
    }
    std::printf("(* = chooseCodec pick)\n");

    // Gate metrics: the chosen codec on its signature column.
    auto gateField = [&](const char *colName, field::FieldCodec fc,
                         const char *metric) {
        for (const auto &col : columns) {
            if (std::strcmp(col.name, colName) != 0)
                continue;
            double rawMb =
                static_cast<double>(col.values.size() * 8) / 1e6;
            std::vector<uint8_t> encoded;
            double encSec = secondsOf(
                [&] {
                    encoded =
                        field::encodeColumn(col.values, fc, disp);
                },
                reps);
            double decSec = secondsOf(
                [&] {
                    field::decodeColumn(encoded, fc,
                                        col.values.size(), disp);
                },
                reps);
            metrics.add(std::string(metric) + "_enc_mbps",
                        encSec > 0 ? rawMb / encSec : 0.0);
            metrics.add(std::string(metric) + "_dec_mbps",
                        decSec > 0 ? rawMb / decSec : 0.0);
        }
    };
    gateField("ts_time", field::FieldCodec::ZigzagDelta,
              "col_zigzag");
    gateField("ts_islong", field::FieldCodec::Rle, "col_rle");
    gateField("ts_rtt", field::FieldCodec::Dict, "col_dict");
    gateField("long_ipt", field::FieldCodec::Plain, "col_plain");

    // ---- entropy backends, on the plain-encoded ts_time column ----
    std::printf("\n## entropy backends (input: varint ts_time)\n");
    std::printf("%-12s %9s %9s %8s %6s\n", "backend", "enc MB/s",
                "dec MB/s", "bytes", "ratio");
    const backend::EntropyBackend backends[] = {
        backend::EntropyBackend::Store,
        backend::EntropyBackend::Deflate,
        backend::EntropyBackend::Range,
        backend::EntropyBackend::RangeLanes};
    for (const auto &col : columns) {
        if (std::strcmp(col.name, "ts_time") != 0)
            continue;
        auto encoded = field::encodeColumn(col.values,
                                           field::FieldCodec::Plain);
        double inMb = static_cast<double>(encoded.size()) / 1e6;
        for (backend::EntropyBackend b : backends) {
            // The lanes backend takes an explicit dispatch so the
            // --scalar run exercises its reference path; all other
            // backends have a single implementation.
            bool lanes = b == backend::EntropyBackend::RangeLanes;
            std::vector<uint8_t> packed;
            double encSec = secondsOf(
                [&] {
                    packed = lanes ? backend::rangeCompressLanes(
                                         encoded, disp)
                                   : backend::entropyCompress(
                                         encoded, b);
                },
                reps);
            if (lanes &&
                packed != backend::rangeCompressLanes(
                              encoded, util::Dispatch::Scalar)) {
                std::fprintf(stderr,
                             "dispatch MISMATCH: range-lanes\n");
                return 1;
            }
            std::vector<uint8_t> unpacked;
            double decSec = secondsOf(
                [&] {
                    unpacked =
                        lanes ? backend::rangeDecompressLanes(
                                    packed, encoded.size(), disp)
                              : backend::entropyDecompress(
                                    packed, b, encoded.size());
                },
                reps);
            if (unpacked != encoded) {
                std::fprintf(stderr, "round-trip MISMATCH: %s\n",
                             backend::backendName(b));
                return 1;
            }
            std::printf("%-12s %9.1f %9.1f %8zu %5.1f%%\n",
                        backend::backendName(b),
                        encSec > 0 ? inMb / encSec : 0.0,
                        decSec > 0 ? inMb / decSec : 0.0,
                        packed.size(),
                        100.0 * static_cast<double>(packed.size()) /
                            static_cast<double>(encoded.size()));
            if (b != backend::EntropyBackend::Store) {
                std::string name =
                    std::string("backend_") +
                    backend::backendName(b);
                for (char &c : name)
                    if (c == '-')
                        c = '_';
                metrics.add(name + "_enc_mbps",
                            encSec > 0 ? inMb / encSec : 0.0);
                metrics.add(name + "_dec_mbps",
                            decSec > 0 ? inMb / decSec : 0.0);
            }
        }
    }

    if (!jsonPath.empty()) {
        if (!metrics.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("\n# metrics written to %s\n", jsonPath.c_str());
    }
    return 0;
}
