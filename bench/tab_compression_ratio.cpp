/**
 * @file
 * E2 — the §5 compression-ratio table: measured ratio of every
 * method against its analytical model (equations 5-8) evaluated on
 * the workload's own flow-length distribution.
 *
 * With --json the binary also emits compression *factors*
 * (uncompressed/compressed, higher = better) for the FCC containers
 * on the deterministic seed-2005 workload; the CI ratio-regression
 * gate compares them against bench/ratio_baseline.json so a codec
 * change cannot silently lose ratio (see scripts/perf_check.py).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"

#include "codec/fcc/fcc_codec.hpp"
#include "experiments/experiments.hpp"

int
main(int argc, char **argv)
{
    std::string jsonPath;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    fcc::bench::JsonMetrics metrics;

    fcc::trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = 40.0;
    cfg.flowsPerSec = 100.0;
    cfg = fcc::bench::applySmoke(cfg);

    auto rows = fcc::experiments::runRatioComparison(cfg);

    std::printf("# Section 5: compression ratio, measured vs "
                "analytical (eqs. 5-8)\n");
    std::printf("%-10s %12s %12s %10s\n", "method", "measured",
                "analytical", "paper");
    const char *paperValue[] = {"~50%", "~30%", "~16%", "~3%"};
    size_t i = 0;
    for (const auto &row : rows) {
        if (row.analytical > 0)
            std::printf("%-10s %11.2f%% %11.2f%% %10s\n",
                        row.method.c_str(), 100.0 * row.measured,
                        100.0 * row.analytical, paperValue[i]);
        else
            std::printf("%-10s %11.2f%% %12s %10s\n",
                        row.method.c_str(), 100.0 * row.measured,
                        "-", paperValue[i]);
        ++i;
    }

    // Extension: hybrid mode deflates the serialized datasets.
    fcc::trace::WebTrafficGenerator gen(cfg);
    auto trace = gen.generate();
    double tshBytes = static_cast<double>(trace.size() * 44);
    {
        fcc::codec::fcc::FccConfig hybridCfg;
        hybridCfg.deflateDatasets = true;
        fcc::codec::fcc::FccTraceCompressor hybrid(hybridCfg);
        double ratio =
            static_cast<double>(hybrid.compress(trace).size()) /
            tshBytes;
        std::printf("%-10s %11.2f%% %12s %10s\n", "fcc+deflate",
                    100.0 * ratio, "-", "(ours)");
    }

    // Extension: the columnar FCC3 container, per-column codecs +
    // deflate backend.
    {
        fcc::codec::fcc::FccConfig cfg3;
        cfg3.container = fcc::codec::fcc::ContainerFormat::Fcc3;
        fcc::codec::fcc::FccTraceCompressor fcc3(cfg3);
        size_t bytes = fcc3.compress(trace).size();
        double ratio = static_cast<double>(bytes) / tshBytes;
        std::printf("%-10s %11.2f%% %12s %10s\n", "fcc3",
                    100.0 * ratio, "-", "(ours)");
        metrics.add("fcc3_deflate_ratio_factor",
                    tshBytes / static_cast<double>(bytes));
    }

    // The FCC2 baseline factor the CI ratio gate tracks.
    {
        fcc::codec::fcc::FccTraceCompressor fcc2;
        size_t bytes = fcc2.compress(trace).size();
        metrics.add("fcc_ratio_factor",
                    tshBytes / static_cast<double>(bytes));
    }

    // Dataset-level accounting of the proposed method (§5: "8 bytes
    // are sufficient to represent each flow").
    fcc::codec::fcc::FccTraceCompressor fccCodec;
    fcc::codec::fcc::FccCompressStats stats;
    fccCodec.compressWithStats(trace, stats);
    std::printf("\n# proposed-method dataset breakdown\n");
    auto pct = [&stats](uint64_t bytes) {
        return 100.0 * static_cast<double>(bytes) /
               static_cast<double>(stats.sizes.total());
    };
    std::printf("short-flows-template: %8llu B (%5.1f%%)\n",
                static_cast<unsigned long long>(
                    stats.sizes.shortTemplateBytes),
                pct(stats.sizes.shortTemplateBytes));
    std::printf("long-flows-template:  %8llu B (%5.1f%%)\n",
                static_cast<unsigned long long>(
                    stats.sizes.longTemplateBytes),
                pct(stats.sizes.longTemplateBytes));
    std::printf("address:              %8llu B (%5.1f%%)\n",
                static_cast<unsigned long long>(
                    stats.sizes.addressBytes),
                pct(stats.sizes.addressBytes));
    std::printf("time-seq:             %8llu B (%5.1f%%)\n",
                static_cast<unsigned long long>(
                    stats.sizes.timeSeqBytes),
                pct(stats.sizes.timeSeqBytes));
    std::printf("time-seq bytes/flow:  %8.2f (paper: ~8)\n",
                static_cast<double>(stats.sizes.timeSeqBytes) /
                    static_cast<double>(stats.flows));
    std::printf("clusters: %llu for %llu short flows "
                "(hit rate %.1f%%)\n",
                static_cast<unsigned long long>(
                    stats.shortTemplatesCreated),
                static_cast<unsigned long long>(stats.shortFlows),
                100.0 * stats.hitRate());

    if (!jsonPath.empty()) {
        if (!metrics.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("# metrics written to %s\n", jsonPath.c_str());
    }
    return 0;
}
