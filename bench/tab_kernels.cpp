/**
 * @file
 * Extension of Figures 2/3 — the §6 validation across all three
 * benchmark kernels the paper names (Route, NAT, RTR): mean memory
 * accesses and KS distance to the original for every kernel x trace
 * combination.
 */

#include <cstdio>

#include "bench_common.hpp"

#include "experiments/experiments.hpp"
#include "memsim/profile_report.hpp"
#include "util/stats.hpp"

namespace ex = fcc::experiments;
namespace memsim = fcc::memsim;

int
main()
{
    std::printf("# Section 6 validation across kernels "
                "(Route/NAT from Netbench, RTR from Commbench)\n");
    std::printf("%-8s %-13s %10s %10s %12s\n", "kernel", "trace",
                "mean#acc", "missRate", "KS-to-orig");

    for (ex::Kernel kernel :
         {ex::Kernel::Route, ex::Kernel::Nat, ex::Kernel::Rtr}) {
        ex::ValidationConfig cfg;
        cfg.webCfg.seed = 2005;
        cfg.webCfg.durationSec = 15.0;
        cfg.webCfg.flowsPerSec = 100.0;
        cfg.webCfg = fcc::bench::applySmoke(cfg.webCfg);
        cfg.kernel = kernel;
        auto results = ex::runMemoryValidation(cfg);

        fcc::util::Ecdf orig;
        for (const auto &sample : results[0].samples)
            orig.add(sample.accesses);

        for (const auto &result : results) {
            fcc::util::Ecdf self;
            uint64_t accesses = 0, misses = 0;
            for (const auto &sample : result.samples) {
                self.add(sample.accesses);
                accesses += sample.accesses;
                misses += sample.misses;
            }
            std::printf("%-8s %-13s %10.1f %9.1f%% %12.3f\n",
                        ex::kernelName(kernel),
                        ex::validationTraceName(result.trace),
                        memsim::meanAccesses(result.samples),
                        accesses ? 100.0 *
                                       static_cast<double>(misses) /
                                       static_cast<double>(accesses)
                                 : 0.0,
                        orig.ksDistance(self));
        }
        std::printf("\n");
    }
    std::printf("# reading: for every kernel the decompressed trace "
                "stays close to the\n"
                "# original (small KS) while random/fracexp land "
                "far away — the paper's\n"
                "# conclusion is kernel-independent.\n");
    return 0;
}
