/**
 * @file
 * Measured-loss evaluation of the fidelity tiers (docs/FIDELITY.md):
 * for each tier x scenario, the compression ratio next to the
 * *downstream-analysis* error it buys — flow statistics (the
 * tab_flow_stats axes), the §6 semantic properties, the netbench
 * route-lookup miss-rate distribution and the Avin-style temporal
 * complexity, each compared against the exact tier's reconstruction
 * (so the numbers isolate fidelity-induced loss from the codec's
 * inherent model loss).
 *
 * Run: ./build/bench/fidelity_eval [--json out.json]
 * Smoke mode (FCC_BENCH_SMOKE=1) shrinks the scenarios for CI; the
 * JSON metrics are higher-is-better (ratios and 1/(1+error)
 * accuracies) so scripts/perf_check.py can gate them against
 * bench/fidelity_baseline.json.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"

#include "analysis/complexity.hpp"
#include "analysis/semantic.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "memsim/profile_report.hpp"
#include "netbench/apps.hpp"
#include "netbench/route_entry.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;
namespace fccc = fcc::codec::fcc;

namespace {

/** Relative error, safe at a zero reference. */
double
relErr(double value, double reference)
{
    if (reference == 0.0)
        return value == 0.0 ? 0.0 : 1.0;
    return std::fabs(value - reference) / std::fabs(reference);
}

/** Map an error (0 = perfect) onto a higher-is-better accuracy. */
double
accuracy(double err)
{
    return 1.0 / (1.0 + err);
}

/** The flow-statistic axes a downstream consumer reads first. */
struct FlowAxes
{
    double flows = 0;
    double packets = 0;
    double wireBytes = 0;
    double meanFlowLength = 0;
};

FlowAxes
flowAxesOf(const trace::Trace &tr)
{
    flow::FlowTable table;
    auto flows = table.assemble(tr);
    auto stats = flow::computeFlowStats(flows, tr);
    FlowAxes axes;
    axes.flows = static_cast<double>(stats.flows);
    axes.packets = static_cast<double>(stats.packets);
    axes.wireBytes = static_cast<double>(stats.wireBytes);
    axes.meanFlowLength = stats.meanFlowLength();
    return axes;
}

double
flowAxesError(const FlowAxes &a, const FlowAxes &ref)
{
    double err = relErr(a.flows, ref.flows);
    err = std::max(err, relErr(a.packets, ref.packets));
    err = std::max(err, relErr(a.wireBytes, ref.wireBytes));
    err = std::max(err,
                   relErr(a.meanFlowLength, ref.meanFlowLength));
    return err;
}

/** One number from the §6 semantic-comparison axes (0 = identical). */
double
semanticError(const trace::Trace &reference, const trace::Trace &tr)
{
    analysis::SemanticComparison cmp =
        analysis::compareSemantics(reference, tr);
    return cmp.reuseDistanceKs + cmp.coldFractionGap +
           std::fabs(cmp.workingSetRatio - 1.0) +
           cmp.bitEntropyGap + cmp.flagBigramTv;
}

/** Netbench route kernel: traffic share per miss-rate bucket. */
memsim::MissRateBuckets
lookupBuckets(const trace::Trace &tr,
              const std::vector<netbench::RouteEntry> &table)
{
    memsim::CacheConfig cache;
    cache.sizeBytes = 32 * 1024;
    cache.ways = 4;
    memsim::MemoryRecorder recorder(cache);
    netbench::RouteApp app(table, &recorder);
    auto samples = netbench::profileTrace(app, tr, recorder);
    return memsim::missRateBuckets(samples);
}

/** Total-variation distance between two bucket distributions. */
double
bucketTv(const memsim::MissRateBuckets &a,
         const memsim::MissRateBuckets &b)
{
    double tv = 0;
    for (size_t i = 0; i < memsim::MissRateBuckets::count; ++i)
        tv += std::fabs(a.share[i] - b.share[i]);
    return tv / 2.0;
}

struct Scenario
{
    const char *name;
    trace::WebGenConfig cfg;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }

    std::vector<Scenario> scenarios;
    {
        Scenario web{"web", {}};
        web.cfg.seed = 2005;
        web.cfg.durationSec = 20.0;
        web.cfg.flowsPerSec = 80.0;
        scenarios.push_back(web);

        Scenario dense{"dense", {}};
        dense.cfg.seed = 77;
        dense.cfg.durationSec = 10.0;
        dense.cfg.flowsPerSec = 200.0;
        scenarios.push_back(dense);
    }

    const fccc::Fidelity tiers[] = {
        fccc::Fidelity::Exact, fccc::Fidelity::Quantized,
        fccc::Fidelity::Header, fccc::Fidelity::Flow};

    fcc::bench::JsonMetrics metrics;
    std::printf("# Fidelity tiers: ratio vs downstream-analysis "
                "error (vs the exact tier's decode)\n");
    std::printf("%-7s %-10s %8s %10s %10s %10s %10s\n", "scen",
                "tier", "ratio", "flowstats", "semantic", "lookup",
                "complex");

    for (const Scenario &scenario : scenarios) {
        trace::WebGenConfig webCfg =
            fcc::bench::applySmoke(scenario.cfg);
        trace::WebTrafficGenerator gen(webCfg);
        trace::Trace original = gen.generate();
        double tshBytes = static_cast<double>(
            original.size() * trace::tshRecordBytes);

        // Exact-tier reconstruction: the reference every lossy tier
        // is scored against.
        fccc::FccConfig exactCfg;
        exactCfg.container = fccc::ContainerFormat::Fcc3;
        fccc::FccTraceCompressor exactCodec(exactCfg);
        trace::Trace exactDecode =
            exactCodec.decompress(exactCodec.compress(original));

        FlowAxes refAxes = flowAxesOf(exactDecode);
        std::vector<uint32_t> refAddrs;
        refAddrs.reserve(exactDecode.size());
        for (const trace::PacketRecord &pkt : exactDecode)
            refAddrs.push_back(pkt.dstIp);
        auto routeTable =
            netbench::generateRoutingTable(1000, 99, refAddrs);
        memsim::MissRateBuckets refBuckets =
            lookupBuckets(exactDecode, routeTable);
        double refComplex =
            analysis::measureComplexity(exactDecode)
                .temporalBitsPerPacket();

        for (fccc::Fidelity tier : tiers) {
            fccc::FccConfig cfg;
            cfg.container = fccc::ContainerFormat::Fcc3;
            cfg.fidelity = tier;
            fccc::FccTraceCompressor codec(cfg);
            std::vector<uint8_t> compressed =
                codec.compress(original);
            double ratio =
                tshBytes / static_cast<double>(compressed.size());

            std::string prefix = std::string("fidelity_") +
                                 scenario.name + "_" +
                                 fccc::fidelityName(tier);
            metrics.add(prefix + "_ratio", ratio);

            if (tier == fccc::Fidelity::Flow) {
                // No packets to reconstruct: score the flow axes
                // straight from the stored per-flow records.
                fccc::Datasets d =
                    fccc::deserializeAuto(compressed, 0);
                FlowAxes axes;
                axes.flows =
                    static_cast<double>(d.flowRecords.size());
                double packets = 0, wireBytes = 0, lenSum = 0;
                for (const fccc::FlowRecord &fl : d.flowRecords) {
                    packets += fl.packets;
                    wireBytes += static_cast<double>(
                        fl.payloadBytes + 40.0 * fl.packets);
                    lenSum += fl.packets;
                }
                axes.packets = packets;
                axes.wireBytes = wireBytes;
                axes.meanFlowLength =
                    axes.flows ? lenSum / axes.flows : 0.0;
                double flowErr = flowAxesError(axes, refAxes);
                metrics.add(prefix + "_flowstats_acc",
                            accuracy(flowErr));
                std::printf("%-7s %-10s %8.2f %10.4f %10s %10s "
                            "%10s\n",
                            scenario.name, fccc::fidelityName(tier),
                            ratio, flowErr, "n/a", "n/a", "n/a");
                continue;
            }

            trace::Trace decoded = codec.decompress(compressed);
            double flowErr =
                flowAxesError(flowAxesOf(decoded), refAxes);
            double semErr = semanticError(exactDecode, decoded);
            double lookupErr = bucketTv(
                lookupBuckets(decoded, routeTable), refBuckets);
            double complexErr = relErr(
                analysis::measureComplexity(decoded)
                    .temporalBitsPerPacket(),
                refComplex);

            metrics.add(prefix + "_flowstats_acc",
                        accuracy(flowErr));
            metrics.add(prefix + "_semantic_acc",
                        accuracy(semErr));
            metrics.add(prefix + "_lookup_acc",
                        accuracy(lookupErr));
            metrics.add(prefix + "_complexity_acc",
                        accuracy(complexErr));
            std::printf("%-7s %-10s %8.2f %10.4f %10.4f %10.4f "
                        "%10.4f\n",
                        scenario.name, fccc::fidelityName(tier),
                        ratio, flowErr, semErr, lookupErr,
                        complexErr);
        }
    }

    std::printf("\n# flowstats/semantic/lookup/complex are errors "
                "(0 = matches the exact tier);\n"
                "# the flow tier has no packet stream, so only its "
                "flow axes are scored.\n");

    if (!jsonPath.empty()) {
        if (!metrics.writeTo(jsonPath)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("\n# metrics written to %s\n", jsonPath.c_str());
    }
    return 0;
}
