/**
 * @file
 * google-benchmark microbenchmarks of the from-scratch DEFLATE:
 * compression/decompression throughput on TSH trace bytes, compared
 * against system zlib when available.
 */

#include <benchmark/benchmark.h>

#include "codec/deflate/deflate.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"

#if __has_include(<zlib.h>)
#include <zlib.h>
#define FCC_HAVE_ZLIB 1
#endif

using namespace fcc;

namespace {

const std::vector<uint8_t> &
tshBytes()
{
    static std::vector<uint8_t> bytes = [] {
        trace::WebGenConfig cfg;
        cfg.seed = 77;
        cfg.durationSec = 6.0;
        cfg.flowsPerSec = 80.0;
        trace::WebTrafficGenerator gen(cfg);
        return trace::writeTsh(gen.generate());
    }();
    return bytes;
}

void
BM_OurDeflate(benchmark::State &state)
{
    const auto &data = tshBytes();
    for (auto _ : state) {
        auto out = codec::deflate::deflateCompress(data);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * data.size()));
}

void
BM_OurInflate(benchmark::State &state)
{
    const auto &data = tshBytes();
    auto compressed = codec::deflate::deflateCompress(data);
    for (auto _ : state) {
        auto out = codec::deflate::inflate(compressed);
        benchmark::DoNotOptimize(out);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * data.size()));
}

#ifdef FCC_HAVE_ZLIB
void
BM_ZlibDeflate(benchmark::State &state)
{
    const auto &data = tshBytes();
    uLongf bound = ::compressBound(static_cast<uLong>(data.size()));
    std::vector<uint8_t> out(bound);
    for (auto _ : state) {
        uLongf len = bound;
        ::compress2(out.data(), &len, data.data(),
                    static_cast<uLong>(data.size()), 6);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * data.size()));
}

void
BM_ZlibInflate(benchmark::State &state)
{
    const auto &data = tshBytes();
    uLongf bound = ::compressBound(static_cast<uLong>(data.size()));
    std::vector<uint8_t> compressed(bound);
    uLongf compLen = bound;
    ::compress2(compressed.data(), &compLen, data.data(),
                static_cast<uLong>(data.size()), 6);
    std::vector<uint8_t> out(data.size());
    for (auto _ : state) {
        uLongf len = out.size();
        ::uncompress(out.data(), &len, compressed.data(), compLen);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * data.size()));
}
#endif  // FCC_HAVE_ZLIB

} // namespace

BENCHMARK(BM_OurDeflate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OurInflate)->Unit(benchmark::kMillisecond);
#ifdef FCC_HAVE_ZLIB
BENCHMARK(BM_ZlibDeflate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ZlibInflate)->Unit(benchmark::kMillisecond);
#endif

BENCHMARK_MAIN();
