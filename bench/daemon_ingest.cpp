/**
 * @file
 * Archiver-daemon ingest throughput: MB/s of the archive::Daemon
 * loop over a replayed TSH capture, with and without chunk/archive
 * rotation, plus the structural warm-re-arm check — a template
 * store carried across seal()/reArm() must create fewer clusters in
 * the second epoch than a cold restart does.
 *
 * Run: ./build/bench/daemon_ingest [--smoke] [--json out.json]
 *
 * The rotation cell uses aggressive bounds (an archive every ~1/8
 * of the trace, a chunk cut every 512 records) so the measured gap
 * against the single-archive baseline is the cost of the seal /
 * fsync / re-arm machinery itself. The warm-re-arm check is
 * structural (cluster counts, not wall time) and hard-fails the
 * binary — CI trips on a broken carry path even in smoke mode.
 * JSON output feeds the CI perf gate; see scripts/perf_check.py.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>

#include "bench_common.hpp"
#include "archive/daemon.hpp"
#include "codec/fcc/session.hpp"
#include "trace/source.hpp"
#include "trace/trace.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/io.hpp"

using namespace fcc;
namespace fs = std::filesystem;

namespace {

double
secondsOf(const std::function<void()> &fn, int reps)
{
    double best = 1e100;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        best = std::min(
            best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/** One timed daemon run over @p input into a fresh directory. */
archive::DaemonReport
runOnce(const std::string &input, const std::string &outDir,
        const archive::RotationPolicy &rotation)
{
    fs::remove_all(outDir);
    fs::create_directories(outDir);
    archive::DaemonConfig cfg;
    cfg.input = input;
    cfg.inputFormat = trace::parseTraceFormatSpec("tsh");
    cfg.outputDir = outDir;
    cfg.codec.container = codec::fcc::ContainerFormat::Fcc3;
    cfg.codec.index = true;
    cfg.rotation = rotation;
    archive::DaemonControl control;
    return archive::Daemon(cfg).run(control);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = bench::smokeMode();
    std::string jsonPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            jsonPath = argv[++i];
    }

    trace::WebGenConfig gen;
    gen.seed = 2005;
    gen.durationSec = smoke ? 3.0 : 30.0;
    gen.flowsPerSec = smoke ? 60.0 : 200.0;
    trace::Trace trace = trace::WebTrafficGenerator(gen).generate();

    const std::string input = "daemon_ingest_tmp.tsh";
    const std::string outDir = "daemon_ingest_tmp.out";
    {
        auto sink = trace::openTraceSink(
            input, trace::parseTraceFormatSpec("tsh"));
        trace::writeAllPackets(*sink, trace);
    }
    const double inputMb =
        static_cast<double>(fs::file_size(input)) / 1e6;

    std::printf("# archiver daemon ingest throughput\n");
    std::printf("# workload: %zu packets, %.1f MB TSH%s\n\n",
                trace.size(), inputMb,
                smoke ? " (smoke mode)" : "");

    const int reps = smoke ? 1 : 3;
    bench::JsonMetrics metrics;

    // --- baseline: one epoch, no rotation -------------------------
    archive::DaemonReport report;
    double baseSec = secondsOf(
        [&] { report = runOnce(input, outDir, {}); }, reps);
    double baseMbps = inputMb / baseSec;
    std::printf("%-22s %8.1f MB/s  (%llu archive)\n",
                "ingest (no rotation)", baseMbps,
                static_cast<unsigned long long>(
                    report.sealed.size()));
    metrics.add("daemon_ingest_mbps", baseMbps);

    // --- rotating: frequent chunk cuts + archive rollover ---------
    archive::RotationPolicy rotation;
    rotation.chunkRecords = 512;
    rotation.archiveRecords = std::max<uint64_t>(
        trace.size() / 8, 1);
    double rotSec = secondsOf(
        [&] { report = runOnce(input, outDir, rotation); }, reps);
    double rotMbps = inputMb / rotSec;
    std::printf("%-22s %8.1f MB/s  (%llu archives, %llu chunks)\n",
                "ingest (rotating)", rotMbps,
                static_cast<unsigned long long>(
                    report.sealed.size()),
                static_cast<unsigned long long>(
                    report.stats.chunksSealed));
    std::printf("%-22s %8.2fx\n", "rotation overhead",
                baseSec > 0 ? rotSec / baseSec : 0.0);
    metrics.add("daemon_ingest_rotating_mbps", rotMbps);

    // --- structural: warm re-arm vs cold restart ------------------
    // Same split input through a carried-store session and a cold
    // one; the carried store must re-use earlier clusters, so its
    // second epoch creates strictly fewer than the cold restart's.
    {
        size_t half = trace.size() / 2;
        std::span<const trace::PacketRecord> all(trace.packets());
        std::span<const trace::PacketRecord> first =
            all.subspan(0, half);
        std::span<const trace::PacketRecord> second =
            all.subspan(half);
        codec::fcc::FccConfig cfg;
        cfg.container = codec::fcc::ContainerFormat::Fcc3;

        auto secondEpochTemplates = [&](bool carry) {
            codec::fcc::SessionOptions opt;
            opt.carryTemplates = carry;
            codec::fcc::CompressSession session(cfg, opt);
            session.feed(first);
            codec::fcc::SealInfo info;
            session.seal(&info);
            session.reArm();
            session.feed(second);
            session.seal(&info);
            return info.templatesNew;
        };
        uint64_t warm = secondEpochTemplates(true);
        uint64_t cold = secondEpochTemplates(false);
        std::printf("%-22s %8llu clusters (cold %llu)\n",
                    "warm re-arm epoch 2",
                    static_cast<unsigned long long>(warm),
                    static_cast<unsigned long long>(cold));
        if (warm >= cold) {
            std::fprintf(stderr,
                         "FAIL: carried template store created %llu "
                         "clusters in epoch 2, cold restart %llu — "
                         "the carry path is not re-using clusters\n",
                         static_cast<unsigned long long>(warm),
                         static_cast<unsigned long long>(cold));
            return 1;
        }
        metrics.add("daemon_warm_template_reduction",
                    static_cast<double>(cold) /
                        static_cast<double>(std::max<uint64_t>(
                            warm, 1)));
    }

    fs::remove_all(outDir);
    fs::remove(input);

    if (!jsonPath.empty()) {
        if (!metrics.writeTo(jsonPath)) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        std::printf("\n# metrics written to %s\n", jsonPath.c_str());
    }
    return 0;
}
