/**
 * @file
 * Shared helpers for the self-contained bench binaries.
 *
 * Smoke mode (FCC_BENCH_SMOKE=1 in the environment) shrinks every
 * workload so each binary finishes in a couple of seconds — CI runs
 * the whole bench/ directory this way on every PR so the binaries
 * cannot silently rot. Numbers produced under smoke mode are for
 * liveness only, not for quoting.
 */

#ifndef FCC_BENCH_BENCH_COMMON_HPP
#define FCC_BENCH_BENCH_COMMON_HPP

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "trace/web_gen.hpp"

namespace fcc::bench {

/** True when the FCC_BENCH_SMOKE environment toggle is set. */
inline bool
smokeMode()
{
    const char *env = std::getenv("FCC_BENCH_SMOKE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/**
 * Shrink a workload for smoke mode; returns the (possibly adjusted)
 * config so call sites stay one-liners. No-op outside smoke mode.
 */
inline trace::WebGenConfig
applySmoke(trace::WebGenConfig cfg)
{
    if (smokeMode()) {
        cfg.durationSec = std::min(cfg.durationSec, 3.0);
        cfg.flowsPerSec = std::min(cfg.flowsPerSec, 60.0);
    }
    return cfg;
}

/** Repetition count for timing loops: 1 in smoke mode, else @p n. */
inline int
smokeReps(int n)
{
    return smokeMode() ? 1 : n;
}

/**
 * Flat name -> value metric collection, written as a one-level JSON
 * object. The CI perf-regression gate (scripts/perf_check.py) merges
 * these files and compares them against bench/perf_baseline.json.
 */
class JsonMetrics
{
  public:
    void
    add(const std::string &name, double value)
    {
        metrics_.emplace_back(name, value);
    }

    /** Write the collected metrics; returns false on I/O failure. */
    bool
    writeTo(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (f == nullptr)
            return false;
        std::fprintf(f, "{\n");
        for (size_t i = 0; i < metrics_.size(); ++i)
            std::fprintf(f, "  \"%s\": %.6g%s\n",
                         metrics_[i].first.c_str(),
                         metrics_[i].second,
                         i + 1 < metrics_.size() ? "," : "");
        std::fprintf(f, "}\n");
        return std::fclose(f) == 0;
    }

  private:
    std::vector<std::pair<std::string, double>> metrics_;
};

} // namespace fcc::bench

#endif // FCC_BENCH_BENCH_COMMON_HPP
