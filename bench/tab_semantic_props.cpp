/**
 * @file
 * Extension experiment — the §1 semantic properties measured
 * directly: temporal locality (reuse distances), spatial locality
 * (working set), IP address structure (prefix counts, bit entropy)
 * and TCP flag sequencing, for the original trace and the three
 * §6.1 comparison traces. This quantifies *why* the memory-study
 * figures separate the traces the way they do.
 */

#include <cstdio>

#include "bench_common.hpp"

#include "analysis/semantic.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "trace/transforms.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;

int
main()
{
    trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = 20.0;
    cfg.flowsPerSec = 100.0;
    cfg = fcc::bench::applySmoke(cfg);
    trace::WebTrafficGenerator gen(cfg);
    trace::Trace original = gen.generate();

    codec::fcc::FccTraceCompressor fccCodec;
    trace::Trace decompressed =
        fccCodec.decompress(fccCodec.compress(original));

    // Our direction-aware extension: reconstructed server-to-client
    // packets carry the client as destination.
    codec::fcc::FccConfig dirCfg;
    dirCfg.directionAwareAddresses = true;
    codec::fcc::FccTraceCompressor dirCodec(dirCfg);
    trace::Trace decompDir =
        dirCodec.decompress(dirCodec.compress(original));

    trace::Trace random = trace::randomizeAddresses(original, 41);
    trace::FracExpConfig fracCfg;
    fracCfg.seed = 42;
    fracCfg.packetCount = original.size();
    trace::Trace fracexp = trace::generateFracExp(fracCfg);

    struct Row
    {
        const char *name;
        const trace::Trace *tracePtr;
    };
    const Row rows[] = {
        {"original", &original},
        {"decompressed", &decompressed},
        {"decomp(dir)", &decompDir},
        {"random", &random},
        {"fracexp", &fracexp},
    };

    std::printf("# Semantic properties of the four traces "
                "(paper §1 definitions)\n\n");
    std::printf("%-13s %9s %8s %8s %8s %8s %10s %9s\n", "trace",
                "addrs", "/8", "/16", "/24", "bitH", "reuse.p50",
                "WS(1k)");
    for (const auto &row : rows) {
        auto structure = analysis::addressStructure(*row.tracePtr);
        auto reuse = analysis::reuseDistances(*row.tracePtr);
        double p50 = reuse.distances.count()
            ? reuse.distances.quantile(0.5)
            : -1.0;
        std::printf("%-13s %9llu %8llu %8llu %8llu %8.3f %10.0f "
                    "%9.1f\n",
                    row.name,
                    static_cast<unsigned long long>(
                        structure.distinctAddresses),
                    static_cast<unsigned long long>(
                        structure.distinctSlash8),
                    static_cast<unsigned long long>(
                        structure.distinctSlash16),
                    static_cast<unsigned long long>(
                        structure.distinctSlash24),
                    structure.meanBitEntropy(), p50,
                    analysis::workingSetSize(*row.tracePtr, 1000));
    }

    std::printf("\n# distance to original on every axis "
                "(0 = identical)\n");
    std::printf("%-13s %10s %10s %10s %10s %10s\n", "trace",
                "reuseKS", "coldGap", "wsRatio", "bitH.gap",
                "flagTV");
    for (const auto &row : rows) {
        auto cmp = analysis::compareSemantics(original,
                                              *row.tracePtr);
        std::printf("%-13s %10.3f %10.3f %10.3f %10.3f %10.3f\n",
                    row.name, cmp.reuseDistanceKs,
                    cmp.coldFractionGap, cmp.workingSetRatio,
                    cmp.bitEntropyGap, cmp.flagBigramTv);
    }

    std::printf("\n# reading: the paper's §4 reconstruction keeps "
                "the server-side address\n"
                "# structure and flag sequencing but collapses both "
                "directions onto the\n"
                "# stored destination, shrinking the address "
                "population (client addresses\n"
                "# leave the destination stream). The direction-"
                "aware extension restores\n"
                "# the working-set scale with random client "
                "addresses. Either way the\n"
                "# reconstruction is far closer to the original "
                "than the random trace\n"
                "# (locality and structure destroyed) or fracexp "
                "(locality imitated, but\n"
                "# wrong structure and no flag sequencing).\n");
    return 0;
}
