/**
 * @file
 * E6 — the §2.1 flow-diversity study: "in consequence of the huge
 * similarity among Web flows, we can group a high amount of them
 * into few clusters". Reports leader-clustering (what the compressor
 * does) and a k-medoids cross-check with silhouette quality on the
 * dominant flow length.
 */

#include <cstdio>

#include "bench_common.hpp"

#include <map>

#include "flow/characterize.hpp"
#include "flow/clustering.hpp"
#include "flow/flow_table.hpp"
#include "trace/web_gen.hpp"
#include "util/rng.hpp"

using namespace fcc;

int
main()
{
    trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = 40.0;
    cfg.flowsPerSec = 100.0;
    cfg = fcc::bench::applySmoke(cfg);
    trace::WebTrafficGenerator gen(cfg);
    auto tr = gen.generate();

    flow::FlowTable table;
    auto flows = table.assemble(tr);
    flow::Characterizer chi;

    std::vector<flow::SfVector> vectors;
    std::map<size_t, std::vector<flow::SfVector>> byLength;
    for (const auto &f : flows) {
        if (f.size() > 50)
            continue;
        auto sf = chi.characterize(f, tr);
        byLength[sf.size()].push_back(sf);
        vectors.push_back(std::move(sf));
    }

    auto summary = flow::summarizeDiversity(vectors);
    std::printf("# Section 2.1 flow-diversity study\n");
    std::printf("short flows:             %zu\n", summary.flows);
    std::printf("leader clusters:         %zu\n", summary.clusters);
    std::printf("flows per cluster:       %.1f\n",
                summary.meanPopulation);
    std::printf("top-10 cluster share:    %.1f%%\n",
                100.0 * summary.top10Share);
    std::printf("exact-centre share:      %.1f%%\n",
                100.0 * summary.exactShare);

    // k-medoids cross-check on the most populous flow length.
    size_t bestLen = 0, bestCount = 0;
    for (const auto &[len, vecs] : byLength) {
        if (vecs.size() > bestCount) {
            bestCount = vecs.size();
            bestLen = len;
        }
    }
    // Most same-length web flows are bit-identical (that is the
    // §2.1 point), which makes k-medoids over the raw multiset
    // degenerate; cluster the distinct vectors instead and report
    // how few there are.
    const auto &group = byLength[bestLen];
    std::vector<flow::SfVector> distinct;
    for (const auto &sf : group) {
        bool seen = false;
        for (const auto &existing : distinct)
            seen |= existing == sf;
        if (!seen)
            distinct.push_back(sf);
    }
    util::Rng rng(7);
    std::printf("\n# k-medoids over the %zu-packet flows: %zu "
                "occurrences, %zu distinct vectors\n",
                bestLen, group.size(), distinct.size());
    std::printf("%4s %12s %12s\n", "k", "cost", "silhouette");
    for (size_t k : {2, 4, 8}) {
        if (k >= distinct.size())
            break;
        auto result = flow::kMedoids(distinct, k, rng);
        double sil = flow::silhouette(distinct, result.assignment);
        std::printf("%4zu %12llu %12.3f\n", k,
                    static_cast<unsigned long long>(
                        result.totalCost),
                    sil);
    }
    return 0;
}
