/**
 * @file
 * E5 — the §3 workload aggregates: verifies that the synthetic
 * workload reproduces the flow-population statistics the paper bases
 * its design on (98 % of flows < 51 packets; short flows ~75 % of
 * packets and ~80 % of bytes), and prints the flow-length
 * distribution head.
 */

#include <cstdio>

#include "bench_common.hpp"

#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;

int
main()
{
    trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = 60.0;
    cfg.flowsPerSec = 100.0;
    cfg = fcc::bench::applySmoke(cfg);
    trace::WebTrafficGenerator gen(cfg);
    auto tr = gen.generate();

    flow::FlowTable table;
    auto flows = table.assemble(tr);
    auto stats = flow::computeFlowStats(flows, tr);

    std::printf("# Section 3 workload aggregates (calibration "
                "check of the RedIRIS stand-in)\n");
    std::printf("packets:                 %llu\n",
                static_cast<unsigned long long>(stats.packets));
    std::printf("flows:                   %llu\n",
                static_cast<unsigned long long>(stats.flows));
    std::printf("mean flow length:        %.1f packets\n",
                stats.meanFlowLength());
    std::printf("%-32s %8s %8s\n", "metric", "measured", "paper");
    std::printf("%-32s %7.1f%% %8s\n", "flows with < 51 packets",
                100.0 * stats.shortFlowShare(), "98%");
    std::printf("%-32s %7.1f%% %8s\n", "packets in short flows",
                100.0 * stats.shortPacketShare(), "75%");
    std::printf("%-32s %7.1f%% %8s\n", "bytes in short flows",
                100.0 * stats.shortByteShare(), "80%");

    std::printf("\n# flow-length distribution P_n (head)\n");
    std::printf("%6s %10s %10s\n", "n", "P(n)", "cumP");
    double cum = 0.0;
    for (const auto &[n, p] : stats.lengthDistribution()) {
        cum += p;
        if (n <= 20 || n % 10 == 0)
            std::printf("%6u %9.4f%% %9.2f%%\n", n, 100.0 * p,
                        100.0 * cum);
        if (n > 100)
            break;
    }
    return 0;
}
