/**
 * @file
 * Ablation — the short/long flow split. The paper cuts at 50
 * packets because 98 % of flows are shorter and long-flow SF vectors
 * practically never repeat. This sweep shows what other cutoffs do
 * to the dataset sizes: lower cutoffs push flows into the verbatim
 * (expensive) long-template dataset; higher cutoffs grow the search
 * space for rarely-matching long vectors.
 */

#include <cstdio>

#include "bench_common.hpp"

#include "codec/fcc/fcc_codec.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;

int
main()
{
    trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = 30.0;
    cfg.flowsPerSec = 100.0;
    cfg = fcc::bench::applySmoke(cfg);
    trace::WebTrafficGenerator gen(cfg);
    auto tr = gen.generate();
    uint64_t tshBytes = tr.size() * trace::tshRecordBytes;

    std::printf("# Ablation: short/long cutoff (paper: 50 "
                "packets)\n");
    std::printf("%8s %10s %10s %10s %14s %14s\n", "cutoff", "ratio",
                "shortFl", "longFl", "shortTmpl.B", "longTmpl.B");
    for (uint32_t cutoff : {5u, 10u, 25u, 50u, 100u, 200u}) {
        codec::fcc::FccConfig fccCfg;
        fccCfg.shortLimit = cutoff;
        codec::fcc::FccTraceCompressor codec(fccCfg);
        codec::fcc::FccCompressStats stats;
        auto bytes = codec.compressWithStats(tr, stats);
        std::printf("%8u %9.2f%% %10llu %10llu %14llu %14llu\n",
                    cutoff,
                    100.0 * static_cast<double>(bytes.size()) /
                        static_cast<double>(tshBytes),
                    static_cast<unsigned long long>(
                        stats.shortFlows),
                    static_cast<unsigned long long>(stats.longFlows),
                    static_cast<unsigned long long>(
                        stats.sizes.shortTemplateBytes),
                    static_cast<unsigned long long>(
                        stats.sizes.longTemplateBytes));
    }
    std::printf("\n# reading: small cutoffs force most flows into "
                "verbatim long templates\n"
                "# (inter-packet times stored per packet), inflating "
                "the ratio; past ~50 the\n"
                "# gain flattens because almost no flows are that "
                "long (98%% < 51).\n");
    return 0;
}
