/**
 * @file
 * google-benchmark microbenchmarks of the routing substrates: radix
 * vs Patricia longest-prefix-match latency (with and without
 * instrumentation) and flow-table assembly / characterization
 * throughput.
 */

#include <benchmark/benchmark.h>

#include "flow/characterize.hpp"
#include "flow/flow_table.hpp"
#include "memsim/memory_recorder.hpp"
#include "netbench/patricia_trie.hpp"
#include "netbench/radix_tree.hpp"
#include "netbench/route_entry.hpp"
#include "trace/web_gen.hpp"
#include "util/rng.hpp"

using namespace fcc;

namespace {

const std::vector<netbench::RouteEntry> &
benchTable()
{
    static auto table = netbench::generateRoutingTable(20000, 3);
    return table;
}

std::vector<uint32_t>
probeAddresses(size_t n)
{
    const auto &table = benchTable();
    util::Rng rng(17);
    std::vector<uint32_t> probes(n);
    for (auto &addr : probes)
        addr = table[rng.uniformInt(0, table.size() - 1)].prefix |
               (static_cast<uint32_t>(rng.next()) & 0xff);
    return probes;
}

void
BM_RadixLookup(benchmark::State &state)
{
    netbench::RadixTree tree;
    tree.build(benchTable());
    auto probes = probeAddresses(4096);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tree.lookup(probes[i++ & 4095]));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}

void
BM_PatriciaLookup(benchmark::State &state)
{
    netbench::PatriciaTrie trie;
    trie.build(benchTable());
    auto probes = probeAddresses(4096);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            trie.lookup(probes[i++ & 4095]));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}

void
BM_RadixLookupInstrumented(benchmark::State &state)
{
    memsim::CacheConfig cacheCfg;
    memsim::MemoryRecorder recorder(cacheCfg);
    netbench::RadixTree tree(&recorder);
    tree.build(benchTable());
    auto probes = probeAddresses(4096);
    size_t i = 0;
    for (auto _ : state) {
        recorder.beginPacket();
        benchmark::DoNotOptimize(
            tree.lookup(probes[i++ & 4095]));
        recorder.endPacket();
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}

void
BM_FlowAssembly(benchmark::State &state)
{
    trace::WebGenConfig cfg;
    cfg.seed = 4;
    cfg.durationSec = 6.0;
    cfg.flowsPerSec = 80.0;
    trace::WebTrafficGenerator gen(cfg);
    auto tr = gen.generate();
    flow::FlowTable table;
    for (auto _ : state) {
        auto flows = table.assemble(tr);
        benchmark::DoNotOptimize(flows);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * tr.size()));
}

void
BM_Characterize(benchmark::State &state)
{
    trace::WebGenConfig cfg;
    cfg.seed = 4;
    cfg.durationSec = 6.0;
    cfg.flowsPerSec = 80.0;
    trace::WebTrafficGenerator gen(cfg);
    auto tr = gen.generate();
    flow::FlowTable table;
    auto flows = table.assemble(tr);
    flow::Characterizer chi;
    for (auto _ : state) {
        for (const auto &f : flows)
            benchmark::DoNotOptimize(chi.characterize(f, tr));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations() * tr.size()));
}

} // namespace

BENCHMARK(BM_RadixLookup);
BENCHMARK(BM_PatriciaLookup);
BENCHMARK(BM_RadixLookupInstrumented);
BENCHMARK(BM_FlowAssembly)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Characterize)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
