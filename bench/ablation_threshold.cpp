/**
 * @file
 * Ablation — the similarity threshold of eq. 4. The paper fixes
 * "similar" at 2 % of the maximum inter-flow distance; this sweep
 * shows the compression/fidelity trade-off that choice sits on:
 * 0 % (exact matching only) up to 20 %.
 *
 * Fidelity metric: total-variation distance between the S-value
 * histograms of the original and reconstructed traces (0 = identical
 * per-packet class mix).
 */

#include <cstdio>

#include "bench_common.hpp"

#include <map>

#include "codec/fcc/fcc_codec.hpp"
#include "flow/characterize.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;

namespace {

std::map<int, double>
sHistogram(const trace::Trace &tr)
{
    // Histogram over (flag class, size class); dependence is
    // timing-related and reconstructed exactly, so it is excluded.
    std::map<int, double> hist;
    for (const auto &pkt : tr) {
        int key = static_cast<int>(flow::flagClass(pkt.tcpFlags)) *
                      4 +
                  static_cast<int>(flow::sizeClass(pkt.payloadBytes));
        hist[key] += 1.0;
    }
    for (auto &[key, value] : hist)
        value /= static_cast<double>(tr.size());
    return hist;
}

double
tvDistance(const std::map<int, double> &a,
           const std::map<int, double> &b)
{
    double distance = 0.0;
    auto add = [&](int key) {
        auto ia = a.find(key), ib = b.find(key);
        double va = ia == a.end() ? 0.0 : ia->second;
        double vb = ib == b.end() ? 0.0 : ib->second;
        distance += std::abs(va - vb);
    };
    for (const auto &[key, value] : a)
        add(key);
    for (const auto &[key, value] : b)
        if (a.find(key) == a.end())
            add(key);
    return distance / 2.0;
}

} // namespace

int
main()
{
    trace::WebGenConfig cfg;
    cfg.seed = 2005;
    cfg.durationSec = 30.0;
    cfg.flowsPerSec = 100.0;
    cfg = fcc::bench::applySmoke(cfg);
    trace::WebTrafficGenerator gen(cfg);
    auto tr = gen.generate();
    uint64_t tshBytes = tr.size() * trace::tshRecordBytes;
    auto origHist = sHistogram(tr);

    std::printf("# Ablation: similarity threshold (eq. 4; paper "
                "uses 2%%)\n");
    std::printf("%8s %10s %10s %10s %12s\n", "percent", "ratio",
                "clusters", "hit-rate", "TV-distance");
    for (double percent : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
        codec::fcc::FccConfig fccCfg;
        fccCfg.rule.percent = percent;
        codec::fcc::FccTraceCompressor codec(fccCfg);
        codec::fcc::FccCompressStats stats;
        auto bytes = codec.compressWithStats(tr, stats);
        auto back = codec.decompress(bytes);
        double tv = tvDistance(origHist, sHistogram(back));
        std::printf("%7.1f%% %9.2f%% %10llu %9.1f%% %12.4f\n",
                    percent,
                    100.0 * static_cast<double>(bytes.size()) /
                        static_cast<double>(tshBytes),
                    static_cast<unsigned long long>(
                        stats.shortTemplatesCreated),
                    100.0 * stats.hitRate(), tv);
    }
    std::printf("\n# reading: higher thresholds merge more flows "
                "into fewer clusters (smaller\n"
                "# template dataset, slightly better ratio) at the "
                "cost of per-packet class\n"
                "# fidelity; 2%% sits before the fidelity knee.\n");
    return 0;
}
