/**
 * @file
 * Random-access query subsystem over seekable FCC archives.
 *
 * An indexed FCC3 file (codec/fcc/index.hpp) makes three-stage
 * random access possible without inflating the whole archive:
 *
 *  1. open — mmap the file (util/io) and load only the index block
 *     from its tail;
 *  2. plan — evaluate a query expression (query/expr.hpp: AND/OR/NOT
 *     over server, CIDR, port, time-window and flow-size leaves)
 *     against the per-chunk summaries: Bloom fingerprints rule out
 *     chunks without the queried servers, timestamp bounds rule out
 *     chunks outside the window;
 *  3. execute — decode and expand only the surviving chunks (one
 *     thread-pool job each, every chunk drawing from its own RNG
 *     stream), filter, and emit the time-sorted result through any
 *     TraceSink.
 *
 * Reconstruction is bit-exact with a full decompression of the same
 * archive: chunk RNG streams are seeded by original chunk index
 * (codec::fcc::chunkRngSeed), so the packets of a selected flow are
 * the same bytes `fcctool decompress` would have produced.
 *
 * Files without an index (FCC1, FCC2, unindexed FCC3, hybrid
 * deflate) and archives whose index block is corrupt fall back to a
 * full decode with the same filtering semantics — a query is never
 * wrong, only slower. See docs/QUERY.md.
 *
 * The pre-PR 7 query API — the closed conjunctive Predicate — is
 * kept as a thin adapter that lowers onto Expr; new code should
 * build Expr trees (or parse the text grammar) directly. Aggregate
 * queries over an archive (per-server flow counts, byte histograms,
 * top-K talkers, computed without reconstructing packets) live in
 * query/aggregate.hpp; multi-archive catalogs in query/catalog.hpp.
 */

#ifndef FCC_QUERY_QUERY_HPP
#define FCC_QUERY_QUERY_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "codec/fcc/datasets.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/index.hpp"
#include "query/expr.hpp"
#include "trace/source.hpp"
#include "trace/tsh.hpp"
#include "util/io.hpp"

namespace fcc::query {

struct AggregateRequest;
struct AggregateResult;

/**
 * Conjunctive flow/packet predicate — the closed query surface of
 * PR 5, retained as a compatibility adapter. Unset members match
 * everything; set members must all hold. Deprecated: new code
 * should compose a query::Expr (or parse the text grammar) instead;
 * every Predicate lowers losslessly via toExpr().
 */
struct Predicate
{
    /**
     * Flow predicate: the flow's stored destination (server)
     * address — the 5-tuple component the lossy codec preserves
     * (client address/port are synthesized at decode, §4). All
     * packets of matching flows qualify.
     */
    std::optional<uint32_t> serverIp;

    /**
     * Packet predicate: inclusive reconstructed-timestamp window in
     * microseconds; only packets inside it are emitted.
     */
    std::optional<std::pair<uint64_t, uint64_t>> timeUs;

    /** Flow predicate: only flows of at least this many packets. */
    uint32_t minFlowPackets = 0;

    /** True when every flow and packet matches. */
    bool
    matchAll() const
    {
        return !serverIp && !timeUs && minFlowPackets <= 1;
    }

    /**
     * Lower to the equivalent expression tree: the AND of one leaf
     * per set member. Plan and execution semantics are identical to
     * the legacy closed-predicate paths.
     * @throws fcc::util::Error on an inverted time window
     *         (timeUs->first > timeUs->second) — previously such a
     *         predicate silently matched nothing.
     */
    Expr toExpr() const;
};

/** What one query run touched and produced. */
struct QueryStats
{
    bool usedIndex = false;     ///< planned via the chunk index
    uint64_t chunksTotal = 0;   ///< chunks in the archive
    uint64_t chunksDecoded = 0; ///< chunks the plan could not rule out
    uint64_t fileBytes = 0;     ///< archive size
    /**
     * Archive bytes the run needed: header, shared dataset frames,
     * the decoded chunks' frames and the index block — the pages a
     * cold mmap actually faults, and the number micro_query reports
     * against a full decode.
     */
    uint64_t bytesRead = 0;
    uint64_t flowsMatched = 0;
    uint64_t packetsMatched = 0;
};

/** TraceSink that counts and discards (--count queries, benches). */
class NullTraceSink final : public trace::TraceSink
{
  public:
    void
    write(std::span<const trace::PacketRecord> batch) override
    {
        packets_ += batch.size();
    }
    void close() override {}
    /** Logical size: what the packets would occupy as TSH records. */
    uint64_t bytesWritten() const override
    {
        return packets_ * trace::tshRecordBytes;
    }
    uint64_t packets() const { return packets_; }

  private:
    uint64_t packets_ = 0;
};

/**
 * One opened .fcc archive, memory-mapped, with its index (when
 * present) parsed and ready to plan against. The FccConfig supplies
 * the reconstruction parameters and thread count — they must match
 * the ones a full decompression would use for the reconstruction to
 * be bit-identical (the defaults always do).
 *
 * All query entry points are const and touch only immutable state,
 * so one archive may serve concurrent queries from many threads
 * (the fccserve layer relies on this).
 */
class FccArchive
{
  public:
    /** @throws fcc::util::Error when the file cannot be opened. */
    explicit FccArchive(const std::string &path,
                        const codec::fcc::FccConfig &cfg = {});

    /** True when the archive carries a usable chunk/flow index. */
    bool hasIndex() const { return index_.has_value(); }

    /**
     * True when the file advertises an index that failed to parse
     * (CRC mismatch, truncation); queries fall back to full decode.
     */
    bool indexCorrupt() const { return indexCorrupt_; }

    /** The parsed index. Requires hasIndex(). */
    const codec::fcc::ArchiveIndex &
    index() const
    {
        return *index_;
    }

    /** Archive size in bytes. */
    uint64_t fileBytes() const { return bytes_.size(); }

    /** The path the archive was opened from. */
    const std::string &path() const { return path_; }

    /** The reconstruction configuration queries run with. */
    const codec::fcc::FccConfig &config() const { return cfg_; }

    /**
     * Chunk ids the index cannot rule out for @p expr, in ascending
     * order. Bloom false positives may include chunks with no
     * matching flow (the execute stage filters them to zero
     * packets); a chunk with a match is never excluded.
     * Requires hasIndex().
     */
    std::vector<size_t> plan(const Expr &expr) const;

    /** Adapter: plan(pred.toExpr()). */
    std::vector<size_t> plan(const Predicate &pred) const;

    /**
     * Run @p expr over the archive and write the matching packets,
     * globally time-sorted, to @p sink (closed before returning).
     * Uses the index when present unless @p forceFullDecode; always
     * produces exactly the packets a full decompression filtered by
     * @p expr would.
     *
     * @throws fcc::util::Error on a malformed archive.
     */
    QueryStats run(const Expr &expr, trace::TraceSink &sink,
                   bool forceFullDecode = false) const;

    /** Adapter: run(pred.toExpr(), ...). */
    QueryStats run(const Predicate &pred, trace::TraceSink &sink,
                   bool forceFullDecode = false) const;

    /**
     * Aggregate over the archive from index blocks and selected
     * column frames, without reconstructing packets. Declared here,
     * defined with the request/result model in query/aggregate.hpp.
     */
    AggregateResult aggregate(const AggregateRequest &req) const;

  private:
    /**
     * Everything the indexed layout shares across chunks: the
     * decoded header region (weights, shared datasets, per-chunk
     * record counts) plus the byte geometry selective readers
     * account against. Built by decodeSharedRegion(), reused by the
     * filter and aggregate executors.
     */
    struct SharedRegion
    {
        flow::Weights weights;
        codec::fcc::Datasets shared;     ///< templates + addresses
        std::vector<uint64_t> chunkLen;  ///< records per chunk
        size_t sharedEnd = 0;    ///< end of the shared frames
        size_t regionEnd = 0;    ///< end of the column-frame region
        uint64_t indexBytes = 0; ///< index block + footer size
    };

    /** Decode the shared region of an indexed archive (validates
     *  header, shared frames and the chunk layout against the
     *  index). Requires hasIndex(). */
    SharedRegion decodeSharedRegion() const;

    /** Validate chunk @p c's byte range against the region bounds
     *  and return its summary. */
    const codec::fcc::ChunkSummary &
    checkedChunk(const SharedRegion &region, size_t c) const;

    QueryStats runIndexed(const Expr &expr,
                          trace::TraceSink &sink) const;
    QueryStats runFullDecode(const Expr &expr,
                             trace::TraceSink &sink) const;

    friend struct AggregateExecutor;

    std::string path_;
    codec::fcc::FccConfig cfg_;
    std::unique_ptr<util::ByteSource> src_;
    std::vector<uint8_t> owned_;        ///< stdio fallback buffer
    std::span<const uint8_t> bytes_;    ///< the whole archive
    std::optional<codec::fcc::ArchiveIndex> index_;
    bool indexedLayout_ = false;
    bool indexCorrupt_ = false;
};

} // namespace fcc::query

#endif // FCC_QUERY_QUERY_HPP
