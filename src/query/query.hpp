/**
 * @file
 * Random-access query subsystem over seekable FCC archives.
 *
 * An indexed FCC3 file (codec/fcc/index.hpp) makes three-stage
 * random access possible without inflating the whole archive:
 *
 *  1. open — mmap the file (util/io) and load only the index block
 *     from its tail;
 *  2. plan — evaluate a predicate (server address, time window,
 *     flow-size threshold) against the per-chunk summaries: Bloom
 *     fingerprints rule out chunks without the queried server,
 *     timestamp bounds rule out chunks outside the window;
 *  3. execute — decode and expand only the surviving chunks (one
 *     thread-pool job each, every chunk drawing from its own RNG
 *     stream), filter, and emit the time-sorted result through any
 *     TraceSink.
 *
 * Reconstruction is bit-exact with a full decompression of the same
 * archive: chunk RNG streams are seeded by original chunk index
 * (codec::fcc::chunkRngSeed), so the packets of a selected flow are
 * the same bytes `fcctool decompress` would have produced.
 *
 * Files without an index (FCC1, FCC2, unindexed FCC3, hybrid
 * deflate) and archives whose index block is corrupt fall back to a
 * full decode with the same filtering semantics — a query is never
 * wrong, only slower. See docs/QUERY.md.
 */

#ifndef FCC_QUERY_QUERY_HPP
#define FCC_QUERY_QUERY_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/index.hpp"
#include "trace/source.hpp"
#include "trace/tsh.hpp"
#include "util/io.hpp"

namespace fcc::query {

/**
 * Conjunctive flow/packet predicate. Unset members match
 * everything; set members must all hold.
 */
struct Predicate
{
    /**
     * Flow predicate: the flow's stored destination (server)
     * address — the 5-tuple component the lossy codec preserves
     * (client address/port are synthesized at decode, §4). All
     * packets of matching flows qualify.
     */
    std::optional<uint32_t> serverIp;

    /**
     * Packet predicate: inclusive reconstructed-timestamp window in
     * microseconds; only packets inside it are emitted.
     */
    std::optional<std::pair<uint64_t, uint64_t>> timeUs;

    /** Flow predicate: only flows of at least this many packets. */
    uint32_t minFlowPackets = 0;

    /** True when every flow and packet matches. */
    bool
    matchAll() const
    {
        return !serverIp && !timeUs && minFlowPackets <= 1;
    }
};

/** What one query run touched and produced. */
struct QueryStats
{
    bool usedIndex = false;     ///< planned via the chunk index
    uint64_t chunksTotal = 0;   ///< chunks in the archive
    uint64_t chunksDecoded = 0; ///< chunks the plan could not rule out
    uint64_t fileBytes = 0;     ///< archive size
    /**
     * Archive bytes the run needed: header, shared dataset frames,
     * the decoded chunks' frames and the index block — the pages a
     * cold mmap actually faults, and the number micro_query reports
     * against a full decode.
     */
    uint64_t bytesRead = 0;
    uint64_t flowsMatched = 0;
    uint64_t packetsMatched = 0;
};

/** TraceSink that counts and discards (--count queries, benches). */
class NullTraceSink final : public trace::TraceSink
{
  public:
    void
    write(std::span<const trace::PacketRecord> batch) override
    {
        packets_ += batch.size();
    }
    void close() override {}
    /** Logical size: what the packets would occupy as TSH records. */
    uint64_t bytesWritten() const override
    {
        return packets_ * trace::tshRecordBytes;
    }
    uint64_t packets() const { return packets_; }

  private:
    uint64_t packets_ = 0;
};

/**
 * One opened .fcc archive, memory-mapped, with its index (when
 * present) parsed and ready to plan against. The FccConfig supplies
 * the reconstruction parameters and thread count — they must match
 * the ones a full decompression would use for the reconstruction to
 * be bit-identical (the defaults always do).
 */
class FccArchive
{
  public:
    /** @throws fcc::util::Error when the file cannot be opened. */
    explicit FccArchive(const std::string &path,
                        const codec::fcc::FccConfig &cfg = {});

    /** True when the archive carries a usable chunk/flow index. */
    bool hasIndex() const { return index_.has_value(); }

    /**
     * True when the file advertises an index that failed to parse
     * (CRC mismatch, truncation); queries fall back to full decode.
     */
    bool indexCorrupt() const { return indexCorrupt_; }

    /** The parsed index. Requires hasIndex(). */
    const codec::fcc::ArchiveIndex &
    index() const
    {
        return *index_;
    }

    /** Archive size in bytes. */
    uint64_t fileBytes() const { return bytes_.size(); }

    /**
     * Chunk ids the index cannot rule out for @p pred, in ascending
     * order. Bloom false positives may include chunks with no
     * matching flow (the execute stage filters them to zero
     * packets); a chunk with a match is never excluded.
     * Requires hasIndex().
     */
    std::vector<size_t> plan(const Predicate &pred) const;

    /**
     * Run @p pred over the archive and write the matching packets,
     * globally time-sorted, to @p sink (closed before returning).
     * Uses the index when present unless @p forceFullDecode; always
     * produces exactly the packets a full decompression filtered by
     * @p pred would.
     *
     * @throws fcc::util::Error on a malformed archive.
     */
    QueryStats run(const Predicate &pred, trace::TraceSink &sink,
                   bool forceFullDecode = false);

  private:
    QueryStats runIndexed(const Predicate &pred,
                          trace::TraceSink &sink);
    QueryStats runFullDecode(const Predicate &pred,
                             trace::TraceSink &sink);

    std::string path_;
    codec::fcc::FccConfig cfg_;
    std::unique_ptr<util::ByteSource> src_;
    std::vector<uint8_t> owned_;        ///< stdio fallback buffer
    std::span<const uint8_t> bytes_;    ///< the whole archive
    std::optional<codec::fcc::ArchiveIndex> index_;
    bool indexedLayout_ = false;
    bool indexCorrupt_ = false;
};

} // namespace fcc::query

#endif // FCC_QUERY_QUERY_HPP
