/**
 * @file
 * fccserve — the query serving layer: a QueryServer exposing one
 * ArchiveCatalog over a Unix or TCP socket, and the QueryClient the
 * tools and tests speak to it with.
 *
 * Protocol (normative spec: docs/PROTOCOL.md): both directions carry
 * length-prefixed frames — a little-endian u32 byte count, then that
 * many body bytes. A request body is `u8 version, u8 opcode,
 * op-specific payload`; a response body is `u8 version, u8 status,
 * payload` (an error payload is a varint-length message string).
 * Query results travel as 44-byte TSH records — the same encoding
 * `fccquery --out FILE --out-format tsh` writes, which is what makes
 * server and local results byte-comparable. Aggregates travel as
 * their full result model (per-server table + histogram); top-K
 * truncation is a render-time concern.
 *
 * Concurrency: the server owns one accept loop (serve(), blocking)
 * and a util::ThreadPool; every accepted connection becomes one pool
 * job that handles its requests sequentially, so concurrent clients
 * are served by concurrent pool workers against the shared immutable
 * catalog (FccArchive query paths are const and thread-safe). stop()
 * is thread-safe: it wakes the accept loop via a self-pipe, open
 * connections are shut down, and serve() returns once every job has
 * drained.
 */

#ifndef FCC_QUERY_SERVER_HPP
#define FCC_QUERY_SERVER_HPP

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "query/aggregate.hpp"
#include "query/catalog.hpp"
#include "util/io.hpp"

namespace fcc::query {

/** Protocol version byte both sides send. */
constexpr uint8_t protocolVersion = 1;

/** Request opcodes. */
enum class Opcode : uint8_t
{
    Ping = 0,
    ListArchives = 1,
    Query = 2,
    Aggregate = 3,
};

/** Response status byte. */
enum class Status : uint8_t
{
    Ok = 0,
    BadRequest = 1,   ///< malformed frame, bad expression, ...
    ServerError = 2,  ///< archive-side failure
};

/** Query request flag bits. */
constexpr uint8_t queryFlagCountOnly = 0x01;
constexpr uint8_t queryFlagFullDecode = 0x02;

/** Server tuning. */
struct ServerConfig
{
    /** Pool workers = concurrent requests (0 = hardware threads). */
    uint32_t threads = 0;
    /** Cap on one request frame (responses are unbounded). */
    uint32_t maxRequestBytes = 1u << 20;
    int backlog = 16;
};

/**
 * Serves one immutable catalog on one endpoint. Construction binds
 * and listens (so the endpoint is ready — and an ephemeral TCP port
 * resolved — before any thread enters serve()).
 */
class QueryServer
{
  public:
    /** @throws fcc::util::Error when the endpoint cannot be bound. */
    QueryServer(const ArchiveCatalog &catalog,
                const util::SocketEndpoint &endpoint,
                const ServerConfig &cfg = {});
    ~QueryServer();

    QueryServer(const QueryServer &) = delete;
    QueryServer &operator=(const QueryServer &) = delete;

    /** The bound endpoint (TCP port 0 resolved to the real port). */
    const util::SocketEndpoint &endpoint() const { return endpoint_; }

    /**
     * Accept loop: blocks until stop(). Each accepted connection is
     * handled as one thread-pool job; returns after every job has
     * drained.
     */
    void serve();

    /** Wake serve() and shut it down. Thread-safe, idempotent. */
    void stop();

    /** Requests answered so far (any status). */
    uint64_t
    requestsServed() const
    {
        return requests_.load();
    }

  private:
    void handleConnection(int fd);
    std::vector<uint8_t>
    handleRequest(std::span<const uint8_t> body);

    const ArchiveCatalog &catalog_;
    ServerConfig cfg_;
    util::SocketEndpoint endpoint_;
    util::SocketFd listener_;
    int stopPipe_[2] = {-1, -1};
    std::atomic<bool> stopping_{false};
    std::atomic<uint64_t> requests_{0};
    std::mutex mutex_;             ///< guards connections_
    std::set<int> connections_;    ///< fds owned by live jobs
};

/** One catalog member as reported by ListArchives. */
struct ArchiveInfo
{
    std::string path;
    bool hasIndex = false;
    uint64_t fileBytes = 0;
    uint64_t chunks = 0;
};

/** A filter query's answer. */
struct QueryResponse
{
    CatalogQueryStats stats;
    uint64_t packets = 0;
    /** Empty for count-only queries. */
    std::vector<trace::PacketRecord> records;
};

/**
 * Blocking client for the fccserve protocol: one connection, one
 * outstanding request at a time.
 */
class QueryClient
{
  public:
    /** Connects. @throws fcc::util::Error */
    explicit QueryClient(const util::SocketEndpoint &endpoint);

    /** Round-trip an empty request. @throws on protocol mismatch. */
    void ping();

    std::vector<ArchiveInfo> listArchives();

    /**
     * Run @p exprText (the grammar of query/expr.hpp) server-side.
     * @throws fcc::util::Error with the server's message on a
     *         BadRequest/ServerError status.
     */
    QueryResponse query(const std::string &exprText,
                        bool countOnly = false,
                        bool forceFullDecode = false);

    /** Run an aggregate server-side; @p exprText as in query(). */
    AggregateResult aggregate(AggregateKind kind, uint32_t topK,
                              const std::string &exprText);

  private:
    std::vector<uint8_t>
    roundTrip(std::span<const uint8_t> request);

    util::SocketFd fd_;
};

} // namespace fcc::query

#endif // FCC_QUERY_SERVER_HPP
