/**
 * @file
 * Aggregate execution: per-template packet/byte totals from decoded
 * S values, then one pass over the flow-level columns of planned
 * chunks. See aggregate.hpp for the model and time semantics.
 */

#include "query/aggregate.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <map>
#include <new>

#include "codec/fcc/datasets.hpp"
#include "flow/characterize.hpp"
#include "query/query.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace fcc::query {

namespace fccc = fcc::codec::fcc;

namespace {

/** Packet count and wire-byte total of one template. */
struct TemplateStat
{
    uint64_t packets = 0;
    uint64_t wireBytes = 0;
};

uint64_t
payloadOf(flow::SizeClass cls, const fccc::FccConfig &cfg)
{
    switch (cls) {
    case flow::SizeClass::Empty:
        return 0;
    case flow::SizeClass::Small:
        return cfg.smallPayload;
    case flow::SizeClass::Large:
        return cfg.largePayload;
    }
    return 0;
}

TemplateStat
statOf(const flow::Characterizer &chi,
       const std::vector<uint16_t> &sValues,
       const fccc::FccConfig &cfg)
{
    TemplateStat out;
    out.packets = sValues.size();
    for (uint16_t s : sValues)
        out.wireBytes += 40 + payloadOf(chi.decode(s).size, cfg);
    return out;
}

/** Per-template stats for both datasets — the whole point: a flow's
 *  weight is decided here once, never by expanding its packets. */
struct TemplateTable
{
    std::vector<TemplateStat> shortStats;
    std::vector<TemplateStat> longStats;

    TemplateTable(const fccc::Datasets &d,
                  const fccc::FccConfig &cfg)
    {
        flow::Characterizer chi(d.weights);
        shortStats.reserve(d.shortTemplates.size());
        for (const flow::SfVector &t : d.shortTemplates)
            shortStats.push_back(statOf(chi, t.values, cfg));
        longStats.reserve(d.longTemplates.size());
        for (const fccc::LongTemplate &t : d.longTemplates)
            longStats.push_back(statOf(chi, t.sValues, cfg));
    }

    const TemplateStat &
    of(bool isLong, uint64_t index) const
    {
        const auto &v = isLong ? longStats : shortStats;
        util::require(index < v.size(),
                      "fcc: template index out of range");
        return v[index];
    }
};

/** One chunk's (or the fallback pass's) accumulation, keyed by
 *  address-table slot so merging needs no hashing. */
struct Accumulator
{
    std::vector<ServerAggregate> byAddr;
    std::vector<uint64_t> histogram;
    uint64_t flows = 0;

    explicit Accumulator(size_t addresses)
        : byAddr(addresses),
          histogram(aggregateHistogramBuckets, 0)
    {
    }

    void
    add(size_t addrIndex, const TemplateStat &t)
    {
        ServerAggregate &row = byAddr[addrIndex];
        row.flows += 1;
        row.packets += t.packets;
        row.wireBytes += t.wireBytes;
        size_t bucket = static_cast<size_t>(
            std::bit_width(t.wireBytes));
        if (bucket >= aggregateHistogramBuckets)
            bucket = aggregateHistogramBuckets - 1;
        histogram[bucket] += 1;
        flows += 1;
    }

    void
    mergeFrom(const Accumulator &other)
    {
        for (size_t i = 0; i < byAddr.size(); ++i) {
            byAddr[i].flows += other.byAddr[i].flows;
            byAddr[i].packets += other.byAddr[i].packets;
            byAddr[i].wireBytes += other.byAddr[i].wireBytes;
        }
        for (size_t b = 0; b < histogram.size(); ++b)
            histogram[b] += other.histogram[b];
        flows += other.flows;
    }
};

/**
 * Evaluate @p expr for one flow with start-time semantics: the flow
 * "is at" its first timestamp.
 */
bool
flowMatches(const Expr &expr, const Expr::FlowView &flow,
            uint64_t startUs)
{
    return expr.matches(flow, startUs);
}

/** Compact an accumulator into the result model: rows sorted by
 *  server address (same-address table slots folded together). */
void
finishResult(const Accumulator &acc,
             const std::vector<uint32_t> &addresses,
             AggregateResult &out)
{
    std::map<uint32_t, ServerAggregate> byIp;
    for (size_t i = 0; i < acc.byAddr.size(); ++i) {
        const ServerAggregate &row = acc.byAddr[i];
        if (row.flows == 0)
            continue;
        ServerAggregate &dst = byIp[addresses[i]];
        dst.serverIp = addresses[i];
        dst.flows += row.flows;
        dst.packets += row.packets;
        dst.wireBytes += row.wireBytes;
    }
    out.servers.reserve(byIp.size());
    for (const auto &[ip, row] : byIp)
        out.servers.push_back(row);
    out.histogram = acc.histogram;
    out.stats.flowsAggregated = acc.flows;
}

void
runJobs(uint32_t threadsCfg, size_t count,
        const std::function<void(size_t)> &job)
{
    unsigned workers = threadsCfg != 0
        ? threadsCfg
        : util::ThreadPool::hardwareThreads();
    if (workers > 1 && count > 1) {
        util::ThreadPool pool(workers);
        pool.parallelFor(count, job);
    } else {
        for (size_t i = 0; i < count; ++i)
            job(i);
    }
}

} // namespace

AggregateResult
FccArchive::aggregate(const AggregateRequest &req) const
{
    AggregateResult out;
    out.stats.fileBytes = bytes_.size();

    if (!hasIndex()) {
        // No usable index: deserialize the whole container (any
        // layout), but still aggregate from templates — no packet
        // expansion, no RNG.
        out.stats.usedIndex = false;
        out.stats.bytesTouched = bytes_.size();
        out.stats.reconstructBytes = bytes_.size();
        fccc::Datasets d =
            fccc::deserializeAuto(bytes_, cfg_.threads);
        out.stats.chunksTotal =
            d.chunkSizes.empty() ? 1 : d.chunkSizes.size();
        out.stats.chunksPlanned = out.stats.chunksTotal;
        Accumulator acc(d.addresses.size());
        if (d.fidelity == fccc::Fidelity::Flow) {
            // Flow-fidelity archives already are aggregates: each
            // record carries its packet and payload totals.
            for (const fccc::FlowRecord &fl : d.flowRecords) {
                TemplateStat t;
                t.packets = fl.packets;
                t.wireBytes =
                    fl.payloadBytes + 40 * uint64_t{fl.packets};
                Expr::FlowView flow{d.addresses[fl.addressIndex],
                                    cfg_.serverPort, t.packets};
                if (flowMatches(req.expr, flow,
                                fl.firstTimestampUs))
                    acc.add(fl.addressIndex, t);
            }
            finishResult(acc, d.addresses, out);
            return out;
        }
        TemplateTable table(d, cfg_);
        for (const fccc::TimeSeqRecord &rec : d.timeSeq) {
            const TemplateStat &t =
                table.of(rec.isLong, rec.templateIndex);
            Expr::FlowView flow{d.addresses[rec.addressIndex],
                                cfg_.serverPort, t.packets};
            if (flowMatches(req.expr, flow, rec.firstTimestampUs))
                acc.add(rec.addressIndex, t);
        }
        finishResult(acc, d.addresses, out);
        return out;
    }

    // Indexed path. Flow-start pruning is gap-safe (see aggregate.hpp
    // header), so no defaultGapUs fallback here.
    out.stats.usedIndex = true;
    SharedRegion region = decodeSharedRegion();
    out.stats.chunksTotal = region.chunkLen.size();

    std::vector<size_t> planned = plan(req.expr);
    out.stats.chunksPlanned = planned.size();
    uint64_t baseBytes = region.sharedEnd + region.indexBytes;
    out.stats.bytesTouched = baseBytes;
    out.stats.reconstructBytes = baseBytes;

    bool flowProfile =
        region.shared.fidelity == fccc::Fidelity::Flow;
    TemplateTable table(region.shared, cfg_);
    bool needTime = req.expr.usesTime();

    std::vector<Accumulator> perChunk(
        planned.size(), Accumulator(region.shared.addresses.size()));
    std::vector<uint64_t> touched(planned.size(), 0);

    auto aggregateOne = [&](size_t i) {
        size_t c = planned[i];
        const fccc::ChunkSummary &s = checkedChunk(region, c);
        util::ByteReader cr(bytes_.data() + s.byteOffset,
                            static_cast<size_t>(s.byteLength));
        // Chunk frame order: time, is-long, template, rtt, addr —
        // reinterpreted by the flow profile as time, payload-bytes,
        // packets, duration, addr. Decode only what the aggregate
        // needs; readColumnFrame alone just walks the framing
        // (payload stays a view).
        std::array<fccc::ColumnFrame, 5> frames;
        for (size_t k = 0; k < 5; ++k)
            frames[k] = fccc::readColumnFrame(cr);
        util::require(cr.exhausted(),
                      "fcc index: chunk range has trailing bytes");
        std::vector<uint64_t> time, isLong, tmpl, addr;
        if (needTime) {
            time = fccc::decodeColumnFrame(frames[0]);
            touched[i] += frames[0].storedBytes;
        }
        isLong = fccc::decodeColumnFrame(frames[1]);
        tmpl = fccc::decodeColumnFrame(frames[2]);
        addr = fccc::decodeColumnFrame(frames[4]);
        touched[i] += frames[1].storedBytes +
                      frames[2].storedBytes + frames[4].storedBytes;

        uint64_t records = region.chunkLen[c];
        util::require(isLong.size() == records &&
                          tmpl.size() == records &&
                          addr.size() == records &&
                          (!needTime || time.size() == records),
                      "fcc3: chunk frame record mismatch");
        Accumulator &acc = perChunk[i];
        for (size_t r = 0; r < records; ++r) {
            util::require(
                addr[r] < region.shared.addresses.size(),
                "fcc: address index out of range");
            TemplateStat t;
            if (flowProfile) {
                util::require(tmpl[r] >= 1,
                              "fcc: empty flow record");
                t.packets = tmpl[r];
                t.wireBytes = isLong[r] + 40 * tmpl[r];
            } else {
                util::require(isLong[r] <= 1,
                              "fcc: bad dataset identifier");
                t = table.of(isLong[r] == 1, tmpl[r]);
            }
            Expr::FlowView flow{
                region.shared.addresses[static_cast<size_t>(
                    addr[r])],
                cfg_.serverPort, t.packets};
            uint64_t startUs = needTime ? time[r] : 0;
            if (flowMatches(req.expr, flow, startUs))
                acc.add(static_cast<size_t>(addr[r]), t);
        }
    };

    try {
        runJobs(cfg_.threads, planned.size(), aggregateOne);
    } catch (const std::bad_alloc &) {
        throw util::Error(
            "query: corrupt archive exhausts memory");
    }

    Accumulator total(region.shared.addresses.size());
    for (size_t i = 0; i < planned.size(); ++i) {
        total.mergeFrom(perChunk[i]);
        out.stats.bytesTouched += touched[i];
        out.stats.reconstructBytes +=
            index_->chunks[planned[i]].byteLength;
    }
    finishResult(total, region.shared.addresses, out);
    return out;
}

// ---- merging / rendering --------------------------------------------

void
mergeAggregateInto(AggregateResult &into, const AggregateResult &from)
{
    std::map<uint32_t, ServerAggregate> byIp;
    for (const ServerAggregate &row : into.servers)
        byIp[row.serverIp] = row;
    for (const ServerAggregate &row : from.servers) {
        ServerAggregate &dst = byIp[row.serverIp];
        dst.serverIp = row.serverIp;
        dst.flows += row.flows;
        dst.packets += row.packets;
        dst.wireBytes += row.wireBytes;
    }
    into.servers.clear();
    into.servers.reserve(byIp.size());
    for (const auto &[ip, row] : byIp)
        into.servers.push_back(row);
    for (size_t b = 0; b < into.histogram.size(); ++b)
        into.histogram[b] += from.histogram[b];

    into.stats.usedIndex =
        into.stats.usedIndex && from.stats.usedIndex;
    into.stats.chunksTotal += from.stats.chunksTotal;
    into.stats.chunksPlanned += from.stats.chunksPlanned;
    into.stats.fileBytes += from.stats.fileBytes;
    into.stats.bytesTouched += from.stats.bytesTouched;
    into.stats.reconstructBytes += from.stats.reconstructBytes;
    into.stats.flowsAggregated += from.stats.flowsAggregated;
}

std::vector<ServerAggregate>
topTalkers(const AggregateResult &result, size_t k)
{
    std::vector<ServerAggregate> rows = result.servers;
    std::sort(rows.begin(), rows.end(),
              [](const ServerAggregate &a, const ServerAggregate &b) {
                  if (a.wireBytes != b.wireBytes)
                      return a.wireBytes > b.wireBytes;
                  return a.serverIp < b.serverIp;
              });
    if (rows.size() > k)
        rows.resize(k);
    return rows;
}

const char *
aggregateKindName(AggregateKind kind)
{
    switch (kind) {
    case AggregateKind::FlowCounts:
        return "flow-counts";
    case AggregateKind::ByteHistogram:
        return "byte-histogram";
    case AggregateKind::TopTalkers:
        return "top-talkers";
    }
    return "unknown";
}

AggregateKind
parseAggregateKind(std::string_view name)
{
    if (name == "flow-counts")
        return AggregateKind::FlowCounts;
    if (name == "byte-histogram")
        return AggregateKind::ByteHistogram;
    if (name == "top-talkers")
        return AggregateKind::TopTalkers;
    throw util::Error("unknown aggregate kind '" +
                      std::string{name} +
                      "' (flow-counts | byte-histogram | "
                      "top-talkers)");
}

std::string
renderAggregate(const AggregateResult &result,
                const AggregateRequest &req)
{
    std::string out = "aggregate ";
    out += aggregateKindName(req.kind);
    out += " expr ";
    out += req.expr.str();
    out += '\n';

    auto renderRow = [&out](const ServerAggregate &row) {
        out += "server ";
        out += trace::formatIp(row.serverIp);
        out += " flows ";
        out += std::to_string(row.flows);
        out += " packets ";
        out += std::to_string(row.packets);
        out += " bytes ";
        out += std::to_string(row.wireBytes);
        out += '\n';
    };

    switch (req.kind) {
    case AggregateKind::FlowCounts: {
        out += "servers ";
        out += std::to_string(result.servers.size());
        out += '\n';
        uint64_t flows = 0, packets = 0, bytes = 0;
        for (const ServerAggregate &row : result.servers) {
            renderRow(row);
            flows += row.flows;
            packets += row.packets;
            bytes += row.wireBytes;
        }
        out += "total flows ";
        out += std::to_string(flows);
        out += " packets ";
        out += std::to_string(packets);
        out += " bytes ";
        out += std::to_string(bytes);
        out += '\n';
        break;
    }
    case AggregateKind::ByteHistogram: {
        size_t nonEmpty = 0;
        for (uint64_t n : result.histogram)
            nonEmpty += n != 0;
        out += "buckets ";
        out += std::to_string(nonEmpty);
        out += '\n';
        for (size_t b = 0; b < result.histogram.size(); ++b) {
            if (result.histogram[b] == 0)
                continue;
            // Bucket b covers flow totals in [2^(b-1), 2^b).
            uint64_t lo = b == 0 ? 0 : uint64_t{1} << (b - 1);
            out += "bucket ";
            out += std::to_string(b);
            out += " min_bytes ";
            out += std::to_string(lo);
            out += " flows ";
            out += std::to_string(result.histogram[b]);
            out += '\n';
        }
        out += "total flows ";
        out += std::to_string(result.stats.flowsAggregated);
        out += '\n';
        break;
    }
    case AggregateKind::TopTalkers: {
        std::vector<ServerAggregate> rows =
            topTalkers(result, req.topK);
        out += "top ";
        out += std::to_string(rows.size());
        out += '\n';
        for (const ServerAggregate &row : rows)
            renderRow(row);
        break;
    }
    }
    return out;
}

} // namespace fcc::query
