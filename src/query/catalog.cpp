/**
 * @file
 * Catalog execution: open a directory of archives, prune whole
 * archives by their chunk plans, run survivors, k-way merge the
 * sorted per-archive results. See catalog.hpp.
 */

#include "query/catalog.hpp"

#include <algorithm>
#include <filesystem>
#include <queue>

#include "archive/catalog_file.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace fcc::query {

namespace fs = std::filesystem;

ArchiveCatalog::ArchiveCatalog(const std::string &directory,
                               const codec::fcc::FccConfig &cfg)
{
    cfg.validate();
    std::error_code ec;
    fs::directory_iterator it(directory, ec);
    if (ec)
        throw util::Error("catalog: cannot read directory '" +
                          directory + "': " + ec.message());
    std::vector<std::string> paths;
    for (const fs::directory_entry &entry : it) {
        if (!entry.is_regular_file())
            continue;
        if (entry.path().extension() != ".fcc")
            continue;
        paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    for (const std::string &path : paths)
        archives_.push_back(
            std::make_unique<FccArchive>(path, cfg));
}

ArchiveCatalog
ArchiveCatalog::fromPaths(const std::vector<std::string> &paths,
                          const codec::fcc::FccConfig &cfg)
{
    cfg.validate();
    ArchiveCatalog catalog;
    for (const std::string &path : paths)
        catalog.archives_.push_back(
            std::make_unique<FccArchive>(path, cfg));
    return catalog;
}

ArchiveCatalog
ArchiveCatalog::fromCatalogFile(const std::string &directory,
                                const codec::fcc::FccConfig &cfg)
{
    if (!fs::exists(fs::path(directory) /
                    archive::CatalogFile::fileName()))
        return ArchiveCatalog(directory, cfg);
    std::vector<std::string> paths;
    for (const archive::CatalogEntry &entry :
         archive::loadCatalog(directory))
        paths.push_back(directory + "/" + entry.name);
    return fromPaths(paths, cfg);
}

namespace {

/** Collects a run's packets for the cross-archive merge. */
class VectorSink final : public trace::TraceSink
{
  public:
    void
    write(std::span<const trace::PacketRecord> batch) override
    {
        packets.insert(packets.end(), batch.begin(), batch.end());
    }
    void close() override {}
    uint64_t bytesWritten() const override
    {
        return packets.size() * trace::tshRecordBytes;
    }

    std::vector<trace::PacketRecord> packets;
};

/**
 * Archive-level pruning decision: an indexed archive with an empty
 * chunk plan cannot contribute a packet — unless the query uses
 * time and the archive's reconstruction gap exceeds what its index
 * was built with, in which case the timestamp bounds are invalid
 * for filtering (FccArchive::run takes its full-decode path then,
 * and the catalog must let it).
 */
bool
prunable(const FccArchive &archive, const Expr &expr)
{
    if (!archive.hasIndex())
        return false;
    if (expr.usesTime() && archive.config().defaultGapUs >
                               archive.index().gapUs)
        return false;
    return archive.plan(expr).empty();
}

/** K-way merge of per-archive canonical-sorted runs into @p sink. */
void
mergeRuns(std::vector<std::vector<trace::PacketRecord>> &runs,
          trace::TraceSink &sink, CatalogQueryStats &stats)
{
    size_t total = 0;
    for (const auto &run : runs)
        total += run.size();
    stats.packetsMatched = total;

    std::vector<trace::PacketRecord> merged;
    merged.reserve(total);

    // Heap of (run, cursor); ties broken by run id so the merge is
    // deterministic even for bit-identical packets in two archives.
    struct Cursor
    {
        size_t run;
        size_t idx;
    };
    auto greater = [&runs](const Cursor &a, const Cursor &b) {
        const trace::PacketRecord &pa = runs[a.run][a.idx];
        const trace::PacketRecord &pb = runs[b.run][b.idx];
        if (trace::packetCanonicalLess(pa, pb))
            return false;
        if (trace::packetCanonicalLess(pb, pa))
            return true;
        return a.run > b.run;
    };
    std::priority_queue<Cursor, std::vector<Cursor>,
                        decltype(greater)>
        heap(greater);
    for (size_t r = 0; r < runs.size(); ++r)
        if (!runs[r].empty())
            heap.push({r, 0});
    while (!heap.empty()) {
        Cursor c = heap.top();
        heap.pop();
        merged.push_back(runs[c.run][c.idx]);
        if (c.idx + 1 < runs[c.run].size())
            heap.push({c.run, c.idx + 1});
    }
    trace::Trace out(std::move(merged));
    trace::writeAllPackets(sink, out);
}

} // namespace

CatalogQueryStats
ArchiveCatalog::run(const Expr &expr, trace::TraceSink &sink,
                    bool forceFullDecode) const
{
    CatalogQueryStats stats;
    stats.archives = archives_.size();

    std::vector<std::vector<trace::PacketRecord>> runs;
    runs.reserve(archives_.size());
    for (const auto &archive : archives_) {
        stats.fileBytes += archive->fileBytes();
        if (!forceFullDecode && prunable(*archive, expr)) {
            ++stats.archivesPruned;
            stats.chunksTotal += archive->index().chunks.size();
            continue;
        }
        VectorSink collect;
        QueryStats s =
            archive->run(expr, collect, forceFullDecode);
        stats.chunksTotal += s.chunksTotal;
        stats.chunksDecoded += s.chunksDecoded;
        stats.bytesRead += s.bytesRead;
        stats.flowsMatched += s.flowsMatched;
        runs.push_back(std::move(collect.packets));
    }
    mergeRuns(runs, sink, stats);
    sink.close();
    return stats;
}

AggregateResult
ArchiveCatalog::aggregate(const AggregateRequest &req) const
{
    AggregateResult total;
    bool first = true;
    for (const auto &archive : archives_) {
        if (archive->hasIndex() && archive->plan(req.expr).empty()) {
            // Gap-safe for aggregates (flow-start semantics).
            AggregateResult pruned;
            pruned.stats.usedIndex = true;
            pruned.stats.chunksTotal =
                archive->index().chunks.size();
            pruned.stats.fileBytes = archive->fileBytes();
            if (first) {
                total = std::move(pruned);
                first = false;
            } else {
                mergeAggregateInto(total, pruned);
            }
            continue;
        }
        AggregateResult one = archive->aggregate(req);
        if (first) {
            total = std::move(one);
            first = false;
        } else {
            mergeAggregateInto(total, one);
        }
    }
    return total;
}

} // namespace fcc::query
