/**
 * @file
 * Multi-archive catalogs: one query surface over a directory of
 * sealed .fcc archives.
 *
 * The serving model (ROADMAP north star, after DataSeries): archives
 * are immutable time-partitioned files in a directory; a catalog
 * opens them all (mmap + tail index read — cheap), prunes whole
 * archives whose chunk plan is empty for a query expression
 * (time-partition pruning falls out of the per-chunk timestamp
 * bounds), runs the survivors' chunk-level plans, and k-way merges
 * the per-archive results into one packetCanonicalLess-ordered
 * stream. Results are bit-identical to concatenating per-archive
 * full-decode-then-filter runs and re-sorting — independent of
 * archive order, thread count, or how many archives were pruned.
 *
 * Aggregates merge per-archive results (full per-server tables, see
 * aggregate.hpp) with the same archive-level pruning.
 */

#ifndef FCC_QUERY_CATALOG_HPP
#define FCC_QUERY_CATALOG_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/aggregate.hpp"
#include "query/query.hpp"

namespace fcc::query {

/** What a catalog query touched across all member archives. */
struct CatalogQueryStats
{
    uint64_t archives = 0;       ///< archives in the catalog
    uint64_t archivesPruned = 0; ///< skipped whole via their index
    uint64_t chunksTotal = 0;    ///< chunks across all archives
    uint64_t chunksDecoded = 0;
    uint64_t fileBytes = 0;      ///< bytes across all archives
    uint64_t bytesRead = 0;
    uint64_t flowsMatched = 0;
    uint64_t packetsMatched = 0;
};

/**
 * An opened set of archives. Immutable after construction; all query
 * entry points are const and thread-safe, so one catalog instance
 * backs every concurrent fccserve request.
 */
class ArchiveCatalog
{
  public:
    /**
     * Open every regular `*.fcc` file directly inside @p directory,
     * in name order (time-partitioned layouts sort naturally).
     * @throws fcc::util::Error when the directory cannot be read or
     *         a member archive is unopenable.
     */
    explicit ArchiveCatalog(const std::string &directory,
                            const codec::fcc::FccConfig &cfg = {});

    /** Open an explicit list of archives, in the given order. */
    static ArchiveCatalog
    fromPaths(const std::vector<std::string> &paths,
              const codec::fcc::FccConfig &cfg = {});

    /**
     * Open what a continuous-capture catalog file lists
     * (`<directory>/CATALOG`, written by fccd — see
     * archive/catalog_file.hpp): the serving side of the daemon's
     * crash-safety contract, trusting exactly the archives the
     * producer has durably sealed (torn tail lines are skipped).
     * When no catalog file exists, falls back to the plain
     * directory scan.
     */
    static ArchiveCatalog
    fromCatalogFile(const std::string &directory,
                    const codec::fcc::FccConfig &cfg = {});

    size_t size() const { return archives_.size(); }

    /** Member archive @p i (construction order). */
    const FccArchive &
    archive(size_t i) const
    {
        return *archives_[i];
    }

    /**
     * Run @p expr across all member archives and emit the matching
     * packets through @p sink as one globally canonical-ordered
     * stream. Indexed archives whose whole chunk plan is empty are
     * pruned without touching their column frames (except when the
     * expression uses time and the archive's index was written with
     * a smaller reconstruction gap — then the archive takes the
     * full-decode path, like FccArchive::run).
     */
    CatalogQueryStats run(const Expr &expr, trace::TraceSink &sink,
                          bool forceFullDecode = false) const;

    /**
     * Aggregate across all member archives (per-server tables and
     * histograms merge exactly; top-K is applied at render time).
     * Archive-level pruning as in run(), but always gap-safe
     * (flow-start semantics, see aggregate.hpp).
     */
    AggregateResult aggregate(const AggregateRequest &req) const;

  private:
    ArchiveCatalog() = default;

    std::vector<std::unique_ptr<FccArchive>> archives_;
};

} // namespace fcc::query

#endif // FCC_QUERY_CATALOG_HPP
