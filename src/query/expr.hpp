/**
 * @file
 * Composable query expressions over FCC archives.
 *
 * PR 5's query::Predicate was a closed conjunction of three fixed
 * predicates. Expr replaces it with a small expression tree —
 * AND/OR/NOT over five leaf kinds — with a text grammar (parser and
 * canonical printer) and conservative per-chunk planning against the
 * index block's summaries, so arbitrary expressions still prune
 * chunks (Bloom fingerprints per server leaf, timestamp-bound
 * overlap per time leaf, interval union falling out of OR).
 *
 * Leaves and their semantics (cf. docs/QUERY.md):
 *
 *  - `server = A.B.C.D`      flow leaf: stored server (destination)
 *                            address — the 5-tuple component the
 *                            lossy codec preserves;
 *  - `server in A.B.C.D/N`   flow leaf: server address inside a
 *                            CIDR prefix;
 *  - `port = N` /
 *    `port in [LO, HI]`      flow leaf: the flow's server port (the
 *                            reconstruction writes
 *                            FccConfig::serverPort, default 80);
 *  - `time within [T0, T1]`  packet leaf: reconstructed timestamp
 *                            inside the inclusive window (seconds,
 *                            up to microsecond precision);
 *  - `flow.packets >= N`     flow leaf: flows of at least N packets;
 *  - `all`                   matches everything.
 *
 * Grammar (lowest precedence first):
 *
 *     expr   := term ('or' term)*
 *     term   := factor ('and' factor)*
 *     factor := 'not' factor | '(' expr ')' | leaf
 *
 * A flow leaf has one value for every packet of a flow; a packet
 * matches the expression iff it evaluates true with the packet's
 * timestamp and its flow's attributes — which makes AND of leaves
 * coincide exactly with the legacy Predicate semantics.
 *
 * Construction validates ranges: an inverted time window, an
 * inverted port range, an empty/overlong CIDR or a zero flow-size
 * threshold throw fcc::util::Error at parse/build time instead of
 * silently matching nothing.
 */

#ifndef FCC_QUERY_EXPR_HPP
#define FCC_QUERY_EXPR_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace fcc::codec::fcc {
struct ChunkSummary;
}

namespace fcc::query {

/**
 * Immutable query expression tree. Copies share structure; all
 * members are const-safe, so one Expr may be evaluated from many
 * threads concurrently (the serving layer does).
 */
class Expr
{
  public:
    enum class Kind : uint8_t
    {
        MatchAll,        ///< `all`
        ServerIp,        ///< `server = A.B.C.D`
        ServerCidr,      ///< `server in A.B.C.D/N`
        PortRange,       ///< `port = N` / `port in [LO, HI]`
        TimeWindow,      ///< `time within [T0, T1]`
        MinFlowPackets,  ///< `flow.packets >= N`
        And,
        Or,
        Not,
    };

    /** Default-constructed expression matches everything. */
    Expr();

    // ---- leaf factories (validating) -------------------------------

    /** Matches every packet. */
    static Expr matchAll();

    /** Flows whose stored server address equals @p ip. */
    static Expr serverIs(uint32_t ip);

    /**
     * Flows whose server address lies in @p address / @p prefixBits.
     * The address is canonicalized (host bits masked off).
     * @throws fcc::util::Error when prefixBits > 32.
     */
    static Expr serverIn(uint32_t address, uint32_t prefixBits);

    /** Flows whose server port equals @p port. */
    static Expr portIs(uint16_t port);

    /**
     * Flows whose server port lies in [lo, hi] inclusive.
     * @throws fcc::util::Error when hi < lo.
     */
    static Expr portBetween(uint16_t lo, uint16_t hi);

    /**
     * Packets whose reconstructed timestamp lies in [t0Us, t1Us]
     * inclusive (microseconds).
     * @throws fcc::util::Error when t1Us < t0Us.
     */
    static Expr timeWithin(uint64_t t0Us, uint64_t t1Us);

    /**
     * Flows of at least @p n packets.
     * @throws fcc::util::Error when n == 0 (a flow-size threshold
     *         of zero is always an authoring mistake; use `all`).
     */
    static Expr minFlowPackets(uint64_t n);

    // ---- combinators ------------------------------------------------

    /** a AND b (flattens nested ANDs into one n-ary node). */
    static Expr andOf(Expr a, Expr b);

    /** a OR b (flattens nested ORs into one n-ary node). */
    static Expr orOf(Expr a, Expr b);

    /** NOT a. */
    static Expr notOf(Expr a);

    // ---- inspection -------------------------------------------------

    Kind kind() const;

    /** True for the bare `all` expression (no filtering at all). */
    bool isMatchAll() const { return kind() == Kind::MatchAll; }

    /**
     * True when any TimeWindow leaf occurs in the tree — the
     * executor then refuses index timing bounds written with a
     * smaller reconstruction gap than the query's (see
     * FccArchive::run).
     */
    bool usesTime() const;

    /**
     * Canonical text form, parseable by parseExpr(). Parsing and
     * re-printing any printed expression is a fixed point.
     */
    std::string str() const;

    // ---- evaluation -------------------------------------------------

    /** The flow attributes a flow leaf evaluates against. */
    struct FlowView
    {
        uint32_t serverIp = 0;    ///< stored destination address
        uint16_t serverPort = 0;  ///< reconstruction server port
        uint64_t packets = 0;     ///< flow length (template size)
    };

    /** Per-flow pre-evaluation with the packet timestamp unknown. */
    enum class FlowMatch : uint8_t
    {
        Never,     ///< no packet of the flow can match
        Always,    ///< every packet of the flow matches
        PerPacket, ///< depends on the packet timestamp
    };

    /**
     * Evaluate with the time leaves undecided. Executors call this
     * once per flow and only fall back to matches() per packet on
     * PerPacket.
     */
    FlowMatch matchesFlow(const FlowView &flow) const;

    /** Full evaluation for one packet of @p flow at @p packetUs. */
    bool matches(const FlowView &flow, uint64_t packetUs) const;

    // ---- planning ---------------------------------------------------

    /**
     * Two-sided conservative verdict of one chunk against this
     * expression: @c may over-approximates "some packet of the
     * chunk matches" (false ⇒ the chunk can be skipped), @c must
     * under-approximates "every packet of the chunk matches". The
     * pair composes through NOT (may(¬e) = ¬must(e)), which is what
     * keeps planning sound for arbitrary trees.
     */
    struct ChunkMatch
    {
        bool may = true;
        bool must = false;
    };

    /**
     * Plan one chunk summary: Bloom probes for server leaves (CIDR
     * prefixes of /24 and longer enumerate their addresses; wider
     * prefixes cannot prune), timestamp-bound overlap for time
     * leaves, the flow-size maximum for flow.packets leaves. Never
     * produces a false "skip": a chunk holding a matching packet
     * always reports may == true.
     */
    ChunkMatch planChunk(const codec::fcc::ChunkSummary &chunk) const;

  private:
    struct Node;
    explicit Expr(std::shared_ptr<const Node> node);

    static void printNode(const Node &n, std::string &out);
    static bool nodeUsesTime(const Node &n);
    static FlowMatch flowMatchNode(const Node &n, const FlowView &f);
    static bool matchNode(const Node &n, const FlowView &f,
                          uint64_t packetUs);
    static ChunkMatch
    planNode(const Node &n, const codec::fcc::ChunkSummary &chunk);

    std::shared_ptr<const Node> node_;
};

/**
 * Parse the expression grammar (see file header). Accepts `==` as an
 * alias for `=`; keywords are case-sensitive and lower-case.
 * @throws fcc::util::Error on any syntax or range error, with a
 *         position-annotated message.
 */
Expr parseExpr(std::string_view text);

/**
 * Format @p us as the grammar's seconds literal (up to six fractional
 * digits, trailing zeros trimmed): 1500000 -> "1.5". Exposed for the
 * tools' output paths so printed times re-parse exactly.
 */
std::string formatSecondsUs(uint64_t us);

} // namespace fcc::query

#endif // FCC_QUERY_EXPR_HPP
