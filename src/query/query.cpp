/**
 * @file
 * Random-access execution over seekable FCC archives: open an
 * mmap'd file, plan chunks against the index block's summaries,
 * decode only the surviving chunks on the thread pool, and filter
 * to exactly the packets a full decompression would have produced
 * for the same expression.
 */

#include "query/query.hpp"

#include <algorithm>
#include <array>
#include <new>

#include "codec/fcc/datasets.hpp"
#include "trace/trace.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fcc::query {

namespace fccc = fcc::codec::fcc;

namespace {

constexpr uint32_t magicFcc3 = 0x33434346u;  // "FCC3"

/** Matching packets + flow count of one expanded record range. */
struct ChunkResult
{
    std::vector<trace::PacketRecord> packets;
    uint64_t flows = 0;
};

/**
 * Expand @p records (one chunk, or the whole legacy stream) from
 * @p rngSeed, keeping only what @p expr admits. Every record is
 * expanded even when filtered out — the RNG stream must advance
 * exactly as a full decompression would, or the surviving flows
 * would reconstruct different bytes.
 */
void
expandFiltered(const fccc::FccTraceCompressor &codec,
               const fccc::Datasets &shared,
               std::span<const fccc::TimeSeqRecord> records,
               uint64_t rngSeed, const Expr &expr,
               uint16_t serverPort, ChunkResult &out)
{
    util::Rng rng(rngSeed);
    std::vector<trace::PacketRecord> flowBuf;
    for (const fccc::TimeSeqRecord &rec : records) {
        flowBuf.clear();
        codec.expandFlow(shared, rec, rng, flowBuf);
        Expr::FlowView flow{shared.addresses[rec.addressIndex],
                            serverPort, flowBuf.size()};
        Expr::FlowMatch verdict = expr.matchesFlow(flow);
        if (verdict == Expr::FlowMatch::Never)
            continue;
        size_t emitted = 0;
        for (const trace::PacketRecord &pkt : flowBuf) {
            if (verdict == Expr::FlowMatch::PerPacket &&
                !expr.matches(flow, pkt.timestampUs()))
                continue;
            out.packets.push_back(pkt);
            ++emitted;
        }
        if (emitted > 0)
            ++out.flows;
    }
}

/**
 * Run @p count chunk jobs, on a pool when @p threadsCfg allows
 * (FccConfig::threads semantics: 0 = all cores). Jobs write to
 * fixed slots, so results never depend on the thread count.
 */
void
runChunkJobs(uint32_t threadsCfg, size_t count,
             const std::function<void(size_t)> &job)
{
    unsigned workers = threadsCfg != 0
        ? threadsCfg
        : util::ThreadPool::hardwareThreads();
    if (workers > 1 && count > 1) {
        util::ThreadPool pool(workers);
        pool.parallelFor(count, job);
    } else {
        for (size_t i = 0; i < count; ++i)
            job(i);
    }
}

/** Merge per-chunk results, sort by time, and emit through @p sink. */
void
emitResults(std::vector<ChunkResult> &results,
            trace::TraceSink &sink, QueryStats &stats)
{
    size_t total = 0;
    for (const ChunkResult &r : results)
        total += r.packets.size();
    std::vector<trace::PacketRecord> merged;
    merged.reserve(total);
    for (ChunkResult &r : results) {
        stats.flowsMatched += r.flows;
        merged.insert(merged.end(), r.packets.begin(),
                      r.packets.end());
    }
    // Canonical total order, matching the streaming decompressor's
    // flush: ties must not depend on chunk order or thread count.
    std::sort(merged.begin(), merged.end(),
              trace::packetCanonicalLess);
    trace::Trace out(std::move(merged));
    stats.packetsMatched = out.size();
    trace::writeAllPackets(sink, out);
}

/**
 * Build and validate one chunk's time-seq records from its five
 * decoded columns — the chunk-local mirror of the global FCC3
 * reassembly, validated against the already-decoded shared
 * datasets.
 */
std::vector<fccc::TimeSeqRecord>
buildChunkRecords(const fccc::Datasets &shared,
                  std::array<std::vector<uint64_t>, 5> &cols,
                  uint64_t expectedRecords)
{
    auto take32 = [](uint64_t v, const char *what) {
        util::require(v <= 0xffffffffu, what);
        return static_cast<uint32_t>(v);
    };
    const auto &time = cols[0];
    const auto &isLong = cols[1];
    const auto &tmpl = cols[2];
    const auto &rtt = cols[3];
    const auto &addr = cols[4];
    util::require(time.size() == expectedRecords &&
                      isLong.size() == expectedRecords &&
                      tmpl.size() == expectedRecords &&
                      addr.size() == expectedRecords,
                  "fcc3: chunk frame record mismatch");

    std::vector<fccc::TimeSeqRecord> records;
    records.reserve(time.size());
    size_t rttCursor = 0;
    uint64_t prevUs = 0;
    for (size_t i = 0; i < time.size(); ++i) {
        fccc::TimeSeqRecord rec;
        rec.firstTimestampUs = time[i];
        util::require(rec.firstTimestampUs >= prevUs,
                      "fcc: time-seq records not sorted");
        prevUs = rec.firstTimestampUs;
        util::require(isLong[i] <= 1, "fcc: bad dataset identifier");
        rec.isLong = isLong[i] == 1;
        rec.templateIndex = take32(
            tmpl[i], "fcc3: template index exceeds 32 bits");
        size_t limit = rec.isLong ? shared.longTemplates.size()
                                  : shared.shortTemplates.size();
        util::require(rec.templateIndex < limit,
                      "fcc: template index out of range");
        if (!rec.isLong) {
            util::require(rttCursor < rtt.size(),
                          "fcc3: ts_rtt column too short");
            rec.rttUs = take32(rtt[rttCursor++],
                               "fcc3: RTT exceeds 32 bits");
        }
        rec.addressIndex = take32(
            addr[i], "fcc3: address index exceeds 32 bits");
        util::require(rec.addressIndex < shared.addresses.size(),
                      "fcc: address index out of range");
        records.push_back(rec);
    }
    util::require(rttCursor == rtt.size(),
                  "fcc3: ts_rtt column too long");
    return records;
}

} // namespace

Expr
Predicate::toExpr() const
{
    Expr e = Expr::matchAll();
    bool any = false;
    auto add = [&](Expr leaf) {
        e = any ? Expr::andOf(std::move(e), std::move(leaf))
                : std::move(leaf);
        any = true;
    };
    if (serverIp)
        add(Expr::serverIs(*serverIp));
    if (timeUs)
        add(Expr::timeWithin(timeUs->first, timeUs->second));
    if (minFlowPackets >= 1)
        add(Expr::minFlowPackets(minFlowPackets));
    return e;
}

FccArchive::FccArchive(const std::string &path,
                       const codec::fcc::FccConfig &cfg)
    : path_(path), cfg_(cfg), src_(util::openByteSource(path))
{
    bytes_ = util::readAllBytes(*src_, owned_);
    util::require(!bytes_.empty(), "query: empty archive");

    // Only the indexed FCC3 layout is seekable; everything else
    // (row containers, unindexed FCC3, the hybrid zlib wrapper)
    // takes the full-decode path.
    if (bytes_.size() >= 11) {
        util::ByteReader r(bytes_);
        if (r.u32() == magicFcc3) {
            r.skip(6);  // weights
            uint8_t colByte = r.u8();
            indexedLayout_ =
                (colByte & fccc::indexedLayoutFlag) != 0;
        }
    }
    if (indexedLayout_) {
        try {
            index_ = fccc::readArchiveIndex(bytes_);
            if (!index_)
                indexCorrupt_ = true;  // flagged but no footer
        } catch (const util::Error &) {
            indexCorrupt_ = true;
        } catch (const std::bad_alloc &) {
            // A cap-passing corrupt count exhausted memory; the
            // index is unusable, the container may still be fine.
            indexCorrupt_ = true;
        }
    }
}

std::vector<size_t>
FccArchive::plan(const Expr &expr) const
{
    util::require(hasIndex(), "query: archive has no index");
    std::vector<size_t> out;
    for (size_t c = 0; c < index_->chunks.size(); ++c)
        if (expr.planChunk(index_->chunks[c]).may)
            out.push_back(c);
    return out;
}

std::vector<size_t>
FccArchive::plan(const Predicate &pred) const
{
    return plan(pred.toExpr());
}

QueryStats
FccArchive::run(const Expr &expr, trace::TraceSink &sink,
                bool forceFullDecode) const
{
    // The index's maxEndUs bounds assume the gap it was written
    // with; a *larger* reconstruction gap pushes packets past them,
    // so time-window pruning would silently drop matches — take the
    // (always correct) full-decode path instead.
    bool gapUnsafe = expr.usesTime() && hasIndex() &&
                     cfg_.defaultGapUs > index_->gapUs;
    if (hasIndex() && !forceFullDecode && !gapUnsafe) {
        try {
            return runIndexed(expr, sink);
        } catch (const std::bad_alloc &) {
            // A corrupt (cap-passing) count exhausted memory —
            // report bad input, like the container parsers do.
            throw util::Error("query: corrupt archive exhausts "
                              "memory");
        }
    }
    return runFullDecode(expr, sink);
}

QueryStats
FccArchive::run(const Predicate &pred, trace::TraceSink &sink,
                bool forceFullDecode) const
{
    return run(pred.toExpr(), sink, forceFullDecode);
}

FccArchive::SharedRegion
FccArchive::decodeSharedRegion() const
{
    SharedRegion region;
    region.indexBytes = fccc::indexRegionBytes(bytes_);
    region.regionEnd =
        bytes_.size() - static_cast<size_t>(region.indexBytes);

    // Header + the shared dataset frames (templates, addresses) and
    // the chunk layout — everything a selective decode needs besides
    // the chunks themselves.
    util::ByteReader r(bytes_.data(), region.regionEnd);
    util::require(r.u32() == magicFcc3, "fcc: bad magic");
    region.weights.w1 = r.u16();
    region.weights.w2 = r.u16();
    region.weights.w3 = r.u16();
    util::require(region.weights.decodable(),
                  "fcc: stored weights are not decodable");
    uint8_t colByte = r.u8();
    util::require(
        (colByte & ~(fccc::indexedLayoutFlag |
                     fccc::fidelityProfileFlag)) ==
            fccc::fcc3ColumnCount,
        "fcc3: unexpected column count");
    fccc::Fidelity fidelity = fccc::Fidelity::Exact;
    uint64_t quantumUs = 0;
    if ((colByte & fccc::fidelityProfileFlag) != 0) {
        uint8_t tag = r.u8();
        util::require(
            tag >= static_cast<uint8_t>(fccc::Fidelity::Quantized) &&
                tag <= static_cast<uint8_t>(fccc::Fidelity::Flow),
            "fcc3: unknown fidelity tag");
        fidelity = static_cast<fccc::Fidelity>(tag);
        quantumUs = r.varint();
        if (fidelity == fccc::Fidelity::Quantized)
            util::require(quantumUs >= 1,
                          "fcc3: quantized grid must be >= 1 us");
        else
            util::require(quantumUs == 0,
                          "fcc3: unexpected fidelity parameter");
    }

    std::array<fccc::ColumnFrame, fccc::ColAddr + 1> sharedFrames;
    for (size_t c = 0; c <= fccc::ColAddr; ++c)
        sharedFrames[c] = fccc::readColumnFrame(r);
    fccc::ColumnFrame chunkLenFrame = fccc::readColumnFrame(r);
    region.sharedEnd = r.position();

    fccc::Fcc3Columns columns;
    for (size_t c = 0; c <= fccc::ColAddr; ++c)
        columns[c] = fccc::decodeColumnFrame(sharedFrames[c]);
    region.chunkLen = fccc::decodeColumnFrame(chunkLenFrame);
    // The flow profile's shared region carries no templates, so the
    // standard assembly (which accepts empty template columns) works
    // for every tier; the tag just rides along on the datasets.
    region.shared =
        fccc::assembleFcc3Columns(region.weights, columns);
    region.shared.fidelity = fidelity;
    region.shared.quantumUs = quantumUs;

    util::require(index_->chunks.size() == region.chunkLen.size(),
                  "fcc index: chunk count disagrees with container");
    return region;
}

const fccc::ChunkSummary &
FccArchive::checkedChunk(const SharedRegion &region, size_t c) const
{
    const fccc::ChunkSummary &s = index_->chunks[c];
    util::require(s.records == region.chunkLen[c],
                  "fcc index: record count disagrees with "
                  "container");
    util::require(s.byteOffset >= region.sharedEnd &&
                      s.byteOffset <= region.regionEnd &&
                      s.byteLength <=
                          region.regionEnd - s.byteOffset,
                  "fcc index: chunk range out of bounds");
    return s;
}

QueryStats
FccArchive::runIndexed(const Expr &expr,
                       trace::TraceSink &sink) const
{
    QueryStats stats;
    stats.usedIndex = true;
    stats.fileBytes = bytes_.size();

    SharedRegion region = decodeSharedRegion();
    util::require(region.shared.fidelity != fccc::Fidelity::Flow,
                  "query: flow-fidelity archives carry no "
                  "per-packet data; use aggregate queries");
    stats.chunksTotal = region.chunkLen.size();

    std::vector<size_t> planned = plan(expr);
    stats.chunksDecoded = planned.size();
    stats.bytesRead = region.sharedEnd + region.indexBytes;

    for (size_t c : planned)
        stats.bytesRead += checkedChunk(region, c).byteLength;

    fccc::FccTraceCompressor codec(cfg_);
    std::vector<ChunkResult> results(planned.size());
    auto decodeOne = [&](size_t i) {
        size_t c = planned[i];
        const fccc::ChunkSummary &s = index_->chunks[c];
        util::ByteReader cr(bytes_.data() + s.byteOffset,
                            static_cast<size_t>(s.byteLength));
        std::array<std::vector<uint64_t>, 5> cols;
        for (size_t k = 0; k < 5; ++k)
            cols[k] =
                fccc::decodeColumnFrame(fccc::readColumnFrame(cr));
        util::require(cr.exhausted(),
                      "fcc index: chunk range has trailing bytes");
        std::vector<fccc::TimeSeqRecord> records =
            buildChunkRecords(region.shared, cols,
                              region.chunkLen[c]);
        expandFiltered(codec, region.shared, records,
                       fccc::chunkRngSeed(cfg_.decompressSeed, c),
                       expr, cfg_.serverPort, results[i]);
    };
    runChunkJobs(cfg_.threads, planned.size(), decodeOne);

    emitResults(results, sink, stats);
    return stats;
}

QueryStats
FccArchive::runFullDecode(const Expr &expr,
                          trace::TraceSink &sink) const
{
    QueryStats stats;
    stats.usedIndex = false;
    stats.fileBytes = bytes_.size();
    stats.bytesRead = bytes_.size();

    fccc::Datasets d = fccc::deserializeAuto(bytes_, cfg_.threads);
    util::require(d.fidelity != fccc::Fidelity::Flow,
                  "query: flow-fidelity archives carry no "
                  "per-packet data; use aggregate queries");
    fccc::FccTraceCompressor codec(cfg_);

    if (d.chunkSizes.empty()) {
        // Legacy layout: one sequential RNG stream over everything.
        stats.chunksTotal = 1;
        stats.chunksDecoded = 1;
        std::vector<ChunkResult> results(1);
        expandFiltered(codec, d, d.timeSeq, cfg_.decompressSeed,
                       expr, cfg_.serverPort, results[0]);
        emitResults(results, sink, stats);
        return stats;
    }

    size_t chunks = d.chunkSizes.size();
    stats.chunksTotal = chunks;
    stats.chunksDecoded = chunks;
    std::vector<size_t> offset(chunks + 1, 0);
    for (size_t c = 0; c < chunks; ++c)
        offset[c + 1] = offset[c] + d.chunkSizes[c];
    util::require(offset[chunks] == d.timeSeq.size(),
                  "fcc: chunk sizes disagree with time-seq");

    std::vector<ChunkResult> results(chunks);
    auto expandOne = [&](size_t c) {
        std::span<const fccc::TimeSeqRecord> records(
            d.timeSeq.data() + offset[c], d.chunkSizes[c]);
        expandFiltered(codec, d, records,
                       fccc::chunkRngSeed(cfg_.decompressSeed, c),
                       expr, cfg_.serverPort, results[c]);
    };
    runChunkJobs(cfg_.threads, chunks, expandOne);
    emitResults(results, sink, stats);
    return stats;
}

} // namespace fcc::query
