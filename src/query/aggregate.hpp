/**
 * @file
 * Aggregate queries over FCC archives — computed on the compressed
 * representation.
 *
 * Every flow's packet count and wire-byte total is a function of its
 * *template* alone: the S values decode to per-packet size classes
 * (flow/characterize.hpp), each class maps to a representative
 * payload (FccConfig::smallPayload / largePayload), and a stored
 * header is 40 B + payload. So per-server flow counts, byte
 * histograms and top-K talkers need only three of a chunk's five
 * column frames (flow kind, template id, server address — plus the
 * start-time column when the expression filters on time), never the
 * RNG expansion: no packets are reconstructed, the RTT column is
 * never decoded, and unplanned chunks are never touched.
 *
 * Time semantics: aggregates weigh whole flows, so a `time within`
 * leaf selects flows *starting* inside the window (packet-granular
 * time selection requires reconstruction — use FccArchive::run).
 * Flow-start pruning is safe for any reconstruction gap: a chunk's
 * maxEndUs upper-bounds every flow's end and therefore every flow's
 * start, whatever gap the index was written with — aggregates never
 * need the gap-mismatch full-decode fallback the filter path takes.
 *
 * Archives without a usable index fall back to deserializing the
 * container (still no packet expansion). AggregateStats reports the
 * bytes actually touched next to what the packet-reconstructing
 * equivalent (FccArchive::run of the same expression) would read.
 */

#ifndef FCC_QUERY_AGGREGATE_HPP
#define FCC_QUERY_AGGREGATE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "query/expr.hpp"

namespace fcc::query {

/** Which aggregate a request renders/serves (the engine computes
 *  one result model covering all three). */
enum class AggregateKind : uint8_t
{
    FlowCounts = 0,    ///< per-server flows / packets / bytes
    ByteHistogram = 1, ///< log2 histogram of per-flow wire bytes
    TopTalkers = 2,    ///< top-K servers by wire bytes
};

/** An aggregate query: what to compute over which flows. */
struct AggregateRequest
{
    AggregateKind kind = AggregateKind::FlowCounts;
    /** Flow filter; `time within` selects on flow start time. */
    Expr expr;
    /** TopTalkers only: how many servers to render/serve. */
    uint32_t topK = 10;
};

/** Totals for one server address. */
struct ServerAggregate
{
    uint32_t serverIp = 0;
    uint64_t flows = 0;
    uint64_t packets = 0;
    /** Stored wire bytes: 40 B TCP/IP header + representative
     *  payload per packet. */
    uint64_t wireBytes = 0;
};

/** Log2 buckets of per-flow wire-byte totals: bucket b counts flows
 *  with total in [2^(b-1), 2^b) (bucket 0: empty flows). */
constexpr size_t aggregateHistogramBuckets = 48;

/** What an aggregate run touched. */
struct AggregateStats
{
    bool usedIndex = false;
    uint64_t chunksTotal = 0;
    uint64_t chunksPlanned = 0;  ///< chunks the plan kept
    uint64_t fileBytes = 0;
    /** Archive bytes this aggregate read: header + shared frames +
     *  index + only the decoded column frames of planned chunks. */
    uint64_t bytesTouched = 0;
    /** What FccArchive::run of the same expression reads — the
     *  cheapest packet-reconstructing equivalent. */
    uint64_t reconstructBytes = 0;
    uint64_t flowsAggregated = 0;
};

/**
 * One archive's (or a merged catalog's) aggregate. `servers` is the
 * complete per-server table sorted by address — top-K truncation
 * happens at render time (topTalkers), so per-archive results merge
 * correctly across a catalog.
 */
struct AggregateResult
{
    AggregateStats stats;
    std::vector<ServerAggregate> servers;
    std::vector<uint64_t> histogram =
        std::vector<uint64_t>(aggregateHistogramBuckets, 0);
};

/** Fold @p from into @p into (catalog merge): per-server totals and
 *  histogram buckets add; stats accumulate. */
void mergeAggregateInto(AggregateResult &into,
                        const AggregateResult &from);

/** The top @p k servers by wireBytes (descending, address as the
 *  deterministic tie-break). */
std::vector<ServerAggregate>
topTalkers(const AggregateResult &result, size_t k);

/**
 * Deterministic text rendering of @p result for @p req — the one
 * format fccquery --agg and `fccserve query --agg` both emit, so CI
 * can diff them byte-for-byte.
 */
std::string renderAggregate(const AggregateResult &result,
                            const AggregateRequest &req);

/** Grammar names of the aggregate kinds ("flow-counts", ...). */
const char *aggregateKindName(AggregateKind kind);

/** Parse an aggregate kind name. @throws fcc::util::Error */
AggregateKind parseAggregateKind(std::string_view name);

} // namespace fcc::query

#endif // FCC_QUERY_AGGREGATE_HPP
