/**
 * @file
 * QueryServer / QueryClient implementation. Wire layout is specified
 * in docs/PROTOCOL.md; keep the two in lockstep.
 */

#include "query/server.hpp"

#include "trace/tsh.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FCC_HAVE_SERVER 1
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define FCC_HAVE_SERVER 0
#endif

namespace fcc::query {

namespace {

/** Hard cap a client accepts for one response frame (1 GiB). */
constexpr uint64_t maxResponseBytes = uint64_t{1} << 30;

void
writeFrame(int fd, std::span<const uint8_t> body)
{
    uint8_t len[4];
    uint64_t n = body.size();
    util::require(n <= 0xffffffffu, "protocol: frame too large");
    len[0] = static_cast<uint8_t>(n);
    len[1] = static_cast<uint8_t>(n >> 8);
    len[2] = static_cast<uint8_t>(n >> 16);
    len[3] = static_cast<uint8_t>(n >> 24);
    util::sendAll(fd, len);
    util::sendAll(fd, body);
}

/**
 * Read one frame. @returns false on a clean end-of-stream between
 * frames. @throws on truncation or a frame beyond @p maxBytes.
 */
bool
readFrame(int fd, uint64_t maxBytes, std::vector<uint8_t> &body)
{
    uint8_t len[4];
    if (util::recvFully(fd, len, sizeof len) == 0)
        return false;
    uint64_t n = static_cast<uint64_t>(len[0]) |
                 static_cast<uint64_t>(len[1]) << 8 |
                 static_cast<uint64_t>(len[2]) << 16 |
                 static_cast<uint64_t>(len[3]) << 24;
    util::require(n <= maxBytes, "protocol: frame exceeds limit");
    body.resize(static_cast<size_t>(n));
    if (n > 0)
        util::recvFully(fd, body.data(), body.size());
    return true;
}

std::string
readText(util::ByteReader &r)
{
    std::span<const uint8_t> view = r.blobView();
    return std::string(reinterpret_cast<const char *>(view.data()),
                       view.size());
}

void
writeText(util::ByteWriter &w, std::string_view text)
{
    w.blob(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(text.data()),
        text.size()));
}

void
writeCatalogStats(util::ByteWriter &w,
                  const CatalogQueryStats &stats)
{
    w.u64(stats.archives);
    w.u64(stats.archivesPruned);
    w.u64(stats.chunksTotal);
    w.u64(stats.chunksDecoded);
    w.u64(stats.fileBytes);
    w.u64(stats.bytesRead);
    w.u64(stats.flowsMatched);
    w.u64(stats.packetsMatched);
}

CatalogQueryStats
readCatalogStats(util::ByteReader &r)
{
    CatalogQueryStats stats;
    stats.archives = r.u64();
    stats.archivesPruned = r.u64();
    stats.chunksTotal = r.u64();
    stats.chunksDecoded = r.u64();
    stats.fileBytes = r.u64();
    stats.bytesRead = r.u64();
    stats.flowsMatched = r.u64();
    stats.packetsMatched = r.u64();
    return stats;
}

void
writeAggregate(util::ByteWriter &w, const AggregateResult &result)
{
    const AggregateStats &s = result.stats;
    w.u8(s.usedIndex ? 1 : 0);
    w.u64(s.chunksTotal);
    w.u64(s.chunksPlanned);
    w.u64(s.fileBytes);
    w.u64(s.bytesTouched);
    w.u64(s.reconstructBytes);
    w.u64(s.flowsAggregated);
    w.varint(result.servers.size());
    for (const ServerAggregate &row : result.servers) {
        w.u32(row.serverIp);
        w.u64(row.flows);
        w.u64(row.packets);
        w.u64(row.wireBytes);
    }
    w.varint(result.histogram.size());
    for (uint64_t n : result.histogram)
        w.u64(n);
}

AggregateResult
readAggregate(util::ByteReader &r)
{
    AggregateResult result;
    AggregateStats &s = result.stats;
    s.usedIndex = r.u8() != 0;
    s.chunksTotal = r.u64();
    s.chunksPlanned = r.u64();
    s.fileBytes = r.u64();
    s.bytesTouched = r.u64();
    s.reconstructBytes = r.u64();
    s.flowsAggregated = r.u64();
    uint64_t servers = r.varint();
    util::require(servers <= r.remaining() / 28,
                  "protocol: server table overruns frame");
    result.servers.reserve(static_cast<size_t>(servers));
    for (uint64_t i = 0; i < servers; ++i) {
        ServerAggregate row;
        row.serverIp = r.u32();
        row.flows = r.u64();
        row.packets = r.u64();
        row.wireBytes = r.u64();
        result.servers.push_back(row);
    }
    uint64_t buckets = r.varint();
    util::require(buckets <= r.remaining() / 8,
                  "protocol: histogram overruns frame");
    result.histogram.assign(static_cast<size_t>(buckets), 0);
    for (uint64_t b = 0; b < buckets; ++b)
        result.histogram[static_cast<size_t>(b)] = r.u64();
    return result;
}

/** Sink streaming matches straight into TSH wire records. */
class TshBytesSink final : public trace::TraceSink
{
  public:
    explicit TshBytesSink(std::vector<uint8_t> &out) : out_(out) {}
    void
    write(std::span<const trace::PacketRecord> batch) override
    {
        for (const trace::PacketRecord &pkt : batch)
            trace::encodeTshRecord(pkt, out_);
        packets_ += batch.size();
    }
    void close() override {}
    uint64_t bytesWritten() const override { return out_.size(); }
    uint64_t packets() const { return packets_; }

  private:
    std::vector<uint8_t> &out_;
    uint64_t packets_ = 0;
};

std::vector<uint8_t>
errorResponse(Status status, const std::string &message)
{
    util::ByteWriter w;
    w.u8(protocolVersion);
    w.u8(static_cast<uint8_t>(status));
    writeText(w, message);
    return w.take();
}

} // namespace

#if FCC_HAVE_SERVER

QueryServer::QueryServer(const ArchiveCatalog &catalog,
                         const util::SocketEndpoint &endpoint,
                         const ServerConfig &cfg)
    : catalog_(catalog), cfg_(cfg), endpoint_(endpoint)
{
    listener_ = util::listenSocket(endpoint_, cfg_.backlog);
    if (endpoint_.kind == util::SocketEndpoint::Kind::Tcp &&
        endpoint_.port == 0)
        endpoint_.port = listener_.localPort();
    if (::pipe(stopPipe_) != 0)
        throw util::Error("server: cannot create stop pipe");
}

QueryServer::~QueryServer()
{
    stop();
    for (int fd : {stopPipe_[0], stopPipe_[1]})
        if (fd >= 0)
            ::close(fd);
    listener_.reset();
    if (endpoint_.kind == util::SocketEndpoint::Kind::Unix)
        ::unlink(endpoint_.path.c_str());
}

void
QueryServer::stop()
{
    if (stopping_.exchange(true))
        return;
    uint8_t byte = 1;
    // Best-effort wakeup; serve() also rechecks the flag.
    [[maybe_unused]] ssize_t n =
        ::write(stopPipe_[1], &byte, 1);
}

void
QueryServer::serve()
{
    util::ThreadPool pool(cfg_.threads);
    while (!stopping_.load()) {
        pollfd fds[2];
        fds[0].fd = listener_.get();
        fds[0].events = POLLIN;
        fds[1].fd = stopPipe_[0];
        fds[1].events = POLLIN;
        int rc = ::poll(fds, 2, -1);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            throw util::Error("server: poll failed");
        }
        if (fds[1].revents != 0 || stopping_.load())
            break;
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        int conn = ::accept(listener_.get(), nullptr, nullptr);
        if (conn < 0)
            continue;  // transient (peer gone before accept)
        {
            std::lock_guard<std::mutex> lock(mutex_);
            connections_.insert(conn);
        }
        pool.submit([this, conn] { handleConnection(conn); });
    }
    // Unblock every job still parked in recv/send, then drain them
    // (the pool destructor runs the remaining queue to completion).
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (int fd : connections_)
            ::shutdown(fd, SHUT_RDWR);
    }
    pool.wait();
}

void
QueryServer::handleConnection(int fd)
{
    try {
        std::vector<uint8_t> body;
        while (!stopping_.load() &&
               readFrame(fd, cfg_.maxRequestBytes, body)) {
            std::vector<uint8_t> response;
            try {
                response = handleRequest(body);
            } catch (const util::Error &e) {
                response =
                    errorResponse(Status::BadRequest, e.what());
            } catch (const std::exception &e) {
                response =
                    errorResponse(Status::ServerError, e.what());
            }
            requests_.fetch_add(1);
            writeFrame(fd, response);
        }
    } catch (...) {
        // Peer vanished mid-frame or mid-send; nothing to tell it.
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        connections_.erase(fd);
    }
    ::close(fd);
}

#else // !FCC_HAVE_SERVER

QueryServer::QueryServer(const ArchiveCatalog &catalog,
                         const util::SocketEndpoint &endpoint,
                         const ServerConfig &cfg)
    : catalog_(catalog), cfg_(cfg), endpoint_(endpoint)
{
    throw util::Error(
        "fccserve is not supported on this platform");
}

QueryServer::~QueryServer() = default;
void
QueryServer::stop()
{
}
void
QueryServer::serve()
{
}
void
QueryServer::handleConnection(int)
{
}

#endif // FCC_HAVE_SERVER

std::vector<uint8_t>
QueryServer::handleRequest(std::span<const uint8_t> body)
{
    util::ByteReader r(body);
    util::require(r.u8() == protocolVersion,
                  "protocol: unsupported version");
    uint8_t opcode = r.u8();

    util::ByteWriter w;
    w.u8(protocolVersion);
    w.u8(static_cast<uint8_t>(Status::Ok));

    switch (static_cast<Opcode>(opcode)) {
    case Opcode::Ping:
        util::require(r.exhausted(),
                      "protocol: trailing request bytes");
        return w.take();

    case Opcode::ListArchives: {
        util::require(r.exhausted(),
                      "protocol: trailing request bytes");
        w.varint(catalog_.size());
        for (size_t i = 0; i < catalog_.size(); ++i) {
            const FccArchive &a = catalog_.archive(i);
            writeText(w, a.path());
            w.u8(a.hasIndex() ? 1 : 0);
            w.u64(a.fileBytes());
            w.varint(a.hasIndex() ? a.index().chunks.size() : 0);
        }
        return w.take();
    }

    case Opcode::Query: {
        uint8_t flags = r.u8();
        std::string exprText = readText(r);
        util::require(r.exhausted(),
                      "protocol: trailing request bytes");
        Expr expr = parseExpr(exprText);
        bool countOnly = (flags & queryFlagCountOnly) != 0;
        bool full = (flags & queryFlagFullDecode) != 0;

        std::vector<uint8_t> records;
        CatalogQueryStats stats;
        uint64_t packets = 0;
        if (countOnly) {
            NullTraceSink sink;
            stats = catalog_.run(expr, sink, full);
            packets = sink.packets();
        } else {
            TshBytesSink sink(records);
            stats = catalog_.run(expr, sink, full);
            packets = sink.packets();
        }
        writeCatalogStats(w, stats);
        w.u8(countOnly ? 0 : 1);
        w.u64(packets);
        if (!countOnly)
            w.bytes(records);
        return w.take();
    }

    case Opcode::Aggregate: {
        uint8_t kind = r.u8();
        uint32_t topK = r.u32();
        std::string exprText = readText(r);
        util::require(r.exhausted(),
                      "protocol: trailing request bytes");
        util::require(
            kind <= static_cast<uint8_t>(
                        AggregateKind::TopTalkers),
            "protocol: unknown aggregate kind");
        AggregateRequest req;
        req.kind = static_cast<AggregateKind>(kind);
        req.topK = topK;
        req.expr = parseExpr(exprText);
        AggregateResult result = catalog_.aggregate(req);
        writeAggregate(w, result);
        return w.take();
    }
    }
    throw util::Error("protocol: unknown opcode");
}

// ---- client ---------------------------------------------------------

QueryClient::QueryClient(const util::SocketEndpoint &endpoint)
    : fd_(util::connectSocket(endpoint))
{
}

std::vector<uint8_t>
QueryClient::roundTrip(std::span<const uint8_t> request)
{
    writeFrame(fd_.get(), request);
    std::vector<uint8_t> body;
    util::require(readFrame(fd_.get(), maxResponseBytes, body),
                  "protocol: server closed the connection");
    util::ByteReader r(body);
    util::require(r.u8() == protocolVersion,
                  "protocol: unsupported server version");
    Status status = static_cast<Status>(r.u8());
    if (status != Status::Ok) {
        util::ByteReader er(body);
        er.skip(2);
        throw util::Error("server: " + readText(er));
    }
    // Return the payload after the two header bytes.
    return std::vector<uint8_t>(body.begin() + 2, body.end());
}

void
QueryClient::ping()
{
    util::ByteWriter w;
    w.u8(protocolVersion);
    w.u8(static_cast<uint8_t>(Opcode::Ping));
    std::vector<uint8_t> payload = roundTrip(w.take());
    util::require(payload.empty(),
                  "protocol: unexpected ping payload");
}

std::vector<ArchiveInfo>
QueryClient::listArchives()
{
    util::ByteWriter w;
    w.u8(protocolVersion);
    w.u8(static_cast<uint8_t>(Opcode::ListArchives));
    std::vector<uint8_t> payload = roundTrip(w.take());
    util::ByteReader r(payload);
    uint64_t count = r.varint();
    util::require(count <= r.remaining(),
                  "protocol: archive list overruns frame");
    std::vector<ArchiveInfo> out;
    out.reserve(static_cast<size_t>(count));
    for (uint64_t i = 0; i < count; ++i) {
        ArchiveInfo info;
        info.path = readText(r);
        info.hasIndex = r.u8() != 0;
        info.fileBytes = r.u64();
        info.chunks = r.varint();
        out.push_back(std::move(info));
    }
    util::require(r.exhausted(),
                  "protocol: trailing response bytes");
    return out;
}

QueryResponse
QueryClient::query(const std::string &exprText, bool countOnly,
                   bool forceFullDecode)
{
    util::ByteWriter w;
    w.u8(protocolVersion);
    w.u8(static_cast<uint8_t>(Opcode::Query));
    uint8_t flags = 0;
    if (countOnly)
        flags |= queryFlagCountOnly;
    if (forceFullDecode)
        flags |= queryFlagFullDecode;
    w.u8(flags);
    writeText(w, exprText);

    std::vector<uint8_t> payload = roundTrip(w.take());
    util::ByteReader r(payload);
    QueryResponse resp;
    resp.stats = readCatalogStats(r);
    bool hasRecords = r.u8() != 0;
    resp.packets = r.u64();
    if (hasRecords) {
        util::require(r.remaining() ==
                          resp.packets * trace::tshRecordBytes,
                      "protocol: record payload size mismatch");
        resp.records.reserve(
            static_cast<size_t>(resp.packets));
        std::span<const uint8_t> raw(
            payload.data() + (payload.size() - r.remaining()),
            r.remaining());
        for (uint64_t i = 0; i < resp.packets; ++i)
            resp.records.push_back(trace::decodeTshRecord(
                raw.data() + i * trace::tshRecordBytes));
    } else {
        util::require(r.exhausted(),
                      "protocol: trailing response bytes");
    }
    return resp;
}

AggregateResult
QueryClient::aggregate(AggregateKind kind, uint32_t topK,
                       const std::string &exprText)
{
    util::ByteWriter w;
    w.u8(protocolVersion);
    w.u8(static_cast<uint8_t>(Opcode::Aggregate));
    w.u8(static_cast<uint8_t>(kind));
    w.u32(topK);
    writeText(w, exprText);
    std::vector<uint8_t> payload = roundTrip(w.take());
    util::ByteReader r(payload);
    AggregateResult result = readAggregate(r);
    util::require(r.exhausted(),
                  "protocol: trailing response bytes");
    return result;
}

} // namespace fcc::query
