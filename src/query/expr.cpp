/**
 * @file
 * Expression tree: construction, printing, parsing, evaluation and
 * chunk planning. See expr.hpp for the grammar and semantics.
 */

#include "query/expr.hpp"

#include <cstdio>
#include <utility>
#include <vector>

#include "codec/fcc/index.hpp"
#include "trace/packet.hpp"
#include "util/error.hpp"

namespace fcc::query {

namespace {

/** Prefix-length threshold at or above which a CIDR leaf enumerates
 *  its addresses (≤ 256 of them) through the Bloom filter instead of
 *  giving up on pruning. */
constexpr uint32_t cidrEnumerationBits = 24;

uint32_t
cidrMask(uint32_t prefixBits)
{
    return prefixBits == 0 ? 0u : ~uint32_t{0} << (32u - prefixBits);
}

} // namespace

struct Expr::Node
{
    Kind kind = Kind::MatchAll;

    // Leaf payloads (only the fields of the node's kind are set).
    uint32_t ip = 0;          ///< ServerIp / ServerCidr base
    uint32_t prefixBits = 0;  ///< ServerCidr
    uint16_t portLo = 0;      ///< PortRange
    uint16_t portHi = 0;      ///< PortRange
    uint64_t t0Us = 0;        ///< TimeWindow
    uint64_t t1Us = 0;        ///< TimeWindow
    uint64_t minPackets = 0;  ///< MinFlowPackets

    std::vector<Expr> children;  ///< And/Or: ≥2, Not: exactly 1

    // Bloom fingerprints, hashed once at construction: planNode()
    // probes the same address against every chunk of every archive,
    // so the hash must not be recomputed per (address, chunk) pair.
    codec::fcc::ServerFingerprint fp;  ///< ServerIp
    std::vector<codec::fcc::ServerFingerprint>
        cidrFps;  ///< ServerCidr, when the prefix is enumerable
};

Expr::Expr() : Expr(std::make_shared<const Node>()) {}

Expr::Expr(std::shared_ptr<const Node> node) : node_(std::move(node))
{
}

Expr::Kind
Expr::kind() const
{
    return node_->kind;
}

// ---- factories ------------------------------------------------------

Expr
Expr::matchAll()
{
    return Expr{};
}

Expr
Expr::serverIs(uint32_t ip)
{
    auto n = std::make_shared<Node>();
    n->kind = Kind::ServerIp;
    n->ip = ip;
    n->fp = codec::fcc::serverFingerprint(ip);
    return Expr{std::move(n)};
}

Expr
Expr::serverIn(uint32_t address, uint32_t prefixBits)
{
    // A /0 "prefix" constrains nothing — an empty CIDR is always a
    // spelling mistake; `all` says match-everything explicitly.
    util::require(prefixBits >= 1 && prefixBits <= 32,
                  "query expression: CIDR prefix length must be in "
                  "[1, 32]");
    auto n = std::make_shared<Node>();
    n->kind = Kind::ServerCidr;
    n->prefixBits = prefixBits;
    n->ip = address & cidrMask(prefixBits);
    if (prefixBits >= cidrEnumerationBits) {
        uint64_t count = uint64_t{1} << (32u - prefixBits);
        n->cidrFps.reserve(static_cast<size_t>(count));
        for (uint64_t i = 0; i < count; ++i)
            n->cidrFps.push_back(codec::fcc::serverFingerprint(
                n->ip + static_cast<uint32_t>(i)));
    }
    return Expr{std::move(n)};
}

Expr
Expr::portIs(uint16_t port)
{
    return portBetween(port, port);
}

Expr
Expr::portBetween(uint16_t lo, uint16_t hi)
{
    util::require(lo <= hi,
                  "query expression: inverted port range (hi < lo)");
    auto n = std::make_shared<Node>();
    n->kind = Kind::PortRange;
    n->portLo = lo;
    n->portHi = hi;
    return Expr{std::move(n)};
}

Expr
Expr::timeWithin(uint64_t t0Us, uint64_t t1Us)
{
    util::require(t0Us <= t1Us,
                  "query expression: inverted time window "
                  "(max < min)");
    auto n = std::make_shared<Node>();
    n->kind = Kind::TimeWindow;
    n->t0Us = t0Us;
    n->t1Us = t1Us;
    return Expr{std::move(n)};
}

Expr
Expr::minFlowPackets(uint64_t n)
{
    util::require(n >= 1,
                  "query expression: flow.packets threshold must be "
                  "at least 1");
    auto node = std::make_shared<Node>();
    node->kind = Kind::MinFlowPackets;
    node->minPackets = n;
    return Expr{std::move(node)};
}

// ---- combinators ----------------------------------------------------

namespace {

/** Append @p e to @p kids, splicing a same-kind n-ary child in place
 *  so `(a and b) and c` becomes one three-child AND. */
void
splice(std::vector<Expr> &kids, Expr e, Expr::Kind kind,
       const std::vector<Expr> &children)
{
    if (e.kind() == kind)
        kids.insert(kids.end(), children.begin(), children.end());
    else
        kids.push_back(std::move(e));
}

} // namespace

Expr
Expr::andOf(Expr a, Expr b)
{
    auto n = std::make_shared<Node>();
    n->kind = Kind::And;
    splice(n->children, a, Kind::And, a.node_->children);
    splice(n->children, b, Kind::And, b.node_->children);
    return Expr{std::move(n)};
}

Expr
Expr::orOf(Expr a, Expr b)
{
    auto n = std::make_shared<Node>();
    n->kind = Kind::Or;
    splice(n->children, a, Kind::Or, a.node_->children);
    splice(n->children, b, Kind::Or, b.node_->children);
    return Expr{std::move(n)};
}

Expr
Expr::notOf(Expr a)
{
    auto n = std::make_shared<Node>();
    n->kind = Kind::Not;
    n->children.push_back(std::move(a));
    return Expr{std::move(n)};
}

// ---- inspection -----------------------------------------------------

bool
Expr::nodeUsesTime(const Node &n)
{
    if (n.kind == Kind::TimeWindow)
        return true;
    for (const Expr &child : n.children)
        if (nodeUsesTime(*child.node_))
            return true;
    return false;
}

bool
Expr::usesTime() const
{
    return nodeUsesTime(*node_);
}

// ---- printer --------------------------------------------------------

std::string
formatSecondsUs(uint64_t us)
{
    std::string out = std::to_string(us / 1000000u);
    uint64_t frac = us % 1000000u;
    if (frac == 0)
        return out;
    char buf[8];
    std::snprintf(buf, sizeof buf, "%06llu",
                  static_cast<unsigned long long>(frac));
    std::string digits{buf};
    while (!digits.empty() && digits.back() == '0')
        digits.pop_back();
    out += '.';
    out += digits;
    return out;
}

void
Expr::printNode(const Node &n, std::string &out)
{
    // Parenthesize a child whose operator binds looser than its
    // context: OR under AND/NOT, AND under NOT. Leaves never need
    // parentheses, and nested same-kind n-ary nodes cannot occur
    // (the combinators flatten them).
    auto printChild = [&out](const Expr &child, bool parens) {
        if (parens)
            out += '(';
        printNode(*child.node_, out);
        if (parens)
            out += ')';
    };

    switch (n.kind) {
    case Kind::MatchAll:
        out += "all";
        return;
    case Kind::ServerIp:
        out += "server = ";
        out += trace::formatIp(n.ip);
        return;
    case Kind::ServerCidr:
        out += "server in ";
        out += trace::formatIp(n.ip);
        out += '/';
        out += std::to_string(n.prefixBits);
        return;
    case Kind::PortRange:
        if (n.portLo == n.portHi) {
            out += "port = ";
            out += std::to_string(n.portLo);
        } else {
            out += "port in [";
            out += std::to_string(n.portLo);
            out += ", ";
            out += std::to_string(n.portHi);
            out += ']';
        }
        return;
    case Kind::TimeWindow:
        out += "time within [";
        out += formatSecondsUs(n.t0Us);
        out += ", ";
        out += formatSecondsUs(n.t1Us);
        out += ']';
        return;
    case Kind::MinFlowPackets:
        out += "flow.packets >= ";
        out += std::to_string(n.minPackets);
        return;
    case Kind::And: {
        bool first = true;
        for (const Expr &child : n.children) {
            if (!first)
                out += " and ";
            first = false;
            printChild(child, child.kind() == Kind::Or);
        }
        return;
    }
    case Kind::Or: {
        bool first = true;
        for (const Expr &child : n.children) {
            if (!first)
                out += " or ";
            first = false;
            printChild(child, false);
        }
        return;
    }
    case Kind::Not: {
        const Expr &child = n.children.front();
        out += "not ";
        printChild(child, child.kind() == Kind::And ||
                              child.kind() == Kind::Or);
        return;
    }
    }
    FCC_ASSERT(false, "unreachable expression kind");
}

std::string
Expr::str() const
{
    std::string out;
    printNode(*node_, out);
    return out;
}

// ---- evaluation -----------------------------------------------------

Expr::FlowMatch
Expr::flowMatchNode(const Node &n, const FlowView &f)
{
    switch (n.kind) {
    case Kind::MatchAll:
        return FlowMatch::Always;
    case Kind::ServerIp:
        return f.serverIp == n.ip ? FlowMatch::Always
                                  : FlowMatch::Never;
    case Kind::ServerCidr:
        return (f.serverIp & cidrMask(n.prefixBits)) == n.ip
                   ? FlowMatch::Always
                   : FlowMatch::Never;
    case Kind::PortRange:
        return f.serverPort >= n.portLo && f.serverPort <= n.portHi
                   ? FlowMatch::Always
                   : FlowMatch::Never;
    case Kind::TimeWindow:
        return FlowMatch::PerPacket;
    case Kind::MinFlowPackets:
        return f.packets >= n.minPackets ? FlowMatch::Always
                                         : FlowMatch::Never;
    case Kind::And: {
        FlowMatch acc = FlowMatch::Always;
        for (const Expr &child : n.children) {
            FlowMatch m = flowMatchNode(*child.node_, f);
            if (m == FlowMatch::Never)
                return FlowMatch::Never;
            if (m == FlowMatch::PerPacket)
                acc = FlowMatch::PerPacket;
        }
        return acc;
    }
    case Kind::Or: {
        FlowMatch acc = FlowMatch::Never;
        for (const Expr &child : n.children) {
            FlowMatch m = flowMatchNode(*child.node_, f);
            if (m == FlowMatch::Always)
                return FlowMatch::Always;
            if (m == FlowMatch::PerPacket)
                acc = FlowMatch::PerPacket;
        }
        return acc;
    }
    case Kind::Not:
        switch (flowMatchNode(*n.children.front().node_, f)) {
        case FlowMatch::Always:
            return FlowMatch::Never;
        case FlowMatch::Never:
            return FlowMatch::Always;
        case FlowMatch::PerPacket:
            return FlowMatch::PerPacket;
        }
    }
    FCC_ASSERT(false, "unreachable expression kind");
    return FlowMatch::Never;
}

Expr::FlowMatch
Expr::matchesFlow(const FlowView &flow) const
{
    return flowMatchNode(*node_, flow);
}

bool
Expr::matchNode(const Node &n, const FlowView &f, uint64_t packetUs)
{
    switch (n.kind) {
    case Kind::TimeWindow:
        return packetUs >= n.t0Us && packetUs <= n.t1Us;
    case Kind::And:
        for (const Expr &child : n.children)
            if (!matchNode(*child.node_, f, packetUs))
                return false;
        return true;
    case Kind::Or:
        for (const Expr &child : n.children)
            if (matchNode(*child.node_, f, packetUs))
                return true;
        return false;
    case Kind::Not:
        return !matchNode(*n.children.front().node_, f, packetUs);
    default:
        // All remaining kinds are flow leaves: decided without the
        // packet timestamp.
        return flowMatchNode(n, f) == FlowMatch::Always;
    }
}

bool
Expr::matches(const FlowView &flow, uint64_t packetUs) const
{
    return matchNode(*node_, flow, packetUs);
}

// ---- planning -------------------------------------------------------

Expr::ChunkMatch
Expr::planNode(const Node &n, const codec::fcc::ChunkSummary &chunk)
{
    switch (n.kind) {
    case Kind::MatchAll:
        return {true, true};
    case Kind::ServerIp:
        // Bloom "maybe" can never promise every flow matches.
        return {chunk.mayContain(n.fp), false};
    case Kind::ServerCidr: {
        if (n.prefixBits < cidrEnumerationBits)
            return {true, false};
        bool may = false;
        for (const auto &fp : n.cidrFps) {
            if (chunk.mayContain(fp)) {
                may = true;
                break;
            }
        }
        return {may, false};
    }
    case Kind::PortRange:
        // The index has no port summary; the reconstruction's server
        // port is a config value the planner does not know.
        return {true, false};
    case Kind::TimeWindow:
        return {chunk.overlapsTime(n.t0Us, n.t1Us),
                n.t0Us <= chunk.minFirstUs &&
                    chunk.maxEndUs <= n.t1Us};
    case Kind::MinFlowPackets:
        // Every emitted packet belongs to a flow of ≥ 1 packet, so a
        // threshold of 1 holds for the whole chunk vacuously.
        return {chunk.maxFlowPackets >= n.minPackets,
                n.minPackets <= 1};
    case Kind::And: {
        ChunkMatch acc{true, true};
        for (const Expr &child : n.children) {
            ChunkMatch m = planNode(*child.node_, chunk);
            acc.may = acc.may && m.may;
            acc.must = acc.must && m.must;
        }
        return acc;
    }
    case Kind::Or: {
        ChunkMatch acc{false, false};
        for (const Expr &child : n.children) {
            ChunkMatch m = planNode(*child.node_, chunk);
            acc.may = acc.may || m.may;
            acc.must = acc.must || m.must;
        }
        return acc;
    }
    case Kind::Not: {
        ChunkMatch m = planNode(*n.children.front().node_, chunk);
        return {!m.must, !m.may};
    }
    }
    FCC_ASSERT(false, "unreachable expression kind");
    return {true, false};
}

Expr::ChunkMatch
Expr::planChunk(const codec::fcc::ChunkSummary &chunk) const
{
    return planNode(*node_, chunk);
}

// ---- parser ---------------------------------------------------------

namespace {

/**
 * Hand-rolled tokenizer + recursive-descent parser for the grammar in
 * expr.hpp. Errors carry the byte offset of the offending token.
 */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Expr
    parse()
    {
        skipSpace();
        util::require(pos_ < text_.size(),
                      "query expression: empty input");
        Expr e = parseOr();
        skipSpace();
        if (pos_ < text_.size())
            fail("trailing input after expression");
        return e;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw util::Error{"query expression: " + what +
                          " at offset " + std::to_string(pos_)};
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    atWordChar(size_t i) const
    {
        if (i >= text_.size())
            return false;
        char c = text_[i];
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '.' || c == '_';
    }

    /** Peek the keyword/identifier at the cursor ("" when none). */
    std::string_view
    peekWord()
    {
        skipSpace();
        size_t end = pos_;
        char first = end < text_.size() ? text_[end] : '\0';
        if (!((first >= 'a' && first <= 'z') ||
              (first >= 'A' && first <= 'Z')))
            return {};
        while (atWordChar(end))
            ++end;
        return text_.substr(pos_, end - pos_);
    }

    bool
    eatWord(std::string_view word)
    {
        if (peekWord() != word)
            return false;
        pos_ += word.size();
        return true;
    }

    void
    expectWord(std::string_view word)
    {
        if (!eatWord(word))
            fail("expected '" + std::string{word} + "'");
    }

    bool
    eatChar(char c)
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != c)
            return false;
        ++pos_;
        return true;
    }

    void
    expectChar(char c)
    {
        if (!eatChar(c))
            fail(std::string{"expected '"} + c + "'");
    }

    /** `=` or `==`. */
    void
    expectEquals()
    {
        expectChar('=');
        eatChar('=');
    }

    /** Scan the numeric token ([0-9.]+) at the cursor. */
    std::string_view
    scanNumeric()
    {
        skipSpace();
        size_t end = pos_;
        while (end < text_.size() &&
               ((text_[end] >= '0' && text_[end] <= '9') ||
                text_[end] == '.'))
            ++end;
        if (end == pos_)
            fail("expected a number");
        std::string_view tok = text_.substr(pos_, end - pos_);
        pos_ = end;
        return tok;
    }

    uint64_t
    parseUnsigned(std::string_view tok, uint64_t max,
                  const char *what)
    {
        uint64_t value = 0;
        if (tok.empty())
            fail(std::string{"expected "} + what);
        for (char c : tok) {
            if (c < '0' || c > '9')
                fail(std::string{"malformed "} + what);
            uint64_t digit = static_cast<uint64_t>(c - '0');
            if (value > (max - digit) / 10)
                fail(std::string{what} + " out of range");
            value = value * 10 + digit;
        }
        return value;
    }

    uint64_t
    parseUnsignedToken(uint64_t max, const char *what)
    {
        return parseUnsigned(scanNumeric(), max, what);
    }

    /**
     * Seconds literal -> microseconds, parsed as fixed-point decimal
     * (never through a double) so printed values re-parse exactly.
     */
    uint64_t
    parseSeconds()
    {
        std::string_view tok = scanNumeric();
        size_t dot = tok.find('.');
        std::string_view whole =
            dot == std::string_view::npos ? tok : tok.substr(0, dot);
        std::string_view frac =
            dot == std::string_view::npos ? std::string_view{}
                                          : tok.substr(dot + 1);
        if (dot != std::string_view::npos &&
            frac.find('.') != std::string_view::npos)
            fail("malformed seconds value");
        if (whole.empty() && frac.empty())
            fail("malformed seconds value");
        if (frac.size() > 6)
            fail("seconds value has sub-microsecond precision");
        uint64_t us =
            parseUnsigned(whole.empty() ? std::string_view{"0"}
                                        : whole,
                          ~uint64_t{0} / 1000000u, "seconds value") *
            1000000u;
        std::string fracDigits{frac};
        while (fracDigits.size() < 6)
            fracDigits += '0';
        us += parseUnsigned(fracDigits, 999999u,
                            "seconds fraction");
        return us;
    }

    /** Dotted-quad IPv4 address at the cursor. */
    uint32_t
    parseAddress()
    {
        std::string_view tok = scanNumeric();
        try {
            return trace::parseIp(std::string{tok});
        } catch (const util::Error &) {
            fail("malformed IPv4 address");
        }
    }

    Expr
    parseLeaf()
    {
        if (eatWord("all"))
            return Expr::matchAll();
        if (eatWord("server")) {
            if (eatWord("in")) {
                uint32_t addr = parseAddress();
                expectChar('/');
                uint64_t bits =
                    parseUnsignedToken(32, "CIDR prefix length");
                return Expr::serverIn(
                    addr, static_cast<uint32_t>(bits));
            }
            expectEquals();
            return Expr::serverIs(parseAddress());
        }
        if (eatWord("port")) {
            if (eatWord("in")) {
                expectChar('[');
                uint64_t lo = parseUnsignedToken(65535, "port");
                expectChar(',');
                uint64_t hi = parseUnsignedToken(65535, "port");
                expectChar(']');
                return Expr::portBetween(
                    static_cast<uint16_t>(lo),
                    static_cast<uint16_t>(hi));
            }
            expectEquals();
            uint64_t port = parseUnsignedToken(65535, "port");
            return Expr::portIs(static_cast<uint16_t>(port));
        }
        if (eatWord("time")) {
            expectWord("within");
            expectChar('[');
            uint64_t t0 = parseSeconds();
            expectChar(',');
            uint64_t t1 = parseSeconds();
            expectChar(']');
            return Expr::timeWithin(t0, t1);
        }
        if (eatWord("flow.packets")) {
            expectChar('>');
            expectChar('=');
            uint64_t n = parseUnsignedToken(
                ~uint64_t{0} - 9, "flow.packets threshold");
            return Expr::minFlowPackets(n);
        }
        fail("expected a predicate "
             "(all | server | port | time | flow.packets)");
    }

    Expr
    parseFactor()
    {
        if (eatWord("not"))
            return Expr::notOf(parseFactor());
        if (eatChar('(')) {
            Expr e = parseOr();
            expectChar(')');
            return e;
        }
        return parseLeaf();
    }

    Expr
    parseAnd()
    {
        Expr e = parseFactor();
        while (eatWord("and"))
            e = Expr::andOf(std::move(e), parseFactor());
        return e;
    }

    Expr
    parseOr()
    {
        Expr e = parseAnd();
        while (eatWord("or"))
            e = Expr::orOf(std::move(e), parseAnd());
        return e;
    }

    std::string_view text_;
    size_t pos_ = 0;
};

} // namespace

Expr
parseExpr(std::string_view text)
{
    return Parser{text}.parse();
}

} // namespace fcc::query
