/**
 * @file
 * Prefix-preserving IP address anonymization.
 *
 * The paper's introduction notes that published traces are usually
 * sanitized in ways that destroy semantic properties such as "IP
 * address structure". This module provides the alternative that does
 * not: a Crypto-PAn-style keyed bijection where two addresses
 * sharing a k-bit prefix map to addresses sharing exactly a k-bit
 * prefix. Longest-prefix-match behaviour — and with it the paper's
 * whole §6 methodology — survives anonymization when trace and
 * routing table are anonymized under the same key.
 *
 * The per-bit PRF is a keyed SplitMix64 mix (not cryptographic-grade
 * like AES-based Crypto-PAn, but the structural guarantees are
 * identical and it needs no cipher dependency).
 */

#ifndef FCC_ANALYSIS_ANONYMIZE_HPP
#define FCC_ANALYSIS_ANONYMIZE_HPP

#include <cstdint>

#include "trace/trace.hpp"

namespace fcc::analysis {

/** Keyed, prefix-preserving bijection on IPv4 addresses. */
class PrefixPreservingAnonymizer
{
  public:
    /** @param key secret key; same key, same mapping. */
    explicit PrefixPreservingAnonymizer(uint64_t key);

    /**
     * Anonymize one address. Deterministic, bijective, and
     * prefix-preserving: common prefixes of any length are exactly
     * preserved between any two inputs.
     */
    uint32_t anonymize(uint32_t addr) const;

    /**
     * Anonymize every source and destination address of a copy of
     * @p input; all other fields are untouched.
     */
    trace::Trace anonymizeTrace(const trace::Trace &input) const;

  private:
    uint64_t key_;
};

} // namespace fcc::analysis

#endif // FCC_ANALYSIS_ANONYMIZE_HPP
