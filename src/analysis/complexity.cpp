/**
 * @file
 * Trace-complexity implementation: pair-id sequence extraction,
 * empirical entropy, and the deflate-based temporal measure.
 */

#include "analysis/complexity.hpp"

#include <cmath>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "codec/deflate/deflate.hpp"
#include "util/rng.hpp"

namespace fcc::analysis {

namespace {

/** Deflated size of a u32 sequence, in bits. */
double
deflatedBits(const std::vector<uint32_t> &ids)
{
    std::vector<uint8_t> bytes(ids.size() * 4);
    for (size_t i = 0; i < ids.size(); ++i) {
        uint32_t v = ids[i];
        std::memcpy(&bytes[i * 4], &v, 4);
    }
    std::vector<uint8_t> packed = codec::deflate::deflateCompress(
        std::span<const uint8_t>(bytes.data(), bytes.size()));
    return static_cast<double>(packed.size()) * 8.0;
}

} // namespace

TraceComplexity
measureComplexity(const trace::Trace &trace, uint64_t shuffleSeed)
{
    TraceComplexity result;
    result.packets = trace.size();
    if (trace.size() == 0)
        return result;

    // Number (src, dst) pairs by first appearance so the id stream
    // itself is canonical (independent of the address values).
    std::unordered_map<uint64_t, uint32_t> pairIds;
    pairIds.reserve(trace.size());
    std::vector<uint32_t> sequence;
    sequence.reserve(trace.size());
    std::vector<uint64_t> counts;
    for (const auto &pkt : trace.packets()) {
        uint64_t key = (static_cast<uint64_t>(pkt.srcIp) << 32) |
                       pkt.dstIp;
        auto [it, inserted] =
            pairIds.emplace(key, static_cast<uint32_t>(
                                     pairIds.size()));
        if (inserted)
            counts.push_back(0);
        ++counts[it->second];
        sequence.push_back(it->second);
    }
    result.distinctPairs = counts.size();

    double n = static_cast<double>(sequence.size());
    double entropy = 0.0;
    for (uint64_t c : counts) {
        double p = static_cast<double>(c) / n;
        entropy -= p * std::log2(p);
    }
    result.pairEntropyBits = entropy;

    result.sequenceBitsPerPacket = deflatedBits(sequence) / n;

    // Seeded Fisher–Yates: the shuffled stream has the same pair
    // distribution but no temporal structure.
    std::vector<uint32_t> shuffled = sequence;
    util::Rng rng(shuffleSeed);
    for (size_t i = shuffled.size() - 1; i > 0; --i) {
        size_t j = static_cast<size_t>(rng.uniformInt(0, i));
        std::swap(shuffled[i], shuffled[j]);
    }
    result.shuffledBitsPerPacket = deflatedBits(shuffled) / n;
    return result;
}

} // namespace fcc::analysis
