/**
 * @file
 * Trace-complexity metrics after Avin, Ghobadi, Griner and Schmid
 * ("On the Complexity of Traffic Traces and Implications",
 * PAPERS.md): a packet trace is viewed as a sequence of
 * communication-pair symbols, and its difficulty is split into
 *
 *  - non-temporal complexity — the empirical entropy of the pair
 *    frequency distribution (how skewed the traffic matrix is,
 *    independent of ordering), and
 *  - temporal complexity — how much a real compressor gains from
 *    the ordering of the sequence, measured as the compressed size
 *    of the original symbol stream against a deterministically
 *    shuffled copy of itself.
 *
 * The compressor used is the library's own deflate, so the numbers
 * are reproducible without external dependencies. The scenario
 * bench (bench/scenario_matrix.cpp) records these metrics per
 * adversarial scenario to characterize how hostile each input is.
 */

#ifndef FCC_ANALYSIS_COMPLEXITY_HPP
#define FCC_ANALYSIS_COMPLEXITY_HPP

#include <cstdint>

#include "trace/trace.hpp"

namespace fcc::analysis {

/** Complexity scorecard of one trace. */
struct TraceComplexity
{
    uint64_t packets = 0;
    uint64_t distinctPairs = 0;  ///< distinct (src, dst) pairs

    /**
     * Non-temporal complexity: empirical entropy of the pair
     * distribution, in bits per packet. 0 for a single pair,
     * log2(distinctPairs) for a uniform matrix.
     */
    double pairEntropyBits = 0.0;

    /** Deflated size of the pair-id sequence, bits per packet. */
    double sequenceBitsPerPacket = 0.0;

    /** Same, for the deterministically shuffled sequence. */
    double shuffledBitsPerPacket = 0.0;

    /**
     * Temporal complexity gap: shuffled minus original bits per
     * packet. Large values mean the ordering carries structure a
     * compressor exploits; ~0 means the trace is temporally
     * featureless (e.g. a SYN flood of never-repeating pairs).
     */
    double
    temporalBitsPerPacket() const
    {
        return shuffledBitsPerPacket - sequenceBitsPerPacket;
    }
};

/**
 * Measure the complexity of @p trace. Symbols are (srcIp, dstIp)
 * pairs numbered by first appearance; the shuffle is a seeded
 * Fisher–Yates, so results are exactly reproducible.
 */
TraceComplexity measureComplexity(const trace::Trace &trace,
                                  uint64_t shuffleSeed = 2005);

} // namespace fcc::analysis

#endif // FCC_ANALYSIS_COMPLEXITY_HPP
