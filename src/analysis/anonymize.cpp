/**
 * @file
 * Crypto-PAn-style prefix-preserving anonymization: each output
 * bit XORs the input bit with a keyed PRF of the preceding prefix,
 * giving a bijection that preserves shared-prefix lengths exactly.
 */

#include "analysis/anonymize.hpp"

#include "util/hash.hpp"

namespace fcc::analysis {

PrefixPreservingAnonymizer::PrefixPreservingAnonymizer(uint64_t key)
    : key_(key)
{
}

uint32_t
PrefixPreservingAnonymizer::anonymize(uint32_t addr) const
{
    // Bit i of the output is bit i of the input XOR a PRF of the
    // input's i-bit prefix. Addresses sharing a k-bit prefix get the
    // same flips on those k bits (prefix preserved); the first
    // differing bit receives the same flip for both, so it still
    // differs (bijectivity follows by induction on bits).
    uint32_t out = 0;
    for (int i = 0; i < 32; ++i) {
        uint32_t prefix = i == 0 ? 0 : addr >> (32 - i);
        uint64_t prf = util::mix64(
            key_ ^ (static_cast<uint64_t>(prefix) << 8) ^
            static_cast<uint64_t>(i));
        uint32_t bit = (addr >> (31 - i)) & 1u;
        out = (out << 1) | (bit ^ static_cast<uint32_t>(prf & 1));
    }
    return out;
}

trace::Trace
PrefixPreservingAnonymizer::anonymizeTrace(
    const trace::Trace &input) const
{
    trace::Trace out;
    for (auto pkt : input) {
        pkt.srcIp = anonymize(pkt.srcIp);
        pkt.dstIp = anonymize(pkt.dstIp);
        out.add(pkt);
    }
    return out;
}

} // namespace fcc::analysis
