/**
 * @file
 * Semantic-property metrics of a packet trace (paper §1): the
 * properties a trace compressor must preserve for performance
 * studies —
 *
 *  - temporal locality of destination addresses (exact LRU
 *    reuse-distance distribution, O(n log n) via a Fenwick tree);
 *  - spatial locality / working-set size (distinct destinations per
 *    window);
 *  - IP address structure (distinct prefixes at /8, /16, /24 and
 *    per-bit entropy);
 *  - TCP flag sequencing (flag-class bigram distribution along each
 *    flow).
 *
 * compareSemantics() turns two traces into a scorecard of distances,
 * used to quantify how much of each property survives compression.
 */

#ifndef FCC_ANALYSIS_SEMANTIC_HPP
#define FCC_ANALYSIS_SEMANTIC_HPP

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "trace/trace.hpp"
#include "util/stats.hpp"

namespace fcc::analysis {

/**
 * Exact LRU stack (reuse) distances of the destination-address
 * stream: for every access to a previously-seen address, the number
 * of distinct addresses touched since its last access. Cold accesses
 * are counted separately.
 */
struct ReuseDistanceResult
{
    util::Ecdf distances;   ///< one sample per non-cold access
    uint64_t coldAccesses = 0;
    uint64_t totalAccesses = 0;

    /** Fraction of accesses that were to a new address. */
    double
    coldFraction() const
    {
        return totalAccesses
            ? static_cast<double>(coldAccesses) /
                  static_cast<double>(totalAccesses)
            : 0.0;
    }
};

/** Compute destination-address reuse distances of @p trace. */
ReuseDistanceResult reuseDistances(const trace::Trace &trace);

/** Address-structure summary. */
struct AddressStructure
{
    uint64_t distinctAddresses = 0;
    uint64_t distinctSlash8 = 0;
    uint64_t distinctSlash16 = 0;
    uint64_t distinctSlash24 = 0;
    /** Shannon entropy (bits) of each address bit, MSB first. */
    std::array<double, 32> bitEntropy{};

    /** Mean per-bit entropy (1.0 = uniformly random addresses). */
    double meanBitEntropy() const;
};

/** Analyze the destination addresses of @p trace. */
AddressStructure addressStructure(const trace::Trace &trace);

/**
 * Mean distinct destination addresses per non-overlapping window of
 * @p windowPackets packets (working-set size).
 */
double workingSetSize(const trace::Trace &trace, size_t windowPackets);

/**
 * Distribution of consecutive flag-class pairs along each flow
 * (keyed by 4*prev + next using flow::FlagClass codes), normalized
 * to probabilities. Captures the paper's "TCP flags sequence"
 * property without needing the flow layer as a dependency: packets
 * are grouped by exact 5-tuple.
 */
std::map<int, double> flagBigramDistribution(const trace::Trace &trace);

/** Total-variation distance between two discrete distributions. */
double tvDistance(const std::map<int, double> &a,
                  const std::map<int, double> &b);

/** Scorecard comparing the semantic properties of two traces. */
struct SemanticComparison
{
    /** KS distance between reuse-distance distributions. */
    double reuseDistanceKs = 0;
    /** |cold fraction a - cold fraction b|. */
    double coldFractionGap = 0;
    /** ratio of working-set sizes (b relative to a). */
    double workingSetRatio = 0;
    /** |mean bit entropy a - mean bit entropy b|. */
    double bitEntropyGap = 0;
    /** TV distance between flag bigram distributions. */
    double flagBigramTv = 0;
};

/**
 * Compare every semantic property of @p a and @p b (identical traces
 * score 0 / ratio 1 on all axes).
 */
SemanticComparison compareSemantics(const trace::Trace &a, const trace::Trace &b,
                                    size_t windowPackets = 1000);

} // namespace fcc::analysis

#endif // FCC_ANALYSIS_SEMANTIC_HPP
