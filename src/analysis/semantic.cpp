/**
 * @file
 * Semantic-property metrics: exact LRU reuse-distance CDF via a
 * Fenwick tree, windowed working-set sizes, per-bit address
 * entropy / distinct-prefix counts, and packet-field accuracy
 * between an original and a reconstructed trace.
 */

#include "analysis/semantic.hpp"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "flow/characterize.hpp"
#include "util/hash.hpp"
#include "util/error.hpp"

namespace fcc::analysis {

namespace {

/** Fenwick tree over access positions (1 = still "live" mark). */
class Fenwick
{
  public:
    explicit Fenwick(size_t n)
        : tree_(n + 1, 0)
    {}

    void
    add(size_t i, int delta)
    {
        for (++i; i < tree_.size(); i += i & (~i + 1))
            tree_[i] += delta;
    }

    /** Sum of [0, i]. */
    int64_t
    prefix(size_t i) const
    {
        int64_t sum = 0;
        for (++i; i > 0; i -= i & (~i + 1))
            sum += tree_[i];
        return sum;
    }

    int64_t
    total() const
    {
        return tree_.empty() ? 0 : prefix(tree_.size() - 2);
    }

  private:
    std::vector<int64_t> tree_;
};

} // namespace

ReuseDistanceResult
reuseDistances(const trace::Trace &trace)
{
    ReuseDistanceResult result;
    result.totalAccesses = trace.size();

    // Classic Bennett-Kruskal: keep a "live" mark at each address's
    // most recent position; the reuse distance is the number of live
    // marks strictly after that position.
    Fenwick marks(trace.size());
    std::unordered_map<uint32_t, size_t> lastPos;
    lastPos.reserve(trace.size());

    for (size_t i = 0; i < trace.size(); ++i) {
        uint32_t addr = trace[i].dstIp;
        auto it = lastPos.find(addr);
        if (it == lastPos.end()) {
            ++result.coldAccesses;
        } else {
            int64_t liveAfter =
                marks.total() - marks.prefix(it->second);
            result.distances.add(static_cast<double>(liveAfter));
            marks.add(it->second, -1);
        }
        marks.add(i, +1);
        lastPos[addr] = i;
    }
    return result;
}

double
AddressStructure::meanBitEntropy() const
{
    double total = 0;
    for (double e : bitEntropy)
        total += e;
    return total / 32.0;
}

AddressStructure
addressStructure(const trace::Trace &trace)
{
    AddressStructure out;
    std::unordered_set<uint32_t> addrs, s8, s16, s24;
    std::array<uint64_t, 32> ones{};
    for (const auto &pkt : trace) {
        addrs.insert(pkt.dstIp);
        s8.insert(pkt.dstIp >> 24);
        s16.insert(pkt.dstIp >> 16);
        s24.insert(pkt.dstIp >> 8);
        for (int bit = 0; bit < 32; ++bit)
            ones[bit] += (pkt.dstIp >> (31 - bit)) & 1;
    }
    out.distinctAddresses = addrs.size();
    out.distinctSlash8 = s8.size();
    out.distinctSlash16 = s16.size();
    out.distinctSlash24 = s24.size();
    double n = static_cast<double>(trace.size());
    for (int bit = 0; bit < 32 && n > 0; ++bit) {
        double p = static_cast<double>(ones[bit]) / n;
        double entropy = 0;
        if (p > 0)
            entropy -= p * std::log2(p);
        if (p < 1)
            entropy -= (1 - p) * std::log2(1 - p);
        out.bitEntropy[bit] = entropy;
    }
    return out;
}

double
workingSetSize(const trace::Trace &trace, size_t windowPackets)
{
    util::require(windowPackets >= 1,
                  "workingSetSize: window must be >= 1");
    if (trace.empty())
        return 0.0;
    double totalDistinct = 0;
    size_t windows = 0;
    std::unordered_set<uint32_t> window;
    for (size_t i = 0; i < trace.size(); ++i) {
        window.insert(trace[i].dstIp);
        if ((i + 1) % windowPackets == 0 || i + 1 == trace.size()) {
            totalDistinct += static_cast<double>(window.size());
            ++windows;
            window.clear();
        }
    }
    return totalDistinct / static_cast<double>(windows);
}

std::map<int, double>
flagBigramDistribution(const trace::Trace &trace)
{
    // Group packets by exact 5-tuple; bigrams of flag classes along
    // each group, in trace order.
    struct Tuple
    {
        uint32_t s, d;
        uint16_t sp, dp;
        uint8_t proto;
        bool operator==(const Tuple &) const = default;
    };
    struct TupleHash
    {
        size_t
        operator()(const Tuple &t) const noexcept
        {
            uint64_t h = util::mix64(
                (static_cast<uint64_t>(t.s) << 32) | t.d);
            return static_cast<size_t>(util::hashCombine(
                h, (static_cast<uint64_t>(t.sp) << 24) |
                       (static_cast<uint64_t>(t.dp) << 8) |
                       t.proto));
        }
    };

    std::unordered_map<Tuple, int, TupleHash> prevClass;
    std::map<int, double> hist;
    uint64_t total = 0;
    for (const auto &pkt : trace) {
        Tuple key{pkt.srcIp, pkt.dstIp, pkt.srcPort, pkt.dstPort,
                  pkt.protocol};
        int cls = static_cast<int>(flow::flagClass(pkt.tcpFlags));
        auto it = prevClass.find(key);
        if (it != prevClass.end()) {
            ++hist[it->second * 4 + cls];
            ++total;
            it->second = cls;
        } else {
            prevClass.emplace(key, cls);
        }
    }
    for (auto &[key, value] : hist)
        value /= static_cast<double>(total);
    return hist;
}

double
tvDistance(const std::map<int, double> &a,
           const std::map<int, double> &b)
{
    double distance = 0;
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() || ib != b.end()) {
        if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
            distance += ia->second;
            ++ia;
        } else if (ia == a.end() || ib->first < ia->first) {
            distance += ib->second;
            ++ib;
        } else {
            distance += std::abs(ia->second - ib->second);
            ++ia;
            ++ib;
        }
    }
    return distance / 2.0;
}

SemanticComparison
compareSemantics(const trace::Trace &a, const trace::Trace &b,
                 size_t windowPackets)
{
    SemanticComparison out;

    auto reuseA = reuseDistances(a);
    auto reuseB = reuseDistances(b);
    out.reuseDistanceKs =
        reuseA.distances.count() && reuseB.distances.count()
            ? reuseA.distances.ksDistance(reuseB.distances)
            : 1.0;
    out.coldFractionGap =
        std::abs(reuseA.coldFraction() - reuseB.coldFraction());

    double wsA = workingSetSize(a, windowPackets);
    double wsB = workingSetSize(b, windowPackets);
    out.workingSetRatio = wsA > 0 ? wsB / wsA : 0.0;

    out.bitEntropyGap =
        std::abs(addressStructure(a).meanBitEntropy() -
                 addressStructure(b).meanBitEntropy());

    out.flagBigramTv = tvDistance(flagBigramDistribution(a),
                                  flagBigramDistribution(b));
    return out;
}

} // namespace fcc::analysis
