/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (workload generators,
 * sampling, synthetic tables) draw from Rng so experiments are exactly
 * reproducible from a seed. The core generator is xoshiro256**.
 */

#ifndef FCC_UTIL_RNG_HPP
#define FCC_UTIL_RNG_HPP

#include <cstdint>

namespace fcc::util {

/**
 * xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also feed
 * <random> distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Seed deterministically; the same seed replays the stream. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit draw. */
    uint64_t next();

    uint64_t operator()() { return next(); }
    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~0ull; }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in (0, 1] — safe as a log() argument. */
    double uniformPos();

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    uint64_t uniformInt(uint64_t lo, uint64_t hi);

    /** Bernoulli draw with probability @p p of returning true. */
    bool chance(double p);

    /** Fork an independent generator (e.g. one per flow). */
    Rng split();

  private:
    uint64_t s_[4];
};

} // namespace fcc::util

#endif // FCC_UTIL_RNG_HPP
