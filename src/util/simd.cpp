/**
 * @file
 * The one mutable input of the scalar/accelerated dispatch: the
 * FCC_FORCE_SCALAR environment toggle, read once per process.
 */

#include "util/simd.hpp"

#include <cstdlib>

namespace fcc::util {

bool
forceScalar()
{
    static const bool forced = [] {
        const char *env = std::getenv("FCC_FORCE_SCALAR");
        return env != nullptr && env[0] != '\0' && env[0] != '0';
    }();
    return forced;
}

const char *
dispatchName()
{
    return forceScalar() ? "scalar" : "swar";
}

} // namespace fcc::util
