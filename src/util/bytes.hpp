/**
 * @file
 * Little-endian byte-oriented serialization primitives.
 *
 * ByteWriter appends primitive values to a growable buffer; ByteReader
 * consumes them back, throwing fcc::util::Error on truncation. All
 * multi-byte integers are little-endian on the wire. Variable-length
 * integers use LEB128-style base-128 encoding.
 */

#ifndef FCC_UTIL_BYTES_HPP
#define FCC_UTIL_BYTES_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "util/simd.hpp"

namespace fcc::util {

// Unaligned scalar load/store and byte-swap primitives shared by
// the trace-format parsers (TSH and pcap are big-endian on the
// wire, pcap/pcapng may be either order per file/section). All are
// memcpy-based: a single unaligned move on every mainstream target,
// with no UB on any alignment.

inline uint16_t
byteSwap16(uint16_t v)
{
    return static_cast<uint16_t>((v >> 8) | (v << 8));
}

inline uint32_t
byteSwap32(uint32_t v)
{
    return (v >> 24) | ((v >> 8) & 0xff00u) |
           ((v << 8) & 0xff0000u) | (v << 24);
}

inline uint64_t
byteSwap64(uint64_t v)
{
    return (uint64_t{byteSwap32(static_cast<uint32_t>(v))} << 32) |
           byteSwap32(static_cast<uint32_t>(v >> 32));
}

inline uint16_t
loadLe16(const uint8_t *p)
{
    uint16_t v;
    std::memcpy(&v, p, sizeof v);
    if constexpr (std::endian::native == std::endian::big)
        v = byteSwap16(v);
    return v;
}

inline uint32_t
loadLe32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, sizeof v);
    if constexpr (std::endian::native == std::endian::big)
        v = byteSwap32(v);
    return v;
}

inline uint64_t
loadLe64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, sizeof v);
    if constexpr (std::endian::native == std::endian::big)
        v = byteSwap64(v);
    return v;
}

inline uint16_t
loadBe16(const uint8_t *p)
{
    return byteSwap16(loadLe16(p));
}

inline uint32_t
loadBe32(const uint8_t *p)
{
    return byteSwap32(loadLe32(p));
}

inline void
storeLe16(std::vector<uint8_t> &out, uint16_t v)
{
    if constexpr (std::endian::native == std::endian::big)
        v = byteSwap16(v);
    uint8_t b[sizeof v];
    std::memcpy(b, &v, sizeof v);
    out.insert(out.end(), b, b + sizeof v);
}

inline void
storeLe32(std::vector<uint8_t> &out, uint32_t v)
{
    if constexpr (std::endian::native == std::endian::big)
        v = byteSwap32(v);
    uint8_t b[sizeof v];
    std::memcpy(b, &v, sizeof v);
    out.insert(out.end(), b, b + sizeof v);
}

inline void
storeLe64(std::vector<uint8_t> &out, uint64_t v)
{
    if constexpr (std::endian::native == std::endian::big)
        v = byteSwap64(v);
    uint8_t b[sizeof v];
    std::memcpy(b, &v, sizeof v);
    out.insert(out.end(), b, b + sizeof v);
}

inline void
storeBe16(std::vector<uint8_t> &out, uint16_t v)
{
    storeLe16(out, byteSwap16(v));
}

inline void
storeBe32(std::vector<uint8_t> &out, uint32_t v)
{
    storeLe32(out, byteSwap32(v));
}

/** Byte length of v's shortest LEB128 varint encoding (1-10). */
inline uint64_t
varintLen(uint64_t v)
{
    // bit_width(v|1) is 1..64; each varint byte carries 7 bits.
    return (static_cast<uint64_t>(std::bit_width(v | 1)) + 6) / 7;
}

/** Sum of varintLen over @p values (exact encoded size, no trial). */
uint64_t varintLenSum(std::span<const uint64_t> values);

/**
 * Append the LEB128 varints of @p values to @p out.
 *
 * Dispatch::Auto/Accel runs the SWAR batch path — eight values per
 * iteration when they all fit one byte, unrolled pointer writes
 * otherwise; Dispatch::Scalar runs the reference loop. Both emit the
 * identical (canonical shortest-form) byte stream.
 */
void varintEncodeBatch(std::span<const uint64_t> values,
                       std::vector<uint8_t> &out,
                       Dispatch d = Dispatch::Auto);

/**
 * Decode exactly @p count LEB128 varints from @p data into @p out
 * (which must hold @p count slots).
 *
 * @returns bytes consumed.
 * @throws fcc::util::Error on truncation, an encoding longer than 10
 *         bytes, or 64-bit overflow — the same inputs the scalar
 *         ByteReader::varint() rejects.
 */
size_t varintDecodeBatch(const uint8_t *data, size_t len,
                         uint64_t *out, size_t count,
                         Dispatch d = Dispatch::Auto);

/** Growable little-endian binary output buffer. */
class ByteWriter
{
  public:
    ByteWriter() = default;

    /** Append a single byte. */
    void u8(uint8_t v) { buf_.push_back(v); }
    /** Append a 16-bit little-endian integer. */
    void u16(uint16_t v);
    /** Append a 32-bit little-endian integer. */
    void u32(uint32_t v);
    /** Append a 64-bit little-endian integer. */
    void u64(uint64_t v);
    /** Append an unsigned LEB128 varint (1-10 bytes). */
    void varint(uint64_t v);
    /** Append raw bytes. */
    void bytes(const uint8_t *data, size_t len);
    /** Append raw bytes from a span. */
    void bytes(std::span<const uint8_t> data);
    /** Append a length-prefixed (varint) byte string. */
    void blob(std::span<const uint8_t> data);

    /** Number of bytes written so far. */
    size_t size() const { return buf_.size(); }
    /** View of the accumulated buffer. */
    const std::vector<uint8_t> &data() const { return buf_; }
    /** Move the accumulated buffer out; the writer becomes empty. */
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked little-endian binary input cursor.
 *
 * Does not own the underlying storage; callers must keep the source
 * buffer alive for the reader's lifetime.
 */
class ByteReader
{
  public:
    /** Wrap @p data / @p len ; the memory must outlive the reader. */
    ByteReader(const uint8_t *data, size_t len)
        : data_(data), len_(len)
    {}

    explicit ByteReader(std::span<const uint8_t> data)
        : ByteReader(data.data(), data.size())
    {}

    /** Read one byte. @throws Error on truncation. */
    uint8_t u8();
    /** Read a 16-bit little-endian integer. @throws Error */
    uint16_t u16();
    /** Read a 32-bit little-endian integer. @throws Error */
    uint32_t u32();
    /** Read a 64-bit little-endian integer. @throws Error */
    uint64_t u64();
    /** Read an unsigned LEB128 varint. @throws Error on overflow. */
    uint64_t varint();
    /** Read @p len raw bytes into @p out. @throws Error */
    void bytes(uint8_t *out, size_t len);
    /** Read a varint-length-prefixed byte string. @throws Error */
    std::vector<uint8_t> blob();
    /**
     * Like blob(), but a zero-copy view into the underlying buffer
     * (valid for the buffer's lifetime). @throws Error
     */
    std::span<const uint8_t> blobView();

    /** Bytes not yet consumed. */
    size_t remaining() const { return len_ - pos_; }
    /** Current cursor position. */
    size_t position() const { return pos_; }
    /** True when the whole buffer has been consumed. */
    bool exhausted() const { return pos_ == len_; }
    /** Skip @p len bytes. @throws Error on truncation. */
    void skip(size_t len);

  private:
    void need(size_t n) const;

    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
};

} // namespace fcc::util

#endif // FCC_UTIL_BYTES_HPP
