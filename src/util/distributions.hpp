/**
 * @file
 * Random-variate distributions used by the synthetic workload
 * generators: exponential, bounded Pareto, lognormal, Zipf, and a
 * generic discrete (empirical) distribution.
 *
 * Each distribution is a small immutable object sampled with an
 * externally-supplied Rng, keeping all randomness owned by callers.
 */

#ifndef FCC_UTIL_DISTRIBUTIONS_HPP
#define FCC_UTIL_DISTRIBUTIONS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace fcc::util {

/** Exponential distribution with rate lambda (mean 1/lambda). */
class Exponential
{
  public:
    /** @param lambda rate parameter; must be > 0. */
    explicit Exponential(double lambda);

    /** Draw one variate. */
    double sample(Rng &rng) const;

    /** Distribution mean (1 / lambda). */
    double mean() const { return 1.0 / lambda_; }

  private:
    double lambda_;
};

/**
 * Bounded Pareto distribution on [lo, hi] with shape alpha.
 *
 * Heavy-tailed; used for flow sizes and object sizes, matching the
 * "mice and elephants" structure the paper relies on.
 */
class BoundedPareto
{
  public:
    /**
     * @param alpha tail index; must be > 0.
     * @param lo lower bound; must be > 0.
     * @param hi upper bound; must be > lo.
     */
    BoundedPareto(double alpha, double lo, double hi);

    /** Draw one variate in [lo, hi]. */
    double sample(Rng &rng) const;

  private:
    double alpha_, lo_, hi_;
    double loPowA_, hiPowA_;
};

/** Lognormal distribution; used for round-trip times. */
class LogNormal
{
  public:
    /**
     * @param mu mean of the underlying normal.
     * @param sigma std-dev of the underlying normal; must be > 0.
     */
    LogNormal(double mu, double sigma);

    /** Draw one variate (> 0). */
    double sample(Rng &rng) const;

    /** Construct from the desired median and sigma. */
    static LogNormal fromMedian(double median, double sigma);

  private:
    double mu_, sigma_;
};

/**
 * Zipf distribution over ranks 1..n with exponent s; models server
 * popularity (spatial locality of destination addresses).
 *
 * Sampling is O(log n) via binary search over the precomputed CDF.
 */
class Zipf
{
  public:
    /**
     * @param n number of ranks; must be >= 1.
     * @param s exponent; must be >= 0 (0 = uniform).
     */
    Zipf(size_t n, double s);

    /** Draw a rank in [1, n]. */
    size_t sample(Rng &rng) const;

    size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

/**
 * Discrete distribution over arbitrary (value, weight) pairs; also
 * serves as an empirical distribution estimated from data.
 */
class Discrete
{
  public:
    /**
     * @param values outcome for each category.
     * @param weights non-negative weight per category; at least one
     *                must be positive.
     */
    Discrete(std::vector<int64_t> values, std::vector<double> weights);

    /** Draw one category value. */
    int64_t sample(Rng &rng) const;

    /** Probability assigned to category index @p i. */
    double probability(size_t i) const;

    size_t categories() const { return values_.size(); }
    int64_t valueAt(size_t i) const { return values_[i]; }

  private:
    std::vector<int64_t> values_;
    std::vector<double> cdf_;  // normalized, cdf_.back() == 1.0
};

} // namespace fcc::util

#endif // FCC_UTIL_DISTRIBUTIONS_HPP
