/**
 * @file
 * LSB-first bit streams as used by the DEFLATE wire format (RFC 1951).
 *
 * Bits are packed into bytes starting at the least significant bit;
 * Huffman codes are written most-significant-bit-first via putHuff().
 */

#ifndef FCC_UTIL_BITSTREAM_HPP
#define FCC_UTIL_BITSTREAM_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace fcc::util {

/** LSB-first bit writer producing a byte vector. */
class BitWriter
{
  public:
    /** Append the low @p nbits bits of @p value, LSB first. */
    void put(uint32_t value, int nbits);

    /**
     * Append a Huffman code: @p code holds the code with its first
     * (most significant) bit in bit position nbits-1. DEFLATE streams
     * Huffman codes MSB-first, so the bit order is reversed here.
     */
    void putHuff(uint32_t code, int nbits);

    /** Pad with zero bits to the next byte boundary. */
    void alignToByte();

    /** Append a raw byte; the stream must be byte-aligned. */
    void byte(uint8_t v);

    /** Number of complete bytes produced so far. */
    size_t byteSize() const { return buf_.size(); }
    /** True when no partial byte is pending. */
    bool aligned() const { return nbits_ == 0; }

    /** Flush any partial byte and move the buffer out. */
    std::vector<uint8_t> take();

  private:
    std::vector<uint8_t> buf_;
    uint32_t bitbuf_ = 0;
    int nbits_ = 0;
};

/** LSB-first bit reader over an immutable byte buffer. */
class BitReader
{
  public:
    explicit BitReader(std::span<const uint8_t> data)
        : data_(data.data()), len_(data.size())
    {}

    /** Read @p nbits bits (0..24), LSB first. @throws Error */
    uint32_t get(int nbits);

    /** Peek up to @p nbits bits without consuming (zero padded). */
    uint32_t peek(int nbits);

    /** Consume @p nbits bits previously peeked. */
    void consume(int nbits);

    /** Discard bits up to the next byte boundary. */
    void alignToByte();

    /** Read a raw byte; the stream must be byte-aligned. @throws Error */
    uint8_t byte();

    /** Total bits consumed so far. */
    size_t bitPosition() const { return pos_ * 8 - nbits_; }

    /** Bytes wholly or partially unread. */
    size_t remainingBytes() const { return len_ - pos_ + (nbits_ + 7) / 8; }

    /** True when every bit has been consumed. */
    bool exhausted() const { return pos_ == len_ && nbits_ == 0; }

  private:
    void fill();

    const uint8_t *data_;
    size_t len_;
    size_t pos_ = 0;
    uint64_t bitbuf_ = 0;
    int nbits_ = 0;
};

} // namespace fcc::util

#endif // FCC_UTIL_BITSTREAM_HPP
