/**
 * @file
 * xoshiro256** generator core: SplitMix64 seed expansion, next(),
 * jump(), and the convenience helpers (uniform doubles, integer
 * ranges, Bernoulli chance()).
 */

#include "util/rng.hpp"

#include "util/error.hpp"
#include "util/hash.hpp"

namespace fcc::util {

namespace {

inline uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    // SplitMix64 expansion of the seed, per the xoshiro authors'
    // recommendation; guarantees a non-zero state.
    uint64_t x = seed;
    for (auto &word : s_) {
        x += 0x9e3779b97f4a7c15ull;
        word = mix64(x);
    }
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformPos()
{
    return 1.0 - uniform();
}

uint64_t
Rng::uniformInt(uint64_t lo, uint64_t hi)
{
    FCC_ASSERT(lo <= hi, "uniformInt: empty range");
    uint64_t span = hi - lo + 1;
    if (span == 0)  // full 64-bit range
        return next();
    // Rejection sampling to avoid modulo bias.
    uint64_t limit = ~0ull - (~0ull % span);
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return lo + v % span;
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace fcc::util
