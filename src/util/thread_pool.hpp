/**
 * @file
 * Small work-stealing thread pool used by the parallel compression
 * pipeline.
 *
 * Each worker owns a deque; submitted tasks are distributed
 * round-robin and an idle worker steals from the back of a peer's
 * deque. The pool is a throughput device, not an ordering device —
 * callers that need determinism must make tasks write to
 * pre-partitioned slots (e.g. one result per shard) so the outcome is
 * independent of execution order.
 */

#ifndef FCC_UTIL_THREAD_POOL_HPP
#define FCC_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fcc::util {

/**
 * Fixed-size work-stealing pool.
 *
 * Tasks may throw; the first exception is captured and rethrown from
 * wait() (remaining tasks still run to completion so the pool stays
 * consistent).
 */
class ThreadPool
{
  public:
    /** @p threads == 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** std::thread::hardware_concurrency(), never less than 1. */
    static unsigned hardwareThreads();

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished; rethrows the
     * first exception thrown by a task.
     */
    void wait();

    /**
     * Run body(0) ... body(count - 1) across the pool and wait.
     * Indices are independent tasks balanced by work stealing.
     */
    void parallelFor(size_t count,
                     const std::function<void(size_t)> &body);

  private:
    struct Worker
    {
        std::mutex mutex;
        std::deque<std::function<void()>> queue;
    };

    bool tryRunOne(size_t self);
    void workerLoop(size_t self);

    std::vector<std::unique_ptr<Worker>> queues_;
    std::vector<std::thread> workers_;

    std::atomic<size_t> nextQueue_{0};

    /** Guards the counters, stop flag and captured error. */
    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    size_t queued_ = 0;       ///< tasks sitting in a deque
    size_t outstanding_ = 0;  ///< queued + currently executing
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

} // namespace fcc::util

#endif // FCC_UTIL_THREAD_POOL_HPP
