/**
 * @file
 * CRC-32 (ISO 3309, as used by gzip) and Adler-32 (RFC 1950) checksums.
 */

#ifndef FCC_UTIL_CHECKSUM_HPP
#define FCC_UTIL_CHECKSUM_HPP

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/simd.hpp"

namespace fcc::util {

/**
 * Incremental CRC-32 with the gzip polynomial (0xEDB88320,
 * reflected). Equivalent to zlib's crc32().
 *
 * The dispatched path folds eight bytes per step (slice-by-8); the
 * scalar path is the classic one-table byte loop. Both compute the
 * same function — the checksum never depends on the dispatch or on
 * how the input is chunked across update() calls.
 */
class Crc32
{
  public:
    explicit Crc32(Dispatch d = Dispatch::Auto) : dispatch_(d) {}

    /** Fold @p data into the running checksum. */
    void update(std::span<const uint8_t> data);
    /** Final checksum value. */
    uint32_t value() const { return ~state_; }

    /** One-shot convenience. */
    static uint32_t of(std::span<const uint8_t> data,
                       Dispatch d = Dispatch::Auto);

  private:
    uint32_t state_ = 0xffffffffu;
    Dispatch dispatch_ = Dispatch::Auto;
};

/** Incremental Adler-32 (RFC 1950). Equivalent to zlib's adler32(). */
class Adler32
{
  public:
    /** Fold @p data into the running checksum. */
    void update(std::span<const uint8_t> data);
    /** Final checksum value. */
    uint32_t value() const { return (b_ << 16) | a_; }

    /** One-shot convenience. */
    static uint32_t of(std::span<const uint8_t> data);

  private:
    uint32_t a_ = 1;
    uint32_t b_ = 0;
};

} // namespace fcc::util

#endif // FCC_UTIL_CHECKSUM_HPP
