/**
 * @file
 * CRC-32 (ISO 3309, as used by gzip) and Adler-32 (RFC 1950) checksums.
 */

#ifndef FCC_UTIL_CHECKSUM_HPP
#define FCC_UTIL_CHECKSUM_HPP

#include <cstddef>
#include <cstdint>
#include <span>

namespace fcc::util {

/**
 * Incremental CRC-32 with the gzip polynomial (0xEDB88320,
 * reflected). Equivalent to zlib's crc32().
 */
class Crc32
{
  public:
    /** Fold @p data into the running checksum. */
    void update(std::span<const uint8_t> data);
    /** Final checksum value. */
    uint32_t value() const { return ~state_; }

    /** One-shot convenience. */
    static uint32_t of(std::span<const uint8_t> data);

  private:
    uint32_t state_ = 0xffffffffu;
};

/** Incremental Adler-32 (RFC 1950). Equivalent to zlib's adler32(). */
class Adler32
{
  public:
    /** Fold @p data into the running checksum. */
    void update(std::span<const uint8_t> data);
    /** Final checksum value. */
    uint32_t value() const { return (b_ << 16) | a_; }

    /** One-shot convenience. */
    static uint32_t of(std::span<const uint8_t> data);

  private:
    uint32_t a_ = 1;
    uint32_t b_ = 0;
};

} // namespace fcc::util

#endif // FCC_UTIL_CHECKSUM_HPP
