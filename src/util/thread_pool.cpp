/**
 * @file
 * Work-stealing pool: round-robin submission into per-worker deques,
 * idle workers steal from the back of a peer's deque, wait() blocks
 * on an outstanding-task counter and rethrows task exceptions.
 *
 * Bookkeeping (queued / outstanding counters) lives under one mutex:
 * tasks in this codebase are coarse (one per shard or chunk), so
 * simplicity beats lock-free cleverness here.
 */

#include "util/thread_pool.hpp"

#include "util/error.hpp"

namespace fcc::util {

unsigned
ThreadPool::hardwareThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        queues_.push_back(std::make_unique<Worker>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    try {
        wait();
    } catch (...) {
        // Destructor must not throw; the error was the caller's to
        // collect via wait().
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    require(static_cast<bool>(task), "ThreadPool: empty task");
    size_t slot = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
                  queues_.size();
    // Count before publishing the task: a worker that dequeues it can
    // then never see the counter at zero.
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++queued_;
        ++outstanding_;
    }
    {
        std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
        queues_[slot]->queue.push_back(std::move(task));
    }
    workAvailable_.notify_one();
}

bool
ThreadPool::tryRunOne(size_t self)
{
    std::function<void()> task;
    // Own queue first (front), then steal from peers (back).
    for (size_t probe = 0; probe < queues_.size() && !task; ++probe) {
        size_t victim = (self + probe) % queues_.size();
        std::lock_guard<std::mutex> lock(queues_[victim]->mutex);
        if (queues_[victim]->queue.empty())
            continue;
        if (probe == 0) {
            task = std::move(queues_[victim]->queue.front());
            queues_[victim]->queue.pop_front();
        } else {
            task = std::move(queues_[victim]->queue.back());
            queues_[victim]->queue.pop_back();
        }
    }
    if (!task)
        return false;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        --queued_;
    }
    try {
        task();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
    bool lastOut;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        lastOut = --outstanding_ == 0;
    }
    if (lastOut)
        allDone_.notify_all();
    return true;
}

void
ThreadPool::workerLoop(size_t self)
{
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(
                lock, [this] { return stopping_ || queued_ > 0; });
            if (stopping_ && queued_ == 0)
                return;
        }
        // The dequeue can still lose a race with a peer; loop back to
        // sleep when it does.
        tryRunOne(self);
    }
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        allDone_.wait(lock, [this] { return outstanding_ == 0; });
        error = firstError_;
        firstError_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::parallelFor(size_t count,
                        const std::function<void(size_t)> &body)
{
    if (count == 0)
        return;
    if (size() <= 1 || count == 1) {
        for (size_t i = 0; i < count; ++i)
            body(i);
        return;
    }
    for (size_t i = 0; i < count; ++i)
        submit([&body, i] { body(i); });
    wait();
}

} // namespace fcc::util
