/**
 * @file
 * Runtime dispatch between the scalar reference implementations and
 * the SWAR/SIMD-accelerated variants of the byte-level hot paths
 * (varint batches, zigzag-delta, range-coder lanes, CRC-32, Bloom
 * probes).
 *
 * Every accelerated path in the tree has a scalar twin that is always
 * compiled and produces byte-identical output; the pair is selected
 * per call through a Dispatch argument defaulting to Auto. Auto
 * resolves to the accelerated path unless the process runs with
 * FCC_FORCE_SCALAR=1 (read once, cached), which forces the scalar
 * fallback everywhere — CI runs the whole test matrix that way so the
 * fallback can never rot, and the differential fuzz suite
 * (tests/test_simd.cpp) pins the two paths to byte equality.
 */

#ifndef FCC_UTIL_SIMD_HPP
#define FCC_UTIL_SIMD_HPP

#include <cstdint>

namespace fcc::util {

/** Which implementation of a dual scalar/accelerated path to run. */
enum class Dispatch : uint8_t
{
    Auto = 0,   ///< accelerated unless FCC_FORCE_SCALAR=1
    Scalar = 1, ///< the reference byte-at-a-time implementation
    Accel = 2,  ///< the SWAR/SIMD implementation unconditionally
};

/** True when FCC_FORCE_SCALAR=1 was set at process start (cached). */
bool forceScalar();

/** Resolve @p d against the environment: use the accelerated path? */
inline bool
useAccel(Dispatch d)
{
    if (d == Dispatch::Scalar)
        return false;
    if (d == Dispatch::Accel)
        return true;
    return !forceScalar();
}

/** Name of what Auto resolves to ("swar" or "scalar"), for benches. */
const char *dispatchName();

} // namespace fcc::util

#endif // FCC_UTIL_SIMD_HPP
