/**
 * @file
 * Pull-style byte streams — the bottom layer of the streaming trace
 * I/O subsystem.
 *
 * A ByteSource yields bytes in caller-sized chunks so record parsers
 * above it (TSH, pcap, pcapng) never materialize a whole file. The
 * concrete sources are a memory-mapped file reader (with madvise-based
 * residency trimming so multi-GB inputs stay at a bounded RSS), a
 * buffered stdio fallback, an in-memory span, and a generator adapter
 * used to synthesize arbitrarily large test inputs. openByteSource()
 * picks mmap when the platform supports it and silently falls back to
 * stdio otherwise.
 */

#ifndef FCC_UTIL_IO_HPP
#define FCC_UTIL_IO_HPP

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fcc::util {

/**
 * Pull interface for a finite byte stream.
 *
 * read() fills up to @p maxLen bytes and returns how many were
 * produced; 0 means end of stream (and every later call returns 0).
 * Short reads before the end are allowed — callers that need exact
 * counts should loop (see readFully()).
 */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;

    /** Produce up to @p maxLen bytes into @p out ; 0 = end. */
    virtual size_t read(uint8_t *out, size_t maxLen) = 0;

    /**
     * Whole remaining content as one contiguous span, when the
     * implementation holds it anyway (memory buffer, mmap). Empty
     * span = not available; callers must then stream via read().
     * The span is invalidated by read() and by destruction.
     */
    virtual std::span<const uint8_t> contiguous() const { return {}; }
};

/**
 * Fill exactly @p len bytes from @p src unless the stream ends first.
 *
 * @returns the number of bytes read: @p len normally, 0 on a clean
 *          end-of-stream at a read boundary.
 * @throws fcc::util::Error tagged with @p what when the stream ends
 *         mid-way (a truncated record).
 */
size_t readFully(ByteSource &src, uint8_t *out, size_t len,
                 const char *what);

/** Non-owning (or owning, via the vector overload) memory source. */
class BufferByteSource : public ByteSource
{
  public:
    /** View @p data ; the memory must outlive the source. */
    explicit BufferByteSource(std::span<const uint8_t> data)
        : view_(data)
    {}

    /** Take ownership of @p data. */
    explicit BufferByteSource(std::vector<uint8_t> data)
        : owned_(std::move(data)),
          view_(owned_.data(), owned_.size())
    {}

    size_t read(uint8_t *out, size_t maxLen) override;

    std::span<const uint8_t> contiguous() const override
    {
        return view_.subspan(pos_);
    }

  private:
    std::vector<uint8_t> owned_;
    std::span<const uint8_t> view_;
    size_t pos_ = 0;
};

/** Buffered stdio file source — the portable fallback. */
class FileByteSource : public ByteSource
{
  public:
    /** @throws fcc::util::Error when the file cannot be opened. */
    explicit FileByteSource(const std::string &path);

    size_t read(uint8_t *out, size_t maxLen) override;

  private:
    struct Closer
    {
        void operator()(std::FILE *f) const
        {
            if (f)
                std::fclose(f);
        }
    };
    std::unique_ptr<std::FILE, Closer> file_;
};

/**
 * Memory-mapped file source.
 *
 * The mapping is advised for sequential access, and the consumed
 * prefix is released (MADV_DONTNEED) every ~64 MiB so reading a
 * multi-GB trace keeps resident memory bounded instead of paging the
 * whole file in. contiguous() exposes the remaining mapping, which
 * lets zero-copy consumers (the gzip decorator, whole-buffer parsers)
 * skip the memcpy.
 */
class MmapByteSource : public ByteSource
{
  public:
    /** True when this platform supports mmap at all. */
    static bool supported();

    /** @throws fcc::util::Error when the file cannot be mapped. */
    explicit MmapByteSource(const std::string &path);
    ~MmapByteSource() override;

    MmapByteSource(const MmapByteSource &) = delete;
    MmapByteSource &operator=(const MmapByteSource &) = delete;

    size_t read(uint8_t *out, size_t maxLen) override;

    std::span<const uint8_t> contiguous() const override;

  private:
    void *map_ = nullptr;
    size_t size_ = 0;
    size_t pos_ = 0;
    size_t released_ = 0;  ///< bytes already MADV_DONTNEED'd
};

/**
 * Positioned-read file source with explicit kernel readahead — the
 * cold-cache scan path.
 *
 * Reads pread()-sized windows into a private buffer and, before
 * consuming window N, advises the kernel (posix_fadvise WILLNEED)
 * to start fetching window N+1 — so disk latency overlaps the
 * caller's decode work instead of serializing with it. Consumed
 * windows are advised DONTNEED, bounding the page-cache footprint
 * the same way MmapByteSource bounds RSS. Selected by
 * openByteSource() when FCC_READAHEAD=1.
 */
class ReadaheadByteSource : public ByteSource
{
  public:
    /** True when this platform has pread + posix_fadvise. */
    static bool supported();

    /** @throws fcc::util::Error when the file cannot be opened. */
    explicit ReadaheadByteSource(const std::string &path,
                                 size_t windowBytes = 4u << 20);
    ~ReadaheadByteSource() override;

    ReadaheadByteSource(const ReadaheadByteSource &) = delete;
    ReadaheadByteSource &
    operator=(const ReadaheadByteSource &) = delete;

    size_t read(uint8_t *out, size_t maxLen) override;

  private:
    void refill();

    int fd_ = -1;
    size_t size_ = 0;     ///< file size
    size_t nextOff_ = 0;  ///< file offset of the next window
    size_t window_ = 0;
    std::vector<uint8_t> buf_;
    size_t bufPos_ = 0;
    size_t bufLen_ = 0;
};

/**
 * Adapter that pulls bytes from a callback — used to synthesize
 * arbitrarily large logical streams (bounded-memory tests, load
 * generators) without touching the disk. The callback fills up to
 * maxLen bytes and returns the count; 0 ends the stream.
 */
class GeneratorByteSource : public ByteSource
{
  public:
    using Generator = std::function<size_t(uint8_t *out, size_t maxLen)>;

    explicit GeneratorByteSource(Generator gen) : gen_(std::move(gen)) {}

    size_t read(uint8_t *out, size_t maxLen) override;

  private:
    Generator gen_;
    bool done_ = false;
};

/**
 * Replays an already-read prefix (format sniffing) before delegating
 * to the underlying source for the rest of the stream.
 */
class PrefixedByteSource : public ByteSource
{
  public:
    PrefixedByteSource(std::vector<uint8_t> prefix,
                       std::unique_ptr<ByteSource> rest)
        : prefix_(std::move(prefix)), rest_(std::move(rest))
    {}

    size_t read(uint8_t *out, size_t maxLen) override;

  private:
    std::vector<uint8_t> prefix_;
    size_t pos_ = 0;
    std::unique_ptr<ByteSource> rest_;
};

/**
 * Push interface for a finite byte stream — the write-side twin of
 * ByteSource. close() finalizes the stream (flush, error check) and
 * is idempotent; destruction without close() is best-effort.
 */
class ByteSink
{
  public:
    virtual ~ByteSink() = default;

    /** Append @p data. @throws fcc::util::Error on I/O failure. */
    virtual void write(std::span<const uint8_t> data) = 0;

    /** Flush and finalize. @throws fcc::util::Error on I/O failure. */
    virtual void close() = 0;

    /** Total bytes accepted so far. */
    virtual uint64_t bytesWritten() const = 0;
};

/** Buffered stdio file sink. */
class FileByteSink : public ByteSink
{
  public:
    /** @throws fcc::util::Error when the file cannot be opened. */
    explicit FileByteSink(const std::string &path);
    ~FileByteSink() override;

    void write(std::span<const uint8_t> data) override;
    void close() override;
    uint64_t bytesWritten() const override { return written_; }

  private:
    std::FILE *file_ = nullptr;
    uint64_t written_ = 0;
};

/** Sink that accumulates into an in-memory vector. */
class VectorByteSink : public ByteSink
{
  public:
    void write(std::span<const uint8_t> data) override
    {
        buf_.insert(buf_.end(), data.begin(), data.end());
    }
    void close() override {}
    uint64_t bytesWritten() const override { return buf_.size(); }

    /** Move the accumulated bytes out. */
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Open @p path for streaming reads: memory-mapped when the platform
 * allows (and @p preferMmap is set), buffered stdio otherwise.
 *
 * @throws fcc::util::Error when the file cannot be opened.
 */
std::unique_ptr<ByteSource>
openByteSource(const std::string &path, bool preferMmap = true);

/**
 * The whole remaining stream of @p src as one span: zero-copy via
 * contiguous() when the source is mmap'd or in-memory, otherwise
 * drained into @p owned. The span is valid while both @p src and
 * @p owned live (and no further read() is issued).
 */
std::span<const uint8_t> readAllBytes(ByteSource &src,
                                      std::vector<uint8_t> &owned);

// ---- sockets --------------------------------------------------------
//
// Minimal blocking-socket layer for the query serving subsystem
// (query/server.hpp): endpoint addressing, listen/connect, and
// exact-count send/receive. POSIX only — on platforms without BSD
// sockets every entry point throws fcc::util::Error, mirroring how
// MmapByteSource degrades.

/**
 * A serving address: `unix:/path/to.sock` or `tcp:host:port`.
 * For TCP, an empty host means "every interface" when listening and
 * localhost when connecting; port 0 asks the kernel for an
 * ephemeral port (read it back with SocketFd::localPort()).
 */
struct SocketEndpoint
{
    enum class Kind : uint8_t
    {
        Unix,
        Tcp,
    };

    Kind kind = Kind::Unix;
    std::string path;  ///< Unix: filesystem path of the socket
    std::string host;  ///< TCP: address or name
    uint16_t port = 0; ///< TCP

    /** Parse the text form. @throws fcc::util::Error */
    static SocketEndpoint parse(const std::string &text);

    /** Canonical text form ("unix:/x", "tcp:host:port"). */
    std::string str() const;
};

/** Owning socket file descriptor (close on destruction). */
class SocketFd
{
  public:
    SocketFd() = default;
    explicit SocketFd(int fd) : fd_(fd) {}
    ~SocketFd() { reset(); }

    SocketFd(SocketFd &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    SocketFd &
    operator=(SocketFd &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    SocketFd(const SocketFd &) = delete;
    SocketFd &operator=(const SocketFd &) = delete;

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent). */
    void reset();

    /** Release ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /** The locally bound TCP port (after listenSocket with port 0).
     *  @throws fcc::util::Error on a non-IP socket. */
    uint16_t localPort() const;

  private:
    int fd_ = -1;
};

/**
 * Bind + listen on @p endpoint. A Unix endpoint unlinks a stale
 * socket file first; callers should unlink the path again after the
 * listener closes. @throws fcc::util::Error
 */
SocketFd listenSocket(const SocketEndpoint &endpoint,
                      int backlog = 16);

/** Blocking connect to @p endpoint. @throws fcc::util::Error */
SocketFd connectSocket(const SocketEndpoint &endpoint);

/** Send all of @p data (loops over partial sends, no SIGPIPE).
 *  @throws fcc::util::Error when the peer goes away. */
void sendAll(int fd, std::span<const uint8_t> data);

/**
 * Receive exactly @p len bytes.
 * @returns @p len, or 0 on a clean end-of-stream before the first
 *          byte (peer closed between frames).
 * @throws fcc::util::Error when the stream ends mid-way or on a
 *         socket error.
 */
size_t recvFully(int fd, uint8_t *out, size_t len);

} // namespace fcc::util

#endif // FCC_UTIL_IO_HPP
