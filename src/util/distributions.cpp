/**
 * @file
 * Samplers for the workload-generator distributions: exponential
 * and bounded-Pareto via inverse transform, lognormal via
 * Box-Muller, Zipf and empirical Discrete via CDF inversion.
 * Parameter validation throws util::Error at construction.
 */

#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace fcc::util {

Exponential::Exponential(double lambda)
    : lambda_(lambda)
{
    require(lambda > 0.0, "Exponential: lambda must be positive");
}

double
Exponential::sample(Rng &rng) const
{
    return -std::log(rng.uniformPos()) / lambda_;
}

BoundedPareto::BoundedPareto(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi)
{
    require(alpha > 0.0, "BoundedPareto: alpha must be positive");
    require(lo > 0.0, "BoundedPareto: lo must be positive");
    require(hi > lo, "BoundedPareto: hi must exceed lo");
    loPowA_ = std::pow(lo_, alpha_);
    hiPowA_ = std::pow(hi_, alpha_);
}

double
BoundedPareto::sample(Rng &rng) const
{
    // Inverse-CDF of the truncated Pareto.
    double u = rng.uniform();
    double x = std::pow(
        (hiPowA_ * loPowA_) /
            (u * loPowA_ + (1.0 - u) * hiPowA_),
        1.0 / alpha_);
    return std::clamp(x, lo_, hi_);
}

LogNormal::LogNormal(double mu, double sigma)
    : mu_(mu), sigma_(sigma)
{
    require(sigma > 0.0, "LogNormal: sigma must be positive");
}

double
LogNormal::sample(Rng &rng) const
{
    // Box-Muller transform.
    double u1 = rng.uniformPos();
    double u2 = rng.uniform();
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * std::numbers::pi * u2);
    return std::exp(mu_ + sigma_ * z);
}

LogNormal
LogNormal::fromMedian(double median, double sigma)
{
    require(median > 0.0, "LogNormal: median must be positive");
    return LogNormal(std::log(median), sigma);
}

Zipf::Zipf(size_t n, double s)
{
    require(n >= 1, "Zipf: need at least one rank");
    require(s >= 0.0, "Zipf: exponent must be non-negative");
    cdf_.resize(n);
    double acc = 0.0;
    for (size_t k = 1; k <= n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k), s);
        cdf_[k - 1] = acc;
    }
    for (double &v : cdf_)
        v /= acc;
}

size_t
Zipf::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<size_t>(it - cdf_.begin()) + 1;
}

Discrete::Discrete(std::vector<int64_t> values, std::vector<double> weights)
    : values_(std::move(values))
{
    require(values_.size() == weights.size(),
            "Discrete: values/weights size mismatch");
    require(!values_.empty(), "Discrete: need at least one category");
    double total = 0.0;
    for (double w : weights) {
        require(w >= 0.0, "Discrete: negative weight");
        total += w;
    }
    require(total > 0.0, "Discrete: all weights zero");
    cdf_.resize(weights.size());
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i] / total;
        cdf_[i] = acc;
    }
    cdf_.back() = 1.0;
}

int64_t
Discrete::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return values_[static_cast<size_t>(it - cdf_.begin())];
}

double
Discrete::probability(size_t i) const
{
    require(i < cdf_.size(), "Discrete: category out of range");
    return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

} // namespace fcc::util
