/**
 * @file
 * Little-endian ByteWriter/ByteReader plus LEB128-style varints.
 * All bounds violations on the read side surface as util::Error,
 * never as out-of-range memory access.
 */

#include "util/bytes.hpp"

#include <cstring>

#include "util/error.hpp"

namespace fcc::util {

void
ByteWriter::u16(uint16_t v)
{
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void
ByteWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteWriter::varint(uint64_t v)
{
    while (v >= 0x80) {
        buf_.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
}

void
ByteWriter::bytes(const uint8_t *data, size_t len)
{
    buf_.insert(buf_.end(), data, data + len);
}

void
ByteWriter::bytes(std::span<const uint8_t> data)
{
    buf_.insert(buf_.end(), data.begin(), data.end());
}

void
ByteWriter::blob(std::span<const uint8_t> data)
{
    varint(data.size());
    bytes(data);
}

void
ByteReader::need(size_t n) const
{
    if (len_ - pos_ < n)
        throw Error("ByteReader: truncated input");
}

uint8_t
ByteReader::u8()
{
    need(1);
    return data_[pos_++];
}

uint16_t
ByteReader::u16()
{
    need(2);
    uint16_t v = static_cast<uint16_t>(data_[pos_]) |
                 static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
}

uint32_t
ByteReader::u32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

uint64_t
ByteReader::u64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

uint64_t
ByteReader::varint()
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        uint8_t b = u8();
        if (shift == 63 && (b & 0x7e))
            throw Error("ByteReader: varint overflows 64 bits");
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            throw Error("ByteReader: varint too long");
    }
}

void
ByteReader::bytes(uint8_t *out, size_t len)
{
    need(len);
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
}

std::vector<uint8_t>
ByteReader::blob()
{
    uint64_t len = varint();
    need(len);
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return out;
}

std::span<const uint8_t>
ByteReader::blobView()
{
    uint64_t len = varint();
    need(len);
    std::span<const uint8_t> out(data_ + pos_,
                                 static_cast<size_t>(len));
    pos_ += len;
    return out;
}

void
ByteReader::skip(size_t len)
{
    need(len);
    pos_ += len;
}

} // namespace fcc::util
