/**
 * @file
 * Little-endian ByteWriter/ByteReader plus LEB128-style varints.
 * All bounds violations on the read side surface as util::Error,
 * never as out-of-range memory access.
 */

#include "util/bytes.hpp"

#include <cstring>

#include "util/error.hpp"

namespace fcc::util {

namespace {

/** All-continuation-bit mask: a clear byte is a complete varint. */
constexpr uint64_t swarContMask = 0x8080808080808080ull;

/**
 * Encode one varint at @p dst (>= 10 writable bytes); returns the
 * encoded length. Unrolled against varintLen so the common 1-2 byte
 * cases retire in a handful of instructions.
 */
inline size_t
encodeOneVarint(uint8_t *dst, uint64_t v)
{
    size_t n = 0;
    while (v >= 0x80) {
        dst[n++] = static_cast<uint8_t>(v) | 0x80;
        v >>= 7;
    }
    dst[n++] = static_cast<uint8_t>(v);
    return n;
}

[[noreturn]] void
throwTruncated()
{
    throw Error("ByteReader: truncated input");
}

/**
 * Decode one varint from @p p with at least 10 readable bytes;
 * advances @p p. Kept branch-light: no per-byte bounds checks.
 */
inline uint64_t
decodeOneVarintFast(const uint8_t *&p)
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        uint8_t b = *p++;
        if (shift == 63 && (b & 0x7e))
            throw Error("ByteReader: varint overflows 64 bits");
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            throw Error("ByteReader: varint too long");
    }
}

/** Bounds-checked tail variant for the last < 10 bytes of a buffer. */
inline uint64_t
decodeOneVarintChecked(const uint8_t *&p, const uint8_t *end)
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        if (p == end)
            throwTruncated();
        uint8_t b = *p++;
        if (shift == 63 && (b & 0x7e))
            throw Error("ByteReader: varint overflows 64 bits");
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            throw Error("ByteReader: varint too long");
    }
}

} // namespace

uint64_t
varintLenSum(std::span<const uint64_t> values)
{
    // Pure arithmetic per element — auto-vectorizes; exact by the
    // same bit_width identity varintLen() uses.
    uint64_t bytes = 0;
    for (uint64_t v : values)
        bytes += varintLen(v);
    return bytes;
}

void
varintEncodeBatch(std::span<const uint64_t> values,
                  std::vector<uint8_t> &out, Dispatch d)
{
    if (!useAccel(d)) {
        for (uint64_t v : values) {
            while (v >= 0x80) {
                out.push_back(static_cast<uint8_t>(v) | 0x80);
                v >>= 7;
            }
            out.push_back(static_cast<uint8_t>(v));
        }
        return;
    }

    // Block-wise: grow the output once per block to its worst case
    // (10 bytes/value), write through a raw pointer, then trim. The
    // eight-value fast path covers the dominant case of the FCC3
    // columns — runs of sub-128 values — with one load, one test and
    // one store per eight values.
    constexpr size_t blockValues = 4096;
    const uint64_t *v = values.data();
    size_t remaining = values.size();
    while (remaining > 0) {
        size_t block = remaining < blockValues ? remaining
                                               : blockValues;
        size_t base = out.size();
        out.resize(base + block * 10);
        uint8_t *dst = out.data() + base;
        size_t i = 0;
        while (i + 8 <= block) {
            uint64_t any = v[i] | v[i + 1] | v[i + 2] | v[i + 3] |
                           v[i + 4] | v[i + 5] | v[i + 6] | v[i + 7];
            if (any < 0x80) {
                uint64_t packed = v[i] | (v[i + 1] << 8) |
                                  (v[i + 2] << 16) |
                                  (v[i + 3] << 24) |
                                  (v[i + 4] << 32) |
                                  (v[i + 5] << 40) |
                                  (v[i + 6] << 48) |
                                  (v[i + 7] << 56);
                if constexpr (std::endian::native ==
                              std::endian::big)
                    packed = byteSwap64(packed);
                std::memcpy(dst, &packed, 8);
                dst += 8;
                i += 8;
                continue;
            }
            for (size_t k = 0; k < 8; ++k)
                dst += encodeOneVarint(dst, v[i + k]);
            i += 8;
        }
        for (; i < block; ++i)
            dst += encodeOneVarint(dst, v[i]);
        out.resize(static_cast<size_t>(dst - out.data()));
        v += block;
        remaining -= block;
    }
}

size_t
varintDecodeBatch(const uint8_t *data, size_t len, uint64_t *out,
                  size_t count, Dispatch d)
{
    if (!useAccel(d)) {
        ByteReader r(data, len);
        for (size_t i = 0; i < count; ++i)
            out[i] = r.varint();
        return r.position();
    }

    const uint8_t *p = data;
    const uint8_t *end = data + len;
    size_t i = 0;
    while (i < count) {
        // Eight single-byte varints at once: one load, one SWAR test.
        if (i + 8 <= count && end - p >= 8) {
            uint64_t word = loadLe64(p);
            if ((word & swarContMask) == 0) {
                out[i + 0] = word & 0xff;
                out[i + 1] = (word >> 8) & 0xff;
                out[i + 2] = (word >> 16) & 0xff;
                out[i + 3] = (word >> 24) & 0xff;
                out[i + 4] = (word >> 32) & 0xff;
                out[i + 5] = (word >> 40) & 0xff;
                out[i + 6] = (word >> 48) & 0xff;
                out[i + 7] = (word >> 56) & 0xff;
                p += 8;
                i += 8;
                continue;
            }
        }
        if (end - p >= 10)
            out[i++] = decodeOneVarintFast(p);
        else
            out[i++] = decodeOneVarintChecked(p, end);
    }
    return static_cast<size_t>(p - data);
}

void
ByteWriter::u16(uint16_t v)
{
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void
ByteWriter::u32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteWriter::u64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
ByteWriter::varint(uint64_t v)
{
    while (v >= 0x80) {
        buf_.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
}

void
ByteWriter::bytes(const uint8_t *data, size_t len)
{
    buf_.insert(buf_.end(), data, data + len);
}

void
ByteWriter::bytes(std::span<const uint8_t> data)
{
    buf_.insert(buf_.end(), data.begin(), data.end());
}

void
ByteWriter::blob(std::span<const uint8_t> data)
{
    varint(data.size());
    bytes(data);
}

void
ByteReader::need(size_t n) const
{
    if (len_ - pos_ < n)
        throw Error("ByteReader: truncated input");
}

uint8_t
ByteReader::u8()
{
    need(1);
    return data_[pos_++];
}

uint16_t
ByteReader::u16()
{
    need(2);
    uint16_t v = static_cast<uint16_t>(data_[pos_]) |
                 static_cast<uint16_t>(data_[pos_ + 1]) << 8;
    pos_ += 2;
    return v;
}

uint32_t
ByteReader::u32()
{
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

uint64_t
ByteReader::u64()
{
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

uint64_t
ByteReader::varint()
{
    uint64_t v = 0;
    int shift = 0;
    for (;;) {
        uint8_t b = u8();
        if (shift == 63 && (b & 0x7e))
            throw Error("ByteReader: varint overflows 64 bits");
        v |= static_cast<uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
        shift += 7;
        if (shift > 63)
            throw Error("ByteReader: varint too long");
    }
}

void
ByteReader::bytes(uint8_t *out, size_t len)
{
    need(len);
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
}

std::vector<uint8_t>
ByteReader::blob()
{
    uint64_t len = varint();
    need(len);
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + len);
    pos_ += len;
    return out;
}

std::span<const uint8_t>
ByteReader::blobView()
{
    uint64_t len = varint();
    need(len);
    std::span<const uint8_t> out(data_ + pos_,
                                 static_cast<size_t>(len));
    pos_ += len;
    return out;
}

void
ByteReader::skip(size_t len)
{
    need(len);
    pos_ += len;
}

} // namespace fcc::util
