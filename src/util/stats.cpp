/**
 * @file
 * Welford running Summary, fixed-width Histogram and empirical CDF
 * (sorted-sample quantiles / evaluation by binary search).
 */

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace fcc::util {

void
Summary::add(double x)
{
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

double
Summary::variance() const
{
    return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges))
{
    require(edges_.size() >= 2, "Histogram: need at least two edges");
    require(std::is_sorted(edges_.begin(), edges_.end()) &&
                std::adjacent_find(edges_.begin(), edges_.end()) ==
                    edges_.end(),
            "Histogram: edges must be strictly increasing");
    counts_.assign(edges_.size() - 1, 0);
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < edges_.front()) {
        ++underflow_;
        return;
    }
    if (x >= edges_.back()) {
        ++overflow_;
        return;
    }
    auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
    ++counts_[static_cast<size_t>(it - edges_.begin()) - 1];
}

double
Histogram::fraction(size_t i) const
{
    require(i < counts_.size(), "Histogram: bucket out of range");
    return total_ ? static_cast<double>(counts_[i]) /
                        static_cast<double>(total_)
                  : 0.0;
}

void
Ecdf::ensureSorted() const
{
    if (dirty_) {
        std::sort(sample_.begin(), sample_.end());
        dirty_ = false;
    }
}

double
Ecdf::at(double x) const
{
    if (sample_.empty())
        return 0.0;
    ensureSorted();
    auto it = std::upper_bound(sample_.begin(), sample_.end(), x);
    return static_cast<double>(it - sample_.begin()) /
           static_cast<double>(sample_.size());
}

double
Ecdf::quantile(double q) const
{
    require(!sample_.empty(), "Ecdf: quantile of empty sample");
    require(q >= 0.0 && q <= 1.0, "Ecdf: quantile out of [0,1]");
    ensureSorted();
    if (q == 0.0)
        return sample_.front();
    size_t idx = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sample_.size()))) - 1;
    idx = std::min(idx, sample_.size() - 1);
    return sample_[idx];
}

double
Ecdf::ksDistance(const Ecdf &other) const
{
    require(!sample_.empty() && !other.sample_.empty(),
            "Ecdf: KS distance needs non-empty samples");
    ensureSorted();
    other.ensureSorted();
    double d = 0.0;
    for (double x : sample_)
        d = std::max(d, std::abs(at(x) - other.at(x)));
    for (double x : other.sample_)
        d = std::max(d, std::abs(at(x) - other.at(x)));
    return d;
}

} // namespace fcc::util
