/**
 * @file
 * Table-driven CRC-32 (gzip polynomial, one 256-entry table built
 * at startup) and Adler-32 with the standard deferred-modulo batch
 * size (NMAX = 5552).
 */

#include "util/checksum.hpp"

#include <array>

namespace fcc::util {

namespace {

std::array<uint32_t, 256>
makeCrcTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<uint32_t, 256> crcTable = makeCrcTable();

// Largest n such that 255n(n+1)/2 + (n+1)(65520) fits in 32 bits.
constexpr size_t adlerNmax = 5552;
constexpr uint32_t adlerBase = 65521;

} // namespace

void
Crc32::update(std::span<const uint8_t> data)
{
    uint32_t c = state_;
    for (uint8_t byte : data)
        c = crcTable[(c ^ byte) & 0xff] ^ (c >> 8);
    state_ = c;
}

uint32_t
Crc32::of(std::span<const uint8_t> data)
{
    Crc32 crc;
    crc.update(data);
    return crc.value();
}

void
Adler32::update(std::span<const uint8_t> data)
{
    size_t i = 0;
    while (i < data.size()) {
        size_t chunk = std::min(adlerNmax, data.size() - i);
        for (size_t j = 0; j < chunk; ++j) {
            a_ += data[i + j];
            b_ += a_;
        }
        a_ %= adlerBase;
        b_ %= adlerBase;
        i += chunk;
    }
}

uint32_t
Adler32::of(std::span<const uint8_t> data)
{
    Adler32 sum;
    sum.update(data);
    return sum.value();
}

} // namespace fcc::util
