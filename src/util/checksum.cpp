/**
 * @file
 * Table-driven CRC-32 (gzip polynomial; one-table byte loop plus a
 * slice-by-8 variant that folds a 64-bit word per step) and Adler-32
 * with the standard deferred-modulo batch size (NMAX = 5552).
 */

#include "util/checksum.hpp"

#include <array>

#include "util/bytes.hpp"

namespace fcc::util {

namespace {

/**
 * Slicing tables: crcTables[0] is the classic byte table;
 * crcTables[k][b] is the CRC of byte b followed by k zero bytes, so
 * eight table lookups advance the register across a whole u64.
 */
std::array<std::array<uint32_t, 256>, 8>
makeCrcTables()
{
    std::array<std::array<uint32_t, 256>, 8> tables{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        tables[0][i] = c;
    }
    for (size_t k = 1; k < 8; ++k)
        for (uint32_t i = 0; i < 256; ++i)
            tables[k][i] = tables[0][tables[k - 1][i] & 0xff] ^
                           (tables[k - 1][i] >> 8);
    return tables;
}

const std::array<std::array<uint32_t, 256>, 8> crcTables =
    makeCrcTables();

const std::array<uint32_t, 256> &crcTable = crcTables[0];

inline uint32_t
crcBytes(uint32_t c, const uint8_t *p, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        c = crcTable[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c;
}

/** Slice-by-8: one u64 load and eight independent lookups per step. */
inline uint32_t
crcSlice8(uint32_t c, const uint8_t *p, size_t n)
{
    while (n >= 8) {
        uint64_t w = loadLe64(p) ^ c;
        c = crcTables[7][w & 0xff] ^
            crcTables[6][(w >> 8) & 0xff] ^
            crcTables[5][(w >> 16) & 0xff] ^
            crcTables[4][(w >> 24) & 0xff] ^
            crcTables[3][(w >> 32) & 0xff] ^
            crcTables[2][(w >> 40) & 0xff] ^
            crcTables[1][(w >> 48) & 0xff] ^
            crcTables[0][w >> 56];
        p += 8;
        n -= 8;
    }
    return crcBytes(c, p, n);
}

// Largest n such that 255n(n+1)/2 + (n+1)(65520) fits in 32 bits.
constexpr size_t adlerNmax = 5552;
constexpr uint32_t adlerBase = 65521;

} // namespace

void
Crc32::update(std::span<const uint8_t> data)
{
    if (useAccel(dispatch_))
        state_ = crcSlice8(state_, data.data(), data.size());
    else
        state_ = crcBytes(state_, data.data(), data.size());
}

uint32_t
Crc32::of(std::span<const uint8_t> data, Dispatch d)
{
    Crc32 crc(d);
    crc.update(data);
    return crc.value();
}

void
Adler32::update(std::span<const uint8_t> data)
{
    size_t i = 0;
    while (i < data.size()) {
        size_t chunk = std::min(adlerNmax, data.size() - i);
        for (size_t j = 0; j < chunk; ++j) {
            a_ += data[i + j];
            b_ += a_;
        }
        a_ %= adlerBase;
        b_ %= adlerBase;
        i += chunk;
    }
}

uint32_t
Adler32::of(std::span<const uint8_t> data)
{
    Adler32 sum;
    sum.update(data);
    return sum.value();
}

} // namespace fcc::util
