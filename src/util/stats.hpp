/**
 * @file
 * Descriptive statistics: running summaries, fixed-bucket histograms
 * and empirical CDFs. These back the figure-regeneration benches
 * (cumulative-traffic curves of Figs. 2 and 3).
 */

#ifndef FCC_UTIL_STATS_HPP
#define FCC_UTIL_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace fcc::util {

/** Streaming mean / variance / min / max (Welford's algorithm). */
class Summary
{
  public:
    /** Fold one observation into the summary. */
    void add(double x);

    size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Unbiased sample variance (0 for n < 2). */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram with explicit bucket edges.
 *
 * Buckets are [edge[i], edge[i+1]); values below the first edge or at
 * or above the last are counted in underflow/overflow.
 */
class Histogram
{
  public:
    /** @param edges strictly increasing bucket boundaries (>= 2). */
    explicit Histogram(std::vector<double> edges);

    /** Count one observation. */
    void add(double x);

    size_t buckets() const { return counts_.size(); }
    uint64_t countAt(size_t i) const { return counts_[i]; }
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    uint64_t total() const { return total_; }
    double edge(size_t i) const { return edges_[i]; }

    /** Fraction of all observations in bucket @p i. */
    double fraction(size_t i) const;

  private:
    std::vector<double> edges_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/**
 * Empirical CDF over a collected sample; supports quantile queries
 * and evaluation at arbitrary points.
 */
class Ecdf
{
  public:
    /** Add one observation. */
    void add(double x) { sample_.push_back(x); dirty_ = true; }

    size_t count() const { return sample_.size(); }

    /** P(X <= x) under the empirical distribution. */
    double at(double x) const;

    /**
     * Empirical quantile for @p q in [0, 1] (inverse CDF,
     * lower-value convention). Requires a non-empty sample.
     */
    double quantile(double q) const;

    /**
     * Two-sample Kolmogorov-Smirnov statistic between this sample
     * and @p other; the closeness metric used to compare original
     * and decompressed traces.
     */
    double ksDistance(const Ecdf &other) const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> sample_;
    mutable bool dirty_ = false;
};

} // namespace fcc::util

#endif // FCC_UTIL_STATS_HPP
