/**
 * @file
 * Non-cryptographic hashing helpers used by flow tables and template
 * stores.
 */

#ifndef FCC_UTIL_HASH_HPP
#define FCC_UTIL_HASH_HPP

#include <cstddef>
#include <cstdint>
#include <span>

namespace fcc::util {

/** 64-bit FNV-1a over a byte range. */
inline uint64_t
fnv1a64(std::span<const uint8_t> data)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint8_t b : data) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

/** SplitMix64 finalizer; a strong 64-bit integer mixer. */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Boost-style hash combiner. */
inline uint64_t
hashCombine(uint64_t seed, uint64_t v)
{
    return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ull +
                   (seed << 6) + (seed >> 2));
}

} // namespace fcc::util

#endif // FCC_UTIL_HASH_HPP
