/**
 * @file
 * Error handling primitives for the FCC library.
 *
 * Recoverable problems caused by bad *input* (malformed trace files,
 * corrupt compressed streams, invalid user parameters) throw
 * fcc::util::Error. Violated internal invariants (library bugs) abort
 * via FCC_ASSERT, mirroring the gem5 fatal()/panic() split.
 */

#ifndef FCC_UTIL_ERROR_HPP
#define FCC_UTIL_ERROR_HPP

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fcc::util {

/**
 * Exception thrown for all recoverable, input-caused failures.
 *
 * Every parser and codec in the library reports malformed or truncated
 * input by throwing this type; no API silently truncates or returns
 * partially-decoded data.
 */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Throw fcc::util::Error when @p cond is false. */
inline void
require(bool cond, const char *message)
{
    if (!cond)
        throw Error(message);
}

/** Overload for dynamically-built messages. */
inline void
require(bool cond, const std::string &message)
{
    if (!cond)
        throw Error(message);
}

} // namespace fcc::util

/**
 * Internal-invariant check. Unlike assert(3) this is active in all
 * build types: a failure here is a library bug, never a user error.
 */
#define FCC_ASSERT(cond, msg)                                           \
    do {                                                                \
        if (!(cond)) {                                                  \
            std::fprintf(stderr,                                        \
                         "FCC_ASSERT failed at %s:%d: %s (%s)\n",       \
                         __FILE__, __LINE__, #cond, msg);               \
            std::abort();                                               \
        }                                                               \
    } while (0)

#endif // FCC_UTIL_ERROR_HPP
