/**
 * @file
 * ByteSource implementations: buffered stdio reads, mmap with
 * sequential-access advice and consumed-prefix release, memory and
 * generator adapters, and the mmap-or-stdio factory.
 */

#include "util/io.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FCC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FCC_HAVE_MMAP 0
#endif

namespace fcc::util {

size_t
readFully(ByteSource &src, uint8_t *out, size_t len, const char *what)
{
    size_t total = 0;
    while (total < len) {
        size_t n = src.read(out + total, len - total);
        if (n == 0) {
            require(total == 0, what);
            return 0;
        }
        total += n;
    }
    return total;
}

// ---- BufferByteSource ----------------------------------------------

size_t
BufferByteSource::read(uint8_t *out, size_t maxLen)
{
    size_t n = std::min(maxLen, view_.size() - pos_);
    if (n == 0)
        return 0;  // empty views may have a null data()
    std::memcpy(out, view_.data() + pos_, n);
    pos_ += n;
    return n;
}

// ---- FileByteSource ------------------------------------------------

FileByteSource::FileByteSource(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    require(file_ != nullptr, "cannot open file: " + path);
}

size_t
FileByteSource::read(uint8_t *out, size_t maxLen)
{
    size_t n = std::fread(out, 1, maxLen, file_.get());
    require(n > 0 || !std::ferror(file_.get()),
            "file read error");
    return n;
}

// ---- MmapByteSource ------------------------------------------------

bool
MmapByteSource::supported()
{
    return FCC_HAVE_MMAP != 0;
}

#if FCC_HAVE_MMAP

namespace {
/** Release granularity: how much consumed data to keep resident. */
constexpr size_t releaseChunk = 64u << 20;
} // namespace

MmapByteSource::MmapByteSource(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    require(fd >= 0, "cannot open file: " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw Error("cannot stat file: " + path);
    }
    size_ = static_cast<size_t>(st.st_size);
    if (size_ > 0) {
        map_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (map_ == MAP_FAILED) {
            ::close(fd);
            throw Error("cannot mmap file: " + path);
        }
        ::madvise(map_, size_, MADV_SEQUENTIAL);
    }
    ::close(fd);
}

MmapByteSource::~MmapByteSource()
{
    if (map_ != nullptr)
        ::munmap(map_, size_);
}

size_t
MmapByteSource::read(uint8_t *out, size_t maxLen)
{
    size_t n = std::min(maxLen, size_ - pos_);
    if (n == 0)
        return 0;  // zero-byte files never map (map_ is null)
    std::memcpy(out, static_cast<const uint8_t *>(map_) + pos_, n);
    pos_ += n;

    // Drop fully consumed pages so RSS stays bounded on huge files.
    if (pos_ - released_ >= 2 * releaseChunk) {
        size_t upTo = (pos_ - releaseChunk) & ~(releaseChunk - 1);
        if (upTo > released_) {
            ::madvise(static_cast<uint8_t *>(map_) + released_,
                      upTo - released_, MADV_DONTNEED);
            released_ = upTo;
        }
    }
    return n;
}

std::span<const uint8_t>
MmapByteSource::contiguous() const
{
    return {static_cast<const uint8_t *>(map_) + pos_, size_ - pos_};
}

#else // !FCC_HAVE_MMAP

MmapByteSource::MmapByteSource(const std::string &path)
{
    (void)path;
    throw Error("mmap is not supported on this platform");
}

MmapByteSource::~MmapByteSource() = default;

size_t
MmapByteSource::read(uint8_t *, size_t)
{
    return 0;
}

std::span<const uint8_t>
MmapByteSource::contiguous() const
{
    return {};
}

#endif // FCC_HAVE_MMAP

// ---- ReadaheadByteSource -------------------------------------------

// posix_fadvise is POSIX.1-2001 but absent on macOS; gate on the
// advice macro so the class degrades to plain pread windows there.
#if FCC_HAVE_MMAP && defined(POSIX_FADV_SEQUENTIAL)
#define FCC_HAVE_FADVISE 1
#else
#define FCC_HAVE_FADVISE 0
#endif

bool
ReadaheadByteSource::supported()
{
    return FCC_HAVE_MMAP != 0;
}

#if FCC_HAVE_MMAP

ReadaheadByteSource::ReadaheadByteSource(const std::string &path,
                                         size_t windowBytes)
    : window_(std::max<size_t>(windowBytes, 1u << 16))
{
    fd_ = ::open(path.c_str(), O_RDONLY);
    require(fd_ >= 0, "cannot open file: " + path);
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw Error("cannot stat file: " + path);
    }
    size_ = static_cast<size_t>(st.st_size);
#if FCC_HAVE_FADVISE
    ::posix_fadvise(fd_, 0, 0, POSIX_FADV_SEQUENTIAL);
    ::posix_fadvise(fd_, 0,
                    static_cast<off_t>(std::min(window_, size_)),
                    POSIX_FADV_WILLNEED);
#endif
    buf_.resize(std::min(window_, std::max<size_t>(size_, 1)));
}

ReadaheadByteSource::~ReadaheadByteSource()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
ReadaheadByteSource::refill()
{
    bufPos_ = 0;
    bufLen_ = 0;
    if (nextOff_ >= size_)
        return;
    size_t want = std::min(window_, size_ - nextOff_);
    size_t got = 0;
    while (got < want) {
        ssize_t n = ::pread(fd_, buf_.data() + got, want - got,
                            static_cast<off_t>(nextOff_ + got));
        require(n >= 0, "file read error");
        if (n == 0)
            break;  // file shrank underneath us
        got += static_cast<size_t>(n);
    }
    bufLen_ = got;
#if FCC_HAVE_FADVISE
    // Kick off the next window while the caller chews on this one,
    // and drop the one just finished.
    if (nextOff_ + got < size_)
        ::posix_fadvise(
            fd_, static_cast<off_t>(nextOff_ + got),
            static_cast<off_t>(
                std::min(window_, size_ - nextOff_ - got)),
            POSIX_FADV_WILLNEED);
    if (nextOff_ > 0)
        ::posix_fadvise(fd_, 0, static_cast<off_t>(nextOff_),
                        POSIX_FADV_DONTNEED);
#endif
    nextOff_ += got;
}

size_t
ReadaheadByteSource::read(uint8_t *out, size_t maxLen)
{
    if (bufPos_ == bufLen_) {
        refill();
        if (bufLen_ == 0)
            return 0;
    }
    size_t n = std::min(maxLen, bufLen_ - bufPos_);
    std::memcpy(out, buf_.data() + bufPos_, n);
    bufPos_ += n;
    return n;
}

#else // !FCC_HAVE_MMAP

ReadaheadByteSource::ReadaheadByteSource(const std::string &path,
                                         size_t windowBytes)
{
    (void)path;
    (void)windowBytes;
    throw Error("readahead reads are not supported on this platform");
}

ReadaheadByteSource::~ReadaheadByteSource() = default;

void
ReadaheadByteSource::refill()
{
}

size_t
ReadaheadByteSource::read(uint8_t *, size_t)
{
    return 0;
}

#endif // FCC_HAVE_MMAP

// ---- GeneratorByteSource -------------------------------------------

size_t
GeneratorByteSource::read(uint8_t *out, size_t maxLen)
{
    if (done_ || maxLen == 0)
        return 0;
    size_t n = gen_(out, maxLen);
    if (n == 0)
        done_ = true;
    return n;
}

// ---- PrefixedByteSource --------------------------------------------

size_t
PrefixedByteSource::read(uint8_t *out, size_t maxLen)
{
    if (pos_ < prefix_.size()) {
        size_t n = std::min(maxLen, prefix_.size() - pos_);
        std::memcpy(out, prefix_.data() + pos_, n);
        pos_ += n;
        return n;
    }
    return rest_ ? rest_->read(out, maxLen) : 0;
}

// ---- FileByteSink --------------------------------------------------

FileByteSink::FileByteSink(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    require(file_ != nullptr, "cannot open output file: " + path);
}

FileByteSink::~FileByteSink()
{
    if (file_ != nullptr)
        std::fclose(file_);  // best effort; close() reports errors
}

void
FileByteSink::write(std::span<const uint8_t> data)
{
    require(file_ != nullptr, "write to closed sink");
    if (data.empty())
        return;
    size_t n = std::fwrite(data.data(), 1, data.size(), file_);
    require(n == data.size(), "short write");
    written_ += n;
}

void
FileByteSink::close()
{
    if (file_ == nullptr)
        return;
    int rc = std::fflush(file_);
    rc |= std::fclose(file_);
    file_ = nullptr;
    require(rc == 0, "error closing output file");
}

// ---- factory -------------------------------------------------------

namespace {

/** FCC_READAHEAD=1 routes file opens through ReadaheadByteSource. */
bool
readaheadRequested()
{
    static const bool on = [] {
        const char *v = std::getenv("FCC_READAHEAD");
        return v != nullptr && *v != '\0' && *v != '0';
    }();
    return on;
}

} // namespace

std::unique_ptr<ByteSource>
openByteSource(const std::string &path, bool preferMmap)
{
    if (readaheadRequested() && ReadaheadByteSource::supported()) {
        try {
            return std::make_unique<ReadaheadByteSource>(path);
        } catch (const Error &) {
            // Fall through to the default paths.
        }
    }
    if (preferMmap && MmapByteSource::supported()) {
        try {
            return std::make_unique<MmapByteSource>(path);
        } catch (const Error &) {
            // Fall through: special files (pipes, /proc) reject mmap
            // but read fine through stdio.
        }
    }
    return std::make_unique<FileByteSource>(path);
}

std::span<const uint8_t>
readAllBytes(ByteSource &src, std::vector<uint8_t> &owned)
{
    std::span<const uint8_t> bytes = src.contiguous();
    if (!bytes.empty())
        return bytes;
    uint8_t buf[1 << 16];
    size_t got;
    while ((got = src.read(buf, sizeof(buf))) > 0)
        owned.insert(owned.end(), buf, buf + got);
    return {owned.data(), owned.size()};
}

// ---- sockets --------------------------------------------------------

SocketEndpoint
SocketEndpoint::parse(const std::string &text)
{
    if (text.rfind("unix:", 0) == 0) {
        SocketEndpoint e;
        e.kind = Kind::Unix;
        e.path = text.substr(5);
        require(!e.path.empty(),
                "endpoint: unix: requires a socket path");
        return e;
    }
    if (text.rfind("tcp:", 0) == 0) {
        SocketEndpoint e;
        e.kind = Kind::Tcp;
        std::string rest = text.substr(4);
        size_t colon = rest.rfind(':');
        require(colon != std::string::npos,
                "endpoint: tcp: requires host:port");
        e.host = rest.substr(0, colon);
        std::string portText = rest.substr(colon + 1);
        require(!portText.empty(), "endpoint: missing port");
        uint32_t port = 0;
        for (char c : portText) {
            require(c >= '0' && c <= '9',
                    "endpoint: malformed port");
            port = port * 10 + static_cast<uint32_t>(c - '0');
            require(port <= 65535, "endpoint: port out of range");
        }
        e.port = static_cast<uint16_t>(port);
        return e;
    }
    throw Error("endpoint: expected 'unix:/path' or "
                "'tcp:host:port', got '" +
                text + "'");
}

std::string
SocketEndpoint::str() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

#if FCC_HAVE_MMAP
#define FCC_HAVE_SOCKETS 1
#else
#define FCC_HAVE_SOCKETS 0
#endif

#if FCC_HAVE_SOCKETS

} // namespace fcc::util

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>

#include <cerrno>

namespace fcc::util {

namespace {

[[noreturn]] void
socketError(const std::string &what)
{
    throw Error(what + ": " + std::strerror(errno));
}

SocketFd
tcpSocket(const SocketEndpoint &endpoint, bool forListen)
{
    std::string host = endpoint.host;
    if (host.empty())
        host = forListen ? "0.0.0.0" : "127.0.0.1";
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (forListen)
        hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    std::string portText = std::to_string(endpoint.port);
    int rc = ::getaddrinfo(host.c_str(), portText.c_str(), &hints,
                           &res);
    if (rc != 0)
        throw Error("endpoint: cannot resolve '" + host +
                    "': " + gai_strerror(rc));
    std::string lastError = "no usable address";
    for (addrinfo *ai = res; ai; ai = ai->ai_next) {
        SocketFd fd(::socket(ai->ai_family, ai->ai_socktype,
                             ai->ai_protocol));
        if (!fd.valid())
            continue;
        if (forListen) {
            int one = 1;
            ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof one);
            if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) ==
                0) {
                ::freeaddrinfo(res);
                return fd;
            }
        } else if (::connect(fd.get(), ai->ai_addr,
                             ai->ai_addrlen) == 0) {
            ::freeaddrinfo(res);
            return fd;
        }
        lastError = std::strerror(errno);
    }
    ::freeaddrinfo(res);
    throw Error("socket " + endpoint.str() + ": " + lastError);
}

sockaddr_un
unixAddress(const SocketEndpoint &endpoint)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    require(endpoint.path.size() < sizeof(addr.sun_path),
            "endpoint: unix socket path too long");
    std::memcpy(addr.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    return addr;
}

} // namespace

void
SocketFd::reset()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

uint16_t
SocketFd::localPort() const
{
    sockaddr_storage addr{};
    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        socketError("getsockname");
    if (addr.ss_family == AF_INET)
        return ntohs(
            reinterpret_cast<const sockaddr_in *>(&addr)->sin_port);
    if (addr.ss_family == AF_INET6)
        return ntohs(reinterpret_cast<const sockaddr_in6 *>(&addr)
                         ->sin6_port);
    throw Error("localPort: not an IP socket");
}

SocketFd
listenSocket(const SocketEndpoint &endpoint, int backlog)
{
    if (endpoint.kind == SocketEndpoint::Kind::Unix) {
        SocketFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd.valid())
            socketError("socket(AF_UNIX)");
        sockaddr_un addr = unixAddress(endpoint);
        ::unlink(endpoint.path.c_str());  // stale socket file
        if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            socketError("bind " + endpoint.str());
        if (::listen(fd.get(), backlog) != 0)
            socketError("listen " + endpoint.str());
        return fd;
    }
    SocketFd fd = tcpSocket(endpoint, true);
    if (::listen(fd.get(), backlog) != 0)
        socketError("listen " + endpoint.str());
    return fd;
}

SocketFd
connectSocket(const SocketEndpoint &endpoint)
{
    if (endpoint.kind == SocketEndpoint::Kind::Unix) {
        SocketFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!fd.valid())
            socketError("socket(AF_UNIX)");
        sockaddr_un addr = unixAddress(endpoint);
        if (::connect(fd.get(),
                      reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0)
            socketError("connect " + endpoint.str());
        return fd;
    }
    return tcpSocket(endpoint, false);
}

void
sendAll(int fd, std::span<const uint8_t> data)
{
#ifdef MSG_NOSIGNAL
    constexpr int sendFlags = MSG_NOSIGNAL;
#else
    constexpr int sendFlags = 0;
#endif
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off,
                           data.size() - off, sendFlags);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            socketError("send");
        }
        off += static_cast<size_t>(n);
    }
}

size_t
recvFully(int fd, uint8_t *out, size_t len)
{
    size_t total = 0;
    while (total < len) {
        ssize_t n = ::recv(fd, out + total, len - total, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            socketError("recv");
        }
        if (n == 0) {
            require(total == 0,
                    "socket: connection closed mid-frame");
            return 0;
        }
        total += static_cast<size_t>(n);
    }
    return total;
}

#else  // !FCC_HAVE_SOCKETS

namespace {
[[noreturn]] void
noSockets()
{
    throw Error("sockets are not supported on this platform");
}
} // namespace

void
SocketFd::reset()
{
    fd_ = -1;
}

uint16_t
SocketFd::localPort() const
{
    noSockets();
}

SocketFd
listenSocket(const SocketEndpoint &, int)
{
    noSockets();
}

SocketFd
connectSocket(const SocketEndpoint &)
{
    noSockets();
}

void
sendAll(int, std::span<const uint8_t>)
{
    noSockets();
}

size_t
recvFully(int, uint8_t *, size_t)
{
    noSockets();
}

#endif // FCC_HAVE_SOCKETS

} // namespace fcc::util
