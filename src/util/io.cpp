/**
 * @file
 * ByteSource implementations: buffered stdio reads, mmap with
 * sequential-access advice and consumed-prefix release, memory and
 * generator adapters, and the mmap-or-stdio factory.
 */

#include "util/io.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FCC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FCC_HAVE_MMAP 0
#endif

namespace fcc::util {

size_t
readFully(ByteSource &src, uint8_t *out, size_t len, const char *what)
{
    size_t total = 0;
    while (total < len) {
        size_t n = src.read(out + total, len - total);
        if (n == 0) {
            require(total == 0, what);
            return 0;
        }
        total += n;
    }
    return total;
}

// ---- BufferByteSource ----------------------------------------------

size_t
BufferByteSource::read(uint8_t *out, size_t maxLen)
{
    size_t n = std::min(maxLen, view_.size() - pos_);
    if (n == 0)
        return 0;  // empty views may have a null data()
    std::memcpy(out, view_.data() + pos_, n);
    pos_ += n;
    return n;
}

// ---- FileByteSource ------------------------------------------------

FileByteSource::FileByteSource(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    require(file_ != nullptr, "cannot open file: " + path);
}

size_t
FileByteSource::read(uint8_t *out, size_t maxLen)
{
    size_t n = std::fread(out, 1, maxLen, file_.get());
    require(n > 0 || !std::ferror(file_.get()),
            "file read error");
    return n;
}

// ---- MmapByteSource ------------------------------------------------

bool
MmapByteSource::supported()
{
    return FCC_HAVE_MMAP != 0;
}

#if FCC_HAVE_MMAP

namespace {
/** Release granularity: how much consumed data to keep resident. */
constexpr size_t releaseChunk = 64u << 20;
} // namespace

MmapByteSource::MmapByteSource(const std::string &path)
{
    int fd = ::open(path.c_str(), O_RDONLY);
    require(fd >= 0, "cannot open file: " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        throw Error("cannot stat file: " + path);
    }
    size_ = static_cast<size_t>(st.st_size);
    if (size_ > 0) {
        map_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
        if (map_ == MAP_FAILED) {
            ::close(fd);
            throw Error("cannot mmap file: " + path);
        }
        ::madvise(map_, size_, MADV_SEQUENTIAL);
    }
    ::close(fd);
}

MmapByteSource::~MmapByteSource()
{
    if (map_ != nullptr)
        ::munmap(map_, size_);
}

size_t
MmapByteSource::read(uint8_t *out, size_t maxLen)
{
    size_t n = std::min(maxLen, size_ - pos_);
    if (n == 0)
        return 0;  // zero-byte files never map (map_ is null)
    std::memcpy(out, static_cast<const uint8_t *>(map_) + pos_, n);
    pos_ += n;

    // Drop fully consumed pages so RSS stays bounded on huge files.
    if (pos_ - released_ >= 2 * releaseChunk) {
        size_t upTo = (pos_ - releaseChunk) & ~(releaseChunk - 1);
        if (upTo > released_) {
            ::madvise(static_cast<uint8_t *>(map_) + released_,
                      upTo - released_, MADV_DONTNEED);
            released_ = upTo;
        }
    }
    return n;
}

std::span<const uint8_t>
MmapByteSource::contiguous() const
{
    return {static_cast<const uint8_t *>(map_) + pos_, size_ - pos_};
}

#else // !FCC_HAVE_MMAP

MmapByteSource::MmapByteSource(const std::string &path)
{
    (void)path;
    throw Error("mmap is not supported on this platform");
}

MmapByteSource::~MmapByteSource() = default;

size_t
MmapByteSource::read(uint8_t *, size_t)
{
    return 0;
}

std::span<const uint8_t>
MmapByteSource::contiguous() const
{
    return {};
}

#endif // FCC_HAVE_MMAP

// ---- GeneratorByteSource -------------------------------------------

size_t
GeneratorByteSource::read(uint8_t *out, size_t maxLen)
{
    if (done_ || maxLen == 0)
        return 0;
    size_t n = gen_(out, maxLen);
    if (n == 0)
        done_ = true;
    return n;
}

// ---- PrefixedByteSource --------------------------------------------

size_t
PrefixedByteSource::read(uint8_t *out, size_t maxLen)
{
    if (pos_ < prefix_.size()) {
        size_t n = std::min(maxLen, prefix_.size() - pos_);
        std::memcpy(out, prefix_.data() + pos_, n);
        pos_ += n;
        return n;
    }
    return rest_ ? rest_->read(out, maxLen) : 0;
}

// ---- FileByteSink --------------------------------------------------

FileByteSink::FileByteSink(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    require(file_ != nullptr, "cannot open output file: " + path);
}

FileByteSink::~FileByteSink()
{
    if (file_ != nullptr)
        std::fclose(file_);  // best effort; close() reports errors
}

void
FileByteSink::write(std::span<const uint8_t> data)
{
    require(file_ != nullptr, "write to closed sink");
    if (data.empty())
        return;
    size_t n = std::fwrite(data.data(), 1, data.size(), file_);
    require(n == data.size(), "short write");
    written_ += n;
}

void
FileByteSink::close()
{
    if (file_ == nullptr)
        return;
    int rc = std::fflush(file_);
    rc |= std::fclose(file_);
    file_ = nullptr;
    require(rc == 0, "error closing output file");
}

// ---- factory -------------------------------------------------------

std::unique_ptr<ByteSource>
openByteSource(const std::string &path, bool preferMmap)
{
    if (preferMmap && MmapByteSource::supported()) {
        try {
            return std::make_unique<MmapByteSource>(path);
        } catch (const Error &) {
            // Fall through: special files (pipes, /proc) reject mmap
            // but read fine through stdio.
        }
    }
    return std::make_unique<FileByteSource>(path);
}

std::span<const uint8_t>
readAllBytes(ByteSource &src, std::vector<uint8_t> &owned)
{
    std::span<const uint8_t> bytes = src.contiguous();
    if (!bytes.empty())
        return bytes;
    uint8_t buf[1 << 16];
    size_t got;
    while ((got = src.read(buf, sizeof(buf))) > 0)
        owned.insert(owned.end(), buf, buf + got);
    return {owned.data(), owned.size()};
}

} // namespace fcc::util
