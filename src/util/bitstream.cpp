/**
 * @file
 * LSB-first bit packing (BitWriter/BitReader). putHuff() reverses
 * code bits so the MSB-first Huffman codes of RFC 1951 land in
 * stream order; the reader throws on reads past the final byte.
 */

#include "util/bitstream.hpp"

#include "util/error.hpp"

namespace fcc::util {

void
BitWriter::put(uint32_t value, int nbits)
{
    FCC_ASSERT(nbits >= 0 && nbits <= 24, "bit count out of range");
    bitbuf_ |= (value & ((1u << nbits) - 1)) << nbits_;
    nbits_ += nbits;
    while (nbits_ >= 8) {
        buf_.push_back(static_cast<uint8_t>(bitbuf_));
        bitbuf_ >>= 8;
        nbits_ -= 8;
    }
}

void
BitWriter::putHuff(uint32_t code, int nbits)
{
    // Reverse the code so the first (MSB) code bit lands in the first
    // stream bit position, per RFC 1951 section 3.1.1.
    uint32_t rev = 0;
    for (int i = 0; i < nbits; ++i)
        rev |= ((code >> i) & 1u) << (nbits - 1 - i);
    put(rev, nbits);
}

void
BitWriter::alignToByte()
{
    if (nbits_ > 0) {
        buf_.push_back(static_cast<uint8_t>(bitbuf_));
        bitbuf_ = 0;
        nbits_ = 0;
    }
}

void
BitWriter::byte(uint8_t v)
{
    FCC_ASSERT(nbits_ == 0, "byte() requires byte alignment");
    buf_.push_back(v);
}

std::vector<uint8_t>
BitWriter::take()
{
    alignToByte();
    return std::move(buf_);
}

void
BitReader::fill()
{
    while (nbits_ <= 56 && pos_ < len_) {
        bitbuf_ |= static_cast<uint64_t>(data_[pos_++]) << nbits_;
        nbits_ += 8;
    }
}

uint32_t
BitReader::get(int nbits)
{
    FCC_ASSERT(nbits >= 0 && nbits <= 24, "bit count out of range");
    fill();
    if (nbits_ < nbits)
        throw Error("BitReader: truncated bit stream");
    uint32_t v = static_cast<uint32_t>(bitbuf_) & ((1u << nbits) - 1);
    bitbuf_ >>= nbits;
    nbits_ -= nbits;
    return v;
}

uint32_t
BitReader::peek(int nbits)
{
    FCC_ASSERT(nbits >= 0 && nbits <= 24, "bit count out of range");
    fill();
    // Past end of stream the buffer reads as zero bits; Huffman
    // decoders detect truncation when consume() overruns.
    return static_cast<uint32_t>(bitbuf_) & ((1u << nbits) - 1);
}

void
BitReader::consume(int nbits)
{
    if (nbits_ < nbits)
        throw Error("BitReader: truncated bit stream");
    bitbuf_ >>= nbits;
    nbits_ -= nbits;
}

void
BitReader::alignToByte()
{
    int drop = nbits_ % 8;
    bitbuf_ >>= drop;
    nbits_ -= drop;
}

uint8_t
BitReader::byte()
{
    FCC_ASSERT(nbits_ % 8 == 0, "byte() requires byte alignment");
    fill();
    if (nbits_ < 8)
        throw Error("BitReader: truncated bit stream");
    uint8_t v = static_cast<uint8_t>(bitbuf_);
    bitbuf_ >>= 8;
    nbits_ -= 8;
    return v;
}

} // namespace fcc::util
