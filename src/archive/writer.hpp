/**
 * @file
 * Crash-safe commit of one sealed epoch to an output directory.
 *
 * A sealed archive must never be observable half-written: a reader
 * that sees `<prefix>-NNNNNN.fcc` in the directory (or its catalog
 * line) must be able to decode it, whatever the daemon was doing
 * when the power went. ArchiveWriter::commit() provides that with
 * the classic discipline:
 *
 *   1. write the bytes to `<name>.partial` — everything *except*
 *      the final 16 bytes (the FCC3 index footer, when present:
 *      the one piece that makes the tail self-validating);
 *   2. fsync, then write the tail, then fsync again — the footer
 *      only exists on disk once the body it describes is durable;
 *   3. rename(2) `.partial` → `.fcc` (atomic within a directory);
 *   4. fsync the directory, making the rename durable;
 *   5. append the catalog line (itself fsync'd — catalog_file.hpp).
 *
 * A crash between any two steps leaves either a deletable
 * `.partial` (never promised) or a sealed archive the catalog may
 * merely not list yet — exactly the two states recoverCatalog()
 * repairs. Archives are named `<prefix>-NNNNNN.fcc` with a
 * monotonically increasing sequence number that survives restarts
 * (the constructor resumes past the largest number on disk).
 */

#ifndef FCC_ARCHIVE_WRITER_HPP
#define FCC_ARCHIVE_WRITER_HPP

#include <cstdint>
#include <span>
#include <string>

#include "archive/catalog_file.hpp"
#include "codec/fcc/session.hpp"

namespace fcc::archive {

class ArchiveWriter
{
  public:
    /**
     * Prepare to commit archives into @p directory (which must
     * exist) as `<prefix>-NNNNNN.fcc`. Scans the directory once to
     * resume sequence numbering after the largest committed number.
     *
     * @throws fcc::util::Error when the directory or its catalog
     *         cannot be opened.
     */
    explicit ArchiveWriter(const std::string &directory,
                           const std::string &prefix = "archive");

    ArchiveWriter(const ArchiveWriter &) = delete;
    ArchiveWriter &operator=(const ArchiveWriter &) = delete;

    /**
     * Durably commit one sealed epoch: @p bytes is the archive
     * exactly as CompressSession::seal() returned it, @p info the
     * matching SealInfo (the catalog line's time bounds and
     * counts). Returns the entry appended to the catalog.
     *
     * @throws fcc::util::Error on any I/O failure; the target name
     *         is not consumed (at worst a `.partial` remains, which
     *         recovery deletes).
     */
    CatalogEntry commit(std::span<const uint8_t> bytes,
                        const codec::fcc::SealInfo &info);

    /** Sequence number the next commit() will use. */
    uint64_t nextSequence() const { return seq_; }

    /** File name commit() would rename into place next. */
    std::string nextName() const;

    const std::string &directory() const { return directory_; }

  private:
    std::string directory_;
    std::string prefix_;
    uint64_t seq_ = 0;
    CatalogFile catalog_;
};

} // namespace fcc::archive

#endif // FCC_ARCHIVE_WRITER_HPP
