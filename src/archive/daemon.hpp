/**
 * @file
 * The continuous-capture archiver core: the loop behind the fccd
 * tool (tools/fccd.cpp), separated from the process scaffolding so
 * tests can drive it in-process and the tool stays a thin shell.
 *
 * A Daemon pulls packet records from one input — a capture file
 * replayed at a configurable rate, a FIFO, or a socket a producer
 * connects to — and runs them through one long-lived
 * codec::fcc::CompressSession. Two policies shape the output:
 *
 *  - *chunk rotation* (records fed or wall milliseconds since the
 *    last cut) calls CompressSession::rotateChunk(), bounding how
 *    much trace time a reader must decode to reach any instant;
 *  - *archive rollover* (records or wall milliseconds per epoch)
 *    seals the epoch through archive::ArchiveWriter — the
 *    crash-safe fsync-before-footer commit — and re-arms the
 *    session, carrying the template store so the next archive
 *    skips the recluster warm-up.
 *
 * Control is two flags the owner (signal handlers, tests) flips:
 * `stop` finishes the current batch, seals what is buffered and
 * returns; `rotateNow` seals and re-arms at the next batch edge
 * (SIGHUP semantics). Epochs holding zero packets are never
 * written — an idle daemon produces no empty archives.
 *
 * On start the daemon reconciles the output directory with its
 * catalog (recoverCatalog), so a SIGKILL'd predecessor's `.partial`
 * litter is cleaned and its unlisted sealed archives regain their
 * catalog lines before new ones are added.
 */

#ifndef FCC_ARCHIVE_DAEMON_HPP
#define FCC_ARCHIVE_DAEMON_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "archive/catalog_file.hpp"
#include "codec/fcc/session.hpp"
#include "trace/source.hpp"

namespace fcc::archive {

/** When to cut chunks and roll archives. Zero disables a bound;
 *  record bounds are exact, wall bounds are checked per batch. */
struct RotationPolicy
{
    uint64_t chunkRecords = 0;   ///< rotateChunk() every N packets fed
    uint64_t chunkWallMs = 0;    ///< ... or every N wall milliseconds
    uint64_t archiveRecords = 0; ///< seal+reArm every N packets fed
    uint64_t archiveWallMs = 0;  ///< ... or every N wall milliseconds
};

struct DaemonConfig
{
    /** Input: a trace file / FIFO path, or (when listen is set) a
     *  socket endpoint ("unix:/p", "tcp:host:port") to accept one
     *  producer connection on. */
    std::string input;

    /** Input container format. Keep the default auto-detect for
     *  files; FIFOs and sockets need an explicit format (the
     *  sniffing read would consume live bytes). Socket input is
     *  always flat TSH records. */
    trace::TraceFormatSpec inputFormat;

    /** Treat `input` as a socket endpoint and listen on it. */
    bool listen = false;

    std::string outputDir;          ///< must exist
    std::string prefix = "archive"; ///< archive file name prefix

    codec::fcc::FccConfig codec;
    codec::fcc::SessionOptions session;
    RotationPolicy rotation;

    /**
     * Replay pacing in packets per second; 0 ingests as fast as the
     * input delivers. Pacing is what makes the wall-clock rotation
     * bounds meaningful when replaying a capture file.
     */
    double replayRate = 0;
};

/** Flags the daemon polls at batch edges; safe to flip from signal
 *  handlers (std::atomic<bool> lock-free everywhere we run). */
struct DaemonControl
{
    std::atomic<bool> stop{false};      ///< seal buffered state, return
    std::atomic<bool> rotateNow{false}; ///< seal + re-arm (SIGHUP)
};

/** What one run() ingested and sealed. */
struct DaemonReport
{
    codec::fcc::StreamStats stats;      ///< the session's counters
    std::vector<CatalogEntry> sealed;   ///< archives committed, in order
    uint64_t recovered = 0; ///< catalog entries found at startup
};

class Daemon
{
  public:
    /** @throws fcc::util::Error when the codec config does not
     *  validate. */
    explicit Daemon(const DaemonConfig &config);

    /**
     * Run to input end-of-stream or until @p control.stop: recover
     * the output directory, open the input, ingest/rotate/seal.
     * @p onSeal (when set) observes every committed archive — the
     * tool logs them as they land.
     *
     * @throws fcc::util::Error on input or output I/O failure.
     */
    DaemonReport
    run(DaemonControl &control,
        const std::function<void(const CatalogEntry &)> &onSeal =
            {});

  private:
    DaemonConfig config_;
};

} // namespace fcc::archive

#endif // FCC_ARCHIVE_DAEMON_HPP
