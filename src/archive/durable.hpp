/**
 * @file
 * Internal POSIX durability helpers shared by the archive subsystem
 * (writer + catalog): full writes, fsync, and directory fsync so a
 * rename is itself durable. Not part of the public surface.
 */

#ifndef FCC_ARCHIVE_DURABLE_HPP
#define FCC_ARCHIVE_DURABLE_HPP

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "util/error.hpp"

namespace fcc::archive::detail {

/** write(2) all of @p data to @p fd, riding out EINTR and partial
 *  writes. @throws fcc::util::Error naming @p what. */
inline void
writeAll(int fd, std::span<const uint8_t> data,
         const std::string &what)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t put =
            ::write(fd, data.data() + off, data.size() - off);
        if (put < 0 && errno == EINTR)
            continue;
        util::require(put > 0, "write " + what + ": " +
                                   std::strerror(errno));
        off += static_cast<size_t>(put);
    }
}

/** fsync(2) @p fd. @throws fcc::util::Error naming @p what. */
inline void
fsyncFd(int fd, const std::string &what)
{
    if (::fsync(fd) != 0)
        throw util::Error("fsync " + what + ": " +
                          std::strerror(errno));
}

/** fsync a directory, making renames/creations inside it durable.
 *  @throws fcc::util::Error */
inline void
fsyncDirectory(const std::string &directory)
{
    int fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
    util::require(fd >= 0, "open directory " + directory + ": " +
                               std::strerror(errno));
    int rc = ::fsync(fd);
    ::close(fd);
    util::require(rc == 0, "fsync directory " + directory + ": " +
                               std::strerror(errno));
}

} // namespace fcc::archive::detail

#endif // FCC_ARCHIVE_DURABLE_HPP
