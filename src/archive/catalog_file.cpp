/**
 * @file
 * Catalog file I/O: durable line appends, tolerant parsing, and the
 * crash-recovery reconciliation between catalog and directory.
 */

#include "archive/catalog_file.hpp"

#include "archive/durable.hpp"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "codec/fcc/datasets.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/index.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/io.hpp"

namespace fcc::archive {

namespace {

constexpr const char *lineMagic = "fccar1";

std::string
hex8(uint32_t value)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x", value);
    return buf;
}

/** The catalog's CRC input: the line text up to and including the
 *  space before the trailing line CRC. */
std::string
lineBody(const CatalogEntry &entry)
{
    std::ostringstream os;
    os << lineMagic << ' ' << entry.name << ' ' << entry.bytes << ' '
       << hex8(entry.crc32) << ' ' << entry.minFirstUs << ' '
       << entry.maxLastUs << ' ' << entry.records << ' '
       << entry.packets << ' ';
    return os.str();
}

bool
parseHex8(const std::string &text, uint32_t &out)
{
    if (text.size() != 8)
        return false;
    uint32_t value = 0;
    for (char ch : text) {
        uint32_t digit;
        if (ch >= '0' && ch <= '9')
            digit = static_cast<uint32_t>(ch - '0');
        else if (ch >= 'a' && ch <= 'f')
            digit = static_cast<uint32_t>(ch - 'a') + 10;
        else
            return false;
        value = (value << 4) | digit;
    }
    out = value;
    return true;
}

using detail::fsyncDirectory;
using detail::fsyncFd;
using detail::writeAll;

bool
hasSuffix(const std::string &text, const char *suffix)
{
    size_t n = std::strlen(suffix);
    return text.size() >= n &&
           text.compare(text.size() - n, n, suffix) == 0;
}

/** Names of directory entries with @p suffix, sorted. */
std::vector<std::string>
listWithSuffix(const std::string &directory, const char *suffix)
{
    DIR *dir = ::opendir(directory.c_str());
    util::require(dir != nullptr, "opendir " + directory + ": " +
                                      std::strerror(errno));
    std::vector<std::string> names;
    while (dirent *ent = ::readdir(dir)) {
        std::string name = ent->d_name;
        if (hasSuffix(name, suffix))
            names.push_back(std::move(name));
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    return names;
}

/**
 * Describe a sealed archive from its own bytes: the index block
 * when present (cheap tail read of the summaries), else a full
 * dataset decode. Returns nullopt when the file does not parse —
 * recovery leaves such a file alone rather than cataloguing it.
 */
std::optional<CatalogEntry>
describeArchive(const std::string &directory, const std::string &name)
{
    // The source must outlive `bytes`: a mmap'd span dies with it.
    std::unique_ptr<util::ByteSource> src;
    std::vector<uint8_t> owned;
    std::span<const uint8_t> bytes;
    try {
        src = util::openByteSource(directory + "/" + name);
        bytes = util::readAllBytes(*src, owned);
    } catch (const util::Error &) {
        return std::nullopt;
    }

    CatalogEntry entry;
    entry.name = name;
    entry.bytes = bytes.size();
    entry.crc32 = util::Crc32::of(bytes);

    try {
        if (auto index = codec::fcc::readArchiveIndex(bytes);
            index.has_value() && !index->chunks.empty()) {
            entry.minFirstUs = index->chunks.front().minFirstUs;
            for (const auto &chunk : index->chunks) {
                entry.maxLastUs =
                    std::max(entry.maxLastUs, chunk.maxEndUs);
                entry.records += chunk.records;
                entry.packets += chunk.packets;
            }
            return entry;
        }
        codec::fcc::Datasets d =
            codec::fcc::deserializeAuto(bytes, 1);
        entry.records = d.timeSeq.size();
        for (const auto &rec : d.timeSeq) {
            entry.minFirstUs = entry.records && entry.minFirstUs == 0
                ? d.timeSeq.front().firstTimestampUs
                : entry.minFirstUs;
            entry.maxLastUs =
                std::max(entry.maxLastUs, rec.firstTimestampUs);
            entry.packets += rec.isLong
                ? d.longTemplates[rec.templateIndex].sValues.size()
                : d.shortTemplates[rec.templateIndex].size();
        }
    } catch (const util::Error &) {
        return std::nullopt;
    }
    return entry;
}

} // namespace

std::string
formatCatalogLine(const CatalogEntry &entry)
{
    std::string body = lineBody(entry);
    uint32_t crc = util::Crc32::of(
        {reinterpret_cast<const uint8_t *>(body.data()),
         body.size()});
    return body + hex8(crc) + "\n";
}

std::optional<CatalogEntry>
parseCatalogLine(const std::string &line)
{
    std::istringstream is(line);
    std::string magic, crcText, lineCrcText;
    CatalogEntry entry;
    if (!(is >> magic >> entry.name >> entry.bytes >> crcText >>
          entry.minFirstUs >> entry.maxLastUs >> entry.records >>
          entry.packets >> lineCrcText))
        return std::nullopt;
    std::string trailing;
    if (is >> trailing)
        return std::nullopt;
    uint32_t lineCrc;
    if (magic != lineMagic || !parseHex8(crcText, entry.crc32) ||
        !parseHex8(lineCrcText, lineCrc))
        return std::nullopt;
    std::string body = lineBody(entry);
    if (util::Crc32::of(
            {reinterpret_cast<const uint8_t *>(body.data()),
             body.size()}) != lineCrc)
        return std::nullopt;
    return entry;
}

const char *
CatalogFile::fileName()
{
    return "CATALOG";
}

CatalogFile::CatalogFile(const std::string &directory)
    : path_(directory + "/" + fileName())
{
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT |
                                    O_CLOEXEC,
                 0644);
    util::require(fd_ >= 0, "open " + path_ + ": " +
                                std::strerror(errno));
}

CatalogFile::~CatalogFile()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
CatalogFile::append(const CatalogEntry &entry)
{
    std::string line = formatCatalogLine(entry);
    writeAll(fd_,
             {reinterpret_cast<const uint8_t *>(line.data()),
              line.size()},
             path_);
    fsyncFd(fd_, path_);
}

std::vector<CatalogEntry>
loadCatalog(const std::string &directory)
{
    std::ifstream in(directory + "/" + CatalogFile::fileName());
    std::vector<CatalogEntry> entries;
    std::string line;
    while (std::getline(in, line)) {
        if (auto entry = parseCatalogLine(line))
            entries.push_back(std::move(*entry));
        // else: torn or corrupt line — dropped, per the crash model.
    }
    return entries;
}

std::vector<CatalogEntry>
recoverCatalog(const std::string &directory)
{
    std::vector<CatalogEntry> listed = loadCatalog(directory);
    std::vector<std::string> sealed =
        listWithSuffix(directory, ".fcc");

    // A crash mid-seal leaves a *.partial that was never renamed —
    // never sealed, never promised. Remove it.
    for (const std::string &partial :
         listWithSuffix(directory, ".partial"))
        ::unlink((directory + "/" + partial).c_str());

    auto onDisk = [&](const std::string &name) {
        return std::binary_search(sealed.begin(), sealed.end(),
                                  name);
    };

    std::vector<CatalogEntry> kept;
    bool dropped = false;
    for (CatalogEntry &entry : listed) {
        if (onDisk(entry.name))
            kept.push_back(std::move(entry));
        else
            dropped = true;
    }
    // The load already dropped torn lines; a torn tail means the
    // file must be compacted too, or the garbage line lingers.
    {
        std::ifstream in(directory + "/" +
                         CatalogFile::fileName());
        std::string line;
        size_t lines = 0;
        while (std::getline(in, line))
            ++lines;
        dropped = dropped || lines != listed.size();
    }

    std::vector<CatalogEntry> additions;
    for (const std::string &name : sealed) {
        bool known = std::any_of(kept.begin(), kept.end(),
                                 [&](const CatalogEntry &e) {
                                     return e.name == name;
                                 });
        if (known)
            continue;
        if (auto entry = describeArchive(directory, name))
            additions.push_back(std::move(*entry));
        // else: unreadable — left on disk, not listed.
    }

    if (dropped) {
        // Rewrite atomically: tmp, fsync, rename, fsync dir.
        std::string tmp = directory + "/CATALOG.tmp";
        int fd = ::open(tmp.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
        util::require(fd >= 0, "open " + tmp + ": " +
                                   std::strerror(errno));
        std::string text;
        for (const CatalogEntry &entry : kept)
            text += formatCatalogLine(entry);
        for (const CatalogEntry &entry : additions)
            text += formatCatalogLine(entry);
        try {
            writeAll(fd,
                     {reinterpret_cast<const uint8_t *>(
                          text.data()),
                      text.size()},
                     tmp);
            fsyncFd(fd, tmp);
        } catch (...) {
            ::close(fd);
            throw;
        }
        ::close(fd);
        std::string path =
            directory + "/" + CatalogFile::fileName();
        util::require(::rename(tmp.c_str(), path.c_str()) == 0,
                      "rename " + tmp + ": " +
                          std::strerror(errno));
        fsyncDirectory(directory);
    } else if (!additions.empty()) {
        CatalogFile catalog(directory);
        for (const CatalogEntry &entry : additions)
            catalog.append(entry);
    }

    for (CatalogEntry &entry : additions)
        kept.push_back(std::move(entry));
    std::sort(kept.begin(), kept.end(),
              [](const CatalogEntry &a, const CatalogEntry &b) {
                  return a.name < b.name;
              });
    return kept;
}

} // namespace fcc::archive
