/**
 * @file
 * ArchiveWriter: the fsync-before-footer commit path (writer.hpp
 * documents the discipline and the crash states it leaves).
 */

#include "archive/writer.hpp"

#include "archive/durable.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <optional>

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include "codec/fcc/index.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

namespace fcc::archive {

namespace {

/** `<prefix>-NNNNNN.fcc` for sequence @p seq. */
std::string
archiveName(const std::string &prefix, uint64_t seq)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "-%06llu.fcc",
                  static_cast<unsigned long long>(seq));
    return prefix + buf;
}

/**
 * The sequence number of @p name when it matches
 * `<prefix>-NNNNNN.fcc`, else nullopt.
 */
std::optional<uint64_t>
parseSequence(const std::string &prefix, const std::string &name)
{
    const std::string suffix = ".fcc";
    if (name.size() <= prefix.size() + 1 + suffix.size())
        return std::nullopt;
    if (name.compare(0, prefix.size(), prefix) != 0 ||
        name[prefix.size()] != '-' ||
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return std::nullopt;
    uint64_t seq = 0;
    for (size_t i = prefix.size() + 1;
         i < name.size() - suffix.size(); ++i) {
        char ch = name[i];
        if (ch < '0' || ch > '9')
            return std::nullopt;
        seq = seq * 10 + static_cast<uint64_t>(ch - '0');
    }
    return seq;
}

/** Largest committed sequence number in @p directory, or nullopt. */
std::optional<uint64_t>
maxSequence(const std::string &directory, const std::string &prefix)
{
    DIR *dir = ::opendir(directory.c_str());
    util::require(dir != nullptr, "opendir " + directory + ": " +
                                      std::strerror(errno));
    std::optional<uint64_t> best;
    while (dirent *ent = ::readdir(dir)) {
        if (auto seq = parseSequence(prefix, ent->d_name))
            best = best ? std::max(*best, *seq) : *seq;
    }
    ::closedir(dir);
    return best;
}

} // namespace

ArchiveWriter::ArchiveWriter(const std::string &directory,
                             const std::string &prefix)
    : directory_(directory), prefix_(prefix), catalog_(directory)
{
    if (auto last = maxSequence(directory_, prefix_))
        seq_ = *last + 1;
}

std::string
ArchiveWriter::nextName() const
{
    return archiveName(prefix_, seq_);
}

CatalogEntry
ArchiveWriter::commit(std::span<const uint8_t> bytes,
                      const codec::fcc::SealInfo &info)
{
    std::string name = nextName();
    std::string partial = directory_ + "/" + name + ".partial";
    std::string final_ = directory_ + "/" + name;

    int fd = ::open(partial.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    util::require(fd >= 0, "open " + partial + ": " +
                               std::strerror(errno));
    try {
        // Body first, then the self-validating tail (the FCC3 index
        // footer when present) only after the body is durable.
        size_t tail = std::min<size_t>(
            codec::fcc::indexFooterBytes, bytes.size());
        detail::writeAll(fd, bytes.first(bytes.size() - tail),
                         partial);
        detail::fsyncFd(fd, partial);
        detail::writeAll(fd, bytes.subspan(bytes.size() - tail),
                         partial);
        detail::fsyncFd(fd, partial);
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);

    util::require(::rename(partial.c_str(), final_.c_str()) == 0,
                  "rename " + partial + ": " +
                      std::strerror(errno));
    detail::fsyncDirectory(directory_);

    CatalogEntry entry;
    entry.name = name;
    entry.bytes = bytes.size();
    entry.crc32 = util::Crc32::of(bytes);
    entry.minFirstUs = info.minFirstUs;
    entry.maxLastUs = info.maxLastUs;
    entry.records = info.records;
    entry.packets = info.packets;
    catalog_.append(entry);

    ++seq_;
    return entry;
}

} // namespace fcc::archive
