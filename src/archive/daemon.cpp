/**
 * @file
 * Daemon::run — ingest, pace, rotate, seal (daemon.hpp documents
 * the policies; writer.hpp the commit discipline it leans on).
 */

#include "archive/daemon.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "archive/writer.hpp"
#include "util/error.hpp"
#include "util/io.hpp"

namespace fcc::archive {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * A ByteSource over one accepted socket connection: the live-input
 * path. Producers stream flat TSH records; end-of-stream is the
 * peer closing.
 */
class SocketByteSource final : public util::ByteSource
{
  public:
    explicit SocketByteSource(util::SocketFd fd)
        : fd_(std::move(fd))
    {}

    size_t
    read(uint8_t *out, size_t maxLen) override
    {
        for (;;) {
            ssize_t got = ::recv(fd_.get(), out, maxLen, 0);
            if (got >= 0)
                return static_cast<size_t>(got);
            if (errno == EINTR)
                continue;
            throw util::Error(std::string("recv: ") +
                              std::strerror(errno));
        }
    }

  private:
    util::SocketFd fd_;
};

/** Open the configured input as a streaming TraceSource. */
std::unique_ptr<trace::TraceSource>
openInput(const DaemonConfig &config)
{
    if (!config.listen)
        return trace::openTraceSource(config.input,
                                      config.inputFormat);

    util::SocketEndpoint endpoint =
        util::SocketEndpoint::parse(config.input);
    util::SocketFd listener = util::listenSocket(endpoint);
    int fd;
    do {
        fd = ::accept(listener.get(), nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    util::require(fd >= 0, std::string("accept: ") +
                               std::strerror(errno));
    if (endpoint.kind == util::SocketEndpoint::Kind::Unix)
        ::unlink(endpoint.path.c_str());
    return std::make_unique<trace::TshSource>(
        std::make_unique<SocketByteSource>(util::SocketFd(fd)));
}

} // namespace

Daemon::Daemon(const DaemonConfig &config) : config_(config)
{
    config_.codec.validate();
    util::require(!config_.outputDir.empty(),
                  "fccd: an output directory is required");
    bool cutsChunks = config_.rotation.chunkRecords != 0 ||
                      config_.rotation.chunkWallMs != 0;
    util::require(!cutsChunks ||
                      config_.codec.container ==
                          codec::fcc::ContainerFormat::Fcc3,
                  "fccd: chunk rotation needs the fcc3 container "
                  "(rotateChunk() cuts column frames)");
}

DaemonReport
Daemon::run(DaemonControl &control,
            const std::function<void(const CatalogEntry &)> &onSeal)
{
    DaemonReport report;
    report.recovered = recoverCatalog(config_.outputDir).size();

    ArchiveWriter writer(config_.outputDir, config_.prefix);
    codec::fcc::CompressSession session(config_.codec,
                                        config_.session);
    std::unique_ptr<trace::TraceSource> source =
        openInput(config_);

    const RotationPolicy &policy = config_.rotation;
    uint64_t sinceChunk = 0;   // packets fed since the last cut
    uint64_t epochFed = 0;     // packets fed this epoch
    uint64_t totalFed = 0;
    uint64_t lastInputBytes = 0;
    Clock::time_point started = Clock::now();
    Clock::time_point chunkStart = started;
    Clock::time_point epochStart = started;

    auto wallMs = [](Clock::time_point since) {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - since)
                .count());
    };

    auto sealEpoch = [&] {
        if (epochFed == 0) {
            // Idle epoch: nothing buffered, nothing written — just
            // restart the clocks.
            chunkStart = epochStart = Clock::now();
            sinceChunk = 0;
            return;
        }
        codec::fcc::SealInfo info;
        std::vector<uint8_t> bytes = session.seal(&info);
        CatalogEntry entry = writer.commit(bytes, info);
        report.sealed.push_back(entry);
        if (onSeal)
            onSeal(entry);
        session.reArm();
        epochFed = 0;
        sinceChunk = 0;
        chunkStart = epochStart = Clock::now();
    };

    std::vector<trace::PacketRecord> batch(256);
    for (;;) {
        if (control.stop.load(std::memory_order_relaxed))
            break;
        if (control.rotateNow.exchange(
                false, std::memory_order_relaxed))
            sealEpoch();

        size_t got = source->read(batch);
        if (got == 0)
            break;

        for (size_t i = 0; i < got; ++i) {
            session.feed(batch[i]);
            ++epochFed;
            ++totalFed;
            if (policy.chunkRecords != 0 &&
                ++sinceChunk >= policy.chunkRecords) {
                session.rotateChunk();
                sinceChunk = 0;
                chunkStart = Clock::now();
            }
            if (policy.archiveRecords != 0 &&
                epochFed >= policy.archiveRecords)
                sealEpoch();
        }
        uint64_t consumed = source->bytesConsumed();
        session.addInputBytes(consumed - lastInputBytes);
        lastInputBytes = consumed;

        // Wall-clock bounds, checked once per batch: good enough at
        // batch granularity, and free of per-packet clock reads.
        if (policy.chunkWallMs != 0 && sinceChunk != 0 &&
            wallMs(chunkStart) >= policy.chunkWallMs) {
            session.rotateChunk();
            sinceChunk = 0;
            chunkStart = Clock::now();
        }
        if (policy.archiveWallMs != 0 && epochFed != 0 &&
            wallMs(epochStart) >= policy.archiveWallMs)
            sealEpoch();

        // Replay pacing: sleep off any lead over the target rate.
        if (config_.replayRate > 0) {
            double targetSec = static_cast<double>(totalFed) /
                               config_.replayRate;
            double actualSec =
                std::chrono::duration<double>(Clock::now() -
                                              started)
                    .count();
            if (targetSec > actualSec)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(targetSec -
                                                  actualSec));
        }
    }

    sealEpoch();
    report.stats = session.stats();
    return report;
}

} // namespace fcc::archive
