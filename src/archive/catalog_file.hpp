/**
 * @file
 * The crash-safe catalog of a continuous-capture output directory.
 *
 * fccd appends one line per sealed archive to `<dir>/CATALOG`; the
 * file is the machine-readable list of what is safely on disk, the
 * thing a serving layer (query::ArchiveCatalog, fccserve) watches
 * instead of re-scanning the directory. Crash model: the archive
 * itself is durable before its catalog line is written (see
 * archive/writer.hpp), so the catalog may only ever *understate*
 * the directory — a torn tail line (power cut mid-append) or a
 * missing line (crash between archive rename and append) are the
 * two recoverable states, and recover() repairs both from the
 * directory contents. The catalog never lists an archive that is
 * not fully sealed.
 *
 * Line format (one entry per line, LF-terminated, text so the file
 * is greppable and diffable):
 *
 *   fccar1 <name> <bytes> <crc32> <minFirstUs> <maxLastUs>
 *          <records> <packets> <lineCrc32>
 *
 * `crc32` is the CRC-32 of the archive file's bytes; `lineCrc32`
 * covers the line's text up to and including the space before it,
 * so a torn or bit-rotted line is detected and dropped rather than
 * trusted. Numbers are base-10 except the two CRCs (lower-case
 * hex, 8 digits).
 */

#ifndef FCC_ARCHIVE_CATALOG_FILE_HPP
#define FCC_ARCHIVE_CATALOG_FILE_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fcc::archive {

/** One sealed archive as recorded in the catalog. */
struct CatalogEntry
{
    std::string name;        ///< file name inside the directory
    uint64_t bytes = 0;      ///< archive size
    uint32_t crc32 = 0;      ///< CRC-32 of the archive bytes
    uint64_t minFirstUs = 0; ///< earliest flow start (µs)
    uint64_t maxLastUs = 0;  ///< latest packet timestamp (µs)
    uint64_t records = 0;    ///< time-seq records (flows)
    uint64_t packets = 0;    ///< packets the archive encodes

    bool operator==(const CatalogEntry &) const = default;
};

/** Render one catalog line (LF-terminated, line CRC appended). */
std::string formatCatalogLine(const CatalogEntry &entry);

/** Parse one line; nullopt when torn, corrupt or not a v1 line. */
std::optional<CatalogEntry>
parseCatalogLine(const std::string &line);

/**
 * Appender over `<dir>/CATALOG`: every append() writes one line
 * with O_APPEND semantics and fsyncs before returning, so a line,
 * once observed, survives a crash.
 */
class CatalogFile
{
  public:
    /** The catalog's file name inside an output directory. */
    static const char *fileName();

    /** Opens (creating if missing) `<directory>/CATALOG`.
     *  @throws fcc::util::Error when the file cannot be opened. */
    explicit CatalogFile(const std::string &directory);
    ~CatalogFile();

    CatalogFile(const CatalogFile &) = delete;
    CatalogFile &operator=(const CatalogFile &) = delete;

    /** Append one entry, durably. @throws fcc::util::Error */
    void append(const CatalogEntry &entry);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    int fd_ = -1;
};

/**
 * Read `<directory>/CATALOG`, dropping torn/corrupt lines. Missing
 * catalog reads as empty. Entries whose archive file no longer
 * exists are kept (the caller decides; recover() drops them).
 */
std::vector<CatalogEntry>
loadCatalog(const std::string &directory);

/**
 * Reconcile the catalog with the directory after a restart or a
 * crash:
 *  - entries whose archive file vanished are dropped;
 *  - sealed `*.fcc` files missing from the catalog (a crash between
 *    archive rename and catalog append) are re-described from their
 *    own bytes — via the archive's index block when present, else a
 *    full decode — and appended;
 *  - `*.partial` files (a crash mid-seal) are deleted: by the
 *    writer's discipline they were never renamed, hence never
 *    sealed, hence never promised to anyone;
 *  - unreadable `*.fcc` files are left in place but not listed.
 * The repaired catalog is rewritten atomically (tmp + rename) only
 * when lines were dropped; pure additions append. Returns the
 * repaired entry list, sorted by name.
 *
 * @throws fcc::util::Error when the directory cannot be read.
 */
std::vector<CatalogEntry>
recoverCatalog(const std::string &directory);

} // namespace fcc::archive

#endif // FCC_ARCHIVE_CATALOG_FILE_HPP
