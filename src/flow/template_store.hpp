/**
 * @file
 * Cluster-template store for short flows (paper §3).
 *
 * Each stored SF vector is the centre of a cluster; an incoming short
 * flow either matches an existing template (L1 distance below the
 * similarity threshold d_sim = n * 50 * 2% ) or becomes a new
 * template. Template indices are stable (insertion order) — they are
 * what the compressed time-seq dataset references.
 */

#ifndef FCC_FLOW_TEMPLATE_STORE_HPP
#define FCC_FLOW_TEMPLATE_STORE_HPP

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "flow/characterize.hpp"

namespace fcc::flow {

/** Result of offering a flow to the store. */
struct TemplateMatch
{
    uint32_t index = 0;   ///< stable template index
    bool isNew = false;   ///< true when a new cluster was created
    uint64_t distance = 0;///< L1 distance to the chosen template
};

/**
 * Append-only store of cluster-centre SF vectors, bucketed by flow
 * length so only same-length templates are compared (the paper's
 * distance is only defined for equal n).
 */
class TemplateStore
{
  public:
    explicit TemplateStore(const SimilarityRule &rule = {});

    /**
     * Find the closest same-length template within d_sim, inserting
     * @p sf as a new template when none qualifies.
     */
    TemplateMatch findOrInsert(const SfVector &sf);

    /**
     * Find the closest same-length template within d_sim without
     * inserting. Returns nullopt on miss.
     */
    std::optional<TemplateMatch> find(const SfVector &sf) const;

    /** Append a template unconditionally (decompressor load path). */
    uint32_t insert(const SfVector &sf);

    /** Number of stored templates (= number of clusters). */
    size_t size() const { return templates_.size(); }

    /** Template by stable index. */
    const SfVector &at(uint32_t index) const;

    /** All templates in insertion order. */
    const std::vector<SfVector> &all() const { return templates_; }

    /** How many flows matched each template (cluster populations). */
    const std::vector<uint64_t> &populations() const
    {
        return populations_;
    }

    const SimilarityRule &rule() const { return rule_; }

  private:
    SimilarityRule rule_;
    std::vector<SfVector> templates_;
    std::vector<uint64_t> populations_;
    /** flow length -> indices of templates with that length. */
    std::unordered_map<size_t, std::vector<uint32_t>> byLength_;
};

} // namespace fcc::flow

#endif // FCC_FLOW_TEMPLATE_STORE_HPP
