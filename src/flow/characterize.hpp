/**
 * @file
 * The paper's flow characterization (§2): each packet maps to
 *
 *     S(p_i) = w1*f1(p_i) + w2*f2(p_i) + w3*f3(p_i)
 *
 * with f1 = TCP-flag class, f2 = acknowledgment dependence and
 * f3 = payload-size class; a flow of n packets becomes the vector
 * SF = <S(p_1) ... S(p_n)>. With the default weights {16, 4, 1} the
 * encoding is a mixed-radix code, so (f1, f2, f3) is exactly
 * recoverable from S — which is what makes the lossy decompressor
 * able to regenerate flags, sizes and timing.
 */

#ifndef FCC_FLOW_CHARACTERIZE_HPP
#define FCC_FLOW_CHARACTERIZE_HPP

#include <cstdint>
#include <vector>

#include "flow/flow_table.hpp"
#include "trace/trace.hpp"

namespace fcc::flow {

/** TCP-flag classes of f1 (paper's "most common arrangements"). */
enum class FlagClass : uint8_t
{
    Syn = 0,     ///< SYN without ACK
    SynAck = 1,  ///< SYN+ACK
    Ack = 2,     ///< anything else (data / pure ACK / PSH)
    FinRst = 3,  ///< FIN or RST (with or without ACK)
};

/** Payload-size classes of f3. */
enum class SizeClass : uint8_t
{
    Empty = 0,   ///< no payload (control / pure ACK)
    Small = 1,   ///< (0, 500] bytes
    Large = 2,   ///< more than 500 bytes
};

/** Boundary between f3's Small and Large classes. */
constexpr uint16_t sizeClassBoundary = 500;

/** Per-parameter weights; the paper's defaults are {16, 4, 1}. */
struct Weights
{
    uint16_t w1 = 16;  ///< TCP flag class weight
    uint16_t w2 = 4;   ///< dependence weight
    uint16_t w3 = 1;   ///< payload-size class weight

    /**
     * True when S is uniquely decodable back to (f1, f2, f3), i.e.
     * the weights form a mixed-radix code:
     * w2 > f3max*w3 and w1 > f2max*w2 + f3max*w3.
     */
    bool decodable() const;
};

/** Decoded per-packet characterization. */
struct PacketClass
{
    FlagClass flag = FlagClass::Ack;
    bool dependent = false;  ///< waits on opposite-direction packet
    SizeClass size = SizeClass::Empty;

    bool operator==(const PacketClass &) const = default;
};

/** The per-flow characterization vector SF plus derived metadata. */
struct SfVector
{
    std::vector<uint16_t> values;

    size_t size() const { return values.size(); }
    bool operator==(const SfVector &) const = default;
};

/** f1: classify a TCP flag byte. */
FlagClass flagClass(uint8_t tcpFlags);

/** f3: classify a payload length. */
SizeClass sizeClass(uint16_t payloadBytes);

/**
 * Computes SF vectors under a weight configuration.
 *
 * f2 uses the observable dependence rule: packet i is dependent iff
 * its direction differs from packet i-1 of the same connection (it
 * was triggered by the opposite endpoint); the first packet is
 * independent.
 */
class Characterizer
{
  public:
    /** @throws fcc::util::Error if @p weights is not decodable. */
    explicit Characterizer(const Weights &weights = {});

    /** S value of a single classified packet. */
    uint16_t encode(const PacketClass &cls) const;

    /** Recover (f1, f2, f3) from an S value. @throws Error */
    PacketClass decode(uint16_t sValue) const;

    /** Classify packet @p i of @p flow within @p trace. */
    PacketClass
    classify(const AssembledFlow &flow, const trace::Trace &trace,
             size_t i) const;

    /** SF vector of an assembled flow. */
    SfVector
    characterize(const AssembledFlow &flow,
                 const trace::Trace &trace) const;

    /** Largest encodable S value under these weights. */
    uint16_t maxValue() const;

    const Weights &weights() const { return weights_; }

  private:
    Weights weights_;
};

/**
 * L1 distance between two same-length SF vectors, early-exiting once
 * @p limit is reached (returns at least @p limit in that case).
 *
 * @throws fcc::util::Error on length mismatch.
 */
uint64_t sfDistance(const SfVector &a, const SfVector &b,
                    uint64_t limit = ~0ull);

/** Configuration of the paper's similarity rule (eq. 4). */
struct SimilarityRule
{
    /** Max distance between two S values of different flows (§3). */
    uint32_t maxPacketDistance = 50;
    /** "Similar" means closer than this percentage of the max. */
    double percent = 2.0;

    /** d_sim for n-packet flows: n * maxPacketDistance * percent /100. */
    uint64_t
    threshold(size_t n) const
    {
        return static_cast<uint64_t>(
            static_cast<double>(n) * maxPacketDistance * percent /
            100.0);
    }
};

} // namespace fcc::flow

#endif // FCC_FLOW_CHARACTERIZE_HPP
