/**
 * @file
 * Bidirectional flow assembly: connections keyed by canonical
 * 5-tuple, client side fixed by the first SYN, flows closed on
 * FIN pairs, RST or idle timeout.
 */

#include "flow/flow_table.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/error.hpp"

namespace fcc::flow {

namespace {

/** Mutable per-connection assembly state. */
struct OpenFlow
{
    AssembledFlow flow;
    uint64_t lastTimestampNs = 0;
    bool finFromClient = false;
    bool finFromServer = false;
    bool clientKnown = false;
};

} // namespace

FlowTable::FlowTable(const FlowTableConfig &cfg)
    : cfg_(cfg)
{
}

std::vector<AssembledFlow>
FlowTable::assemble(const trace::Trace &trace) const
{
    util::require(trace.isTimeOrdered(),
                  "FlowTable: input trace must be time-ordered");

    std::unordered_map<FlowKey, OpenFlow> open;
    std::vector<AssembledFlow> done;

    auto finish = [&done](OpenFlow &state) {
        done.push_back(std::move(state.flow));
    };

    for (uint32_t i = 0; i < trace.size(); ++i) {
        const auto &pkt = trace[i];
        FlowKey key = FlowKey::fromPacket(pkt);

        auto it = open.find(key);
        if (it != open.end() && cfg_.idleTimeoutNs > 0 &&
            pkt.timestampNs - it->second.lastTimestampNs >
                cfg_.idleTimeoutNs) {
            // Same 5-tuple after a long silence: a new connection
            // (ephemeral port reuse). Flush the stale one.
            finish(it->second);
            open.erase(it);
            it = open.end();
        }

        if (it == open.end()) {
            OpenFlow state;
            state.flow.key = key;
            state.flow.firstTimestampNs = pkt.timestampNs;
            it = open.emplace(key, std::move(state)).first;
        }
        OpenFlow &state = it->second;

        // Identify the initiator from the first packet: the sender,
        // unless that packet is a SYN+ACK (capture started
        // mid-handshake), in which case the receiver initiated.
        if (!state.clientKnown) {
            bool synAck = pkt.hasSyn() && pkt.hasAck();
            if (synAck) {
                state.flow.clientIp = pkt.dstIp;
                state.flow.clientPort = pkt.dstPort;
                state.flow.serverIp = pkt.srcIp;
                state.flow.serverPort = pkt.srcPort;
            } else {
                state.flow.clientIp = pkt.srcIp;
                state.flow.clientPort = pkt.srcPort;
                state.flow.serverIp = pkt.dstIp;
                state.flow.serverPort = pkt.dstPort;
            }
            state.clientKnown = true;
        }

        bool fromClient = pkt.srcIp == state.flow.clientIp &&
                          pkt.srcPort == state.flow.clientPort;
        state.flow.packetIndex.push_back(i);
        state.flow.fromClient.push_back(fromClient);
        state.lastTimestampNs = pkt.timestampNs;

        if (pkt.hasFin()) {
            if (fromClient)
                state.finFromClient = true;
            else
                state.finFromServer = true;
        }

        // Teardown complete: RST ends the connection immediately; a
        // pure ACK after FINs in both directions is the final ack of
        // a graceful close.
        bool gracefulDone = state.finFromClient &&
                            state.finFromServer && !pkt.hasFin() &&
                            pkt.hasAck();
        if (pkt.hasRst() || gracefulDone) {
            finish(state);
            open.erase(it);
        }
    }

    for (auto &entry : open)
        done.push_back(std::move(entry.second.flow));

    if (cfg_.dropSinglePacketFlows) {
        std::erase_if(done, [](const AssembledFlow &flow) {
            return flow.size() < 2;
        });
    }

    std::sort(done.begin(), done.end(),
              [](const AssembledFlow &a, const AssembledFlow &b) {
                  return a.firstTimestampNs < b.firstTimestampNs;
              });
    return done;
}

} // namespace fcc::flow
