/**
 * @file
 * Bidirectional flow assembly: connections keyed by canonical
 * 5-tuple, client side fixed by the first SYN, flows closed on
 * FIN pairs, RST or idle timeout. The sharded entry points
 * partition packets by 5-tuple hash so shards assemble
 * independently (and concurrently) with identical semantics.
 */

#include "flow/flow_table.hpp"

#include <algorithm>
#include <numeric>
#include <tuple>

#include <unordered_map>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace fcc::flow {

namespace {

/** Mutable per-connection assembly state. */
struct OpenFlow
{
    AssembledFlow flow;
    uint64_t lastTimestampNs = 0;
    bool finFromClient = false;
    bool finFromServer = false;
    bool clientKnown = false;
};

uint32_t
shardOf(const FlowKey &key, uint32_t shards)
{
    return static_cast<uint32_t>(key.hash() % shards);
}

} // namespace

bool
canonicalFlowLess(const AssembledFlow &a, const AssembledFlow &b)
{
    return canonicalFlowOrderKey(a.firstTimestampNs, a.key) <
           canonicalFlowOrderKey(b.firstTimestampNs, b.key);
}

FlowTable::FlowTable(const FlowTableConfig &cfg)
    : cfg_(cfg)
{
    util::require(cfg_.shards >= 1,
                  "FlowTable: shard count must be >= 1");
}

std::vector<AssembledFlow>
FlowTable::assembleIndices(const trace::Trace &trace,
                           std::span<const uint32_t> indices) const
{
    std::unordered_map<FlowKey, OpenFlow> open;
    std::vector<AssembledFlow> done;

    auto finish = [&done](OpenFlow &state) {
        done.push_back(std::move(state.flow));
    };

    for (uint32_t i : indices) {
        const auto &pkt = trace[i];
        FlowKey key = FlowKey::fromPacket(pkt);

        auto it = open.find(key);
        if (it != open.end() && cfg_.idleTimeoutNs > 0 &&
            pkt.timestampNs - it->second.lastTimestampNs >
                cfg_.idleTimeoutNs) {
            // Same 5-tuple after a long silence: a new connection
            // (ephemeral port reuse). Flush the stale one.
            finish(it->second);
            open.erase(it);
            it = open.end();
        }

        if (it == open.end()) {
            OpenFlow state;
            state.flow.key = key;
            state.flow.firstTimestampNs = pkt.timestampNs;
            it = open.emplace(key, std::move(state)).first;
        }
        OpenFlow &state = it->second;

        // Identify the initiator from the first packet: the sender,
        // unless that packet is a SYN+ACK (capture started
        // mid-handshake), in which case the receiver initiated.
        if (!state.clientKnown) {
            bool synAck = pkt.hasSyn() && pkt.hasAck();
            if (synAck) {
                state.flow.clientIp = pkt.dstIp;
                state.flow.clientPort = pkt.dstPort;
                state.flow.serverIp = pkt.srcIp;
                state.flow.serverPort = pkt.srcPort;
            } else {
                state.flow.clientIp = pkt.srcIp;
                state.flow.clientPort = pkt.srcPort;
                state.flow.serverIp = pkt.dstIp;
                state.flow.serverPort = pkt.dstPort;
            }
            state.clientKnown = true;
        }

        bool fromClient = pkt.srcIp == state.flow.clientIp &&
                          pkt.srcPort == state.flow.clientPort;
        state.flow.packetIndex.push_back(i);
        state.flow.fromClient.push_back(fromClient);
        state.lastTimestampNs = pkt.timestampNs;

        if (pkt.hasFin()) {
            if (fromClient)
                state.finFromClient = true;
            else
                state.finFromServer = true;
        }

        // Teardown complete: RST ends the connection immediately; a
        // pure ACK after FINs in both directions is the final ack of
        // a graceful close.
        bool gracefulDone = state.finFromClient &&
                            state.finFromServer && !pkt.hasFin() &&
                            pkt.hasAck();
        if (pkt.hasRst() || gracefulDone) {
            finish(state);
            open.erase(it);
        }
    }

    for (auto &entry : open)
        done.push_back(std::move(entry.second.flow));

    if (cfg_.dropSinglePacketFlows) {
        std::erase_if(done, [](const AssembledFlow &flow) {
            return flow.size() < 2;
        });
    }

    std::sort(done.begin(), done.end(), canonicalFlowLess);
    return done;
}

std::vector<AssembledFlow>
FlowTable::assemble(const trace::Trace &trace) const
{
    util::require(trace.isTimeOrdered(),
                  "FlowTable: input trace must be time-ordered");
    std::vector<uint32_t> all(trace.size());
    std::iota(all.begin(), all.end(), 0u);
    return assembleIndices(trace, all);
}

std::vector<std::vector<uint32_t>>
FlowTable::partition(const trace::Trace &trace,
                     util::ThreadPool *pool) const
{
    uint32_t shards = cfg_.shards;
    std::vector<std::vector<uint32_t>> out(shards);
    if (trace.empty())
        return out;

    // Fixed chunk size: the per-chunk buckets concatenate in chunk
    // order, so the result is independent of both chunking and
    // thread count.
    constexpr size_t chunkPackets = 1 << 15;
    size_t chunks = (trace.size() + chunkPackets - 1) / chunkPackets;

    if (pool == nullptr || pool->size() <= 1 || chunks == 1) {
        for (uint32_t i = 0; i < trace.size(); ++i)
            out[shardOf(FlowKey::fromPacket(trace[i]), shards)]
                .push_back(i);
        return out;
    }

    std::vector<std::vector<std::vector<uint32_t>>> buckets(chunks);
    pool->parallelFor(chunks, [&](size_t c) {
        auto &mine = buckets[c];
        mine.resize(shards);
        uint32_t begin = static_cast<uint32_t>(c * chunkPackets);
        uint32_t end = static_cast<uint32_t>(
            std::min(trace.size(), (c + 1) * chunkPackets));
        for (uint32_t i = begin; i < end; ++i)
            mine[shardOf(FlowKey::fromPacket(trace[i]), shards)]
                .push_back(i);
    });

    pool->parallelFor(shards, [&](size_t s) {
        size_t total = 0;
        for (const auto &chunk : buckets)
            total += chunk[s].size();
        out[s].reserve(total);
        for (const auto &chunk : buckets)
            out[s].insert(out[s].end(), chunk[s].begin(),
                          chunk[s].end());
    });
    return out;
}

std::vector<std::vector<AssembledFlow>>
FlowTable::assembleSharded(const trace::Trace &trace,
                           util::ThreadPool *pool) const
{
    util::require(trace.isTimeOrdered(),
                  "FlowTable: input trace must be time-ordered");
    auto shardIndices = partition(trace, pool);

    std::vector<std::vector<AssembledFlow>> out(shardIndices.size());
    auto assembleOne = [&](size_t s) {
        out[s] = assembleIndices(trace, shardIndices[s]);
    };
    if (pool == nullptr || pool->size() <= 1) {
        for (size_t s = 0; s < shardIndices.size(); ++s)
            assembleOne(s);
    } else {
        pool->parallelFor(shardIndices.size(), assembleOne);
    }
    return out;
}

} // namespace fcc::flow
