/**
 * @file
 * Canonical bidirectional flow identity.
 *
 * The paper defines a flow by the 5-tuple (source/destination address,
 * protocol, source/destination ports); its f2 parameter (ack
 * dependence) and its decompressor's client/server port assignment
 * treat the two directions of a TCP connection as one object. FlowKey
 * therefore canonicalizes the 5-tuple so both directions map to the
 * same key, and remembers enough to recover each packet's direction.
 */

#ifndef FCC_FLOW_FLOW_KEY_HPP
#define FCC_FLOW_FLOW_KEY_HPP

#include <cstdint>
#include <functional>

#include "trace/packet.hpp"
#include "util/hash.hpp"

namespace fcc::flow {

/**
 * Direction-independent 5-tuple: endpoint A is the numerically
 * smaller (ip, port) pair, so a packet and its reply produce the
 * same key.
 */
struct FlowKey
{
    uint32_t ipA = 0;
    uint32_t ipB = 0;
    uint16_t portA = 0;
    uint16_t portB = 0;
    uint8_t protocol = 0;

    /** Build the canonical key for @p pkt. */
    static FlowKey
    fromPacket(const trace::PacketRecord &pkt)
    {
        FlowKey key;
        key.protocol = pkt.protocol;
        bool srcIsA = pkt.srcIp < pkt.dstIp ||
                      (pkt.srcIp == pkt.dstIp &&
                       pkt.srcPort <= pkt.dstPort);
        if (srcIsA) {
            key.ipA = pkt.srcIp;
            key.portA = pkt.srcPort;
            key.ipB = pkt.dstIp;
            key.portB = pkt.dstPort;
        } else {
            key.ipA = pkt.dstIp;
            key.portA = pkt.dstPort;
            key.ipB = pkt.srcIp;
            key.portB = pkt.srcPort;
        }
        return key;
    }

    /** True when @p pkt travels from endpoint A to endpoint B. */
    bool
    packetFromA(const trace::PacketRecord &pkt) const
    {
        return pkt.srcIp == ipA && pkt.srcPort == portA;
    }

    bool operator==(const FlowKey &) const = default;

    /** Mixing hash over all five fields. */
    uint64_t
    hash() const
    {
        uint64_t h = util::mix64(
            (static_cast<uint64_t>(ipA) << 32) | ipB);
        h = util::hashCombine(
            h, (static_cast<uint64_t>(portA) << 32) |
                   (static_cast<uint64_t>(portB) << 16) | protocol);
        return h;
    }
};

} // namespace fcc::flow

template <>
struct std::hash<fcc::flow::FlowKey>
{
    size_t
    operator()(const fcc::flow::FlowKey &key) const noexcept
    {
        return static_cast<size_t>(key.hash());
    }
};

#endif // FCC_FLOW_FLOW_KEY_HPP
