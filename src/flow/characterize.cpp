/**
 * @file
 * Packet characterization: flag/ack-dependence/size classing, the
 * mixed-radix weight legality check (Weights::decodable) and the
 * S-value encode/decode of paper §2.
 */

#include "flow/characterize.hpp"

#include "util/error.hpp"

namespace fcc::flow {

namespace {

constexpr uint16_t f1Max = 3;
constexpr uint16_t f2Max = 1;
constexpr uint16_t f3Max = 2;

} // namespace

bool
Weights::decodable() const
{
    if (w1 == 0 || w2 == 0 || w3 == 0)
        return false;
    return w2 > f3Max * w3 && w1 > f2Max * w2 + f3Max * w3;
}

FlagClass
flagClass(uint8_t tcpFlags)
{
    using namespace trace::tcp_flags;
    if (tcpFlags & (Fin | Rst))
        return FlagClass::FinRst;
    if (tcpFlags & Syn)
        return (tcpFlags & Ack) ? FlagClass::SynAck : FlagClass::Syn;
    return FlagClass::Ack;
}

SizeClass
sizeClass(uint16_t payloadBytes)
{
    if (payloadBytes == 0)
        return SizeClass::Empty;
    return payloadBytes <= sizeClassBoundary ? SizeClass::Small
                                             : SizeClass::Large;
}

Characterizer::Characterizer(const Weights &weights)
    : weights_(weights)
{
    util::require(weights_.decodable(),
                  "Characterizer: weights do not form a decodable "
                  "mixed-radix code (need w2 > 2*w3 and "
                  "w1 > w2 + 2*w3)");
}

uint16_t
Characterizer::encode(const PacketClass &cls) const
{
    return static_cast<uint16_t>(
        weights_.w1 * static_cast<uint16_t>(cls.flag) +
        weights_.w2 * (cls.dependent ? 0 : 1) +
        weights_.w3 * static_cast<uint16_t>(cls.size));
}

PacketClass
Characterizer::decode(uint16_t sValue) const
{
    util::require(sValue <= maxValue(),
                  "Characterizer: S value out of range");
    PacketClass cls;
    uint16_t rest = sValue;
    uint16_t f1 = static_cast<uint16_t>(rest / weights_.w1);
    util::require(f1 <= f1Max, "Characterizer: invalid f1 in S value");
    rest = static_cast<uint16_t>(rest % weights_.w1);
    uint16_t f2 = static_cast<uint16_t>(rest / weights_.w2);
    util::require(f2 <= f2Max, "Characterizer: invalid f2 in S value");
    rest = static_cast<uint16_t>(rest % weights_.w2);
    util::require(rest % weights_.w3 == 0 &&
                      rest / weights_.w3 <= f3Max,
                  "Characterizer: invalid f3 in S value");
    cls.flag = static_cast<FlagClass>(f1);
    cls.dependent = f2 == 0;
    cls.size = static_cast<SizeClass>(rest / weights_.w3);
    return cls;
}

PacketClass
Characterizer::classify(const AssembledFlow &flow,
                        const trace::Trace &trace, size_t i) const
{
    FCC_ASSERT(i < flow.size(), "packet index out of flow bounds");
    const auto &pkt = trace[flow.packetIndex[i]];
    PacketClass cls;
    cls.flag = flagClass(pkt.tcpFlags);
    cls.size = sizeClass(pkt.payloadBytes);
    // Observable acknowledgment-dependence rule: triggered by (and
    // thus waiting on) the previous packet iff directions differ.
    cls.dependent = i > 0 &&
                    flow.fromClient[i] != flow.fromClient[i - 1];
    return cls;
}

SfVector
Characterizer::characterize(const AssembledFlow &flow,
                            const trace::Trace &trace) const
{
    SfVector sf;
    sf.values.reserve(flow.size());
    for (size_t i = 0; i < flow.size(); ++i)
        sf.values.push_back(encode(classify(flow, trace, i)));
    return sf;
}

uint16_t
Characterizer::maxValue() const
{
    return static_cast<uint16_t>(weights_.w1 * f1Max +
                                 weights_.w2 * f2Max +
                                 weights_.w3 * f3Max);
}

uint64_t
sfDistance(const SfVector &a, const SfVector &b, uint64_t limit)
{
    util::require(a.size() == b.size(),
                  "sfDistance: vectors differ in length");
    uint64_t total = 0;
    for (size_t i = 0; i < a.values.size(); ++i) {
        int32_t diff = static_cast<int32_t>(a.values[i]) -
                       static_cast<int32_t>(b.values[i]);
        total += static_cast<uint64_t>(diff < 0 ? -diff : diff);
        if (total >= limit)
            return total;
    }
    return total;
}

} // namespace fcc::flow
