/**
 * @file
 * Flow assembly: demultiplex a time-ordered packet trace into
 * bidirectional TCP connections.
 *
 * Mirrors the paper's compressor front end (§3): packets are grouped
 * by canonical 5-tuple; a connection is flushed when its teardown
 * completes (RST, or the ACK following FINs in both directions), when
 * it stays idle longer than a timeout, or at end of trace.
 */

#ifndef FCC_FLOW_FLOW_TABLE_HPP
#define FCC_FLOW_FLOW_TABLE_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

#include "flow/flow_key.hpp"
#include "trace/trace.hpp"

namespace fcc::util {
class ThreadPool;
}

namespace fcc::flow {

/** One assembled bidirectional connection. */
struct AssembledFlow
{
    FlowKey key;

    uint32_t clientIp = 0;   ///< connection initiator
    uint32_t serverIp = 0;
    uint16_t clientPort = 0;
    uint16_t serverPort = 0;

    /** Indices into the source trace, in time order. */
    std::vector<uint32_t> packetIndex;
    /** Direction of each packet (parallel to packetIndex). */
    std::vector<bool> fromClient;

    uint64_t firstTimestampNs = 0;

    size_t size() const { return packetIndex.size(); }
};

/** Flow assembly parameters. */
struct FlowTableConfig
{
    /** Idle gap that closes a connection (0 disables). */
    uint64_t idleTimeoutNs = 60ull * 1000000000ull;
    /** Drop single-packet groups (the paper's flows start at 2). */
    bool dropSinglePacketFlows = false;
    /**
     * Shard count of the sharded pipeline. Connections are
     * partitioned by 5-tuple hash, so every packet of a connection
     * lands in one shard and shards assemble independently. The
     * count is part of the output contract — it must NOT be derived
     * from the thread count, or compressed output would change with
     * the machine (see FccConfig::threads).
     */
    uint32_t shards = 16;
};

/**
 * Sort key of the deterministic flow order: first-packet timestamp,
 * ties broken by the canonical 5-tuple. Every code path that orders
 * flows (per-shard sort, cross-shard merge) must use this one key or
 * merged output would depend on the decomposition.
 */
inline auto
canonicalFlowOrderKey(uint64_t firstTimestampNs, const FlowKey &key)
{
    return std::tuple(firstTimestampNs, key.ipA, key.ipB, key.portA,
                      key.portB, key.protocol);
}

/** canonicalFlowOrderKey comparison on assembled flows. */
bool canonicalFlowLess(const AssembledFlow &a, const AssembledFlow &b);

/**
 * Assembles connections out of a packet trace.
 *
 * The input must be time-ordered; flows are returned ordered by their
 * first packet's timestamp, matching the paper's time-seq dataset
 * order.
 */
class FlowTable
{
  public:
    explicit FlowTable(const FlowTableConfig &cfg = {});

    /**
     * Group every packet of @p trace into connections.
     *
     * @throws fcc::util::Error if @p trace is not time-ordered.
     */
    std::vector<AssembledFlow> assemble(const trace::Trace &trace) const;

    /**
     * Partition packet indices by 5-tuple hash into cfg.shards
     * time-ordered lists. The result depends only on the trace and
     * the shard count, never on @p pool (which merely parallelizes
     * the scan); pass nullptr to run on the calling thread.
     */
    std::vector<std::vector<uint32_t>>
    partition(const trace::Trace &trace, util::ThreadPool *pool) const;

    /**
     * Assemble the connections of one shard: @p indices must be a
     * time-ordered packet-index list that is closed under flow
     * membership (all packets of a 5-tuple or none — partition()
     * guarantees this). Flows are returned in canonicalFlowLess
     * order with dropSinglePacketFlows applied.
     */
    std::vector<AssembledFlow>
    assembleIndices(const trace::Trace &trace,
                    std::span<const uint32_t> indices) const;

    /**
     * partition() + per-shard assembleIndices(), shards run
     * concurrently on @p pool (nullptr = sequential). Element s holds
     * shard s's flows; the concatenation sorted by canonicalFlowLess
     * equals assemble() up to tie order.
     */
    std::vector<std::vector<AssembledFlow>>
    assembleSharded(const trace::Trace &trace,
                    util::ThreadPool *pool) const;

  private:
    FlowTableConfig cfg_;
};

} // namespace fcc::flow

#endif // FCC_FLOW_FLOW_TABLE_HPP
