/**
 * @file
 * Flow assembly: demultiplex a time-ordered packet trace into
 * bidirectional TCP connections.
 *
 * Mirrors the paper's compressor front end (§3): packets are grouped
 * by canonical 5-tuple; a connection is flushed when its teardown
 * completes (RST, or the ACK following FINs in both directions), when
 * it stays idle longer than a timeout, or at end of trace.
 */

#ifndef FCC_FLOW_FLOW_TABLE_HPP
#define FCC_FLOW_FLOW_TABLE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "flow/flow_key.hpp"
#include "trace/trace.hpp"

namespace fcc::flow {

/** One assembled bidirectional connection. */
struct AssembledFlow
{
    FlowKey key;

    uint32_t clientIp = 0;   ///< connection initiator
    uint32_t serverIp = 0;
    uint16_t clientPort = 0;
    uint16_t serverPort = 0;

    /** Indices into the source trace, in time order. */
    std::vector<uint32_t> packetIndex;
    /** Direction of each packet (parallel to packetIndex). */
    std::vector<bool> fromClient;

    uint64_t firstTimestampNs = 0;

    size_t size() const { return packetIndex.size(); }
};

/** Flow assembly parameters. */
struct FlowTableConfig
{
    /** Idle gap that closes a connection (0 disables). */
    uint64_t idleTimeoutNs = 60ull * 1000000000ull;
    /** Drop single-packet groups (the paper's flows start at 2). */
    bool dropSinglePacketFlows = false;
};

/**
 * Assembles connections out of a packet trace.
 *
 * The input must be time-ordered; flows are returned ordered by their
 * first packet's timestamp, matching the paper's time-seq dataset
 * order.
 */
class FlowTable
{
  public:
    explicit FlowTable(const FlowTableConfig &cfg = {});

    /**
     * Group every packet of @p trace into connections.
     *
     * @throws fcc::util::Error if @p trace is not time-ordered.
     */
    std::vector<AssembledFlow> assemble(const trace::Trace &trace) const;

  private:
    FlowTableConfig cfg_;
};

} // namespace fcc::flow

#endif // FCC_FLOW_FLOW_TABLE_HPP
