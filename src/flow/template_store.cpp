/**
 * @file
 * Leader-style online cluster store: find() returns the nearest
 * template within the similarity threshold (eq. 4), insert()
 * starts a new cluster; buckets are keyed by vector length since
 * eq. 3 only compares equal-length flows.
 */

#include "flow/template_store.hpp"

#include "util/error.hpp"

namespace fcc::flow {

TemplateStore::TemplateStore(const SimilarityRule &rule)
    : rule_(rule)
{
}

std::optional<TemplateMatch>
TemplateStore::find(const SfVector &sf) const
{
    uint64_t dSim = rule_.threshold(sf.size());
    auto bucket = byLength_.find(sf.size());
    if (bucket == byLength_.end())
        return std::nullopt;

    // Pick the closest qualifying template, not merely the first:
    // assigning each flow to its nearest cluster centre keeps the
    // clusters tight and the reconstruction error minimal.
    std::optional<TemplateMatch> best;
    for (uint32_t idx : bucket->second) {
        uint64_t d = sfDistance(templates_[idx], sf, dSim);
        if (d < dSim && (!best || d < best->distance)) {
            best = TemplateMatch{idx, false, d};
            if (d == 0)
                break;
        }
    }
    return best;
}

TemplateMatch
TemplateStore::findOrInsert(const SfVector &sf)
{
    if (auto hit = find(sf)) {
        ++populations_[hit->index];
        return *hit;
    }
    uint32_t index = insert(sf);
    ++populations_[index];
    return TemplateMatch{index, true, 0};
}

uint32_t
TemplateStore::insert(const SfVector &sf)
{
    util::require(!sf.values.empty(),
                  "TemplateStore: empty SF vector");
    uint32_t index = static_cast<uint32_t>(templates_.size());
    byLength_[sf.size()].push_back(index);
    templates_.push_back(sf);
    populations_.push_back(0);
    return index;
}

const SfVector &
TemplateStore::at(uint32_t index) const
{
    util::require(index < templates_.size(),
                  "TemplateStore: template index out of range");
    return templates_[index];
}

} // namespace fcc::flow
