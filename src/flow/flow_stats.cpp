/**
 * @file
 * Flow-population aggregates (share of short flows / packets /
 * bytes) and the flow-length histogram behind the §3 table.
 */

#include "flow/flow_stats.hpp"

namespace fcc::flow {

double
FlowStats::shortFlowShare() const
{
    return flows ? static_cast<double>(shortFlows) /
                       static_cast<double>(flows)
                 : 0.0;
}

double
FlowStats::shortPacketShare() const
{
    return packets ? static_cast<double>(shortPackets) /
                         static_cast<double>(packets)
                   : 0.0;
}

double
FlowStats::shortByteShare() const
{
    return wireBytes ? static_cast<double>(shortWireBytes) /
                           static_cast<double>(wireBytes)
                     : 0.0;
}

double
FlowStats::meanFlowLength() const
{
    return flows ? static_cast<double>(packets) /
                       static_cast<double>(flows)
                 : 0.0;
}

std::vector<std::pair<uint32_t, double>>
FlowStats::lengthDistribution() const
{
    std::vector<std::pair<uint32_t, double>> out;
    out.reserve(lengthCounts.size());
    for (const auto &[len, count] : lengthCounts)
        out.emplace_back(len, flows
                                  ? static_cast<double>(count) /
                                        static_cast<double>(flows)
                                  : 0.0);
    return out;
}

FlowStats
computeFlowStats(const std::vector<AssembledFlow> &flows,
                 const trace::Trace &trace, uint32_t shortLimit)
{
    FlowStats stats;
    for (const auto &flow : flows) {
        uint64_t bytes = 0;
        for (uint32_t idx : flow.packetIndex)
            bytes += trace[idx].ipTotalLength();

        uint32_t len = static_cast<uint32_t>(flow.size());
        ++stats.flows;
        stats.packets += len;
        stats.wireBytes += bytes;
        ++stats.lengthCounts[len];
        if (len <= shortLimit) {
            ++stats.shortFlows;
            stats.shortPackets += len;
            stats.shortWireBytes += bytes;
        }
    }
    return stats;
}

} // namespace fcc::flow
