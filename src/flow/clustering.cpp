/**
 * @file
 * k-medoids (PAM-style) clustering with L1 distance over SF
 * vectors plus silhouette scoring; the offline cross-check of the
 * online leader clustering in TemplateStore.
 */

#include "flow/clustering.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "flow/template_store.hpp"
#include "util/error.hpp"

namespace fcc::flow {

KMedoidsResult
kMedoids(const std::vector<SfVector> &vectors, size_t k,
         util::Rng &rng, uint32_t maxIterations)
{
    util::require(!vectors.empty(), "kMedoids: empty input");
    util::require(k >= 1 && k <= vectors.size(),
                  "kMedoids: k out of range");
    size_t len = vectors.front().size();
    for (const auto &v : vectors)
        util::require(v.size() == len,
                      "kMedoids: vectors must share one length");

    size_t n = vectors.size();
    KMedoidsResult result;

    // Draw k distinct initial medoids.
    std::unordered_set<uint32_t> chosen;
    while (chosen.size() < k)
        chosen.insert(
            static_cast<uint32_t>(rng.uniformInt(0, n - 1)));
    result.medoids.assign(chosen.begin(), chosen.end());
    std::sort(result.medoids.begin(), result.medoids.end());

    result.assignment.assign(n, 0);
    for (uint32_t iter = 0; iter < maxIterations; ++iter) {
        ++result.iterations;

        // Assignment step.
        result.totalCost = 0;
        for (size_t i = 0; i < n; ++i) {
            uint64_t bestD = std::numeric_limits<uint64_t>::max();
            uint32_t bestSlot = 0;
            for (uint32_t slot = 0; slot < result.medoids.size();
                 ++slot) {
                uint64_t d = sfDistance(
                    vectors[i], vectors[result.medoids[slot]], bestD);
                if (d < bestD) {
                    bestD = d;
                    bestSlot = slot;
                }
            }
            result.assignment[i] = bestSlot;
            result.totalCost += bestD;
        }

        // Medoid-update step: within each cluster pick the member
        // minimizing the summed distance to the others.
        bool changed = false;
        for (uint32_t slot = 0; slot < result.medoids.size(); ++slot) {
            std::vector<uint32_t> members;
            for (size_t i = 0; i < n; ++i)
                if (result.assignment[i] == slot)
                    members.push_back(static_cast<uint32_t>(i));
            if (members.empty())
                continue;
            uint64_t bestCost = std::numeric_limits<uint64_t>::max();
            uint32_t bestMember = result.medoids[slot];
            for (uint32_t candidate : members) {
                uint64_t cost = 0;
                for (uint32_t other : members) {
                    cost += sfDistance(vectors[candidate],
                                       vectors[other],
                                       bestCost - std::min(bestCost,
                                                           cost));
                    if (cost >= bestCost)
                        break;
                }
                if (cost < bestCost) {
                    bestCost = cost;
                    bestMember = candidate;
                }
            }
            if (bestMember != result.medoids[slot]) {
                result.medoids[slot] = bestMember;
                changed = true;
            }
        }
        if (!changed)
            break;
    }
    return result;
}

DiversitySummary
summarizeDiversity(const std::vector<SfVector> &vectors,
                   const SimilarityRule &rule)
{
    DiversitySummary out;
    TemplateStore store(rule);
    size_t exact = 0;
    for (const auto &v : vectors) {
        TemplateMatch m = store.findOrInsert(v);
        if (!m.isNew && m.distance == 0)
            ++exact;
        if (m.isNew)
            ++exact;  // a centre trivially equals itself
    }
    out.flows = vectors.size();
    out.clusters = store.size();
    out.meanPopulation = out.clusters
        ? static_cast<double>(out.flows) /
              static_cast<double>(out.clusters)
        : 0.0;
    out.exactShare = out.flows
        ? static_cast<double>(exact) / static_cast<double>(out.flows)
        : 0.0;

    std::vector<uint64_t> pops = store.populations();
    std::sort(pops.begin(), pops.end(), std::greater<>());
    uint64_t top = 0;
    for (size_t i = 0; i < pops.size() && i < 10; ++i)
        top += pops[i];
    out.top10Share = out.flows
        ? static_cast<double>(top) / static_cast<double>(out.flows)
        : 0.0;
    return out;
}

double
silhouette(const std::vector<SfVector> &vectors,
           const std::vector<uint32_t> &assignment)
{
    util::require(vectors.size() == assignment.size(),
                  "silhouette: assignment size mismatch");
    uint32_t clusters = 0;
    for (uint32_t a : assignment)
        clusters = std::max(clusters, a + 1);
    util::require(clusters >= 2, "silhouette: need >= 2 clusters");

    size_t n = vectors.size();
    double total = 0.0;
    size_t counted = 0;
    for (size_t i = 0; i < n; ++i) {
        std::vector<double> meanDist(clusters, 0.0);
        std::vector<size_t> count(clusters, 0);
        for (size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            meanDist[assignment[j]] += static_cast<double>(
                sfDistance(vectors[i], vectors[j]));
            ++count[assignment[j]];
        }
        uint32_t own = assignment[i];
        if (count[own] == 0)
            continue;  // singleton cluster: silhouette undefined
        double a = meanDist[own] / static_cast<double>(count[own]);
        double b = std::numeric_limits<double>::max();
        for (uint32_t c = 0; c < clusters; ++c) {
            if (c == own || count[c] == 0)
                continue;
            b = std::min(b,
                         meanDist[c] / static_cast<double>(count[c]));
        }
        if (b == std::numeric_limits<double>::max())
            continue;
        double s = (b - a) / std::max(a, b);
        if (a == 0.0 && b == 0.0)
            s = 0.0;
        total += s;
        ++counted;
    }
    return counted ? total / static_cast<double>(counted) : 0.0;
}

} // namespace fcc::flow
