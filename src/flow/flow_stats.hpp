/**
 * @file
 * Flow-population statistics (paper §3 aggregates and the flow-length
 * distribution P_n feeding the analytical compression-ratio models of
 * §5).
 */

#ifndef FCC_FLOW_FLOW_STATS_HPP
#define FCC_FLOW_FLOW_STATS_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "flow/flow_table.hpp"
#include "trace/trace.hpp"

namespace fcc::flow {

/** Aggregates over an assembled flow population. */
struct FlowStats
{
    uint64_t flows = 0;
    uint64_t packets = 0;
    uint64_t wireBytes = 0;

    uint64_t shortFlows = 0;     ///< 2..50 packets (and 1-packet)
    uint64_t shortPackets = 0;
    uint64_t shortWireBytes = 0;

    /** flow length (packets) -> number of flows. */
    std::map<uint32_t, uint64_t> lengthCounts;

    double shortFlowShare() const;
    double shortPacketShare() const;
    double shortByteShare() const;
    double meanFlowLength() const;

    /**
     * Flow-length probabilities P_n as (n, P_n) pairs — the
     * distribution the paper plugs into eqs. 6 and 8.
     */
    std::vector<std::pair<uint32_t, double>> lengthDistribution() const;
};

/**
 * Compute flow statistics for @p flows over @p trace.
 *
 * @param shortLimit largest packet count still counted short
 *        (paper: 50).
 */
FlowStats computeFlowStats(const std::vector<AssembledFlow> &flows,
                           const trace::Trace &trace,
                           uint32_t shortLimit = 50);

} // namespace fcc::flow

#endif // FCC_FLOW_FLOW_STATS_HPP
