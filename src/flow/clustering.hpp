/**
 * @file
 * Offline flow-diversity study tools (paper §2.1).
 *
 * The paper's claim — "in consequence of the huge similarity among Web
 * flows, we can group a high amount of them into few clusters" — is
 * reproduced two ways: the greedy leader clustering the compressor
 * itself performs (TemplateStore) and a classical k-medoids
 * clustering with silhouette-style quality metrics, both over SF
 * vectors of equal length.
 */

#ifndef FCC_FLOW_CLUSTERING_HPP
#define FCC_FLOW_CLUSTERING_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "flow/characterize.hpp"
#include "util/rng.hpp"

namespace fcc::flow {

/** Result of a k-medoids run over same-length SF vectors. */
struct KMedoidsResult
{
    std::vector<uint32_t> medoids;     ///< indices into the input set
    std::vector<uint32_t> assignment;  ///< per-vector medoid slot
    uint64_t totalCost = 0;            ///< sum of L1 distances
    uint32_t iterations = 0;           ///< iterations until stable
};

/**
 * k-medoids (PAM-style, alternating assignment / medoid update) under
 * the L1 metric. All vectors must share one length.
 *
 * @param vectors same-length SF vectors to cluster (non-empty).
 * @param k number of clusters (1 <= k <= vectors.size()).
 * @param rng randomness for the initial medoid draw.
 * @param maxIterations safety cap.
 * @throws fcc::util::Error on invalid arguments.
 */
KMedoidsResult kMedoids(const std::vector<SfVector> &vectors, size_t k,
                        util::Rng &rng, uint32_t maxIterations = 50);

/** Aggregate diversity statistics of a set of flows. */
struct DiversitySummary
{
    size_t flows = 0;            ///< clustered flows
    size_t clusters = 0;         ///< leader clusters created
    double meanPopulation = 0;   ///< flows per cluster
    /** Fraction of flows absorbed by the 10 largest clusters. */
    double top10Share = 0;
    /** Fraction of flows whose vector exactly equals its centre. */
    double exactShare = 0;
};

/**
 * Greedy leader clustering of @p vectors under @p rule (exactly what
 * the compressor does), summarized.
 */
DiversitySummary
summarizeDiversity(const std::vector<SfVector> &vectors,
                   const SimilarityRule &rule = {});

/**
 * Mean silhouette coefficient of a clustering (L1 metric), a standard
 * cluster-quality score in [-1, 1]. Expensive (O(n^2)); intended for
 * study-sized inputs.
 *
 * @throws fcc::util::Error if fewer than 2 clusters are present.
 */
double silhouette(const std::vector<SfVector> &vectors,
                  const std::vector<uint32_t> &assignment);

} // namespace fcc::flow

#endif // FCC_FLOW_CLUSTERING_HPP
