/**
 * @file
 * Path-compressed (Patricia-style) longest-prefix-match trie — the
 * BSD-flavoured structure at the heart of Commbench's RTR kernel.
 * Each node consumes a run of bits (edge label) before branching, so
 * lookups visit far fewer nodes than the plain RadixTree while
 * touching the same kind of per-node and per-entry memory.
 */

#ifndef FCC_NETBENCH_PATRICIA_TRIE_HPP
#define FCC_NETBENCH_PATRICIA_TRIE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "memsim/memory_recorder.hpp"
#include "netbench/route_entry.hpp"

namespace fcc::netbench {

/** Binary trie with edge (path) compression. */
class PatriciaTrie
{
  public:
    /** @param recorder optional instrumentation sink (not owned). */
    explicit PatriciaTrie(memsim::MemoryRecorder *recorder = nullptr);

    /** Insert a route. @throws fcc::util::Error for prefixLen > 32. */
    void insert(const RouteEntry &entry);

    /** Bulk-build from a table. */
    void build(const std::vector<RouteEntry> &table);

    /** Longest-prefix match with instrumented node/entry accesses. */
    std::optional<uint32_t> lookup(uint32_t addr) const;

    size_t nodeCount() const { return nodes_.size(); }
    size_t entryCount() const { return entries_.size(); }

  private:
    struct Node
    {
        uint32_t skip = 0;      ///< edge label, MSB-aligned in low bits
        uint8_t skipLen = 0;    ///< number of label bits (0..32)
        int32_t child[2] = {-1, -1};
        int32_t entry = -1;
    };

    void touchNode(size_t idx) const;
    void touchEntry(size_t idx) const;

    std::vector<Node> nodes_;
    std::vector<RouteEntry> entries_;
    memsim::MemoryRecorder *recorder_;
};

} // namespace fcc::netbench

#endif // FCC_NETBENCH_PATRICIA_TRIE_HPP
