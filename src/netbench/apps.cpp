/**
 * @file
 * The three trace-consumer kernels of the §6 validation: Route
 * (radix LPM), NAT (hash flow lookup with Patricia fallback) and
 * RTR (per-packet Patricia lookup with periodic rebuild).
 */

#include "netbench/apps.hpp"

#include <bit>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace fcc::netbench {

RouteApp::RouteApp(const std::vector<RouteEntry> &table,
                   memsim::MemoryRecorder *recorder)
    : tree_(recorder)
{
    tree_.build(table);
}

void
RouteApp::process(const trace::PacketRecord &pkt)
{
    tree_.lookup(pkt.dstIp);
}

NatApp::NatApp(const std::vector<RouteEntry> &table,
               memsim::MemoryRecorder *recorder, uint32_t natSlots)
    : tree_(recorder), recorder_(recorder)
{
    util::require(natSlots >= 16 && std::has_single_bit(natSlots),
                  "NatApp: slots must be a power of two >= 16");
    tree_.build(table);
    slots_.assign(natSlots, NatSlot{});
}

void
NatApp::process(const trace::PacketRecord &pkt)
{
    tree_.lookup(pkt.dstIp);

    // Translation lookup keyed by the 5-tuple.
    uint64_t key = util::hashCombine(
        util::mix64((static_cast<uint64_t>(pkt.srcIp) << 32) |
                    pkt.dstIp),
        (static_cast<uint64_t>(pkt.srcPort) << 24) |
            (static_cast<uint64_t>(pkt.dstPort) << 8) |
            pkt.protocol);
    uint32_t mask = static_cast<uint32_t>(slots_.size()) - 1;
    uint32_t idx = static_cast<uint32_t>(key) & mask;

    for (uint32_t probe = 0; probe < maxProbes; ++probe) {
        uint32_t slot = (idx + probe) & mask;
        if (recorder_)
            recorder_->record(mem_layout::natTableBase +
                                  static_cast<uint64_t>(slot) * 16,
                              16);
        NatSlot &entry = slots_[slot];
        if (entry.used && entry.key == key)
            return;  // existing binding
        if (!entry.used) {
            entry.used = true;
            entry.key = key;
            entry.translatedPort = nextPort_++;
            if (recorder_)  // write the new binding
                recorder_->record(mem_layout::natTableBase +
                                      static_cast<uint64_t>(slot) *
                                          16,
                                  16, true);
            ++bindings_;
            return;
        }
    }
    // Probe limit hit: recycle the home slot (bounded NAT table).
    NatSlot &entry = slots_[idx & mask];
    entry.key = key;
    entry.translatedPort = nextPort_++;
    if (recorder_)
        recorder_->record(mem_layout::natTableBase +
                              static_cast<uint64_t>(idx & mask) * 16,
                          16, true);
}

RtrApp::RtrApp(const std::vector<RouteEntry> &table,
               memsim::MemoryRecorder *recorder)
    : trie_(recorder)
{
    trie_.build(table);
}

void
RtrApp::process(const trace::PacketRecord &pkt)
{
    trie_.lookup(pkt.dstIp);
}

std::vector<memsim::PacketSample>
profileTrace(PacketKernel &kernel, const trace::Trace &trace,
             memsim::MemoryRecorder &recorder)
{
    recorder.resetSamples();
    for (const auto &pkt : trace) {
        recorder.beginPacket();
        kernel.process(pkt);
        recorder.endPacket();
    }
    return recorder.samples();
}

} // namespace fcc::netbench
