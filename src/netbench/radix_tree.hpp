/**
 * @file
 * The paper's Radix Tree Routing structure (§6): "a binary tree,
 * which starting at the root, stores the prefix address and mask so
 * far. As you move down the tree, more bits are matched."
 *
 * One bit is consumed per level (no path compression; see
 * PatriciaTrie for the compressed variant used by the RTR kernel).
 * Every node visit and every route-entry inspection is reported to an
 * optional MemoryRecorder with stable synthetic addresses, standing
 * in for ATOM's load/store instrumentation.
 */

#ifndef FCC_NETBENCH_RADIX_TREE_HPP
#define FCC_NETBENCH_RADIX_TREE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "memsim/memory_recorder.hpp"
#include "netbench/route_entry.hpp"

namespace fcc::netbench {

/** Synthetic address-space bases for instrumentation. */
namespace mem_layout {
constexpr uint64_t radixNodeBase = 0x10000000ull;
constexpr uint64_t routeEntryBase = 0x20000000ull;
constexpr uint64_t patriciaNodeBase = 0x30000000ull;
constexpr uint64_t natTableBase = 0x40000000ull;
constexpr uint32_t nodeBytes = 16;
constexpr uint32_t entryBytes = 16;
} // namespace mem_layout

/** Uncompressed binary (bit-per-level) longest-prefix-match trie. */
class RadixTree
{
  public:
    /** @param recorder optional instrumentation sink (not owned). */
    explicit RadixTree(memsim::MemoryRecorder *recorder = nullptr);

    /**
     * Insert a route (later duplicates replace earlier next hops).
     * @throws fcc::util::Error for prefixLen > 32.
     */
    void insert(const RouteEntry &entry);

    /** Bulk-build from a table. */
    void build(const std::vector<RouteEntry> &table);

    /**
     * Longest-prefix match. Records one node access per visited
     * level plus one access per inspected route entry.
     *
     * @return next hop of the most specific matching route.
     */
    std::optional<uint32_t> lookup(uint32_t addr) const;

    size_t nodeCount() const { return nodes_.size(); }
    size_t entryCount() const { return entries_.size(); }

  private:
    struct Node
    {
        int32_t child[2] = {-1, -1};
        int32_t entry = -1;
    };

    void
    touchNode(size_t idx) const
    {
        if (recorder_)
            recorder_->record(mem_layout::radixNodeBase +
                                  idx * mem_layout::nodeBytes,
                              mem_layout::nodeBytes);
    }

    void
    touchEntry(size_t idx) const
    {
        if (recorder_)
            recorder_->record(mem_layout::routeEntryBase +
                                  idx * mem_layout::entryBytes,
                              mem_layout::entryBytes);
    }

    std::vector<Node> nodes_;
    std::vector<RouteEntry> entries_;
    memsim::MemoryRecorder *recorder_;
};

} // namespace fcc::netbench

#endif // FCC_NETBENCH_RADIX_TREE_HPP
