/**
 * @file
 * Path-compressed binary (Patricia) trie for longest-prefix match;
 * skipped bits are re-verified against the stored prefix and every
 * node touch is reported to the MemoryRecorder.
 */

#include "netbench/patricia_trie.hpp"

#include "netbench/radix_tree.hpp"

#include <bit>

#include "util/error.hpp"

namespace fcc::netbench {

namespace {

/** Bit @p i (0 = most significant) of @p addr. */
inline uint32_t
bitAt(uint32_t addr, uint32_t i)
{
    return (addr >> (31 - i)) & 1u;
}

/** Bits [pos, pos+len) of @p v, MSB-first, right-aligned. */
inline uint32_t
bits(uint32_t v, uint32_t pos, uint32_t len)
{
    if (len == 0)
        return 0;
    if (len >= 32)
        return v;
    return (v << pos) >> (32 - len);
}

} // namespace

PatriciaTrie::PatriciaTrie(memsim::MemoryRecorder *recorder)
    : recorder_(recorder)
{
    nodes_.emplace_back();  // root (empty label)
}

void
PatriciaTrie::touchNode(size_t idx) const
{
    if (recorder_)
        recorder_->record(mem_layout::patriciaNodeBase +
                              idx * mem_layout::nodeBytes,
                          mem_layout::nodeBytes);
}

void
PatriciaTrie::touchEntry(size_t idx) const
{
    if (recorder_)
        recorder_->record(mem_layout::routeEntryBase +
                              idx * mem_layout::entryBytes,
                          mem_layout::entryBytes);
}

void
PatriciaTrie::insert(const RouteEntry &entry)
{
    util::require(entry.prefixLen <= 32,
                  "PatriciaTrie: prefix length > 32");
    size_t cur = 0;
    uint32_t depth = 0;

    for (;;) {
        uint32_t skipLen = nodes_[cur].skipLen;
        uint32_t skip = nodes_[cur].skip;
        uint32_t avail = entry.prefixLen - depth;
        uint32_t cmp = std::min(skipLen, avail);

        // Leading bits the prefix shares with this node's edge label.
        uint32_t want = bits(entry.prefix, depth, cmp);
        uint32_t have = cmp ? (skip >> (skipLen - cmp)) : 0;
        uint32_t diff = want ^ have;
        uint32_t common =
            diff == 0 ? cmp
                      : cmp - static_cast<uint32_t>(
                                  std::bit_width(diff));

        if (common < skipLen) {
            // Split the edge after `common` bits: a new node takes
            // the remainder (minus the branch bit) plus the original
            // children and entry.
            Node tail;
            uint32_t branchBit =
                (skip >> (skipLen - 1 - common)) & 1u;
            tail.skipLen = static_cast<uint8_t>(skipLen - common - 1);
            tail.skip = skip & ((tail.skipLen
                                     ? (1u << tail.skipLen)
                                     : 1u) - 1u);
            tail.child[0] = nodes_[cur].child[0];
            tail.child[1] = nodes_[cur].child[1];
            tail.entry = nodes_[cur].entry;

            int32_t tailIdx = static_cast<int32_t>(nodes_.size());
            nodes_.push_back(tail);  // may invalidate references

            Node &head = nodes_[cur];
            head.skipLen = static_cast<uint8_t>(common);
            head.skip = common ? (skip >> (skipLen - common)) : 0;
            head.child[0] = head.child[1] = -1;
            head.child[branchBit] = tailIdx;
            head.entry = -1;
        }
        depth += common;

        if (depth == entry.prefixLen) {
            Node &node = nodes_[cur];
            if (node.entry >= 0) {
                entries_[static_cast<size_t>(node.entry)] = entry;
            } else {
                node.entry = static_cast<int32_t>(entries_.size());
                entries_.push_back(entry);
            }
            return;
        }

        uint32_t b = bitAt(entry.prefix, depth);
        if (nodes_[cur].child[b] < 0) {
            Node leaf;
            leaf.skipLen =
                static_cast<uint8_t>(entry.prefixLen - depth - 1);
            leaf.skip = bits(entry.prefix, depth + 1, leaf.skipLen);
            leaf.entry = static_cast<int32_t>(entries_.size());
            entries_.push_back(entry);
            int32_t leafIdx = static_cast<int32_t>(nodes_.size());
            nodes_.push_back(leaf);
            nodes_[cur].child[b] = leafIdx;
            return;
        }
        cur = static_cast<size_t>(nodes_[cur].child[b]);
        ++depth;
    }
}

void
PatriciaTrie::build(const std::vector<RouteEntry> &table)
{
    for (const auto &entry : table)
        insert(entry);
}

std::optional<uint32_t>
PatriciaTrie::lookup(uint32_t addr) const
{
    std::optional<uint32_t> best;
    size_t cur = 0;
    uint32_t depth = 0;

    for (;;) {
        touchNode(cur);
        const Node &node = nodes_[cur];
        if (node.skipLen) {
            if (depth + node.skipLen > 32)
                break;
            if (bits(addr, depth, node.skipLen) != node.skip)
                break;
            depth += node.skipLen;
        }
        if (node.entry >= 0) {
            touchEntry(static_cast<size_t>(node.entry));
            best = entries_[static_cast<size_t>(node.entry)].nextHop;
        }
        if (depth >= 32)
            break;
        int32_t next = node.child[bitAt(addr, depth)];
        if (next < 0)
            break;
        cur = static_cast<size_t>(next);
        ++depth;
    }
    return best;
}

} // namespace fcc::netbench
