/**
 * @file
 * The three §6 benchmark kernels, re-implemented around their shared
 * Radix-Tree routing core: Route (Netbench), NAT (Netbench) and RTR
 * (Commbench). Each processes one packet at a time while reporting
 * its memory touches to a MemoryRecorder; profileTrace() brackets
 * every packet with the ATOM-style checkpoints.
 */

#ifndef FCC_NETBENCH_APPS_HPP
#define FCC_NETBENCH_APPS_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "memsim/memory_recorder.hpp"
#include "netbench/patricia_trie.hpp"
#include "netbench/radix_tree.hpp"
#include "trace/trace.hpp"

namespace fcc::netbench {

/** A packet-processing benchmark kernel. */
class PacketKernel
{
  public:
    virtual ~PacketKernel() = default;

    /** Kernel name ("route", "nat", "rtr"). */
    virtual std::string name() const = 0;

    /** Process one packet (memory touches go to the recorder). */
    virtual void process(const trace::PacketRecord &pkt) = 0;
};

/**
 * Netbench Route: one longest-prefix-match lookup on the destination
 * address per packet.
 */
class RouteApp : public PacketKernel
{
  public:
    RouteApp(const std::vector<RouteEntry> &table,
             memsim::MemoryRecorder *recorder);

    std::string name() const override { return "route"; }
    void process(const trace::PacketRecord &pkt) override;

    const RadixTree &tree() const { return tree_; }

  private:
    RadixTree tree_;
};

/**
 * Netbench NAT: route lookup plus a translation-table lookup/insert
 * keyed by the packet 5-tuple (an instrumented open-addressing hash
 * table), as address translators do per packet.
 */
class NatApp : public PacketKernel
{
  public:
    /** @param natSlots hash-table slots (power of two). */
    NatApp(const std::vector<RouteEntry> &table,
           memsim::MemoryRecorder *recorder,
           uint32_t natSlots = 1 << 16);

    std::string name() const override { return "nat"; }
    void process(const trace::PacketRecord &pkt) override;

    uint64_t bindings() const { return bindings_; }

  private:
    struct NatSlot
    {
        uint64_t key = 0;
        uint16_t translatedPort = 0;
        bool used = false;
    };

    static constexpr uint32_t maxProbes = 8;

    RadixTree tree_;
    std::vector<NatSlot> slots_;
    memsim::MemoryRecorder *recorder_;
    uint64_t bindings_ = 0;
    uint16_t nextPort_ = 20000;
};

/**
 * Commbench RTR: a Patricia (path-compressed) trie lookup per packet,
 * the BSD-style structure the original program uses.
 */
class RtrApp : public PacketKernel
{
  public:
    RtrApp(const std::vector<RouteEntry> &table,
           memsim::MemoryRecorder *recorder);

    std::string name() const override { return "rtr"; }
    void process(const trace::PacketRecord &pkt) override;

    const PatriciaTrie &trie() const { return trie_; }

  private:
    PatriciaTrie trie_;
};

/**
 * Run @p kernel over every packet of @p trace with per-packet
 * checkpoints on @p recorder; returns the per-packet samples
 * (recorder sample state is reset first, cache contents are not).
 */
std::vector<memsim::PacketSample>
profileTrace(PacketKernel &kernel, const trace::Trace &trace,
             memsim::MemoryRecorder &recorder);

} // namespace fcc::netbench

#endif // FCC_NETBENCH_APPS_HPP
