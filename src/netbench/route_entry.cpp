/**
 * @file
 * Synthetic routing-table generation with a BGP-like prefix-length
 * mix, optionally seeded from trace addresses so lookups hit
 * covering prefixes.
 */

#include "netbench/route_entry.hpp"

#include <unordered_set>

#include "util/distributions.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fcc::netbench {

std::vector<RouteEntry>
generateRoutingTable(size_t entries, uint64_t seed,
                     const std::vector<uint32_t> &sampleAddrs)
{
    util::require(entries >= 1,
                  "generateRoutingTable: need >= 1 entry");
    util::Rng rng(seed);

    // BGP-table-like prefix length mix (mass at /24).
    util::Discrete lengths(
        {8, 12, 14, 16, 17, 18, 19, 20, 21, 22, 23, 24, 26, 28, 30},
        {0.5, 1.5, 1.5, 9, 3, 4, 5, 6, 6, 9, 11, 48, 2, 1, 1});

    std::vector<RouteEntry> table;
    table.reserve(entries);
    std::unordered_set<uint64_t> seen;

    while (table.size() < entries) {
        RouteEntry entry;
        entry.prefixLen = static_cast<uint8_t>(lengths.sample(rng));

        uint32_t base;
        if (!sampleAddrs.empty() && rng.chance(0.6)) {
            // Derive from traffic so lookups descend deep.
            base = sampleAddrs[rng.uniformInt(
                0, sampleAddrs.size() - 1)];
        } else {
            base = static_cast<uint32_t>(rng.next());
        }
        uint32_t mask = entry.prefixLen >= 32
            ? 0xffffffffu
            : ~((1u << (32 - entry.prefixLen)) - 1);
        entry.prefix = base & mask;
        entry.nextHop = static_cast<uint32_t>(
            rng.uniformInt(1, 64));  // 64 egress ports

        uint64_t key = (static_cast<uint64_t>(entry.prefix) << 8) |
                       entry.prefixLen;
        if (seen.insert(key).second)
            table.push_back(entry);
    }
    return table;
}

} // namespace fcc::netbench
