/**
 * @file
 * Routing table entry shared by the lookup structures, plus the
 * synthetic routing-table generator that substitutes for the
 * forwarding tables of the Netbench/Commbench kernels.
 */

#ifndef FCC_NETBENCH_ROUTE_ENTRY_HPP
#define FCC_NETBENCH_ROUTE_ENTRY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fcc::netbench {

/** One IPv4 prefix route. */
struct RouteEntry
{
    uint32_t prefix = 0;    ///< network address (host order)
    uint8_t prefixLen = 0;  ///< 0..32 significant bits
    uint32_t nextHop = 0;   ///< opaque next-hop id

    /** True when @p addr falls inside this prefix. */
    bool
    matches(uint32_t addr) const
    {
        if (prefixLen == 0)
            return true;
        uint32_t mask = prefixLen >= 32
            ? 0xffffffffu
            : ~((1u << (32 - prefixLen)) - 1);
        return (addr & mask) == (prefix & mask);
    }
};

/**
 * Generate a deterministic synthetic forwarding table with a
 * realistic prefix-length mix (mass at /24, spread over /16../23,
 * a few short prefixes and a default-free core feel).
 *
 * @param entries number of routes to produce.
 * @param seed RNG seed.
 * @param sampleAddrs optional addresses (e.g. the trace's
 *        destinations); a share of the prefixes is derived from them
 *        so lookups actually descend the tree, as they would against
 *        a table serving that traffic.
 */
std::vector<RouteEntry>
generateRoutingTable(size_t entries, uint64_t seed,
                     const std::vector<uint32_t> &sampleAddrs = {});

} // namespace fcc::netbench

#endif // FCC_NETBENCH_ROUTE_ENTRY_HPP
