/**
 * @file
 * One-bit-per-level binary radix tree for longest-prefix match,
 * the paper's Radix Tree Routing kernel; node visits feed the
 * MemoryRecorder for the Fig. 2/3 profiles.
 */

#include "netbench/radix_tree.hpp"

#include "util/error.hpp"

namespace fcc::netbench {

namespace {

/** Bit @p i (0 = most significant) of @p addr. */
inline uint32_t
bitAt(uint32_t addr, uint32_t i)
{
    return (addr >> (31 - i)) & 1u;
}

} // namespace

RadixTree::RadixTree(memsim::MemoryRecorder *recorder)
    : recorder_(recorder)
{
    nodes_.emplace_back();  // root
}

void
RadixTree::insert(const RouteEntry &entry)
{
    util::require(entry.prefixLen <= 32,
                  "RadixTree: prefix length > 32");
    size_t cur = 0;
    for (uint32_t depth = 0; depth < entry.prefixLen; ++depth) {
        uint32_t b = bitAt(entry.prefix, depth);
        if (nodes_[cur].child[b] < 0) {
            nodes_[cur].child[b] =
                static_cast<int32_t>(nodes_.size());
            nodes_.emplace_back();
        }
        cur = static_cast<size_t>(nodes_[cur].child[b]);
    }
    if (nodes_[cur].entry >= 0) {
        entries_[static_cast<size_t>(nodes_[cur].entry)] = entry;
    } else {
        nodes_[cur].entry = static_cast<int32_t>(entries_.size());
        entries_.push_back(entry);
    }
}

void
RadixTree::build(const std::vector<RouteEntry> &table)
{
    for (const auto &entry : table)
        insert(entry);
}

std::optional<uint32_t>
RadixTree::lookup(uint32_t addr) const
{
    std::optional<uint32_t> best;
    size_t cur = 0;
    for (uint32_t depth = 0;; ++depth) {
        touchNode(cur);
        const Node &node = nodes_[cur];
        if (node.entry >= 0) {
            touchEntry(static_cast<size_t>(node.entry));
            best = entries_[static_cast<size_t>(node.entry)].nextHop;
        }
        if (depth >= 32)
            break;
        int32_t next = node.child[bitAt(addr, depth)];
        if (next < 0)
            break;
        cur = static_cast<size_t>(next);
    }
    return best;
}

} // namespace fcc::netbench
