/**
 * @file
 * Set-associative LRU cache simulator: geometry validation, tag/
 * set decomposition and per-access hit/miss accounting.
 */

#include "memsim/cache_model.hpp"

#include <bit>

#include "util/error.hpp"

namespace fcc::memsim {

CacheModel::CacheModel(const CacheConfig &cfg)
    : cfg_(cfg)
{
    util::require(cfg_.lineBytes >= 4 &&
                      std::has_single_bit(cfg_.lineBytes),
                  "CacheModel: line size must be a power of two");
    util::require(cfg_.ways >= 1, "CacheModel: need >= 1 way");
    util::require(cfg_.sizeBytes % (cfg_.lineBytes * cfg_.ways) == 0,
                  "CacheModel: size not divisible by line*ways");
    uint32_t sets = cfg_.sets();
    util::require(sets >= 1 && std::has_single_bit(sets),
                  "CacheModel: set count must be a power of two");
    setShift_ = static_cast<uint32_t>(std::countr_zero(cfg_.lineBytes));
    setMask_ = sets - 1;
    lines_.assign(static_cast<size_t>(sets) * cfg_.ways, Line{});
}

bool
CacheModel::access(uint64_t addr, bool write)
{
    (void)write;  // write-allocate, no write-back modeling needed
    uint64_t lineAddr = addr >> setShift_;
    uint32_t set = static_cast<uint32_t>(lineAddr) & setMask_;
    uint64_t tag = lineAddr >> std::countr_zero(setMask_ + 1);

    Line *base = lines_.data() +
                 static_cast<size_t>(set) * cfg_.ways;
    ++clock_;

    Line *victim = base;
    for (uint32_t w = 0; w < cfg_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = clock_;
            ++hits_;
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid &&
                   line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock_;
    ++misses_;
    return false;
}

void
CacheModel::flush()
{
    for (Line &line : lines_)
        line.valid = false;
}

} // namespace fcc::memsim
