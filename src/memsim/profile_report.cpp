/**
 * @file
 * Aggregation of per-packet MemoryRecorder samples into the
 * figure-ready series: access-count CDFs (Fig. 2) and miss-rate
 * bucket shares (Fig. 3).
 */

#include "memsim/profile_report.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fcc::memsim {

std::vector<CdfPoint>
accessCdf(const std::vector<PacketSample> &samples)
{
    std::vector<uint32_t> counts;
    counts.reserve(samples.size());
    for (const auto &sample : samples)
        counts.push_back(sample.accesses);
    std::sort(counts.begin(), counts.end());

    std::vector<CdfPoint> curve;
    size_t n = counts.size();
    for (size_t i = 0; i < n;) {
        size_t j = i;
        while (j < n && counts[j] == counts[i])
            ++j;
        curve.push_back(
            {static_cast<double>(counts[i]),
             static_cast<double>(j) / static_cast<double>(n)});
        i = j;
    }
    return curve;
}

double
trafficShareInAccessRange(const std::vector<PacketSample> &samples,
                          uint32_t lo, uint32_t hi)
{
    util::require(lo <= hi, "trafficShareInAccessRange: empty range");
    if (samples.empty())
        return 0.0;
    size_t inRange = 0;
    for (const auto &sample : samples)
        inRange += sample.accesses >= lo && sample.accesses <= hi;
    return static_cast<double>(inRange) /
           static_cast<double>(samples.size());
}

const char *
MissRateBuckets::label(size_t i)
{
    static const char *labels[count] = {"0%-5%", "5%-10%", "10%-20%",
                                        ">20%"};
    return i < count ? labels[i] : "?";
}

MissRateBuckets
missRateBuckets(const std::vector<PacketSample> &samples)
{
    MissRateBuckets buckets;
    if (samples.empty())
        return buckets;
    for (const auto &sample : samples) {
        double rate = sample.missRate();
        size_t idx;
        if (rate < 0.05)
            idx = 0;
        else if (rate < 0.10)
            idx = 1;
        else if (rate < 0.20)
            idx = 2;
        else
            idx = 3;
        buckets.share[idx] += 1.0;
    }
    for (double &share : buckets.share)
        share /= static_cast<double>(samples.size());
    return buckets;
}

double
meanAccesses(const std::vector<PacketSample> &samples)
{
    if (samples.empty())
        return 0.0;
    double total = 0;
    for (const auto &sample : samples)
        total += sample.accesses;
    return total / static_cast<double>(samples.size());
}

} // namespace fcc::memsim
