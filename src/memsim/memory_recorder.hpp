/**
 * @file
 * Memory-access instrumentation, substituting for the paper's ATOM
 * binary instrumentation (§6): data structures call record() on every
 * logical memory touch; checkpoints delimit per-packet processing,
 * and the recorder accumulates per-packet access counts and, when a
 * cache model is attached, per-packet miss counts.
 */

#ifndef FCC_MEMSIM_MEMORY_RECORDER_HPP
#define FCC_MEMSIM_MEMORY_RECORDER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "memsim/cache_model.hpp"

namespace fcc::memsim {

/** Access counts of one processed packet (ATOM checkpoint pair). */
struct PacketSample
{
    uint32_t accesses = 0;
    uint32_t misses = 0;

    /** Cache miss rate of this packet (0 when it made no accesses). */
    double
    missRate() const
    {
        return accesses
            ? static_cast<double>(misses) /
                  static_cast<double>(accesses)
            : 0.0;
    }
};

/**
 * Sink for instrumented memory accesses.
 *
 * Usage per packet: beginPacket(); <process packet>; endPacket().
 * Accesses recorded outside a packet window (e.g. while building the
 * routing table) count toward totals but no packet sample — exactly
 * like instrumenting only the packet-processing checkpoints.
 */
class MemoryRecorder
{
  public:
    MemoryRecorder() = default;

    /** Attach a cache model; accesses will be simulated through it. */
    explicit MemoryRecorder(const CacheConfig &cacheConfig)
        : cache_(CacheModel(cacheConfig))
    {}

    /** Record one access of @p size bytes at @p addr. */
    void
    record(uint64_t addr, uint32_t size, bool write = false)
    {
        ++totalAccesses_;
        uint32_t misses = 0;
        if (cache_) {
            // Accesses that straddle line boundaries touch each line.
            uint64_t first = addr / cache_->config().lineBytes;
            uint64_t last =
                (addr + (size ? size - 1 : 0)) /
                cache_->config().lineBytes;
            for (uint64_t line = first; line <= last; ++line)
                misses += cache_->access(
                              line * cache_->config().lineBytes, write)
                    ? 0 : 1;
        }
        totalMisses_ += misses;
        if (inPacket_) {
            ++current_.accesses;
            current_.misses += misses;
        }
    }

    /** Open a packet checkpoint window. */
    void
    beginPacket()
    {
        current_ = PacketSample{};
        inPacket_ = true;
    }

    /** Close the window and append the sample. */
    void
    endPacket()
    {
        if (inPacket_)
            samples_.push_back(current_);
        inPacket_ = false;
    }

    const std::vector<PacketSample> &samples() const { return samples_; }
    uint64_t totalAccesses() const { return totalAccesses_; }
    uint64_t totalMisses() const { return totalMisses_; }
    bool hasCache() const { return cache_.has_value(); }
    const CacheModel *cache() const
    {
        return cache_ ? &*cache_ : nullptr;
    }

    /** Drop all samples and counters (cache contents persist). */
    void
    resetSamples()
    {
        samples_.clear();
        totalAccesses_ = 0;
        totalMisses_ = 0;
        inPacket_ = false;
    }

  private:
    std::optional<CacheModel> cache_;
    std::vector<PacketSample> samples_;
    PacketSample current_;
    bool inPacket_ = false;
    uint64_t totalAccesses_ = 0;
    uint64_t totalMisses_ = 0;
};

} // namespace fcc::memsim

#endif // FCC_MEMSIM_MEMORY_RECORDER_HPP
