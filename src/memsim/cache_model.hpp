/**
 * @file
 * Set-associative LRU cache simulator used for the §6.2 cache-miss
 * study. Models a single-level data cache with true-LRU replacement;
 * only hit/miss behaviour is simulated (no latencies), which is what
 * the paper's Figure 3 reports.
 */

#ifndef FCC_MEMSIM_CACHE_MODEL_HPP
#define FCC_MEMSIM_CACHE_MODEL_HPP

#include <cstdint>
#include <vector>

namespace fcc::memsim {

/** Geometry of the simulated cache. */
struct CacheConfig
{
    uint32_t sizeBytes = 16 * 1024;  ///< total capacity
    uint32_t lineBytes = 32;         ///< cache line size
    uint32_t ways = 2;               ///< associativity

    uint32_t sets() const { return sizeBytes / (lineBytes * ways); }
};

/** Set-associative cache with true-LRU replacement. */
class CacheModel
{
  public:
    /**
     * @throws fcc::util::Error unless line size and set count are
     *         powers of two and the geometry is consistent.
     */
    explicit CacheModel(const CacheConfig &cfg = {});

    /**
     * Simulate one access to the line containing @p addr.
     * @return true on hit.
     */
    bool access(uint64_t addr, bool write = false);

    /** Invalidate every line. */
    void flush();

    const CacheConfig &config() const { return cfg_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    double
    missRate() const
    {
        uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(misses_) /
                           static_cast<double>(total)
                     : 0.0;
    }

  private:
    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    CacheConfig cfg_;
    uint32_t setShift_;  ///< log2(lineBytes)
    uint32_t setMask_;   ///< sets - 1
    std::vector<Line> lines_;  ///< sets * ways, row-major by set
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace fcc::memsim

#endif // FCC_MEMSIM_CACHE_MODEL_HPP
