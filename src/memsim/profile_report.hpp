/**
 * @file
 * Aggregation of per-packet samples into the curves the paper plots:
 * Figure 2's cumulative-traffic-vs-memory-accesses CDF and Figure 3's
 * traffic share per cache-miss-rate bucket.
 */

#ifndef FCC_MEMSIM_PROFILE_REPORT_HPP
#define FCC_MEMSIM_PROFILE_REPORT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "memsim/memory_recorder.hpp"

namespace fcc::memsim {

/** One point of a cumulative-traffic curve. */
struct CdfPoint
{
    double x = 0;        ///< memory accesses (or miss rate)
    double traffic = 0;  ///< cumulative fraction of packets [0, 1]
};

/**
 * Figure 2 curve: cumulative fraction of traffic whose per-packet
 * access count is <= x, evaluated at every observed access count.
 */
std::vector<CdfPoint>
accessCdf(const std::vector<PacketSample> &samples);

/** Fraction of traffic with accesses in [lo, hi]. */
double
trafficShareInAccessRange(const std::vector<PacketSample> &samples,
                          uint32_t lo, uint32_t hi);

/** The paper's Figure 3 buckets: 0-5 %, 5-10 %, 10-20 %, > 20 %. */
struct MissRateBuckets
{
    static constexpr size_t count = 4;
    double share[count] = {};  ///< traffic fraction per bucket

    static const char *label(size_t i);
};

/** Bucket per-packet miss rates as in Figure 3. */
MissRateBuckets
missRateBuckets(const std::vector<PacketSample> &samples);

/** Mean per-packet access count. */
double meanAccesses(const std::vector<PacketSample> &samples);

} // namespace fcc::memsim

#endif // FCC_MEMSIM_PROFILE_REPORT_HPP
