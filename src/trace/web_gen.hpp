/**
 * @file
 * Synthetic Web/TCP workload generator.
 *
 * Substitute for the paper's RedIRIS / NLANR captures (not publicly
 * available): synthesizes bidirectional HTTP-over-TCP connections with
 * the aggregate structure the paper reports for its traces —
 *
 *  - ~98 % of flows shorter than 51 packets ("mice"), the rest
 *    heavy-tailed "elephants" (bounded Pareto lengths);
 *  - short flows carrying ~75 % of packets and ~80 % of bytes;
 *  - full TCP packet semantics: SYN / SYN+ACK handshake, request and
 *    response segments, delayed ACKs, FIN or RST teardown, so that
 *    the f1/f2/f3 characterization of the paper sees realistic flag,
 *    dependence and size sequences;
 *  - per-connection lognormal RTTs; dependent packets are spaced by
 *    the RTT, back-to-back packets by a small transmission gap;
 *  - Zipf-popular server addresses (spatial locality) and ephemeral
 *    client ports, server port 80.
 *
 * Everything is deterministic given the seed.
 */

#ifndef FCC_TRACE_WEB_GEN_HPP
#define FCC_TRACE_WEB_GEN_HPP

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace fcc::trace {

/**
 * Traffic mix preset. Web (default) is the paper's workload:
 * client-server HTTP exchanges on port 80. P2p models the traffic
 * class the paper's future work asks about: symmetric exchanges on
 * ephemeral ports where either peer may carry the payload, and a
 * heavier long-lived-connection share.
 */
enum class TrafficMix { Web, P2p };

/** Tunable parameters of the synthetic Web workload. */
struct WebGenConfig
{
    uint64_t seed = 1;            ///< RNG seed; same seed, same trace
    double durationSec = 60.0;    ///< flow arrival window length
    double flowsPerSec = 120.0;   ///< Poisson flow arrival rate
    TrafficMix mix = TrafficMix::Web;

    size_t serverCount = 400;     ///< distinct server addresses
    double serverZipf = 1.05;     ///< server popularity exponent
    size_t clientCount = 3000;    ///< distinct client addresses

    double longFlowFraction = 0.02;  ///< paper: 2 % of flows > 50 pkts
    double longLenAlpha = 1.25;      ///< Pareto tail of long lengths
    size_t longLenMax = 4000;        ///< cap on long-flow packets

    double rttMedianMs = 80.0;    ///< lognormal RTT median
    double rttSigma = 0.5;        ///< lognormal RTT shape
    double burstGapMeanUs = 250;  ///< mean gap of non-dependent pkts

    uint16_t mss = 1460;          ///< maximum segment size
    double resetFraction = 0.06;  ///< flows aborted by RST
};

/** Per-flow ground-truth metadata the generator can report. */
struct GeneratedFlowInfo
{
    uint32_t clientIp = 0;
    uint32_t serverIp = 0;
    uint16_t clientPort = 0;
    uint32_t packets = 0;
    uint64_t bytes = 0;      ///< wire bytes (40 B header + payload)
    double rttSec = 0.0;
    bool isLong = false;     ///< more than 50 packets
};

/** A ready-made P2P-flavoured configuration (future-work study). */
WebGenConfig p2pConfig(uint64_t seed, double durationSec = 60.0,
                       double flowsPerSec = 120.0);

/**
 * Generator for synthetic Web header traces.
 *
 * Usage: construct with a config, call generate(). flowInfos() then
 * describes every synthesized connection (ground truth for tests and
 * the calibration bench).
 */
class WebTrafficGenerator
{
  public:
    explicit WebTrafficGenerator(const WebGenConfig &cfg);

    /** Synthesize the whole trace (time-sorted). */
    Trace generate();

    /** Ground truth for the most recent generate() call. */
    const std::vector<GeneratedFlowInfo> &flowInfos() const
    {
        return flows_;
    }

    const WebGenConfig &config() const { return cfg_; }

  private:
    /** Synthesize one connection starting at @p startNs. */
    void makeConnection(uint64_t startNs, Trace &out);

    /** Draw a short-flow total packet count (2..50). */
    uint32_t drawShortLength();
    /** Draw a long-flow total packet count (51..longLenMax). */
    uint32_t drawLongLength();

    WebGenConfig cfg_;
    util::Rng rng_;
    util::Zipf serverPop_;
    std::vector<uint32_t> serverIps_;
    std::vector<uint32_t> clientIps_;
    std::vector<GeneratedFlowInfo> flows_;
    uint16_t nextEphemeral_ = 1024;
};

} // namespace fcc::trace

#endif // FCC_TRACE_WEB_GEN_HPP
