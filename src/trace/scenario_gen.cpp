/**
 * @file
 * Adversarial scenario generator implementation. Each scenario keeps
 * per-connection TCP state (sequence numbers, IP-ID counters,
 * windows) so the synthesized packets are plausible captures, while
 * the arrival structure is deliberately hostile to the
 * flow-clustering codec: one-packet flows, scrambled direction
 * patterns, retransmission storms, chunk-spanning elephants.
 */

#include "trace/scenario_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace fcc::trace {

namespace {

using namespace tcp_flags;

/** Draw a random routable class B or class C network address. */
uint32_t
drawPublicIp(util::Rng &rng)
{
    if (rng.chance(0.5)) {
        // Class B: 128.0.0.0 .. 191.255.255.255
        return 0x80000000u |
               static_cast<uint32_t>(rng.uniformInt(0, 0x3fffffff));
    }
    // Class C: 192.0.0.0 .. 223.255.255.255
    return 0xc0000000u |
           static_cast<uint32_t>(rng.uniformInt(0, 0x1fffffff));
}

/** Mutable per-connection TCP state shared by all scenarios. */
struct ConnState
{
    uint32_t clientIp = 0, serverIp = 0;
    uint16_t clientPort = 0, serverPort = 80;
    uint32_t cSeq = 0, sSeq = 0;
    uint16_t cIpId = 0, sIpId = 0;
    uint16_t window = 0;
    uint64_t packets = 0;
};

ConnState
newConn(util::Rng &rng, uint32_t clientIp, uint32_t serverIp,
        uint16_t clientPort, uint16_t serverPort)
{
    ConnState c;
    c.clientIp = clientIp;
    c.serverIp = serverIp;
    c.clientPort = clientPort;
    c.serverPort = serverPort;
    c.cSeq = static_cast<uint32_t>(rng.next());
    c.sSeq = static_cast<uint32_t>(rng.next());
    c.cIpId = static_cast<uint16_t>(rng.next());
    c.sIpId = static_cast<uint16_t>(rng.next());
    c.window =
        static_cast<uint16_t>(rng.uniformInt(16, 255) << 8);
    return c;
}

uint16_t
takeEphemeral(uint16_t &next)
{
    uint16_t p = next;
    next = next >= 64999 ? 1024
                         : static_cast<uint16_t>(next + 1);
    return p;
}

/**
 * Build one packet and advance the connection state (sequence
 * numbers by payload and SYN/FIN, per-side IP-ID counters).
 */
PacketRecord
buildPacket(ConnState &c, bool fromClient, uint8_t flags,
            uint16_t payload, double atSec)
{
    PacketRecord pkt;
    pkt.timestampNs = static_cast<uint64_t>(atSec * 1e9);
    pkt.protocol = ip_proto::Tcp;
    pkt.tcpFlags = flags;
    pkt.payloadBytes = payload;
    pkt.window = c.window;
    if (fromClient) {
        pkt.srcIp = c.clientIp;
        pkt.dstIp = c.serverIp;
        pkt.srcPort = c.clientPort;
        pkt.dstPort = c.serverPort;
        pkt.seq = c.cSeq;
        pkt.ack = (flags & Ack) ? c.sSeq : 0;
        pkt.ipId = c.cIpId++;
        c.cSeq += payload;
        if (flags & (Syn | Fin))
            ++c.cSeq;
    } else {
        pkt.srcIp = c.serverIp;
        pkt.dstIp = c.clientIp;
        pkt.srcPort = c.serverPort;
        pkt.dstPort = c.clientPort;
        pkt.seq = c.sSeq;
        pkt.ack = (flags & Ack) ? c.cSeq : 0;
        pkt.ipId = c.sIpId++;
        c.sSeq += payload;
        if (flags & (Syn | Fin))
            ++c.sSeq;
    }
    ++c.packets;
    return pkt;
}

/**
 * Minimal request/response connection of exactly @p n packets
 * appended to @p out: handshake, one request, server data with
 * delayed ACKs, RST close. n == 1..3 degenerate into truncated
 * handshakes.
 */
void
emitExchange(ConnState &c, uint32_t n, double start, double rttSec,
             double gapSec, uint16_t mss, util::Rng &rng,
             std::vector<PacketRecord> &out)
{
    double t = start;
    auto put = [&](bool fromClient, uint8_t flags, uint16_t payload,
                   double dt) {
        t += dt;
        out.push_back(buildPacket(c, fromClient, flags, payload, t));
    };

    if (n == 0)
        return;
    put(true, Syn, 0, 0.0);
    if (n == 1)
        return;
    put(false, Syn | Ack, 0, rttSec);
    if (n == 2)
        return;
    if (n == 3) {
        put(true, Rst, 0, rttSec);
        return;
    }
    put(true, Ack, 0, rttSec);

    uint32_t mid = n - 4;  // the final packet is a client RST close
    if (mid > 0) {
        put(true, Ack | Psh,
            static_cast<uint16_t>(rng.uniformInt(200, 600)), gapSec);
        --mid;
        uint32_t sinceAck = 0;
        while (mid > 0) {
            if (sinceAck >= 2 && rng.chance(0.6)) {
                put(true, Ack, 0, rttSec);
                sinceAck = 0;
            } else {
                bool last = mid == 1;
                uint16_t bytes = last
                    ? static_cast<uint16_t>(rng.uniformInt(400, mss))
                    : mss;
                put(false,
                    last ? static_cast<uint8_t>(Ack | Psh)
                         : static_cast<uint8_t>(Ack),
                    bytes, sinceAck == 0 ? rttSec : gapSec);
                ++sinceAck;
            }
            --mid;
        }
    }
    put(true, Rst | Ack, 0, rttSec);
}

} // namespace

std::vector<ScenarioKind>
allScenarios()
{
    return {ScenarioKind::SynFlood,   ScenarioKind::PortScan,
            ScenarioKind::Elephants,  ScenarioKind::Incast,
            ScenarioKind::Reordering, ScenarioKind::LossStorm,
            ScenarioKind::MixedTail};
}

const char *
scenarioName(ScenarioKind kind)
{
    switch (kind) {
    case ScenarioKind::SynFlood: return "synflood";
    case ScenarioKind::PortScan: return "portscan";
    case ScenarioKind::Elephants: return "elephants";
    case ScenarioKind::Incast: return "incast";
    case ScenarioKind::Reordering: return "reordering";
    case ScenarioKind::LossStorm: return "lossstorm";
    case ScenarioKind::MixedTail: return "mixedtail";
    }
    return "unknown";
}

ScenarioKind
parseScenarioName(const std::string &name)
{
    for (ScenarioKind kind : allScenarios())
        if (name == scenarioName(kind))
            return kind;
    throw util::Error("unknown scenario: " + name);
}

ScenarioConfig
scenarioDefaults(ScenarioKind kind, uint64_t seed)
{
    ScenarioConfig cfg;
    cfg.kind = kind;
    cfg.seed = seed;
    switch (kind) {
    case ScenarioKind::SynFlood:
        cfg.serverCount = 2;     // few victims, many spoofed sources
        cfg.clientCount = 4096;
        break;
    case ScenarioKind::PortScan:
        cfg.serverCount = 1;     // one target, one scanner
        cfg.clientCount = 2;
        break;
    case ScenarioKind::Elephants:
        cfg.serverCount = 8;
        cfg.clientCount = 64;
        cfg.tailAlpha = 1.4;
        cfg.maxFlowLen = 4000;
        break;
    case ScenarioKind::Incast:
        cfg.serverCount = 1;     // the aggregator
        cfg.clientCount = 256;   // sender pool
        cfg.tailAlpha = 1.2;
        cfg.incastRounds = 8;
        break;
    case ScenarioKind::Reordering:
        cfg.serverCount = 16;
        cfg.clientCount = 512;
        cfg.reorderFraction = 0.35;
        break;
    case ScenarioKind::LossStorm:
        cfg.serverCount = 16;
        cfg.clientCount = 512;
        cfg.lossFraction = 0.2;
        break;
    case ScenarioKind::MixedTail:
        cfg.serverCount = 32;
        cfg.clientCount = 1024;
        cfg.tailAlpha = 1.1;
        cfg.maxFlowLen = 400;
        break;
    }
    return cfg;
}

ScenarioGenerator::ScenarioGenerator(const ScenarioConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed)
{
    util::require(cfg_.durationSec > 0,
                  "scenario: duration must be > 0");
    util::require(cfg_.serverCount > 0 && cfg_.clientCount > 0,
                  "scenario: need at least one server and client");
    util::require(cfg_.tailAlpha > 0,
                  "scenario: tail exponent must be > 0");
    util::require(cfg_.maxFlowLen > 0,
                  "scenario: max flow length must be > 0");
    util::require(cfg_.mss >= 536,
                  "scenario: mss must be >= 536");
    util::require(cfg_.reorderFraction >= 0 &&
                      cfg_.reorderFraction <= 1,
                  "scenario: reorder fraction out of [0,1]");
    util::require(cfg_.lossFraction >= 0 && cfg_.lossFraction <= 1,
                  "scenario: loss fraction out of [0,1]");
}

Trace
ScenarioGenerator::generate()
{
    // Re-seed so repeated generate() calls replay the same trace.
    rng_ = util::Rng(cfg_.seed);
    info_ = ScenarioInfo{};
    nextEphemeral_ = 1024;
    serverIps_.clear();
    clientIps_.clear();
    serverIps_.reserve(cfg_.serverCount);
    for (uint32_t i = 0; i < cfg_.serverCount; ++i)
        serverIps_.push_back(drawPublicIp(rng_));
    clientIps_.reserve(cfg_.clientCount);
    for (uint32_t i = 0; i < cfg_.clientCount; ++i)
        clientIps_.push_back(drawPublicIp(rng_));

    Trace out;
    switch (cfg_.kind) {
    case ScenarioKind::SynFlood: makeSynFlood(out); break;
    case ScenarioKind::PortScan: makePortScan(out); break;
    case ScenarioKind::Elephants: makeElephants(out); break;
    case ScenarioKind::Incast: makeIncast(out); break;
    case ScenarioKind::Reordering: makeReordering(out); break;
    case ScenarioKind::LossStorm: makeLossStorm(out); break;
    case ScenarioKind::MixedTail: makeMixedTail(out); break;
    }
    out.sortByTime();
    info_.packets = out.size();
    return out;
}

void
ScenarioGenerator::writeTo(TraceSink &sink)
{
    Trace trace = generate();
    writeAllPackets(sink, trace);
}

void
ScenarioGenerator::makeSynFlood(Trace &out)
{
    if (cfg_.flows == 0)
        return;
    // Every attack packet is its own flow: a freshly spoofed source
    // address and port, SYN to a victim, no reply. The flow table,
    // address dataset and time-seq stream all degenerate to one
    // entry per packet — the codec's worst case.
    util::Zipf victimPop(serverIps_.size(), 0.8);
    util::Exponential inter(cfg_.flows / cfg_.durationSec);
    double t = 0.0;
    for (uint32_t i = 0; i < cfg_.flows; ++i) {
        t += inter.sample(rng_);
        PacketRecord pkt;
        pkt.timestampNs = static_cast<uint64_t>(t * 1e9);
        pkt.protocol = ip_proto::Tcp;
        pkt.tcpFlags = Syn;
        pkt.srcIp = drawPublicIp(rng_);
        pkt.srcPort =
            static_cast<uint16_t>(rng_.uniformInt(1024, 65000));
        pkt.dstIp = serverIps_[victimPop.sample(rng_) - 1];
        pkt.dstPort = 80;
        pkt.payloadBytes = 0;
        pkt.seq = static_cast<uint32_t>(rng_.next());
        pkt.ack = 0;
        pkt.window =
            static_cast<uint16_t>(rng_.uniformInt(16, 255) << 8);
        pkt.ipId = static_cast<uint16_t>(rng_.next());
        out.add(pkt);
    }
    info_.flows = cfg_.flows;
    info_.maxFlowPackets = 1;
}

void
ScenarioGenerator::makePortScan(Trace &out)
{
    if (cfg_.flows == 0)
        return;
    // Half-open SYN sweep: sequential destination ports, paced over
    // the capture. Closed ports answer RST|ACK (2-packet flows),
    // open ports answer SYN|ACK and get reset (3-packet flows).
    double gap = cfg_.durationSec / cfg_.flows;
    uint16_t port = 1;
    for (uint32_t i = 0; i < cfg_.flows; ++i) {
        double t0 = i * gap + rng_.uniform() * gap * 0.25;
        ConnState c =
            newConn(rng_, clientIps_[i % clientIps_.size()],
                    serverIps_[i % serverIps_.size()],
                    takeEphemeral(nextEphemeral_), port);
        port = port == 65535 ? 1 : static_cast<uint16_t>(port + 1);
        double lat = 0.0002 + rng_.uniform() * 0.002;
        out.add(buildPacket(c, true, Syn, 0, t0));
        if (rng_.chance(0.03)) {
            out.add(buildPacket(c, false, Syn | Ack, 0, t0 + lat));
            out.add(buildPacket(c, true, Rst, 0, t0 + 2 * lat));
        } else {
            out.add(buildPacket(c, false, Rst | Ack, 0, t0 + lat));
        }
        ++info_.flows;
        info_.maxFlowPackets =
            std::max(info_.maxFlowPackets, c.packets);
    }
}

void
ScenarioGenerator::makeElephants(Trace &out)
{
    if (cfg_.flows == 0)
        return;
    // A small elephant population carries almost all packets; each
    // spans nearly the whole capture with evenly spaced segments, so
    // one time-seq record covers many chunks. The rest are mice.
    uint32_t elephants = std::max<uint32_t>(1, cfg_.flows / 16);
    uint32_t mice = cfg_.flows - elephants;

    for (uint32_t i = 0; i < elephants; ++i) {
        uint32_t n = std::max<uint32_t>(
            4, static_cast<uint32_t>(std::lround(
                   cfg_.maxFlowLen * (0.5 + 0.5 * rng_.uniform()))));
        ConnState c = newConn(
            rng_,
            clientIps_[rng_.uniformInt(0, clientIps_.size() - 1)],
            serverIps_[rng_.uniformInt(0, serverIps_.size() - 1)],
            takeEphemeral(nextEphemeral_), 80);
        double rtt = 0.01 + rng_.uniform() * 0.07;
        double start = rng_.uniform() * 0.02 * cfg_.durationSec;
        double end =
            cfg_.durationSec * (0.9 + 0.1 * rng_.uniform());

        double t = start;
        out.add(buildPacket(c, true, Syn, 0, t));
        out.add(buildPacket(c, false, Syn | Ack, 0, t + rtt / 2));
        out.add(buildPacket(c, true, Ack, 0, t + rtt));
        t += rtt;

        uint32_t body = n > 7 ? n - 7 : 1;
        double interval = (end - t) / std::max(1u, body);
        for (uint32_t s = 0; s < body; ++s) {
            t += interval;
            if (s % 3 == 2)
                out.add(buildPacket(c, true, Ack, 0, t));
            else
                out.add(
                    buildPacket(c, false, Ack, cfg_.mss, t));
        }
        out.add(buildPacket(c, false, Fin | Ack, 0, t + rtt / 2));
        out.add(buildPacket(c, true, Fin | Ack, 0, t + rtt));
        out.add(buildPacket(c, false, Ack, 0, t + 1.5 * rtt));
        ++info_.flows;
        info_.maxFlowPackets =
            std::max(info_.maxFlowPackets, c.packets);
    }

    std::vector<PacketRecord> tmp;
    for (uint32_t i = 0; i < mice; ++i) {
        tmp.clear();
        uint32_t n =
            static_cast<uint32_t>(rng_.uniformInt(3, 12));
        ConnState c = newConn(
            rng_,
            clientIps_[rng_.uniformInt(0, clientIps_.size() - 1)],
            serverIps_[rng_.uniformInt(0, serverIps_.size() - 1)],
            takeEphemeral(nextEphemeral_), 80);
        double start = rng_.uniform() * cfg_.durationSec;
        emitExchange(c, n, start, 0.02 + rng_.uniform() * 0.06,
                     0.0003, cfg_.mss, rng_, tmp);
        for (const auto &pkt : tmp)
            out.add(pkt);
        ++info_.flows;
        info_.maxFlowPackets =
            std::max(info_.maxFlowPackets, c.packets);
    }
}

void
ScenarioGenerator::makeIncast(Trace &out)
{
    if (cfg_.flows == 0)
        return;
    // Barrier-synchronized fan-in: one aggregator opens a persistent
    // connection to every sender, then requests data from all of
    // them at once each round; responses are heavy-tailed bursts
    // with microsecond spacing.
    uint32_t aggregator = serverIps_[0];
    double roundGap =
        cfg_.durationSec / std::max(1u, cfg_.incastRounds);
    util::BoundedPareto respSegs(cfg_.tailAlpha, 1.0, 64.0);

    std::vector<ConnState> conns;
    std::vector<double> rtts;
    conns.reserve(cfg_.flows);
    rtts.reserve(cfg_.flows);
    for (uint32_t i = 0; i < cfg_.flows; ++i) {
        // The aggregator is the TCP client; senders serve port 80.
        conns.push_back(newConn(
            rng_, aggregator, clientIps_[i % clientIps_.size()],
            takeEphemeral(nextEphemeral_), 80));
        rtts.push_back(0.0002 + rng_.uniform() * 0.0018);
        double t0 = rng_.uniform() * roundGap * 0.5;
        ConnState &c = conns.back();
        out.add(buildPacket(c, true, Syn, 0, t0));
        out.add(
            buildPacket(c, false, Syn | Ack, 0, t0 + rtts[i] / 2));
        out.add(buildPacket(c, true, Ack, 0, t0 + rtts[i]));
    }

    for (uint32_t k = 0; k < cfg_.incastRounds; ++k) {
        double tk = (k + 0.5) * roundGap;
        for (uint32_t i = 0; i < cfg_.flows; ++i) {
            ConnState &c = conns[i];
            double tReq = tk + rng_.uniform() * 50e-6;
            out.add(buildPacket(
                c, true, Ack | Psh,
                static_cast<uint16_t>(rng_.uniformInt(200, 400)),
                tReq));
            uint32_t segs = std::max<uint32_t>(
                1, static_cast<uint32_t>(
                       std::lround(respSegs.sample(rng_))));
            double ts = tReq + rtts[i];
            uint32_t sinceAck = 0;
            for (uint32_t s = 0; s < segs; ++s) {
                ts += 2e-6 + rng_.uniform() * 6e-6;
                bool last = s + 1 == segs;
                out.add(buildPacket(
                    c, false,
                    last ? static_cast<uint8_t>(Ack | Psh)
                         : static_cast<uint8_t>(Ack),
                    cfg_.mss, ts));
                if (++sinceAck >= 2 && !last) {
                    ts += 1e-6;
                    out.add(buildPacket(c, true, Ack, 0, ts));
                    sinceAck = 0;
                }
            }
            ts += rtts[i];
            out.add(buildPacket(c, true, Ack, 0, ts));
        }
    }

    double tEnd = cfg_.incastRounds * roundGap;
    for (uint32_t i = 0; i < cfg_.flows; ++i) {
        ConnState &c = conns[i];
        if (rng_.chance(0.5)) {
            double t = tEnd + rng_.uniform() * roundGap * 0.25;
            out.add(buildPacket(c, true, Fin | Ack, 0, t));
            out.add(
                buildPacket(c, false, Fin | Ack, 0, t + rtts[i]));
            out.add(
                buildPacket(c, true, Ack, 0, t + 2 * rtts[i]));
        }
        ++info_.flows;
        info_.maxFlowPackets =
            std::max(info_.maxFlowPackets, c.packets);
    }
}

void
ScenarioGenerator::makeReordering(Trace &out)
{
    if (cfg_.flows == 0)
        return;
    // Generate clean request/response flows, then displace packets
    // by swapping adjacent capture timestamps: the observed
    // direction sequence — the basis of the SF vectors — no longer
    // matches any real exchange pattern.
    std::vector<PacketRecord> tmp;
    for (uint32_t i = 0; i < cfg_.flows; ++i) {
        tmp.clear();
        uint32_t n =
            static_cast<uint32_t>(rng_.uniformInt(4, 32));
        ConnState c = newConn(
            rng_,
            clientIps_[rng_.uniformInt(0, clientIps_.size() - 1)],
            serverIps_[rng_.uniformInt(0, serverIps_.size() - 1)],
            takeEphemeral(nextEphemeral_), 80);
        double start = rng_.uniform() * cfg_.durationSec;
        emitExchange(c, n, start, 0.01 + rng_.uniform() * 0.05,
                     0.0003, cfg_.mss, rng_, tmp);
        for (size_t p = 1; p < tmp.size(); ++p) {
            if (rng_.chance(cfg_.reorderFraction)) {
                std::swap(tmp[p - 1].timestampNs,
                          tmp[p].timestampNs);
                ++info_.reorderedPackets;
            }
        }
        for (const auto &pkt : tmp)
            out.add(pkt);
        ++info_.flows;
        info_.maxFlowPackets =
            std::max(info_.maxFlowPackets, c.packets);
    }
}

void
ScenarioGenerator::makeLossStorm(Trace &out)
{
    if (cfg_.flows == 0)
        return;
    // Request/response flows under loss: a lost data segment shows
    // up as duplicate ACKs from the receiver followed by a delayed
    // retransmission (same sequence number, new IP-ID). Loss
    // probability triples during the middle-third storm window.
    double stormLo = cfg_.durationSec / 3;
    double stormHi = 2 * cfg_.durationSec / 3;
    for (uint32_t i = 0; i < cfg_.flows; ++i) {
        ConnState c = newConn(
            rng_,
            clientIps_[rng_.uniformInt(0, clientIps_.size() - 1)],
            serverIps_[rng_.uniformInt(0, serverIps_.size() - 1)],
            takeEphemeral(nextEphemeral_), 80);
        double rtt = 0.01 + rng_.uniform() * 0.05;
        double t = rng_.uniform() * cfg_.durationSec;

        out.add(buildPacket(c, true, Syn, 0, t));
        out.add(buildPacket(c, false, Syn | Ack, 0, t += rtt));
        out.add(buildPacket(c, true, Ack, 0, t += rtt));
        out.add(buildPacket(
            c, true, Ack | Psh,
            static_cast<uint16_t>(rng_.uniformInt(200, 600)),
            t += 0.0003));

        uint32_t segs =
            static_cast<uint32_t>(rng_.uniformInt(4, 40));
        uint32_t sinceAck = 0;
        for (uint32_t s = 0; s < segs; ++s) {
            t += s == 0 ? rtt : 0.0004;
            bool last = s + 1 == segs;
            PacketRecord data = buildPacket(
                c, false,
                last ? static_cast<uint8_t>(Ack | Psh)
                     : static_cast<uint8_t>(Ack),
                cfg_.mss, t);
            out.add(data);
            double p = cfg_.lossFraction;
            if (t >= stormLo && t <= stormHi)
                p = std::min(0.9, p * 3);
            if (rng_.chance(p)) {
                uint32_t dups = static_cast<uint32_t>(
                    rng_.uniformInt(1, 3));
                for (uint32_t d = 0; d < dups; ++d) {
                    t += 0.0002;
                    out.add(buildPacket(c, true, Ack, 0, t));
                }
                t += 2 * rtt;  // retransmission timeout
                PacketRecord rtx = data;
                rtx.timestampNs =
                    static_cast<uint64_t>(t * 1e9);
                rtx.ipId = c.sIpId++;
                out.add(rtx);
                ++c.packets;
                ++info_.retransmissions;
                sinceAck = 0;
            } else if (++sinceAck >= 2) {
                t += 0.0002;
                out.add(buildPacket(c, true, Ack, 0, t));
                sinceAck = 0;
            }
        }
        out.add(buildPacket(c, false, Fin | Ack, 0, t += rtt));
        out.add(buildPacket(c, true, Fin | Ack, 0, t += rtt));
        out.add(buildPacket(c, false, Ack, 0, t += rtt));
        ++info_.flows;
        info_.maxFlowPackets =
            std::max(info_.maxFlowPackets, c.packets);
    }
}

void
ScenarioGenerator::makeMixedTail(Trace &out)
{
    if (cfg_.flows == 0)
        return;
    // Flow lengths from a bounded Pareto down to single packets,
    // with randomized per-packet directions and size classes: nearly
    // every flow gets a distinct SF vector, so the template store
    // sees worst-case diversity at every length bucket.
    util::BoundedPareto lens(
        cfg_.tailAlpha, 1.0,
        static_cast<double>(std::max<uint32_t>(2, cfg_.maxFlowLen)));
    util::Exponential gap(1.0 / 0.002);  // 2 ms mean spacing
    for (uint32_t i = 0; i < cfg_.flows; ++i) {
        uint32_t n = std::clamp<uint32_t>(
            static_cast<uint32_t>(std::lround(lens.sample(rng_))),
            1, cfg_.maxFlowLen);
        ConnState c = newConn(
            rng_,
            clientIps_[rng_.uniformInt(0, clientIps_.size() - 1)],
            serverIps_[rng_.uniformInt(0, serverIps_.size() - 1)],
            takeEphemeral(nextEphemeral_), 80);
        double t = rng_.uniform() * cfg_.durationSec;
        for (uint32_t p = 0; p < n; ++p) {
            bool first = p == 0;
            bool last = p + 1 == n;
            bool fromClient = first || rng_.chance(0.5);
            uint8_t flags;
            uint16_t payload = 0;
            if (first && rng_.chance(0.7)) {
                flags = Syn;  // the rest start mid-capture
            } else if (last && rng_.chance(0.3)) {
                flags = rng_.chance(0.5)
                    ? static_cast<uint8_t>(Fin | Ack)
                    : static_cast<uint8_t>(Rst | Ack);
            } else {
                double u = rng_.uniform();
                if (u < 0.4) {
                    flags = Ack;
                } else if (u < 0.7) {
                    flags = Ack | Psh;
                    payload = static_cast<uint16_t>(
                        rng_.uniformInt(1, 500));
                } else {
                    flags = Ack;
                    payload = static_cast<uint16_t>(
                        rng_.uniformInt(501, cfg_.mss));
                }
            }
            out.add(buildPacket(c, fromClient, flags, payload, t));
            t += gap.sample(rng_);
        }
        ++info_.flows;
        info_.maxFlowPackets =
            std::max(info_.maxFlowPackets, c.packets);
    }
}

} // namespace fcc::trace
