/**
 * @file
 * Minimal pcap (libpcap savefile) reader/writer, implemented from
 * scratch so the library has no external capture dependency.
 *
 * Written files use LINKTYPE_RAW (101): each packet body is the raw
 * 40-byte IPv4+TCP header (no payload — these are header traces). The
 * reader accepts both byte orders and both microsecond and nanosecond
 * magic numbers, and both RAW and Ethernet link types.
 *
 * The incremental PcapSource/PcapSink stream records through the
 * trace I/O subsystem (source.hpp) in bounded batches; the
 * whole-buffer readPcap()/writePcap() are thin wrappers over them.
 */

#ifndef FCC_TRACE_PCAP_HPP
#define FCC_TRACE_PCAP_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/source.hpp"
#include "trace/trace.hpp"

namespace fcc::trace {

/**
 * Serialize a trace as a LINKTYPE_RAW pcap file — microsecond magic
 * by default, nanosecond magic (full PacketRecord precision) when
 * @p nanos is set.
 */
std::vector<uint8_t> writePcap(const Trace &trace, bool nanos = false);

/**
 * Parse a pcap byte buffer.
 *
 * Non-IPv4 packets and packets whose captured length is too short to
 * hold the TCP header prefix raise an error; this is a header-trace
 * library, silent skipping would bias every statistic downstream.
 *
 * @throws fcc::util::Error on malformed input.
 */
Trace readPcap(std::span<const uint8_t> data);

/** Write a trace to a pcap file. @throws fcc::util::Error on I/O. */
void writePcapFile(const Trace &trace, const std::string &path);

/** Read a pcap file. @throws fcc::util::Error on I/O or bad data. */
Trace readPcapFile(const std::string &path);

/**
 * Parse a raw IPv4 packet body (IP header + TCP/UDP prefix) into
 * @p pkt — the shared inner parser of the pcap and pcapng readers.
 * Leaves pkt.timestampNs untouched.
 *
 * @throws fcc::util::Error on truncated or non-IPv4 bodies.
 */
void parseIpv4Packet(const uint8_t *body, size_t len,
                     PacketRecord &pkt);

/**
 * Append the 40-byte raw IPv4+TCP header for @p pkt to @p out —
 * the shared body encoder of the pcap and pcapng writers.
 */
void appendIpv4TcpHeader(const PacketRecord &pkt,
                         std::vector<uint8_t> &out);

/**
 * Incremental pcap reader: one record parsed per slot, memory
 * bounded by the batch size (the backing ByteSource is typically an
 * mmap with a read-buffer fallback — see util::openByteSource).
 */
class PcapSource final : public TraceSource
{
  public:
    /** Reads and validates the global header. @throws Error */
    explicit PcapSource(std::unique_ptr<util::ByteSource> bytes);

    size_t read(std::span<PacketRecord> batch) override;
    uint64_t bytesConsumed() const override { return consumed_; }

  private:
    std::unique_ptr<util::ByteSource> bytes_;
    std::vector<uint8_t> body_;
    uint64_t consumed_ = 0;
    bool swapped_ = false;
    bool nanos_ = false;
    size_t l2skip_ = 0;
};

/** Streaming pcap writer (LINKTYPE_RAW, 40-byte header bodies). */
class PcapSink final : public TraceSink
{
  public:
    explicit PcapSink(std::unique_ptr<util::ByteSink> out,
                      bool nanos = false);

    void write(std::span<const PacketRecord> batch) override;
    void close() override { out_->close(); }
    uint64_t bytesWritten() const override
    {
        return out_->bytesWritten();
    }

  private:
    std::unique_ptr<util::ByteSink> out_;
    std::vector<uint8_t> buf_;
    bool nanos_;
};

} // namespace fcc::trace

#endif // FCC_TRACE_PCAP_HPP
