/**
 * @file
 * Minimal pcap (libpcap savefile) reader/writer, implemented from
 * scratch so the library has no external capture dependency.
 *
 * Written files use LINKTYPE_RAW (101): each packet body is the raw
 * 40-byte IPv4+TCP header (no payload — these are header traces). The
 * reader accepts both byte orders and both microsecond and nanosecond
 * magic numbers, and both RAW and Ethernet link types.
 */

#ifndef FCC_TRACE_PCAP_HPP
#define FCC_TRACE_PCAP_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace fcc::trace {

/** Serialize a trace as a microsecond, LINKTYPE_RAW pcap file. */
std::vector<uint8_t> writePcap(const Trace &trace);

/**
 * Parse a pcap byte buffer.
 *
 * Non-IPv4 packets and packets whose captured length is too short to
 * hold the TCP header prefix raise an error; this is a header-trace
 * library, silent skipping would bias every statistic downstream.
 *
 * @throws fcc::util::Error on malformed input.
 */
Trace readPcap(std::span<const uint8_t> data);

/** Write a trace to a pcap file. @throws fcc::util::Error on I/O. */
void writePcapFile(const Trace &trace, const std::string &path);

/** Read a pcap file. @throws fcc::util::Error on I/O or bad data. */
Trace readPcapFile(const std::string &path);

} // namespace fcc::trace

#endif // FCC_TRACE_PCAP_HPP
