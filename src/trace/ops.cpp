/**
 * @file
 * Whole-trace operations: time-ordered merge of two traces, packet
 * filtering by predicate, and the aggregate byte/duration queries
 * used by the experiment drivers.
 */

#include "trace/ops.hpp"

#include "util/error.hpp"

namespace fcc::trace {

Trace
merge(const Trace &a, const Trace &b)
{
    util::require(a.isTimeOrdered() && b.isTimeOrdered(),
                  "merge: inputs must be time-ordered");
    Trace out;
    size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        bool takeA = j >= b.size() ||
                     (i < a.size() &&
                      a[i].timestampNs <= b[j].timestampNs);
        out.add(takeA ? a[i++] : b[j++]);
    }
    return out;
}

Trace
filter(const Trace &input, const PacketPredicate &keep)
{
    util::require(static_cast<bool>(keep),
                  "filter: empty predicate");
    Trace out;
    for (const auto &pkt : input)
        if (keep(pkt))
            out.add(pkt);
    return out;
}

Trace
rebaseTime(const Trace &input, uint64_t newStartNs)
{
    Trace out;
    if (input.empty())
        return out;
    uint64_t oldStart = input[0].timestampNs;
    for (auto pkt : input) {
        util::require(pkt.timestampNs >= oldStart,
                      "rebaseTime: input must be time-ordered");
        pkt.timestampNs = newStartNs + (pkt.timestampNs - oldStart);
        out.add(pkt);
    }
    return out;
}

PacketPredicate
portIs(uint16_t port)
{
    return [port](const PacketRecord &pkt) {
        return pkt.srcPort == port || pkt.dstPort == port;
    };
}

PacketPredicate
dstInPrefix(uint32_t prefix, uint8_t prefixLen)
{
    util::require(prefixLen <= 32, "dstInPrefix: length > 32");
    uint32_t mask = prefixLen == 0
        ? 0u
        : ~((prefixLen >= 32 ? 0u : (1u << (32 - prefixLen))) - 1u);
    if (prefixLen >= 32)
        mask = 0xffffffffu;
    uint32_t network = prefix & mask;
    return [network, mask](const PacketRecord &pkt) {
        return (pkt.dstIp & mask) == network;
    };
}

PacketPredicate
timeWindow(const Trace &reference, double startSec, double endSec)
{
    util::require(startSec <= endSec,
                  "timeWindow: start after end");
    uint64_t base = reference.empty()
        ? 0
        : reference[0].timestampNs;
    uint64_t lo = base + static_cast<uint64_t>(startSec * 1e9);
    uint64_t hi = base + static_cast<uint64_t>(endSec * 1e9);
    return [lo, hi](const PacketRecord &pkt) {
        return pkt.timestampNs >= lo && pkt.timestampNs < hi;
    };
}

PacketPredicate
allOf(PacketPredicate a, PacketPredicate b)
{
    return [a = std::move(a), b = std::move(b)](
               const PacketRecord &pkt) { return a(pkt) && b(pkt); };
}

PacketPredicate
anyOf(PacketPredicate a, PacketPredicate b)
{
    return [a = std::move(a), b = std::move(b)](
               const PacketRecord &pkt) { return a(pkt) || b(pkt); };
}

PacketPredicate
notOf(PacketPredicate a)
{
    return [a = std::move(a)](const PacketRecord &pkt) {
        return !a(pkt);
    };
}

} // namespace fcc::trace
