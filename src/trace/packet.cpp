/**
 * @file
 * PacketRecord helpers: dotted-quad IPv4 formatting/parsing and
 * human-readable one-line packet rendering.
 */

#include "trace/packet.hpp"

#include <cstdio>
#include <tuple>
#include <vector>

#include "util/error.hpp"

namespace fcc::trace {

bool
packetCanonicalLess(const PacketRecord &a, const PacketRecord &b)
{
    auto key = [](const PacketRecord &p) {
        return std::tuple(p.timestampNs, p.srcIp, p.dstIp, p.srcPort,
                          p.dstPort, p.protocol, p.tcpFlags,
                          p.payloadBytes, p.seq, p.ack, p.window,
                          p.ipId);
    };
    return key(a) < key(b);
}

std::string
formatIp(uint32_t addr)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u",
                  (addr >> 24) & 0xff, (addr >> 16) & 0xff,
                  (addr >> 8) & 0xff, addr & 0xff);
    return buf;
}

uint32_t
parseIp(const std::string &text)
{
    unsigned a, b, c, d;
    char tail;
    int n = std::sscanf(text.c_str(), "%u.%u.%u.%u%c",
                        &a, &b, &c, &d, &tail);
    util::require(n == 4 && a < 256 && b < 256 && c < 256 && d < 256,
                  "parseIp: malformed IPv4 address");
    return (a << 24) | (b << 16) | (c << 8) | d;
}

std::string
formatTcpFlags(uint8_t flags)
{
    static const struct { uint8_t bit; const char *name; } names[] = {
        { tcp_flags::Syn, "SYN" }, { tcp_flags::Ack, "ACK" },
        { tcp_flags::Fin, "FIN" }, { tcp_flags::Rst, "RST" },
        { tcp_flags::Psh, "PSH" }, { tcp_flags::Urg, "URG" },
    };
    std::string out;
    for (const auto &entry : names) {
        if (flags & entry.bit) {
            if (!out.empty())
                out += '|';
            out += entry.name;
        }
    }
    return out.empty() ? "-" : out;
}

std::string
PacketRecord::str() const
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "%.6fs %s:%u > %s:%u %s payload=%u",
                  timestampSec(),
                  formatIp(srcIp).c_str(), srcPort,
                  formatIp(dstIp).c_str(), dstPort,
                  formatTcpFlags(tcpFlags).c_str(), payloadBytes);
    return buf;
}

} // namespace fcc::trace
