/**
 * @file
 * pcapng (IETF pcap Next Generation) reader and writer.
 *
 * The reader walks the block structure incrementally: Section Header
 * Blocks (both byte-order magics, multiple sections per file),
 * Interface Description Blocks (several per section, per-interface
 * if_tsresol handling for power-of-10 and power-of-2 clocks), and
 * Enhanced Packet Blocks over RAW or Ethernet link types. Statistics,
 * name-resolution and unknown/custom blocks are skipped by length.
 * Simple Packet Blocks carry no timestamp and are rejected — this is
 * a timing-sensitive library.
 *
 * The writer emits one section with a single LINKTYPE_RAW interface
 * at nanosecond resolution (full PacketRecord precision) and one
 * Enhanced Packet Block per packet.
 */

#ifndef FCC_TRACE_PCAPNG_HPP
#define FCC_TRACE_PCAPNG_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/source.hpp"
#include "trace/trace.hpp"

namespace fcc::trace {

/** Serialize a trace as a one-section, one-interface pcapng file. */
std::vector<uint8_t> writePcapng(const Trace &trace);

/** Parse a pcapng buffer. @throws fcc::util::Error on bad input. */
Trace readPcapng(std::span<const uint8_t> data);

/** Write a trace to a pcapng file. @throws fcc::util::Error */
void writePcapngFile(const Trace &trace, const std::string &path);

/** Read a pcapng file. @throws fcc::util::Error */
Trace readPcapngFile(const std::string &path);

/** Incremental pcapng reader over a ByteSource. */
class PcapngSource final : public TraceSource
{
  public:
    /** Reads and validates the first Section Header Block. */
    explicit PcapngSource(std::unique_ptr<util::ByteSource> bytes);

    size_t read(std::span<PacketRecord> batch) override;
    uint64_t bytesConsumed() const override { return consumed_; }

  private:
    /** Per-interface description needed to decode packets. */
    struct Interface
    {
        uint16_t linkType = 0;
        uint8_t tsresol = 6;  ///< raw if_tsresol byte (default 1 µs)
    };

    bool readBlock(std::vector<uint8_t> &body, uint32_t &type);
    void beginSection(std::span<const uint8_t> body);
    void addInterface(std::span<const uint8_t> body);
    void parsePacket(std::span<const uint8_t> body,
                     PacketRecord &pkt);
    uint32_t fix(uint32_t v) const;
    uint16_t fix16(uint16_t v) const;

    std::unique_ptr<util::ByteSource> bytes_;
    std::vector<uint8_t> body_;
    std::vector<Interface> interfaces_;
    uint64_t consumed_ = 0;
    bool swapped_ = false;
    bool started_ = false;
};

/** Streaming pcapng writer (single RAW interface, ns resolution). */
class PcapngSink final : public TraceSink
{
  public:
    explicit PcapngSink(std::unique_ptr<util::ByteSink> out);

    void write(std::span<const PacketRecord> batch) override;
    void close() override { out_->close(); }
    uint64_t bytesWritten() const override
    {
        return out_->bytesWritten();
    }

  private:
    std::unique_ptr<util::ByteSink> out_;
    std::vector<uint8_t> buf_;
};

} // namespace fcc::trace

#endif // FCC_TRACE_PCAPNG_HPP
