/**
 * @file
 * Synthetic Web/TCP workload generator implementation: per-
 * connection SYN handshake, request, response-segment and FIN
 * packets with bounded-Pareto flow lengths and heavy-tailed object
 * sizes, interleaved by per-connection clocks into one trace.
 */

#include "trace/web_gen.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/error.hpp"

namespace fcc::trace {

namespace {

/** Draw a random routable class B or class C network address. */
uint32_t
drawPublicIp(util::Rng &rng)
{
    if (rng.chance(0.5)) {
        // Class B: 128.0.0.0 .. 191.255.255.255
        return 0x80000000u |
               static_cast<uint32_t>(rng.uniformInt(0, 0x3fffffff));
    }
    // Class C: 192.0.0.0 .. 223.255.255.255
    return 0xc0000000u |
           static_cast<uint32_t>(rng.uniformInt(0, 0x1fffffff));
}

} // namespace

WebTrafficGenerator::WebTrafficGenerator(const WebGenConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed),
      serverPop_(std::max<size_t>(cfg.serverCount, 1), cfg.serverZipf)
{
    util::require(cfg_.durationSec > 0, "WebGen: duration must be > 0");
    util::require(cfg_.flowsPerSec > 0, "WebGen: rate must be > 0");
    util::require(cfg_.serverCount > 0 && cfg_.clientCount > 0,
                  "WebGen: need at least one server and client");
    util::require(cfg_.longLenMax > 50,
                  "WebGen: long length cap must exceed 50");
    util::require(cfg_.longFlowFraction >= 0 &&
                      cfg_.longFlowFraction <= 1,
                  "WebGen: long flow fraction out of [0,1]");

    serverIps_.reserve(cfg_.serverCount);
    for (size_t i = 0; i < cfg_.serverCount; ++i)
        serverIps_.push_back(drawPublicIp(rng_));
    clientIps_.reserve(cfg_.clientCount);
    for (size_t i = 0; i < cfg_.clientCount; ++i)
        clientIps_.push_back(drawPublicIp(rng_));
}

uint32_t
WebTrafficGenerator::drawShortLength()
{
    // Empirical-style web mix: a few aborted handshakes, a lognormal
    // body peaking around 10 packets, and a thin tail out to 50.
    static thread_local std::vector<double> weights;
    if (weights.empty()) {
        weights.resize(51, 0.0);
        weights[2] = 0.012;
        weights[3] = 0.018;
        for (int n = 4; n <= 50; ++n) {
            double x = std::log(static_cast<double>(n));
            double mu = std::log(10.0), sigma = 0.42;
            weights[n] = std::exp(-0.5 * (x - mu) * (x - mu) /
                                  (sigma * sigma)) /
                         static_cast<double>(n);
        }
    }
    double total = 0.0;
    for (double w : weights)
        total += w;
    double u = rng_.uniform() * total;
    double acc = 0.0;
    for (int n = 2; n <= 50; ++n) {
        acc += weights[n];
        if (u < acc)
            return static_cast<uint32_t>(n);
    }
    return 50;
}

uint32_t
WebTrafficGenerator::drawLongLength()
{
    util::BoundedPareto lens(cfg_.longLenAlpha, 51.0,
                             static_cast<double>(cfg_.longLenMax));
    return static_cast<uint32_t>(std::lround(lens.sample(rng_)));
}

void
WebTrafficGenerator::makeConnection(uint64_t startNs, Trace &out)
{
    bool isLong = rng_.chance(cfg_.longFlowFraction);
    uint32_t n = isLong ? drawLongLength() : drawShortLength();

    GeneratedFlowInfo info;
    info.serverIp = serverIps_[serverPop_.sample(rng_) - 1];
    uint16_t server_port = cfg_.mix == TrafficMix::Web
        ? 80
        : static_cast<uint16_t>(rng_.uniformInt(6881, 6999));
    info.clientIp =
        clientIps_[rng_.uniformInt(0, clientIps_.size() - 1)];
    info.clientPort = nextEphemeral_;
    nextEphemeral_ = nextEphemeral_ >= 64999
        ? 1024 : static_cast<uint16_t>(nextEphemeral_ + 1);
    info.packets = n;
    info.isLong = n > 50;

    util::LogNormal rttDist =
        util::LogNormal::fromMedian(cfg_.rttMedianMs * 1e-3,
                                    cfg_.rttSigma);
    info.rttSec = rttDist.sample(rng_);
    util::Exponential gap(1e6 / cfg_.burstGapMeanUs);  // seconds

    // Per-side TCP state.
    uint32_t cSeq = static_cast<uint32_t>(rng_.next());
    uint32_t sSeq = static_cast<uint32_t>(rng_.next());
    uint16_t cIpId = static_cast<uint16_t>(rng_.next());
    uint16_t sIpId = static_cast<uint16_t>(rng_.next());
    uint16_t window = static_cast<uint16_t>(
        rng_.uniformInt(16, 255) << 8);

    double t = static_cast<double>(startNs) * 1e-9;
    bool havePrev = false;
    bool prevFromClient = true;

    auto emit = [&](bool fromClient, uint8_t flags, uint16_t payload) {
        // Observable dependence rule: a packet following an
        // opposite-direction packet was triggered by it and is spaced
        // by the connection RTT; same-direction packets are
        // back-to-back.
        bool dependent = havePrev && fromClient != prevFromClient;
        if (dependent)
            t += info.rttSec * (0.9 + 0.2 * rng_.uniform());
        else if (havePrev)
            t += gap.sample(rng_);
        havePrev = true;
        prevFromClient = fromClient;

        PacketRecord pkt;
        pkt.timestampNs = static_cast<uint64_t>(t * 1e9);
        pkt.protocol = ip_proto::Tcp;
        pkt.tcpFlags = flags;
        pkt.payloadBytes = payload;
        pkt.window = window;
        if (fromClient) {
            pkt.srcIp = info.clientIp;
            pkt.dstIp = info.serverIp;
            pkt.srcPort = info.clientPort;
            pkt.dstPort = server_port;
            pkt.seq = cSeq;
            pkt.ack = (flags & tcp_flags::Ack) ? sSeq : 0;
            pkt.ipId = cIpId++;
            cSeq += payload;
            if (flags & (tcp_flags::Syn | tcp_flags::Fin))
                ++cSeq;
        } else {
            pkt.srcIp = info.serverIp;
            pkt.dstIp = info.clientIp;
            pkt.srcPort = server_port;
            pkt.dstPort = info.clientPort;
            pkt.seq = sSeq;
            pkt.ack = (flags & tcp_flags::Ack) ? cSeq : 0;
            pkt.ipId = sIpId++;
            sSeq += payload;
            if (flags & (tcp_flags::Syn | tcp_flags::Fin))
                ++sSeq;
        }
        info.bytes += pkt.ipTotalLength();
        out.add(pkt);
    };

    using namespace tcp_flags;

    if (n == 2) {  // unanswered handshake
        emit(true, Syn, 0);
        emit(false, Syn | Ack, 0);
        flows_.push_back(info);
        return;
    }
    if (n == 3) {  // handshake aborted by the client
        emit(true, Syn, 0);
        emit(false, Syn | Ack, 0);
        emit(true, Rst, 0);
        flows_.push_back(info);
        return;
    }

    // Flows too small for handshake + 3-packet FIN exchange close
    // with a RST (1 packet) instead.
    bool rstClose = rng_.chance(cfg_.resetFraction) || n < 7;
    uint32_t teardown = rstClose ? 1 : 3;
    // 3 handshake + teardown packets; the rest is the HTTP middle.
    uint32_t middle = n - 3 - teardown;

    emit(true, Syn, 0);
    emit(false, Syn | Ack, 0);
    emit(true, Ack, 0);

    // The middle is a sequence of request/response exchanges with
    // delayed ACKs. Long flows model persistent (keep-alive)
    // connections: many small objects rather than one bulk transfer,
    // which keeps their mean packet size modest, matching the byte /
    // packet shares the paper reports.
    uint32_t budget = middle;
    while (budget > 0) {
        if (budget < 3) {
            // Window-update / keepalive ACKs absorb the remainder.
            for (; budget > 0; --budget)
                emit(true, Ack, 0);
            break;
        }
        // Request. In the P2P mix either peer may ask (and the
        // other answers), making both directions carry payload.
        bool requesterIsClient = cfg_.mix == TrafficMix::Web ||
                                 rng_.chance(0.5);
        uint16_t reqBytes = static_cast<uint16_t>(
            rng_.uniformInt(220, 640));
        emit(requesterIsClient, Ack | Psh, reqBytes);
        --budget;

        // Response: d data segments plus floor(d/2) delayed ACKs must
        // fit in the remaining budget.
        uint32_t maxData = std::max(1u, budget * 2 / 3);
        uint32_t want = isLong
            ? static_cast<uint32_t>(rng_.uniformInt(1, 2))
            : static_cast<uint32_t>(rng_.uniformInt(2, 7));
        uint32_t d = std::min(want, maxData);
        uint32_t acks = std::min(d / 2, budget - d);
        uint32_t sent = 0, acked = 0;
        while (sent < d || acked < acks) {
            if (sent < d) {
                bool last = sent + 1 == d;
                // Short flows download whole objects in MSS-sized
                // segments; long (persistent, keep-alive) flows carry
                // many small objects, keeping their mean packet size
                // modest — that is what gives short flows the larger
                // byte share the paper reports (~80 %).
                uint16_t bytes;
                if (isLong)
                    bytes = static_cast<uint16_t>(
                        rng_.uniformInt(100, 500));
                else if (last)
                    bytes = static_cast<uint16_t>(
                        rng_.uniformInt(600, cfg_.mss));
                else
                    bytes = cfg_.mss;
                emit(!requesterIsClient, last ? (Ack | Psh) : Ack,
                     bytes);
                ++sent;
            }
            if (acked < acks && sent >= 2 * (acked + 1)) {
                emit(requesterIsClient, Ack, 0);
                ++acked;
            }
        }
        budget -= d + acks;
    }

    if (rstClose) {
        emit(true, Rst | Ack, 0);
    } else {
        emit(false, Fin | Ack, 0);
        emit(true, Fin | Ack, 0);
        emit(false, Ack, 0);
    }
    flows_.push_back(info);
}

WebGenConfig
p2pConfig(uint64_t seed, double durationSec, double flowsPerSec)
{
    WebGenConfig cfg;
    cfg.seed = seed;
    cfg.durationSec = durationSec;
    cfg.flowsPerSec = flowsPerSec;
    cfg.mix = TrafficMix::P2p;
    // P2P flows live longer and more of them are long.
    cfg.longFlowFraction = 0.08;
    cfg.longLenAlpha = 1.1;
    cfg.resetFraction = 0.12;
    return cfg;
}

Trace
WebTrafficGenerator::generate()
{
    flows_.clear();
    Trace out;

    util::Exponential interArrival(cfg_.flowsPerSec);
    double t = 0.0;
    while (true) {
        t += interArrival.sample(rng_);
        if (t >= cfg_.durationSec)
            break;
        makeConnection(static_cast<uint64_t>(t * 1e9), out);
    }
    out.sortByTime();
    return out;
}

} // namespace fcc::trace
