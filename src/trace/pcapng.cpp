/**
 * @file
 * pcapng block-structured I/O: incremental section/interface/packet
 * walk with per-section endianness and per-interface timestamp
 * resolution; single-section LINKTYPE_RAW writer at nanosecond
 * resolution.
 */

#include "trace/pcapng.hpp"

#include <algorithm>

#include "trace/pcap.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fcc::trace {

namespace {

constexpr uint32_t blockShb = 0x0a0d0d0au;
constexpr uint32_t blockIdb = 0x00000001u;
constexpr uint32_t blockPacketObsolete = 0x00000002u;
constexpr uint32_t blockSpb = 0x00000003u;
constexpr uint32_t blockEpb = 0x00000006u;

constexpr uint32_t byteOrderMagic = 0x1a2b3c4du;
constexpr uint32_t byteOrderMagicSwap = 0x4d3c2b1au;

constexpr uint16_t linkRaw = 101;
constexpr uint16_t linkEthernet = 1;

constexpr uint16_t optEndOfOpt = 0;
constexpr uint16_t optIfTsresol = 9;

/** Upper bound on one block: anything larger is corruption. */
constexpr uint32_t maxBlockLen = 1u << 24;

constexpr uint64_t pow10Table[10] = {
    1ull,       10ull,       100ull,       1000ull,      10000ull,
    100000ull,  1000000ull,  10000000ull,  100000000ull,
    1000000000ull,
};

/** Convert an if_tsresol tick count to nanoseconds. */
uint64_t
ticksToNs(uint64_t ticks, uint8_t tsresol)
{
    if (tsresol & 0x80) {
        int p = tsresol & 0x7f;
        util::require(p <= 63,
                      "pcapng: unsupported if_tsresol exponent");
#if defined(__SIZEOF_INT128__)
        unsigned __int128 wide =
            static_cast<unsigned __int128>(ticks) * 1000000000ull;
        return static_cast<uint64_t>(wide >> p);
#else
        // Without 128-bit math: exact whole-seconds part plus the
        // fractional ticks scaled in two 32-bit halves so nothing
        // overflows 64 bits (rem < 2^p, p <= 63).
        uint64_t whole = ticks >> p;
        uint64_t rem = ticks & ((uint64_t{1} << p) - 1);
        uint64_t hi = rem >> 32, lo = rem & 0xffffffffull;
        // rem * 1e9 = hi*1e9*2^32 + lo*1e9; shift each term by p.
        uint64_t frac;
        if (p >= 32)
            frac = ((hi * 1000000000ull) >> (p - 32)) +
                   ((lo * 1000000000ull) >> p);
        else
            frac = (hi * 1000000000ull) << (32 - p) |
                   ((lo * 1000000000ull) >> p);
        return whole * 1000000000ull + frac;
#endif
    }
    util::require(tsresol <= 18,
                  "pcapng: unsupported if_tsresol exponent");
    if (tsresol <= 9)
        return ticks * pow10Table[9 - tsresol];
    return ticks / pow10Table[tsresol - 9];
}

} // namespace

// ---- PcapngSource --------------------------------------------------

uint32_t
PcapngSource::fix(uint32_t v) const
{
    return swapped_ ? util::byteSwap32(v) : v;
}

uint16_t
PcapngSource::fix16(uint16_t v) const
{
    return swapped_ ? util::byteSwap16(v) : v;
}

PcapngSource::PcapngSource(std::unique_ptr<util::ByteSource> bytes)
    : bytes_(std::move(bytes))
{
    uint32_t type = 0;
    util::require(readBlock(body_, type) && type == blockShb,
                  "pcapng: missing section header block");
    beginSection({body_.data(), body_.size()});
    started_ = true;
}

/**
 * Read the next block into @p body (payload only — the redundant
 * trailing length is verified and stripped; for an SHB the byte-order
 * magic is consumed too, so the payload starts at the version field).
 *
 * @returns false on a clean end of file.
 */
bool
PcapngSource::readBlock(std::vector<uint8_t> &body, uint32_t &type)
{
    uint8_t hdr[8];
    size_t n = util::readFully(*bytes_, hdr, sizeof(hdr),
                               "pcapng: truncated block header");
    if (n == 0)
        return false;

    uint32_t rawType = util::loadLe32(hdr);
    size_t already;  // bytes of the block consumed so far
    if (rawType == blockShb) {
        // The byte-order magic governs this whole section, including
        // the length field of this very block.
        uint8_t bom[4];
        util::require(util::readFully(*bytes_, bom, sizeof(bom),
                                      "pcapng: truncated section "
                                      "header") == sizeof(bom),
                      "pcapng: truncated section header");
        uint32_t magic = util::loadLe32(bom);
        if (magic == byteOrderMagic)
            swapped_ = false;
        else if (magic == byteOrderMagicSwap)
            swapped_ = true;
        else
            throw util::Error("pcapng: bad byte-order magic");
        type = blockShb;
        already = 12;
    } else {
        util::require(started_,
                      "pcapng: missing section header block");
        type = fix(rawType);
        already = 8;
    }

    uint32_t totalLen = fix(util::loadLe32(hdr + 4));
    util::require(totalLen >= already + 4 && totalLen % 4 == 0,
                  "pcapng: bad block length");
    util::require(totalLen <= maxBlockLen,
                  "pcapng: block too large");

    size_t rest = totalLen - already;  // payload + trailing length
    body.resize(rest);
    util::require(util::readFully(*bytes_, body.data(), rest,
                                  "pcapng: truncated block") == rest,
                  "pcapng: truncated block");
    uint32_t trail = fix(util::loadLe32(body.data() + rest - 4));
    util::require(trail == totalLen,
                  "pcapng: block length mismatch");
    body.resize(rest - 4);
    consumed_ += totalLen;
    return true;
}

void
PcapngSource::beginSection(std::span<const uint8_t> body)
{
    util::require(body.size() >= 12,
                  "pcapng: truncated section header");
    uint16_t major = fix16(util::loadLe16(body.data()));
    util::require(major == 1,
                  "pcapng: unsupported section version");
    // A new section forgets the previous section's interfaces.
    interfaces_.clear();
}

void
PcapngSource::addInterface(std::span<const uint8_t> body)
{
    util::require(body.size() >= 8,
                  "pcapng: truncated interface block");
    Interface iface;
    iface.linkType = fix16(util::loadLe16(body.data()));

    // Options: (code, len, value padded to 4)* until opt_endofopt
    // or the end of the block.
    size_t pos = 8;
    while (pos + 4 <= body.size()) {
        uint16_t code = fix16(util::loadLe16(body.data() + pos));
        uint16_t len = fix16(util::loadLe16(body.data() + pos + 2));
        pos += 4;
        if (code == optEndOfOpt)
            break;
        util::require(pos + len <= body.size(),
                      "pcapng: truncated interface option");
        if (code == optIfTsresol && len == 1)
            iface.tsresol = body[pos];
        pos += (len + 3u) & ~3u;
    }
    interfaces_.push_back(iface);
}

void
PcapngSource::parsePacket(std::span<const uint8_t> body,
                          PacketRecord &pkt)
{
    util::require(body.size() >= 20,
                  "pcapng: truncated packet block");
    uint32_t ifaceId = fix(util::loadLe32(body.data()));
    uint32_t tsHigh = fix(util::loadLe32(body.data() + 4));
    uint32_t tsLow = fix(util::loadLe32(body.data() + 8));
    uint32_t capLen = fix(util::loadLe32(body.data() + 12));
    util::require(ifaceId < interfaces_.size(),
                  "pcapng: packet references unknown interface");
    const Interface &iface = interfaces_[ifaceId];
    util::require(iface.linkType == linkRaw ||
                      iface.linkType == linkEthernet,
                  "pcapng: unsupported link type");
    util::require(capLen <= body.size() - 20,
                  "pcapng: truncated packet data");

    pkt = PacketRecord();
    uint64_t ticks = static_cast<uint64_t>(tsHigh) << 32 | tsLow;
    pkt.timestampNs = ticksToNs(ticks, iface.tsresol);

    size_t l2skip = iface.linkType == linkEthernet ? 14 : 0;
    util::require(capLen >= l2skip,
                  "pcapng: capture below link header size");
    parseIpv4Packet(body.data() + 20 + l2skip, capLen - l2skip, pkt);
}

size_t
PcapngSource::read(std::span<PacketRecord> batch)
{
    size_t filled = 0;
    uint32_t type = 0;
    while (filled < batch.size()) {
        if (!readBlock(body_, type))
            break;
        std::span<const uint8_t> body(body_.data(), body_.size());
        switch (type) {
          case blockShb:
            beginSection(body);
            break;
          case blockIdb:
            addInterface(body);
            break;
          case blockEpb:
            parsePacket(body, batch[filled]);
            ++filled;
            break;
          case blockSpb:
            throw util::Error(
                "pcapng: simple packet block has no timestamp");
          case blockPacketObsolete:
            throw util::Error(
                "pcapng: obsolete packet block unsupported");
          default:
            break;  // statistics, name resolution, custom: skip
        }
    }
    return filled;
}

// ---- PcapngSink ----------------------------------------------------

PcapngSink::PcapngSink(std::unique_ptr<util::ByteSink> out)
    : out_(std::move(out))
{
    std::vector<uint8_t> hdr;

    // Section Header Block (28 bytes).
    util::storeLe32(hdr, blockShb);
    util::storeLe32(hdr, 28);
    util::storeLe32(hdr, byteOrderMagic);
    util::storeLe16(hdr, 1);  // version major
    util::storeLe16(hdr, 0);  // version minor
    util::storeLe32(hdr, 0xffffffffu);  // section length: unknown (-1)
    util::storeLe32(hdr, 0xffffffffu);
    util::storeLe32(hdr, 28);

    // Interface Description Block (32 bytes): LINKTYPE_RAW,
    // if_tsresol = 9 (nanoseconds — full PacketRecord precision).
    util::storeLe32(hdr, blockIdb);
    util::storeLe32(hdr, 32);
    util::storeLe16(hdr, linkRaw);
    util::storeLe16(hdr, 0);       // reserved
    util::storeLe32(hdr, 65535);   // snaplen
    util::storeLe16(hdr, optIfTsresol);
    util::storeLe16(hdr, 1);
    hdr.push_back(9);
    hdr.push_back(0); hdr.push_back(0); hdr.push_back(0);  // pad
    util::storeLe16(hdr, optEndOfOpt);
    util::storeLe16(hdr, 0);
    util::storeLe32(hdr, 32);

    out_->write(hdr);
}

void
PcapngSink::write(std::span<const PacketRecord> batch)
{
    buf_.clear();
    for (const auto &pkt : batch) {
        // Enhanced Packet Block: 20 B fixed + 40 B data + trailer.
        util::storeLe32(buf_, blockEpb);
        util::storeLe32(buf_, 72);
        util::storeLe32(buf_, 0);  // interface id
        util::storeLe32(buf_, static_cast<uint32_t>(pkt.timestampNs >> 32));
        util::storeLe32(buf_, static_cast<uint32_t>(pkt.timestampNs));
        util::storeLe32(buf_, 40);                   // captured length
        util::storeLe32(buf_, pkt.ipTotalLength());  // original length
        appendIpv4TcpHeader(pkt, buf_);       // 40 B, pad-free
        util::storeLe32(buf_, 72);
    }
    out_->write(buf_);
}

// ---- whole-buffer wrappers -----------------------------------------

std::vector<uint8_t>
writePcapng(const Trace &trace)
{
    auto vec = std::make_unique<util::VectorByteSink>();
    auto *raw = vec.get();
    PcapngSink sink(std::move(vec));
    sink.write(std::span<const PacketRecord>(trace.packets()));
    sink.close();
    return raw->take();
}

Trace
readPcapng(std::span<const uint8_t> data)
{
    PcapngSource src(std::make_unique<util::BufferByteSource>(data));
    return readAllPackets(src);
}

void
writePcapngFile(const Trace &trace, const std::string &path)
{
    PcapngSink sink(std::make_unique<util::FileByteSink>(path));
    sink.write(std::span<const PacketRecord>(trace.packets()));
    sink.close();
}

Trace
readPcapngFile(const std::string &path)
{
    PcapngSource src(util::openByteSource(path));
    return readAllPackets(src);
}

} // namespace fcc::trace
