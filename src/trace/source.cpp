/**
 * @file
 * Streaming trace I/O subsystem: TSH source/sink over the byte
 * layer, in-memory adapters, magic-byte format auto-detection with
 * transparent gzip unwrapping, and the path-level factories.
 */

#include "trace/source.hpp"

#include <algorithm>
#include <cstring>

#include "codec/deflate/inflate_stream.hpp"
#include "trace/pcap.hpp"
#include "trace/pcapng.hpp"
#include "util/error.hpp"

namespace fcc::trace {

// ---- TshSource -----------------------------------------------------

size_t
TshSource::read(std::span<PacketRecord> batch)
{
    if (batch.empty())
        return 0;
    size_t want = batch.size() * tshRecordBytes;
    buf_.resize(want);
    size_t have = 0;
    while (have < want) {
        size_t n = bytes_->read(buf_.data() + have, want - have);
        if (n == 0)
            break;
        have += n;
    }
    size_t whole = have / tshRecordBytes;
    util::require(whole * tshRecordBytes == have,
                  "tsh source: trailing partial record");
    for (size_t i = 0; i < whole; ++i)
        batch[i] = decodeTshRecord(buf_.data() + i * tshRecordBytes);
    consumed_ += have;
    return whole;
}

// ---- TshSink -------------------------------------------------------

void
TshSink::write(std::span<const PacketRecord> batch)
{
    buf_.clear();
    buf_.reserve(batch.size() * tshRecordBytes);
    for (const auto &pkt : batch)
        encodeTshRecord(pkt, buf_);
    out_->write(buf_);
}

// ---- MemoryTraceSource ---------------------------------------------

size_t
MemoryTraceSource::read(std::span<PacketRecord> batch)
{
    size_t n = std::min(batch.size(), trace_.size() - pos_);
    for (size_t i = 0; i < n; ++i)
        batch[i] = trace_[pos_ + i];
    pos_ += n;
    return n;
}

// ---- whole-stream helpers ------------------------------------------

Trace
readAllPackets(TraceSource &src)
{
    Trace trace;
    std::vector<PacketRecord> batch(4096);
    size_t n;
    while ((n = src.read(batch)) > 0)
        for (size_t i = 0; i < n; ++i)
            trace.add(batch[i]);
    return trace;
}

void
writeAllPackets(TraceSink &sink, const Trace &trace)
{
    constexpr size_t batchRecords = 4096;
    const auto &packets = trace.packets();
    for (size_t base = 0; base < packets.size();
         base += batchRecords) {
        size_t n = std::min(batchRecords, packets.size() - base);
        sink.write(
            std::span<const PacketRecord>(packets.data() + base, n));
    }
    sink.close();
}

// ---- format detection ----------------------------------------------

namespace {

bool
matchesMagic(std::span<const uint8_t> head, const uint8_t (&magic)[4])
{
    return head.size() >= 4 &&
           std::memcmp(head.data(), magic, 4) == 0;
}

} // namespace

DetectedFormat
detectTraceFormat(std::span<const uint8_t> head)
{
    if (head.size() >= 2 && head[0] == 0x1f && head[1] == 0x8b)
        return {TraceFormat::Tsh, /*gzip=*/true};

    static constexpr uint8_t pcapngMagic[4] = {0x0a, 0x0d, 0x0d, 0x0a};
    if (matchesMagic(head, pcapngMagic))
        return {TraceFormat::Pcapng, false};

    static constexpr uint8_t pcapMagics[4][4] = {
        {0xa1, 0xb2, 0xc3, 0xd4},  // usec, big-endian
        {0xd4, 0xc3, 0xb2, 0xa1},  // usec, little-endian
        {0xa1, 0xb2, 0x3c, 0x4d},  // nsec, big-endian
        {0x4d, 0x3c, 0xb2, 0xa1},  // nsec, little-endian
    };
    for (const auto &magic : pcapMagics)
        if (matchesMagic(head, magic))
            return {TraceFormat::Pcap, false};

    // TSH has no magic: accept when the first record is plausible —
    // the IPv4 version/IHL byte at offset 8 and a sub-second
    // microsecond field at offsets 5..7.
    if (head.size() >= 9 && head[8] == 0x45) {
        uint32_t usec = static_cast<uint32_t>(head[5]) << 16 |
                        static_cast<uint32_t>(head[6]) << 8 | head[7];
        if (usec < 1000000)
            return {TraceFormat::Tsh, false};
    }
    throw util::Error(
        "cannot detect trace format (want tsh, pcap, pcapng, or a "
        "gzip'd one of those)");
}

TraceFormatSpec
parseTraceFormatSpec(const std::string &name)
{
    TraceFormatSpec spec;
    std::string base = name;
    if (base.size() > 3 &&
        base.compare(base.size() - 3, 3, ".gz") == 0) {
        spec.gzip = true;
        base.resize(base.size() - 3);
    }
    if (base == "auto") {
        util::require(!spec.gzip,
                      "format 'auto' detects gzip by itself");
        spec.autoDetect = true;
        return spec;
    }
    spec.autoDetect = false;
    if (base == "tsh")
        spec.format = TraceFormat::Tsh;
    else if (base == "pcap")
        spec.format = TraceFormat::Pcap;
    else if (base == "pcapng")
        spec.format = TraceFormat::Pcapng;
    else
        throw util::Error("unknown trace format: " + name);
    return spec;
}

std::string
traceFormatName(TraceFormat format, bool gzip)
{
    std::string name;
    switch (format) {
      case TraceFormat::Tsh:    name = "tsh"; break;
      case TraceFormat::Pcap:   name = "pcap"; break;
      case TraceFormat::Pcapng: name = "pcapng"; break;
    }
    if (gzip)
        name += ".gz";
    return name;
}

// ---- factories -----------------------------------------------------

namespace {

/**
 * Peek the first @p n bytes of @p src without consuming them:
 * zero-copy via contiguous() when available, otherwise read and
 * re-wrap the source with the prefix replayed.
 */
std::vector<uint8_t>
peekHead(std::unique_ptr<util::ByteSource> &src, size_t n)
{
    auto whole = src->contiguous();
    if (!whole.empty()) {
        size_t take = std::min(n, whole.size());
        return {whole.begin(), whole.begin() + take};
    }
    std::vector<uint8_t> head(n);
    size_t got = 0;
    while (got < n) {
        size_t r = src->read(head.data() + got, n - got);
        if (r == 0)
            break;
        got += r;
    }
    head.resize(got);
    src = std::make_unique<util::PrefixedByteSource>(head,
                                                     std::move(src));
    return head;
}

std::unique_ptr<TraceSource>
makeSource(TraceFormat format,
           std::unique_ptr<util::ByteSource> bytes)
{
    switch (format) {
      case TraceFormat::Pcap:
        return std::make_unique<PcapSource>(std::move(bytes));
      case TraceFormat::Pcapng:
        return std::make_unique<PcapngSource>(std::move(bytes));
      case TraceFormat::Tsh:
      default:
        return std::make_unique<TshSource>(std::move(bytes));
    }
}

} // namespace

std::unique_ptr<TraceSource>
openTraceSource(const std::string &path, const TraceFormatSpec &spec,
                DetectedFormat *detected)
{
    auto bytes = util::openByteSource(path);
    TraceFormat format = spec.format;
    bool gzip = spec.gzip;

    if (spec.autoDetect) {
        auto head = peekHead(bytes, 16);
        DetectedFormat outer = detectTraceFormat(head);
        gzip = outer.gzip;
        if (outer.gzip) {
            bytes = std::make_unique<codec::deflate::GzipInflateSource>(
                std::move(bytes));
            auto inner = peekHead(bytes, 16);
            DetectedFormat innerFormat = detectTraceFormat(inner);
            util::require(!innerFormat.gzip,
                          "gzip-in-gzip trace input unsupported");
            format = innerFormat.format;
        } else {
            format = outer.format;
        }
    } else if (spec.gzip) {
        bytes = std::make_unique<codec::deflate::GzipInflateSource>(
            std::move(bytes));
    }
    if (detected != nullptr)
        *detected = {format, gzip};
    return makeSource(format, std::move(bytes));
}

std::unique_ptr<TraceSink>
openTraceSink(const std::string &path, const TraceFormatSpec &spec)
{
    util::require(!spec.gzip,
                  "gzip-compressed trace output is not supported");
    TraceFormat format = spec.format;
    if (spec.autoDetect) {
        auto endsWith = [&path](const char *suffix) {
            std::string s(suffix);
            return path.size() >= s.size() &&
                   path.compare(path.size() - s.size(), s.size(),
                                s) == 0;
        };
        util::require(!endsWith(".gz"),
                      "gzip-compressed trace output is not "
                      "supported");
        if (endsWith(".pcapng"))
            format = TraceFormat::Pcapng;
        else if (endsWith(".pcap"))
            format = TraceFormat::Pcap;
        else
            format = TraceFormat::Tsh;
    }

    auto file = std::make_unique<util::FileByteSink>(path);
    switch (format) {
      case TraceFormat::Pcap:
        return std::make_unique<PcapSink>(std::move(file));
      case TraceFormat::Pcapng:
        return std::make_unique<PcapngSink>(std::move(file));
      case TraceFormat::Tsh:
      default:
        return std::make_unique<TshSink>(std::move(file));
    }
}

} // namespace fcc::trace
