/**
 * @file
 * Trace container: stable time sort, order checking, duration and
 * time-window slicing over the packet vector.
 */

#include "trace/trace.hpp"

#include <algorithm>

namespace fcc::trace {

Trace::Trace(std::vector<PacketRecord> packets)
    : packets_(std::move(packets))
{
}

void
Trace::sortByTime()
{
    std::stable_sort(packets_.begin(), packets_.end(),
                     [](const PacketRecord &a, const PacketRecord &b) {
                         return a.timestampNs < b.timestampNs;
                     });
}

bool
Trace::isTimeOrdered() const
{
    return std::is_sorted(packets_.begin(), packets_.end(),
                          [](const PacketRecord &a, const PacketRecord &b) {
                              return a.timestampNs < b.timestampNs;
                          });
}

double
Trace::durationSec() const
{
    if (packets_.size() < 2)
        return 0.0;
    return static_cast<double>(packets_.back().timestampNs -
                               packets_.front().timestampNs) * 1e-9;
}

uint64_t
Trace::totalWireBytes() const
{
    uint64_t total = 0;
    for (const auto &pkt : packets_)
        total += pkt.ipTotalLength();
    return total;
}

uint64_t
Trace::totalPayloadBytes() const
{
    uint64_t total = 0;
    for (const auto &pkt : packets_)
        total += pkt.payloadBytes;
    return total;
}

Trace
Trace::sliceSeconds(double start, double length) const
{
    Trace out;
    if (packets_.empty())
        return out;
    uint64_t t0 = packets_.front().timestampNs;
    uint64_t lo = t0 + static_cast<uint64_t>(start * 1e9);
    uint64_t hi = lo + static_cast<uint64_t>(length * 1e9);
    for (const auto &pkt : packets_) {
        if (pkt.timestampNs >= lo && pkt.timestampNs < hi)
            out.add(pkt);
    }
    return out;
}

} // namespace fcc::trace
