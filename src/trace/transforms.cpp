/**
 * @file
 * The §6.1 comparison traces: randomizeAddresses() redraws every
 * destination uniformly; makeFracexp() replays a multiplicative
 * (multifractal) address process through an LRU stack locality
 * model with exponential inter-arrival times.
 */

#include "trace/transforms.hpp"

#include <deque>
#include <vector>

#include "util/distributions.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fcc::trace {

Trace
randomizeAddresses(const Trace &input, uint64_t seed)
{
    util::Rng rng(seed);
    Trace out;
    for (const auto &pkt : input) {
        PacketRecord copy = pkt;
        copy.dstIp = static_cast<uint32_t>(rng.next());
        out.add(copy);
    }
    return out;
}

Trace
generateFracExp(const FracExpConfig &cfg)
{
    util::require(cfg.packetCount > 0, "FracExp: empty trace requested");
    util::require(cfg.reuseProbability >= 0 &&
                      cfg.reuseProbability < 1,
                  "FracExp: reuse probability out of [0,1)");
    util::require(cfg.bitBiasLo > 0 && cfg.bitBiasHi < 1 &&
                      cfg.bitBiasLo <= cfg.bitBiasHi,
                  "FracExp: bad cascade bias range");

    util::Rng rng(cfg.seed);

    // Fixed per-level biases define the multiplicative measure on the
    // address space; drawing them once makes the cascade stationary.
    double bias[32];
    for (double &b : bias)
        b = cfg.bitBiasLo +
            (cfg.bitBiasHi - cfg.bitBiasLo) * rng.uniform();

    auto cascadeAddress = [&rng, &bias]() {
        uint32_t addr = 0;
        for (int level = 0; level < 32; ++level) {
            addr <<= 1;
            if (rng.chance(bias[level]))
                addr |= 1;
        }
        return addr;
    };

    util::Exponential ipt(1e6 / cfg.meanIptUs);  // rate in 1/s
    util::BoundedPareto depthDist(cfg.stackAlpha, 1.0,
                                  static_cast<double>(
                                      cfg.stackMaxDepth));
    util::Discrete sizes({0, 536, 1460}, {0.45, 0.25, 0.30});

    std::deque<uint32_t> stack;  // front = most recently used
    Trace out;
    double t = 0.0;
    for (size_t i = 0; i < cfg.packetCount; ++i) {
        uint32_t dst;
        if (!stack.empty() && rng.chance(cfg.reuseProbability)) {
            size_t depth = static_cast<size_t>(
                depthDist.sample(rng)) - 1;
            depth = std::min(depth, stack.size() - 1);
            dst = stack[depth];
            stack.erase(stack.begin() +
                        static_cast<std::ptrdiff_t>(depth));
        } else {
            dst = cascadeAddress();
        }
        stack.push_front(dst);
        if (stack.size() > cfg.stackMaxDepth)
            stack.pop_back();

        PacketRecord pkt;
        pkt.timestampNs = static_cast<uint64_t>(t * 1e9);
        pkt.srcIp = static_cast<uint32_t>(rng.next());
        pkt.dstIp = dst;
        pkt.srcPort = static_cast<uint16_t>(
            rng.uniformInt(1024, 65000));
        pkt.dstPort = 80;
        pkt.tcpFlags = tcp_flags::Ack;
        pkt.payloadBytes = static_cast<uint16_t>(sizes.sample(rng));
        pkt.window = 0xffff;
        out.add(pkt);
        t += ipt.sample(rng);
    }
    return out;
}

} // namespace fcc::trace
