/**
 * @file
 * Comparison-trace constructors for the memory-performance validation
 * (paper §6.1): the "random" trace — same temporal distribution but
 * uniformly random destination addresses — and the "fracexp" trace —
 * destinations from a multiplicative (multifractal) process replayed
 * through an LRU stack locality model with exponential inter-packet
 * times.
 */

#ifndef FCC_TRACE_TRANSFORMS_HPP
#define FCC_TRACE_TRANSFORMS_HPP

#include <cstdint>
#include <cstddef>

#include "trace/trace.hpp"

namespace fcc::trace {

/**
 * Copy @p input replacing every destination address with a uniformly
 * random one; timestamps, sizes and all other fields are preserved
 * ("assigning random IP destination addresses, but maintaining the
 * same temporal distribution").
 */
Trace randomizeAddresses(const Trace &input, uint64_t seed);

/** Parameters of the fractal-address / exponential-time generator. */
struct FracExpConfig
{
    uint64_t seed = 7;
    size_t packetCount = 100000;
    double meanIptUs = 120.0;    ///< exponential inter-packet time
    double reuseProbability = 0.72;  ///< LRU stack hit probability
    double stackAlpha = 1.3;     ///< Pareto shape of reuse depth
    size_t stackMaxDepth = 4096; ///< deepest reusable stack entry
    double bitBiasLo = 0.55;     ///< per-level cascade bias range
    double bitBiasHi = 0.95;
};

/**
 * Generate the "fracexp" trace: destination addresses drawn from a
 * 32-level multiplicative cascade (each address bit is 1 with a fixed
 * per-level bias, yielding a multifractal address distribution),
 * replayed through an LRU stack model (temporal locality), with
 * exponential inter-packet times. Other fields are filled with
 * plausible constants; only destinations, times and sizes matter to
 * the routing kernels.
 */
Trace generateFracExp(const FracExpConfig &cfg);

} // namespace fcc::trace

#endif // FCC_TRACE_TRANSFORMS_HPP
