/**
 * @file
 * Adversarial scenario generator matrix: hostile and non-paper
 * traffic mixes the clusterer was never evaluated on.
 *
 * The paper (and the seed-2005 web_gen workload) only ever exercises
 * well-formed TCP web traffic; this module synthesizes the traffic
 * classes that stress every assumption the flow-clustering codec
 * makes:
 *
 *  - SynFlood    — DDoS SYN storm: one packet per flow with spoofed
 *                  sources, so the flow count equals the packet
 *                  count (worst case for per-flow compression);
 *  - PortScan    — half-open SYN sweep over sequential ports, two to
 *                  three packets per probe flow;
 *  - Elephants   — a handful of long-lived bulk transfers spanning
 *                  the whole capture (and many time-seq chunks),
 *                  plus background mice;
 *  - Incast      — barrier-synchronized fan-in: many senders answer
 *                  one aggregator in bursts with heavy-tailed
 *                  (bounded-Pareto) response sizes;
 *  - Reordering  — request/response flows whose packets are locally
 *                  displaced in capture order, scrambling the
 *                  direction-dependence pattern the SF vectors
 *                  encode;
 *  - LossStorm   — loss and retransmission storms: dropped segments
 *                  trigger duplicate ACKs and delayed
 *                  retransmissions;
 *  - MixedTail   — flow lengths from a bounded Pareto with a
 *                  configurable tail exponent and randomized
 *                  per-packet classes: near-distinct SF vectors at
 *                  every length (template-store worst case).
 *
 * Every scenario is deterministic given its seed and emits a
 * time-ordered Trace — or streams through the existing TraceSink
 * interface, so fcctool, fccquery and the benches consume scenario
 * traffic unmodified. See docs/SCENARIOS.md.
 */

#ifndef FCC_TRACE_SCENARIO_GEN_HPP
#define FCC_TRACE_SCENARIO_GEN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/source.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace fcc::trace {

/** The scenario matrix. */
enum class ScenarioKind : uint8_t
{
    SynFlood = 0,
    PortScan,
    Elephants,
    Incast,
    Reordering,
    LossStorm,
    MixedTail,
};

/** All scenarios, in enum order (drives the test/bench matrices). */
std::vector<ScenarioKind> allScenarios();

/** Stable lowercase name ("synflood", "portscan", ...). */
const char *scenarioName(ScenarioKind kind);

/** Parse a name accepted by scenarioName(). @throws fcc::util::Error */
ScenarioKind parseScenarioName(const std::string &name);

/**
 * Shared scenario knobs. Every generator reads `kind`, `seed`,
 * `durationSec` and `flows`; the remaining fields apply where noted.
 * Defaults are sized for tests — scenarioDefaults() scales the
 * per-kind shape knobs.
 */
struct ScenarioConfig
{
    ScenarioKind kind = ScenarioKind::SynFlood;
    uint64_t seed = 1;          ///< same seed, same trace
    double durationSec = 10.0;  ///< arrival window length

    /**
     * Target flow count: attack packets (SynFlood), probes
     * (PortScan), transfers (Elephants), senders (Incast), or
     * connections (the rest). 0 produces an empty trace.
     */
    uint32_t flows = 2000;

    /** Victim / target / aggregator address count. */
    uint32_t serverCount = 4;
    /** Attacker / client address pool (spoofed for SynFlood). */
    uint32_t clientCount = 1024;

    /**
     * Heavy-tail exponent: Incast response sizes, MixedTail flow
     * lengths, Elephants length spread. Lower = heavier tail.
     */
    double tailAlpha = 1.2;

    /** Packet-count cap of a single flow (Elephants, MixedTail). */
    uint32_t maxFlowLen = 4000;

    /** Reordering: probability a packet is displaced earlier. */
    double reorderFraction = 0.35;
    /** LossStorm: probability a data segment is lost once. */
    double lossFraction = 0.2;

    /** Incast: synchronized request rounds over the capture. */
    uint32_t incastRounds = 8;

    uint16_t mss = 1460;  ///< maximum segment size
};

/**
 * Per-kind default shape: starts from ScenarioConfig{} and adjusts
 * the knobs that define the scenario (e.g. SynFlood gets one victim
 * and a huge spoofed-client pool, Elephants few flows with a high
 * length cap). `flows` and `durationSec` keep their generic
 * defaults — callers scale those for smoke/test/bench size.
 */
ScenarioConfig scenarioDefaults(ScenarioKind kind, uint64_t seed);

/**
 * Ground truth a scenario can report about itself (for assertions
 * and the bench tables).
 */
struct ScenarioInfo
{
    uint64_t flows = 0;    ///< connections synthesized
    uint64_t packets = 0;  ///< packets emitted
    uint64_t maxFlowPackets = 0;
    uint64_t retransmissions = 0;  ///< LossStorm only
    uint64_t reorderedPackets = 0; ///< Reordering only
};

/**
 * Generator for the adversarial scenario matrix.
 *
 * Usage: construct with a config, call generate() (or writeTo() to
 * stream into any TraceSink). info() then describes the most recent
 * generation. Deterministic: equal configs produce byte-identical
 * traces.
 */
class ScenarioGenerator
{
  public:
    /** @throws fcc::util::Error on out-of-range parameters. */
    explicit ScenarioGenerator(const ScenarioConfig &cfg);

    /** Synthesize the whole trace (time-sorted). */
    Trace generate();

    /**
     * generate() and stream the result into @p sink in bounded
     * batches; the sink is closed before returning.
     */
    void writeTo(TraceSink &sink);

    /** Ground truth for the most recent generate()/writeTo(). */
    const ScenarioInfo &info() const { return info_; }

    const ScenarioConfig &config() const { return cfg_; }

  private:
    void makeSynFlood(Trace &out);
    void makePortScan(Trace &out);
    void makeElephants(Trace &out);
    void makeIncast(Trace &out);
    void makeReordering(Trace &out);
    void makeLossStorm(Trace &out);
    void makeMixedTail(Trace &out);

    ScenarioConfig cfg_;
    util::Rng rng_;
    ScenarioInfo info_;
    std::vector<uint32_t> serverIps_;
    std::vector<uint32_t> clientIps_;
    uint16_t nextEphemeral_ = 1024;
};

} // namespace fcc::trace

#endif // FCC_TRACE_SCENARIO_GEN_HPP
