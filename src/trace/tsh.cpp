/**
 * @file
 * TSH record (de)serialization: 44-byte big-endian records built
 * and parsed field by field, plus file-level read/write wrappers
 * that validate record alignment.
 */

#include "trace/tsh.hpp"

#include <cstdio>
#include <memory>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fcc::trace {

uint16_t
ipChecksum(std::span<const uint8_t> data)
{
    uint32_t sum = 0;
    size_t i = 0;
    for (; i + 1 < data.size(); i += 2)
        sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
    if (i < data.size())
        sum += static_cast<uint32_t>(data[i]) << 8;
    while (sum >> 16)
        sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<uint16_t>(~sum);
}

void
encodeTshRecord(const PacketRecord &pkt, std::vector<uint8_t> &out)
{
    uint32_t sec = static_cast<uint32_t>(pkt.timestampNs /
                                         1000000000ull);
    uint32_t usec = static_cast<uint32_t>(
        (pkt.timestampNs / 1000ull) % 1000000ull);

    util::storeBe32(out, sec);
    out.push_back(0);  // interface number
    out.push_back(static_cast<uint8_t>(usec >> 16));
    out.push_back(static_cast<uint8_t>(usec >> 8));
    out.push_back(static_cast<uint8_t>(usec));

    // IPv4 header (20 bytes), checksum back-patched.
    size_t ipStart = out.size();
    out.push_back(0x45);  // version 4, IHL 5
    out.push_back(0);     // TOS
    util::storeBe16(out, pkt.ipTotalLength());
    util::storeBe16(out, pkt.ipId);
    util::storeBe16(out, 0x4000);  // flags: don't-fragment
    out.push_back(64);      // TTL
    out.push_back(pkt.protocol);
    util::storeBe16(out, 0);       // checksum placeholder
    util::storeBe32(out, pkt.srcIp);
    util::storeBe32(out, pkt.dstIp);
    uint16_t csum = ipChecksum(
        std::span<const uint8_t>(out.data() + ipStart, 20));
    out[ipStart + 10] = static_cast<uint8_t>(csum >> 8);
    out[ipStart + 11] = static_cast<uint8_t>(csum);

    // First 16 bytes of the TCP header.
    util::storeBe16(out, pkt.srcPort);
    util::storeBe16(out, pkt.dstPort);
    util::storeBe32(out, pkt.seq);
    util::storeBe32(out, pkt.ack);
    out.push_back(5 << 4);  // data offset 5 words
    out.push_back(pkt.tcpFlags);
    util::storeBe16(out, pkt.window);
}

PacketRecord
decodeTshRecord(const uint8_t *rec)
{
    PacketRecord pkt;

    uint32_t sec = util::loadBe32(rec);
    uint32_t usec = static_cast<uint32_t>(rec[5]) << 16 |
                    static_cast<uint32_t>(rec[6]) << 8 | rec[7];
    util::require(usec < 1000000, "readTsh: microseconds >= 1e6");
    pkt.timestampNs = static_cast<uint64_t>(sec) * 1000000000ull +
                      static_cast<uint64_t>(usec) * 1000ull;

    const uint8_t *ip = rec + 8;
    util::require((ip[0] >> 4) == 4, "readTsh: not IPv4");
    util::require((ip[0] & 0x0f) == 5,
                  "readTsh: IP options unsupported");
    uint16_t totalLen = util::loadBe16(ip + 2);
    util::require(totalLen >= 40,
                  "readTsh: IP total length below header size");
    pkt.payloadBytes = static_cast<uint16_t>(totalLen - 40);
    pkt.ipId = util::loadBe16(ip + 4);
    pkt.protocol = ip[9];
    pkt.srcIp = util::loadBe32(ip + 12);
    pkt.dstIp = util::loadBe32(ip + 16);

    const uint8_t *tcp = rec + 28;
    pkt.srcPort = util::loadBe16(tcp);
    pkt.dstPort = util::loadBe16(tcp + 2);
    pkt.seq = util::loadBe32(tcp + 4);
    pkt.ack = util::loadBe32(tcp + 8);
    pkt.tcpFlags = tcp[13];
    pkt.window = util::loadBe16(tcp + 14);
    return pkt;
}

std::vector<uint8_t>
writeTsh(const Trace &trace)
{
    std::vector<uint8_t> out;
    out.reserve(trace.size() * tshRecordBytes);
    for (const auto &pkt : trace)
        encodeTshRecord(pkt, out);
    return out;
}

Trace
readTsh(std::span<const uint8_t> data)
{
    util::require(data.size() % tshRecordBytes == 0,
                  "readTsh: size is not a multiple of 44 bytes");
    Trace trace;
    for (size_t off = 0; off < data.size(); off += tshRecordBytes)
        trace.add(decodeTshRecord(data.data() + off));
    return trace;
}

namespace {

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

void
writeTshFile(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    util::require(f != nullptr, "writeTshFile: cannot open output file");
    auto bytes = writeTsh(trace);
    size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f.get());
    util::require(n == bytes.size(), "writeTshFile: short write");
}

Trace
readTshFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    util::require(f != nullptr, "readTshFile: cannot open input file");
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    return readTsh(bytes);
}

} // namespace fcc::trace
