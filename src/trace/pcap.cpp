/**
 * @file
 * pcap savefile I/O: accepts both byte orders, microsecond and
 * nanosecond magics, and RAW or Ethernet link types; always writes
 * LINKTYPE_RAW files of bare IPv4+TCP headers (microsecond or
 * nanosecond timestamps). The incremental PcapSource/PcapSink are
 * the single implementation; the whole-buffer entry points wrap
 * them.
 */

#include "trace/pcap.hpp"

#include <algorithm>

#include "trace/tsh.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fcc::trace {

namespace {

constexpr uint32_t magicUsec = 0xa1b2c3d4u;
constexpr uint32_t magicUsecSwap = 0xd4c3b2a1u;
constexpr uint32_t magicNsec = 0xa1b23c4du;
constexpr uint32_t magicNsecSwap = 0x4d3cb2a1u;

constexpr uint32_t linkRaw = 101;
constexpr uint32_t linkEthernet = 1;

} // namespace

void
parseIpv4Packet(const uint8_t *body, size_t len, PacketRecord &pkt)
{
    util::require(len >= 20, "readPcap: truncated IP header");
    util::require((body[0] >> 4) == 4, "readPcap: not IPv4");
    size_t ihl = static_cast<size_t>(body[0] & 0x0f) * 4;
    util::require(ihl >= 20 && len >= ihl,
                  "readPcap: bad IP header length");
    uint16_t totalLen = util::loadBe16(body + 2);
    pkt.ipId = util::loadBe16(body + 4);
    pkt.protocol = body[9];
    pkt.srcIp = util::loadBe32(body + 12);
    pkt.dstIp = util::loadBe32(body + 16);

    const uint8_t *l4 = body + ihl;
    size_t l4len = len - ihl;
    if (pkt.protocol == ip_proto::Tcp) {
        util::require(l4len >= 16, "readPcap: truncated TCP header");
        pkt.srcPort = util::loadBe16(l4);
        pkt.dstPort = util::loadBe16(l4 + 2);
        pkt.seq = util::loadBe32(l4 + 4);
        pkt.ack = util::loadBe32(l4 + 8);
        size_t dataOff = static_cast<size_t>(l4[12] >> 4) * 4;
        util::require(dataOff >= 20, "readPcap: bad TCP data offset");
        pkt.tcpFlags = l4[13];
        pkt.window = util::loadBe16(l4 + 14);
        size_t hdr = ihl + dataOff;
        pkt.payloadBytes = totalLen > hdr
            ? static_cast<uint16_t>(totalLen - hdr) : 0;
    } else if (pkt.protocol == ip_proto::Udp) {
        util::require(l4len >= 8, "readPcap: truncated UDP header");
        pkt.srcPort = util::loadBe16(l4);
        pkt.dstPort = util::loadBe16(l4 + 2);
        uint16_t udpLen = util::loadBe16(l4 + 4);
        pkt.payloadBytes = udpLen > 8
            ? static_cast<uint16_t>(udpLen - 8) : 0;
    } else {
        pkt.payloadBytes = totalLen > ihl
            ? static_cast<uint16_t>(totalLen - ihl) : 0;
    }
}

void
appendIpv4TcpHeader(const PacketRecord &pkt, std::vector<uint8_t> &out)
{
    auto putU16 = [&out](uint16_t v) {
        out.push_back(static_cast<uint8_t>(v >> 8));
        out.push_back(static_cast<uint8_t>(v));
    };
    auto putU32 = [&out](uint32_t v) {
        out.push_back(static_cast<uint8_t>(v >> 24));
        out.push_back(static_cast<uint8_t>(v >> 16));
        out.push_back(static_cast<uint8_t>(v >> 8));
        out.push_back(static_cast<uint8_t>(v));
    };
    size_t ipStart = out.size();
    out.push_back(0x45);
    out.push_back(0);
    putU16(pkt.ipTotalLength());
    putU16(pkt.ipId);
    putU16(0x4000);
    out.push_back(64);
    out.push_back(pkt.protocol);
    putU16(0);
    putU32(pkt.srcIp);
    putU32(pkt.dstIp);
    uint16_t csum = ipChecksum(
        std::span<const uint8_t>(out.data() + ipStart, 20));
    out[ipStart + 10] = static_cast<uint8_t>(csum >> 8);
    out[ipStart + 11] = static_cast<uint8_t>(csum);

    putU16(pkt.srcPort);
    putU16(pkt.dstPort);
    putU32(pkt.seq);
    putU32(pkt.ack);
    out.push_back(5 << 4);
    out.push_back(pkt.tcpFlags);
    putU16(pkt.window);
    putU16(0);  // TCP checksum (not stored in header traces)
    putU16(0);  // urgent pointer
}

// ---- PcapSource ----------------------------------------------------

PcapSource::PcapSource(std::unique_ptr<util::ByteSource> bytes)
    : bytes_(std::move(bytes))
{
    uint8_t hdr[24];
    util::require(util::readFully(*bytes_, hdr, sizeof(hdr),
                                  "readPcap: missing global header") ==
                      sizeof(hdr),
                  "readPcap: missing global header");
    consumed_ += sizeof(hdr);

    uint32_t magic = util::loadLe32(hdr);
    switch (magic) {
      case magicUsec:     swapped_ = false; nanos_ = false; break;
      case magicUsecSwap: swapped_ = true;  nanos_ = false; break;
      case magicNsec:     swapped_ = false; nanos_ = true;  break;
      case magicNsecSwap: swapped_ = true;  nanos_ = true;  break;
      default:
        throw util::Error("readPcap: bad magic number");
    }
    uint32_t link = util::loadLe32(hdr + 20);
    if (swapped_)
        link = util::byteSwap32(link);
    util::require(link == linkRaw || link == linkEthernet,
                  "readPcap: unsupported link type");
    l2skip_ = link == linkEthernet ? 14 : 0;
}

size_t
PcapSource::read(std::span<PacketRecord> batch)
{
    size_t filled = 0;
    uint8_t rec[16];
    while (filled < batch.size()) {
        size_t n = util::readFully(
            *bytes_, rec, sizeof(rec),
            "readPcap: truncated record header");
        if (n == 0)
            break;  // clean end of file
        auto fix = [this](uint32_t v) {
            return swapped_ ? util::byteSwap32(v) : v;
        };
        uint32_t sec = fix(util::loadLe32(rec));
        uint32_t frac = fix(util::loadLe32(rec + 4));
        uint32_t capLen = fix(util::loadLe32(rec + 8));
        // Reject out-of-range fractional timestamps for *both*
        // magics: a nanosecond file must stay below 1e9 just as a
        // microsecond file must stay below 1e6 — otherwise corrupt
        // captures silently produce non-monotonic timestamps.
        util::require(frac < (nanos_ ? 1000000000u : 1000000u),
                      "readPcap: timestamp fraction out of range");
        // libpcap's MAXIMUM_SNAPLEN; anything above is corruption,
        // not capture data — refuse before allocating.
        util::require(capLen <= 262144,
                      "readPcap: capture length too large");

        body_.resize(capLen);
        if (capLen > 0)
            util::require(util::readFully(
                              *bytes_, body_.data(), capLen,
                              "readPcap: truncated record body") ==
                              capLen,
                          "readPcap: truncated record body");
        consumed_ += sizeof(rec) + capLen;

        PacketRecord &pkt = batch[filled];
        pkt = PacketRecord();
        pkt.timestampNs =
            static_cast<uint64_t>(sec) * 1000000000ull +
            (nanos_ ? frac : static_cast<uint64_t>(frac) * 1000ull);
        util::require(capLen >= l2skip_,
                      "readPcap: capture below link header size");
        parseIpv4Packet(body_.data() + l2skip_, capLen - l2skip_,
                        pkt);
        ++filled;
    }
    return filled;
}

// ---- PcapSink ------------------------------------------------------

PcapSink::PcapSink(std::unique_ptr<util::ByteSink> out, bool nanos)
    : out_(std::move(out)), nanos_(nanos)
{
    std::vector<uint8_t> hdr;
    util::storeLe32(hdr, nanos_ ? magicNsec : magicUsec);
    hdr.push_back(2); hdr.push_back(0);   // version major (LE)
    hdr.push_back(4); hdr.push_back(0);   // version minor (LE)
    util::storeLe32(hdr, 0);       // thiszone
    util::storeLe32(hdr, 0);       // sigfigs
    util::storeLe32(hdr, 65535);   // snaplen
    util::storeLe32(hdr, linkRaw);
    out_->write(hdr);
}

void
PcapSink::write(std::span<const PacketRecord> batch)
{
    buf_.clear();
    for (const auto &pkt : batch) {
        util::storeLe32(buf_, static_cast<uint32_t>(pkt.timestampNs /
                                             1000000000ull));
        uint32_t frac = nanos_
            ? static_cast<uint32_t>(pkt.timestampNs % 1000000000ull)
            : static_cast<uint32_t>((pkt.timestampNs / 1000ull) %
                                    1000000ull);
        util::storeLe32(buf_, frac);
        util::storeLe32(buf_, 40);                   // captured length
        util::storeLe32(buf_, pkt.ipTotalLength());  // original length
        appendIpv4TcpHeader(pkt, buf_);
    }
    out_->write(buf_);
}

// ---- whole-buffer wrappers -----------------------------------------

std::vector<uint8_t>
writePcap(const Trace &trace, bool nanos)
{
    auto vec = std::make_unique<util::VectorByteSink>();
    auto *raw = vec.get();
    PcapSink sink(std::move(vec), nanos);
    sink.write(std::span<const PacketRecord>(trace.packets()));
    sink.close();
    return raw->take();
}

Trace
readPcap(std::span<const uint8_t> data)
{
    PcapSource src(std::make_unique<util::BufferByteSource>(data));
    return readAllPackets(src);
}

void
writePcapFile(const Trace &trace, const std::string &path)
{
    PcapSink sink(std::make_unique<util::FileByteSink>(path));
    sink.write(std::span<const PacketRecord>(trace.packets()));
    sink.close();
}

Trace
readPcapFile(const std::string &path)
{
    PcapSource src(util::openByteSource(path));
    return readAllPackets(src);
}

} // namespace fcc::trace
