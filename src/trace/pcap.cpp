/**
 * @file
 * pcap savefile I/O: accepts both byte orders, microsecond and
 * nanosecond magics, and RAW or Ethernet link types; always writes
 * microsecond LINKTYPE_RAW files of bare IPv4+TCP headers.
 */

#include "trace/pcap.hpp"

#include <cstdio>
#include <memory>

#include "trace/tsh.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fcc::trace {

namespace {

constexpr uint32_t magicUsec = 0xa1b2c3d4u;
constexpr uint32_t magicUsecSwap = 0xd4c3b2a1u;
constexpr uint32_t magicNsec = 0xa1b23c4du;
constexpr uint32_t magicNsecSwap = 0x4d3cb2a1u;

constexpr uint32_t linkRaw = 101;
constexpr uint32_t linkEthernet = 1;

uint32_t
bswap32(uint32_t v)
{
    return (v >> 24) | ((v >> 8) & 0xff00u) |
           ((v << 8) & 0xff0000u) | (v << 24);
}

uint16_t
getU16be(const uint8_t *p)
{
    return static_cast<uint16_t>(p[0] << 8 | p[1]);
}

uint32_t
getU32be(const uint8_t *p)
{
    return static_cast<uint32_t>(p[0]) << 24 |
           static_cast<uint32_t>(p[1]) << 16 |
           static_cast<uint32_t>(p[2]) << 8 |
           static_cast<uint32_t>(p[3]);
}

/** Parse one raw IPv4 (+TCP prefix) body into @p pkt. */
void
parseIpBody(const uint8_t *body, size_t len, PacketRecord &pkt)
{
    util::require(len >= 20, "readPcap: truncated IP header");
    util::require((body[0] >> 4) == 4, "readPcap: not IPv4");
    size_t ihl = static_cast<size_t>(body[0] & 0x0f) * 4;
    util::require(ihl >= 20 && len >= ihl,
                  "readPcap: bad IP header length");
    uint16_t totalLen = getU16be(body + 2);
    pkt.ipId = getU16be(body + 4);
    pkt.protocol = body[9];
    pkt.srcIp = getU32be(body + 12);
    pkt.dstIp = getU32be(body + 16);

    const uint8_t *l4 = body + ihl;
    size_t l4len = len - ihl;
    if (pkt.protocol == ip_proto::Tcp) {
        util::require(l4len >= 16, "readPcap: truncated TCP header");
        pkt.srcPort = getU16be(l4);
        pkt.dstPort = getU16be(l4 + 2);
        pkt.seq = getU32be(l4 + 4);
        pkt.ack = getU32be(l4 + 8);
        size_t dataOff = static_cast<size_t>(l4[12] >> 4) * 4;
        util::require(dataOff >= 20, "readPcap: bad TCP data offset");
        pkt.tcpFlags = l4[13];
        pkt.window = l4len >= 16 ? getU16be(l4 + 14) : 0;
        size_t hdr = ihl + dataOff;
        pkt.payloadBytes = totalLen > hdr
            ? static_cast<uint16_t>(totalLen - hdr) : 0;
    } else if (pkt.protocol == ip_proto::Udp) {
        util::require(l4len >= 8, "readPcap: truncated UDP header");
        pkt.srcPort = getU16be(l4);
        pkt.dstPort = getU16be(l4 + 2);
        uint16_t udpLen = getU16be(l4 + 4);
        pkt.payloadBytes = udpLen > 8
            ? static_cast<uint16_t>(udpLen - 8) : 0;
    } else {
        pkt.payloadBytes = totalLen > ihl
            ? static_cast<uint16_t>(totalLen - ihl) : 0;
    }
}

struct FileCloser
{
    void operator()(std::FILE *f) const { if (f) std::fclose(f); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

std::vector<uint8_t>
writePcap(const Trace &trace)
{
    util::ByteWriter w;
    w.u32(magicUsec);
    w.u16(2);      // version major
    w.u16(4);      // version minor
    w.u32(0);      // thiszone
    w.u32(0);      // sigfigs
    w.u32(65535);  // snaplen
    w.u32(linkRaw);

    for (const auto &pkt : trace) {
        w.u32(static_cast<uint32_t>(pkt.timestampNs / 1000000000ull));
        w.u32(static_cast<uint32_t>((pkt.timestampNs / 1000ull) %
                                    1000000ull));
        w.u32(40);                    // captured length: headers only
        w.u32(pkt.ipTotalLength());   // original length

        // Reuse the TSH encoder's IP/TCP layout via a 1-packet trace
        // would be wasteful; emit the 40 header bytes directly.
        std::vector<uint8_t> hdr;
        hdr.reserve(40);
        auto putU16 = [&hdr](uint16_t v) {
            hdr.push_back(static_cast<uint8_t>(v >> 8));
            hdr.push_back(static_cast<uint8_t>(v));
        };
        auto putU32 = [&hdr](uint32_t v) {
            hdr.push_back(static_cast<uint8_t>(v >> 24));
            hdr.push_back(static_cast<uint8_t>(v >> 16));
            hdr.push_back(static_cast<uint8_t>(v >> 8));
            hdr.push_back(static_cast<uint8_t>(v));
        };
        hdr.push_back(0x45);
        hdr.push_back(0);
        putU16(pkt.ipTotalLength());
        putU16(pkt.ipId);
        putU16(0x4000);
        hdr.push_back(64);
        hdr.push_back(pkt.protocol);
        putU16(0);
        putU32(pkt.srcIp);
        putU32(pkt.dstIp);
        uint16_t csum = ipChecksum(
            std::span<const uint8_t>(hdr.data(), 20));
        hdr[10] = static_cast<uint8_t>(csum >> 8);
        hdr[11] = static_cast<uint8_t>(csum);

        putU16(pkt.srcPort);
        putU16(pkt.dstPort);
        putU32(pkt.seq);
        putU32(pkt.ack);
        hdr.push_back(5 << 4);
        hdr.push_back(pkt.tcpFlags);
        putU16(pkt.window);
        putU16(0);  // TCP checksum (not stored in header traces)
        putU16(0);  // urgent pointer

        w.bytes(hdr.data(), hdr.size());
    }
    return w.take();
}

Trace
readPcap(std::span<const uint8_t> data)
{
    util::require(data.size() >= 24, "readPcap: missing global header");
    util::ByteReader r(data);

    uint32_t magic = r.u32();
    bool swapped, nanos;
    switch (magic) {
      case magicUsec:     swapped = false; nanos = false; break;
      case magicUsecSwap: swapped = true;  nanos = false; break;
      case magicNsec:     swapped = false; nanos = true;  break;
      case magicNsecSwap: swapped = true;  nanos = true;  break;
      default:
        throw util::Error("readPcap: bad magic number");
    }
    auto fix = [swapped](uint32_t v) { return swapped ? bswap32(v) : v; };

    r.skip(2 + 2 + 4 + 4);  // version, thiszone, sigfigs
    r.skip(4);              // snaplen
    uint32_t link = fix(r.u32());
    util::require(link == linkRaw || link == linkEthernet,
                  "readPcap: unsupported link type");
    size_t l2skip = link == linkEthernet ? 14 : 0;

    Trace trace;
    while (r.remaining() > 0) {
        util::require(r.remaining() >= 16,
                      "readPcap: truncated record header");
        uint32_t sec = fix(r.u32());
        uint32_t frac = fix(r.u32());
        uint32_t capLen = fix(r.u32());
        r.skip(4);  // original length
        util::require(r.remaining() >= capLen,
                      "readPcap: truncated record body");

        PacketRecord pkt;
        pkt.timestampNs = static_cast<uint64_t>(sec) * 1000000000ull +
                          (nanos ? frac
                                 : static_cast<uint64_t>(frac) * 1000ull);
        util::require(capLen >= l2skip,
                      "readPcap: capture below link header size");
        const uint8_t *body = data.data() + r.position() + l2skip;
        parseIpBody(body, capLen - l2skip, pkt);
        r.skip(capLen);
        trace.add(pkt);
    }
    return trace;
}

void
writePcapFile(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    util::require(f != nullptr, "writePcapFile: cannot open output");
    auto bytes = writePcap(trace);
    size_t n = std::fwrite(bytes.data(), 1, bytes.size(), f.get());
    util::require(n == bytes.size(), "writePcapFile: short write");
}

Trace
readPcapFile(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    util::require(f != nullptr, "readPcapFile: cannot open input");
    std::vector<uint8_t> bytes;
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    return readPcap(bytes);
}

} // namespace fcc::trace
