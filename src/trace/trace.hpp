/**
 * @file
 * An in-memory packet trace: an ordered sequence of PacketRecords plus
 * aggregate queries every experiment needs (duration, byte volume,
 * time-window slicing).
 */

#ifndef FCC_TRACE_TRACE_HPP
#define FCC_TRACE_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/packet.hpp"

namespace fcc::trace {

/** Ordered (by capture time) sequence of packet headers. */
class Trace
{
  public:
    Trace() = default;
    explicit Trace(std::vector<PacketRecord> packets);

    /** Append a packet; call sortByTime() if appends are unordered. */
    void add(const PacketRecord &pkt) { packets_.push_back(pkt); }

    /** Stable-sort packets by timestamp. */
    void sortByTime();

    /** True when timestamps are non-decreasing. */
    bool isTimeOrdered() const;

    size_t size() const { return packets_.size(); }
    bool empty() const { return packets_.empty(); }

    const PacketRecord &operator[](size_t i) const { return packets_[i]; }
    PacketRecord &operator[](size_t i) { return packets_[i]; }

    auto begin() const { return packets_.begin(); }
    auto end() const { return packets_.end(); }
    auto begin() { return packets_.begin(); }
    auto end() { return packets_.end(); }

    const std::vector<PacketRecord> &packets() const { return packets_; }

    /** Capture span in seconds (0 for traces with < 2 packets). */
    double durationSec() const;

    /** Sum of IP total lengths (wire bytes at header+payload level). */
    uint64_t totalWireBytes() const;

    /** Sum of TCP payload bytes. */
    uint64_t totalPayloadBytes() const;

    /**
     * Copy of the packets whose timestamp lies in
     * [start, start + length) seconds relative to the first packet.
     */
    Trace sliceSeconds(double start, double length) const;

  private:
    std::vector<PacketRecord> packets_;
};

} // namespace fcc::trace

#endif // FCC_TRACE_TRACE_HPP
