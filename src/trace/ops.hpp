/**
 * @file
 * Trace manipulation utilities: merging, filtering and time
 * shifting. These are the operations a trace library's users reach
 * for when preparing inputs (combine captures from two links, keep
 * only one server's traffic, re-base timestamps) before compressing
 * or replaying.
 */

#ifndef FCC_TRACE_OPS_HPP
#define FCC_TRACE_OPS_HPP

#include <cstdint>
#include <functional>

#include "trace/trace.hpp"

namespace fcc::trace {

/** Packet predicate used by filter(). */
using PacketPredicate = std::function<bool(const PacketRecord &)>;

/**
 * Merge two time-ordered traces into one time-ordered trace
 * (stable: ties keep a-before-b order).
 *
 * @throws fcc::util::Error if either input is unordered.
 */
Trace merge(const Trace &a, const Trace &b);

/** Copy of the packets satisfying @p keep, in order. */
Trace filter(const Trace &input, const PacketPredicate &keep);

/**
 * Shift every timestamp so the first packet lands at
 * @p newStartNs (empty traces pass through).
 */
Trace rebaseTime(const Trace &input, uint64_t newStartNs);

// ---- ready-made predicates -------------------------------------------------

/** Packets whose source or destination port equals @p port. */
PacketPredicate portIs(uint16_t port);

/** Packets whose destination falls inside prefix/len. */
PacketPredicate dstInPrefix(uint32_t prefix, uint8_t prefixLen);

/** Packets captured in [startSec, endSec) relative to trace start.
 *  The returned predicate is bound to @p reference's first
 *  timestamp. */
PacketPredicate timeWindow(const Trace &reference, double startSec,
                           double endSec);

/** Conjunction / disjunction / negation of predicates. */
PacketPredicate allOf(PacketPredicate a, PacketPredicate b);
PacketPredicate anyOf(PacketPredicate a, PacketPredicate b);
PacketPredicate notOf(PacketPredicate a);

} // namespace fcc::trace

#endif // FCC_TRACE_OPS_HPP
