/**
 * @file
 * Header-level packet model.
 *
 * The paper works with TCP/IP header traces (no payload): the unit of
 * data is a 40-byte TCP/IP header plus timing. PacketRecord captures
 * every field any codec in this library reads, including the fields
 * the Van Jacobson baseline delta-encodes (sequence numbers, IP id,
 * window).
 */

#ifndef FCC_TRACE_PACKET_HPP
#define FCC_TRACE_PACKET_HPP

#include <cstdint>
#include <string>

namespace fcc::trace {

/** TCP header flag bits (RFC 793 order, low bit = FIN). */
namespace tcp_flags {
constexpr uint8_t Fin = 0x01;
constexpr uint8_t Syn = 0x02;
constexpr uint8_t Rst = 0x04;
constexpr uint8_t Psh = 0x08;
constexpr uint8_t Ack = 0x10;
constexpr uint8_t Urg = 0x20;
} // namespace tcp_flags

/** IP protocol numbers used by the library. */
namespace ip_proto {
constexpr uint8_t Tcp = 6;
constexpr uint8_t Udp = 17;
} // namespace ip_proto

/**
 * One captured packet header.
 *
 * All integral fields are host-order; the capture formats (TSH, pcap)
 * convert to/from network order at the file boundary. Sizes follow the
 * paper's conventions: a stored header is 40 B of TCP/IP header plus
 * timing, and payloadBytes is the TCP payload length implied by the IP
 * total length.
 */
struct PacketRecord
{
    uint64_t timestampNs = 0;  ///< absolute capture time, nanoseconds
    uint32_t srcIp = 0;        ///< IPv4 source address
    uint32_t dstIp = 0;        ///< IPv4 destination address
    uint16_t srcPort = 0;      ///< TCP/UDP source port
    uint16_t dstPort = 0;      ///< TCP/UDP destination port
    uint8_t protocol = ip_proto::Tcp;  ///< IP protocol number
    uint8_t tcpFlags = 0;      ///< TCP flag byte (tcp_flags bits)
    uint16_t payloadBytes = 0; ///< TCP payload length in bytes
    uint32_t seq = 0;          ///< TCP sequence number
    uint32_t ack = 0;          ///< TCP acknowledgment number
    uint16_t window = 0;       ///< TCP advertised window
    uint16_t ipId = 0;         ///< IP identification field

    /** IP total length implied by a 20 B IP + 20 B TCP header. */
    uint16_t ipTotalLength() const
    {
        return static_cast<uint16_t>(40 + payloadBytes);
    }

    /** Timestamp in (truncated) microseconds. */
    uint64_t timestampUs() const { return timestampNs / 1000; }
    /** Timestamp in seconds as a double. */
    double timestampSec() const
    {
        return static_cast<double>(timestampNs) * 1e-9;
    }

    bool hasSyn() const { return tcpFlags & tcp_flags::Syn; }
    bool hasAck() const { return tcpFlags & tcp_flags::Ack; }
    bool hasFin() const { return tcpFlags & tcp_flags::Fin; }
    bool hasRst() const { return tcpFlags & tcp_flags::Rst; }

    /** Human-readable one-line rendering (for debugging / examples). */
    std::string str() const;
};

/**
 * Field-wise total order on packets, extending timestamp order with
 * every header field as tie-breaker. Reconstruction paths that merge
 * concurrently produced packets (codec/fcc streaming flush, the
 * query subsystem's chunk merge) sort with this instead of a bare
 * timestamp comparison: equal-timestamp packets would otherwise be
 * emitted in an order that depends on batch boundaries — i.e. on the
 * thread count — breaking byte-exact reproducibility.
 */
bool packetCanonicalLess(const PacketRecord &a,
                         const PacketRecord &b);

/** Render an IPv4 address in dotted-quad notation. */
std::string formatIp(uint32_t addr);

/** Parse a dotted-quad IPv4 address. @throws fcc::util::Error */
uint32_t parseIp(const std::string &text);

/** Render a TCP flag byte like "SYN|ACK". */
std::string formatTcpFlags(uint8_t flags);

} // namespace fcc::trace

#endif // FCC_TRACE_PACKET_HPP
