/**
 * @file
 * The streaming trace I/O subsystem: TraceSource (pull) and
 * TraceSink (push) move packet headers in bounded batches, so no
 * layer above them ever materializes a whole trace.
 *
 * Concrete sources/sinks exist per capture format — TSH here, pcap in
 * pcap.hpp, pcapng in pcapng.hpp — all over the ByteSource/ByteSink
 * layer from util/io.hpp (mmap with stdio fallback, plus the gzip
 * decorator from codec/deflate/inflate_stream.hpp). openTraceSource()
 * auto-detects the container from magic bytes, transparently
 * unwrapping gzip; openTraceSink() picks the output format from the
 * file extension. The FCC streaming codec (codec/fcc/stream.hpp)
 * consumes and produces these interfaces, which makes every common
 * capture format a first-class compression workload.
 */

#ifndef FCC_TRACE_SOURCE_HPP
#define FCC_TRACE_SOURCE_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "trace/tsh.hpp"
#include "util/io.hpp"

namespace fcc::trace {

/**
 * Pull interface over a stream of packet headers.
 *
 * read() fills a caller-provided batch and returns how many records
 * were produced; 0 means end of stream. Implementations hold O(batch)
 * state, never the whole trace.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Fill up to batch.size() records; 0 = end of stream. */
    virtual size_t read(std::span<PacketRecord> batch) = 0;

    /**
     * Container-format bytes consumed so far (after any gzip layer —
     * i.e. TSH/pcap/pcapng bytes, not compressed bytes).
     */
    virtual uint64_t bytesConsumed() const = 0;
};

/**
 * Push interface accepting a stream of packet headers.
 *
 * close() finalizes the container and flushes; it is idempotent and
 * must be called for the output to be complete.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Append a batch. @throws fcc::util::Error on I/O failure. */
    virtual void write(std::span<const PacketRecord> batch) = 0;

    /** Finalize the container. @throws fcc::util::Error */
    virtual void close() = 0;

    /** Container bytes produced so far. */
    virtual uint64_t bytesWritten() const = 0;
};

// ---- TSH -----------------------------------------------------------

/** Streaming reader of flat 44-byte TSH records. */
class TshSource final : public TraceSource
{
  public:
    explicit TshSource(std::unique_ptr<util::ByteSource> bytes)
        : bytes_(std::move(bytes))
    {}

    size_t read(std::span<PacketRecord> batch) override;
    uint64_t bytesConsumed() const override { return consumed_; }

  private:
    std::unique_ptr<util::ByteSource> bytes_;
    std::vector<uint8_t> buf_;
    uint64_t consumed_ = 0;
};

/** Streaming writer of flat 44-byte TSH records. */
class TshSink final : public TraceSink
{
  public:
    explicit TshSink(std::unique_ptr<util::ByteSink> out)
        : out_(std::move(out))
    {}

    void write(std::span<const PacketRecord> batch) override;
    void close() override { out_->close(); }
    uint64_t bytesWritten() const override
    {
        return out_->bytesWritten();
    }

  private:
    std::unique_ptr<util::ByteSink> out_;
    std::vector<uint8_t> buf_;
};

// ---- in-memory adapters --------------------------------------------

/** Reads an in-memory Trace as a TraceSource (tests, benches). */
class MemoryTraceSource final : public TraceSource
{
  public:
    /** @p trace must outlive the source. */
    explicit MemoryTraceSource(const Trace &trace) : trace_(trace) {}

    size_t read(std::span<PacketRecord> batch) override;

    /** Logical size: what the packets occupy as flat TSH records. */
    uint64_t bytesConsumed() const override
    {
        return pos_ * tshRecordBytes;
    }

  private:
    const Trace &trace_;
    size_t pos_ = 0;
};

/** Collects written packets into an in-memory Trace. */
class CollectTraceSink final : public TraceSink
{
  public:
    /** @p out must outlive the sink. */
    explicit CollectTraceSink(Trace &out) : out_(out) {}

    void write(std::span<const PacketRecord> batch) override
    {
        for (const auto &pkt : batch)
            out_.add(pkt);
    }
    void close() override {}
    uint64_t bytesWritten() const override
    {
        return out_.size() * tshRecordBytes;
    }

  private:
    Trace &out_;
};

// ---- whole-stream helpers ------------------------------------------

/** Drain @p src into an in-memory Trace. */
Trace readAllPackets(TraceSource &src);

/** Write every packet of @p trace to @p sink and close it. */
void writeAllPackets(TraceSink &sink, const Trace &trace);

// ---- format detection and factories --------------------------------

/** On-disk container formats the subsystem can read and write. */
enum class TraceFormat { Tsh, Pcap, Pcapng };

/** Parsed --in-format / --out-format value. */
struct TraceFormatSpec
{
    bool autoDetect = true;          ///< sniff magic bytes
    TraceFormat format = TraceFormat::Tsh;  ///< when !autoDetect
    bool gzip = false;               ///< gzip-wrapped container
};

/** What detectTraceFormat() found. */
struct DetectedFormat
{
    TraceFormat format = TraceFormat::Tsh;
    bool gzip = false;  ///< outermost layer was a gzip member
};

/**
 * Identify a capture format from its first bytes (16 are enough for
 * every case). gzip is reported from the outer magic only — the
 * caller unwraps and re-detects the inner container.
 *
 * TSH has no magic number; it is accepted when the first record looks
 * like a plausible TSH header (IPv4 version/IHL nibble, sub-second
 * microsecond field). Anything else throws.
 *
 * @throws fcc::util::Error when no format matches (including inputs
 *         shorter than one TSH record's sniffable prefix).
 */
DetectedFormat detectTraceFormat(std::span<const uint8_t> head);

/**
 * Parse a CLI format name: "auto", "tsh", "pcap", "pcapng", each
 * optionally suffixed ".gz" (e.g. "pcapng.gz"); "auto" detects the
 * gzip layer by itself. @throws fcc::util::Error on unknown names.
 */
TraceFormatSpec parseTraceFormatSpec(const std::string &name);

/** Human-readable name of a detected format ("pcapng.gz" style). */
std::string traceFormatName(TraceFormat format, bool gzip = false);

/**
 * Open @p path as a streaming TraceSource.
 *
 * With an auto spec (the default) the container and an optional gzip
 * wrapper are detected from magic bytes; an explicit spec skips
 * detection. The file is memory-mapped when possible, with a
 * buffered-read fallback.
 *
 * @throws fcc::util::Error on I/O failure or undetectable format.
 */
std::unique_ptr<TraceSource>
openTraceSource(const std::string &path,
                const TraceFormatSpec &spec = {},
                DetectedFormat *detected = nullptr);

/**
 * Open @p path as a streaming TraceSink. An auto spec picks the
 * format from the extension (.pcap / .pcapng, else TSH). gzip output
 * is not supported.
 *
 * @throws fcc::util::Error on I/O failure or a gzip output request.
 */
std::unique_ptr<TraceSink>
openTraceSink(const std::string &path,
              const TraceFormatSpec &spec = {});

} // namespace fcc::trace

#endif // FCC_TRACE_SOURCE_HPP
