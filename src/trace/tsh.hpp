/**
 * @file
 * NLANR TSH (Time-Sequenced Header) trace format.
 *
 * This is the on-disk format the paper measures compression against: a
 * flat sequence of fixed 44-byte records, each holding a timestamp
 * (seconds + interface/microseconds word), the 20-byte IPv4 header and
 * the first 16 bytes of the TCP header. All header fields are network
 * byte order.
 *
 * Layout of one record:
 *   0..3   timestamp seconds (big-endian)
 *   4      interface number
 *   5..7   timestamp microseconds (24-bit big-endian)
 *   8..27  IPv4 header (20 bytes)
 *   28..43 TCP header prefix: ports, seq, ack, offset, flags, window
 */

#ifndef FCC_TRACE_TSH_HPP
#define FCC_TRACE_TSH_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace fcc::trace {

/** Size of one TSH record in bytes. */
constexpr size_t tshRecordBytes = 44;

/**
 * Append one 44-byte TSH record for @p pkt to @p out — the unit the
 * streaming TshSink and the whole-trace writeTsh() share.
 */
void encodeTshRecord(const PacketRecord &pkt, std::vector<uint8_t> &out);

/**
 * Decode one 44-byte TSH record. @p rec must hold at least
 * tshRecordBytes. @throws fcc::util::Error on a malformed record.
 */
PacketRecord decodeTshRecord(const uint8_t *rec);

/**
 * Serialize a trace to TSH bytes.
 *
 * The IPv4 header checksum is computed; timestamps are truncated to
 * microsecond precision (the format has no room for more).
 */
std::vector<uint8_t> writeTsh(const Trace &trace);

/**
 * Parse TSH bytes into a trace.
 *
 * @throws fcc::util::Error if the buffer is not a whole number of
 *         records or an IP header is malformed.
 */
Trace readTsh(std::span<const uint8_t> data);

/** Write a trace to a TSH file. @throws fcc::util::Error on I/O. */
void writeTshFile(const Trace &trace, const std::string &path);

/** Read a TSH file. @throws fcc::util::Error on I/O or bad data. */
Trace readTshFile(const std::string &path);

/**
 * Compute the RFC 791 Internet checksum of @p data (16-bit one's
 * complement sum). Exposed for tests and the pcap writer.
 */
uint16_t ipChecksum(std::span<const uint8_t> data);

} // namespace fcc::trace

#endif // FCC_TRACE_TSH_HPP
