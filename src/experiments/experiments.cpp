/**
 * @file
 * End-to-end experiment drivers: build the synthetic workload,
 * run every codec, the analytical models and the memory-profiled
 * kernels, and return the rows behind Figs. 1-3 and the §5 table.
 */

#include "experiments/experiments.hpp"

#include <memory>

#include "codec/compressor.hpp"
#include "codec/deflate/deflate.hpp"
#include "codec/models.hpp"
#include "codec/peuhkuri/peuhkuri.hpp"
#include "codec/vj/vj.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "netbench/apps.hpp"
#include "trace/transforms.hpp"
#include "trace/tsh.hpp"
#include "util/error.hpp"

namespace fcc::experiments {

std::vector<FileSizeRow>
runFileSizeComparison(const trace::WebGenConfig &webCfg,
                      const std::vector<double> &slices)
{
    util::require(!slices.empty(),
                  "runFileSizeComparison: no slice points");
    trace::WebTrafficGenerator gen(webCfg);
    trace::Trace full = gen.generate();

    codec::deflate::GzipTraceCompressor gzip;
    codec::vj::VjTraceCompressor vj;
    codec::peuhkuri::PeuhkuriTraceCompressor peuhkuri;
    codec::fcc::FccTraceCompressor fcc;

    std::vector<FileSizeRow> rows;
    for (double elapsed : slices) {
        trace::Trace slice = full.sliceSeconds(0.0, elapsed);
        FileSizeRow row;
        row.elapsedSec = elapsed;
        row.packets = slice.size();
        row.originalTshBytes = slice.size() * trace::tshRecordBytes;
        row.gzipBytes = gzip.compress(slice).size();
        row.vjBytes = vj.compress(slice).size();
        row.peuhkuriBytes = peuhkuri.compress(slice).size();
        row.fccBytes = fcc.compress(slice).size();
        rows.push_back(row);
    }
    return rows;
}

std::vector<RatioRow>
runRatioComparison(const trace::WebGenConfig &webCfg)
{
    trace::WebTrafficGenerator gen(webCfg);
    trace::Trace full = gen.generate();

    // Flow-length distribution feeding the analytical models.
    flow::FlowTable table;
    auto stats = flow::computeFlowStats(table.assemble(full), full);
    auto dist = stats.lengthDistribution();

    std::vector<RatioRow> rows;
    for (const auto &codecPtr : codec::makeAllCodecs()) {
        RatioRow row;
        row.method = codecPtr->name();
        row.measured = codec::measure(*codecPtr, full).ratio();
        if (row.method == "vj")
            row.analytical =
                codec::aggregateRatio(dist, codec::vjRatio);
        else if (row.method == "fcc")
            row.analytical =
                codec::aggregateRatio(dist, codec::fccRatio);
        else if (row.method == "peuhkuri")
            row.analytical = codec::peuhkuriRatio();
        rows.push_back(row);
    }
    return rows;
}

const char *
validationTraceName(ValidationTrace trace)
{
    switch (trace) {
      case ValidationTrace::Original:
        return "original";
      case ValidationTrace::Decompressed:
        return "decompressed";
      case ValidationTrace::Random:
        return "random";
      case ValidationTrace::FracExp:
        return "fracexp";
    }
    return "?";
}

const char *
kernelName(Kernel kernel)
{
    switch (kernel) {
      case Kernel::Route:
        return "route";
      case Kernel::Nat:
        return "nat";
      case Kernel::Rtr:
        return "rtr";
    }
    return "?";
}

namespace {

std::unique_ptr<netbench::PacketKernel>
makeKernel(Kernel kind,
           const std::vector<netbench::RouteEntry> &table,
           memsim::MemoryRecorder *recorder)
{
    switch (kind) {
      case Kernel::Route:
        return std::make_unique<netbench::RouteApp>(table, recorder);
      case Kernel::Nat:
        return std::make_unique<netbench::NatApp>(table, recorder);
      case Kernel::Rtr:
        return std::make_unique<netbench::RtrApp>(table, recorder);
    }
    throw util::Error("makeKernel: unknown kernel");
}

} // namespace

std::vector<ValidationResult>
runMemoryValidation(const ValidationConfig &cfg)
{
    // The four §6.1 traces.
    trace::WebTrafficGenerator gen(cfg.webCfg);
    trace::Trace original = gen.generate();

    codec::fcc::FccTraceCompressor fcc(cfg.fccCfg);
    trace::Trace decompressed =
        fcc.decompress(fcc.compress(original));

    trace::Trace random =
        trace::randomizeAddresses(original, cfg.randomSeed);

    trace::FracExpConfig fracCfg;
    fracCfg.seed = cfg.randomSeed + 1;
    fracCfg.packetCount = original.size();
    // Match the original's mean inter-packet time so the temporal
    // scale is comparable.
    if (original.size() > 1)
        fracCfg.meanIptUs = original.durationSec() * 1e6 /
                            static_cast<double>(original.size() - 1);
    trace::Trace fracexp = trace::generateFracExp(fracCfg);

    // The routing table serves the original traffic (a share of its
    // prefixes is derived from the original's destinations, §6.1).
    std::vector<uint32_t> dsts;
    dsts.reserve(original.size());
    for (const auto &pkt : original)
        dsts.push_back(pkt.dstIp);
    auto table = netbench::generateRoutingTable(cfg.routingEntries,
                                                cfg.tableSeed, dsts);

    std::vector<ValidationResult> results;
    const std::pair<ValidationTrace, const trace::Trace *> runs[] = {
        {ValidationTrace::Original, &original},
        {ValidationTrace::Decompressed, &decompressed},
        {ValidationTrace::Random, &random},
        {ValidationTrace::FracExp, &fracexp},
    };
    for (const auto &[kind, tracePtr] : runs) {
        // Fresh recorder (and cold cache) per trace.
        memsim::MemoryRecorder recorder(cfg.cache);
        auto kernel = makeKernel(cfg.kernel, table, &recorder);
        ValidationResult result;
        result.trace = kind;
        result.samples =
            netbench::profileTrace(*kernel, *tracePtr, recorder);
        results.push_back(std::move(result));
    }
    return results;
}

} // namespace fcc::experiments
