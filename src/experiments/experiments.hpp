/**
 * @file
 * End-to-end experiment drivers reproducing the paper's evaluation:
 *
 *  - E1/Fig. 1 — file size vs elapsed time for the original TSH file
 *    and the four compression methods;
 *  - E2/§5     — measured vs analytical compression-ratio table;
 *  - E3/Fig. 2 — per-packet memory-access distributions of the Radix
 *    Tree kernels over the four §6.1 traces;
 *  - E4/Fig. 3 — per-packet cache-miss-rate buckets over the same
 *    traces.
 *
 * The bench binaries and examples are thin printers over these
 * functions, so every figure is reproducible from library code.
 */

#ifndef FCC_EXPERIMENTS_EXPERIMENTS_HPP
#define FCC_EXPERIMENTS_EXPERIMENTS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "codec/fcc/fcc_codec.hpp"
#include "memsim/cache_model.hpp"
#include "memsim/memory_recorder.hpp"
#include "trace/web_gen.hpp"

namespace fcc::experiments {

// ---- E1: Figure 1 ---------------------------------------------------------

/** One Figure 1 row: sizes at a given elapsed-time slice. */
struct FileSizeRow
{
    double elapsedSec = 0;
    uint64_t packets = 0;
    uint64_t originalTshBytes = 0;
    uint64_t gzipBytes = 0;
    uint64_t vjBytes = 0;
    uint64_t peuhkuriBytes = 0;
    uint64_t fccBytes = 0;
};

/**
 * Reproduce Figure 1: compress growing prefixes of a synthetic web
 * trace with every method.
 *
 * @param webCfg workload configuration (duration bounds the sweep).
 * @param slices elapsed-time points, e.g. {10, 20, ..., 100}.
 */
std::vector<FileSizeRow>
runFileSizeComparison(const trace::WebGenConfig &webCfg,
                      const std::vector<double> &slices);

// ---- E2: §5 ratio table -----------------------------------------------------

/** Measured and analytical ratio of one method. */
struct RatioRow
{
    std::string method;
    double measured = 0;    ///< compressed / original TSH bytes
    double analytical = 0;  ///< §5 model (0 when no model applies)
};

/** Reproduce the §5 comparison (gzip, vj, peuhkuri, fcc). */
std::vector<RatioRow>
runRatioComparison(const trace::WebGenConfig &webCfg);

// ---- E3/E4: Figures 2 and 3 -----------------------------------------------

/** The four §6.1 traces. */
enum class ValidationTrace
{
    Original,     ///< synthetic web trace (RedIRIS stand-in)
    Decompressed, ///< FCC round trip of Original
    Random,       ///< random destinations, same temporal pattern
    FracExp,      ///< multiplicative addresses + exponential times
};

/** Human-readable trace label as used in the figures. */
const char *validationTraceName(ValidationTrace trace);

/** Which §6 kernel processes the packets. */
enum class Kernel { Route, Nat, Rtr };

const char *kernelName(Kernel kernel);

/** Configuration of the memory-performance validation. */
struct ValidationConfig
{
    trace::WebGenConfig webCfg;       ///< the Original trace
    codec::fcc::FccConfig fccCfg;     ///< compressor under test
    size_t routingEntries = 20000;    ///< synthetic table size
    uint64_t tableSeed = 97;
    uint64_t randomSeed = 41;         ///< Random-trace addresses
    memsim::CacheConfig cache;        ///< §6.2 cache geometry
    Kernel kernel = Kernel::Route;
};

/** Per-trace per-packet samples of one validation run. */
struct ValidationResult
{
    ValidationTrace trace;
    std::vector<memsim::PacketSample> samples;
};

/**
 * Reproduce the §6 study: build the four traces, run the selected
 * kernel over each against the same routing table (fresh cache per
 * trace), and return the per-packet samples behind Figures 2 and 3.
 */
std::vector<ValidationResult>
runMemoryValidation(const ValidationConfig &cfg);

} // namespace fcc::experiments

#endif // FCC_EXPERIMENTS_EXPERIMENTS_HPP
