/**
 * @file
 * Analytical compression-ratio models of paper §5 (equations 5-8).
 *
 * The paper assumes ~50 stored bytes per packet (40 B TCP/IP header
 * plus timing) and derives, for a flow of n packets:
 *
 *   Van Jacobson (eq. 5):  r_vj(n) = (hdr + minEnc*(n-1)) / (hdr*n)
 *   Proposed     (eq. 7):  r(n)    = flowBytes / (hdr*n)
 *
 * and aggregates them over the flow-length distribution P_n
 * (eqs. 6 and 8). Peuhkuri's method is modeled as a constant
 * bytes-per-packet bound (~8/50 = 16 %).
 */

#ifndef FCC_CODEC_MODELS_HPP
#define FCC_CODEC_MODELS_HPP

#include <cstdint>
#include <vector>

namespace fcc::codec {

/** Parameters of the analytical models. */
struct ModelParams
{
    /** Stored bytes per packet in the original trace (paper: 50). */
    double headerBytes = 50.0;
    /** Van Jacobson minimal encoded header (§5: 6 bytes). */
    double vjMinEncoded = 6.0;
    /** Proposed method bytes per flow in time-seq (§5: 8 bytes). */
    double fccFlowBytes = 8.0;
    /** Peuhkuri per-packet record bytes (§5 bound: 16 % of 50). */
    double peuhkuriPacketBytes = 8.0;
};

/** Eq. 5 — Van Jacobson ratio for an n-packet flow. */
double vjRatio(uint32_t n, const ModelParams &params = {});

/** Eq. 7 — proposed-method ratio for an n-packet flow. */
double fccRatio(uint32_t n, const ModelParams &params = {});

/** Peuhkuri per-packet bound (independent of n). */
double peuhkuriRatio(const ModelParams &params = {});

/**
 * Eqs. 6 / 8 — aggregate a per-flow-length ratio model over a
 * flow-length distribution.
 *
 * @param lengthDist (n, P_n) pairs; P_n sums to ~1.
 * @param perLength  per-length ratio function (vjRatio / fccRatio).
 * @return total compressed bytes over total original bytes, i.e.
 *         sum(P_n * n * r(n)) / sum(P_n * n).
 */
double
aggregateRatio(const std::vector<std::pair<uint32_t, double>> &lengthDist,
               double (*perLength)(uint32_t, const ModelParams &),
               const ModelParams &params = {});

} // namespace fcc::codec

#endif // FCC_CODEC_MODELS_HPP
