/**
 * @file
 * The analytical ratio models of §5: per-flow-length equations 5
 * and 7 and their aggregation over a flow-length distribution
 * (equations 6 and 8).
 */

#include "codec/models.hpp"

#include "util/error.hpp"

namespace fcc::codec {

double
vjRatio(uint32_t n, const ModelParams &params)
{
    util::require(n >= 1, "vjRatio: flow length must be >= 1");
    // First packet ships the full header; every later packet costs
    // the minimal encoded header.
    return (params.headerBytes +
            params.vjMinEncoded * static_cast<double>(n - 1)) /
           (params.headerBytes * static_cast<double>(n));
}

double
fccRatio(uint32_t n, const ModelParams &params)
{
    util::require(n >= 1, "fccRatio: flow length must be >= 1");
    // One fixed-size time-seq record per flow; template datasets are
    // asymptotically constant and excluded from the per-flow model.
    return params.fccFlowBytes /
           (params.headerBytes * static_cast<double>(n));
}

double
peuhkuriRatio(const ModelParams &params)
{
    return params.peuhkuriPacketBytes / params.headerBytes;
}

double
aggregateRatio(
    const std::vector<std::pair<uint32_t, double>> &lengthDist,
    double (*perLength)(uint32_t, const ModelParams &),
    const ModelParams &params)
{
    util::require(!lengthDist.empty(),
                  "aggregateRatio: empty length distribution");
    double compressed = 0.0;
    double original = 0.0;
    for (const auto &[n, p] : lengthDist) {
        util::require(p >= 0.0, "aggregateRatio: negative probability");
        double weight = p * static_cast<double>(n);
        compressed += weight * perLength(n, params);
        original += weight;
    }
    util::require(original > 0.0,
                  "aggregateRatio: distribution has zero mass");
    return compressed / original;
}

} // namespace fcc::codec
