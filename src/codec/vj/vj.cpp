/**
 * @file
 * RFC 1144 delta encoder/decoder over directional TCP streams:
 * change-mask + 3-byte CID + 2-byte time delta per packet, full
 * headers on new or desynchronized connections.
 */

#include "codec/vj/vj.hpp"

#include <unordered_map>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace fcc::codec::vj {

namespace {

constexpr uint32_t magic = 0x314a4a56u;  // "VJJ1"
constexpr uint32_t maxCid = (1u << 24) - 1;

/** Directional 5-tuple (VJ state is per unidirectional stream). */
struct DirKey
{
    uint32_t srcIp, dstIp;
    uint16_t srcPort, dstPort;
    uint8_t protocol;

    bool operator==(const DirKey &) const = default;
};

struct DirKeyHash
{
    size_t
    operator()(const DirKey &key) const noexcept
    {
        uint64_t h = util::mix64(
            (static_cast<uint64_t>(key.srcIp) << 32) | key.dstIp);
        h = util::hashCombine(
            h, (static_cast<uint64_t>(key.srcPort) << 24) |
                   (static_cast<uint64_t>(key.dstPort) << 8) |
                   key.protocol);
        return static_cast<size_t>(h);
    }
};

DirKey
keyOf(const trace::PacketRecord &pkt)
{
    return DirKey{pkt.srcIp, pkt.dstIp, pkt.srcPort, pkt.dstPort,
                  pkt.protocol};
}

/** Per-flow predictor state: the previous packet, at us precision. */
struct FlowState
{
    trace::PacketRecord prev;
    uint64_t prevUs = 0;
};

uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^
           -static_cast<int64_t>(v & 1);
}

/** Sequence number a packet is predicted to carry (RFC 1144 rule). */
uint32_t
predictedSeq(const trace::PacketRecord &prev)
{
    uint32_t next = prev.seq + prev.payloadBytes;
    if (prev.tcpFlags &
        (trace::tcp_flags::Syn | trace::tcp_flags::Fin))
        ++next;
    return next;
}

void
putCid(util::ByteWriter &w, uint32_t cid)
{
    w.u8(static_cast<uint8_t>(cid));
    w.u8(static_cast<uint8_t>(cid >> 8));
    w.u8(static_cast<uint8_t>(cid >> 16));
}

uint32_t
getCid(util::ByteReader &r)
{
    uint32_t cid = r.u8();
    cid |= static_cast<uint32_t>(r.u8()) << 8;
    cid |= static_cast<uint32_t>(r.u8()) << 16;
    return cid;
}

void
writeFull(util::ByteWriter &w, uint32_t cid,
          const trace::PacketRecord &pkt)
{
    w.u8(mask::Full);
    putCid(w, cid);
    w.u64(pkt.timestampUs());
    w.u32(pkt.srcIp);
    w.u32(pkt.dstIp);
    w.u16(pkt.srcPort);
    w.u16(pkt.dstPort);
    w.u8(pkt.protocol);
    w.u8(pkt.tcpFlags);
    w.u16(pkt.payloadBytes);
    w.u32(pkt.seq);
    w.u32(pkt.ack);
    w.u16(pkt.window);
    w.u16(pkt.ipId);
}

} // namespace

std::vector<uint8_t>
VjTraceCompressor::compress(const trace::Trace &trace) const
{
    util::require(trace.isTimeOrdered(),
                  "vj: input trace must be time-ordered");
    util::ByteWriter w;
    w.u32(magic);
    w.varint(trace.size());

    std::unordered_map<DirKey, uint32_t, DirKeyHash> cids;
    std::vector<FlowState> states;

    for (const auto &pkt : trace) {
        DirKey key = keyOf(pkt);
        auto it = cids.find(key);
        if (it == cids.end()) {
            util::require(states.size() <= maxCid,
                          "vj: more than 2^24 flows");
            uint32_t cid = static_cast<uint32_t>(states.size());
            cids.emplace(key, cid);
            states.push_back(
                FlowState{pkt, pkt.timestampUs()});
            writeFull(w, cid, pkt);
            continue;
        }

        uint32_t cid = it->second;
        FlowState &state = states[cid];
        const trace::PacketRecord &prev = state.prev;

        uint64_t nowUs = pkt.timestampUs();
        uint64_t timeDelta = nowUs - state.prevUs;

        uint8_t changeMask = 0;
        if (pkt.seq != predictedSeq(prev))
            changeMask |= mask::Seq;
        if (pkt.ack != prev.ack)
            changeMask |= mask::Ack;
        if (pkt.window != prev.window)
            changeMask |= mask::Window;
        if (pkt.ipId != static_cast<uint16_t>(prev.ipId + 1))
            changeMask |= mask::IpId;
        if (pkt.payloadBytes != prev.payloadBytes)
            changeMask |= mask::Payload;
        if (pkt.tcpFlags != prev.tcpFlags)
            changeMask |= mask::Flags;
        if (timeDelta > 0xffff)
            changeMask |= mask::Time;

        w.u8(changeMask);
        putCid(w, cid);
        w.u16(static_cast<uint16_t>(timeDelta));
        if (changeMask & mask::Time)
            w.varint(timeDelta >> 16);
        if (changeMask & mask::Seq)
            w.varint(zigzag(static_cast<int64_t>(pkt.seq) -
                            static_cast<int64_t>(predictedSeq(prev))));
        if (changeMask & mask::Ack)
            w.varint(zigzag(static_cast<int64_t>(pkt.ack) -
                            static_cast<int64_t>(prev.ack)));
        if (changeMask & mask::Window)
            w.u16(pkt.window);
        if (changeMask & mask::IpId)
            w.varint(zigzag(static_cast<int16_t>(
                pkt.ipId - static_cast<uint16_t>(prev.ipId + 1))));
        if (changeMask & mask::Payload)
            w.varint(pkt.payloadBytes);
        if (changeMask & mask::Flags)
            w.u8(pkt.tcpFlags);

        state.prev = pkt;
        state.prevUs = nowUs;
    }
    return w.take();
}

trace::Trace
VjTraceCompressor::decompress(std::span<const uint8_t> data) const
{
    util::ByteReader r(data);
    util::require(r.remaining() >= 4 && r.u32() == magic,
                  "vj: bad magic");
    uint64_t count = r.varint();

    std::vector<FlowState> states;
    trace::Trace out;

    for (uint64_t i = 0; i < count; ++i) {
        uint8_t changeMask = r.u8();
        uint32_t cid = getCid(r);

        if (changeMask & mask::Full) {
            util::require(changeMask == mask::Full,
                          "vj: full record with stray mask bits");
            util::require(cid == states.size(),
                          "vj: unexpected CID in full record");
            trace::PacketRecord pkt;
            uint64_t us = r.u64();
            pkt.timestampNs = us * 1000ull;
            pkt.srcIp = r.u32();
            pkt.dstIp = r.u32();
            pkt.srcPort = r.u16();
            pkt.dstPort = r.u16();
            pkt.protocol = r.u8();
            pkt.tcpFlags = r.u8();
            pkt.payloadBytes = r.u16();
            pkt.seq = r.u32();
            pkt.ack = r.u32();
            pkt.window = r.u16();
            pkt.ipId = r.u16();
            states.push_back(FlowState{pkt, us});
            out.add(pkt);
            continue;
        }

        util::require(cid < states.size(), "vj: unknown CID");
        FlowState &state = states[cid];
        const trace::PacketRecord &prev = state.prev;

        uint64_t timeDelta = r.u16();
        if (changeMask & mask::Time)
            timeDelta |= r.varint() << 16;

        trace::PacketRecord pkt = prev;
        pkt.seq = predictedSeq(prev);
        pkt.ipId = static_cast<uint16_t>(prev.ipId + 1);

        uint64_t nowUs = state.prevUs + timeDelta;
        pkt.timestampNs = nowUs * 1000ull;
        if (changeMask & mask::Seq)
            pkt.seq = static_cast<uint32_t>(
                static_cast<int64_t>(pkt.seq) +
                unzigzag(r.varint()));
        if (changeMask & mask::Ack)
            pkt.ack = static_cast<uint32_t>(
                static_cast<int64_t>(prev.ack) +
                unzigzag(r.varint()));
        if (changeMask & mask::Window)
            pkt.window = r.u16();
        if (changeMask & mask::IpId)
            pkt.ipId = static_cast<uint16_t>(
                pkt.ipId +
                static_cast<int16_t>(unzigzag(r.varint())));
        if (changeMask & mask::Payload)
            pkt.payloadBytes = static_cast<uint16_t>(r.varint());
        if (changeMask & mask::Flags)
            pkt.tcpFlags = r.u8();

        state.prev = pkt;
        state.prevUs = nowUs;
        out.add(pkt);
    }
    util::require(r.exhausted(), "vj: trailing bytes after stream");
    return out;
}

} // namespace fcc::codec::vj
