/**
 * @file
 * Van Jacobson TCP/IP header compression (RFC 1144), adapted for
 * high-speed trace storage exactly as the paper describes (§5):
 *
 *  - a 2-byte time stamp (delta) is added to each encoded header;
 *  - the flow (connection) identifier is widened from 1 to 3 bytes,
 *    because a high-speed link carries far more concurrent flows than
 *    a serial line;
 *  - the TCP checksum is not stored;
 *  - the resulting minimal encoded header is 6 bytes: 1 change-mask
 *    byte + 3-byte CID + 2-byte time delta.
 *
 * The scheme is delta-based and lossless over the stored fields: the
 * first packet of each flow ships a full header; subsequent packets
 * ship only the fields that deviate from their RFC-1144 predictions
 * (sequence advances by the previous payload, the IP id by one, all
 * else unchanged).
 */

#ifndef FCC_CODEC_VJ_VJ_HPP
#define FCC_CODEC_VJ_VJ_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "codec/compressor.hpp"

namespace fcc::codec::vj {

/** Change-mask bits of a compressed VJ record. */
namespace mask {
constexpr uint8_t Seq = 0x01;     ///< explicit sequence delta
constexpr uint8_t Ack = 0x02;     ///< explicit ack delta
constexpr uint8_t Window = 0x04;  ///< explicit window value
constexpr uint8_t IpId = 0x08;    ///< explicit IP-id delta
constexpr uint8_t Payload = 0x10; ///< explicit payload length
constexpr uint8_t Flags = 0x20;   ///< explicit TCP flag byte
constexpr uint8_t Time = 0x40;    ///< 4 extra time-delta bytes
// 0x80 marks a FULL record; never set on compressed records.
constexpr uint8_t Full = 0x80;
} // namespace mask

/** Paper-visible constants of the adapted scheme. */
constexpr size_t cidBytes = 3;
constexpr size_t timeDeltaBytes = 2;
constexpr size_t minEncodedBytes = 1 + cidBytes + timeDeltaBytes;

/**
 * The Van Jacobson baseline compressor of Figure 1. Lossless over
 * every field PacketRecord stores.
 */
class VjTraceCompressor : public TraceCompressor
{
  public:
    std::string name() const override { return "vj"; }
    bool lossless() const override { return true; }

    std::vector<uint8_t>
    compress(const trace::Trace &trace) const override;

    trace::Trace
    decompress(std::span<const uint8_t> data) const override;
};

} // namespace fcc::codec::vj

#endif // FCC_CODEC_VJ_VJ_HPP
