/**
 * @file
 * Fidelity tiers of the FCC3 container: deliberately lossy profiles
 * that trade reconstruction detail for compression ratio, applied as
 * a Datasets -> Datasets transform immediately before columnar
 * serialization (docs/FIDELITY.md; wire format in docs/FORMAT.md
 * §4.5).
 *
 *  - exact:     today's behaviour, bit-identical output (no tag on
 *               the wire — the default profile is the absence of
 *               one);
 *  - quantized: per-flow first timestamps floored to a configurable
 *               microsecond grid; every other column unchanged;
 *  - header:    per-packet payload size classes, timing structure
 *               (dependence bits, RTTs, exact long-flow inter-packet
 *               times) and addressing kept; TCP flag classes of all
 *               packets after the first normalized away, then the
 *               template store re-deduplicated — the S-value detail
 *               is what gets dropped;
 *  - flow:      per-flow records only (first timestamp, packet and
 *               payload-byte counts, reconstruction-rule duration,
 *               server address); no per-packet columns survive, so
 *               packet reconstruction is impossible by construction
 *               and decoders must error cleanly instead.
 */

#ifndef FCC_CODEC_FCC_FIDELITY_HPP
#define FCC_CODEC_FCC_FIDELITY_HPP

#include <cstdint>
#include <string>

namespace fcc::codec::fcc {

struct Datasets;

/** The four fidelity tiers, in decreasing reconstruction detail.
 *  Values are the on-wire fidelity tags (FORMAT.md §4.5); Exact is
 *  never written — an exact file carries no fidelity header at all,
 *  so it stays byte-identical to pre-fidelity writers. */
enum class Fidelity : uint8_t
{
    Exact = 0,
    Quantized = 1,
    Header = 2,
    Flow = 3,
};

/**
 * Bit 6 of the FCC3 column-count byte: set when a fidelity profile
 * header (tag byte + parameter varint) follows the column-count
 * byte. Readers that predate fidelity profiles reject the byte via
 * their column-count check instead of misreading the file.
 */
constexpr uint8_t fidelityProfileFlag = 0x40;

/** "exact" / "quantized" / "header" / "flow". */
const char *fidelityName(Fidelity fidelity);

/** Parse a name accepted by fidelityName(). @throws Error */
Fidelity parseFidelityName(const std::string &name);

/**
 * Reconstruction-side knobs the lossy transforms need (a subset of
 * FccConfig, kept free of it so the data-model layer stays below the
 * codec front door).
 */
struct FidelityParams
{
    /** Quantized tier: timestamp grid in microseconds (>= 1). */
    uint64_t quantumUs = 1000;
    /** Representative payload bytes of size class 1 (Small). */
    uint16_t smallPayload = 400;
    /** Representative payload bytes of size class 2 (Large). */
    uint16_t largePayload = 1460;
    /** Spacing of non-dependent packets in the §4 reconstruction. */
    uint32_t defaultGapUs = 300;
};

/**
 * Degrade @p datasets to @p fidelity. Exact returns an unchanged
 * copy; the lossy tiers return datasets whose `fidelity` field (and,
 * for Quantized, `quantumUs`) is set, ready for serializeColumnar().
 * The Flow tier moves everything into Datasets::flowRecords and
 * leaves the template/time-seq datasets empty — its payload-byte and
 * duration fields are computed with the same size-class and timing
 * rules the §4 reconstruction uses, so flow-level aggregates agree
 * with what an exact-tier decode would measure.
 *
 * @throws fcc::util::Error when the input datasets are inconsistent
 *         or already degraded below Exact.
 */
Datasets applyFidelity(const Datasets &datasets, Fidelity fidelity,
                       const FidelityParams &params);

} // namespace fcc::codec::fcc

#endif // FCC_CODEC_FCC_FIDELITY_HPP
