/**
 * @file
 * The lossy fidelity transforms (docs/FIDELITY.md): each tier is a
 * pure Datasets -> Datasets function applied just before columnar
 * serialization, so every container/backend/index combination of the
 * FCC3 writer works on degraded data unchanged. The Flow tier's
 * derived fields (payload bytes, duration) are computed with the
 * same size-class and timing rules the §4 reconstruction uses — the
 * numbers a consumer reads from a flow-tier archive are exactly what
 * it would have measured on an exact-tier decode.
 */

#include "codec/fcc/fidelity.hpp"

#include <algorithm>
#include <map>

#include "codec/fcc/datasets.hpp"
#include "codec/field/field_codec.hpp"
#include "util/error.hpp"

namespace fcc::codec::fcc {

const char *
fidelityName(Fidelity fidelity)
{
    switch (fidelity) {
      case Fidelity::Exact:
        return "exact";
      case Fidelity::Quantized:
        return "quantized";
      case Fidelity::Header:
        return "header";
      case Fidelity::Flow:
        return "flow";
    }
    return "?";
}

Fidelity
parseFidelityName(const std::string &name)
{
    const Fidelity all[] = {Fidelity::Exact, Fidelity::Quantized,
                            Fidelity::Header, Fidelity::Flow};
    for (Fidelity fidelity : all)
        if (name == fidelityName(fidelity))
            return fidelity;
    throw util::Error("unknown fidelity tier: " + name);
}

namespace {

/** Floor every per-flow timestamp to the grid (order-preserving). */
Datasets
quantize(const Datasets &in, uint64_t quantumUs)
{
    util::require(quantumUs >= 1,
                  "fcc fidelity: quantum must be >= 1 us");
    Datasets out = in;
    std::vector<uint64_t> times(out.timeSeq.size());
    for (size_t i = 0; i < out.timeSeq.size(); ++i)
        times[i] = out.timeSeq[i].firstTimestampUs;
    field::floorToGrid(times, quantumUs);
    for (size_t i = 0; i < out.timeSeq.size(); ++i)
        out.timeSeq[i].firstTimestampUs = times[i];
    out.fidelity = Fidelity::Quantized;
    out.quantumUs = quantumUs;
    return out;
}

/**
 * Normalize the flag class of every packet after the first to Ack
 * (the first packet's class anchors the direction chain, so it
 * stays), keeping dependence and size class. Templates that collide
 * after the rewrite are merged and the time-seq remapped — that
 * merge, plus the collapsed short_s/long_s alphabets, is where the
 * tier's ratio win comes from.
 */
Datasets
dropFlagDetail(const Datasets &in)
{
    flow::Characterizer chi(in.weights);
    auto normalize = [&](std::vector<uint16_t> &values) {
        for (size_t i = 1; i < values.size(); ++i) {
            flow::PacketClass cls = chi.decode(values[i]);
            cls.flag = flow::FlagClass::Ack;
            values[i] = chi.encode(cls);
        }
    };

    Datasets out = in;
    out.fidelity = Fidelity::Header;

    // Short templates: normalize, then merge the collisions. The
    // remap preserves first-appearance order, so the result is
    // deterministic and independent of the original template count.
    std::map<std::vector<uint16_t>, uint32_t> seenShort;
    std::vector<uint32_t> shortRemap(out.shortTemplates.size());
    std::vector<flow::SfVector> mergedShort;
    for (size_t t = 0; t < out.shortTemplates.size(); ++t) {
        normalize(out.shortTemplates[t].values);
        auto [it, isNew] = seenShort.try_emplace(
            out.shortTemplates[t].values,
            static_cast<uint32_t>(mergedShort.size()));
        if (isNew)
            mergedShort.push_back(std::move(out.shortTemplates[t]));
        shortRemap[t] = it->second;
    }
    out.shortTemplates = std::move(mergedShort);

    // Long templates carry exact inter-packet times, so two merge
    // only when both the normalized S values and the timing match.
    std::map<std::pair<std::vector<uint16_t>, std::vector<uint64_t>>,
             uint32_t>
        seenLong;
    std::vector<uint32_t> longRemap(out.longTemplates.size());
    std::vector<LongTemplate> mergedLong;
    for (size_t t = 0; t < out.longTemplates.size(); ++t) {
        normalize(out.longTemplates[t].sValues);
        auto [it, isNew] = seenLong.try_emplace(
            std::make_pair(out.longTemplates[t].sValues,
                           out.longTemplates[t].iptUs),
            static_cast<uint32_t>(mergedLong.size()));
        if (isNew)
            mergedLong.push_back(std::move(out.longTemplates[t]));
        longRemap[t] = it->second;
    }
    out.longTemplates = std::move(mergedLong);

    for (TimeSeqRecord &rec : out.timeSeq) {
        auto &remap = rec.isLong ? longRemap : shortRemap;
        util::require(rec.templateIndex < remap.size(),
                      "fcc: template index out of range");
        rec.templateIndex = remap[rec.templateIndex];
    }
    return out;
}

/**
 * Collapse every flow to one FlowRecord, using the reconstruction
 * rules for the derived fields: payload bytes from the size-class
 * representative sizes, duration from exact inter-packet times (long
 * flows) or dependent-RTT/fixed-gap spacing (short flows) — the same
 * arithmetic buildArchiveIndex() uses for its maxEndUs bound.
 */
Datasets
collapseToFlows(const Datasets &in, const FidelityParams &params)
{
    flow::Characterizer chi(in.weights);
    auto payloadOf = [&](uint16_t s) -> uint64_t {
        switch (chi.decode(s).size) {
          case flow::SizeClass::Small:
            return params.smallPayload;
          case flow::SizeClass::Large:
            return params.largePayload;
          default:
            return 0;
        }
    };

    struct TemplateSummary
    {
        uint64_t payloadBytes = 0;
        uint64_t dependentSteps = 0;
        uint64_t otherSteps = 0;
        uint64_t durationUs = 0;  ///< long templates: exact
        uint32_t packets = 0;
    };
    std::vector<TemplateSummary> shortSum(in.shortTemplates.size());
    for (size_t t = 0; t < in.shortTemplates.size(); ++t) {
        const auto &values = in.shortTemplates[t].values;
        shortSum[t].packets = static_cast<uint32_t>(values.size());
        for (size_t i = 0; i < values.size(); ++i) {
            shortSum[t].payloadBytes += payloadOf(values[i]);
            if (i == 0)
                continue;
            if (chi.decode(values[i]).dependent)
                ++shortSum[t].dependentSteps;
            else
                ++shortSum[t].otherSteps;
        }
    }
    std::vector<TemplateSummary> longSum(in.longTemplates.size());
    for (size_t t = 0; t < in.longTemplates.size(); ++t) {
        const LongTemplate &tmpl = in.longTemplates[t];
        longSum[t].packets =
            static_cast<uint32_t>(tmpl.sValues.size());
        for (uint16_t s : tmpl.sValues)
            longSum[t].payloadBytes += payloadOf(s);
        for (uint64_t ipt : tmpl.iptUs)
            longSum[t].durationUs += ipt;
    }

    Datasets out;
    out.weights = in.weights;
    out.fidelity = Fidelity::Flow;
    out.addresses = in.addresses;
    out.chunkSizes = in.chunkSizes;
    out.flowRecords.reserve(in.timeSeq.size());
    for (const TimeSeqRecord &rec : in.timeSeq) {
        size_t limit = rec.isLong ? longSum.size()
                                  : shortSum.size();
        util::require(rec.templateIndex < limit,
                      "fcc: template index out of range");
        util::require(rec.addressIndex < in.addresses.size(),
                      "fcc: address index out of range");
        const TemplateSummary &sum =
            rec.isLong ? longSum[rec.templateIndex]
                       : shortSum[rec.templateIndex];
        FlowRecord fl;
        fl.firstTimestampUs = rec.firstTimestampUs;
        fl.packets = sum.packets;
        fl.payloadBytes = sum.payloadBytes;
        fl.durationUs =
            rec.isLong
                ? sum.durationUs
                : sum.dependentSteps * uint64_t{rec.rttUs} +
                      sum.otherSteps * uint64_t{params.defaultGapUs};
        fl.addressIndex = rec.addressIndex;
        out.flowRecords.push_back(fl);
    }
    return out;
}

} // namespace

Datasets
applyFidelity(const Datasets &datasets, Fidelity fidelity,
              const FidelityParams &params)
{
    util::require(datasets.fidelity == Fidelity::Exact,
                  "fcc fidelity: datasets are already degraded");
    switch (fidelity) {
      case Fidelity::Exact:
        return datasets;
      case Fidelity::Quantized:
        return quantize(datasets, params.quantumUs);
      case Fidelity::Header:
        return dropFlagDetail(datasets);
      case Fidelity::Flow:
        return collapseToFlows(datasets, params);
    }
    throw util::Error("fcc fidelity: bad tier");
}

} // namespace fcc::codec::fcc
