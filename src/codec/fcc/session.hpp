/**
 * @file
 * Session-based compression API: the open-ended form of the FCC
 * codec the continuous-capture archiver (src/archive, fccd) runs on.
 *
 * The one-shot entry points of stream.hpp compress exactly one
 * source into exactly one file. A CompressSession decouples the
 * three lifetimes that conflates: packets are feed() in whenever
 * they arrive, chunk boundaries are cut on demand (rotateChunk(),
 * time-based, on top of the record-count slicing of
 * FccConfig::chunkRecords), and seal() closes the current *epoch*
 * into one self-contained archive — after which reArm() starts the
 * next epoch without rebuilding the session.
 *
 * Template carry: the short-flow cluster store (flow::TemplateStore)
 * survives seal()/reArm() when SessionOptions::carryTemplates is
 * set, so a re-armed epoch matches recurring behaviour against the
 * clusters earlier epochs already learned instead of re-growing them
 * from nothing (the recluster warm-up a cold run pays). Sealed
 * archives stay self-contained either way: each epoch serializes
 * only the templates it referenced, renumbered in first-use order —
 * which is also why a single-epoch session is bit-identical to the
 * historical one-shot path, and why a carry-off session's epochs are
 * bit-identical to independent one-shot runs over the split input.
 *
 * DecompressSession is the matching read side: one session holds the
 * config and cumulative stats while open()/drainTo() iterate over
 * any number of archives (an fccd output directory, say), each
 * reconstructed with the §4 bounded-memory flush of stream.cpp.
 */

#ifndef FCC_CODEC_FCC_SESSION_HPP
#define FCC_CODEC_FCC_SESSION_HPP

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "codec/fcc/fcc_codec.hpp"
#include "codec/fcc/stream.hpp"
#include "flow/template_store.hpp"
#include "trace/source.hpp"

namespace fcc::codec::fcc {

/** Session behaviour knobs (the codec knobs live in FccConfig). */
struct SessionOptions
{
    /**
     * Keep the short-flow template store across seal()/reArm(), so
     * re-armed epochs skip the cluster warm-up. Off, every epoch
     * clusters from scratch — byte-identical to running the one-shot
     * compressor on each epoch's packets separately.
     */
    bool carryTemplates = true;
};

/** What one seal() produced. */
struct SealInfo
{
    uint64_t records = 0;     ///< time-seq records (flows) sealed
    uint64_t packets = 0;     ///< packets they encode
    uint64_t chunks = 0;      ///< chunk count of the archive
    uint64_t bytes = 0;       ///< serialized archive size
    uint64_t minFirstUs = 0;  ///< earliest flow start (µs), 0 if none
    uint64_t maxLastUs = 0;   ///< latest packet timestamp seen (µs)
    uint64_t templatesNew = 0;///< clusters created this epoch
};

/**
 * An open-ended compression session over the FCC codec.
 *
 * Lifecycle: constructed *armed*; feed() accumulates flow state and
 * closed-flow datasets; seal() closes every open flow and serializes
 * the epoch (the session is then *sealed* — feed() throws); reArm()
 * starts the next epoch. Input must be time-ordered within an epoch;
 * reArm() resets the clock, so epochs may restart from zero.
 *
 * The one-shot wrappers of stream.hpp are thin shells over a
 * single-epoch session; anything they can produce, a session seals
 * byte-identically.
 */
class CompressSession
{
  public:
    /**
     * @throws fcc::util::Error when cfg does not validate
     *         (FccConfig::validate()).
     */
    explicit CompressSession(const FccConfig &cfg,
                             const SessionOptions &options = {});

    /** Out-of-line: OpenFlow is complete only in session.cpp. */
    ~CompressSession();

    CompressSession(const CompressSession &) = delete;
    CompressSession &operator=(const CompressSession &) = delete;

    /** Feed one packet. @throws fcc::util::Error when sealed or on
     *  time-disordered input. */
    void feed(const trace::PacketRecord &pkt);

    /** Feed a batch (equivalent to feeding each in order). */
    void feed(std::span<const trace::PacketRecord> batch);

    /**
     * Cut the current chunk at the stream position reached so far:
     * every flow that *started* at or before the last fed packet's
     * timestamp seals into earlier chunks than any flow starting
     * after it. The archiver calls this on its wall/trace-time chunk
     * policy; record-count slicing (FccConfig::chunkRecords) still
     * applies within the cut segments. FCC3 layouts only — the row
     * containers know only the fixed record-count slicing.
     *
     * @throws fcc::util::Error when the session is sealed or the
     *         container is not FCC3.
     */
    void rotateChunk();

    /**
     * Close every open flow, serialize the epoch's datasets into one
     * self-contained archive and return its bytes. The session
     * becomes sealed until reArm().
     *
     * @throws fcc::util::Error when already sealed.
     */
    std::vector<uint8_t> seal(SealInfo *info = nullptr);

    /** seal() straight into a file (plain write — the crash-safe
     *  fsync/rename discipline lives in archive::ArchiveWriter). */
    SealInfo sealToFile(const std::string &path);

    /**
     * Start the next epoch: per-epoch state (open flows, datasets,
     * address table, input clock, chunk cuts) resets; the template
     * store persists when SessionOptions::carryTemplates is set.
     *
     * @throws fcc::util::Error when the session is not sealed.
     */
    void reArm();

    /** True between seal() and reArm(). */
    bool sealed() const { return sealed_; }

    /** Cumulative stats across all epochs; inputBytes only counts
     *  what addInputBytes() attributed. */
    const StreamStats &stats() const { return stats_; }

    /** Attribute source-container bytes to stats().inputBytes (the
     *  session sees decoded records, not container bytes). */
    void addInputBytes(uint64_t bytes) { stats_.inputBytes += bytes; }

    /** Flows closed into the current epoch so far. */
    uint64_t epochRecords() const { return datasets_.timeSeq.size(); }

    /** Packets fed into the current epoch so far. */
    uint64_t epochPackets() const { return epochPackets_; }

    /** Timestamp (µs) of the last packet fed this epoch, 0 if none. */
    uint64_t lastTimestampUs() const { return lastNs_ / 1000; }

    /** Timestamp (µs) of the first packet fed this epoch. */
    uint64_t firstTimestampUs() const { return firstUs_; }

    /** Clusters in the (possibly carried) template store. */
    uint64_t storeTemplates() const { return store_.size(); }

    /** Clusters created during the current epoch. */
    uint64_t epochTemplatesCreated() const { return templatesNew_; }

    const FccConfig &config() const { return cfg_; }
    const SessionOptions &options() const { return options_; }

  private:
    struct OpenFlow;

    void closeFlow(OpenFlow &flowState);
    void resetEpoch();

    FccConfig cfg_;
    SessionOptions options_;
    flow::Characterizer chi_;
    flow::TemplateStore store_;

    // Per-epoch state, reset by reArm().
    Datasets datasets_;
    std::unordered_map<flow::FlowKey, OpenFlow> open_;
    std::unordered_map<uint32_t, uint32_t> addrIndex_;
    /** store index -> this epoch's compacted template index. */
    std::unordered_map<uint32_t, uint32_t> templateRemap_;
    /** store indices referenced this epoch, in first-use order. */
    std::vector<uint32_t> templateOrder_;
    /** rotateChunk() cut positions: last fed timestamp (µs). */
    std::vector<uint64_t> chunkCutsUs_;
    uint64_t lastNs_ = 0;
    uint64_t firstUs_ = 0;
    bool sawPacket_ = false;
    uint64_t epochPackets_ = 0;
    uint64_t templatesNew_ = 0;
    bool sealed_ = false;

    StreamStats stats_;
};

/**
 * The matching decompression session: holds config and cumulative
 * stats while open()/drainTo() walk any number of archives. Each
 * archive reconstructs with the §4 bounded-memory flush — chunked
 * layouts expand their chunks concurrently (cfg.threads) between
 * flushes, bit-identically at any thread count.
 */
class DecompressSession
{
  public:
    explicit DecompressSession(const FccConfig &cfg = {});

    DecompressSession(const DecompressSession &) = delete;
    DecompressSession &operator=(const DecompressSession &) = delete;

    /**
     * Decode an archive's datasets into the session (mmap'd read,
     * container auto-detected, pooled FCC3 column decode). Replaces
     * any previously open archive.
     *
     * @throws fcc::util::Error on I/O failure or malformed input.
     */
    void open(const std::string &fccPath);

    /** True after a successful open(), until drainTo(). */
    bool isOpen() const { return open_; }

    /** The open archive's decoded datasets. @throws when !isOpen() */
    const Datasets &datasets() const;

    /**
     * Reconstruct the open archive into @p sink (which is closed on
     * return) and release it. Returns the stats of *this* archive;
     * stats() accumulates across all drained archives.
     *
     * @throws fcc::util::Error when no archive is open.
     */
    StreamStats drainTo(trace::TraceSink &sink);

    /** Cumulative stats across every archive drained so far
     *  (epochs = archives). */
    const StreamStats &stats() const { return stats_; }

    const FccConfig &config() const { return cfg_; }

  private:
    FccConfig cfg_;
    Datasets datasets_;
    uint64_t archiveBytes_ = 0;
    bool open_ = false;
    StreamStats stats_;
};

} // namespace fcc::codec::fcc

#endif // FCC_CODEC_FCC_SESSION_HPP
