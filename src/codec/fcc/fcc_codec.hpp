/**
 * @file
 * The paper's proposed compressor: lossy packet-trace compression by
 * clustering of TCP flow characterization vectors (§3), and the
 * matching decompression algorithm (§4).
 *
 * Compression: assemble bidirectional flows; compute each flow's SF
 * vector; short flows (<= 50 packets) are matched against the
 * short-flows-template cluster store (similarity = L1 distance below
 * 2 % of the maximum inter-flow distance 50 n); long flows are stored
 * verbatim with their exact inter-packet times. Per flow, only a
 * time-seq record (timestamp, S/L identifier, template index, RTT,
 * address index) survives — ~8 bytes — which is what yields the ~3 %
 * ratio of §5.
 *
 * Decompression: for every time-seq record the referenced template is
 * expanded: (f1, f2, f3) are decoded from each S value (the weights
 * form a mixed-radix code), packet direction is re-derived from the
 * dependence chain, sizes from the size class, timing from the RTT
 * (dependent packets) or a small gap (back-to-back packets), server
 * address from the address dataset, client address randomized (class
 * B/C), client port random in [1024, 65000], server port 80 — exactly
 * the paper's §4 procedure.
 */

#ifndef FCC_CODEC_FCC_FCC_CODEC_HPP
#define FCC_CODEC_FCC_FCC_CODEC_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "codec/compressor.hpp"
#include "codec/fcc/datasets.hpp"
#include "flow/characterize.hpp"
#include "flow/flow_table.hpp"
#include "util/rng.hpp"

namespace fcc::codec::fcc {

/** Which wire container compress() writes (decompression always
 *  auto-detects all three by magic). */
enum class ContainerFormat : uint8_t
{
    Fcc1 = 1,  ///< legacy single-stream
    Fcc2 = 2,  ///< chunked time-seq (default; the paper's layout)
    Fcc3 = 3,  ///< columnar, per-column field codecs + backends
};

/** "fcc1" / "fcc2" / "fcc3". */
const char *containerFormatName(ContainerFormat container);

/** Parse a name accepted by containerFormatName(). @throws Error */
ContainerFormat parseContainerName(const std::string &name);

/** Tunables of the proposed method (paper defaults). */
struct FccConfig
{
    flow::Weights weights;        ///< {16, 4, 1}
    flow::SimilarityRule rule;    ///< d_sim = n * 50 * 2 %
    uint32_t shortLimit = 50;     ///< short/long split (packets)
    flow::FlowTableConfig flowTable;

    /**
     * Worker threads of the sharded pipeline; 0 means
     * hardware_concurrency, 1 runs everything on the calling thread.
     * Output is byte-identical for every value: the shard count
     * (flowTable.shards) and the chunk size (chunkRecords) fix the
     * work decomposition, threads only decide how much of it runs
     * concurrently.
     */
    uint32_t threads = 0;

    /**
     * Time-seq records per FCC2/FCC3 chunk. Chunks are the unit of
     * parallel decompression (each owns an RNG stream); 0 leaves the
     * time-seq dataset unchunked — under FCC2 that degrades to the
     * legacy FCC1 container, under FCC3 the records expand on the
     * sequential single-RNG path.
     */
    uint32_t chunkRecords = 4096;

    /**
     * Wire container compress() writes. The library default stays
     * FCC2 so the §5 accounting benches keep measuring the paper's
     * layout; fcctool defaults to FCC3 (see --container).
     */
    ContainerFormat container = ContainerFormat::Fcc2;

    /**
     * Entropy backend of the FCC3 columnar container, applied per
     * column after the field codec (with automatic per-column Store
     * fallback when it does not pay). Ignored by FCC1/FCC2, which
     * only know whole-blob hybrid deflate (deflateDatasets).
     */
    backend::EntropyBackend backend =
        backend::EntropyBackend::Deflate;

    /**
     * Write a *seekable* archive: FCC3 with chunk-framed time-seq
     * columns and the chunk/flow index block (codec/fcc/index.hpp)
     * the random-access query subsystem (src/query) plans against.
     * Requires container == Fcc3 and a chunked layout
     * (chunkRecords > 0); costs a few percent of file size.
     * Decompression auto-detects it either way.
     */
    bool index = false;

    /**
     * Address assignment on decompression. The paper (§4) writes the
     * stored destination address and the random source on *every*
     * packet of a flow; with directionAwareAddresses the recovered
     * direction chain instead swaps source/destination for
     * server-to-client packets (an extension; more TCP-realistic but
     * not what the paper's decompressor does).
     */
    bool directionAwareAddresses = false;

    /**
     * Hybrid mode (extension, FCC1/FCC2 only): run the serialized
     * datasets through the built-in zlib/deflate as one blob. The
     * template datasets are highly repetitive, so this roughly
     * halves the compressed size again; decompress() auto-detects
     * the wrapper. FCC3 ignores it — its per-column backends
     * supersede the whole-blob squeeze.
     */
    bool deflateDatasets = false;

    /**
     * Fidelity tier of the written archive (docs/FIDELITY.md). The
     * default, Exact, reproduces the paper's lossless-within-model
     * pipeline byte for byte; the lossy tiers (Quantized, Header,
     * Flow) degrade the datasets just before columnar serialization
     * and therefore require container == Fcc3, whose header carries
     * the tier tag. Decompression auto-detects the tier.
     */
    Fidelity fidelity = Fidelity::Exact;

    /**
     * Timestamp grid of the Quantized tier, in microseconds (flow
     * first-timestamps are floored onto multiples of it). Ignored by
     * the other tiers; must be >= 1 when fidelity == Quantized.
     */
    uint64_t quantumUs = 1000;

    // Decompression reconstruction parameters.
    uint32_t defaultGapUs = 300;   ///< spacing of non-dependent pkts
    uint16_t smallPayload = 400;   ///< representative size, class 1
    uint16_t largePayload = 1460;  ///< representative size, class 2
    uint16_t serverPort = 80;      ///< paper: Web traffic
    uint64_t decompressSeed = 0x5eedf10e;  ///< address randomization

    /**
     * The single validation entry point: every constraint between
     * the knobs above (container/backend tags in range, the index
     * needs the chunked fcc3 layout, decodable weights, a non-empty
     * shard partition) checked in one place. Sessions validate on
     * open, the tools validate right after flag parsing, and the
     * query catalog validates what it plans with — all through this
     * method, so a bad combination fails the same way everywhere.
     *
     * @throws fcc::util::Error naming the offending combination.
     */
    void validate() const;
};

/** Compression-side statistics (cluster behaviour, §2.1/§3). */
struct FccCompressStats
{
    uint64_t flows = 0;
    uint64_t shortFlows = 0;
    uint64_t longFlows = 0;
    uint64_t shortTemplatesCreated = 0;  ///< clusters
    uint64_t shortTemplateHits = 0;      ///< flows matched to one
    SizeBreakdown sizes;

    double
    hitRate() const
    {
        return shortFlows ? static_cast<double>(shortTemplateHits) /
                                static_cast<double>(shortFlows)
                          : 0.0;
    }
};

/** The proposed flow-clustering trace compressor. */
class FccTraceCompressor : public TraceCompressor
{
  public:
    explicit FccTraceCompressor(const FccConfig &cfg = {});

    std::string name() const override { return "fcc"; }
    bool lossless() const override { return false; }

    std::vector<uint8_t>
    compress(const trace::Trace &trace) const override;

    trace::Trace
    decompress(std::span<const uint8_t> data) const override;

    /** compress() and additionally report cluster statistics. */
    std::vector<uint8_t>
    compressWithStats(const trace::Trace &trace,
                      FccCompressStats &stats) const;

    /** Build the in-memory datasets without serializing. */
    Datasets
    buildDatasets(const trace::Trace &trace,
                  FccCompressStats &stats) const;

    /**
     * Expand in-memory datasets into a reconstructed trace. Chunked
     * datasets (FCC2/FCC3) expand one chunk per task on cfg.threads
     * workers, each chunk drawing from its own RNG stream seeded
     * from (decompressSeed, chunk index); unchunked datasets (FCC1,
     * or FCC3 with chunkRecords == 0) replay the legacy single
     * sequential stream. Expansion depends only on the chunk
     * layout, never on the container that carried it — equal
     * layouts reconstruct identical packets.
     */
    trace::Trace expand(const Datasets &datasets) const;

    /**
     * Expand one time-seq record into its flow's packets, appended
     * to @p out in flow order (not globally time-sorted). @p rng
     * supplies the §4 random source address / client port; expand()
     * and the streaming decompressor share this so both produce the
     * same packets for the same seed.
     */
    void
    expandFlow(const Datasets &datasets, const TimeSeqRecord &record,
               util::Rng &rng,
               std::vector<trace::PacketRecord> &out) const;

    /**
     * Expand every record of chunk @p chunk (index into
     * Datasets::chunkSizes) into @p out, drawing from the chunk's
     * own RNG stream. Chunks may be expanded in any order or
     * concurrently; expand() and the streaming decompressor share
     * this so both reconstruct identical packets.
     */
    void expandChunk(const Datasets &datasets, size_t chunk,
                     std::vector<trace::PacketRecord> &out) const;

    const FccConfig &config() const { return cfg_; }

  private:
    FccConfig cfg_;
};

/**
 * Serialize @p datasets into the container cfg.container selects,
 * honouring cfg.chunkRecords, cfg.backend, cfg.threads (FCC3
 * column jobs run on a pool when threads allow; output is
 * byte-identical at any thread count) and cfg.deflateDatasets (the
 * whole-blob zlib wrapper of the row containers — FCC3 skips it,
 * its per-column backends supersede the blob squeeze). Both the
 * in-memory and the streaming compressor write through this one
 * entry point. @p breakdown reports the serialized (pre-wrapper)
 * sizes; @p columns, when non-null, receives the FCC3 per-column
 * accounting (cleared for FCC1/FCC2).
 */
std::vector<uint8_t>
serializeDatasets(const Datasets &datasets, const FccConfig &cfg,
                  SizeBreakdown &breakdown,
                  std::vector<ColumnStat> *columns = nullptr);

/**
 * Decode any FCC artifact: unwraps the optional whole-blob zlib
 * hybrid wrapper, auto-detects the container by magic, and runs
 * FCC3 column decode jobs on up to @p threads workers (0 = all
 * cores; the row formats parse sequentially either way). The
 * in-memory decompressor, the streaming decompressor and fcctool
 * all decode through this one entry point.
 */
Datasets deserializeAuto(std::span<const uint8_t> data,
                         uint32_t threads,
                         ContainerStat *stat = nullptr);

/**
 * RNG stream seed of chunk @p chunk under @p decompressSeed — part
 * of the reconstruction contract: expand(), the streaming
 * decompressor and the random-access reader (src/query) must draw a
 * chunk's packets from the same stream to reconstruct the same
 * bytes, whichever subset of chunks they expand.
 */
uint64_t chunkRngSeed(uint64_t decompressSeed, size_t chunk);

} // namespace fcc::codec::fcc

#endif // FCC_CODEC_FCC_FCC_CODEC_HPP
