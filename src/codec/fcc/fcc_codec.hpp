/**
 * @file
 * The paper's proposed compressor: lossy packet-trace compression by
 * clustering of TCP flow characterization vectors (§3), and the
 * matching decompression algorithm (§4).
 *
 * Compression: assemble bidirectional flows; compute each flow's SF
 * vector; short flows (<= 50 packets) are matched against the
 * short-flows-template cluster store (similarity = L1 distance below
 * 2 % of the maximum inter-flow distance 50 n); long flows are stored
 * verbatim with their exact inter-packet times. Per flow, only a
 * time-seq record (timestamp, S/L identifier, template index, RTT,
 * address index) survives — ~8 bytes — which is what yields the ~3 %
 * ratio of §5.
 *
 * Decompression: for every time-seq record the referenced template is
 * expanded: (f1, f2, f3) are decoded from each S value (the weights
 * form a mixed-radix code), packet direction is re-derived from the
 * dependence chain, sizes from the size class, timing from the RTT
 * (dependent packets) or a small gap (back-to-back packets), server
 * address from the address dataset, client address randomized (class
 * B/C), client port random in [1024, 65000], server port 80 — exactly
 * the paper's §4 procedure.
 */

#ifndef FCC_CODEC_FCC_FCC_CODEC_HPP
#define FCC_CODEC_FCC_FCC_CODEC_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "codec/compressor.hpp"
#include "codec/fcc/datasets.hpp"
#include "flow/characterize.hpp"
#include "flow/flow_table.hpp"
#include "util/rng.hpp"

namespace fcc::codec::fcc {

/** Tunables of the proposed method (paper defaults). */
struct FccConfig
{
    flow::Weights weights;        ///< {16, 4, 1}
    flow::SimilarityRule rule;    ///< d_sim = n * 50 * 2 %
    uint32_t shortLimit = 50;     ///< short/long split (packets)
    flow::FlowTableConfig flowTable;

    /**
     * Worker threads of the sharded pipeline; 0 means
     * hardware_concurrency, 1 runs everything on the calling thread.
     * Output is byte-identical for every value: the shard count
     * (flowTable.shards) and the chunk size (chunkRecords) fix the
     * work decomposition, threads only decide how much of it runs
     * concurrently.
     */
    uint32_t threads = 0;

    /**
     * Time-seq records per FCC2 chunk. Chunks are the unit of
     * parallel decompression (each owns an RNG stream); 0 writes the
     * legacy single-stream FCC1 container instead.
     */
    uint32_t chunkRecords = 4096;

    /**
     * Address assignment on decompression. The paper (§4) writes the
     * stored destination address and the random source on *every*
     * packet of a flow; with directionAwareAddresses the recovered
     * direction chain instead swaps source/destination for
     * server-to-client packets (an extension; more TCP-realistic but
     * not what the paper's decompressor does).
     */
    bool directionAwareAddresses = false;

    /**
     * Hybrid mode (extension): run the serialized datasets through
     * the built-in zlib/deflate. The template datasets are highly
     * repetitive, so this roughly halves the compressed size again;
     * decompress() auto-detects either container.
     */
    bool deflateDatasets = false;

    // Decompression reconstruction parameters.
    uint32_t defaultGapUs = 300;   ///< spacing of non-dependent pkts
    uint16_t smallPayload = 400;   ///< representative size, class 1
    uint16_t largePayload = 1460;  ///< representative size, class 2
    uint16_t serverPort = 80;      ///< paper: Web traffic
    uint64_t decompressSeed = 0x5eedf10e;  ///< address randomization
};

/** Compression-side statistics (cluster behaviour, §2.1/§3). */
struct FccCompressStats
{
    uint64_t flows = 0;
    uint64_t shortFlows = 0;
    uint64_t longFlows = 0;
    uint64_t shortTemplatesCreated = 0;  ///< clusters
    uint64_t shortTemplateHits = 0;      ///< flows matched to one
    SizeBreakdown sizes;

    double
    hitRate() const
    {
        return shortFlows ? static_cast<double>(shortTemplateHits) /
                                static_cast<double>(shortFlows)
                          : 0.0;
    }
};

/** The proposed flow-clustering trace compressor. */
class FccTraceCompressor : public TraceCompressor
{
  public:
    explicit FccTraceCompressor(const FccConfig &cfg = {});

    std::string name() const override { return "fcc"; }
    bool lossless() const override { return false; }

    std::vector<uint8_t>
    compress(const trace::Trace &trace) const override;

    trace::Trace
    decompress(std::span<const uint8_t> data) const override;

    /** compress() and additionally report cluster statistics. */
    std::vector<uint8_t>
    compressWithStats(const trace::Trace &trace,
                      FccCompressStats &stats) const;

    /** Build the in-memory datasets without serializing. */
    Datasets
    buildDatasets(const trace::Trace &trace,
                  FccCompressStats &stats) const;

    /**
     * Expand in-memory datasets into a reconstructed trace. FCC2
     * chunked datasets expand one chunk per task on cfg.threads
     * workers, each chunk drawing from its own RNG stream seeded
     * from (decompressSeed, chunk index); FCC1 datasets replay the
     * legacy single sequential stream.
     */
    trace::Trace expand(const Datasets &datasets) const;

    /**
     * Expand one time-seq record into its flow's packets, appended
     * to @p out in flow order (not globally time-sorted). @p rng
     * supplies the §4 random source address / client port; expand()
     * and the streaming decompressor share this so both produce the
     * same packets for the same seed.
     */
    void
    expandFlow(const Datasets &datasets, const TimeSeqRecord &record,
               util::Rng &rng,
               std::vector<trace::PacketRecord> &out) const;

    /**
     * Expand every record of FCC2 chunk @p chunk (index into
     * Datasets::chunkSizes) into @p out, drawing from the chunk's
     * own RNG stream. Chunks may be expanded in any order or
     * concurrently; expand() and the streaming decompressor share
     * this so both reconstruct identical packets.
     */
    void expandChunk(const Datasets &datasets, size_t chunk,
                     std::vector<trace::PacketRecord> &out) const;

    const FccConfig &config() const { return cfg_; }

  private:
    FccConfig cfg_;
};

} // namespace fcc::codec::fcc

#endif // FCC_CODEC_FCC_FCC_CODEC_HPP
