/**
 * @file
 * Chunk/flow index block of seekable FCC3 archives: summary
 * construction (timing bounds from the reconstruction rule, Bloom
 * fingerprints over server addresses) and the byte-exact block
 * serialization specified in docs/FORMAT.md §5.
 */

#include "codec/fcc/index.hpp"

#include <algorithm>
#include <bit>

#include "codec/fcc/datasets.hpp"
#include "util/bytes.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace fcc::codec::fcc {

namespace {

/** Bloom double-hash streams; the constants are normative (FORMAT.md). */
constexpr uint64_t bloomSeed1 = 0xA0761D6478BD642Full;
constexpr uint64_t bloomSeed2 = 0xE7037ED1A0B428DBull;

uint64_t
bloomHash1(uint32_t serverIp)
{
    return util::mix64(bloomSeed1 ^ serverIp);
}

uint64_t
bloomHash2(uint32_t serverIp)
{
    // Forced odd so the probe stride is coprime with the
    // power-of-two filter size.
    return util::mix64(bloomSeed2 ^ serverIp) | 1;
}

/** Smallest power-of-two filter >= 10 bits per distinct server. */
uint32_t
bloomSizeBits(size_t distinctServers)
{
    uint64_t want = std::max<uint64_t>(
        64, uint64_t{bloomBitsPerServer} * distinctServers);
    return static_cast<uint32_t>(std::bit_ceil(want));
}

void
bloomInsert(std::vector<uint8_t> &bloom, uint32_t bits,
            const ServerFingerprint &fp)
{
    for (uint32_t i = 0; i < bloomProbes; ++i) {
        uint64_t bit = (fp.h1 + uint64_t{i} * fp.h2) & (bits - 1);
        bloom[bit >> 3] |= static_cast<uint8_t>(1u << (bit & 7));
    }
}

/** Reconstruction-timing profile of one template (see §4). */
struct TemplateSpan
{
    uint64_t dependentSteps = 0;  ///< steps spaced by the flow RTT
    uint64_t otherSteps = 0;      ///< steps spaced by the fixed gap
    uint64_t packets = 0;
};

} // namespace

ServerFingerprint
serverFingerprint(uint32_t serverIp)
{
    return {bloomHash1(serverIp), bloomHash2(serverIp)};
}

std::vector<uint8_t>
bloomBuild(std::span<const uint32_t> servers, uint32_t bits,
           util::Dispatch d)
{
    std::vector<uint8_t> bloom(size_t{bits} / 8, 0);
    if (!util::useAccel(d)) {
        for (uint32_t ip : servers)
            bloomInsert(bloom, bits, serverFingerprint(ip));
        return bloom;
    }
    // Hash the batch first: the mix64 loop is branch-free and
    // auto-vectorizes; only the (scattered, cheap) bit sets stay
    // serial. Same OR-set of bits as the scalar path.
    std::vector<ServerFingerprint> fps(servers.size());
    for (size_t i = 0; i < servers.size(); ++i)
        fps[i] = serverFingerprint(servers[i]);
    for (const ServerFingerprint &fp : fps)
        bloomInsert(bloom, bits, fp);
    return bloom;
}

bool
ChunkSummary::mayContainServer(uint32_t serverIp) const
{
    return mayContain(serverFingerprint(serverIp));
}

bool
ChunkSummary::mayContain(const ServerFingerprint &fp) const
{
    if (bloomBits == 0 ||
        bloom.size() != size_t{bloomBits} / 8)
        return true;  // unusable filter: never rule a chunk out
    for (uint32_t i = 0; i < bloomProbes; ++i) {
        uint64_t bit = (fp.h1 + uint64_t{i} * fp.h2) & (bloomBits - 1);
        if ((bloom[bit >> 3] & (1u << (bit & 7))) == 0)
            return false;
    }
    return true;
}

ArchiveIndex
buildArchiveIndex(const Datasets &d,
                  std::span<const uint32_t> chunkSizes,
                  const IndexOptions &options)
{
    // Flow-fidelity archives carry their packet counts and timing
    // bounds directly in the flow records; the summary math below
    // would have no templates to consult.
    if (d.fidelity == Fidelity::Flow) {
        ArchiveIndex index;
        index.gapUs = options.gapUs;
        index.chunks.reserve(chunkSizes.size());
        size_t rec = 0;
        std::vector<uint32_t> servers;
        for (uint32_t count : chunkSizes) {
            util::require(count >= 1, "fcc index: empty chunk");
            util::require(rec + count <= d.flowRecords.size(),
                          "fcc index: chunk sizes disagree with "
                          "flow records");
            ChunkSummary summary;
            summary.records = count;
            summary.minFirstUs =
                d.flowRecords[rec].firstTimestampUs;
            servers.clear();
            for (size_t i = rec; i < rec + count; ++i) {
                const FlowRecord &fl = d.flowRecords[i];
                summary.packets += fl.packets;
                summary.maxFlowPackets = std::max<uint64_t>(
                    summary.maxFlowPackets, fl.packets);
                summary.maxEndUs = std::max(
                    summary.maxEndUs,
                    fl.firstTimestampUs + fl.durationUs);
                util::require(fl.addressIndex < d.addresses.size(),
                              "fcc index: address index out of "
                              "range");
                servers.push_back(d.addresses[fl.addressIndex]);
            }
            std::sort(servers.begin(), servers.end());
            servers.erase(
                std::unique(servers.begin(), servers.end()),
                servers.end());
            summary.bloomBits = bloomSizeBits(servers.size());
            summary.bloom = bloomBuild(servers, summary.bloomBits);
            index.chunks.push_back(std::move(summary));
            rec += count;
        }
        util::require(rec == d.flowRecords.size(),
                      "fcc index: chunk sizes disagree with flow "
                      "records");
        return index;
    }

    // Per-template packet counts and timing step classes, so every
    // record's reconstructed end timestamp is O(1): the §4 expansion
    // spaces dependent packets by the flow RTT and all others by the
    // fixed gap, and long flows replay their exact inter-packet
    // times.
    flow::Characterizer chi(d.weights);
    std::vector<TemplateSpan> shortSpan(d.shortTemplates.size());
    for (size_t t = 0; t < d.shortTemplates.size(); ++t) {
        const auto &values = d.shortTemplates[t].values;
        shortSpan[t].packets = values.size();
        for (size_t i = 1; i < values.size(); ++i) {
            if (chi.decode(values[i]).dependent)
                ++shortSpan[t].dependentSteps;
            else
                ++shortSpan[t].otherSteps;
        }
    }
    std::vector<uint64_t> longEndUs(d.longTemplates.size());
    std::vector<uint64_t> longPackets(d.longTemplates.size());
    for (size_t t = 0; t < d.longTemplates.size(); ++t) {
        uint64_t sum = 0;
        for (uint64_t ipt : d.longTemplates[t].iptUs)
            sum += ipt;
        longEndUs[t] = sum;
        longPackets[t] = d.longTemplates[t].sValues.size();
    }

    ArchiveIndex index;
    index.gapUs = options.gapUs;
    index.chunks.reserve(chunkSizes.size());

    size_t rec = 0;
    std::vector<uint32_t> servers;  // distinct servers of one chunk
    for (uint32_t count : chunkSizes) {
        util::require(count >= 1, "fcc index: empty chunk");
        util::require(rec + count <= d.timeSeq.size(),
                      "fcc index: chunk sizes disagree with time-seq");
        ChunkSummary summary;
        summary.records = count;
        summary.minFirstUs = d.timeSeq[rec].firstTimestampUs;

        servers.clear();
        for (size_t i = rec; i < rec + count; ++i) {
            const TimeSeqRecord &r = d.timeSeq[i];
            uint64_t packets, endUs;
            if (r.isLong) {
                util::require(r.templateIndex < longEndUs.size(),
                              "fcc index: template index out of "
                              "range");
                packets = longPackets[r.templateIndex];
                endUs = r.firstTimestampUs + longEndUs[r.templateIndex];
            } else {
                util::require(r.templateIndex < shortSpan.size(),
                              "fcc index: template index out of "
                              "range");
                const TemplateSpan &span = shortSpan[r.templateIndex];
                packets = span.packets;
                endUs = r.firstTimestampUs +
                        span.dependentSteps * uint64_t{r.rttUs} +
                        span.otherSteps * uint64_t{options.gapUs};
            }
            summary.packets += packets;
            summary.maxFlowPackets =
                std::max(summary.maxFlowPackets, packets);
            summary.maxEndUs = std::max(summary.maxEndUs, endUs);
            util::require(r.addressIndex < d.addresses.size(),
                          "fcc index: address index out of range");
            servers.push_back(d.addresses[r.addressIndex]);
        }
        std::sort(servers.begin(), servers.end());
        servers.erase(std::unique(servers.begin(), servers.end()),
                      servers.end());

        summary.bloomBits = bloomSizeBits(servers.size());
        summary.bloom = bloomBuild(servers, summary.bloomBits);

        index.chunks.push_back(std::move(summary));
        rec += count;
    }
    util::require(rec == d.timeSeq.size(),
                  "fcc index: chunk sizes disagree with time-seq");
    return index;
}

std::vector<uint8_t>
serializeArchiveIndex(const ArchiveIndex &index)
{
    util::ByteWriter w;
    w.u8(indexVersion);
    w.varint(index.chunks.size());
    w.varint(index.gapUs);
    for (const ChunkSummary &c : index.chunks) {
        w.varint(c.byteOffset);
        w.varint(c.byteLength);
        w.varint(c.records);
        w.varint(c.packets);
        w.varint(c.maxFlowPackets);
        w.varint(c.minFirstUs);
        w.varint(c.maxEndUs);
        w.varint(c.bloomBits);
        w.bytes(c.bloom.data(), c.bloom.size());
    }
    std::vector<uint8_t> payload = w.take();

    util::ByteWriter out;
    out.bytes(payload.data(), payload.size());
    out.u64(payload.size());
    out.u32(util::Crc32::of(payload));
    out.u32(indexFooterMagic);
    return out.take();
}

uint64_t
indexRegionBytes(std::span<const uint8_t> file)
{
    util::require(file.size() >= indexFooterBytes,
                  "fcc index: file too short for the footer");
    util::ByteReader footer(
        file.data() + file.size() - indexFooterBytes,
        indexFooterBytes);
    uint64_t payloadLen = footer.u64();
    footer.u32();  // CRC: checked by readArchiveIndex, not here
    util::require(footer.u32() == indexFooterMagic,
                  "fcc index: footer magic missing");
    util::require(payloadLen <= file.size() - indexFooterBytes,
                  "fcc index: footer length exceeds file");
    return payloadLen + indexFooterBytes;
}

std::optional<ArchiveIndex>
readArchiveIndex(std::span<const uint8_t> file)
{
    if (file.size() < indexFooterBytes)
        return std::nullopt;
    {
        util::ByteReader footer(
            file.data() + file.size() - indexFooterBytes,
            indexFooterBytes);
        footer.u64();
        footer.u32();
        if (footer.u32() != indexFooterMagic)
            return std::nullopt;
    }
    uint64_t region = indexRegionBytes(file);  // validates the length
    size_t payloadLen =
        static_cast<size_t>(region - indexFooterBytes);
    std::span<const uint8_t> payload =
        file.subspan(file.size() - region, payloadLen);

    util::ByteReader footer(
        file.data() + file.size() - indexFooterBytes,
        indexFooterBytes);
    footer.u64();
    uint32_t storedCrc = footer.u32();
    util::require(util::Crc32::of(payload) == storedCrc,
                  "fcc index: CRC mismatch");

    util::ByteReader r(payload);
    util::require(r.u8() == indexVersion,
                  "fcc index: unknown index version");
    ArchiveIndex index;
    uint64_t chunks = r.varint();
    // One summary is at least 8 one-byte varints plus 8 Bloom bytes
    // (the 64-bit minimum filter); a count the payload cannot hold
    // is corruption — reject it before reserving by it.
    util::require(chunks <= payload.size() / 16,
                  "fcc index: chunk count exceeds payload");
    index.gapUs = static_cast<uint32_t>(r.varint());
    index.chunks.reserve(static_cast<size_t>(chunks));
    for (uint64_t i = 0; i < chunks; ++i) {
        ChunkSummary c;
        c.byteOffset = r.varint();
        c.byteLength = r.varint();
        c.records = r.varint();
        c.packets = r.varint();
        c.maxFlowPackets = r.varint();
        c.minFirstUs = r.varint();
        c.maxEndUs = r.varint();
        uint64_t bits = r.varint();
        util::require(bits >= 64 && bits <= (uint64_t{1} << 30) &&
                          std::has_single_bit(bits),
                      "fcc index: bad Bloom filter size");
        util::require(c.records >= 1, "fcc index: empty chunk");
        util::require(c.maxFlowPackets >= 1 &&
                          c.maxFlowPackets <= c.packets &&
                          c.records <= c.packets,
                      "fcc index: inconsistent packet counts");
        util::require(c.minFirstUs <= c.maxEndUs,
                      "fcc index: inverted time range");
        c.bloomBits = static_cast<uint32_t>(bits);
        c.bloom.resize(static_cast<size_t>(bits / 8));
        r.bytes(c.bloom.data(), c.bloom.size());
        index.chunks.push_back(std::move(c));
    }
    util::require(r.exhausted(), "fcc index: trailing payload bytes");
    return index;
}

} // namespace fcc::codec::fcc
