/**
 * @file
 * Session-based compression/decompression: the open-ended epoch
 * machinery the one-shot wrappers of stream.cpp and the archiver
 * daemon (src/archive) both run on. The flow-closing rules are the
 * paper's §3 (graceful FIN/FIN/ACK, RST, idle timeout), the
 * reconstruction path the §4 bounded-memory flush.
 */

#include "codec/fcc/session.hpp"

#include <algorithm>
#include <memory>
#include <queue>

#include "trace/tsh.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/thread_pool.hpp"

namespace fcc::codec::fcc {

/**
 * Incremental single-flow state: enough to classify packets online
 * (the dependence bit only needs the previous packet's direction)
 * and to emit the flow's datasets entry when it closes.
 */
struct CompressSession::OpenFlow
{
    uint32_t clientIp = 0;
    uint16_t clientPort = 0;
    uint32_t serverIp = 0;
    bool clientKnown = false;
    bool prevFromClient = true;
    bool finFromClient = false;
    bool finFromServer = false;
    uint32_t rttUs = 0;  ///< first direction-change gap
    std::vector<uint16_t> sValues;
    std::vector<uint64_t> packetUs;
};

CompressSession::CompressSession(const FccConfig &cfg,
                                 const SessionOptions &options)
    : cfg_(cfg), options_(options), chi_(cfg.weights),
      store_(cfg.rule)
{
    cfg_.validate();
    datasets_.weights = cfg_.weights;
    stats_.epochs = 1;
}

CompressSession::~CompressSession() = default;

void
CompressSession::feed(const trace::PacketRecord &pkt)
{
    util::require(!sealed_,
                  "fcc session: feed() on a sealed session "
                  "(reArm() first)");
    util::require(pkt.timestampNs >= lastNs_,
                  "fcc stream: input not time-ordered");
    lastNs_ = pkt.timestampNs;
    if (!sawPacket_) {
        firstUs_ = pkt.timestampUs();
        sawPacket_ = true;
    }
    ++epochPackets_;
    ++stats_.packets;

    flow::FlowKey key = flow::FlowKey::fromPacket(pkt);
    auto it = open_.find(key);
    if (it != open_.end() && cfg_.flowTable.idleTimeoutNs > 0 &&
        !it->second.packetUs.empty() &&
        pkt.timestampNs - it->second.packetUs.back() * 1000 >
            cfg_.flowTable.idleTimeoutNs) {
        closeFlow(it->second);
        open_.erase(it);
        it = open_.end();
    }
    if (it == open_.end())
        it = open_.emplace(key, OpenFlow{}).first;
    OpenFlow &flowState = it->second;

    if (!flowState.clientKnown) {
        bool synAck = pkt.hasSyn() && pkt.hasAck();
        flowState.clientIp = synAck ? pkt.dstIp : pkt.srcIp;
        flowState.clientPort = synAck ? pkt.dstPort : pkt.srcPort;
        flowState.serverIp = synAck ? pkt.srcIp : pkt.dstIp;
        flowState.clientKnown = true;
    }
    bool fromClient = pkt.srcIp == flowState.clientIp &&
                      pkt.srcPort == flowState.clientPort;

    flow::PacketClass cls;
    cls.flag = flow::flagClass(pkt.tcpFlags);
    cls.size = flow::sizeClass(pkt.payloadBytes);
    cls.dependent = !flowState.sValues.empty() &&
                    fromClient != flowState.prevFromClient;
    if (cls.dependent && flowState.rttUs == 0) {
        uint64_t gap = pkt.timestampUs() - flowState.packetUs.back();
        flowState.rttUs = static_cast<uint32_t>(
            std::min<uint64_t>(gap, 0xffffffffu));
    }
    flowState.sValues.push_back(chi_.encode(cls));
    flowState.packetUs.push_back(pkt.timestampUs());
    flowState.prevFromClient = fromClient;

    if (pkt.hasFin()) {
        if (fromClient)
            flowState.finFromClient = true;
        else
            flowState.finFromServer = true;
    }
    bool gracefulDone = flowState.finFromClient &&
                        flowState.finFromServer && !pkt.hasFin() &&
                        pkt.hasAck();
    if (pkt.hasRst() || gracefulDone) {
        closeFlow(flowState);
        open_.erase(key);
    }
}

void
CompressSession::feed(std::span<const trace::PacketRecord> batch)
{
    for (const trace::PacketRecord &pkt : batch)
        feed(pkt);
}

void
CompressSession::rotateChunk()
{
    util::require(!sealed_,
                  "fcc session: rotateChunk() on a sealed session");
    util::require(cfg_.container == ContainerFormat::Fcc3,
                  "fcc session: time-based chunk rotation requires "
                  "the fcc3 container");
    if (!sawPacket_)
        return;  // nothing fed yet: no position to cut at
    uint64_t cutUs = lastNs_ / 1000;
    if (chunkCutsUs_.empty() || chunkCutsUs_.back() < cutUs)
        chunkCutsUs_.push_back(cutUs);
}

void
CompressSession::closeFlow(OpenFlow &flowState)
{
    if (flowState.sValues.empty())
        return;
    ++stats_.flows;
    TimeSeqRecord rec;
    rec.firstTimestampUs = flowState.packetUs.front();

    auto [it, isNew] = addrIndex_.try_emplace(
        flowState.serverIp,
        static_cast<uint32_t>(datasets_.addresses.size()));
    if (isNew)
        datasets_.addresses.push_back(flowState.serverIp);
    rec.addressIndex = it->second;

    if (flowState.sValues.size() <= cfg_.shortLimit) {
        flow::SfVector sf;
        sf.values = std::move(flowState.sValues);
        flow::TemplateMatch match = store_.findOrInsert(sf);
        if (match.isNew)
            ++templatesNew_;
        // Compact to per-epoch template indices (first-use order) so
        // a sealed archive only carries the templates it references
        // — self-contained whatever earlier epochs left in the
        // store. With a cold store this is the identity map, which
        // is what keeps single-epoch output bit-identical to the
        // historical one-shot path.
        auto [rit, isNewRef] = templateRemap_.try_emplace(
            match.index,
            static_cast<uint32_t>(templateOrder_.size()));
        if (isNewRef)
            templateOrder_.push_back(match.index);
        rec.isLong = false;
        rec.templateIndex = rit->second;
        rec.rttUs = flowState.rttUs;
    } else {
        LongTemplate tmpl;
        tmpl.sValues = std::move(flowState.sValues);
        tmpl.iptUs.resize(flowState.packetUs.size());
        tmpl.iptUs[0] = 0;
        for (size_t i = 1; i < flowState.packetUs.size(); ++i)
            tmpl.iptUs[i] =
                flowState.packetUs[i] - flowState.packetUs[i - 1];
        rec.isLong = true;
        rec.templateIndex =
            static_cast<uint32_t>(datasets_.longTemplates.size());
        datasets_.longTemplates.push_back(std::move(tmpl));
    }
    datasets_.timeSeq.push_back(rec);
}

std::vector<uint8_t>
CompressSession::seal(SealInfo *info)
{
    util::require(!sealed_,
                  "fcc session: seal() on a sealed session");
    sealed_ = true;

    for (auto &[key, flowState] : open_)
        closeFlow(flowState);
    open_.clear();
    // Flows close out of order; the time-seq dataset is sorted by
    // first-packet timestamp (one record per flow).
    std::sort(datasets_.timeSeq.begin(), datasets_.timeSeq.end(),
              [](const TimeSeqRecord &a, const TimeSeqRecord &b) {
                  return a.firstTimestampUs < b.firstTimestampUs;
              });
    datasets_.shortTemplates.clear();
    datasets_.shortTemplates.reserve(templateOrder_.size());
    for (uint32_t storeIndex : templateOrder_)
        datasets_.shortTemplates.push_back(store_.at(storeIndex));

    // Explicit time-based chunk cuts (rotateChunk): records are now
    // sorted by flow start, so "everything started by the cut" is a
    // prefix; the record-count policy still slices inside segments.
    if (!chunkCutsUs_.empty()) {
        size_t records = datasets_.timeSeq.size();
        std::vector<uint32_t> layout;
        size_t begin = 0;
        auto emitSegment = [&](size_t end) {
            size_t step = cfg_.chunkRecords > 0
                ? cfg_.chunkRecords
                : end - begin;
            while (begin < end) {
                size_t n = std::min(step, end - begin);
                layout.push_back(static_cast<uint32_t>(n));
                begin += n;
            }
        };
        for (uint64_t cutUs : chunkCutsUs_) {
            auto it = std::upper_bound(
                datasets_.timeSeq.begin() + begin,
                datasets_.timeSeq.end(), cutUs,
                [](uint64_t t, const TimeSeqRecord &r) {
                    return t < r.firstTimestampUs;
                });
            emitSegment(static_cast<size_t>(
                it - datasets_.timeSeq.begin()));
        }
        emitSegment(records);
        datasets_.chunkSizes = std::move(layout);
    }

    SizeBreakdown sizes;
    // Container dispatch (FCC1/FCC2/FCC3) shared with the in-memory
    // codec; FCC3 runs its per-column encode jobs on cfg.threads.
    std::vector<uint8_t> bytes =
        serializeDatasets(datasets_, cfg_, sizes);

    uint64_t records = datasets_.timeSeq.size();
    uint64_t chunks = 0;
    if (!datasets_.chunkSizes.empty())
        chunks = datasets_.chunkSizes.size();
    else if (cfg_.container != ContainerFormat::Fcc1 &&
             cfg_.chunkRecords > 0)
        chunks = (records + cfg_.chunkRecords - 1) /
                 cfg_.chunkRecords;

    stats_.outputBytes += bytes.size();
    stats_.chunksSealed += chunks;
    ++stats_.archivesSealed;

    if (info != nullptr) {
        info->records = records;
        info->packets = epochPackets_;
        info->chunks = chunks;
        info->bytes = bytes.size();
        info->minFirstUs = records > 0
            ? datasets_.timeSeq.front().firstTimestampUs
            : 0;
        info->maxLastUs = lastNs_ / 1000;
        info->templatesNew = templatesNew_;
    }
    return bytes;
}

SealInfo
CompressSession::sealToFile(const std::string &path)
{
    SealInfo info;
    std::vector<uint8_t> bytes = seal(&info);
    util::FileByteSink out(path);
    out.write(bytes);
    out.close();
    return info;
}

void
CompressSession::resetEpoch()
{
    datasets_ = Datasets{};
    datasets_.weights = cfg_.weights;
    // A fresh map, not clear(): clear() keeps the grown bucket
    // count, and seal()'s final sweep iterates this map — a re-armed
    // epoch must walk it in exactly a fresh session's order.
    open_ = decltype(open_){};
    addrIndex_.clear();
    templateRemap_.clear();
    templateOrder_.clear();
    chunkCutsUs_.clear();
    lastNs_ = 0;
    firstUs_ = 0;
    sawPacket_ = false;
    epochPackets_ = 0;
    templatesNew_ = 0;
}

void
CompressSession::reArm()
{
    util::require(sealed_,
                  "fcc session: reArm() on an armed session");
    resetEpoch();
    if (!options_.carryTemplates)
        store_ = flow::TemplateStore(cfg_.rule);
    sealed_ = false;
    ++stats_.epochs;
}

// ---- decompression --------------------------------------------------

DecompressSession::DecompressSession(const FccConfig &cfg)
    : cfg_(cfg)
{
}

void
DecompressSession::open(const std::string &fccPath)
{
    // The compressed artifact is read via mmap when possible — the
    // Datasets it decodes to live in memory by design; the
    // *reconstructed packets* never do.
    auto in = util::openByteSource(fccPath);
    std::vector<uint8_t> owned;
    std::span<const uint8_t> bytes = util::readAllBytes(*in, owned);
    archiveBytes_ = bytes.size();
    // One shared decode entry point: zlib-hybrid unwrap, container
    // auto-detection, pooled FCC3 column decode.
    datasets_ = deserializeAuto(bytes, cfg_.threads);
    open_ = true;
}

const Datasets &
DecompressSession::datasets() const
{
    util::require(open_, "fcc session: no archive open");
    return datasets_;
}

StreamStats
DecompressSession::drainTo(trace::TraceSink &sink)
{
    util::require(open_, "fcc session: no archive open");
    util::require(datasets_.fidelity != Fidelity::Flow,
                  "fcc: flow-fidelity archives carry no per-packet "
                  "data to reconstruct");

    FccTraceCompressor codec(cfg_);

    StreamStats archiveStats;
    archiveStats.inputBytes = archiveBytes_;
    archiveStats.flows = datasets_.timeSeq.size();

    // Paper §4: reconstructed packets wait in a time-ordered buffer;
    // everything older than the next not-yet-expanded record's
    // timestamp is flushed to the output file, so peak memory stays
    // near the concurrently active flows (plus, for chunked layouts,
    // one batch of chunks).
    // Canonical total order: equal-timestamp packets must pop in a
    // fixed order whatever the chunk batching (i.e. thread count).
    auto later = [](const trace::PacketRecord &a,
                    const trace::PacketRecord &b) {
        return trace::packetCanonicalLess(b, a);
    };
    std::priority_queue<trace::PacketRecord,
                        std::vector<trace::PacketRecord>,
                        decltype(later)>
        pendingQ(later);

    std::vector<trace::PacketRecord> flushBatch;
    auto flushOlderThan = [&](uint64_t limitNs) {
        flushBatch.clear();
        while (!pendingQ.empty() &&
               pendingQ.top().timestampNs < limitNs) {
            flushBatch.push_back(pendingQ.top());
            pendingQ.pop();
        }
        if (flushBatch.empty())
            return;
        sink.write(std::span<const trace::PacketRecord>(flushBatch));
        archiveStats.packets += flushBatch.size();
    };

    if (!datasets_.chunkSizes.empty()) {
        // Chunked layout: expand a batch of chunks concurrently
        // (per-chunk RNG streams), then flush everything older than
        // the next unexpanded chunk's first record — records are
        // globally time-sorted across chunks, so no later chunk can
        // produce an older packet.
        size_t chunks = datasets_.chunkSizes.size();
        std::vector<size_t> offset(chunks + 1, 0);
        for (size_t c = 0; c < chunks; ++c)
            offset[c + 1] = offset[c] + datasets_.chunkSizes[c];
        util::require(offset[chunks] == datasets_.timeSeq.size(),
                      "fcc: chunk sizes disagree with time-seq");

        unsigned threads = cfg_.threads != 0
            ? cfg_.threads
            : util::ThreadPool::hardwareThreads();
        std::unique_ptr<util::ThreadPool> pool;
        if (threads > 1 && chunks > 1)
            pool = std::make_unique<util::ThreadPool>(threads);
        size_t batchChunks =
            std::max<size_t>(1, size_t{threads} * 2);

        std::vector<std::vector<trace::PacketRecord>> perChunk;
        for (size_t base = 0; base < chunks; base += batchChunks) {
            size_t end = std::min(chunks, base + batchChunks);
            perChunk.assign(end - base, {});
            auto expandOne = [&](size_t i) {
                codec.expandChunk(datasets_, base + i, perChunk[i]);
            };
            if (pool)
                pool->parallelFor(end - base, expandOne);
            else
                for (size_t i = 0; i < end - base; ++i)
                    expandOne(i);
            for (const auto &chunkPackets : perChunk)
                for (const auto &pkt : chunkPackets)
                    pendingQ.push(pkt);
            uint64_t limitNs = end < chunks
                ? datasets_.timeSeq[offset[end]].firstTimestampUs *
                      1000
                : ~0ull;
            flushOlderThan(limitNs);
        }
    } else {
        // Legacy FCC1 (or unchunked FCC3): single sequential RNG
        // stream over all records.
        util::Rng rng(cfg_.decompressSeed);
        std::vector<trace::PacketRecord> flowPackets;
        for (const auto &rec : datasets_.timeSeq) {
            flushOlderThan(rec.firstTimestampUs * 1000);
            flowPackets.clear();
            codec.expandFlow(datasets_, rec, rng, flowPackets);
            for (const auto &pkt : flowPackets)
                pendingQ.push(pkt);
        }
        flushOlderThan(~0ull);
    }
    sink.close();
    archiveStats.outputBytes = sink.bytesWritten();

    datasets_ = Datasets{};
    archiveBytes_ = 0;
    open_ = false;

    stats_.packets += archiveStats.packets;
    stats_.flows += archiveStats.flows;
    stats_.inputBytes += archiveStats.inputBytes;
    stats_.outputBytes += archiveStats.outputBytes;
    ++stats_.epochs;
    return archiveStats;
}

} // namespace fcc::codec::fcc
