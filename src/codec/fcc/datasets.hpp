/**
 * @file
 * The four compressed datasets of the proposed method (paper §3) and
 * their wire formats:
 *
 *  - short-flows-template: for each cluster centre, the number of
 *    packets n followed by the n S-values;
 *  - long-flows-template: n followed by per-packet (S value,
 *    inter-packet time);
 *  - address: the unique destination (server) IP addresses;
 *  - time-seq: one record per flow, sorted by first-packet
 *    timestamp — dataset identifier (S/L), template index, the RTT
 *    (short flows only) and an index into the address dataset.
 *
 * Three containers carry them:
 *  - FCC1 (legacy): one row-interleaved varint stream;
 *  - FCC2 (chunked): FCC1's encoding with the time-seq dataset
 *    framed into independently decodable chunks;
 *  - FCC3 (columnar): every dataset decomposed into typed columns,
 *    each column encoded by a field codec (codec/field) and squeezed
 *    by an entropy backend (codec/backend) — both chosen per column
 *    and recorded in one-byte tags, so a reader needs no out-of-band
 *    configuration. Optionally *indexed* (codec/fcc/index): the
 *    time-seq columns are then framed per chunk and a chunk/flow
 *    index block trails the frames, which is what the random-access
 *    query subsystem (src/query) seeks by.
 *
 * The byte-level layouts are normative in docs/FORMAT.md.
 */

#ifndef FCC_CODEC_FCC_DATASETS_HPP
#define FCC_CODEC_FCC_DATASETS_HPP

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "codec/backend/backend.hpp"
#include "codec/fcc/fidelity.hpp"
#include "codec/field/field_codec.hpp"
#include "flow/characterize.hpp"

namespace fcc::util {
class ByteReader;
class ThreadPool;
}

namespace fcc::codec::fcc {

struct IndexOptions;

/** One long-flow template: S values plus exact inter-packet times. */
struct LongTemplate
{
    std::vector<uint16_t> sValues;
    /** ipt[0] == 0; ipt[i] = t_i - t_{i-1} in microseconds. */
    std::vector<uint64_t> iptUs;

    bool operator==(const LongTemplate &) const = default;
};

/** One record of the time-seq dataset (≈ 8 bytes per flow, §5). */
struct TimeSeqRecord
{
    uint64_t firstTimestampUs = 0;
    bool isLong = false;          ///< dataset identifier S/L
    uint32_t templateIndex = 0;   ///< position in its template dataset
    uint32_t rttUs = 0;           ///< short flows only (§3)
    uint32_t addressIndex = 0;    ///< into the address dataset

    bool operator==(const TimeSeqRecord &) const = default;
};

/**
 * One record of the flow-fidelity profile (docs/FIDELITY.md): a flow
 * reduced to its aggregates. No per-packet data survives, so a
 * flow-tier archive can never be expanded back into packets — the
 * payload-byte and duration fields are computed at degrade time with
 * the §4 reconstruction rules, so they equal what an exact-tier
 * decode would have measured.
 */
struct FlowRecord
{
    uint64_t firstTimestampUs = 0;
    uint64_t payloadBytes = 0;  ///< sum of representative sizes
    uint64_t durationUs = 0;    ///< last - first reconstructed pkt
    uint32_t packets = 0;       ///< >= 1
    uint32_t addressIndex = 0;  ///< into the address dataset

    bool operator==(const FlowRecord &) const = default;
};

/** In-memory form of a compressed trace. */
struct Datasets
{
    flow::Weights weights;
    std::vector<flow::SfVector> shortTemplates;
    std::vector<LongTemplate> longTemplates;
    std::vector<uint32_t> addresses;
    std::vector<TimeSeqRecord> timeSeq;  ///< sorted by timestamp

    /**
     * Chunk layout of the FCC2/FCC3 containers: element c is the
     * number of consecutive timeSeq records in chunk c (summing to
     * timeSeq.size()). Empty for the legacy FCC1 container. Chunks
     * expand independently — each owns one RNG stream — which is
     * what lets decompression run multi-threaded yet
     * byte-deterministic.
     */
    std::vector<uint32_t> chunkSizes;

    /**
     * Fidelity tier these datasets carry (codec/fcc/fidelity.hpp).
     * Exact and the two per-packet lossy tiers use the fields above;
     * the Flow tier instead fills flowRecords (one per flow, sorted
     * by timestamp, counted by chunkSizes) and leaves the template
     * and time-seq datasets empty.
     */
    Fidelity fidelity = Fidelity::Exact;
    /** Quantized tier only: the timestamp grid in microseconds. */
    uint64_t quantumUs = 0;
    std::vector<FlowRecord> flowRecords;  ///< Flow tier only
};

/** Serialized size of each dataset, for the §5 accounting. */
struct SizeBreakdown
{
    uint64_t shortTemplateBytes = 0;
    uint64_t longTemplateBytes = 0;
    uint64_t addressBytes = 0;
    uint64_t timeSeqBytes = 0;
    uint64_t headerBytes = 0;
    /** Chunk/flow index block + footer (indexed FCC3 only). */
    uint64_t indexBytes = 0;

    uint64_t
    total() const
    {
        return shortTemplateBytes + longTemplateBytes + addressBytes +
               timeSeqBytes + headerBytes + indexBytes;
    }
};

/**
 * Per-column accounting of an FCC3 container: which field codec and
 * entropy backend the column chose, and how many bytes it occupies
 * before (encodedBytes) and after (storedBytes, including the
 * per-column framing) the entropy stage.
 */
struct ColumnStat
{
    std::string name;
    field::FieldCodec codec = field::FieldCodec::Plain;
    backend::EntropyBackend backend = backend::EntropyBackend::Store;
    uint64_t values = 0;
    uint64_t encodedBytes = 0;
    uint64_t storedBytes = 0;
};

/** What a container parse learned about the bytes on the wire. */
struct ContainerStat
{
    uint8_t version = 0;  ///< 1, 2 or 3
    /**
     * On-wire bytes per dataset. For FCC3 these are the *compressed*
     * column sizes (framing included), i.e. where the file's bytes
     * actually go — not the pre-backend serialized sizes.
     */
    SizeBreakdown sizes;
    /**
     * FCC3 only. In an indexed archive the five time-seq columns are
     * chunk-framed; their entries aggregate every chunk's frame
     * (values and bytes summed, codec/backend tags from the first
     * chunk — later chunks may choose differently).
     */
    std::vector<ColumnStat> columns;
    /** Indexed FCC3 layout; its bytes are in sizes.indexBytes. */
    bool hasIndex = false;
    /** Fidelity tier the header declares (FCC3 only; else Exact). */
    Fidelity fidelity = Fidelity::Exact;
    /** Quantized tier only: the declared timestamp grid (us). */
    uint64_t quantumUs = 0;
};

/** Serialize to the legacy (single-stream) FCC1 wire format. */
std::vector<uint8_t> serialize(const Datasets &datasets);

/** Serialize and report per-dataset sizes through @p breakdown. */
std::vector<uint8_t> serialize(const Datasets &datasets,
                               SizeBreakdown &breakdown);

/**
 * Serialize to the chunked FCC2 wire format: the template and
 * address datasets are shared, the time-seq dataset is framed into
 * chunks of @p recordsPerChunk records (the last may be shorter),
 * each prefixed with its record count and byte length so a reader
 * can expand chunks in parallel. @p recordsPerChunk == 0 falls back
 * to FCC1.
 */
std::vector<uint8_t> serializeChunked(const Datasets &datasets,
                                      uint32_t recordsPerChunk,
                                      SizeBreakdown &breakdown);

/**
 * Serialize to the columnar FCC3 wire format: the datasets are
 * decomposed into typed columns (template lengths, concatenated S
 * values, inter-packet times, timestamps, flags, indices, chunk
 * layout), each encoded by the cost-cheapest field codec and then
 * squeezed by @p backend — per column, with an automatic fallback
 * to Store whenever the backend would expand the column. Column
 * encode jobs run on @p pool when given (results are byte-identical
 * with or without it). @p breakdown receives the on-wire
 * (post-backend) bytes per dataset; @p columns, when non-null, the
 * per-column accounting. The chunk layout is taken from
 * datasets.chunkSizes when present, else derived from
 * @p recordsPerChunk (0 keeps the time-seq dataset unchunked, which
 * expands on the legacy sequential path).
 *
 * With a non-null @p index the archive is written *seekable*: the
 * five time-seq columns are framed per chunk (each chunk an
 * independently decodable byte range) and a chunk/flow index block
 * (codec/fcc/index.hpp) is appended after the frames; the layout
 * requires a chunked time-seq dataset unless it is empty.
 */
std::vector<uint8_t>
serializeColumnar(const Datasets &datasets, uint32_t recordsPerChunk,
                  backend::EntropyBackend backend,
                  SizeBreakdown &breakdown,
                  util::ThreadPool *pool = nullptr,
                  std::vector<ColumnStat> *columns = nullptr,
                  const IndexOptions *index = nullptr);

/**
 * Parse the FCC1, FCC2 or FCC3 wire format (auto-detected by magic);
 * FCC2/FCC3 fill Datasets::chunkSizes. FCC3 column decode jobs run
 * on @p pool when given; @p stat, when non-null, receives the
 * container version and on-wire size accounting.
 * @throws fcc::util::Error on malformed input.
 */
Datasets deserialize(std::span<const uint8_t> data,
                     util::ThreadPool *pool,
                     ContainerStat *stat = nullptr);

/** deserialize() without a thread pool. */
Datasets deserialize(std::span<const uint8_t> data);

// ---- FCC3 column frames ---------------------------------------------
//
// The framing shared by the monolithic parser above and the
// random-access reader (src/query), which decodes single chunks
// straight off an mmap'd archive.

/**
 * The fixed column set of the FCC3 container, in canonical order
 * (docs/FORMAT.md §4). The column count is written to the file, so
 * adding a column bumps the format observably instead of silently
 * misparsing. In the indexed layout the five ts_* columns are
 * framed per chunk (chunk_len precedes them on the wire).
 */
enum Fcc3ColumnId : size_t
{
    ColShortLen = 0,   ///< short-template lengths
    ColShortS,         ///< concatenated short-template S values
    ColLongLen,        ///< long-template lengths
    ColLongS,          ///< concatenated long-template S values
    ColLongIpt,        ///< concatenated inter-packet times
    ColAddr,           ///< unique server addresses
    ColTsTime,         ///< per-flow first timestamps (absolute)
    ColTsIsLong,       ///< per-flow S/L identifier
    ColTsTemplate,     ///< per-flow template index
    ColTsRtt,          ///< per-SHORT-flow RTT (one value per short)
    ColTsAddr,         ///< per-flow address index
    ColChunkLen,       ///< records per chunk (empty = unchunked)
    fcc3ColumnCount
};

/** Decoded FCC3 columns, indexed by Fcc3ColumnId. */
using Fcc3Columns =
    std::array<std::vector<uint64_t>, fcc3ColumnCount>;

/**
 * Reassemble and validate Datasets from decoded FCC3 columns (the
 * inverse of the columnar decomposition); @p weights must already
 * be validated decodable. @throws fcc::util::Error on any
 * inconsistency between the columns.
 */
Datasets assembleFcc3Columns(const flow::Weights &weights,
                             Fcc3Columns &columns);

/**
 * Reassemble and validate Datasets from decoded columns of a
 * flow-fidelity archive, whose time-seq column slots are repurposed
 * (FORMAT.md §4.5): ts_islong carries per-flow payload bytes,
 * ts_template per-flow packet counts, ts_rtt per-flow durations (one
 * value per flow); the five template columns must be empty. The
 * returned datasets have fidelity == Fidelity::Flow.
 * @throws fcc::util::Error on any inconsistency.
 */
Datasets assembleFlowColumns(const flow::Weights &weights,
                             Fcc3Columns &columns);

/** One parsed (not yet decoded) FCC3 column frame. */
struct ColumnFrame
{
    field::FieldCodec codec = field::FieldCodec::Plain;
    backend::EntropyBackend backend = backend::EntropyBackend::Store;
    uint64_t values = 0;
    uint64_t encodedBytes = 0;   ///< pre-backend (field-coded) size
    uint64_t storedBytes = 0;    ///< on-wire size incl. framing
    /** Zero-copy view into the source buffer. */
    std::span<const uint8_t> payload;
};

/**
 * Parse one column frame at @p r's cursor (tag validation and
 * corruption caps included; the payload stays a view into the
 * reader's buffer). @throws fcc::util::Error on malformed framing.
 */
ColumnFrame readColumnFrame(util::ByteReader &r);

/**
 * Entropy-decompress and field-decode @p frame back to its values.
 * @throws fcc::util::Error on malformed input.
 */
std::vector<uint64_t> decodeColumnFrame(const ColumnFrame &frame);

} // namespace fcc::codec::fcc

#endif // FCC_CODEC_FCC_DATASETS_HPP
