/**
 * @file
 * The four compressed datasets of the proposed method (paper §3) and
 * their wire format:
 *
 *  - short-flows-template: for each cluster centre, the number of
 *    packets n followed by the n S-values;
 *  - long-flows-template: n followed by per-packet (S value,
 *    inter-packet time);
 *  - address: the unique destination (server) IP addresses;
 *  - time-seq: one record per flow, sorted by first-packet
 *    timestamp — dataset identifier (S/L), template index, the RTT
 *    (short flows only) and an index into the address dataset.
 */

#ifndef FCC_CODEC_FCC_DATASETS_HPP
#define FCC_CODEC_FCC_DATASETS_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "flow/characterize.hpp"

namespace fcc::codec::fcc {

/** One long-flow template: S values plus exact inter-packet times. */
struct LongTemplate
{
    std::vector<uint16_t> sValues;
    /** ipt[0] == 0; ipt[i] = t_i - t_{i-1} in microseconds. */
    std::vector<uint64_t> iptUs;
};

/** One record of the time-seq dataset (≈ 8 bytes per flow, §5). */
struct TimeSeqRecord
{
    uint64_t firstTimestampUs = 0;
    bool isLong = false;          ///< dataset identifier S/L
    uint32_t templateIndex = 0;   ///< position in its template dataset
    uint32_t rttUs = 0;           ///< short flows only (§3)
    uint32_t addressIndex = 0;    ///< into the address dataset
};

/** In-memory form of a compressed trace. */
struct Datasets
{
    flow::Weights weights;
    std::vector<flow::SfVector> shortTemplates;
    std::vector<LongTemplate> longTemplates;
    std::vector<uint32_t> addresses;
    std::vector<TimeSeqRecord> timeSeq;  ///< sorted by timestamp

    /**
     * Chunk layout of the FCC2 container: element c is the number of
     * consecutive timeSeq records in chunk c (summing to
     * timeSeq.size()). Empty for the legacy FCC1 container. Chunks
     * decode and expand independently — each restarts the timestamp
     * delta and owns one RNG stream — which is what lets
     * decompression run multi-threaded yet byte-deterministic.
     */
    std::vector<uint32_t> chunkSizes;
};

/** Serialized size of each dataset, for the §5 accounting. */
struct SizeBreakdown
{
    uint64_t shortTemplateBytes = 0;
    uint64_t longTemplateBytes = 0;
    uint64_t addressBytes = 0;
    uint64_t timeSeqBytes = 0;
    uint64_t headerBytes = 0;

    uint64_t
    total() const
    {
        return shortTemplateBytes + longTemplateBytes + addressBytes +
               timeSeqBytes + headerBytes;
    }
};

/** Serialize to the legacy (single-stream) FCC1 wire format. */
std::vector<uint8_t> serialize(const Datasets &datasets);

/** Serialize and report per-dataset sizes through @p breakdown. */
std::vector<uint8_t> serialize(const Datasets &datasets,
                               SizeBreakdown &breakdown);

/**
 * Serialize to the chunked FCC2 wire format: the template and
 * address datasets are shared, the time-seq dataset is framed into
 * chunks of @p recordsPerChunk records (the last may be shorter),
 * each prefixed with its record count and byte length so a reader
 * can expand chunks in parallel. @p recordsPerChunk == 0 falls back
 * to FCC1.
 */
std::vector<uint8_t> serializeChunked(const Datasets &datasets,
                                      uint32_t recordsPerChunk,
                                      SizeBreakdown &breakdown);

/**
 * Parse the FCC1 or FCC2 wire format (auto-detected by magic);
 * FCC2 fills Datasets::chunkSizes.
 * @throws fcc::util::Error on malformed input.
 */
Datasets deserialize(std::span<const uint8_t> data);

} // namespace fcc::codec::fcc

#endif // FCC_CODEC_FCC_DATASETS_HPP
