/**
 * @file
 * The four compressed datasets of the proposed method (paper §3) and
 * their wire formats:
 *
 *  - short-flows-template: for each cluster centre, the number of
 *    packets n followed by the n S-values;
 *  - long-flows-template: n followed by per-packet (S value,
 *    inter-packet time);
 *  - address: the unique destination (server) IP addresses;
 *  - time-seq: one record per flow, sorted by first-packet
 *    timestamp — dataset identifier (S/L), template index, the RTT
 *    (short flows only) and an index into the address dataset.
 *
 * Three containers carry them:
 *  - FCC1 (legacy): one row-interleaved varint stream;
 *  - FCC2 (chunked): FCC1's encoding with the time-seq dataset
 *    framed into independently decodable chunks;
 *  - FCC3 (columnar): every dataset decomposed into typed columns,
 *    each column encoded by a field codec (codec/field) and squeezed
 *    by an entropy backend (codec/backend) — both chosen per column
 *    and recorded in one-byte tags, so a reader needs no out-of-band
 *    configuration.
 */

#ifndef FCC_CODEC_FCC_DATASETS_HPP
#define FCC_CODEC_FCC_DATASETS_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "codec/backend/backend.hpp"
#include "codec/field/field_codec.hpp"
#include "flow/characterize.hpp"

namespace fcc::util {
class ThreadPool;
}

namespace fcc::codec::fcc {

/** One long-flow template: S values plus exact inter-packet times. */
struct LongTemplate
{
    std::vector<uint16_t> sValues;
    /** ipt[0] == 0; ipt[i] = t_i - t_{i-1} in microseconds. */
    std::vector<uint64_t> iptUs;

    bool operator==(const LongTemplate &) const = default;
};

/** One record of the time-seq dataset (≈ 8 bytes per flow, §5). */
struct TimeSeqRecord
{
    uint64_t firstTimestampUs = 0;
    bool isLong = false;          ///< dataset identifier S/L
    uint32_t templateIndex = 0;   ///< position in its template dataset
    uint32_t rttUs = 0;           ///< short flows only (§3)
    uint32_t addressIndex = 0;    ///< into the address dataset

    bool operator==(const TimeSeqRecord &) const = default;
};

/** In-memory form of a compressed trace. */
struct Datasets
{
    flow::Weights weights;
    std::vector<flow::SfVector> shortTemplates;
    std::vector<LongTemplate> longTemplates;
    std::vector<uint32_t> addresses;
    std::vector<TimeSeqRecord> timeSeq;  ///< sorted by timestamp

    /**
     * Chunk layout of the FCC2/FCC3 containers: element c is the
     * number of consecutive timeSeq records in chunk c (summing to
     * timeSeq.size()). Empty for the legacy FCC1 container. Chunks
     * expand independently — each owns one RNG stream — which is
     * what lets decompression run multi-threaded yet
     * byte-deterministic.
     */
    std::vector<uint32_t> chunkSizes;
};

/** Serialized size of each dataset, for the §5 accounting. */
struct SizeBreakdown
{
    uint64_t shortTemplateBytes = 0;
    uint64_t longTemplateBytes = 0;
    uint64_t addressBytes = 0;
    uint64_t timeSeqBytes = 0;
    uint64_t headerBytes = 0;

    uint64_t
    total() const
    {
        return shortTemplateBytes + longTemplateBytes + addressBytes +
               timeSeqBytes + headerBytes;
    }
};

/**
 * Per-column accounting of an FCC3 container: which field codec and
 * entropy backend the column chose, and how many bytes it occupies
 * before (encodedBytes) and after (storedBytes, including the
 * per-column framing) the entropy stage.
 */
struct ColumnStat
{
    std::string name;
    field::FieldCodec codec = field::FieldCodec::Plain;
    backend::EntropyBackend backend = backend::EntropyBackend::Store;
    uint64_t values = 0;
    uint64_t encodedBytes = 0;
    uint64_t storedBytes = 0;
};

/** What a container parse learned about the bytes on the wire. */
struct ContainerStat
{
    uint8_t version = 0;  ///< 1, 2 or 3
    /**
     * On-wire bytes per dataset. For FCC3 these are the *compressed*
     * column sizes (framing included), i.e. where the file's bytes
     * actually go — not the pre-backend serialized sizes.
     */
    SizeBreakdown sizes;
    std::vector<ColumnStat> columns;  ///< FCC3 only
};

/** Serialize to the legacy (single-stream) FCC1 wire format. */
std::vector<uint8_t> serialize(const Datasets &datasets);

/** Serialize and report per-dataset sizes through @p breakdown. */
std::vector<uint8_t> serialize(const Datasets &datasets,
                               SizeBreakdown &breakdown);

/**
 * Serialize to the chunked FCC2 wire format: the template and
 * address datasets are shared, the time-seq dataset is framed into
 * chunks of @p recordsPerChunk records (the last may be shorter),
 * each prefixed with its record count and byte length so a reader
 * can expand chunks in parallel. @p recordsPerChunk == 0 falls back
 * to FCC1.
 */
std::vector<uint8_t> serializeChunked(const Datasets &datasets,
                                      uint32_t recordsPerChunk,
                                      SizeBreakdown &breakdown);

/**
 * Serialize to the columnar FCC3 wire format: the datasets are
 * decomposed into typed columns (template lengths, concatenated S
 * values, inter-packet times, timestamps, flags, indices, chunk
 * layout), each encoded by the cost-cheapest field codec and then
 * squeezed by @p backend — per column, with an automatic fallback
 * to Store whenever the backend would expand the column. Column
 * encode jobs run on @p pool when given (results are byte-identical
 * with or without it). @p breakdown receives the on-wire
 * (post-backend) bytes per dataset; @p columns, when non-null, the
 * per-column accounting. The chunk layout is taken from
 * datasets.chunkSizes when present, else derived from
 * @p recordsPerChunk (0 keeps the time-seq dataset unchunked, which
 * expands on the legacy sequential path).
 */
std::vector<uint8_t>
serializeColumnar(const Datasets &datasets, uint32_t recordsPerChunk,
                  backend::EntropyBackend backend,
                  SizeBreakdown &breakdown,
                  util::ThreadPool *pool = nullptr,
                  std::vector<ColumnStat> *columns = nullptr);

/**
 * Parse the FCC1, FCC2 or FCC3 wire format (auto-detected by magic);
 * FCC2/FCC3 fill Datasets::chunkSizes. FCC3 column decode jobs run
 * on @p pool when given; @p stat, when non-null, receives the
 * container version and on-wire size accounting.
 * @throws fcc::util::Error on malformed input.
 */
Datasets deserialize(std::span<const uint8_t> data,
                     util::ThreadPool *pool,
                     ContainerStat *stat = nullptr);

/** deserialize() without a thread pool. */
Datasets deserialize(std::span<const uint8_t> data);

} // namespace fcc::codec::fcc

#endif // FCC_CODEC_FCC_DATASETS_HPP
