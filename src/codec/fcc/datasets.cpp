/**
 * @file
 * Wire format of the four §3 datasets (short/long templates,
 * addresses, time-seq): varint-heavy serialization with a per-
 * dataset SizeBreakdown, behind one magic-tagged container.
 *
 * Two containers share the template/address encodings:
 *  - FCC1 (legacy): one delta-encoded time-seq stream;
 *  - FCC2 (chunked): the time-seq dataset framed into
 *    independently decodable chunks (record count + byte length
 *    prefix, per-chunk timestamp delta restart) so a reader can
 *    expand chunks on multiple threads.
 */

#include "codec/fcc/datasets.hpp"

#include <algorithm>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fcc::codec::fcc {

namespace {

constexpr uint32_t magicV1 = 0x31434346u;  // "FCC1"
constexpr uint32_t magicV2 = 0x32434346u;  // "FCC2"

/** Header plus the three shared datasets (everything but time-seq). */
void
writeShared(const Datasets &d, uint32_t magic, util::ByteWriter &w,
            SizeBreakdown &sizes)
{
    // Header: magic + the weight configuration the S values use.
    w.u32(magic);
    w.u16(d.weights.w1);
    w.u16(d.weights.w2);
    w.u16(d.weights.w3);
    sizes.headerBytes = w.size();

    // short-flows-template: n then n S values (one byte each).
    size_t mark = w.size();
    w.varint(d.shortTemplates.size());
    for (const auto &tmpl : d.shortTemplates) {
        w.varint(tmpl.size());
        for (uint16_t s : tmpl.values) {
            util::require(s <= 0xff,
                          "fcc: S value exceeds one byte; use "
                          "smaller weights");
            w.u8(static_cast<uint8_t>(s));
        }
    }
    sizes.shortTemplateBytes = w.size() - mark;

    // long-flows-template: n then per packet (S, inter-packet time).
    mark = w.size();
    w.varint(d.longTemplates.size());
    for (const auto &tmpl : d.longTemplates) {
        util::require(tmpl.sValues.size() == tmpl.iptUs.size(),
                      "fcc: long template S/ipt size mismatch");
        w.varint(tmpl.sValues.size());
        for (size_t i = 0; i < tmpl.sValues.size(); ++i) {
            util::require(tmpl.sValues[i] <= 0xff,
                          "fcc: S value exceeds one byte");
            w.u8(static_cast<uint8_t>(tmpl.sValues[i]));
            w.varint(tmpl.iptUs[i]);
        }
    }
    sizes.longTemplateBytes = w.size() - mark;

    // address: unique destination addresses.
    mark = w.size();
    w.varint(d.addresses.size());
    for (uint32_t addr : d.addresses)
        w.u32(addr);
    sizes.addressBytes = w.size() - mark;
}

/** One time-seq record, timestamp delta-encoded against @p prevUs. */
void
writeRecord(util::ByteWriter &w, const TimeSeqRecord &rec,
            uint64_t &prevUs)
{
    util::require(rec.firstTimestampUs >= prevUs,
                  "fcc: time-seq records not sorted");
    w.u8(rec.isLong ? 1 : 0);
    w.varint(rec.firstTimestampUs - prevUs);
    w.varint(rec.templateIndex);
    if (!rec.isLong)
        w.varint(rec.rttUs);
    w.varint(rec.addressIndex);
    prevUs = rec.firstTimestampUs;
}

void
serializeInto(const Datasets &d, util::ByteWriter &w,
              SizeBreakdown &sizes)
{
    writeShared(d, magicV1, w, sizes);

    // time-seq: sorted by timestamp, so timestamps delta-encode.
    size_t mark = w.size();
    w.varint(d.timeSeq.size());
    uint64_t prevUs = 0;
    for (const auto &rec : d.timeSeq)
        writeRecord(w, rec, prevUs);
    sizes.timeSeqBytes = w.size() - mark;
}

/** Shared header/template/address parse; returns the reader cursor. */
Datasets
readShared(util::ByteReader &r)
{
    Datasets d;
    d.weights.w1 = r.u16();
    d.weights.w2 = r.u16();
    d.weights.w3 = r.u16();
    util::require(d.weights.decodable(),
                  "fcc: stored weights are not decodable");

    uint64_t shortCount = r.varint();
    // Reservations are capped by the bytes actually present so a
    // corrupt count cannot trigger a huge allocation.
    d.shortTemplates.reserve(
        std::min<uint64_t>(shortCount, r.remaining()));
    for (uint64_t i = 0; i < shortCount; ++i) {
        uint64_t n = r.varint();
        util::require(n >= 1, "fcc: empty short template");
        util::require(n <= r.remaining(),
                      "fcc: short template longer than stream");
        flow::SfVector sf;
        sf.values.reserve(n);
        for (uint64_t k = 0; k < n; ++k)
            sf.values.push_back(r.u8());
        d.shortTemplates.push_back(std::move(sf));
    }

    uint64_t longCount = r.varint();
    d.longTemplates.reserve(
        std::min<uint64_t>(longCount, r.remaining()));
    for (uint64_t i = 0; i < longCount; ++i) {
        uint64_t n = r.varint();
        util::require(n >= 1, "fcc: empty long template");
        util::require(n <= r.remaining(),
                      "fcc: long template longer than stream");
        LongTemplate tmpl;
        tmpl.sValues.reserve(n);
        tmpl.iptUs.reserve(n);
        for (uint64_t k = 0; k < n; ++k) {
            tmpl.sValues.push_back(r.u8());
            tmpl.iptUs.push_back(r.varint());
        }
        d.longTemplates.push_back(std::move(tmpl));
    }

    uint64_t addrCount = r.varint();
    d.addresses.reserve(
        std::min<uint64_t>(addrCount, r.remaining()));
    for (uint64_t i = 0; i < addrCount; ++i)
        d.addresses.push_back(r.u32());
    return d;
}

/** One record; validates indices against the shared datasets. */
TimeSeqRecord
readRecord(util::ByteReader &r, const Datasets &d, uint64_t &prevUs)
{
    TimeSeqRecord rec;
    uint8_t id = r.u8();
    util::require(id <= 1, "fcc: bad dataset identifier");
    rec.isLong = id == 1;
    prevUs += r.varint();
    rec.firstTimestampUs = prevUs;
    rec.templateIndex = static_cast<uint32_t>(r.varint());
    if (!rec.isLong)
        rec.rttUs = static_cast<uint32_t>(r.varint());
    rec.addressIndex = static_cast<uint32_t>(r.varint());

    size_t limit = rec.isLong ? d.longTemplates.size()
                              : d.shortTemplates.size();
    util::require(rec.templateIndex < limit,
                  "fcc: template index out of range");
    util::require(rec.addressIndex < d.addresses.size(),
                  "fcc: address index out of range");
    return rec;
}

} // namespace

std::vector<uint8_t>
serialize(const Datasets &datasets)
{
    SizeBreakdown sizes;
    return serialize(datasets, sizes);
}

std::vector<uint8_t>
serialize(const Datasets &datasets, SizeBreakdown &breakdown)
{
    util::ByteWriter w;
    breakdown = SizeBreakdown{};
    serializeInto(datasets, w, breakdown);
    return w.take();
}

std::vector<uint8_t>
serializeChunked(const Datasets &datasets, uint32_t recordsPerChunk,
                 SizeBreakdown &breakdown)
{
    if (recordsPerChunk == 0)
        return serialize(datasets, breakdown);

    util::ByteWriter w;
    breakdown = SizeBreakdown{};
    writeShared(datasets, magicV2, w, breakdown);

    size_t mark = w.size();
    size_t records = datasets.timeSeq.size();
    size_t chunks = (records + recordsPerChunk - 1) / recordsPerChunk;
    w.varint(chunks);
    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * recordsPerChunk;
        size_t end = std::min(records,
                              begin + size_t{recordsPerChunk});
        // Each chunk restarts the timestamp delta so it decodes
        // without its predecessors.
        util::ByteWriter chunk;
        uint64_t prevUs = 0;
        for (size_t i = begin; i < end; ++i)
            writeRecord(chunk, datasets.timeSeq[i], prevUs);
        w.varint(end - begin);
        w.varint(chunk.size());
        w.bytes(chunk.data());
    }
    breakdown.timeSeqBytes = w.size() - mark;
    return w.take();
}

Datasets
deserialize(std::span<const uint8_t> data)
{
    util::ByteReader r(data);
    util::require(r.remaining() >= 10, "fcc: truncated header");
    uint32_t magic = r.u32();
    util::require(magic == magicV1 || magic == magicV2,
                  "fcc: bad magic");
    Datasets d = readShared(r);

    if (magic == magicV1) {
        uint64_t flowCount = r.varint();
        d.timeSeq.reserve(
            std::min<uint64_t>(flowCount, r.remaining()));
        uint64_t prevUs = 0;
        for (uint64_t i = 0; i < flowCount; ++i)
            d.timeSeq.push_back(readRecord(r, d, prevUs));
    } else {
        uint64_t chunkCount = r.varint();
        d.chunkSizes.reserve(
            std::min<uint64_t>(chunkCount, r.remaining()));
        uint64_t lastUs = 0;
        for (uint64_t c = 0; c < chunkCount; ++c) {
            uint64_t recordCount = r.varint();
            uint64_t byteLength = r.varint();
            util::require(byteLength <= r.remaining(),
                          "fcc: chunk longer than stream");
            size_t start = r.position();
            uint64_t prevUs = 0;
            for (uint64_t i = 0; i < recordCount; ++i) {
                TimeSeqRecord rec = readRecord(r, d, prevUs);
                // Chunks delta-restart but the dataset stays
                // globally time-sorted.
                util::require(rec.firstTimestampUs >= lastUs,
                              "fcc: chunks not time-sorted");
                lastUs = rec.firstTimestampUs;
                d.timeSeq.push_back(rec);
            }
            util::require(r.position() - start == byteLength,
                          "fcc: chunk length mismatch");
            d.chunkSizes.push_back(
                static_cast<uint32_t>(recordCount));
        }
    }
    util::require(r.exhausted(), "fcc: trailing bytes");
    return d;
}

} // namespace fcc::codec::fcc
