/**
 * @file
 * Wire formats of the four §3 datasets (short/long templates,
 * addresses, time-seq) behind three magic-tagged containers:
 *
 *  - FCC1 (legacy): one row-interleaved, delta-encoded varint
 *    stream;
 *  - FCC2 (chunked): the time-seq dataset framed into independently
 *    decodable chunks (record count + byte length prefix, per-chunk
 *    timestamp delta restart) so a reader can expand chunks on
 *    multiple threads;
 *  - FCC3 (columnar): the datasets decomposed into typed columns,
 *    each run through a field codec (codec/field) picked by exact
 *    cost and an entropy backend (codec/backend) with per-column
 *    Store fallback. Column encode/decode jobs are independent, so
 *    they parallelize on a thread pool without changing a byte of
 *    output.
 */

#include "codec/fcc/datasets.hpp"

#include <algorithm>
#include <array>
#include <new>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace fcc::codec::fcc {

namespace {

constexpr uint32_t magicV1 = 0x31434346u;  // "FCC1"
constexpr uint32_t magicV2 = 0x32434346u;  // "FCC2"
constexpr uint32_t magicV3 = 0x33434346u;  // "FCC3"

/** Header plus the three shared datasets (everything but time-seq). */
void
writeShared(const Datasets &d, uint32_t magic, util::ByteWriter &w,
            SizeBreakdown &sizes)
{
    // Header: magic + the weight configuration the S values use.
    w.u32(magic);
    w.u16(d.weights.w1);
    w.u16(d.weights.w2);
    w.u16(d.weights.w3);
    sizes.headerBytes = w.size();

    // short-flows-template: n then n S values (one byte each).
    size_t mark = w.size();
    w.varint(d.shortTemplates.size());
    for (const auto &tmpl : d.shortTemplates) {
        w.varint(tmpl.size());
        for (uint16_t s : tmpl.values) {
            util::require(s <= 0xff,
                          "fcc: S value exceeds one byte; use "
                          "smaller weights");
            w.u8(static_cast<uint8_t>(s));
        }
    }
    sizes.shortTemplateBytes = w.size() - mark;

    // long-flows-template: n then per packet (S, inter-packet time).
    mark = w.size();
    w.varint(d.longTemplates.size());
    for (const auto &tmpl : d.longTemplates) {
        util::require(tmpl.sValues.size() == tmpl.iptUs.size(),
                      "fcc: long template S/ipt size mismatch");
        w.varint(tmpl.sValues.size());
        for (size_t i = 0; i < tmpl.sValues.size(); ++i) {
            util::require(tmpl.sValues[i] <= 0xff,
                          "fcc: S value exceeds one byte");
            w.u8(static_cast<uint8_t>(tmpl.sValues[i]));
            w.varint(tmpl.iptUs[i]);
        }
    }
    sizes.longTemplateBytes = w.size() - mark;

    // address: unique destination addresses.
    mark = w.size();
    w.varint(d.addresses.size());
    for (uint32_t addr : d.addresses)
        w.u32(addr);
    sizes.addressBytes = w.size() - mark;
}

/** One time-seq record, timestamp delta-encoded against @p prevUs. */
void
writeRecord(util::ByteWriter &w, const TimeSeqRecord &rec,
            uint64_t &prevUs)
{
    util::require(rec.firstTimestampUs >= prevUs,
                  "fcc: time-seq records not sorted");
    w.u8(rec.isLong ? 1 : 0);
    w.varint(rec.firstTimestampUs - prevUs);
    w.varint(rec.templateIndex);
    if (!rec.isLong)
        w.varint(rec.rttUs);
    w.varint(rec.addressIndex);
    prevUs = rec.firstTimestampUs;
}

void
serializeInto(const Datasets &d, util::ByteWriter &w,
              SizeBreakdown &sizes)
{
    writeShared(d, magicV1, w, sizes);

    // time-seq: sorted by timestamp, so timestamps delta-encode.
    size_t mark = w.size();
    w.varint(d.timeSeq.size());
    uint64_t prevUs = 0;
    for (const auto &rec : d.timeSeq)
        writeRecord(w, rec, prevUs);
    sizes.timeSeqBytes = w.size() - mark;
}

/**
 * Shared header/template/address parse; returns the partly filled
 * datasets. @p sizes, when non-null, receives per-section byte
 * counts (header bytes include the magic already consumed by the
 * caller).
 */
Datasets
readShared(util::ByteReader &r, SizeBreakdown *sizes)
{
    Datasets d;
    d.weights.w1 = r.u16();
    d.weights.w2 = r.u16();
    d.weights.w3 = r.u16();
    util::require(d.weights.decodable(),
                  "fcc: stored weights are not decodable");
    if (sizes != nullptr)
        sizes->headerBytes = r.position();

    size_t mark = r.position();
    uint64_t shortCount = r.varint();
    // Reservations are capped by the bytes actually present so a
    // corrupt count cannot trigger a huge allocation.
    d.shortTemplates.reserve(
        std::min<uint64_t>(shortCount, r.remaining()));
    for (uint64_t i = 0; i < shortCount; ++i) {
        uint64_t n = r.varint();
        util::require(n >= 1, "fcc: empty short template");
        util::require(n <= r.remaining(),
                      "fcc: short template longer than stream");
        flow::SfVector sf;
        sf.values.reserve(n);
        for (uint64_t k = 0; k < n; ++k)
            sf.values.push_back(r.u8());
        d.shortTemplates.push_back(std::move(sf));
    }
    if (sizes != nullptr)
        sizes->shortTemplateBytes = r.position() - mark;

    mark = r.position();
    uint64_t longCount = r.varint();
    d.longTemplates.reserve(
        std::min<uint64_t>(longCount, r.remaining()));
    for (uint64_t i = 0; i < longCount; ++i) {
        uint64_t n = r.varint();
        util::require(n >= 1, "fcc: empty long template");
        util::require(n <= r.remaining(),
                      "fcc: long template longer than stream");
        LongTemplate tmpl;
        tmpl.sValues.reserve(n);
        tmpl.iptUs.reserve(n);
        for (uint64_t k = 0; k < n; ++k) {
            tmpl.sValues.push_back(r.u8());
            tmpl.iptUs.push_back(r.varint());
        }
        d.longTemplates.push_back(std::move(tmpl));
    }
    if (sizes != nullptr)
        sizes->longTemplateBytes = r.position() - mark;

    mark = r.position();
    uint64_t addrCount = r.varint();
    d.addresses.reserve(
        std::min<uint64_t>(addrCount, r.remaining()));
    for (uint64_t i = 0; i < addrCount; ++i)
        d.addresses.push_back(r.u32());
    if (sizes != nullptr)
        sizes->addressBytes = r.position() - mark;
    return d;
}

/** One record; validates indices against the shared datasets. */
TimeSeqRecord
readRecord(util::ByteReader &r, const Datasets &d, uint64_t &prevUs)
{
    TimeSeqRecord rec;
    uint8_t id = r.u8();
    util::require(id <= 1, "fcc: bad dataset identifier");
    rec.isLong = id == 1;
    prevUs += r.varint();
    rec.firstTimestampUs = prevUs;
    rec.templateIndex = static_cast<uint32_t>(r.varint());
    if (!rec.isLong)
        rec.rttUs = static_cast<uint32_t>(r.varint());
    rec.addressIndex = static_cast<uint32_t>(r.varint());

    size_t limit = rec.isLong ? d.longTemplates.size()
                              : d.shortTemplates.size();
    util::require(rec.templateIndex < limit,
                  "fcc: template index out of range");
    util::require(rec.addressIndex < d.addresses.size(),
                  "fcc: address index out of range");
    return rec;
}

// ---------------------------------------------------------------------------
// FCC3: columnar container
// ---------------------------------------------------------------------------

/**
 * The fixed column set of the FCC3 container, in wire order. The
 * column count is written to the file, so adding a column bumps the
 * format observably instead of silently misparsing.
 */
enum ColumnId : size_t
{
    ColShortLen = 0,   ///< short-template lengths
    ColShortS,         ///< concatenated short-template S values
    ColLongLen,        ///< long-template lengths
    ColLongS,          ///< concatenated long-template S values
    ColLongIpt,        ///< concatenated inter-packet times
    ColAddr,           ///< unique server addresses
    ColTsTime,         ///< per-flow first timestamps (absolute)
    ColTsIsLong,       ///< per-flow S/L identifier
    ColTsTemplate,     ///< per-flow template index
    ColTsRtt,          ///< per-SHORT-flow RTT (one value per short)
    ColTsAddr,         ///< per-flow address index
    ColChunkLen,       ///< records per chunk (empty = unchunked)
    columnCount
};

constexpr const char *columnNames[columnCount] = {
    "short_len", "short_s",     "long_len", "long_s",
    "long_ipt",  "addr",        "ts_time",  "ts_islong",
    "ts_template", "ts_rtt",    "ts_addr",  "chunk_len",
};

/**
 * Hard value ceiling on decode, per column and across all columns:
 * bounds the memory a corrupt count can demand before anything is
 * allocated (run-length columns break the one-byte-per-value floor
 * the row formats rely on, so the count itself must be capped —
 * 2^27 values is ~1 GiB of u64s, far above any dataset the
 * in-memory model handles).
 */
constexpr uint64_t maxColumnValues = uint64_t{1} << 27;

using ColumnValues = std::array<std::vector<uint64_t>, columnCount>;

/** Decompose the datasets into the twelve FCC3 columns. */
ColumnValues
splitColumns(const Datasets &d, uint32_t recordsPerChunk)
{
    ColumnValues cols;

    for (const auto &tmpl : d.shortTemplates) {
        util::require(tmpl.size() >= 1, "fcc: empty short template");
        cols[ColShortLen].push_back(tmpl.size());
        for (uint16_t s : tmpl.values) {
            util::require(s <= 0xff,
                          "fcc: S value exceeds one byte; use "
                          "smaller weights");
            cols[ColShortS].push_back(s);
        }
    }

    for (const auto &tmpl : d.longTemplates) {
        util::require(tmpl.sValues.size() == tmpl.iptUs.size(),
                      "fcc: long template S/ipt size mismatch");
        util::require(tmpl.sValues.size() >= 1,
                      "fcc: empty long template");
        cols[ColLongLen].push_back(tmpl.sValues.size());
        for (uint16_t s : tmpl.sValues) {
            util::require(s <= 0xff, "fcc: S value exceeds one byte");
            cols[ColLongS].push_back(s);
        }
        cols[ColLongIpt].insert(cols[ColLongIpt].end(),
                                tmpl.iptUs.begin(),
                                tmpl.iptUs.end());
    }

    for (uint32_t addr : d.addresses)
        cols[ColAddr].push_back(addr);

    uint64_t prevUs = 0;
    for (const auto &rec : d.timeSeq) {
        util::require(rec.firstTimestampUs >= prevUs,
                      "fcc: time-seq records not sorted");
        prevUs = rec.firstTimestampUs;
        cols[ColTsTime].push_back(rec.firstTimestampUs);
        cols[ColTsIsLong].push_back(rec.isLong ? 1 : 0);
        cols[ColTsTemplate].push_back(rec.templateIndex);
        if (!rec.isLong)
            cols[ColTsRtt].push_back(rec.rttUs);
        cols[ColTsAddr].push_back(rec.addressIndex);
    }

    if (!d.chunkSizes.empty()) {
        uint64_t total = 0;
        for (uint32_t c : d.chunkSizes) {
            util::require(c >= 1, "fcc: empty chunk");
            cols[ColChunkLen].push_back(c);
            total += c;
        }
        util::require(total == d.timeSeq.size(),
                      "fcc: chunk sizes disagree with time-seq");
    } else if (recordsPerChunk > 0) {
        size_t records = d.timeSeq.size();
        for (size_t begin = 0; begin < records;
             begin += recordsPerChunk)
            cols[ColChunkLen].push_back(std::min<size_t>(
                recordsPerChunk, records - begin));
    }
    return cols;
}

/** One encoded-and-squeezed column, ready for framing. */
struct EncodedColumn
{
    field::FieldCodec codec = field::FieldCodec::Plain;
    backend::EntropyBackend backend =
        backend::EntropyBackend::Store;
    uint64_t values = 0;
    uint64_t encodedBytes = 0;
    std::vector<uint8_t> payload;
};

/** Field-codec + entropy-backend pipeline of one column. */
EncodedColumn
encodeOneColumn(std::span<const uint64_t> values,
                backend::EntropyBackend requested)
{
    EncodedColumn out;
    out.values = values.size();
    out.codec = field::chooseCodec(values);
    std::vector<uint8_t> encoded =
        field::encodeColumn(values, out.codec);
    out.encodedBytes = encoded.size();
    if (requested != backend::EntropyBackend::Store) {
        std::vector<uint8_t> squeezed =
            backend::entropyCompress(encoded, requested);
        if (squeezed.size() < encoded.size()) {
            out.backend = requested;
            out.payload = std::move(squeezed);
            return out;
        }
        // The backend did not pay for this column; store it raw so
        // the container never loses to its own serialization.
    }
    out.payload = std::move(encoded);
    return out;
}

/** Dataset bucket of a column, for the §5-style size accounting. */
uint64_t &
breakdownBucket(SizeBreakdown &sizes, size_t col)
{
    switch (col) {
      case ColShortLen:
      case ColShortS:
        return sizes.shortTemplateBytes;
      case ColLongLen:
      case ColLongS:
      case ColLongIpt:
        return sizes.longTemplateBytes;
      case ColAddr:
        return sizes.addressBytes;
      default:
        return sizes.timeSeqBytes;
    }
}

Datasets
deserializeColumnar(util::ByteReader &r, util::ThreadPool *pool,
                    ContainerStat *stat)
{
    Datasets d;
    d.weights.w1 = r.u16();
    d.weights.w2 = r.u16();
    d.weights.w3 = r.u16();
    util::require(d.weights.decodable(),
                  "fcc: stored weights are not decodable");
    uint8_t cols = r.u8();
    util::require(cols == columnCount,
                  "fcc3: unexpected column count");
    uint64_t headerBytes = r.position();

    // Sequential framing scan: cheap, and it leaves one independent
    // (decompress + decode) job per column for the pool.
    struct Frame
    {
        field::FieldCodec codec = field::FieldCodec::Plain;
        backend::EntropyBackend backend =
            backend::EntropyBackend::Store;
        uint64_t values = 0;
        uint64_t encodedBytes = 0;
        uint64_t storedBytes = 0;
        std::vector<uint8_t> payload;
    };
    std::array<Frame, columnCount> frames;
    uint64_t totalValues = 0;
    for (auto &frame : frames) {
        size_t mark = r.position();
        frame.values = r.varint();
        util::require(frame.values <= maxColumnValues,
                      "fcc3: column too large");
        totalValues += frame.values;
        util::require(totalValues <= maxColumnValues,
                      "fcc3: columns too large");
        uint8_t codecTag = r.u8();
        util::require(codecTag < field::fieldCodecCount,
                      "fcc3: bad field codec tag");
        frame.codec = static_cast<field::FieldCodec>(codecTag);
        uint8_t backendTag = r.u8();
        util::require(backendTag < backend::entropyBackendCount,
                      "fcc3: bad entropy backend tag");
        frame.backend =
            static_cast<backend::EntropyBackend>(backendTag);
        frame.encodedBytes = r.varint();
        // No codec stores more than ~20 bytes per value (dict:
        // one max varint each for entry and reference), so a wild
        // encoded size is corruption, not data — reject it before
        // the decompressor allocates for it.
        util::require(frame.encodedBytes <=
                          (frame.values + 1) * 20,
                      "fcc3: encoded size out of range");
        frame.payload = r.blob();
        frame.storedBytes = r.position() - mark;
    }
    util::require(r.exhausted(), "fcc: trailing bytes");

    ColumnValues values;
    auto decodeOne = [&](size_t c) {
        const Frame &frame = frames[c];
        std::vector<uint8_t> encoded = backend::entropyDecompress(
            frame.payload, frame.backend,
            static_cast<size_t>(frame.encodedBytes));
        values[c] = field::decodeColumn(
            encoded, frame.codec,
            static_cast<size_t>(frame.values));
    };
    try {
        if (pool != nullptr)
            pool->parallelFor(columnCount, decodeOne);
        else
            for (size_t c = 0; c < columnCount; ++c)
                decodeOne(c);
    } catch (const std::bad_alloc &) {
        // A corrupt (but cap-passing) count exhausted memory —
        // report it as bad input, like every other malformed
        // construct, instead of escaping as bad_alloc.
        throw util::Error("fcc3: column sizes exhaust memory");
    }

    // ---- Reassemble and validate the datasets ----
    auto take32 = [](uint64_t v, const char *what) {
        util::require(v <= 0xffffffffu, what);
        return static_cast<uint32_t>(v);
    };

    size_t cursor = 0;
    d.shortTemplates.reserve(values[ColShortLen].size());
    for (uint64_t n : values[ColShortLen]) {
        util::require(n >= 1, "fcc: empty short template");
        util::require(cursor + n <= values[ColShortS].size(),
                      "fcc3: short_s column too short");
        flow::SfVector sf;
        sf.values.reserve(n);
        for (uint64_t k = 0; k < n; ++k) {
            uint64_t s = values[ColShortS][cursor++];
            util::require(s <= 0xff, "fcc: S value exceeds one byte");
            sf.values.push_back(static_cast<uint16_t>(s));
        }
        d.shortTemplates.push_back(std::move(sf));
    }
    util::require(cursor == values[ColShortS].size(),
                  "fcc3: short_s column too long");

    util::require(values[ColLongS].size() ==
                      values[ColLongIpt].size(),
                  "fcc3: long_s/long_ipt length mismatch");
    cursor = 0;
    d.longTemplates.reserve(values[ColLongLen].size());
    for (uint64_t n : values[ColLongLen]) {
        util::require(n >= 1, "fcc: empty long template");
        util::require(cursor + n <= values[ColLongS].size(),
                      "fcc3: long_s column too short");
        LongTemplate tmpl;
        tmpl.sValues.reserve(n);
        tmpl.iptUs.reserve(n);
        for (uint64_t k = 0; k < n; ++k) {
            uint64_t s = values[ColLongS][cursor];
            util::require(s <= 0xff, "fcc: S value exceeds one byte");
            tmpl.sValues.push_back(static_cast<uint16_t>(s));
            tmpl.iptUs.push_back(values[ColLongIpt][cursor]);
            ++cursor;
        }
        d.longTemplates.push_back(std::move(tmpl));
    }
    util::require(cursor == values[ColLongS].size(),
                  "fcc3: long_s column too long");

    d.addresses.reserve(values[ColAddr].size());
    for (uint64_t addr : values[ColAddr])
        d.addresses.push_back(
            take32(addr, "fcc3: address exceeds 32 bits"));

    size_t flows = values[ColTsTime].size();
    util::require(values[ColTsIsLong].size() == flows &&
                      values[ColTsTemplate].size() == flows &&
                      values[ColTsAddr].size() == flows,
                  "fcc3: time-seq column length mismatch");
    size_t rttCursor = 0;
    uint64_t prevUs = 0;
    d.timeSeq.reserve(flows);
    for (size_t i = 0; i < flows; ++i) {
        TimeSeqRecord rec;
        rec.firstTimestampUs = values[ColTsTime][i];
        util::require(rec.firstTimestampUs >= prevUs,
                      "fcc: time-seq records not sorted");
        prevUs = rec.firstTimestampUs;
        uint64_t id = values[ColTsIsLong][i];
        util::require(id <= 1, "fcc: bad dataset identifier");
        rec.isLong = id == 1;
        rec.templateIndex = take32(
            values[ColTsTemplate][i],
            "fcc3: template index exceeds 32 bits");
        size_t limit = rec.isLong ? d.longTemplates.size()
                                  : d.shortTemplates.size();
        util::require(rec.templateIndex < limit,
                      "fcc: template index out of range");
        if (!rec.isLong) {
            util::require(rttCursor < values[ColTsRtt].size(),
                          "fcc3: ts_rtt column too short");
            rec.rttUs =
                take32(values[ColTsRtt][rttCursor++],
                       "fcc3: RTT exceeds 32 bits");
        }
        rec.addressIndex = take32(
            values[ColTsAddr][i],
            "fcc3: address index exceeds 32 bits");
        util::require(rec.addressIndex < d.addresses.size(),
                      "fcc: address index out of range");
        d.timeSeq.push_back(rec);
    }
    util::require(rttCursor == values[ColTsRtt].size(),
                  "fcc3: ts_rtt column too long");

    if (!values[ColChunkLen].empty()) {
        uint64_t total = 0;
        d.chunkSizes.reserve(values[ColChunkLen].size());
        for (uint64_t c : values[ColChunkLen]) {
            util::require(c >= 1, "fcc: empty chunk");
            total += c;
            d.chunkSizes.push_back(
                take32(c, "fcc3: chunk size exceeds 32 bits"));
        }
        util::require(total == d.timeSeq.size(),
                      "fcc: chunk sizes disagree with time-seq");
    }

    if (stat != nullptr) {
        stat->version = 3;
        stat->sizes = SizeBreakdown{};
        stat->sizes.headerBytes = headerBytes;
        stat->columns.clear();
        stat->columns.reserve(columnCount);
        for (size_t c = 0; c < columnCount; ++c) {
            const Frame &frame = frames[c];
            breakdownBucket(stat->sizes, c) += frame.storedBytes;
            stat->columns.push_back({columnNames[c], frame.codec,
                                     frame.backend, frame.values,
                                     frame.encodedBytes,
                                     frame.storedBytes});
        }
    }
    return d;
}

} // namespace

std::vector<uint8_t>
serialize(const Datasets &datasets)
{
    SizeBreakdown sizes;
    return serialize(datasets, sizes);
}

std::vector<uint8_t>
serialize(const Datasets &datasets, SizeBreakdown &breakdown)
{
    util::ByteWriter w;
    breakdown = SizeBreakdown{};
    serializeInto(datasets, w, breakdown);
    return w.take();
}

std::vector<uint8_t>
serializeChunked(const Datasets &datasets, uint32_t recordsPerChunk,
                 SizeBreakdown &breakdown)
{
    if (recordsPerChunk == 0)
        return serialize(datasets, breakdown);

    util::ByteWriter w;
    breakdown = SizeBreakdown{};
    writeShared(datasets, magicV2, w, breakdown);

    size_t mark = w.size();
    size_t records = datasets.timeSeq.size();
    size_t chunks = (records + recordsPerChunk - 1) / recordsPerChunk;
    w.varint(chunks);
    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * recordsPerChunk;
        size_t end = std::min(records,
                              begin + size_t{recordsPerChunk});
        // Each chunk restarts the timestamp delta so it decodes
        // without its predecessors.
        util::ByteWriter chunk;
        uint64_t prevUs = 0;
        for (size_t i = begin; i < end; ++i)
            writeRecord(chunk, datasets.timeSeq[i], prevUs);
        w.varint(end - begin);
        w.varint(chunk.size());
        w.bytes(chunk.data());
    }
    breakdown.timeSeqBytes = w.size() - mark;
    return w.take();
}

std::vector<uint8_t>
serializeColumnar(const Datasets &datasets, uint32_t recordsPerChunk,
                  backend::EntropyBackend backend,
                  SizeBreakdown &breakdown, util::ThreadPool *pool,
                  std::vector<ColumnStat> *columns)
{
    ColumnValues values = splitColumns(datasets, recordsPerChunk);

    // One encode job per column; results land in fixed slots, so
    // the output is byte-identical at any thread count.
    std::array<EncodedColumn, columnCount> encoded;
    auto encodeOne = [&](size_t c) {
        encoded[c] = encodeOneColumn(values[c], backend);
    };
    if (pool != nullptr)
        pool->parallelFor(columnCount, encodeOne);
    else
        for (size_t c = 0; c < columnCount; ++c)
            encodeOne(c);

    util::ByteWriter w;
    breakdown = SizeBreakdown{};
    w.u32(magicV3);
    w.u16(datasets.weights.w1);
    w.u16(datasets.weights.w2);
    w.u16(datasets.weights.w3);
    w.u8(static_cast<uint8_t>(columnCount));
    breakdown.headerBytes = w.size();

    if (columns != nullptr)
        columns->clear();
    for (size_t c = 0; c < columnCount; ++c) {
        const EncodedColumn &col = encoded[c];
        size_t mark = w.size();
        w.varint(col.values);
        w.u8(static_cast<uint8_t>(col.codec));
        w.u8(static_cast<uint8_t>(col.backend));
        w.varint(col.encodedBytes);
        w.blob(col.payload);
        uint64_t storedBytes = w.size() - mark;
        breakdownBucket(breakdown, c) += storedBytes;
        if (columns != nullptr)
            columns->push_back({columnNames[c], col.codec,
                                col.backend, col.values,
                                col.encodedBytes, storedBytes});
    }
    return w.take();
}

Datasets
deserialize(std::span<const uint8_t> data, util::ThreadPool *pool,
            ContainerStat *stat)
{
    util::ByteReader r(data);
    util::require(r.remaining() >= 10, "fcc: truncated header");
    uint32_t magic = r.u32();
    util::require(magic == magicV1 || magic == magicV2 ||
                      magic == magicV3,
                  "fcc: bad magic");
    if (magic == magicV3)
        return deserializeColumnar(r, pool, stat);

    SizeBreakdown *sizes = stat != nullptr ? &stat->sizes : nullptr;
    if (stat != nullptr) {
        *stat = ContainerStat{};
        stat->version = magic == magicV1 ? 1 : 2;
    }
    Datasets d = readShared(r, sizes);

    size_t mark = r.position();
    if (magic == magicV1) {
        uint64_t flowCount = r.varint();
        d.timeSeq.reserve(
            std::min<uint64_t>(flowCount, r.remaining()));
        uint64_t prevUs = 0;
        for (uint64_t i = 0; i < flowCount; ++i)
            d.timeSeq.push_back(readRecord(r, d, prevUs));
    } else {
        uint64_t chunkCount = r.varint();
        d.chunkSizes.reserve(
            std::min<uint64_t>(chunkCount, r.remaining()));
        uint64_t lastUs = 0;
        for (uint64_t c = 0; c < chunkCount; ++c) {
            uint64_t recordCount = r.varint();
            uint64_t byteLength = r.varint();
            util::require(byteLength <= r.remaining(),
                          "fcc: chunk longer than stream");
            size_t start = r.position();
            uint64_t prevUs = 0;
            for (uint64_t i = 0; i < recordCount; ++i) {
                TimeSeqRecord rec = readRecord(r, d, prevUs);
                // Chunks delta-restart but the dataset stays
                // globally time-sorted.
                util::require(rec.firstTimestampUs >= lastUs,
                              "fcc: chunks not time-sorted");
                lastUs = rec.firstTimestampUs;
                d.timeSeq.push_back(rec);
            }
            util::require(r.position() - start == byteLength,
                          "fcc: chunk length mismatch");
            d.chunkSizes.push_back(
                static_cast<uint32_t>(recordCount));
        }
    }
    if (sizes != nullptr)
        sizes->timeSeqBytes = r.position() - mark;
    util::require(r.exhausted(), "fcc: trailing bytes");
    return d;
}

Datasets
deserialize(std::span<const uint8_t> data)
{
    return deserialize(data, nullptr, nullptr);
}

} // namespace fcc::codec::fcc
