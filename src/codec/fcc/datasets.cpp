/**
 * @file
 * Wire formats of the four §3 datasets (short/long templates,
 * addresses, time-seq) behind three magic-tagged containers:
 *
 *  - FCC1 (legacy): one row-interleaved, delta-encoded varint
 *    stream;
 *  - FCC2 (chunked): the time-seq dataset framed into independently
 *    decodable chunks (record count + byte length prefix, per-chunk
 *    timestamp delta restart) so a reader can expand chunks on
 *    multiple threads;
 *  - FCC3 (columnar): the datasets decomposed into typed columns,
 *    each run through a field codec (codec/field) picked by exact
 *    cost and an entropy backend (codec/backend) with per-column
 *    Store fallback. Column encode/decode jobs are independent, so
 *    they parallelize on a thread pool without changing a byte of
 *    output. The indexed variant (high bit of the column-count
 *    byte) frames the five time-seq columns per chunk and appends
 *    the chunk/flow index block of codec/fcc/index.hpp, making
 *    every chunk an independently seekable byte range.
 */

#include "codec/fcc/datasets.hpp"

#include <algorithm>
#include <array>
#include <new>

#include "codec/fcc/index.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace fcc::codec::fcc {

namespace {

constexpr uint32_t magicV1 = 0x31434346u;  // "FCC1"
constexpr uint32_t magicV2 = 0x32434346u;  // "FCC2"
constexpr uint32_t magicV3 = 0x33434346u;  // "FCC3"

/** Header plus the three shared datasets (everything but time-seq). */
void
writeShared(const Datasets &d, uint32_t magic, util::ByteWriter &w,
            SizeBreakdown &sizes)
{
    // The row containers have no fidelity header: writing degraded
    // datasets through them would silently shed the tier marker.
    util::require(d.fidelity == Fidelity::Exact,
                  "fcc: lossy fidelity tiers require the fcc3 "
                  "container");
    // Header: magic + the weight configuration the S values use.
    w.u32(magic);
    w.u16(d.weights.w1);
    w.u16(d.weights.w2);
    w.u16(d.weights.w3);
    sizes.headerBytes = w.size();

    // short-flows-template: n then n S values (one byte each).
    size_t mark = w.size();
    w.varint(d.shortTemplates.size());
    for (const auto &tmpl : d.shortTemplates) {
        w.varint(tmpl.size());
        for (uint16_t s : tmpl.values) {
            util::require(s <= 0xff,
                          "fcc: S value exceeds one byte; use "
                          "smaller weights");
            w.u8(static_cast<uint8_t>(s));
        }
    }
    sizes.shortTemplateBytes = w.size() - mark;

    // long-flows-template: n then per packet (S, inter-packet time).
    mark = w.size();
    w.varint(d.longTemplates.size());
    for (const auto &tmpl : d.longTemplates) {
        util::require(tmpl.sValues.size() == tmpl.iptUs.size(),
                      "fcc: long template S/ipt size mismatch");
        w.varint(tmpl.sValues.size());
        for (size_t i = 0; i < tmpl.sValues.size(); ++i) {
            util::require(tmpl.sValues[i] <= 0xff,
                          "fcc: S value exceeds one byte");
            w.u8(static_cast<uint8_t>(tmpl.sValues[i]));
            w.varint(tmpl.iptUs[i]);
        }
    }
    sizes.longTemplateBytes = w.size() - mark;

    // address: unique destination addresses.
    mark = w.size();
    w.varint(d.addresses.size());
    for (uint32_t addr : d.addresses)
        w.u32(addr);
    sizes.addressBytes = w.size() - mark;
}

/** One time-seq record, timestamp delta-encoded against @p prevUs. */
void
writeRecord(util::ByteWriter &w, const TimeSeqRecord &rec,
            uint64_t &prevUs)
{
    util::require(rec.firstTimestampUs >= prevUs,
                  "fcc: time-seq records not sorted");
    w.u8(rec.isLong ? 1 : 0);
    w.varint(rec.firstTimestampUs - prevUs);
    w.varint(rec.templateIndex);
    if (!rec.isLong)
        w.varint(rec.rttUs);
    w.varint(rec.addressIndex);
    prevUs = rec.firstTimestampUs;
}

void
serializeInto(const Datasets &d, util::ByteWriter &w,
              SizeBreakdown &sizes)
{
    writeShared(d, magicV1, w, sizes);

    // time-seq: sorted by timestamp, so timestamps delta-encode.
    size_t mark = w.size();
    w.varint(d.timeSeq.size());
    uint64_t prevUs = 0;
    for (const auto &rec : d.timeSeq)
        writeRecord(w, rec, prevUs);
    sizes.timeSeqBytes = w.size() - mark;
}

/**
 * Shared header/template/address parse; returns the partly filled
 * datasets. @p sizes, when non-null, receives per-section byte
 * counts (header bytes include the magic already consumed by the
 * caller).
 */
Datasets
readShared(util::ByteReader &r, SizeBreakdown *sizes)
{
    Datasets d;
    d.weights.w1 = r.u16();
    d.weights.w2 = r.u16();
    d.weights.w3 = r.u16();
    util::require(d.weights.decodable(),
                  "fcc: stored weights are not decodable");
    if (sizes != nullptr)
        sizes->headerBytes = r.position();

    size_t mark = r.position();
    uint64_t shortCount = r.varint();
    // Reservations are capped by the bytes actually present so a
    // corrupt count cannot trigger a huge allocation.
    d.shortTemplates.reserve(
        std::min<uint64_t>(shortCount, r.remaining()));
    for (uint64_t i = 0; i < shortCount; ++i) {
        uint64_t n = r.varint();
        util::require(n >= 1, "fcc: empty short template");
        util::require(n <= r.remaining(),
                      "fcc: short template longer than stream");
        flow::SfVector sf;
        sf.values.reserve(n);
        for (uint64_t k = 0; k < n; ++k)
            sf.values.push_back(r.u8());
        d.shortTemplates.push_back(std::move(sf));
    }
    if (sizes != nullptr)
        sizes->shortTemplateBytes = r.position() - mark;

    mark = r.position();
    uint64_t longCount = r.varint();
    d.longTemplates.reserve(
        std::min<uint64_t>(longCount, r.remaining()));
    for (uint64_t i = 0; i < longCount; ++i) {
        uint64_t n = r.varint();
        util::require(n >= 1, "fcc: empty long template");
        util::require(n <= r.remaining(),
                      "fcc: long template longer than stream");
        LongTemplate tmpl;
        tmpl.sValues.reserve(n);
        tmpl.iptUs.reserve(n);
        for (uint64_t k = 0; k < n; ++k) {
            tmpl.sValues.push_back(r.u8());
            tmpl.iptUs.push_back(r.varint());
        }
        d.longTemplates.push_back(std::move(tmpl));
    }
    if (sizes != nullptr)
        sizes->longTemplateBytes = r.position() - mark;

    mark = r.position();
    uint64_t addrCount = r.varint();
    d.addresses.reserve(
        std::min<uint64_t>(addrCount, r.remaining()));
    for (uint64_t i = 0; i < addrCount; ++i)
        d.addresses.push_back(r.u32());
    if (sizes != nullptr)
        sizes->addressBytes = r.position() - mark;
    return d;
}

/** One record; validates indices against the shared datasets. */
TimeSeqRecord
readRecord(util::ByteReader &r, const Datasets &d, uint64_t &prevUs)
{
    TimeSeqRecord rec;
    uint8_t id = r.u8();
    util::require(id <= 1, "fcc: bad dataset identifier");
    rec.isLong = id == 1;
    prevUs += r.varint();
    rec.firstTimestampUs = prevUs;
    rec.templateIndex = static_cast<uint32_t>(r.varint());
    if (!rec.isLong)
        rec.rttUs = static_cast<uint32_t>(r.varint());
    rec.addressIndex = static_cast<uint32_t>(r.varint());

    size_t limit = rec.isLong ? d.longTemplates.size()
                              : d.shortTemplates.size();
    util::require(rec.templateIndex < limit,
                  "fcc: template index out of range");
    util::require(rec.addressIndex < d.addresses.size(),
                  "fcc: address index out of range");
    return rec;
}

// ---------------------------------------------------------------------------
// FCC3: columnar container
// ---------------------------------------------------------------------------

// The column ids live in the header (Fcc3ColumnId) — the
// random-access reader shares them; short aliases here.
constexpr size_t columnCount = fcc3ColumnCount;
using ColumnValues = Fcc3Columns;

constexpr const char *columnNames[columnCount] = {
    "short_len", "short_s",     "long_len", "long_s",
    "long_ipt",  "addr",        "ts_time",  "ts_islong",
    "ts_template", "ts_rtt",    "ts_addr",  "chunk_len",
};

/**
 * Hard value ceiling on decode, per column and across all columns:
 * bounds the memory a corrupt count can demand before anything is
 * allocated (run-length columns break the one-byte-per-value floor
 * the row formats rely on, so the count itself must be capped —
 * 2^27 values is ~1 GiB of u64s, far above any dataset the
 * in-memory model handles).
 */
constexpr uint64_t maxColumnValues = uint64_t{1} << 27;

/**
 * Decompose flow-fidelity datasets into the twelve column slots:
 * the template columns stay empty, the five time-seq slots carry
 * the per-flow record fields (FORMAT.md §4.5) — the framing, the
 * chunk machinery and the index layout work unchanged.
 */
ColumnValues
splitFlowColumns(const Datasets &d)
{
    util::require(d.shortTemplates.empty() &&
                      d.longTemplates.empty() && d.timeSeq.empty(),
                  "fcc: flow-fidelity datasets must not carry "
                  "per-packet data");
    ColumnValues cols;
    for (uint32_t addr : d.addresses)
        cols[ColAddr].push_back(addr);
    uint64_t prevUs = 0;
    for (const FlowRecord &fl : d.flowRecords) {
        util::require(fl.firstTimestampUs >= prevUs,
                      "fcc: flow records not sorted");
        prevUs = fl.firstTimestampUs;
        util::require(fl.packets >= 1, "fcc: empty flow record");
        util::require(fl.addressIndex < d.addresses.size(),
                      "fcc: address index out of range");
        cols[ColTsTime].push_back(fl.firstTimestampUs);
        cols[ColTsIsLong].push_back(fl.payloadBytes);
        cols[ColTsTemplate].push_back(fl.packets);
        cols[ColTsRtt].push_back(fl.durationUs);
        cols[ColTsAddr].push_back(fl.addressIndex);
    }
    return cols;
}

/** Decompose the datasets into the twelve FCC3 columns. */
ColumnValues
splitColumns(const Datasets &d, uint32_t recordsPerChunk)
{
    if (d.fidelity == Fidelity::Flow) {
        ColumnValues cols = splitFlowColumns(d);
        size_t records = d.flowRecords.size();
        if (!d.chunkSizes.empty()) {
            uint64_t total = 0;
            for (uint32_t c : d.chunkSizes) {
                util::require(c >= 1, "fcc: empty chunk");
                cols[ColChunkLen].push_back(c);
                total += c;
            }
            util::require(total == records,
                          "fcc: chunk sizes disagree with flow "
                          "records");
        } else if (recordsPerChunk > 0) {
            for (size_t begin = 0; begin < records;
                 begin += recordsPerChunk)
                cols[ColChunkLen].push_back(std::min<size_t>(
                    recordsPerChunk, records - begin));
        }
        return cols;
    }

    util::require(d.flowRecords.empty(),
                  "fcc: flow records present outside the flow "
                  "fidelity tier");
    ColumnValues cols;

    for (const auto &tmpl : d.shortTemplates) {
        util::require(tmpl.size() >= 1, "fcc: empty short template");
        cols[ColShortLen].push_back(tmpl.size());
        for (uint16_t s : tmpl.values) {
            util::require(s <= 0xff,
                          "fcc: S value exceeds one byte; use "
                          "smaller weights");
            cols[ColShortS].push_back(s);
        }
    }

    for (const auto &tmpl : d.longTemplates) {
        util::require(tmpl.sValues.size() == tmpl.iptUs.size(),
                      "fcc: long template S/ipt size mismatch");
        util::require(tmpl.sValues.size() >= 1,
                      "fcc: empty long template");
        cols[ColLongLen].push_back(tmpl.sValues.size());
        for (uint16_t s : tmpl.sValues) {
            util::require(s <= 0xff, "fcc: S value exceeds one byte");
            cols[ColLongS].push_back(s);
        }
        cols[ColLongIpt].insert(cols[ColLongIpt].end(),
                                tmpl.iptUs.begin(),
                                tmpl.iptUs.end());
    }

    for (uint32_t addr : d.addresses)
        cols[ColAddr].push_back(addr);

    uint64_t prevUs = 0;
    for (const auto &rec : d.timeSeq) {
        util::require(rec.firstTimestampUs >= prevUs,
                      "fcc: time-seq records not sorted");
        prevUs = rec.firstTimestampUs;
        cols[ColTsTime].push_back(rec.firstTimestampUs);
        cols[ColTsIsLong].push_back(rec.isLong ? 1 : 0);
        cols[ColTsTemplate].push_back(rec.templateIndex);
        if (!rec.isLong)
            cols[ColTsRtt].push_back(rec.rttUs);
        cols[ColTsAddr].push_back(rec.addressIndex);
    }

    if (!d.chunkSizes.empty()) {
        uint64_t total = 0;
        for (uint32_t c : d.chunkSizes) {
            util::require(c >= 1, "fcc: empty chunk");
            cols[ColChunkLen].push_back(c);
            total += c;
        }
        util::require(total == d.timeSeq.size(),
                      "fcc: chunk sizes disagree with time-seq");
    } else if (recordsPerChunk > 0) {
        size_t records = d.timeSeq.size();
        for (size_t begin = 0; begin < records;
             begin += recordsPerChunk)
            cols[ColChunkLen].push_back(std::min<size_t>(
                recordsPerChunk, records - begin));
    }
    return cols;
}

/** One encoded-and-squeezed column, ready for framing. */
struct EncodedColumn
{
    field::FieldCodec codec = field::FieldCodec::Plain;
    backend::EntropyBackend backend =
        backend::EntropyBackend::Store;
    uint64_t values = 0;
    uint64_t encodedBytes = 0;
    std::vector<uint8_t> payload;
};

/** Field-codec + entropy-backend pipeline of one column. */
EncodedColumn
encodeOneColumn(std::span<const uint64_t> values,
                backend::EntropyBackend requested)
{
    EncodedColumn out;
    out.values = values.size();
    out.codec = field::chooseCodec(values);
    std::vector<uint8_t> encoded =
        field::encodeColumn(values, out.codec);
    out.encodedBytes = encoded.size();
    if (requested != backend::EntropyBackend::Store) {
        std::vector<uint8_t> squeezed =
            backend::entropyCompress(encoded, requested);
        if (squeezed.size() < encoded.size()) {
            out.backend = requested;
            out.payload = std::move(squeezed);
            return out;
        }
        // The backend did not pay for this column; store it raw so
        // the container never loses to its own serialization.
    }
    out.payload = std::move(encoded);
    return out;
}

/** Dataset bucket of a column, for the §5-style size accounting. */
uint64_t &
breakdownBucket(SizeBreakdown &sizes, size_t col)
{
    switch (col) {
      case ColShortLen:
      case ColShortS:
        return sizes.shortTemplateBytes;
      case ColLongLen:
      case ColLongS:
      case ColLongIpt:
        return sizes.longTemplateBytes;
      case ColAddr:
        return sizes.addressBytes;
      default:
        return sizes.timeSeqBytes;
    }
}

/**
 * Run @p count column-decode jobs (on @p pool when given), mapping a
 * corrupt-count bad_alloc to Error like every other malformed
 * construct instead of letting it escape.
 */
void
runDecodeJobs(size_t count, util::ThreadPool *pool,
              const std::function<void(size_t)> &decodeOne)
{
    try {
        if (pool != nullptr && count > 1)
            pool->parallelFor(count, decodeOne);
        else
            for (size_t i = 0; i < count; ++i)
                decodeOne(i);
    } catch (const std::bad_alloc &) {
        throw util::Error("fcc3: column sizes exhaust memory");
    }
}

} // namespace

Datasets
assembleFcc3Columns(const flow::Weights &weights,
                    Fcc3Columns &values)
{
    Datasets d;
    d.weights = weights;
    auto take32 = [](uint64_t v, const char *what) {
        util::require(v <= 0xffffffffu, what);
        return static_cast<uint32_t>(v);
    };

    size_t cursor = 0;
    d.shortTemplates.reserve(values[ColShortLen].size());
    for (uint64_t n : values[ColShortLen]) {
        util::require(n >= 1, "fcc: empty short template");
        util::require(cursor + n <= values[ColShortS].size(),
                      "fcc3: short_s column too short");
        flow::SfVector sf;
        sf.values.reserve(n);
        for (uint64_t k = 0; k < n; ++k) {
            uint64_t s = values[ColShortS][cursor++];
            util::require(s <= 0xff, "fcc: S value exceeds one byte");
            sf.values.push_back(static_cast<uint16_t>(s));
        }
        d.shortTemplates.push_back(std::move(sf));
    }
    util::require(cursor == values[ColShortS].size(),
                  "fcc3: short_s column too long");

    util::require(values[ColLongS].size() ==
                      values[ColLongIpt].size(),
                  "fcc3: long_s/long_ipt length mismatch");
    cursor = 0;
    d.longTemplates.reserve(values[ColLongLen].size());
    for (uint64_t n : values[ColLongLen]) {
        util::require(n >= 1, "fcc: empty long template");
        util::require(cursor + n <= values[ColLongS].size(),
                      "fcc3: long_s column too short");
        LongTemplate tmpl;
        tmpl.sValues.reserve(n);
        tmpl.iptUs.reserve(n);
        for (uint64_t k = 0; k < n; ++k) {
            uint64_t s = values[ColLongS][cursor];
            util::require(s <= 0xff, "fcc: S value exceeds one byte");
            tmpl.sValues.push_back(static_cast<uint16_t>(s));
            tmpl.iptUs.push_back(values[ColLongIpt][cursor]);
            ++cursor;
        }
        d.longTemplates.push_back(std::move(tmpl));
    }
    util::require(cursor == values[ColLongS].size(),
                  "fcc3: long_s column too long");

    d.addresses.reserve(values[ColAddr].size());
    for (uint64_t addr : values[ColAddr])
        d.addresses.push_back(
            take32(addr, "fcc3: address exceeds 32 bits"));

    size_t flows = values[ColTsTime].size();
    util::require(values[ColTsIsLong].size() == flows &&
                      values[ColTsTemplate].size() == flows &&
                      values[ColTsAddr].size() == flows,
                  "fcc3: time-seq column length mismatch");
    size_t rttCursor = 0;
    uint64_t prevUs = 0;
    d.timeSeq.reserve(flows);
    for (size_t i = 0; i < flows; ++i) {
        TimeSeqRecord rec;
        rec.firstTimestampUs = values[ColTsTime][i];
        util::require(rec.firstTimestampUs >= prevUs,
                      "fcc: time-seq records not sorted");
        prevUs = rec.firstTimestampUs;
        uint64_t id = values[ColTsIsLong][i];
        util::require(id <= 1, "fcc: bad dataset identifier");
        rec.isLong = id == 1;
        rec.templateIndex = take32(
            values[ColTsTemplate][i],
            "fcc3: template index exceeds 32 bits");
        size_t limit = rec.isLong ? d.longTemplates.size()
                                  : d.shortTemplates.size();
        util::require(rec.templateIndex < limit,
                      "fcc: template index out of range");
        if (!rec.isLong) {
            util::require(rttCursor < values[ColTsRtt].size(),
                          "fcc3: ts_rtt column too short");
            rec.rttUs =
                take32(values[ColTsRtt][rttCursor++],
                       "fcc3: RTT exceeds 32 bits");
        }
        rec.addressIndex = take32(
            values[ColTsAddr][i],
            "fcc3: address index exceeds 32 bits");
        util::require(rec.addressIndex < d.addresses.size(),
                      "fcc: address index out of range");
        d.timeSeq.push_back(rec);
    }
    util::require(rttCursor == values[ColTsRtt].size(),
                  "fcc3: ts_rtt column too long");

    if (!values[ColChunkLen].empty()) {
        uint64_t total = 0;
        d.chunkSizes.reserve(values[ColChunkLen].size());
        for (uint64_t c : values[ColChunkLen]) {
            util::require(c >= 1, "fcc: empty chunk");
            total += c;
            d.chunkSizes.push_back(
                take32(c, "fcc3: chunk size exceeds 32 bits"));
        }
        util::require(total == d.timeSeq.size(),
                      "fcc: chunk sizes disagree with time-seq");
    }

    return d;
}

Datasets
assembleFlowColumns(const flow::Weights &weights,
                    Fcc3Columns &values)
{
    Datasets d;
    d.weights = weights;
    d.fidelity = Fidelity::Flow;
    auto take32 = [](uint64_t v, const char *what) {
        util::require(v <= 0xffffffffu, what);
        return static_cast<uint32_t>(v);
    };

    for (size_t c = ColShortLen; c <= ColLongIpt; ++c)
        util::require(values[c].empty(),
                      "fcc3: flow profile forbids template columns");

    d.addresses.reserve(values[ColAddr].size());
    for (uint64_t addr : values[ColAddr])
        d.addresses.push_back(
            take32(addr, "fcc3: address exceeds 32 bits"));

    size_t flows = values[ColTsTime].size();
    util::require(values[ColTsIsLong].size() == flows &&
                      values[ColTsTemplate].size() == flows &&
                      values[ColTsRtt].size() == flows &&
                      values[ColTsAddr].size() == flows,
                  "fcc3: flow column length mismatch");
    uint64_t prevUs = 0;
    d.flowRecords.reserve(flows);
    for (size_t i = 0; i < flows; ++i) {
        FlowRecord fl;
        fl.firstTimestampUs = values[ColTsTime][i];
        util::require(fl.firstTimestampUs >= prevUs,
                      "fcc: flow records not sorted");
        prevUs = fl.firstTimestampUs;
        fl.payloadBytes = values[ColTsIsLong][i];
        fl.packets = take32(values[ColTsTemplate][i],
                            "fcc3: packet count exceeds 32 bits");
        util::require(fl.packets >= 1, "fcc: empty flow record");
        fl.durationUs = values[ColTsRtt][i];
        fl.addressIndex = take32(
            values[ColTsAddr][i],
            "fcc3: address index exceeds 32 bits");
        util::require(fl.addressIndex < d.addresses.size(),
                      "fcc: address index out of range");
        d.flowRecords.push_back(fl);
    }

    if (!values[ColChunkLen].empty()) {
        uint64_t total = 0;
        d.chunkSizes.reserve(values[ColChunkLen].size());
        for (uint64_t c : values[ColChunkLen]) {
            util::require(c >= 1, "fcc: empty chunk");
            total += c;
            d.chunkSizes.push_back(
                take32(c, "fcc3: chunk size exceeds 32 bits"));
        }
        util::require(total == flows,
                      "fcc: chunk sizes disagree with flow records");
    }

    return d;
}

namespace {

/**
 * Fold one frame into a column's stat entry. Indexed archives store
 * several frames per time-seq column (one per chunk): byte and
 * value counts sum, the codec/backend tags record the first frame's
 * choice. Shared by the serializer and the parser so the accounting
 * rule cannot drift between them.
 */
void
accumulateColumnStat(ColumnStat &s, field::FieldCodec codec,
                     backend::EntropyBackend backend,
                     uint64_t values, uint64_t encodedBytes,
                     uint64_t storedBytes, bool first)
{
    if (first) {
        s.codec = codec;
        s.backend = backend;
    }
    s.values += values;
    s.encodedBytes += encodedBytes;
    s.storedBytes += storedBytes;
}

/** Guard against per-frame value counts overflowing the global cap. */
void
capTotalValues(uint64_t &total, const ColumnFrame &frame)
{
    total += frame.values;
    util::require(total <= maxColumnValues,
                  "fcc3: columns too large");
}

/**
 * Parse the FCC3 container (either layout) from @p data, whose first
 * four bytes are the already-validated magic.
 */
Datasets
deserializeColumnar(std::span<const uint8_t> data,
                    util::ThreadPool *pool, ContainerStat *stat)
{
    flow::Weights weights;
    uint8_t colByte;
    size_t headerBytes;
    Fidelity fidelity = Fidelity::Exact;
    uint64_t quantumUs = 0;
    {
        util::ByteReader h(data);
        h.u32();  // magic, validated by the caller
        weights.w1 = h.u16();
        weights.w2 = h.u16();
        weights.w3 = h.u16();
        util::require(weights.decodable(),
                      "fcc: stored weights are not decodable");
        colByte = h.u8();
        if ((colByte & fidelityProfileFlag) != 0) {
            // Lossy profile header: tag byte + parameter varint.
            // Exact files never carry the flag, so they stay
            // byte-identical to pre-fidelity writers.
            uint8_t tag = h.u8();
            util::require(
                tag >= static_cast<uint8_t>(Fidelity::Quantized) &&
                    tag <= static_cast<uint8_t>(Fidelity::Flow),
                "fcc3: unknown fidelity tag");
            fidelity = static_cast<Fidelity>(tag);
            quantumUs = h.varint();
            if (fidelity == Fidelity::Quantized)
                util::require(quantumUs >= 1,
                              "fcc3: quantized grid must be >= 1 us");
            else
                util::require(quantumUs == 0,
                              "fcc3: unexpected fidelity parameter");
        }
        headerBytes = h.position();
    }
    bool indexed = (colByte & indexedLayoutFlag) != 0;
    util::require(
        (colByte & ~(indexedLayoutFlag | fidelityProfileFlag)) ==
            columnCount,
        "fcc3: unexpected column count");
    bool flowProfile = fidelity == Fidelity::Flow;

    // An indexed layout ends with the index block; the column frames
    // occupy exactly the region before it.
    uint64_t indexBytes = 0;
    size_t regionEnd = data.size();
    if (indexed) {
        indexBytes = indexRegionBytes(data);
        util::require(data.size() - indexBytes >= headerBytes,
                      "fcc3: index block overlaps the header");
        regionEnd = data.size() - static_cast<size_t>(indexBytes);
    }
    util::ByteReader r(data.data(), regionEnd);
    r.skip(headerBytes);

    ColumnValues values;
    std::array<ColumnStat, columnCount> colStats;
    for (size_t c = 0; c < columnCount; ++c)
        colStats[c].name = columnNames[c];

    auto recordStat = [&](size_t c, const ColumnFrame &frame,
                          bool first) {
        accumulateColumnStat(colStats[c], frame.codec, frame.backend,
                             frame.values, frame.encodedBytes,
                             frame.storedBytes, first);
    };

    uint64_t totalValues = 0;
    if (!indexed) {
        std::array<ColumnFrame, columnCount> frames;
        for (size_t c = 0; c < columnCount; ++c) {
            frames[c] = readColumnFrame(r);
            capTotalValues(totalValues, frames[c]);
            recordStat(c, frames[c], true);
        }
        util::require(r.exhausted(), "fcc: trailing bytes");
        runDecodeJobs(columnCount, pool, [&](size_t c) {
            values[c] = decodeColumnFrame(frames[c]);
        });
    } else {
        // Shared frames, then the chunk layout (decoded inline — it
        // determines how many per-chunk frames follow), then five
        // frames per chunk.
        std::array<ColumnFrame, ColAddr + 1> sharedFrames;
        for (size_t c = 0; c <= ColAddr; ++c) {
            sharedFrames[c] = readColumnFrame(r);
            capTotalValues(totalValues, sharedFrames[c]);
            recordStat(c, sharedFrames[c], true);
        }
        ColumnFrame chunkLenFrame = readColumnFrame(r);
        capTotalValues(totalValues, chunkLenFrame);
        recordStat(ColChunkLen, chunkLenFrame, true);
        runDecodeJobs(1, nullptr, [&](size_t) {
            values[ColChunkLen] = decodeColumnFrame(chunkLenFrame);
        });

        size_t chunks = values[ColChunkLen].size();
        // Five frames of >= 5 bytes each per chunk: a chunk count
        // the remaining bytes cannot possibly hold is corruption —
        // reject it before sizing the frame tables by it.
        util::require(chunks <= r.remaining() / 25,
                      "fcc3: chunk count exceeds stream");
        std::vector<std::array<ColumnFrame, 5>> chunkFrames(chunks);
        for (size_t c = 0; c < chunks; ++c) {
            uint64_t records = values[ColChunkLen][c];
            util::require(records >= 1, "fcc: empty chunk");
            for (size_t k = 0; k < 5; ++k) {
                ColumnFrame frame = readColumnFrame(r);
                capTotalValues(totalValues, frame);
                // Four of the five columns hold one value per
                // record; ts_rtt (k == 3) holds one per short flow —
                // except in the flow profile, where the slot carries
                // the per-flow duration (one value per record).
                util::require(
                    (k == 3 && !flowProfile) ||
                        frame.values == records,
                    "fcc3: chunk frame record mismatch");
                util::require(k != 3 || frame.values <= records,
                              "fcc3: ts_rtt frame too long");
                recordStat(ColTsTime + k, frame, c == 0);
                chunkFrames[c][k] = frame;
            }
        }
        util::require(r.exhausted(), "fcc: trailing bytes");

        std::vector<std::array<std::vector<uint64_t>, 5>>
            chunkValues(chunks);
        runDecodeJobs(ColAddr + 1 + chunks * 5, pool, [&](size_t i) {
            if (i <= ColAddr) {
                values[i] = decodeColumnFrame(sharedFrames[i]);
            } else {
                size_t c = (i - (ColAddr + 1)) / 5;
                size_t k = (i - (ColAddr + 1)) % 5;
                chunkValues[c][k] =
                    decodeColumnFrame(chunkFrames[c][k]);
            }
        });
        for (size_t c = 0; c < chunks; ++c) {
            // The RTT column must split exactly at the chunk
            // boundaries, or random access would hand later chunks
            // the wrong RTTs while the concatenation still added up.
            // In the flow profile the slot is per-record, already
            // enforced against the chunk length above.
            if (!flowProfile) {
                size_t shorts = 0;
                for (uint64_t id : chunkValues[c][1])
                    shorts += id == 0 ? 1 : 0;
                util::require(chunkValues[c][3].size() == shorts,
                              "fcc3: ts_rtt chunk frame mismatch");
            }
            for (size_t k = 0; k < 5; ++k) {
                auto &dst = values[ColTsTime + k];
                dst.insert(dst.end(), chunkValues[c][k].begin(),
                           chunkValues[c][k].end());
            }
        }
    }

    Datasets d = flowProfile ? assembleFlowColumns(weights, values)
                             : assembleFcc3Columns(weights, values);
    d.fidelity = fidelity;
    d.quantumUs = quantumUs;
    if (fidelity == Fidelity::Quantized) {
        // Stored timestamps must sit on the advertised grid — a
        // value off the grid means the container lies about its own
        // quantization and downstream error bounds would be wrong.
        std::vector<uint64_t> times(d.timeSeq.size());
        for (size_t i = 0; i < d.timeSeq.size(); ++i)
            times[i] = d.timeSeq[i].firstTimestampUs;
        util::require(field::isOnGrid(times, quantumUs),
                      "fcc3: timestamp off the quantized grid");
    }
    if (stat != nullptr) {
        stat->fidelity = fidelity;
        stat->quantumUs = quantumUs;
        stat->version = 3;
        stat->sizes = SizeBreakdown{};
        stat->sizes.headerBytes = headerBytes;
        stat->sizes.indexBytes = indexBytes;
        stat->hasIndex = indexed;
        stat->columns.assign(colStats.begin(), colStats.end());
        for (size_t c = 0; c < columnCount; ++c)
            breakdownBucket(stat->sizes, c) +=
                colStats[c].storedBytes;
    }
    return d;
}

} // namespace

std::vector<uint8_t>
serialize(const Datasets &datasets)
{
    SizeBreakdown sizes;
    return serialize(datasets, sizes);
}

std::vector<uint8_t>
serialize(const Datasets &datasets, SizeBreakdown &breakdown)
{
    util::ByteWriter w;
    breakdown = SizeBreakdown{};
    serializeInto(datasets, w, breakdown);
    return w.take();
}

std::vector<uint8_t>
serializeChunked(const Datasets &datasets, uint32_t recordsPerChunk,
                 SizeBreakdown &breakdown)
{
    if (recordsPerChunk == 0)
        return serialize(datasets, breakdown);

    util::ByteWriter w;
    breakdown = SizeBreakdown{};
    writeShared(datasets, magicV2, w, breakdown);

    size_t mark = w.size();
    size_t records = datasets.timeSeq.size();
    size_t chunks = (records + recordsPerChunk - 1) / recordsPerChunk;
    w.varint(chunks);
    for (size_t c = 0; c < chunks; ++c) {
        size_t begin = c * recordsPerChunk;
        size_t end = std::min(records,
                              begin + size_t{recordsPerChunk});
        // Each chunk restarts the timestamp delta so it decodes
        // without its predecessors.
        util::ByteWriter chunk;
        uint64_t prevUs = 0;
        for (size_t i = begin; i < end; ++i)
            writeRecord(chunk, datasets.timeSeq[i], prevUs);
        w.varint(end - begin);
        w.varint(chunk.size());
        w.bytes(chunk.data());
    }
    breakdown.timeSeqBytes = w.size() - mark;
    return w.take();
}

namespace {

/** Write one encoded column as a wire frame; returns stored bytes. */
uint64_t
writeFrame(util::ByteWriter &w, const EncodedColumn &col)
{
    size_t mark = w.size();
    w.varint(col.values);
    w.u8(static_cast<uint8_t>(col.codec));
    w.u8(static_cast<uint8_t>(col.backend));
    w.varint(col.encodedBytes);
    w.blob(col.payload);
    return w.size() - mark;
}

} // namespace

std::vector<uint8_t>
serializeColumnar(const Datasets &datasets, uint32_t recordsPerChunk,
                  backend::EntropyBackend backend,
                  SizeBreakdown &breakdown, util::ThreadPool *pool,
                  std::vector<ColumnStat> *columns,
                  const IndexOptions *index)
{
    ColumnValues values = splitColumns(datasets, recordsPerChunk);
    breakdown = SizeBreakdown{};
    if (columns != nullptr)
        columns->clear();

    auto runEncodeJobs = [&](size_t count,
                             const std::function<void(size_t)> &job) {
        // Results land in fixed slots, so the output is
        // byte-identical at any thread count.
        if (pool != nullptr && count > 1)
            pool->parallelFor(count, job);
        else
            for (size_t c = 0; c < count; ++c)
                job(c);
    };

    auto writeHeader = [&](util::ByteWriter &w, uint8_t colByte) {
        w.u32(magicV3);
        w.u16(datasets.weights.w1);
        w.u16(datasets.weights.w2);
        w.u16(datasets.weights.w3);
        if (datasets.fidelity == Fidelity::Exact) {
            // No flag, no extra bytes: exact containers stay
            // byte-identical to pre-fidelity writers.
            w.u8(colByte);
        } else {
            w.u8(colByte | fidelityProfileFlag);
            w.u8(static_cast<uint8_t>(datasets.fidelity));
            w.varint(datasets.fidelity == Fidelity::Quantized
                         ? datasets.quantumUs
                         : 0);
        }
        breakdown.headerBytes = w.size();
    };

    if (index == nullptr) {
        // ---- plain layout: twelve global column frames ----
        std::array<EncodedColumn, columnCount> encoded;
        runEncodeJobs(columnCount, [&](size_t c) {
            encoded[c] = encodeOneColumn(values[c], backend);
        });

        util::ByteWriter w;
        writeHeader(w, static_cast<uint8_t>(columnCount));
        for (size_t c = 0; c < columnCount; ++c) {
            const EncodedColumn &col = encoded[c];
            uint64_t storedBytes = writeFrame(w, col);
            breakdownBucket(breakdown, c) += storedBytes;
            if (columns != nullptr)
                columns->push_back({columnNames[c], col.codec,
                                    col.backend, col.values,
                                    col.encodedBytes, storedBytes});
        }
        return w.take();
    }

    // ---- indexed layout: chunk-framed time-seq + index block ----
    util::require(!values[ColChunkLen].empty() ||
                      datasets.timeSeq.empty(),
                  "fcc3: the index requires a chunked time-seq "
                  "layout (chunkRecords > 0)");
    size_t chunks = values[ColChunkLen].size();
    std::vector<uint32_t> chunkSizes;
    chunkSizes.reserve(chunks);
    for (uint64_t c : values[ColChunkLen])
        chunkSizes.push_back(static_cast<uint32_t>(c));

    // Record and RTT offsets of every chunk into the time-seq
    // columns (RTTs exist only for short flows; in the flow profile
    // the slot carries one duration per record instead).
    std::vector<size_t> recOff(chunks + 1, 0);
    std::vector<size_t> rttOff(chunks + 1, 0);
    for (size_t c = 0; c < chunks; ++c) {
        recOff[c + 1] = recOff[c] + chunkSizes[c];
        if (datasets.fidelity == Fidelity::Flow) {
            rttOff[c + 1] = recOff[c + 1];
            continue;
        }
        size_t shorts = 0;
        for (size_t i = recOff[c]; i < recOff[c + 1]; ++i)
            shorts += values[ColTsIsLong][i] == 0 ? 1 : 0;
        rttOff[c + 1] = rttOff[c] + shorts;
    }

    // One encode job per shared column plus five per chunk.
    std::array<EncodedColumn, ColAddr + 2> sharedEnc;  // + chunk_len
    std::vector<std::array<EncodedColumn, 5>> chunkEnc(chunks);
    auto tsSlice = [&](size_t c, size_t k) {
        const std::vector<uint64_t> &col = values[ColTsTime + k];
        if (k == 3)  // ts_rtt
            return std::span<const uint64_t>(col).subspan(
                rttOff[c], rttOff[c + 1] - rttOff[c]);
        return std::span<const uint64_t>(col).subspan(
            recOff[c], recOff[c + 1] - recOff[c]);
    };
    runEncodeJobs(ColAddr + 2 + chunks * 5, [&](size_t i) {
        if (i <= ColAddr)
            sharedEnc[i] = encodeOneColumn(values[i], backend);
        else if (i == ColAddr + 1)
            sharedEnc[i] =
                encodeOneColumn(values[ColChunkLen], backend);
        else {
            size_t c = (i - (ColAddr + 2)) / 5;
            size_t k = (i - (ColAddr + 2)) % 5;
            chunkEnc[c][k] = encodeOneColumn(tsSlice(c, k), backend);
        }
    });

    util::ByteWriter w;
    writeHeader(w, static_cast<uint8_t>(columnCount) |
                       indexedLayoutFlag);

    std::array<ColumnStat, columnCount> colStats;
    for (size_t c = 0; c < columnCount; ++c)
        colStats[c].name = columnNames[c];
    auto accountFrame = [&](size_t c, const EncodedColumn &col,
                            uint64_t storedBytes, bool first) {
        breakdownBucket(breakdown, c) += storedBytes;
        accumulateColumnStat(colStats[c], col.codec, col.backend,
                             col.values, col.encodedBytes,
                             storedBytes, first);
    };

    for (size_t c = 0; c <= ColAddr; ++c)
        accountFrame(c, sharedEnc[c], writeFrame(w, sharedEnc[c]),
                     true);
    accountFrame(ColChunkLen, sharedEnc[ColAddr + 1],
                 writeFrame(w, sharedEnc[ColAddr + 1]), true);

    ArchiveIndex archiveIndex =
        buildArchiveIndex(datasets, chunkSizes, *index);
    FCC_ASSERT(archiveIndex.chunks.size() == chunks,
               "index chunk count drifted from the layout");
    for (size_t c = 0; c < chunks; ++c) {
        uint64_t offset = w.size();
        for (size_t k = 0; k < 5; ++k)
            accountFrame(ColTsTime + k, chunkEnc[c][k],
                         writeFrame(w, chunkEnc[c][k]), c == 0);
        archiveIndex.chunks[c].byteOffset = offset;
        archiveIndex.chunks[c].byteLength = w.size() - offset;
    }

    std::vector<uint8_t> block = serializeArchiveIndex(archiveIndex);
    w.bytes(block.data(), block.size());
    breakdown.indexBytes = block.size();

    if (columns != nullptr)
        columns->assign(colStats.begin(), colStats.end());
    return w.take();
}

Datasets
deserialize(std::span<const uint8_t> data, util::ThreadPool *pool,
            ContainerStat *stat)
{
    util::ByteReader r(data);
    util::require(r.remaining() >= 10, "fcc: truncated header");
    uint32_t magic = r.u32();
    util::require(magic == magicV1 || magic == magicV2 ||
                      magic == magicV3,
                  "fcc: bad magic");
    if (magic == magicV3)
        return deserializeColumnar(data, pool, stat);

    SizeBreakdown *sizes = stat != nullptr ? &stat->sizes : nullptr;
    if (stat != nullptr) {
        *stat = ContainerStat{};
        stat->version = magic == magicV1 ? 1 : 2;
    }
    Datasets d = readShared(r, sizes);

    size_t mark = r.position();
    if (magic == magicV1) {
        uint64_t flowCount = r.varint();
        d.timeSeq.reserve(
            std::min<uint64_t>(flowCount, r.remaining()));
        uint64_t prevUs = 0;
        for (uint64_t i = 0; i < flowCount; ++i)
            d.timeSeq.push_back(readRecord(r, d, prevUs));
    } else {
        uint64_t chunkCount = r.varint();
        d.chunkSizes.reserve(
            std::min<uint64_t>(chunkCount, r.remaining()));
        uint64_t lastUs = 0;
        for (uint64_t c = 0; c < chunkCount; ++c) {
            uint64_t recordCount = r.varint();
            uint64_t byteLength = r.varint();
            util::require(byteLength <= r.remaining(),
                          "fcc: chunk longer than stream");
            size_t start = r.position();
            uint64_t prevUs = 0;
            for (uint64_t i = 0; i < recordCount; ++i) {
                TimeSeqRecord rec = readRecord(r, d, prevUs);
                // Chunks delta-restart but the dataset stays
                // globally time-sorted.
                util::require(rec.firstTimestampUs >= lastUs,
                              "fcc: chunks not time-sorted");
                lastUs = rec.firstTimestampUs;
                d.timeSeq.push_back(rec);
            }
            util::require(r.position() - start == byteLength,
                          "fcc: chunk length mismatch");
            d.chunkSizes.push_back(
                static_cast<uint32_t>(recordCount));
        }
    }
    if (sizes != nullptr)
        sizes->timeSeqBytes = r.position() - mark;
    util::require(r.exhausted(), "fcc: trailing bytes");
    return d;
}

Datasets
deserialize(std::span<const uint8_t> data)
{
    return deserialize(data, nullptr, nullptr);
}

ColumnFrame
readColumnFrame(util::ByteReader &r)
{
    ColumnFrame frame;
    size_t mark = r.position();
    frame.values = r.varint();
    util::require(frame.values <= maxColumnValues,
                  "fcc3: column too large");
    uint8_t codecTag = r.u8();
    util::require(codecTag < field::fieldCodecCount,
                  "fcc3: bad field codec tag");
    frame.codec = static_cast<field::FieldCodec>(codecTag);
    uint8_t backendTag = r.u8();
    util::require(backendTag < backend::entropyBackendCount,
                  "fcc3: bad entropy backend tag");
    frame.backend = static_cast<backend::EntropyBackend>(backendTag);
    frame.encodedBytes = r.varint();
    // No codec stores more than ~20 bytes per value (dict: one max
    // varint each for entry and reference), so a wild encoded size
    // is corruption, not data — reject it before the decompressor
    // allocates for it.
    util::require(frame.encodedBytes <= (frame.values + 1) * 20,
                  "fcc3: encoded size out of range");
    frame.payload = r.blobView();
    frame.storedBytes = r.position() - mark;
    return frame;
}

std::vector<uint64_t>
decodeColumnFrame(const ColumnFrame &frame)
{
    std::vector<uint8_t> encoded = backend::entropyDecompress(
        frame.payload, frame.backend,
        static_cast<size_t>(frame.encodedBytes));
    return field::decodeColumn(encoded, frame.codec,
                               static_cast<size_t>(frame.values));
}

} // namespace fcc::codec::fcc
