/**
 * @file
 * The flow-clustering compressor (§3) and decompressor (§4):
 * assemble flows, match short-flow SF vectors against the
 * template store, store long flows verbatim, then regenerate
 * packets from templates + time-seq records on decompression.
 * Optionally DEFLATEs the serialized datasets.
 *
 * Compression runs as a sharded pipeline: connections are
 * partitioned by 5-tuple hash into flowTable.shards shards, each
 * shard assembles/characterizes/clusters independently (and
 * concurrently on cfg.threads workers), then a deterministic merge
 * reclusters the per-shard template centres in shard order, remaps
 * template indices and emits the time-seq dataset in canonical flow
 * order. Because the shard count and merge order are fixed by the
 * config — never by the thread count — compressed output is
 * byte-identical at any thread count.
 */

#include "codec/fcc/fcc_codec.hpp"

#include <algorithm>
#include <memory>
#include <tuple>
#include <unordered_map>

#include "codec/deflate/deflate.hpp"
#include "codec/fcc/index.hpp"
#include "flow/template_store.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fcc::codec::fcc {

namespace {

/** cfg.threads semantics: 0 = whatever the hardware offers. */
unsigned
resolveThreads(uint32_t requested)
{
    return requested != 0 ? requested
                          : util::ThreadPool::hardwareThreads();
}

/**
 * RTT estimate of a short flow: the gap at the first direction
 * change (e.g. SYN -> SYN+ACK), the paper's acknowledgment
 * dependence time. Zero when the flow never changes direction.
 */
uint32_t
estimateRttUs(const flow::AssembledFlow &flow,
              const trace::Trace &trace)
{
    for (size_t i = 1; i < flow.size(); ++i) {
        if (flow.fromClient[i] != flow.fromClient[i - 1]) {
            uint64_t delta =
                trace[flow.packetIndex[i]].timestampUs() -
                trace[flow.packetIndex[i - 1]].timestampUs();
            return static_cast<uint32_t>(
                std::min<uint64_t>(delta, 0xffffffffu));
        }
    }
    return 0;
}

/** Draw a random class B or C address (paper §4's source rule). */
uint32_t
drawClassBOrC(util::Rng &rng)
{
    if (rng.chance(0.5))
        return 0x80000000u |
               static_cast<uint32_t>(rng.uniformInt(0, 0x3fffffff));
    return 0xc0000000u |
           static_cast<uint32_t>(rng.uniformInt(0, 0x1fffffff));
}

} // namespace

uint64_t
chunkRngSeed(uint64_t decompressSeed, size_t chunk)
{
    return util::hashCombine(decompressSeed, chunk);
}

const char *
containerFormatName(ContainerFormat container)
{
    switch (container) {
      case ContainerFormat::Fcc1:
        return "fcc1";
      case ContainerFormat::Fcc2:
        return "fcc2";
      case ContainerFormat::Fcc3:
        return "fcc3";
    }
    return "?";
}

ContainerFormat
parseContainerName(const std::string &name)
{
    const ContainerFormat all[] = {ContainerFormat::Fcc1,
                                   ContainerFormat::Fcc2,
                                   ContainerFormat::Fcc3};
    for (ContainerFormat container : all)
        if (name == containerFormatName(container))
            return container;
    throw util::Error("unknown container format: " + name);
}

void
FccConfig::validate() const
{
    switch (container) {
      case ContainerFormat::Fcc1:
      case ContainerFormat::Fcc2:
      case ContainerFormat::Fcc3:
        break;
      default:
        throw util::Error("fcc: bad container format");
    }
    util::require(static_cast<uint8_t>(backend) <
                      backend::entropyBackendCount,
                  "fcc: bad entropy backend tag");
    util::require(!index || container == ContainerFormat::Fcc3,
                  "fcc: the chunk/flow index requires the fcc3 "
                  "container");
    util::require(!index || chunkRecords > 0,
                  "fcc3: the index requires a chunked time-seq "
                  "layout (chunkRecords > 0)");
    util::require(weights.decodable(),
                  "fcc: weights are not uniquely decodable");
    util::require(flowTable.shards > 0,
                  "fcc: the sharded pipeline needs at least one "
                  "shard");
    switch (fidelity) {
      case Fidelity::Exact:
      case Fidelity::Quantized:
      case Fidelity::Header:
      case Fidelity::Flow:
        break;
      default:
        throw util::Error("fcc: bad fidelity tier");
    }
    util::require(fidelity == Fidelity::Exact ||
                      container == ContainerFormat::Fcc3,
                  "fcc: lossy fidelity tiers require the fcc3 "
                  "container");
    util::require(fidelity != Fidelity::Quantized || quantumUs >= 1,
                  "fcc: the quantized tier needs a grid >= 1 us");
}

std::vector<uint8_t>
serializeDatasets(const Datasets &datasets, const FccConfig &cfg,
                  SizeBreakdown &breakdown,
                  std::vector<ColumnStat> *columns)
{
    if (columns != nullptr)
        columns->clear();
    cfg.validate();
    std::vector<uint8_t> bytes;
    switch (cfg.container) {
      case ContainerFormat::Fcc1:
        bytes = serialize(datasets, breakdown);
        break;
      case ContainerFormat::Fcc2:
        bytes = serializeChunked(datasets, cfg.chunkRecords,
                                 breakdown);
        break;
      case ContainerFormat::Fcc3: {
        unsigned threads = resolveThreads(cfg.threads);
        std::unique_ptr<util::ThreadPool> pool;
        if (threads > 1)
            pool = std::make_unique<util::ThreadPool>(threads);
        IndexOptions indexOptions;
        indexOptions.gapUs = cfg.defaultGapUs;
        // Degrade to the configured tier just before serialization,
        // so assembly, chunking, and the index all see the same
        // (already-lossy) datasets.
        if (cfg.fidelity != Fidelity::Exact) {
            FidelityParams params;
            params.quantumUs = cfg.quantumUs;
            params.smallPayload = cfg.smallPayload;
            params.largePayload = cfg.largePayload;
            params.defaultGapUs = cfg.defaultGapUs;
            Datasets degraded =
                applyFidelity(datasets, cfg.fidelity, params);
            return serializeColumnar(
                degraded, cfg.chunkRecords, cfg.backend, breakdown,
                pool.get(), columns,
                cfg.index ? &indexOptions : nullptr);
        }
        // The per-column backends supersede the whole-blob squeeze.
        return serializeColumnar(datasets, cfg.chunkRecords,
                                 cfg.backend, breakdown, pool.get(),
                                 columns,
                                 cfg.index ? &indexOptions : nullptr);
      }
      default:
        throw util::Error("fcc: bad container format");
    }
    if (cfg.deflateDatasets)
        bytes = deflate::zlibCompress(bytes);
    return bytes;
}

Datasets
deserializeAuto(std::span<const uint8_t> data, uint32_t threads,
                ContainerStat *stat)
{
    // The hybrid container wraps a row stream in zlib: CMF 0x78;
    // the plain formats start with 'F' of "FCC".
    std::vector<uint8_t> inflated;
    if (!data.empty() && data[0] == 0x78) {
        inflated = deflate::zlibDecompress(data);
        data = inflated;
    }
    // Only the columnar container has parallel decode jobs; the
    // pool is scoped here so it is gone before any expansion pool
    // spins up.
    std::unique_ptr<util::ThreadPool> pool;
    unsigned workers = resolveThreads(threads);
    if (workers > 1 && data.size() >= 4 && data[3] == '3')
        pool = std::make_unique<util::ThreadPool>(workers);
    return deserialize(data, pool.get(), stat);
}

FccTraceCompressor::FccTraceCompressor(const FccConfig &cfg)
    : cfg_(cfg)
{
    // Validate eagerly: a bad weight vector should fail construction,
    // not the first compress() call.
    flow::Characterizer check(cfg_.weights);
    util::require(check.maxValue() <= 0xff,
                  "fcc: weights produce S values above one byte");
    util::require(cfg_.shortLimit >= 1,
                  "fcc: short/long split must be >= 1 packet");
    util::require(cfg_.flowTable.shards >= 1,
                  "fcc: shard count must be >= 1");
    // 0 means auto; anything explicit must be sane (catches signed
    // garbage like --threads -1 wrapped through uint32_t).
    util::require(cfg_.threads <= 1024,
                  "fcc: thread count out of range (max 1024)");
}

Datasets
FccTraceCompressor::buildDatasets(const trace::Trace &trace,
                                  FccCompressStats &stats) const
{
    util::require(trace.isTimeOrdered(),
                  "fcc: input trace must be time-ordered");
    stats = FccCompressStats{};

    unsigned threads = resolveThreads(cfg_.threads);
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 1)
        pool = std::make_unique<util::ThreadPool>(threads);

    flow::FlowTable table(cfg_.flowTable);
    auto shardFlows = table.assembleSharded(trace, pool.get());
    size_t shards = shardFlows.size();

    // Per-flow output of a shard, slim enough to merge cheaply.
    struct ShardFlow
    {
        uint64_t firstNs = 0;
        uint64_t firstUs = 0;
        flow::FlowKey key;
        uint32_t serverIp = 0;
        uint32_t localTemplate = 0;  ///< shard-local index
        uint32_t rttUs = 0;
        bool isLong = false;
    };
    struct ShardOut
    {
        std::vector<ShardFlow> flows;
        std::vector<flow::SfVector> shortTemplates;
        std::vector<LongTemplate> longTemplates;
    };
    std::vector<ShardOut> shardOut(shards);

    // Characterize + cluster each shard independently; results land
    // in the shard's own slot, so the outcome does not depend on
    // scheduling.
    auto processShard = [&](size_t s) {
        flow::Characterizer chi(cfg_.weights);
        flow::TemplateStore store(cfg_.rule);
        ShardOut &out = shardOut[s];
        out.flows.reserve(shardFlows[s].size());
        for (const auto &flow : shardFlows[s]) {
            flow::SfVector sf = chi.characterize(flow, trace);
            ShardFlow o;
            o.firstNs = flow.firstTimestampNs;
            o.firstUs =
                trace[flow.packetIndex.front()].timestampUs();
            o.key = flow.key;
            o.serverIp = flow.serverIp;
            if (flow.size() <= cfg_.shortLimit) {
                o.localTemplate = store.findOrInsert(sf).index;
                o.rttUs = estimateRttUs(flow, trace);
            } else {
                o.isLong = true;
                LongTemplate tmpl;
                tmpl.sValues = sf.values;
                tmpl.iptUs.resize(flow.size());
                tmpl.iptUs[0] = 0;
                for (size_t i = 1; i < flow.size(); ++i)
                    tmpl.iptUs[i] =
                        trace[flow.packetIndex[i]].timestampUs() -
                        trace[flow.packetIndex[i - 1]].timestampUs();
                o.localTemplate = static_cast<uint32_t>(
                    out.longTemplates.size());
                out.longTemplates.push_back(std::move(tmpl));
            }
            out.flows.push_back(o);
        }
        out.shortTemplates = store.all();
    };
    if (pool)
        pool->parallelFor(shards, processShard);
    else
        for (size_t s = 0; s < shards; ++s)
            processShard(s);

    // ---- Deterministic merge (sequential, cheap) ----
    Datasets d;
    d.weights = cfg_.weights;

    // Recluster the shard cluster centres into one global store in
    // shard order; remap[s][t] is shard s's template t globally.
    flow::TemplateStore global(cfg_.rule);
    std::vector<std::vector<uint32_t>> remap(shards);
    for (size_t s = 0; s < shards; ++s) {
        remap[s].reserve(shardOut[s].shortTemplates.size());
        for (const auto &tmpl : shardOut[s].shortTemplates)
            remap[s].push_back(global.findOrInsert(tmpl).index);
    }

    // Canonical global flow order (the same key assembleIndices
    // sorted each shard by — the shared helper keeps the two from
    // drifting apart). Each shard's list is already sorted, so a
    // k-way merge over the shard heads recovers the global order
    // without a full sort; the linear scan over the (small, fixed)
    // shard count per emitted flow is cheaper than a heap here.
    auto canonicalKey = [](const ShardFlow &f) {
        return flow::canonicalFlowOrderKey(f.firstNs, f.key);
    };
    size_t totalFlows = 0;
    for (const auto &out : shardOut)
        totalFlows += out.flows.size();
    std::vector<size_t> cursor(shards, 0);

    std::unordered_map<uint32_t, uint32_t> addrIndex;
    addrIndex.reserve(1024);
    d.timeSeq.reserve(totalFlows);
    for (size_t emitted = 0; emitted < totalFlows; ++emitted) {
        size_t s = shards;  // shard holding the smallest head
        for (size_t cand = 0; cand < shards; ++cand) {
            if (cursor[cand] >= shardOut[cand].flows.size())
                continue;
            if (s == shards ||
                canonicalKey(shardOut[cand].flows[cursor[cand]]) <
                    canonicalKey(shardOut[s].flows[cursor[s]]))
                s = cand;
        }
        ShardFlow &o = shardOut[s].flows[cursor[s]++];
        TimeSeqRecord rec;
        rec.firstTimestampUs = o.firstUs;

        auto [it, isNewAddr] = addrIndex.try_emplace(
            o.serverIp, static_cast<uint32_t>(d.addresses.size()));
        if (isNewAddr)
            d.addresses.push_back(o.serverIp);
        rec.addressIndex = it->second;

        ++stats.flows;
        if (!o.isLong) {
            ++stats.shortFlows;
            rec.isLong = false;
            rec.templateIndex = remap[s][o.localTemplate];
            rec.rttUs = o.rttUs;
        } else {
            ++stats.longFlows;
            rec.isLong = true;
            rec.templateIndex =
                static_cast<uint32_t>(d.longTemplates.size());
            d.longTemplates.push_back(
                std::move(shardOut[s].longTemplates[o.localTemplate]));
        }
        d.timeSeq.push_back(rec);
    }

    stats.shortTemplatesCreated = global.size();
    stats.shortTemplateHits =
        stats.shortFlows - stats.shortTemplatesCreated;
    d.shortTemplates = global.all();
    return d;
}

std::vector<uint8_t>
FccTraceCompressor::compressWithStats(const trace::Trace &trace,
                                      FccCompressStats &stats) const
{
    Datasets d = buildDatasets(trace, stats);
    return serializeDatasets(d, cfg_, stats.sizes);
}

std::vector<uint8_t>
FccTraceCompressor::compress(const trace::Trace &trace) const
{
    FccCompressStats stats;
    return compressWithStats(trace, stats);
}

trace::Trace
FccTraceCompressor::expand(const Datasets &d) const
{
    util::require(d.fidelity != Fidelity::Flow,
                  "fcc: flow-fidelity archives carry no per-packet "
                  "data to reconstruct");
    std::vector<trace::PacketRecord> packets;
    if (d.chunkSizes.empty()) {
        // Legacy FCC1: one sequential RNG stream over all records.
        util::Rng rng(cfg_.decompressSeed);
        for (const auto &rec : d.timeSeq)
            expandFlow(d, rec, rng, packets);
    } else {
        size_t chunks = d.chunkSizes.size();
        std::vector<std::vector<trace::PacketRecord>> perChunk(
            chunks);
        auto expandOne = [&](size_t c) {
            expandChunk(d, c, perChunk[c]);
        };
        unsigned threads = resolveThreads(cfg_.threads);
        if (threads > 1 && chunks > 1) {
            util::ThreadPool pool(threads);
            pool.parallelFor(chunks, expandOne);
        } else {
            for (size_t c = 0; c < chunks; ++c)
                expandOne(c);
        }

        size_t total = 0;
        for (const auto &chunk : perChunk)
            total += chunk.size();
        packets.reserve(total);
        for (auto &chunk : perChunk)
            packets.insert(packets.end(), chunk.begin(), chunk.end());
    }
    // Canonical total order (not a bare time sort): every expansion
    // path — in-memory, streaming flush, query merge — must emit
    // equal-timestamp packets identically for reconstruction to be
    // byte-exact across containers and thread counts.
    std::sort(packets.begin(), packets.end(),
              trace::packetCanonicalLess);
    return trace::Trace(std::move(packets));
}

void
FccTraceCompressor::expandFlow(const Datasets &d,
                               const TimeSeqRecord &rec,
                               util::Rng &rng,
                               std::vector<trace::PacketRecord> &out) const
{
    flow::Characterizer chi(d.weights);
    {
        util::require(rec.templateIndex <
                          (rec.isLong ? d.longTemplates.size()
                                      : d.shortTemplates.size()),
                      "fcc: time-seq template index out of range");
        util::require(rec.addressIndex < d.addresses.size(),
                      "fcc: time-seq address index out of range");
        const std::vector<uint16_t> *sValues;
        const std::vector<uint64_t> *iptUs = nullptr;
        if (rec.isLong) {
            const LongTemplate &tmpl =
                d.longTemplates[rec.templateIndex];
            sValues = &tmpl.sValues;
            iptUs = &tmpl.iptUs;
        } else {
            sValues = &d.shortTemplates[rec.templateIndex].values;
        }

        // Paper §4: server address from the address dataset; client
        // address random class B/C; client port random ephemeral;
        // server port 80.
        uint32_t serverIp = d.addresses[rec.addressIndex];
        uint32_t clientIp = drawClassBOrC(rng);
        uint16_t clientPort = static_cast<uint16_t>(
            rng.uniformInt(1024, 65000));

        // Synthesized TCP state, mirroring the workload generator.
        uint32_t cSeq = static_cast<uint32_t>(rng.next());
        uint32_t sSeq = static_cast<uint32_t>(rng.next());
        uint16_t cIpId = static_cast<uint16_t>(rng.next());
        uint16_t sIpId = static_cast<uint16_t>(rng.next());
        uint16_t window = static_cast<uint16_t>(
            rng.uniformInt(16, 255) << 8);

        uint64_t t = rec.firstTimestampUs;
        bool fromClient = true;
        for (size_t i = 0; i < sValues->size(); ++i) {
            flow::PacketClass cls = chi.decode((*sValues)[i]);

            // Direction chain: the dependence bit says whether the
            // direction flipped; the first packet's direction comes
            // from its flag class.
            if (i == 0) {
                fromClient = cls.flag != flow::FlagClass::SynAck;
            } else if (cls.dependent) {
                fromClient = !fromClient;
            }

            // Timing: long flows replay exact inter-packet times;
            // short flows space dependent packets by the flow RTT
            // and others by a small fixed gap (§4).
            if (i > 0) {
                if (rec.isLong)
                    t += (*iptUs)[i];
                else
                    t += cls.dependent ? rec.rttUs : cfg_.defaultGapUs;
            }

            uint16_t payload = 0;
            if (cls.size == flow::SizeClass::Small)
                payload = cfg_.smallPayload;
            else if (cls.size == flow::SizeClass::Large)
                payload = cfg_.largePayload;

            uint8_t flags = 0;
            using namespace trace::tcp_flags;
            switch (cls.flag) {
              case flow::FlagClass::Syn:
                flags = Syn;
                break;
              case flow::FlagClass::SynAck:
                flags = Syn | Ack;
                break;
              case flow::FlagClass::Ack:
                flags = payload > 0 ? (Ack | Psh) : Ack;
                break;
              case flow::FlagClass::FinRst:
                flags = Fin | Ack;
                break;
            }

            trace::PacketRecord pkt;
            pkt.timestampNs = t * 1000ull;
            pkt.protocol = trace::ip_proto::Tcp;
            pkt.tcpFlags = flags;
            pkt.payloadBytes = payload;
            pkt.window = window;
            // §4 addressing: every packet of the flow carries the
            // stored destination and the flow's random source (the
            // direction-aware variant swaps them for s->c packets).
            bool addrAsClient =
                fromClient || !cfg_.directionAwareAddresses;
            if (addrAsClient) {
                pkt.srcIp = clientIp;
                pkt.dstIp = serverIp;
                pkt.srcPort = clientPort;
                pkt.dstPort = cfg_.serverPort;
                pkt.seq = cSeq;
                pkt.ack = (flags & Ack) ? sSeq : 0;
                pkt.ipId = cIpId++;
                cSeq += payload;
                if (flags & (Syn | Fin))
                    ++cSeq;
            } else {
                pkt.srcIp = serverIp;
                pkt.dstIp = clientIp;
                pkt.srcPort = cfg_.serverPort;
                pkt.dstPort = clientPort;
                pkt.seq = sSeq;
                pkt.ack = (flags & Ack) ? cSeq : 0;
                pkt.ipId = sIpId++;
                sSeq += payload;
                if (flags & (Syn | Fin))
                    ++sSeq;
            }
            out.push_back(pkt);
        }
    }
}

void
FccTraceCompressor::expandChunk(
    const Datasets &d, size_t chunk,
    std::vector<trace::PacketRecord> &out) const
{
    util::require(d.fidelity != Fidelity::Flow,
                  "fcc: flow-fidelity archives carry no per-packet "
                  "data to reconstruct");
    util::require(chunk < d.chunkSizes.size(),
                  "fcc: chunk index out of range");
    size_t begin = 0;
    for (size_t c = 0; c < chunk; ++c)
        begin += d.chunkSizes[c];
    size_t end = begin + d.chunkSizes[chunk];
    util::require(end <= d.timeSeq.size(),
                  "fcc: chunk sizes disagree with time-seq");

    // One RNG stream per chunk, seeded from (decompressSeed, chunk
    // index): chunks expand in any order — or in parallel — and
    // still produce the same packets.
    util::Rng rng(chunkRngSeed(cfg_.decompressSeed, chunk));
    for (size_t i = begin; i < end; ++i)
        expandFlow(d, d.timeSeq[i], rng, out);
}

trace::Trace
FccTraceCompressor::decompress(std::span<const uint8_t> data) const
{
    return expand(deserializeAuto(data, cfg_.threads));
}

} // namespace fcc::codec::fcc
