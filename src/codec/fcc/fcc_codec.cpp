/**
 * @file
 * The flow-clustering compressor (§3) and decompressor (§4):
 * assemble flows, match short-flow SF vectors against the
 * template store, store long flows verbatim, then regenerate
 * packets from templates + time-seq records on decompression.
 * Optionally DEFLATEs the serialized datasets.
 */

#include "codec/fcc/fcc_codec.hpp"

#include <unordered_map>

#include "codec/deflate/deflate.hpp"
#include "flow/template_store.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fcc::codec::fcc {

namespace {

/**
 * RTT estimate of a short flow: the gap at the first direction
 * change (e.g. SYN -> SYN+ACK), the paper's acknowledgment
 * dependence time. Zero when the flow never changes direction.
 */
uint32_t
estimateRttUs(const flow::AssembledFlow &flow,
              const trace::Trace &trace)
{
    for (size_t i = 1; i < flow.size(); ++i) {
        if (flow.fromClient[i] != flow.fromClient[i - 1]) {
            uint64_t delta =
                trace[flow.packetIndex[i]].timestampUs() -
                trace[flow.packetIndex[i - 1]].timestampUs();
            return static_cast<uint32_t>(
                std::min<uint64_t>(delta, 0xffffffffu));
        }
    }
    return 0;
}

/** Draw a random class B or C address (paper §4's source rule). */
uint32_t
drawClassBOrC(util::Rng &rng)
{
    if (rng.chance(0.5))
        return 0x80000000u |
               static_cast<uint32_t>(rng.uniformInt(0, 0x3fffffff));
    return 0xc0000000u |
           static_cast<uint32_t>(rng.uniformInt(0, 0x1fffffff));
}

} // namespace

FccTraceCompressor::FccTraceCompressor(const FccConfig &cfg)
    : cfg_(cfg)
{
    // Validate eagerly: a bad weight vector should fail construction,
    // not the first compress() call.
    flow::Characterizer check(cfg_.weights);
    util::require(check.maxValue() <= 0xff,
                  "fcc: weights produce S values above one byte");
    util::require(cfg_.shortLimit >= 1,
                  "fcc: short/long split must be >= 1 packet");
}

Datasets
FccTraceCompressor::buildDatasets(const trace::Trace &trace,
                                  FccCompressStats &stats) const
{
    util::require(trace.isTimeOrdered(),
                  "fcc: input trace must be time-ordered");
    stats = FccCompressStats{};

    flow::FlowTable table(cfg_.flowTable);
    auto flows = table.assemble(trace);

    flow::Characterizer chi(cfg_.weights);
    flow::TemplateStore store(cfg_.rule);

    Datasets d;
    d.weights = cfg_.weights;
    std::unordered_map<uint32_t, uint32_t> addrIndex;

    for (const auto &flow : flows) {
        flow::SfVector sf = chi.characterize(flow, trace);

        TimeSeqRecord rec;
        rec.firstTimestampUs =
            trace[flow.packetIndex.front()].timestampUs();

        auto [it, isNewAddr] = addrIndex.try_emplace(
            flow.serverIp,
            static_cast<uint32_t>(d.addresses.size()));
        if (isNewAddr)
            d.addresses.push_back(flow.serverIp);
        rec.addressIndex = it->second;

        ++stats.flows;
        if (flow.size() <= cfg_.shortLimit) {
            ++stats.shortFlows;
            flow::TemplateMatch match = store.findOrInsert(sf);
            if (match.isNew)
                ++stats.shortTemplatesCreated;
            else
                ++stats.shortTemplateHits;
            rec.isLong = false;
            rec.templateIndex = match.index;
            rec.rttUs = estimateRttUs(flow, trace);
        } else {
            ++stats.longFlows;
            LongTemplate tmpl;
            tmpl.sValues = sf.values;
            tmpl.iptUs.resize(flow.size());
            tmpl.iptUs[0] = 0;
            for (size_t i = 1; i < flow.size(); ++i)
                tmpl.iptUs[i] =
                    trace[flow.packetIndex[i]].timestampUs() -
                    trace[flow.packetIndex[i - 1]].timestampUs();
            rec.isLong = true;
            rec.templateIndex =
                static_cast<uint32_t>(d.longTemplates.size());
            d.longTemplates.push_back(std::move(tmpl));
        }
        d.timeSeq.push_back(rec);
    }

    d.shortTemplates = store.all();
    return d;
}

std::vector<uint8_t>
FccTraceCompressor::compressWithStats(const trace::Trace &trace,
                                      FccCompressStats &stats) const
{
    Datasets d = buildDatasets(trace, stats);
    auto bytes = serialize(d, stats.sizes);
    if (cfg_.deflateDatasets)
        bytes = deflate::zlibCompress(bytes);
    return bytes;
}

std::vector<uint8_t>
FccTraceCompressor::compress(const trace::Trace &trace) const
{
    FccCompressStats stats;
    return compressWithStats(trace, stats);
}

trace::Trace
FccTraceCompressor::expand(const Datasets &d) const
{
    util::Rng rng(cfg_.decompressSeed);
    std::vector<trace::PacketRecord> packets;
    for (const auto &rec : d.timeSeq)
        expandFlow(d, rec, rng, packets);
    trace::Trace out(std::move(packets));
    out.sortByTime();
    return out;
}

void
FccTraceCompressor::expandFlow(const Datasets &d,
                               const TimeSeqRecord &rec,
                               util::Rng &rng,
                               std::vector<trace::PacketRecord> &out) const
{
    flow::Characterizer chi(d.weights);
    {
        util::require(rec.templateIndex <
                          (rec.isLong ? d.longTemplates.size()
                                      : d.shortTemplates.size()),
                      "fcc: time-seq template index out of range");
        util::require(rec.addressIndex < d.addresses.size(),
                      "fcc: time-seq address index out of range");
        const std::vector<uint16_t> *sValues;
        const std::vector<uint64_t> *iptUs = nullptr;
        if (rec.isLong) {
            const LongTemplate &tmpl =
                d.longTemplates[rec.templateIndex];
            sValues = &tmpl.sValues;
            iptUs = &tmpl.iptUs;
        } else {
            sValues = &d.shortTemplates[rec.templateIndex].values;
        }

        // Paper §4: server address from the address dataset; client
        // address random class B/C; client port random ephemeral;
        // server port 80.
        uint32_t serverIp = d.addresses[rec.addressIndex];
        uint32_t clientIp = drawClassBOrC(rng);
        uint16_t clientPort = static_cast<uint16_t>(
            rng.uniformInt(1024, 65000));

        // Synthesized TCP state, mirroring the workload generator.
        uint32_t cSeq = static_cast<uint32_t>(rng.next());
        uint32_t sSeq = static_cast<uint32_t>(rng.next());
        uint16_t cIpId = static_cast<uint16_t>(rng.next());
        uint16_t sIpId = static_cast<uint16_t>(rng.next());
        uint16_t window = static_cast<uint16_t>(
            rng.uniformInt(16, 255) << 8);

        uint64_t t = rec.firstTimestampUs;
        bool fromClient = true;
        for (size_t i = 0; i < sValues->size(); ++i) {
            flow::PacketClass cls = chi.decode((*sValues)[i]);

            // Direction chain: the dependence bit says whether the
            // direction flipped; the first packet's direction comes
            // from its flag class.
            if (i == 0) {
                fromClient = cls.flag != flow::FlagClass::SynAck;
            } else if (cls.dependent) {
                fromClient = !fromClient;
            }

            // Timing: long flows replay exact inter-packet times;
            // short flows space dependent packets by the flow RTT
            // and others by a small fixed gap (§4).
            if (i > 0) {
                if (rec.isLong)
                    t += (*iptUs)[i];
                else
                    t += cls.dependent ? rec.rttUs : cfg_.defaultGapUs;
            }

            uint16_t payload = 0;
            if (cls.size == flow::SizeClass::Small)
                payload = cfg_.smallPayload;
            else if (cls.size == flow::SizeClass::Large)
                payload = cfg_.largePayload;

            uint8_t flags = 0;
            using namespace trace::tcp_flags;
            switch (cls.flag) {
              case flow::FlagClass::Syn:
                flags = Syn;
                break;
              case flow::FlagClass::SynAck:
                flags = Syn | Ack;
                break;
              case flow::FlagClass::Ack:
                flags = payload > 0 ? (Ack | Psh) : Ack;
                break;
              case flow::FlagClass::FinRst:
                flags = Fin | Ack;
                break;
            }

            trace::PacketRecord pkt;
            pkt.timestampNs = t * 1000ull;
            pkt.protocol = trace::ip_proto::Tcp;
            pkt.tcpFlags = flags;
            pkt.payloadBytes = payload;
            pkt.window = window;
            // §4 addressing: every packet of the flow carries the
            // stored destination and the flow's random source (the
            // direction-aware variant swaps them for s->c packets).
            bool addrAsClient =
                fromClient || !cfg_.directionAwareAddresses;
            if (addrAsClient) {
                pkt.srcIp = clientIp;
                pkt.dstIp = serverIp;
                pkt.srcPort = clientPort;
                pkt.dstPort = cfg_.serverPort;
                pkt.seq = cSeq;
                pkt.ack = (flags & Ack) ? sSeq : 0;
                pkt.ipId = cIpId++;
                cSeq += payload;
                if (flags & (Syn | Fin))
                    ++cSeq;
            } else {
                pkt.srcIp = serverIp;
                pkt.dstIp = clientIp;
                pkt.srcPort = cfg_.serverPort;
                pkt.dstPort = clientPort;
                pkt.seq = sSeq;
                pkt.ack = (flags & Ack) ? cSeq : 0;
                pkt.ipId = sIpId++;
                sSeq += payload;
                if (flags & (Syn | Fin))
                    ++sSeq;
            }
            out.push_back(pkt);
        }
    }
}

trace::Trace
FccTraceCompressor::decompress(std::span<const uint8_t> data) const
{
    // Auto-detect the hybrid container: a zlib stream starts with
    // CMF 0x78; the plain format starts with 'F' of "FCC1".
    if (!data.empty() && data[0] == 0x78) {
        auto inflated = deflate::zlibDecompress(data);
        return expand(deserialize(inflated));
    }
    return expand(deserialize(data));
}

} // namespace fcc::codec::fcc
