/**
 * @file
 * The optional chunk/flow index block of the FCC3 container — what
 * makes an .fcc archive *seekable*.
 *
 * An indexed FCC3 file frames its five time-seq columns per chunk
 * (so every chunk is an independently decodable byte range) and
 * appends an index block: per chunk, the byte range of its column
 * frames plus a summary a reader can plan against without touching
 * any column payload — record/packet counts, the first-packet and
 * reconstructed-last-packet timestamps, the largest flow, and a
 * Bloom fingerprint set over the server addresses of the flows the
 * chunk expands. A fixed 16-byte footer at the end of the file
 * locates the block, so `mmap + read the tail` is all it costs to
 * open an archive for random access.
 *
 * The byte-level layout is normative in docs/FORMAT.md §5. The
 * random-access reader lives in src/query/; this module owns the
 * index data model and its (de)serialization, shared by the writer
 * (datasets::serializeColumnar) and every reader.
 */

#ifndef FCC_CODEC_FCC_INDEX_HPP
#define FCC_CODEC_FCC_INDEX_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/simd.hpp"

namespace fcc::codec::fcc {

struct Datasets;

/** Footer magic "FCCX" (little-endian u32 at the very end of file). */
constexpr uint32_t indexFooterMagic = 0x58434346u;

/** Fixed footer: u64 payload length + u32 CRC-32 + u32 magic. */
constexpr size_t indexFooterBytes = 16;

/** Version byte opening the index payload. */
constexpr uint8_t indexVersion = 1;

/**
 * High bit of the FCC3 column-count byte: set when the time-seq
 * columns are chunk-framed and an index block trails the frames.
 * Files without the bit are laid out exactly as before PR 5.
 */
constexpr uint8_t indexedLayoutFlag = 0x80;

/** Bloom sizing: bits per *distinct* server address in a chunk. */
constexpr uint32_t bloomBitsPerServer = 10;

/** Bloom probes per membership test. */
constexpr uint32_t bloomProbes = 5;

/**
 * Precomputed Bloom double-hash pair of one server address. Hashing
 * dominates a probe, and a query tests the same address against
 * every chunk of every archive — fingerprint once, probe many.
 */
struct ServerFingerprint
{
    uint64_t h1 = 0;
    uint64_t h2 = 1;
};

/** Fingerprint @p serverIp for ChunkSummary::mayContain(). */
ServerFingerprint serverFingerprint(uint32_t serverIp);

/**
 * Build a Bloom filter of @p bits bits (power of two, >= 64) over
 * @p servers. The dispatched path hashes the whole batch before
 * touching the filter (the hash loop auto-vectorizes); the scalar
 * path interleaves hash and insert per server. Identical filters.
 */
std::vector<uint8_t> bloomBuild(std::span<const uint32_t> servers,
                                uint32_t bits,
                                util::Dispatch d =
                                    util::Dispatch::Auto);

/** Tuning knobs the serializer needs to build summaries. */
struct IndexOptions
{
    /**
     * Spacing of non-dependent packets the reconstruction will use
     * (FccConfig::defaultGapUs): the per-chunk end-timestamp bound
     * is computed with it, so time-window planning is exact for a
     * reader decoding with the same gap.
     */
    uint32_t gapUs = 300;
};

/**
 * Per-chunk entry of the index: where the chunk's column frames live
 * and what a predicate can rule out without decoding them.
 */
struct ChunkSummary
{
    uint64_t byteOffset = 0;   ///< file offset of the chunk's frames
    uint64_t byteLength = 0;   ///< total bytes of its five frames
    uint64_t records = 0;      ///< time-seq records (flows)
    uint64_t packets = 0;      ///< packets the chunk expands to
    uint64_t maxFlowPackets = 0;  ///< largest flow in the chunk
    uint64_t minFirstUs = 0;   ///< first record's timestamp
    /**
     * Upper bound on the last reconstructed packet's timestamp,
     * computed with IndexOptions::gapUs (long flows replay exact
     * inter-packet times, so theirs is exact).
     */
    uint64_t maxEndUs = 0;
    uint32_t bloomBits = 0;    ///< filter size in bits (power of two)
    std::vector<uint8_t> bloom;  ///< bloomBits/8 filter bytes

    /**
     * May any flow of this chunk have @p serverIp as its stored
     * destination address? False positives at the configured Bloom
     * rate (~1 %); never false negatives.
     */
    bool mayContainServer(uint32_t serverIp) const;

    /**
     * mayContainServer() with the hashing already paid — the form
     * query planners use when testing one address against many
     * chunks.
     */
    bool mayContain(const ServerFingerprint &fp) const;

    /** May the chunk's packets overlap [t0Us, t1Us] (inclusive)? */
    bool
    overlapsTime(uint64_t t0Us, uint64_t t1Us) const
    {
        return minFirstUs <= t1Us && maxEndUs >= t0Us;
    }
};

/** The whole index block of one archive. */
struct ArchiveIndex
{
    uint32_t gapUs = 300;      ///< timing assumption of maxEndUs
    std::vector<ChunkSummary> chunks;

    uint64_t
    totalRecords() const
    {
        uint64_t n = 0;
        for (const ChunkSummary &c : chunks)
            n += c.records;
        return n;
    }
};

/**
 * Build the per-chunk summaries (everything except the byte ranges,
 * which only the serializer knows) for @p datasets laid out as
 * @p chunkSizes consecutive time-seq record runs.
 * @throws fcc::util::Error when the chunk layout or a template is
 *         inconsistent with the datasets.
 */
ArchiveIndex buildArchiveIndex(const Datasets &datasets,
                               std::span<const uint32_t> chunkSizes,
                               const IndexOptions &options);

/**
 * Serialize @p index as the on-wire block: payload, CRC-32 and the
 * 16-byte footer, ready to append after the last column frame.
 */
std::vector<uint8_t> serializeArchiveIndex(const ArchiveIndex &index);

/**
 * Total bytes (payload + footer) the index block occupies at the
 * tail of @p file. Validates only the footer: magic plus a payload
 * length that fits the file.
 * @throws fcc::util::Error when the footer is missing or malformed —
 *         callers reach here only for files whose header flags an
 *         indexed layout, where a bad footer means the column-frame
 *         region cannot even be delimited.
 */
uint64_t indexRegionBytes(std::span<const uint8_t> file);

/**
 * Parse the index block at the tail of @p file.
 *
 * @returns std::nullopt when the file simply has no index footer.
 * @throws fcc::util::Error when a footer is present but the block is
 *         corrupt (CRC mismatch, bad version, truncated or
 *         inconsistent summaries) — readers that can should catch
 *         this and fall back to a full decode.
 */
std::optional<ArchiveIndex>
readArchiveIndex(std::span<const uint8_t> file);

} // namespace fcc::codec::fcc

#endif // FCC_CODEC_FCC_INDEX_HPP
