/**
 * @file
 * Streaming FCC interface over TraceSource/TraceSink: incremental
 * record reading with bounded open-flow state on compression; on
 * decompression the §4 time-ordered reconstruction buffer, flushed
 * to the sink whenever its head predates the next time-seq record.
 */

#include "codec/fcc/stream.hpp"

#include <algorithm>
#include <memory>
#include <queue>
#include <unordered_map>

#include "flow/template_store.hpp"
#include "trace/tsh.hpp"
#include "util/error.hpp"
#include "util/io.hpp"
#include "util/thread_pool.hpp"

namespace fcc::codec::fcc {

namespace {

/**
 * Incremental single-flow state: enough to classify packets online
 * (the dependence bit only needs the previous packet's direction)
 * and to emit the flow's datasets entry when it closes.
 */
struct OpenFlow
{
    uint32_t clientIp = 0;
    uint16_t clientPort = 0;
    uint32_t serverIp = 0;
    bool clientKnown = false;
    bool prevFromClient = true;
    bool finFromClient = false;
    bool finFromServer = false;
    uint32_t rttUs = 0;  ///< first direction-change gap
    std::vector<uint16_t> sValues;
    std::vector<uint64_t> packetUs;
};

/** Shared dataset-building state of a streaming compression. */
class StreamingBuilder
{
  public:
    explicit StreamingBuilder(const FccConfig &cfg)
        : cfg_(cfg), chi_(cfg.weights), store_(cfg.rule)
    {
        datasets_.weights = cfg.weights;
    }

    void
    addPacket(const trace::PacketRecord &pkt)
    {
        util::require(pkt.timestampNs >= lastNs_,
                      "fcc stream: input not time-ordered");
        lastNs_ = pkt.timestampNs;
        ++packets_;

        flow::FlowKey key = flow::FlowKey::fromPacket(pkt);
        auto it = open_.find(key);
        if (it != open_.end() && cfg_.flowTable.idleTimeoutNs > 0 &&
            !it->second.packetUs.empty() &&
            pkt.timestampNs - it->second.packetUs.back() * 1000 >
                cfg_.flowTable.idleTimeoutNs) {
            closeFlow(it->second);
            open_.erase(it);
            it = open_.end();
        }
        if (it == open_.end())
            it = open_.emplace(key, OpenFlow{}).first;
        OpenFlow &flowState = it->second;

        if (!flowState.clientKnown) {
            bool synAck = pkt.hasSyn() && pkt.hasAck();
            flowState.clientIp = synAck ? pkt.dstIp : pkt.srcIp;
            flowState.clientPort = synAck ? pkt.dstPort : pkt.srcPort;
            flowState.serverIp = synAck ? pkt.srcIp : pkt.dstIp;
            flowState.clientKnown = true;
        }
        bool fromClient = pkt.srcIp == flowState.clientIp &&
                          pkt.srcPort == flowState.clientPort;

        flow::PacketClass cls;
        cls.flag = flow::flagClass(pkt.tcpFlags);
        cls.size = flow::sizeClass(pkt.payloadBytes);
        cls.dependent = !flowState.sValues.empty() &&
                        fromClient != flowState.prevFromClient;
        if (cls.dependent && flowState.rttUs == 0) {
            uint64_t gap =
                pkt.timestampUs() - flowState.packetUs.back();
            flowState.rttUs = static_cast<uint32_t>(
                std::min<uint64_t>(gap, 0xffffffffu));
        }
        flowState.sValues.push_back(chi_.encode(cls));
        flowState.packetUs.push_back(pkt.timestampUs());
        flowState.prevFromClient = fromClient;

        if (pkt.hasFin()) {
            if (fromClient)
                flowState.finFromClient = true;
            else
                flowState.finFromServer = true;
        }
        bool gracefulDone = flowState.finFromClient &&
                            flowState.finFromServer &&
                            !pkt.hasFin() && pkt.hasAck();
        if (pkt.hasRst() || gracefulDone) {
            closeFlow(flowState);
            open_.erase(key);
        }
    }

    /** Close every open flow and produce the final datasets. */
    Datasets
    finish()
    {
        for (auto &[key, flowState] : open_)
            closeFlow(flowState);
        open_.clear();
        // Flows close out of order; the time-seq dataset is sorted
        // by first-packet timestamp (one record per flow).
        std::sort(datasets_.timeSeq.begin(), datasets_.timeSeq.end(),
                  [](const TimeSeqRecord &a, const TimeSeqRecord &b) {
                      return a.firstTimestampUs < b.firstTimestampUs;
                  });
        datasets_.shortTemplates = store_.all();
        return std::move(datasets_);
    }

    uint64_t packets() const { return packets_; }
    uint64_t flows() const { return flows_; }

  private:
    void
    closeFlow(OpenFlow &flowState)
    {
        if (flowState.sValues.empty())
            return;
        ++flows_;
        TimeSeqRecord rec;
        rec.firstTimestampUs = flowState.packetUs.front();

        auto [it, isNew] = addrIndex_.try_emplace(
            flowState.serverIp,
            static_cast<uint32_t>(datasets_.addresses.size()));
        if (isNew)
            datasets_.addresses.push_back(flowState.serverIp);
        rec.addressIndex = it->second;

        if (flowState.sValues.size() <= cfg_.shortLimit) {
            flow::SfVector sf;
            sf.values = std::move(flowState.sValues);
            rec.isLong = false;
            rec.templateIndex = store_.findOrInsert(sf).index;
            rec.rttUs = flowState.rttUs;
        } else {
            LongTemplate tmpl;
            tmpl.sValues = std::move(flowState.sValues);
            tmpl.iptUs.resize(flowState.packetUs.size());
            tmpl.iptUs[0] = 0;
            for (size_t i = 1; i < flowState.packetUs.size(); ++i)
                tmpl.iptUs[i] = flowState.packetUs[i] -
                                flowState.packetUs[i - 1];
            rec.isLong = true;
            rec.templateIndex = static_cast<uint32_t>(
                datasets_.longTemplates.size());
            datasets_.longTemplates.push_back(std::move(tmpl));
        }
        datasets_.timeSeq.push_back(rec);
    }

    FccConfig cfg_;
    flow::Characterizer chi_;
    flow::TemplateStore store_;
    Datasets datasets_;
    std::unordered_map<flow::FlowKey, OpenFlow> open_;
    std::unordered_map<uint32_t, uint32_t> addrIndex_;
    uint64_t lastNs_ = 0;
    uint64_t packets_ = 0;
    uint64_t flows_ = 0;
};

} // namespace

StreamStats
compressSource(trace::TraceSource &src, const std::string &fccPath,
               const FccConfig &cfg)
{
    StreamingBuilder builder(cfg);
    StreamStats stats;

    std::vector<trace::PacketRecord> batch(4096);
    size_t n;
    while ((n = src.read(batch)) > 0)
        for (size_t i = 0; i < n; ++i)
            builder.addPacket(batch[i]);
    stats.inputBytes = src.bytesConsumed();

    Datasets datasets = builder.finish();
    SizeBreakdown sizes;
    // Container dispatch (FCC1/FCC2/FCC3) shared with the in-memory
    // codec; FCC3 runs its per-column encode jobs on cfg.threads.
    auto bytes = serializeDatasets(datasets, cfg, sizes);

    util::FileByteSink out(fccPath);
    out.write(bytes);
    out.close();
    stats.outputBytes = bytes.size();
    stats.packets = builder.packets();
    stats.flows = builder.flows();
    return stats;
}

StreamStats
compressTraceFile(const std::string &inPath,
                  const std::string &fccPath, const FccConfig &cfg,
                  const trace::TraceFormatSpec &format)
{
    auto src = trace::openTraceSource(inPath, format);
    return compressSource(*src, fccPath, cfg);
}

namespace {

/** Load and decode an FCC container, reporting its on-disk size. */
Datasets
loadDatasets(const std::string &fccPath, uint64_t &inputBytes,
             const FccConfig &cfg)
{
    // The compressed artifact is read via mmap when possible — the
    // Datasets it decodes to live in memory by design; the
    // *reconstructed packets* never do.
    auto in = util::openByteSource(fccPath);
    std::vector<uint8_t> owned;
    std::span<const uint8_t> bytes = util::readAllBytes(*in, owned);
    inputBytes = bytes.size();
    // One shared decode entry point: zlib-hybrid unwrap, container
    // auto-detection, pooled FCC3 column decode.
    return deserializeAuto(bytes, cfg.threads);
}

/** The §4 expansion of already-decoded datasets into a sink. */
StreamStats
expandToSink(const Datasets &datasets, trace::TraceSink &sink,
             const FccConfig &cfg, uint64_t inputBytes)
{
    FccTraceCompressor codec(cfg);

    StreamStats stats;
    stats.inputBytes = inputBytes;
    stats.flows = datasets.timeSeq.size();

    // Paper §4: reconstructed packets wait in a time-ordered buffer;
    // everything older than the next not-yet-expanded record's
    // timestamp is flushed to the output file, so peak memory stays
    // near the concurrently active flows (plus, for FCC2, one batch
    // of chunks).
    // Canonical total order: equal-timestamp packets must pop in a
    // fixed order whatever the chunk batching (i.e. thread count).
    auto later = [](const trace::PacketRecord &a,
                    const trace::PacketRecord &b) {
        return trace::packetCanonicalLess(b, a);
    };
    std::priority_queue<trace::PacketRecord,
                        std::vector<trace::PacketRecord>,
                        decltype(later)>
        pendingQ(later);

    std::vector<trace::PacketRecord> flushBatch;
    auto flushOlderThan = [&](uint64_t limitNs) {
        flushBatch.clear();
        while (!pendingQ.empty() &&
               pendingQ.top().timestampNs < limitNs) {
            flushBatch.push_back(pendingQ.top());
            pendingQ.pop();
        }
        if (flushBatch.empty())
            return;
        sink.write(std::span<const trace::PacketRecord>(flushBatch));
        stats.packets += flushBatch.size();
    };

    if (!datasets.chunkSizes.empty()) {
        // FCC2: expand a batch of chunks concurrently (per-chunk RNG
        // streams), then flush everything older than the next
        // unexpanded chunk's first record — records are globally
        // time-sorted across chunks, so no later chunk can produce
        // an older packet.
        size_t chunks = datasets.chunkSizes.size();
        std::vector<size_t> offset(chunks + 1, 0);
        for (size_t c = 0; c < chunks; ++c)
            offset[c + 1] = offset[c] + datasets.chunkSizes[c];
        util::require(offset[chunks] == datasets.timeSeq.size(),
                      "fcc: chunk sizes disagree with time-seq");

        unsigned threads = cfg.threads != 0
            ? cfg.threads
            : util::ThreadPool::hardwareThreads();
        std::unique_ptr<util::ThreadPool> pool;
        if (threads > 1 && chunks > 1)
            pool = std::make_unique<util::ThreadPool>(threads);
        size_t batchChunks =
            std::max<size_t>(1, size_t{threads} * 2);

        std::vector<std::vector<trace::PacketRecord>> perChunk;
        for (size_t base = 0; base < chunks; base += batchChunks) {
            size_t end = std::min(chunks, base + batchChunks);
            perChunk.assign(end - base, {});
            auto expandOne = [&](size_t i) {
                codec.expandChunk(datasets, base + i, perChunk[i]);
            };
            if (pool)
                pool->parallelFor(end - base, expandOne);
            else
                for (size_t i = 0; i < end - base; ++i)
                    expandOne(i);
            for (const auto &chunkPackets : perChunk)
                for (const auto &pkt : chunkPackets)
                    pendingQ.push(pkt);
            uint64_t limitNs = end < chunks
                ? datasets.timeSeq[offset[end]].firstTimestampUs *
                      1000
                : ~0ull;
            flushOlderThan(limitNs);
        }
        sink.close();
        stats.outputBytes = sink.bytesWritten();
        return stats;
    }

    // Legacy FCC1: single sequential RNG stream over all records.
    util::Rng rng(cfg.decompressSeed);
    std::vector<trace::PacketRecord> flowPackets;
    for (const auto &rec : datasets.timeSeq) {
        flushOlderThan(rec.firstTimestampUs * 1000);
        flowPackets.clear();
        codec.expandFlow(datasets, rec, rng, flowPackets);
        for (const auto &pkt : flowPackets)
            pendingQ.push(pkt);
    }
    flushOlderThan(~0ull);
    sink.close();
    stats.outputBytes = sink.bytesWritten();
    return stats;
}

} // namespace

StreamStats
decompressToSink(const std::string &fccPath, trace::TraceSink &sink,
                 const FccConfig &cfg)
{
    uint64_t inputBytes = 0;
    Datasets datasets = loadDatasets(fccPath, inputBytes, cfg);
    return expandToSink(datasets, sink, cfg, inputBytes);
}

StreamStats
decompressTraceFile(const std::string &fccPath,
                    const std::string &outPath, const FccConfig &cfg,
                    const trace::TraceFormatSpec &format)
{
    // Decode the input fully before opening (and truncating) the
    // output path: a corrupt .fcc must not clobber an existing file.
    uint64_t inputBytes = 0;
    Datasets datasets = loadDatasets(fccPath, inputBytes, cfg);
    auto sink = trace::openTraceSink(outPath, format);
    return expandToSink(datasets, *sink, cfg, inputBytes);
}

StreamStats
compressTshFile(const std::string &tshPath, const std::string &fccPath,
                const FccConfig &cfg)
{
    trace::TraceFormatSpec tsh;
    tsh.autoDetect = false;
    tsh.format = trace::TraceFormat::Tsh;
    return compressTraceFile(tshPath, fccPath, cfg, tsh);
}

StreamStats
decompressToTshFile(const std::string &fccPath,
                    const std::string &tshPath, const FccConfig &cfg)
{
    trace::TraceFormatSpec tsh;
    tsh.autoDetect = false;
    tsh.format = trace::TraceFormat::Tsh;
    return decompressTraceFile(fccPath, tshPath, cfg, tsh);
}

} // namespace fcc::codec::fcc
