/**
 * @file
 * One-shot streaming FCC entry points, each a thin shell over a
 * single-epoch session (session.hpp): compression feeds a
 * TraceSource into a CompressSession and seals once; decompression
 * opens one archive in a DecompressSession and drains it through
 * the §4 bounded-memory flush.
 */

#include "codec/fcc/stream.hpp"

#include "codec/fcc/session.hpp"

namespace fcc::codec::fcc {

StreamStats
compressSource(trace::TraceSource &src, const std::string &fccPath,
               const FccConfig &cfg)
{
    CompressSession session(cfg);

    std::vector<trace::PacketRecord> batch(4096);
    size_t n;
    while ((n = src.read(batch)) > 0)
        session.feed(std::span<const trace::PacketRecord>(
            batch.data(), n));
    session.addInputBytes(src.bytesConsumed());

    session.sealToFile(fccPath);
    return session.stats();
}

StreamStats
compressTraceFile(const std::string &inPath,
                  const std::string &fccPath, const FccConfig &cfg,
                  const trace::TraceFormatSpec &format)
{
    auto src = trace::openTraceSource(inPath, format);
    return compressSource(*src, fccPath, cfg);
}

StreamStats
decompressToSink(const std::string &fccPath, trace::TraceSink &sink,
                 const FccConfig &cfg)
{
    DecompressSession session(cfg);
    session.open(fccPath);
    return session.drainTo(sink);
}

StreamStats
decompressTraceFile(const std::string &fccPath,
                    const std::string &outPath, const FccConfig &cfg,
                    const trace::TraceFormatSpec &format)
{
    // Decode the input fully before opening (and truncating) the
    // output path: a corrupt .fcc must not clobber an existing file.
    DecompressSession session(cfg);
    session.open(fccPath);
    auto sink = trace::openTraceSink(outPath, format);
    return session.drainTo(*sink);
}

} // namespace fcc::codec::fcc
