/**
 * @file
 * One-shot streaming interface of the FCC codec over the trace I/O
 * subsystem: compression consumes any TraceSource (TSH, pcap,
 * pcapng, gzip'd variants — see trace/source.hpp), decompression
 * produces any TraceSink. Every entry point here is a thin wrapper
 * over a single-epoch session (session.hpp) — the open-ended API
 * that can also seal an archive and re-arm for the next one, which
 * is what the continuous-capture archiver (src/archive, fccd)
 * builds on.
 *
 * Compression reads packet records incrementally (one connection's
 * worth of state at a time — memory is bounded by open flows plus
 * the template/time-seq datasets, not by the packet count).
 *
 * Decompression of an unchunked file (FCC1, or FCC3 written with
 * chunkRecords == 0) implements the paper's §4 algorithm literally:
 * a time-ordered buffer ("linked list" in the paper) of
 * reconstructed packets is flushed to the output file whenever
 * packets are older than the next time-seq record's timestamp, so
 * output is produced as the compressed stream is scanned rather
 * than after a global sort. A chunked file (FCC2/FCC3) instead
 * expands its chunks concurrently (FccConfig::threads workers, one
 * RNG stream per chunk) between bounded-memory flushes and writes
 * the merged result. FCC3 additionally decodes its columns on the
 * pool before expansion begins.
 */

#ifndef FCC_CODEC_FCC_STREAM_HPP
#define FCC_CODEC_FCC_STREAM_HPP

#include <cstdint>
#include <string>

#include "codec/fcc/fcc_codec.hpp"
#include "trace/source.hpp"

namespace fcc::codec::fcc {

/**
 * Outcome of a streaming run — one-shot or session-based. The
 * lifecycle counters come from the session layer (session.hpp): a
 * one-shot run is a single-epoch session, so it reports one epoch,
 * one sealed archive and the archive's chunk count.
 */
struct StreamStats
{
    uint64_t packets = 0;
    uint64_t flows = 0;
    uint64_t inputBytes = 0;
    uint64_t outputBytes = 0;

    // Session lifecycle (compression: what seal() produced so far;
    // decompression: epochs counts drained archives).
    uint64_t chunksSealed = 0;   ///< chunks across sealed archives
    uint64_t archivesSealed = 0; ///< seal() count
    uint64_t epochs = 0;         ///< arm/re-arm cycles started

    double
    ratio() const
    {
        return inputBytes
            ? static_cast<double>(outputBytes) /
                  static_cast<double>(inputBytes)
            : 0.0;
    }
};

/**
 * Compress any TraceSource into an FCC file without materializing
 * the packet stream: memory is bounded by open flows plus the
 * datasets, whatever the input size. Input must be time-ordered.
 * With cfg.index set (FCC3 only) the output is a *seekable*
 * archive: chunk-framed time-seq columns plus the chunk/flow index
 * block the random-access query subsystem (src/query, fccquery)
 * plans against.
 *
 * @throws fcc::util::Error on I/O failure or malformed input.
 */
StreamStats
compressSource(trace::TraceSource &src, const std::string &fccPath,
               const FccConfig &cfg = {});

/**
 * Compress a trace file of any supported capture format (TSH, pcap,
 * pcapng, each optionally gzip'd) into an FCC file. The default
 * spec auto-detects the format from magic bytes.
 *
 * @throws fcc::util::Error on I/O failure or malformed input.
 */
StreamStats
compressTraceFile(const std::string &inPath,
                  const std::string &fccPath,
                  const FccConfig &cfg = {},
                  const trace::TraceFormatSpec &format = {});

/**
 * Decompress an FCC file into @p sink using the §4 incremental
 * flush (peak buffered packets stays near the number of concurrently
 * active flows). The sink is closed before returning.
 *
 * @throws fcc::util::Error on I/O failure or malformed input.
 */
StreamStats
decompressToSink(const std::string &fccPath, trace::TraceSink &sink,
                 const FccConfig &cfg = {});

/**
 * Decompress an FCC file into a trace file. An auto spec picks the
 * output format from the extension (.pcap / .pcapng, else TSH).
 *
 * @throws fcc::util::Error on I/O failure or malformed input.
 */
StreamStats
decompressTraceFile(const std::string &fccPath,
                    const std::string &outPath,
                    const FccConfig &cfg = {},
                    const trace::TraceFormatSpec &format = {});

} // namespace fcc::codec::fcc

#endif // FCC_CODEC_FCC_STREAM_HPP
