/**
 * @file
 * File-to-file streaming interface of the FCC codec.
 *
 * Compression reads TSH records incrementally (one connection's
 * worth of state at a time — memory is bounded by open flows plus
 * the template/time-seq datasets, not by the packet count).
 *
 * Decompression of a legacy FCC1 file implements the paper's §4
 * algorithm literally: a time-ordered buffer ("linked list" in the
 * paper) of reconstructed packets is flushed to the output file
 * whenever packets are older than the next time-seq record's
 * timestamp, so output is produced as the compressed stream is
 * scanned rather than after a global sort. A chunked FCC2 file
 * instead expands its chunks concurrently (FccConfig::threads
 * workers, one RNG stream per chunk) and writes the merged result.
 */

#ifndef FCC_CODEC_FCC_STREAM_HPP
#define FCC_CODEC_FCC_STREAM_HPP

#include <cstdint>
#include <string>

#include "codec/fcc/fcc_codec.hpp"

namespace fcc::codec::fcc {

/** Outcome of a streaming run. */
struct StreamStats
{
    uint64_t packets = 0;
    uint64_t flows = 0;
    uint64_t inputBytes = 0;
    uint64_t outputBytes = 0;

    double
    ratio() const
    {
        return inputBytes
            ? static_cast<double>(outputBytes) /
                  static_cast<double>(inputBytes)
            : 0.0;
    }
};

/**
 * Compress a TSH file into an FCC file without materializing the
 * whole packet trace.
 *
 * @throws fcc::util::Error on I/O failure or malformed input.
 */
StreamStats
compressTshFile(const std::string &tshPath, const std::string &fccPath,
                const FccConfig &cfg = {});

/**
 * Decompress an FCC file into a TSH file using the §4 incremental
 * flush (peak buffered packets stays near the number of concurrently
 * active flows).
 *
 * @throws fcc::util::Error on I/O failure or malformed input.
 */
StreamStats
decompressToTshFile(const std::string &fccPath,
                    const std::string &tshPath,
                    const FccConfig &cfg = {});

} // namespace fcc::codec::fcc

#endif // FCC_CODEC_FCC_STREAM_HPP
