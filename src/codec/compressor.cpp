/**
 * @file
 * Codec registry (makeAllCompressors) and the measure() harness
 * that sizes a codec's output against the 44-byte-per-packet TSH
 * baseline.
 */

#include "codec/compressor.hpp"

#include "codec/deflate/deflate.hpp"
#include "codec/fcc/fcc_codec.hpp"
#include "codec/peuhkuri/peuhkuri.hpp"
#include "codec/vj/vj.hpp"
#include "trace/tsh.hpp"

namespace fcc::codec {

CompressionReport
measure(const TraceCompressor &codec, const trace::Trace &trace)
{
    CompressionReport report;
    report.codec = codec.name();
    report.originalTshBytes = trace.size() * trace::tshRecordBytes;
    report.compressedBytes = codec.compress(trace).size();
    return report;
}

std::vector<std::unique_ptr<TraceCompressor>>
makeAllCodecs()
{
    return makeAllCodecs(fcc::FccConfig{});
}

std::vector<std::unique_ptr<TraceCompressor>>
makeAllCodecs(const fcc::FccConfig &fccConfig)
{
    std::vector<std::unique_ptr<TraceCompressor>> codecs;
    codecs.push_back(std::make_unique<deflate::GzipTraceCompressor>());
    codecs.push_back(std::make_unique<vj::VjTraceCompressor>());
    codecs.push_back(
        std::make_unique<peuhkuri::PeuhkuriTraceCompressor>());
    codecs.push_back(
        std::make_unique<fcc::FccTraceCompressor>(fccConfig));
    return codecs;
}

} // namespace fcc::codec
