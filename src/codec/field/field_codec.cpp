/**
 * @file
 * Field-codec implementations (plain varint, zigzag-delta,
 * first-appearance dictionary, run-length) plus the analytical
 * cost model behind chooseCodec().
 */

#include "codec/field/field_codec.hpp"

#include <unordered_map>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fcc::codec::field {

namespace {

using util::varintLen;

uint64_t
plainSize(std::span<const uint64_t> values)
{
    return util::varintLenSum(values);
}

uint64_t
zigzagDeltaSize(std::span<const uint64_t> values)
{
    // Pure per-element arithmetic (difference, zigzag, bit_width) —
    // auto-vectorizes, unlike the trial-encode it replaces.
    uint64_t bytes = 0;
    uint64_t prev = 0;
    for (uint64_t v : values) {
        bytes += varintLen(
            zigzagEncode(static_cast<int64_t>(v - prev)));
        prev = v;
    }
    return bytes;
}

uint64_t
dictSize(std::span<const uint64_t> values)
{
    std::unordered_map<uint64_t, uint64_t> index;
    index.reserve(values.size());
    uint64_t bytes = 0;
    for (uint64_t v : values) {
        auto [it, isNew] = index.try_emplace(v, index.size());
        if (isNew)
            bytes += varintLen(v);
        bytes += varintLen(it->second);
    }
    return bytes + varintLen(index.size());
}

uint64_t
rleSize(std::span<const uint64_t> values)
{
    uint64_t bytes = 0;
    size_t i = 0;
    while (i < values.size()) {
        size_t run = 1;
        while (i + run < values.size() &&
               values[i + run] == values[i])
            ++run;
        bytes += varintLen(values[i]) + varintLen(run);
        i += run;
    }
    return bytes;
}

} // namespace

const char *
fieldCodecName(FieldCodec codec)
{
    switch (codec) {
      case FieldCodec::Plain:
        return "plain";
      case FieldCodec::ZigzagDelta:
        return "zigzag";
      case FieldCodec::Dict:
        return "dict";
      case FieldCodec::Rle:
        return "rle";
    }
    return "?";
}

FieldCodec
parseFieldCodecName(const std::string &name)
{
    for (uint8_t t = 0; t < fieldCodecCount; ++t)
        if (name == fieldCodecName(static_cast<FieldCodec>(t)))
            return static_cast<FieldCodec>(t);
    throw util::Error("unknown field codec: " + name);
}

uint64_t
encodedSize(std::span<const uint64_t> values, FieldCodec codec)
{
    switch (codec) {
      case FieldCodec::Plain:
        return plainSize(values);
      case FieldCodec::ZigzagDelta:
        return zigzagDeltaSize(values);
      case FieldCodec::Dict:
        return dictSize(values);
      case FieldCodec::Rle:
        return rleSize(values);
    }
    throw util::Error("field: bad codec tag");
}

void
floorToGrid(std::span<uint64_t> values, uint64_t quantum)
{
    util::require(quantum >= 1, "field: grid quantum must be >= 1");
    for (uint64_t &v : values)
        v -= v % quantum;
}

bool
isOnGrid(std::span<const uint64_t> values, uint64_t quantum)
{
    util::require(quantum >= 1, "field: grid quantum must be >= 1");
    for (uint64_t v : values)
        if (v % quantum != 0)
            return false;
    return true;
}

FieldCodec
chooseCodec(std::span<const uint64_t> values)
{
    FieldCodec best = FieldCodec::Plain;
    uint64_t bestSize = plainSize(values);
    const FieldCodec rest[] = {FieldCodec::ZigzagDelta,
                               FieldCodec::Dict, FieldCodec::Rle};
    for (FieldCodec codec : rest) {
        uint64_t size = encodedSize(values, codec);
        if (size < bestSize) {
            best = codec;
            bestSize = size;
        }
    }
    return best;
}

std::vector<uint8_t>
encodeColumn(std::span<const uint64_t> values, FieldCodec codec,
             util::Dispatch d)
{
    util::ByteWriter w;
    switch (codec) {
      case FieldCodec::Plain: {
        std::vector<uint8_t> out;
        util::varintEncodeBatch(values, out, d);
        return out;
      }

      case FieldCodec::ZigzagDelta: {
        if (!util::useAccel(d)) {
            uint64_t prev = 0;
            for (uint64_t v : values) {
                w.varint(
                    zigzagEncode(static_cast<int64_t>(v - prev)));
                prev = v;
            }
            break;
        }
        // Delta+zigzag is vectorizable arithmetic; materialize the
        // mapped values once, then batch-encode the varints.
        std::vector<uint64_t> mapped(values.size());
        uint64_t prev = 0;
        for (size_t i = 0; i < values.size(); ++i) {
            mapped[i] =
                zigzagEncode(static_cast<int64_t>(values[i] - prev));
            prev = values[i];
        }
        std::vector<uint8_t> out;
        util::varintEncodeBatch(mapped, out, d);
        return out;
      }

      case FieldCodec::Dict: {
        std::unordered_map<uint64_t, uint64_t> index;
        index.reserve(values.size());
        std::vector<uint64_t> dict;
        std::vector<uint64_t> refs;
        refs.reserve(values.size());
        for (uint64_t v : values) {
            auto [it, isNew] = index.try_emplace(v, dict.size());
            if (isNew)
                dict.push_back(v);
            refs.push_back(it->second);
        }
        std::vector<uint8_t> out;
        const uint64_t dictCount = dict.size();
        util::varintEncodeBatch({&dictCount, 1}, out, d);
        util::varintEncodeBatch(dict, out, d);
        util::varintEncodeBatch(refs, out, d);
        return out;
      }

      case FieldCodec::Rle: {
        size_t i = 0;
        while (i < values.size()) {
            size_t run = 1;
            while (i + run < values.size() &&
                   values[i + run] == values[i])
                ++run;
            w.varint(values[i]);
            w.varint(run);
            i += run;
        }
        break;
      }

      default:
        throw util::Error("field: bad codec tag");
    }
    return w.take();
}

std::vector<uint64_t>
decodeColumn(std::span<const uint8_t> data, FieldCodec codec,
             size_t count, util::Dispatch d)
{
    util::ByteReader r(data);
    std::vector<uint64_t> values;
    values.reserve(count);
    switch (codec) {
      case FieldCodec::Plain: {
        values.resize(count);
        size_t consumed = util::varintDecodeBatch(
            data.data(), data.size(), values.data(), count, d);
        util::require(consumed == data.size(),
                      "field: trailing bytes after column");
        return values;
      }

      case FieldCodec::ZigzagDelta: {
        if (!util::useAccel(d)) {
            uint64_t prev = 0;
            for (size_t i = 0; i < count; ++i) {
                prev +=
                    static_cast<uint64_t>(zigzagDecode(r.varint()));
                values.push_back(prev);
            }
            break;
        }
        values.resize(count);
        size_t consumed = util::varintDecodeBatch(
            data.data(), data.size(), values.data(), count, d);
        util::require(consumed == data.size(),
                      "field: trailing bytes after column");
        // Prefix sum stays serial — each element depends on the
        // previous one — but runs over registers, not the decoder.
        uint64_t prev = 0;
        for (size_t i = 0; i < count; ++i) {
            prev += static_cast<uint64_t>(zigzagDecode(values[i]));
            values[i] = prev;
        }
        return values;
      }

      case FieldCodec::Dict: {
        uint64_t dictCount = r.varint();
        // Every distinct value appears at least once, so a valid
        // dictionary is never larger than the column.
        util::require(dictCount <= count,
                      "field: dictionary larger than column");
        if (util::useAccel(d)) {
            std::vector<uint64_t> dict(dictCount);
            size_t pos = r.position();
            pos += util::varintDecodeBatch(
                data.data() + pos, data.size() - pos, dict.data(),
                dictCount, d);
            std::vector<uint64_t> refs(count);
            pos += util::varintDecodeBatch(
                data.data() + pos, data.size() - pos, refs.data(),
                count, d);
            util::require(pos == data.size(),
                          "field: trailing bytes after column");
            values.resize(count);
            for (size_t i = 0; i < count; ++i) {
                util::require(refs[i] < dictCount,
                              "field: dictionary index out of range");
                values[i] = dict[refs[i]];
            }
            return values;
        }
        std::vector<uint64_t> dict;
        dict.reserve(dictCount);
        for (uint64_t i = 0; i < dictCount; ++i)
            dict.push_back(r.varint());
        for (size_t i = 0; i < count; ++i) {
            uint64_t ref = r.varint();
            util::require(ref < dictCount,
                          "field: dictionary index out of range");
            values.push_back(dict[ref]);
        }
        break;
      }

      case FieldCodec::Rle: {
        while (values.size() < count) {
            uint64_t v = r.varint();
            uint64_t run = r.varint();
            util::require(run >= 1 &&
                              run <= count - values.size(),
                          "field: run length out of range");
            values.insert(values.end(), run, v);
        }
        break;
      }

      default:
        throw util::Error("field: bad codec tag");
    }
    util::require(r.exhausted(),
                  "field: trailing bytes after column");
    return values;
}

} // namespace fcc::codec::field
