/**
 * @file
 * Field codecs: reversible per-column integer transforms used by the
 * columnar FCC3 container (codec/fcc/datasets).
 *
 * A column is a homogeneous sequence of u64 values (timestamps,
 * template indices, S values, run flags, ...). Each codec turns the
 * column into a byte stream whose layout fits one value shape:
 *
 *  - Plain:       one LEB128 varint per value (the FCC1/FCC2 idiom);
 *  - ZigzagDelta: varint of the zigzag-mapped difference to the
 *                 previous value — near-sorted columns (timestamps)
 *                 collapse to single-byte deltas;
 *  - Dict:        first-appearance dictionary plus one varint index
 *                 per value — low-cardinality columns (RTTs,
 *                 template indices of hot clusters);
 *  - Rle:         (value, run-length) varint pairs — constant runs
 *                 (S/L flags, chunk sizes).
 *
 * Codecs are self-describing only through the one-byte tag the
 * container stores next to each column; chooseCodec() sizes all four
 * encodings analytically (no trial buffers) and picks the smallest,
 * ties broken by the lowest tag so the choice is deterministic.
 */

#ifndef FCC_CODEC_FIELD_FIELD_CODEC_HPP
#define FCC_CODEC_FIELD_FIELD_CODEC_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/simd.hpp"

namespace fcc::codec::field {

/** Wire tag of a column's transform (one byte in the container). */
enum class FieldCodec : uint8_t
{
    Plain = 0,
    ZigzagDelta = 1,
    Dict = 2,
    Rle = 3,
};

/** Number of defined codecs (tags are 0 .. count-1). */
constexpr uint8_t fieldCodecCount = 4;

/** Human-readable codec name ("plain", "zigzag", "dict", "rle"). */
const char *fieldCodecName(FieldCodec codec);

/** Parse a name accepted by fieldCodecName(). @throws util::Error */
FieldCodec parseFieldCodecName(const std::string &name);

/** Map a signed delta onto the unsigned varint domain. */
inline uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode(). */
inline int64_t
zigzagDecode(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^
           -static_cast<int64_t>(v & 1);
}

/** Exact encoded byte size of @p values under @p codec. */
uint64_t encodedSize(std::span<const uint64_t> values,
                     FieldCodec codec);

/**
 * Floor every value onto the @p quantum grid in place (the quantized
 * fidelity tier's column transform; order-preserving). @p quantum
 * must be >= 1. @throws fcc::util::Error otherwise.
 */
void floorToGrid(std::span<uint64_t> values, uint64_t quantum);

/**
 * True when every value is a multiple of @p quantum — the read-side
 * twin of floorToGrid(), used to validate quantized-tier columns.
 * @throws fcc::util::Error when @p quantum is 0.
 */
bool isOnGrid(std::span<const uint64_t> values, uint64_t quantum);

/**
 * Smallest-output codec for @p values: sizes all four encodings and
 * returns the winner (lowest tag on ties). Deterministic.
 */
FieldCodec chooseCodec(std::span<const uint64_t> values);

/**
 * Encode @p values under @p codec.
 *
 * The dispatch selects between the scalar reference loops and the
 * SWAR batch paths (varint batches for plain/zigzag/dict); both emit
 * identical bytes — the wire format does not depend on the dispatch.
 */
std::vector<uint8_t> encodeColumn(std::span<const uint64_t> values,
                                  FieldCodec codec,
                                  util::Dispatch d =
                                      util::Dispatch::Auto);

/**
 * Decode exactly @p count values from @p data; the whole buffer must
 * be consumed. @throws fcc::util::Error on malformed input (trailing
 * bytes, out-of-range dictionary index, run overflow, ...). Scalar
 * and SWAR dispatches accept and reject exactly the same inputs.
 */
std::vector<uint64_t> decodeColumn(std::span<const uint8_t> data,
                                   FieldCodec codec, size_t count,
                                   util::Dispatch d =
                                       util::Dispatch::Auto);

} // namespace fcc::codec::field

#endif // FCC_CODEC_FIELD_FIELD_CODEC_HPP
