/**
 * @file
 * Peuhkuri-style lossy flow-based trace reduction (M. Peuhkuri, "A
 * method to compress and anonymize packet traces", IMW 2001), the
 * ~16 % baseline of the paper's §5.
 *
 * The method exploits the flow nature of traffic: each flow's
 * invariant 5-tuple is announced once when it enters a fixed-capacity
 * LRU flow cache; every packet then stores only a 2-byte slot
 * reference, the TCP flag byte, a time delta and the payload length —
 * ~7-8 bytes against the ~50-byte stored header, i.e. the ~16 % bound
 * the paper quotes.
 *
 * Lossy: TCP sequence/ack numbers, window and IP id are dropped and
 * resynthesized on decompression; timestamps, 5-tuples, flags and
 * sizes are exact (at microsecond resolution).
 */

#ifndef FCC_CODEC_PEUHKURI_PEUHKURI_HPP
#define FCC_CODEC_PEUHKURI_PEUHKURI_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "codec/compressor.hpp"

namespace fcc::codec::peuhkuri {

/** Slot value announcing a new flow definition. */
constexpr uint16_t newFlowMarker = 0xffff;

/** Default flow-cache capacity (concurrently tracked flows). */
constexpr uint32_t defaultCacheCapacity = 4096;

/** The Peuhkuri baseline compressor of Figure 1. */
class PeuhkuriTraceCompressor : public TraceCompressor
{
  public:
    /**
     * @param cacheCapacity LRU flow-cache slots (1..65535). Evicted
     *        flows are re-announced if they reappear.
     */
    explicit PeuhkuriTraceCompressor(
        uint32_t cacheCapacity = defaultCacheCapacity);

    std::string name() const override { return "peuhkuri"; }
    bool lossless() const override { return false; }

    std::vector<uint8_t>
    compress(const trace::Trace &trace) const override;

    trace::Trace
    decompress(std::span<const uint8_t> data) const override;

  private:
    uint32_t cacheCapacity_;
};

} // namespace fcc::codec::peuhkuri

#endif // FCC_CODEC_PEUHKURI_PEUHKURI_HPP
