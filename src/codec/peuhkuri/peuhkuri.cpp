/**
 * @file
 * Peuhkuri codec: flows enter a 16-bit LRU cache with a one-time
 * 5-tuple announcement; packets then carry slot, flags, varint
 * time delta and length. Evicted-and-returning flows are
 * re-announced.
 */

#include "codec/peuhkuri/peuhkuri.hpp"

#include "codec/peuhkuri/flow_cache.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace fcc::codec::peuhkuri {

namespace {

constexpr uint32_t magic = 0x32555050u;  // "PPU2"

/**
 * 64-bit flow identity for the cache. A hash collision would merge
 * two flows into one slot (mis-attributing their 5-tuple); with a
 * mixed 64-bit key the probability is negligible below billions of
 * flows, the same trade the original method's flow hashing makes.
 */
uint64_t
flowKeyHash(const trace::PacketRecord &pkt)
{
    uint64_t h = util::mix64(
        (static_cast<uint64_t>(pkt.srcIp) << 32) | pkt.dstIp);
    return util::hashCombine(
        h, (static_cast<uint64_t>(pkt.srcPort) << 24) |
               (static_cast<uint64_t>(pkt.dstPort) << 8) |
               pkt.protocol);
}

/** Decoder-side per-slot state. */
struct SlotState
{
    uint32_t srcIp = 0, dstIp = 0;
    uint16_t srcPort = 0, dstPort = 0;
    uint8_t protocol = 0;
    uint64_t lastUs = 0;
    uint32_t synthSeq = 0;
    uint16_t synthIpId = 0;
    bool live = false;
};

} // namespace

PeuhkuriTraceCompressor::PeuhkuriTraceCompressor(uint32_t cacheCapacity)
    : cacheCapacity_(cacheCapacity)
{
    util::require(cacheCapacity >= 1 && cacheCapacity < newFlowMarker,
                  "peuhkuri: cache capacity must be in [1, 65534]");
}

std::vector<uint8_t>
PeuhkuriTraceCompressor::compress(const trace::Trace &trace) const
{
    util::require(trace.isTimeOrdered(),
                  "peuhkuri: input trace must be time-ordered");
    util::ByteWriter w;
    w.u32(magic);
    w.varint(trace.size());
    w.varint(cacheCapacity_);

    FlowCache cache(cacheCapacity_);
    std::vector<uint64_t> lastUs(cacheCapacity_, 0);
    uint64_t prevNewFlowUs = 0;

    for (const auto &pkt : trace) {
        auto assign = cache.touch(flowKeyHash(pkt));
        uint64_t nowUs = pkt.timestampUs();

        if (assign.isNew) {
            w.u16(newFlowMarker);
            w.u16(assign.slot);
            w.u32(pkt.srcIp);
            w.u32(pkt.dstIp);
            w.u16(pkt.srcPort);
            w.u16(pkt.dstPort);
            w.u8(pkt.protocol);
            // New flows appear in time order, so their timestamps
            // delta-encode compactly.
            w.varint(nowUs - prevNewFlowUs);
            w.u8(pkt.tcpFlags);
            w.varint(pkt.payloadBytes);
            prevNewFlowUs = nowUs;
        } else {
            w.u16(assign.slot);
            w.u8(pkt.tcpFlags);
            w.varint(nowUs - lastUs[assign.slot]);
            w.varint(pkt.payloadBytes);
        }
        lastUs[assign.slot] = nowUs;
    }
    return w.take();
}

trace::Trace
PeuhkuriTraceCompressor::decompress(std::span<const uint8_t> data) const
{
    util::ByteReader r(data);
    util::require(r.remaining() >= 4 && r.u32() == magic,
                  "peuhkuri: bad magic");
    uint64_t count = r.varint();
    uint64_t capacity = r.varint();
    util::require(capacity >= 1 && capacity < newFlowMarker,
                  "peuhkuri: bad cache capacity");

    std::vector<SlotState> slots(capacity);
    uint64_t prevNewFlowUs = 0;
    trace::Trace out;

    for (uint64_t i = 0; i < count; ++i) {
        uint16_t ref = r.u16();
        trace::PacketRecord pkt;
        SlotState *slot;

        if (ref == newFlowMarker) {
            uint16_t idx = r.u16();
            util::require(idx < capacity,
                          "peuhkuri: slot out of range");
            slot = &slots[idx];
            // (Re)announce: overwrite whatever lived here before.
            slot->srcIp = r.u32();
            slot->dstIp = r.u32();
            slot->srcPort = r.u16();
            slot->dstPort = r.u16();
            slot->protocol = r.u8();
            slot->lastUs = prevNewFlowUs + r.varint();
            prevNewFlowUs = slot->lastUs;
            pkt.tcpFlags = r.u8();
            pkt.payloadBytes = static_cast<uint16_t>(r.varint());

            uint64_t seed = util::hashCombine(
                util::mix64((static_cast<uint64_t>(slot->srcIp)
                             << 32) |
                            slot->dstIp),
                slot->srcPort ^ (static_cast<uint64_t>(slot->dstPort)
                                 << 16));
            slot->synthSeq = static_cast<uint32_t>(seed);
            slot->synthIpId = static_cast<uint16_t>(seed >> 32);
            slot->live = true;
        } else {
            util::require(ref < capacity,
                          "peuhkuri: slot out of range");
            slot = &slots[ref];
            util::require(slot->live,
                          "peuhkuri: packet references empty slot");
            pkt.tcpFlags = r.u8();
            slot->lastUs += r.varint();
            pkt.payloadBytes = static_cast<uint16_t>(r.varint());
        }

        pkt.timestampNs = slot->lastUs * 1000ull;
        pkt.srcIp = slot->srcIp;
        pkt.dstIp = slot->dstIp;
        pkt.srcPort = slot->srcPort;
        pkt.dstPort = slot->dstPort;
        pkt.protocol = slot->protocol;
        pkt.seq = slot->synthSeq;
        pkt.ipId = slot->synthIpId;
        pkt.window = 0xffff;
        slot->synthSeq += pkt.payloadBytes;
        ++slot->synthIpId;
        out.add(pkt);
    }
    util::require(r.exhausted(), "peuhkuri: trailing bytes");
    return out;
}

} // namespace fcc::codec::peuhkuri
