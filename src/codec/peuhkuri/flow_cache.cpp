/**
 * @file
 * O(1) LRU slot cache: open-addressed key map plus an intrusive
 * doubly-linked recency list over the fixed slot array.
 */

#include "codec/peuhkuri/flow_cache.hpp"

#include "util/error.hpp"

namespace fcc::codec::peuhkuri {

FlowCache::FlowCache(uint32_t capacity)
    : capacity_(capacity), nodes_(capacity)
{
    util::require(capacity >= 1 && capacity <= 0x10000,
                  "FlowCache: capacity must be in [1, 65536]");
}

void
FlowCache::unlink(uint32_t slot)
{
    Node &node = nodes_[slot];
    if (node.prev != invalid)
        nodes_[node.prev].next = node.next;
    else
        head_ = node.next;
    if (node.next != invalid)
        nodes_[node.next].prev = node.prev;
    else
        tail_ = node.prev;
    node.prev = node.next = invalid;
}

void
FlowCache::pushFront(uint32_t slot)
{
    Node &node = nodes_[slot];
    node.prev = invalid;
    node.next = head_;
    if (head_ != invalid)
        nodes_[head_].prev = slot;
    head_ = slot;
    if (tail_ == invalid)
        tail_ = slot;
}

FlowCache::Assignment
FlowCache::touch(uint64_t key)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        uint32_t slot = it->second;
        if (head_ != slot) {
            unlink(slot);
            pushFront(slot);
        }
        return {static_cast<uint16_t>(slot), false};
    }

    uint32_t slot;
    if (nextFree_ < capacity_) {
        slot = nextFree_++;
    } else {
        // Recycle the least recently used slot.
        slot = tail_;
        FCC_ASSERT(slot != invalid, "LRU list empty at capacity");
        unlink(slot);
        map_.erase(nodes_[slot].key);
    }
    nodes_[slot].key = key;
    nodes_[slot].used = true;
    map_.emplace(key, slot);
    pushFront(slot);
    return {static_cast<uint16_t>(slot), true};
}

} // namespace fcc::codec::peuhkuri
