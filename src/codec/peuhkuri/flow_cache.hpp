/**
 * @file
 * Fixed-capacity LRU flow cache used by the Peuhkuri codec: flows are
 * assigned 16-bit slots; when the cache is full the least recently
 * used slot is recycled (its flow, if it reappears, is re-announced).
 * This bounds the per-packet flow reference to 2 bytes regardless of
 * trace length, as in the original method's flow table.
 */

#ifndef FCC_CODEC_PEUHKURI_FLOW_CACHE_HPP
#define FCC_CODEC_PEUHKURI_FLOW_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fcc::codec::peuhkuri {

/**
 * LRU mapping from an opaque 64-bit flow key to a slot in
 * [0, capacity). All operations are O(1); the LRU order is kept in an
 * intrusive doubly-linked list over the slot array.
 */
class FlowCache
{
  public:
    /** @param capacity number of slots; must be >= 1. */
    explicit FlowCache(uint32_t capacity);

    /** Result of a lookup-or-assign. */
    struct Assignment
    {
        uint16_t slot = 0;
        bool isNew = false;  ///< slot newly assigned (or recycled)
    };

    /**
     * Look up @p key, assigning (possibly recycling) a slot on miss,
     * and mark the slot most recently used.
     */
    Assignment touch(uint64_t key);

    /** Current number of live slots. */
    size_t size() const { return map_.size(); }
    uint32_t capacity() const { return capacity_; }

  private:
    void unlink(uint32_t slot);
    void pushFront(uint32_t slot);

    struct Node
    {
        uint64_t key = 0;
        uint32_t prev = invalid;
        uint32_t next = invalid;
        bool used = false;
    };

    static constexpr uint32_t invalid = 0xffffffffu;

    uint32_t capacity_;
    std::vector<Node> nodes_;
    std::unordered_map<uint64_t, uint32_t> map_;
    uint32_t head_ = invalid;  ///< most recently used
    uint32_t tail_ = invalid;  ///< least recently used
    uint32_t nextFree_ = 0;
};

} // namespace fcc::codec::peuhkuri

#endif // FCC_CODEC_PEUHKURI_FLOW_CACHE_HPP
