/**
 * @file
 * Entropy backends: the final byte-squeezing stage of the columnar
 * FCC3 container (codec/fcc/datasets). A backend is a pure
 * bytes-to-bytes transform applied to one field-codec-encoded column
 * at a time:
 *
 *  - Store:   identity — already-dense columns, and the fallback
 *             whenever a backend would expand a column;
 *  - Deflate: the built-in zlib container (codec/deflate);
 *  - Range:   adaptive order-0 range coder (range_coder.hpp) — no
 *             match finding, so it wins on short, high-entropy-byte
 *             columns where DEFLATE's headers and match machinery
 *             only add overhead;
 *  - RangeLanes: the same coder split into independent interleaved
 *             lanes (rangeCompressLanes) — trades a little ratio on
 *             large columns for markedly higher single-core coding
 *             speed. Opt-in: "range" columns keep tag 2.
 *
 * The one-byte tag stored next to each column makes every column
 * self-describing, so a single file can mix backends (the encoder
 * falls back to Store per column when the requested backend does
 * not pay).
 */

#ifndef FCC_CODEC_BACKEND_BACKEND_HPP
#define FCC_CODEC_BACKEND_BACKEND_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fcc::codec::backend {

/** Wire tag of a column's entropy stage (one byte per column). */
enum class EntropyBackend : uint8_t
{
    Store = 0,
    Deflate = 1,
    Range = 2,
    RangeLanes = 3,
};

/** Number of defined backends (tags are 0 .. count-1). */
constexpr uint8_t entropyBackendCount = 4;

/**
 * Human-readable backend name ("store", "deflate", "range",
 * "range-lanes").
 */
const char *backendName(EntropyBackend backend);

/** Parse a name accepted by backendName(). @throws util::Error */
EntropyBackend parseBackendName(const std::string &name);

/** Compress @p data under @p backend. */
std::vector<uint8_t> entropyCompress(std::span<const uint8_t> data,
                                     EntropyBackend backend);

/**
 * Decompress @p data back to exactly @p rawSize bytes.
 * @throws fcc::util::Error on malformed input or a size mismatch.
 */
std::vector<uint8_t> entropyDecompress(std::span<const uint8_t> data,
                                       EntropyBackend backend,
                                       size_t rawSize);

} // namespace fcc::codec::backend

#endif // FCC_CODEC_BACKEND_BACKEND_HPP
