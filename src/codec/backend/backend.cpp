/**
 * @file
 * Entropy-backend dispatch: store (identity), deflate (zlib
 * container from codec/deflate) and the adaptive range coder.
 */

#include "codec/backend/backend.hpp"

#include "codec/backend/range_coder.hpp"
#include "codec/deflate/deflate.hpp"
#include "util/error.hpp"

namespace fcc::codec::backend {

const char *
backendName(EntropyBackend backend)
{
    switch (backend) {
      case EntropyBackend::Store:
        return "store";
      case EntropyBackend::Deflate:
        return "deflate";
      case EntropyBackend::Range:
        return "range";
      case EntropyBackend::RangeLanes:
        return "range-lanes";
    }
    return "?";
}

EntropyBackend
parseBackendName(const std::string &name)
{
    for (uint8_t t = 0; t < entropyBackendCount; ++t)
        if (name == backendName(static_cast<EntropyBackend>(t)))
            return static_cast<EntropyBackend>(t);
    throw util::Error("unknown entropy backend: " + name);
}

std::vector<uint8_t>
entropyCompress(std::span<const uint8_t> data, EntropyBackend backend)
{
    switch (backend) {
      case EntropyBackend::Store:
        return {data.begin(), data.end()};
      case EntropyBackend::Deflate:
        return deflate::zlibCompress(data);
      case EntropyBackend::Range:
        return rangeCompress(data);
      case EntropyBackend::RangeLanes:
        return rangeCompressLanes(data);
    }
    throw util::Error("backend: bad backend tag");
}

std::vector<uint8_t>
entropyDecompress(std::span<const uint8_t> data,
                  EntropyBackend backend, size_t rawSize)
{
    std::vector<uint8_t> out;
    switch (backend) {
      case EntropyBackend::Store:
        out.assign(data.begin(), data.end());
        break;
      case EntropyBackend::Deflate:
        out = deflate::zlibDecompress(data);
        break;
      case EntropyBackend::Range:
        out = rangeDecompress(data, rawSize);
        break;
      case EntropyBackend::RangeLanes:
        out = rangeDecompressLanes(data, rawSize);
        break;
      default:
        throw util::Error("backend: bad backend tag");
    }
    util::require(out.size() == rawSize,
                  "backend: decompressed size mismatch");
    return out;
}

} // namespace fcc::codec::backend
