/**
 * @file
 * Witten–Neal–Cleary binary arithmetic coder with an adaptive
 * bit-tree byte model (see range_coder.hpp). Probabilities are
 * 12-bit (P(bit == 0) out of 4096) with shift-by-5 adaptation — the
 * LZMA rate, a good fit for the mid-size columns the FCC3 container
 * feeds through it.
 */

#include "codec/backend/range_coder.hpp"

#include "util/bitstream.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace fcc::codec::backend {

namespace {

constexpr uint32_t kTop = 0xffffffffu;
constexpr uint32_t kHalf = 0x80000000u;
constexpr uint32_t kQuarter = 0x40000000u;
constexpr uint32_t kThreeQuarters = 0xc0000000u;

constexpr int kProbBits = 12;
constexpr uint16_t kProbOne = 1u << kProbBits;
constexpr int kAdaptShift = 5;

/**
 * Bit-tree model: node i holds P(bit == 0) after the prefix whose
 * binary representation (with a leading 1) is i. 256 nodes cover
 * all 255 contexts of one byte.
 */
struct ByteModel
{
    uint16_t p[256];

    ByteModel()
    {
        for (uint16_t &v : p)
            v = kProbOne / 2;
    }
};

class Encoder
{
  public:
    void
    encodeBit(uint16_t &prob, int bit)
    {
        // Split [low, high] at the probability boundary; the zero
        // branch keeps the low interval.
        uint32_t mid =
            low_ + static_cast<uint32_t>(
                       (static_cast<uint64_t>(high_ - low_) * prob) >>
                       kProbBits);
        if (bit == 0) {
            high_ = mid;
            prob += (kProbOne - prob) >> kAdaptShift;
        } else {
            low_ = mid + 1;
            prob -= prob >> kAdaptShift;
        }
        for (;;) {
            if (high_ < kHalf) {
                emit(0);
            } else if (low_ >= kHalf) {
                emit(1);
                low_ -= kHalf;
                high_ -= kHalf;
            } else if (low_ >= kQuarter && high_ < kThreeQuarters) {
                ++pending_;
                low_ -= kQuarter;
                high_ -= kQuarter;
            } else {
                break;
            }
            low_ <<= 1;
            high_ = (high_ << 1) | 1;
        }
    }

    void
    encodeByte(ByteModel &model, uint8_t byte)
    {
        uint32_t ctx = 1;
        for (int i = 7; i >= 0; --i) {
            int bit = (byte >> i) & 1;
            encodeBit(model.p[ctx], bit);
            ctx = (ctx << 1) | static_cast<uint32_t>(bit);
        }
    }

    std::vector<uint8_t>
    finish()
    {
        // One disambiguating bit (plus pending underflow bits) pins
        // the final interval; the decoder zero-pads past the end.
        ++pending_;
        emit(low_ >= kQuarter ? 1 : 0);
        return bits_.take();
    }

  private:
    void
    emit(int bit)
    {
        bits_.put(static_cast<uint32_t>(bit), 1);
        for (; pending_ > 0; --pending_)
            bits_.put(static_cast<uint32_t>(bit ^ 1), 1);
    }

    util::BitWriter bits_;
    uint32_t low_ = 0;
    uint32_t high_ = kTop;
    uint64_t pending_ = 0;
};

class Decoder
{
  public:
    explicit Decoder(std::span<const uint8_t> data)
        : bits_(data), bitsLeft_(data.size() * 8)
    {
        for (int i = 0; i < 32; ++i)
            value_ = (value_ << 1) | nextBit();
    }

    int
    decodeBit(uint16_t &prob)
    {
        uint32_t mid =
            low_ + static_cast<uint32_t>(
                       (static_cast<uint64_t>(high_ - low_) * prob) >>
                       kProbBits);
        int bit;
        if (value_ <= mid) {
            bit = 0;
            high_ = mid;
            prob += (kProbOne - prob) >> kAdaptShift;
        } else {
            bit = 1;
            low_ = mid + 1;
            prob -= prob >> kAdaptShift;
        }
        for (;;) {
            if (high_ < kHalf) {
                // nothing to subtract
            } else if (low_ >= kHalf) {
                low_ -= kHalf;
                high_ -= kHalf;
                value_ -= kHalf;
            } else if (low_ >= kQuarter && high_ < kThreeQuarters) {
                low_ -= kQuarter;
                high_ -= kQuarter;
                value_ -= kQuarter;
            } else {
                break;
            }
            low_ <<= 1;
            high_ = (high_ << 1) | 1;
            value_ = (value_ << 1) | nextBit();
        }
        return bit;
    }

    uint8_t
    decodeByte(ByteModel &model)
    {
        uint32_t ctx = 1;
        for (int i = 0; i < 8; ++i)
            ctx = (ctx << 1) |
                  static_cast<uint32_t>(decodeBit(model.p[ctx]));
        return static_cast<uint8_t>(ctx & 0xff);
    }

  private:
    uint32_t
    nextBit()
    {
        // The encoder's flush leaves up to 32 conceptual zero bits
        // unwritten; reads past the physical end supply them.
        if (bitsLeft_ == 0)
            return 0;
        --bitsLeft_;
        uint32_t bit = bits_.peek(1);
        bits_.consume(1);
        return bit;
    }

    util::BitReader bits_;
    size_t bitsLeft_;
    uint32_t value_ = 0;
    uint32_t low_ = 0;
    uint32_t high_ = kTop;
};

/**
 * Inline-everything lane coder for the interleaved (Accel) paths.
 *
 * Same arithmetic as Encoder/Decoder above, but with the bit I/O
 * inlined (util::BitWriter/BitReader live in another TU, and an
 * out-of-line call per bit dwarfs the coding work). Bit order and
 * flush semantics match BitWriter exactly — LSB-first within each
 * byte, zero-padded final partial byte, reads past the physical end
 * supply zero bits — so the streams are byte-identical.
 */
struct LaneEncoder
{
    std::vector<uint8_t> buf;
    uint32_t bitbuf = 0;
    int nbits = 0;
    uint32_t low = 0;
    uint32_t high = kTop;
    uint64_t pending = 0;

    void
    putBit(uint32_t bit)
    {
        bitbuf |= bit << nbits;
        if (++nbits == 8) {
            buf.push_back(static_cast<uint8_t>(bitbuf));
            bitbuf = 0;
            nbits = 0;
        }
    }

    void
    emit(int bit)
    {
        putBit(static_cast<uint32_t>(bit));
        for (; pending > 0; --pending)
            putBit(static_cast<uint32_t>(bit ^ 1));
    }

    void
    encodeBit(uint16_t &prob, int bit)
    {
        uint32_t mid =
            low + static_cast<uint32_t>(
                      (static_cast<uint64_t>(high - low) * prob) >>
                      kProbBits);
        if (bit == 0) {
            high = mid;
            prob += (kProbOne - prob) >> kAdaptShift;
        } else {
            low = mid + 1;
            prob -= prob >> kAdaptShift;
        }
        for (;;) {
            if (high < kHalf) {
                emit(0);
            } else if (low >= kHalf) {
                emit(1);
                low -= kHalf;
                high -= kHalf;
            } else if (low >= kQuarter && high < kThreeQuarters) {
                ++pending;
                low -= kQuarter;
                high -= kQuarter;
            } else {
                break;
            }
            low <<= 1;
            high = (high << 1) | 1;
        }
    }

    void
    encodeByte(ByteModel &model, uint8_t byte)
    {
        uint32_t ctx = 1;
        for (int i = 7; i >= 0; --i) {
            int bit = (byte >> i) & 1;
            encodeBit(model.p[ctx], bit);
            ctx = (ctx << 1) | static_cast<uint32_t>(bit);
        }
    }

    std::vector<uint8_t>
    finish()
    {
        ++pending;
        emit(low >= kQuarter ? 1 : 0);
        if (nbits > 0)
            buf.push_back(static_cast<uint8_t>(bitbuf));
        return std::move(buf);
    }
};

struct LaneDecoder
{
    const uint8_t *data = nullptr;
    size_t len = 0;
    size_t pos = 0;
    uint32_t cur = 0;
    int nbits = 0;
    uint32_t value = 0;
    uint32_t low = 0;
    uint32_t high = kTop;

    explicit LaneDecoder(std::span<const uint8_t> stream)
        : data(stream.data()), len(stream.size())
    {
        for (int i = 0; i < 32; ++i)
            value = (value << 1) | nextBit();
    }

    uint32_t
    nextBit()
    {
        if (nbits == 0) {
            cur = pos < len ? data[pos++] : 0;
            nbits = 8;
        }
        uint32_t bit = cur & 1;
        cur >>= 1;
        --nbits;
        return bit;
    }

    int
    decodeBit(uint16_t &prob)
    {
        uint32_t mid =
            low + static_cast<uint32_t>(
                      (static_cast<uint64_t>(high - low) * prob) >>
                      kProbBits);
        int bit;
        if (value <= mid) {
            bit = 0;
            high = mid;
            prob += (kProbOne - prob) >> kAdaptShift;
        } else {
            bit = 1;
            low = mid + 1;
            prob -= prob >> kAdaptShift;
        }
        for (;;) {
            if (high < kHalf) {
                // nothing to subtract
            } else if (low >= kHalf) {
                low -= kHalf;
                high -= kHalf;
                value -= kHalf;
            } else if (low >= kQuarter && high < kThreeQuarters) {
                low -= kQuarter;
                high -= kQuarter;
                value -= kQuarter;
            } else {
                break;
            }
            low <<= 1;
            high = (high << 1) | 1;
            value = (value << 1) | nextBit();
        }
        return bit;
    }

    uint8_t
    decodeByte(ByteModel &model)
    {
        uint32_t ctx = 1;
        for (int i = 0; i < 8; ++i)
            ctx = (ctx << 1) |
                  static_cast<uint32_t>(decodeBit(model.p[ctx]));
        return static_cast<uint8_t>(ctx & 0xff);
    }
};

} // namespace

std::vector<uint8_t>
rangeCompress(std::span<const uint8_t> data)
{
    if (data.empty())
        return {};
    Encoder enc;
    ByteModel model;
    for (uint8_t byte : data)
        enc.encodeByte(model, byte);
    return enc.finish();
}

std::vector<uint8_t>
rangeDecompress(std::span<const uint8_t> data, size_t rawSize)
{
    std::vector<uint8_t> out;
    if (rawSize == 0) {
        util::require(data.empty(),
                      "range: trailing bytes after empty stream");
        return out;
    }
    out.reserve(rawSize);
    Decoder dec(data);
    ByteModel model;
    for (size_t i = 0; i < rawSize; ++i)
        out.push_back(dec.decodeByte(model));
    return out;
}

size_t
rangeLaneCount(size_t rawSize)
{
    // Below ~4 KiB the per-lane model restart costs more ratio than
    // the ILP is worth; above 1 MiB there is enough work to keep
    // eight chains busy. Thresholds are part of the encoder policy
    // only — the payload carries its lane count.
    if (rawSize < 4096)
        return 1;
    if (rawSize < (size_t{1} << 20))
        return 4;
    return rangeMaxLanes;
}

std::vector<uint8_t>
rangeCompressLanes(std::span<const uint8_t> data, util::Dispatch d)
{
    if (data.empty())
        return {};
    const size_t lanes = rangeLaneCount(data.size());
    const size_t q = data.size() / lanes;
    const size_t r = data.size() % lanes;
    size_t off[rangeMaxLanes + 1];
    off[0] = 0;
    for (size_t l = 0; l < lanes; ++l)
        off[l + 1] = off[l] + q + (l < r ? 1 : 0);

    std::vector<uint8_t> streams[rangeMaxLanes];
    if (!util::useAccel(d)) {
        for (size_t l = 0; l < lanes; ++l)
            streams[l] = rangeCompress(
                data.subspan(off[l], off[l + 1] - off[l]));
    } else {
        // Interleaved: the lanes advance one byte at a time, so their
        // (serially dependent) coding chains are adjacent independent
        // work for the out-of-order window. Per-lane state and bit
        // order are exactly those of the scalar coder — identical
        // streams. Lane l holds q + (l < r) bytes, so every lane is
        // active for i < q and the first r lanes carry one more.
        ByteModel models[rangeMaxLanes];
        LaneEncoder encs[rangeMaxLanes];
        for (size_t l = 0; l < lanes; ++l)
            encs[l].buf.reserve(off[l + 1] - off[l] + 16);
        for (size_t i = 0; i < q; ++i)
            for (size_t l = 0; l < lanes; ++l)
                encs[l].encodeByte(models[l], data[off[l] + i]);
        for (size_t l = 0; l < r; ++l)
            encs[l].encodeByte(models[l], data[off[l] + q]);
        for (size_t l = 0; l < lanes; ++l)
            streams[l] = encs[l].finish();
    }

    util::ByteWriter w;
    w.u8(static_cast<uint8_t>(lanes));
    for (size_t l = 0; l + 1 < lanes; ++l)
        w.varint(streams[l].size());
    for (size_t l = 0; l < lanes; ++l)
        w.bytes(streams[l]);
    return w.take();
}

std::vector<uint8_t>
rangeDecompressLanes(std::span<const uint8_t> data, size_t rawSize,
                     util::Dispatch d)
{
    std::vector<uint8_t> out;
    if (rawSize == 0) {
        util::require(data.empty(),
                      "range: trailing bytes after empty stream");
        return out;
    }
    util::ByteReader hdr(data);
    const size_t lanes = hdr.u8();
    util::require(lanes >= 1 && lanes <= rangeMaxLanes,
                  "range: bad lane count");
    size_t laneBytes[rangeMaxLanes] = {};
    for (size_t l = 0; l + 1 < lanes; ++l)
        laneBytes[l] = hdr.varint();

    size_t pos = hdr.position();
    std::span<const uint8_t> laneSpan[rangeMaxLanes];
    for (size_t l = 0; l + 1 < lanes; ++l) {
        util::require(laneBytes[l] <= data.size() - pos,
                      "range: truncated lane stream");
        laneSpan[l] = data.subspan(pos, laneBytes[l]);
        pos += laneBytes[l];
    }
    laneSpan[lanes - 1] = data.subspan(pos);

    const size_t q = rawSize / lanes;
    const size_t r = rawSize % lanes;
    size_t laneRaw[rangeMaxLanes];
    size_t rawOff[rangeMaxLanes + 1];
    rawOff[0] = 0;
    for (size_t l = 0; l < lanes; ++l) {
        laneRaw[l] = q + (l < r ? 1 : 0);
        rawOff[l + 1] = rawOff[l] + laneRaw[l];
        // An empty lane must carry an empty stream, in either
        // dispatch — the same rule rangeDecompress() enforces.
        if (laneRaw[l] == 0)
            util::require(
                laneSpan[l].empty(),
                "range: trailing bytes after empty stream");
    }

    if (!util::useAccel(d)) {
        out.reserve(rawSize);
        for (size_t l = 0; l < lanes; ++l) {
            std::vector<uint8_t> lane =
                rangeDecompress(laneSpan[l], laneRaw[l]);
            out.insert(out.end(), lane.begin(), lane.end());
        }
        return out;
    }

    // Interleaved mirror of the encoder above: one byte per lane per
    // round, all lanes active for i < q, first r lanes one more.
    out.resize(rawSize);
    std::vector<LaneDecoder> decs;
    decs.reserve(lanes);
    ByteModel models[rangeMaxLanes];
    for (size_t l = 0; l < lanes; ++l)
        decs.emplace_back(laneSpan[l]);
    for (size_t i = 0; i < q; ++i)
        for (size_t l = 0; l < lanes; ++l)
            out[rawOff[l] + i] = decs[l].decodeByte(models[l]);
    for (size_t l = 0; l < r; ++l)
        out[rawOff[l] + q] = decs[l].decodeByte(models[l]);
    return out;
}

} // namespace fcc::codec::backend
