/**
 * @file
 * Witten–Neal–Cleary binary arithmetic coder with an adaptive
 * bit-tree byte model (see range_coder.hpp). Probabilities are
 * 12-bit (P(bit == 0) out of 4096) with shift-by-5 adaptation — the
 * LZMA rate, a good fit for the mid-size columns the FCC3 container
 * feeds through it.
 */

#include "codec/backend/range_coder.hpp"

#include "util/bitstream.hpp"
#include "util/error.hpp"

namespace fcc::codec::backend {

namespace {

constexpr uint32_t kTop = 0xffffffffu;
constexpr uint32_t kHalf = 0x80000000u;
constexpr uint32_t kQuarter = 0x40000000u;
constexpr uint32_t kThreeQuarters = 0xc0000000u;

constexpr int kProbBits = 12;
constexpr uint16_t kProbOne = 1u << kProbBits;
constexpr int kAdaptShift = 5;

/**
 * Bit-tree model: node i holds P(bit == 0) after the prefix whose
 * binary representation (with a leading 1) is i. 256 nodes cover
 * all 255 contexts of one byte.
 */
struct ByteModel
{
    uint16_t p[256];

    ByteModel()
    {
        for (uint16_t &v : p)
            v = kProbOne / 2;
    }
};

class Encoder
{
  public:
    void
    encodeBit(uint16_t &prob, int bit)
    {
        // Split [low, high] at the probability boundary; the zero
        // branch keeps the low interval.
        uint32_t mid =
            low_ + static_cast<uint32_t>(
                       (static_cast<uint64_t>(high_ - low_) * prob) >>
                       kProbBits);
        if (bit == 0) {
            high_ = mid;
            prob += (kProbOne - prob) >> kAdaptShift;
        } else {
            low_ = mid + 1;
            prob -= prob >> kAdaptShift;
        }
        for (;;) {
            if (high_ < kHalf) {
                emit(0);
            } else if (low_ >= kHalf) {
                emit(1);
                low_ -= kHalf;
                high_ -= kHalf;
            } else if (low_ >= kQuarter && high_ < kThreeQuarters) {
                ++pending_;
                low_ -= kQuarter;
                high_ -= kQuarter;
            } else {
                break;
            }
            low_ <<= 1;
            high_ = (high_ << 1) | 1;
        }
    }

    void
    encodeByte(ByteModel &model, uint8_t byte)
    {
        uint32_t ctx = 1;
        for (int i = 7; i >= 0; --i) {
            int bit = (byte >> i) & 1;
            encodeBit(model.p[ctx], bit);
            ctx = (ctx << 1) | static_cast<uint32_t>(bit);
        }
    }

    std::vector<uint8_t>
    finish()
    {
        // One disambiguating bit (plus pending underflow bits) pins
        // the final interval; the decoder zero-pads past the end.
        ++pending_;
        emit(low_ >= kQuarter ? 1 : 0);
        return bits_.take();
    }

  private:
    void
    emit(int bit)
    {
        bits_.put(static_cast<uint32_t>(bit), 1);
        for (; pending_ > 0; --pending_)
            bits_.put(static_cast<uint32_t>(bit ^ 1), 1);
    }

    util::BitWriter bits_;
    uint32_t low_ = 0;
    uint32_t high_ = kTop;
    uint64_t pending_ = 0;
};

class Decoder
{
  public:
    explicit Decoder(std::span<const uint8_t> data)
        : bits_(data), bitsLeft_(data.size() * 8)
    {
        for (int i = 0; i < 32; ++i)
            value_ = (value_ << 1) | nextBit();
    }

    int
    decodeBit(uint16_t &prob)
    {
        uint32_t mid =
            low_ + static_cast<uint32_t>(
                       (static_cast<uint64_t>(high_ - low_) * prob) >>
                       kProbBits);
        int bit;
        if (value_ <= mid) {
            bit = 0;
            high_ = mid;
            prob += (kProbOne - prob) >> kAdaptShift;
        } else {
            bit = 1;
            low_ = mid + 1;
            prob -= prob >> kAdaptShift;
        }
        for (;;) {
            if (high_ < kHalf) {
                // nothing to subtract
            } else if (low_ >= kHalf) {
                low_ -= kHalf;
                high_ -= kHalf;
                value_ -= kHalf;
            } else if (low_ >= kQuarter && high_ < kThreeQuarters) {
                low_ -= kQuarter;
                high_ -= kQuarter;
                value_ -= kQuarter;
            } else {
                break;
            }
            low_ <<= 1;
            high_ = (high_ << 1) | 1;
            value_ = (value_ << 1) | nextBit();
        }
        return bit;
    }

    uint8_t
    decodeByte(ByteModel &model)
    {
        uint32_t ctx = 1;
        for (int i = 0; i < 8; ++i)
            ctx = (ctx << 1) |
                  static_cast<uint32_t>(decodeBit(model.p[ctx]));
        return static_cast<uint8_t>(ctx & 0xff);
    }

  private:
    uint32_t
    nextBit()
    {
        // The encoder's flush leaves up to 32 conceptual zero bits
        // unwritten; reads past the physical end supply them.
        if (bitsLeft_ == 0)
            return 0;
        --bitsLeft_;
        uint32_t bit = bits_.peek(1);
        bits_.consume(1);
        return bit;
    }

    util::BitReader bits_;
    size_t bitsLeft_;
    uint32_t value_ = 0;
    uint32_t low_ = 0;
    uint32_t high_ = kTop;
};

} // namespace

std::vector<uint8_t>
rangeCompress(std::span<const uint8_t> data)
{
    if (data.empty())
        return {};
    Encoder enc;
    ByteModel model;
    for (uint8_t byte : data)
        enc.encodeByte(model, byte);
    return enc.finish();
}

std::vector<uint8_t>
rangeDecompress(std::span<const uint8_t> data, size_t rawSize)
{
    std::vector<uint8_t> out;
    if (rawSize == 0) {
        util::require(data.empty(),
                      "range: trailing bytes after empty stream");
        return out;
    }
    out.reserve(rawSize);
    Decoder dec(data);
    ByteModel model;
    for (size_t i = 0; i < rawSize; ++i)
        out.push_back(dec.decodeByte(model));
    return out;
}

} // namespace fcc::codec::backend
