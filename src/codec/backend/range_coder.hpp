/**
 * @file
 * Adaptive order-0 binary range coder over util/bitstream.
 *
 * The classic Witten–Neal–Cleary arithmetic coder with 32-bit
 * low/high registers and E3 underflow counting, driven by a bit-tree
 * byte model: each byte is coded as 8 binary decisions whose context
 * is the byte's already-coded prefix bits (255 adaptive
 * probabilities), so the model learns the column's byte distribution
 * as it streams — no table is transmitted. This is the third entropy
 * backend of the columnar FCC3 container (codec/backend), squeezing
 * varint-dense columns that DEFLATE's 3-byte minimum match cannot
 * touch.
 *
 * The coder is fully deterministic: the same input always produces
 * the same bits, independent of threads or platform.
 */

#ifndef FCC_CODEC_BACKEND_RANGE_CODER_HPP
#define FCC_CODEC_BACKEND_RANGE_CODER_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "util/simd.hpp"

namespace fcc::codec::backend {

/** Compress @p data with the adaptive order-0 range coder. */
std::vector<uint8_t> rangeCompress(std::span<const uint8_t> data);

/**
 * Decompress a rangeCompress() stream of exactly @p rawSize bytes.
 * @throws fcc::util::Error on a truncated stream.
 */
std::vector<uint8_t> rangeDecompress(std::span<const uint8_t> data,
                                     size_t rawSize);

/** Upper bound on the lane count of a "range-lanes" payload. */
constexpr uint8_t rangeMaxLanes = 8;

/**
 * Deterministic lane count for a block of @p rawSize bytes: derived
 * from the size alone (never thread count or dispatch), so the wire
 * bytes are reproducible everywhere. Small blocks stay single-lane —
 * splitting them would cost ratio without buying ILP.
 */
size_t rangeLaneCount(size_t rawSize);

/**
 * Compress @p data as independent range-coded lanes (the
 * "range-lanes" entropy backend, tag 3).
 *
 * The block is split into rangeLaneCount() contiguous, near-equal
 * slices; each lane runs its own adaptive model and coder, so a
 * single core can keep several dependency chains in flight. Payload:
 * one lane-count byte, varint byte lengths of all lanes but the
 * last, then the concatenated lane streams.
 *
 * Dispatch selects interleaved (Accel) vs lane-at-a-time (Scalar)
 * execution; both produce identical bytes.
 */
std::vector<uint8_t> rangeCompressLanes(std::span<const uint8_t> data,
                                        util::Dispatch d =
                                            util::Dispatch::Auto);

/**
 * Decompress a rangeCompressLanes() payload of exactly @p rawSize
 * bytes. Accepts any lane count 1..rangeMaxLanes, so blocks written
 * with a different lane policy still decode.
 * @throws fcc::util::Error on a malformed header or truncated lane.
 */
std::vector<uint8_t>
rangeDecompressLanes(std::span<const uint8_t> data, size_t rawSize,
                     util::Dispatch d = util::Dispatch::Auto);

} // namespace fcc::codec::backend

#endif // FCC_CODEC_BACKEND_RANGE_CODER_HPP
