/**
 * @file
 * Adaptive order-0 binary range coder over util/bitstream.
 *
 * The classic Witten–Neal–Cleary arithmetic coder with 32-bit
 * low/high registers and E3 underflow counting, driven by a bit-tree
 * byte model: each byte is coded as 8 binary decisions whose context
 * is the byte's already-coded prefix bits (255 adaptive
 * probabilities), so the model learns the column's byte distribution
 * as it streams — no table is transmitted. This is the third entropy
 * backend of the columnar FCC3 container (codec/backend), squeezing
 * varint-dense columns that DEFLATE's 3-byte minimum match cannot
 * touch.
 *
 * The coder is fully deterministic: the same input always produces
 * the same bits, independent of threads or platform.
 */

#ifndef FCC_CODEC_BACKEND_RANGE_CODER_HPP
#define FCC_CODEC_BACKEND_RANGE_CODER_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace fcc::codec::backend {

/** Compress @p data with the adaptive order-0 range coder. */
std::vector<uint8_t> rangeCompress(std::span<const uint8_t> data);

/**
 * Decompress a rangeCompress() stream of exactly @p rawSize bytes.
 * @throws fcc::util::Error on a truncated stream.
 */
std::vector<uint8_t> rangeDecompress(std::span<const uint8_t> data,
                                     size_t rawSize);

} // namespace fcc::codec::backend

#endif // FCC_CODEC_BACKEND_RANGE_CODER_HPP
