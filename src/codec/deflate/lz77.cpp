/**
 * @file
 * Hash-chain LZ77 matcher: 3-byte hash heads, chain walking with a
 * depth budget, and zlib-style one-step lazy matching over the
 * 32 KiB window.
 */

#include "codec/deflate/lz77.hpp"

#include <algorithm>

namespace fcc::codec::deflate {

namespace {

constexpr uint32_t hashBits = 15;
constexpr uint32_t hashSize = 1u << hashBits;

/** Hash of the 3 bytes at @p p. */
inline uint32_t
hash3(const uint8_t *p)
{
    uint32_t v = static_cast<uint32_t>(p[0]) |
                 static_cast<uint32_t>(p[1]) << 8 |
                 static_cast<uint32_t>(p[2]) << 16;
    return (v * 2654435761u) >> (32 - hashBits);
}

/** Longest common prefix length of a and b, up to limit. */
inline size_t
matchLength(const uint8_t *a, const uint8_t *b, size_t limit)
{
    size_t len = 0;
    while (len < limit && a[len] == b[len])
        ++len;
    return len;
}

/** Hash-chain index over input positions. */
class Chains
{
  public:
    explicit Chains(size_t size)
        : head_(hashSize, empty), prev_(size, empty)
    {}

    void
    insert(const uint8_t *base, size_t pos)
    {
        uint32_t h = hash3(base + pos);
        prev_[pos] = head_[h];
        head_[h] = static_cast<int64_t>(pos);
    }

    /**
     * Best match for @p pos. Returns length (0 when below minMatch)
     * and sets @p distOut.
     */
    size_t
    bestMatch(const uint8_t *base, size_t pos, size_t avail,
              const Lz77Config &cfg, uint16_t &distOut) const
    {
        size_t limit = std::min(avail, maxMatch);
        if (limit < minMatch)
            return 0;

        size_t bestLen = 0;
        uint16_t bestDist = 0;
        uint32_t chain = cfg.maxChainLength;
        int64_t candidate = head_[hash3(base + pos)];
        while (candidate >= 0 && chain-- > 0) {
            size_t cpos = static_cast<size_t>(candidate);
            if (pos - cpos > windowSize)
                break;
            // Quick reject: last byte of the best match so far.
            if (bestLen == 0 ||
                base[cpos + bestLen] == base[pos + bestLen]) {
                size_t len = matchLength(base + cpos, base + pos,
                                         limit);
                if (len > bestLen) {
                    bestLen = len;
                    bestDist = static_cast<uint16_t>(pos - cpos);
                    if (len >= cfg.goodEnoughLength || len == limit)
                        break;
                }
            }
            candidate = prev_[cpos];
        }
        if (bestLen < minMatch)
            return 0;
        distOut = bestDist;
        return bestLen;
    }

  private:
    static constexpr int64_t empty = -1;
    std::vector<int64_t> head_;
    std::vector<int64_t> prev_;
};

} // namespace

std::vector<Lz77Token>
lz77Tokenize(std::span<const uint8_t> data, const Lz77Config &cfg)
{
    std::vector<Lz77Token> tokens;
    size_t n = data.size();
    if (n == 0)
        return tokens;
    tokens.reserve(n / 4);

    const uint8_t *base = data.data();
    Chains chains(n);

    size_t pos = 0;
    while (pos < n) {
        if (n - pos < minMatch) {
            tokens.push_back(Lz77Token::literal(base[pos]));
            ++pos;
            continue;
        }

        uint16_t dist = 0;
        size_t len = chains.bestMatch(base, pos, n - pos, cfg, dist);

        // One-step lazy evaluation: prefer a strictly longer match
        // starting at the next byte.
        if (cfg.lazy && len >= minMatch && len < cfg.goodEnoughLength &&
            n - pos > len) {
            chains.insert(base, pos);
            uint16_t nextDist = 0;
            size_t nextLen =
                n - (pos + 1) >= minMatch
                    ? chains.bestMatch(base, pos + 1, n - pos - 1,
                                       cfg, nextDist)
                    : 0;
            if (nextLen > len) {
                tokens.push_back(Lz77Token::literal(base[pos]));
                ++pos;
                continue;  // re-evaluate from pos (already indexed)
            }
            // Keep the current match; pos was indexed above.
            tokens.push_back(Lz77Token::match(
                static_cast<uint16_t>(len), dist));
            for (size_t k = 1; k < len && pos + k + minMatch <= n; ++k)
                chains.insert(base, pos + k);
            pos += len;
            continue;
        }

        if (len >= minMatch) {
            tokens.push_back(Lz77Token::match(
                static_cast<uint16_t>(len), dist));
            for (size_t k = 0; k < len && pos + k + minMatch <= n; ++k)
                chains.insert(base, pos + k);
            pos += len;
        } else {
            tokens.push_back(Lz77Token::literal(base[pos]));
            if (pos + minMatch <= n)
                chains.insert(base, pos);
            ++pos;
        }
    }
    return tokens;
}

} // namespace fcc::codec::deflate
