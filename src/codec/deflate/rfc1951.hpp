/**
 * @file
 * Shared RFC 1951 constants: length/distance code base values and
 * extra-bit widths, the code-length-code transmission order, and the
 * fixed Huffman code lengths. Used by the encoder (deflate.cpp) and
 * the resumable decoder (inflate_stream.cpp).
 */

#ifndef FCC_CODEC_DEFLATE_RFC1951_HPP
#define FCC_CODEC_DEFLATE_RFC1951_HPP

#include <cstdint>
#include <vector>

namespace fcc::codec::deflate {

inline constexpr int numLitCodes = 286;   // 0..285
inline constexpr int numDistCodes = 30;   // 0..29
inline constexpr int endOfBlock = 256;

inline constexpr uint16_t lengthBase[29] = {
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
    35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258,
};
inline constexpr uint8_t lengthExtra[29] = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
    3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
};

inline constexpr uint16_t distBase[30] = {
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
    257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145, 8193,
    12289, 16385, 24577,
};
inline constexpr uint8_t distExtra[30] = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
    7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13,
};

/** Order in which code-length-code lengths are transmitted. */
inline constexpr uint8_t clcOrder[19] = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
};

/** Fixed literal/length code lengths (RFC 1951 §3.2.6). */
inline std::vector<uint8_t>
fixedLitLengths()
{
    std::vector<uint8_t> lens(288);
    for (int i = 0; i <= 143; ++i)
        lens[i] = 8;
    for (int i = 144; i <= 255; ++i)
        lens[i] = 9;
    for (int i = 256; i <= 279; ++i)
        lens[i] = 7;
    for (int i = 280; i <= 287; ++i)
        lens[i] = 8;
    return lens;
}

inline std::vector<uint8_t>
fixedDistLengths()
{
    return std::vector<uint8_t>(32, 5);
}

} // namespace fcc::codec::deflate

#endif // FCC_CODEC_DEFLATE_RFC1951_HPP
