/**
 * @file
 * DEFLATE (RFC 1951) encoder and decoder, plus the zlib (RFC 1950)
 * and gzip (RFC 1952) containers, implemented from scratch.
 *
 * The encoder emits stored, fixed-Huffman or dynamic-Huffman blocks,
 * whichever is cheapest per block; the decoder accepts any conforming
 * stream (it is cross-validated against system zlib in the test
 * suite). This is the paper's GZIP baseline (§5, ~50 % ratio).
 */

#ifndef FCC_CODEC_DEFLATE_DEFLATE_HPP
#define FCC_CODEC_DEFLATE_DEFLATE_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "codec/compressor.hpp"
#include "codec/deflate/lz77.hpp"

namespace fcc::codec::deflate {

/** Compress @p data into a raw DEFLATE stream. */
std::vector<uint8_t>
deflateCompress(std::span<const uint8_t> data, const Lz77Config &cfg = {});

/**
 * Decompress a raw DEFLATE stream.
 * @throws fcc::util::Error on any malformed construct.
 */
std::vector<uint8_t> inflate(std::span<const uint8_t> data);

/** Wrap deflate in the 2-byte-header + Adler-32 zlib format. */
std::vector<uint8_t>
zlibCompress(std::span<const uint8_t> data, const Lz77Config &cfg = {});

/** Unwrap a zlib stream, verifying the Adler-32 checksum. */
std::vector<uint8_t> zlibDecompress(std::span<const uint8_t> data);

/** Wrap deflate in the gzip member format (CRC-32 + length trailer). */
std::vector<uint8_t>
gzipCompress(std::span<const uint8_t> data, const Lz77Config &cfg = {});

/**
 * Unwrap a gzip member, verifying CRC-32 and length. Optional header
 * fields (FEXTRA / FNAME / FCOMMENT / FHCRC) are skipped.
 */
std::vector<uint8_t> gzipDecompress(std::span<const uint8_t> data);

/**
 * The GZIP baseline of the paper's Figure 1: serialize the trace as
 * TSH and gzip it. Lossless.
 */
class GzipTraceCompressor : public TraceCompressor
{
  public:
    std::string name() const override { return "gzip"; }
    bool lossless() const override { return true; }

    std::vector<uint8_t>
    compress(const trace::Trace &trace) const override;

    trace::Trace
    decompress(std::span<const uint8_t> data) const override;
};

} // namespace fcc::codec::deflate

#endif // FCC_CODEC_DEFLATE_DEFLATE_HPP
