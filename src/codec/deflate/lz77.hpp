/**
 * @file
 * LZ77 string matching for DEFLATE: a hash-chain matcher over a 32 KiB
 * sliding window producing literal / (length, distance) tokens, with
 * one-step lazy matching as in zlib.
 */

#ifndef FCC_CODEC_DEFLATE_LZ77_HPP
#define FCC_CODEC_DEFLATE_LZ77_HPP

#include <cstdint>
#include <span>
#include <vector>

namespace fcc::codec::deflate {

/** DEFLATE matching limits (RFC 1951). */
constexpr size_t windowSize = 32768;
constexpr size_t minMatch = 3;
constexpr size_t maxMatch = 258;

/**
 * One LZ77 token: a literal byte (distance == 0) or a back-reference
 * of @c length bytes at @c distance.
 */
struct Lz77Token
{
    uint16_t length = 0;    ///< literal value when distance == 0
    uint16_t distance = 0;  ///< 0 for literals, else 1..32768

    bool isLiteral() const { return distance == 0; }

    static Lz77Token
    literal(uint8_t byte)
    {
        return {byte, 0};
    }

    static Lz77Token
    match(uint16_t length, uint16_t distance)
    {
        return {length, distance};
    }
};

/** Effort/ratio trade-off of the matcher. */
struct Lz77Config
{
    /** Max hash-chain entries probed per position. */
    uint32_t maxChainLength = 128;
    /** Stop probing once a match at least this long is found. */
    uint16_t goodEnoughLength = 64;
    /** Enable one-step lazy matching. */
    bool lazy = true;
};

/**
 * Tokenize @p data. Concatenating the tokens (literals plus window
 * copies) reproduces @p data exactly; every distance respects the
 * 32 KiB window.
 */
std::vector<Lz77Token>
lz77Tokenize(std::span<const uint8_t> data, const Lz77Config &cfg = {});

} // namespace fcc::codec::deflate

#endif // FCC_CODEC_DEFLATE_LZ77_HPP
