/**
 * @file
 * Package-merge (coin collector) construction of length-limited
 * optimal code lengths, canonical code assignment, and the
 * count-based canonical decoder used by the inflater.
 */

#include "codec/deflate/huffman.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace fcc::codec::deflate {

namespace {

/** One package-merge item: a weight plus the leaves it contains. */
struct Package
{
    uint64_t weight = 0;
    std::vector<uint16_t> leaves;
};

bool
packageLess(const Package &a, const Package &b)
{
    return a.weight < b.weight;
}

} // namespace

std::vector<uint8_t>
buildCodeLengths(std::span<const uint64_t> freqs, int maxBits)
{
    util::require(maxBits >= 1 && maxBits <= 15,
                  "buildCodeLengths: maxBits out of range");

    std::vector<uint16_t> used;
    for (uint16_t sym = 0; sym < freqs.size(); ++sym)
        if (freqs[sym] > 0)
            used.push_back(sym);

    std::vector<uint8_t> lengths(freqs.size(), 0);
    if (used.empty())
        return lengths;
    if (used.size() == 1) {
        lengths[used[0]] = 1;
        return lengths;
    }
    util::require(used.size() <= (1ull << maxBits),
                  "buildCodeLengths: too many symbols for maxBits");

    // Package-merge: build per-level lists; leaves at every level,
    // plus pairs packaged from the level below. Selecting the
    // 2*(n-1) cheapest items of the top list yields, per leaf, its
    // optimal depth count = code length.
    std::vector<Package> leafItems;
    leafItems.reserve(used.size());
    for (uint16_t sym : used)
        leafItems.push_back(Package{freqs[sym], {sym}});
    std::sort(leafItems.begin(), leafItems.end(), packageLess);

    std::vector<Package> below;  // list for the previous level
    for (int level = 0; level < maxBits; ++level) {
        std::vector<Package> merged;
        merged.reserve(leafItems.size() + below.size() / 2);
        // Package pairs from the level below.
        std::vector<Package> pairs;
        for (size_t i = 0; i + 1 < below.size(); i += 2) {
            Package pkg;
            pkg.weight = below[i].weight + below[i + 1].weight;
            pkg.leaves = below[i].leaves;
            pkg.leaves.insert(pkg.leaves.end(),
                              below[i + 1].leaves.begin(),
                              below[i + 1].leaves.end());
            pairs.push_back(std::move(pkg));
        }
        std::merge(leafItems.begin(), leafItems.end(),
                   std::make_move_iterator(pairs.begin()),
                   std::make_move_iterator(pairs.end()),
                   std::back_inserter(merged), packageLess);
        below = std::move(merged);
    }

    size_t take = 2 * (used.size() - 1);
    FCC_ASSERT(below.size() >= take,
               "package-merge produced too few items");
    for (size_t i = 0; i < take; ++i)
        for (uint16_t sym : below[i].leaves)
            ++lengths[sym];

    return lengths;
}

std::vector<uint16_t>
canonicalCodes(std::span<const uint8_t> lengths)
{
    int maxLen = 0;
    for (uint8_t len : lengths)
        maxLen = std::max(maxLen, static_cast<int>(len));
    util::require(maxLen <= 15, "canonicalCodes: length > 15");

    std::vector<uint32_t> countPerLen(maxLen + 1, 0);
    for (uint8_t len : lengths)
        if (len > 0)
            ++countPerLen[len];

    std::vector<uint32_t> nextCode(maxLen + 1, 0);
    uint32_t code = 0;
    for (int len = 1; len <= maxLen; ++len) {
        code = (code + countPerLen[len - 1]) << 1;
        nextCode[len] = code;
    }

    std::vector<uint16_t> codes(lengths.size(), 0);
    for (size_t sym = 0; sym < lengths.size(); ++sym) {
        if (lengths[sym] > 0)
            codes[sym] =
                static_cast<uint16_t>(nextCode[lengths[sym]]++);
    }
    return codes;
}

HuffmanDecoder::HuffmanDecoder(std::span<const uint8_t> lengths,
                               bool allowIncomplete)
{
    for (uint8_t len : lengths) {
        util::require(len <= maxBitsSupported,
                      "HuffmanDecoder: code length > 15");
        ++counts_[len];
    }
    counts_[0] = 0;

    // Kraft check: left = remaining code space after each length.
    int64_t left = 1;
    for (int len = 1; len <= maxBitsSupported; ++len) {
        left <<= 1;
        left -= counts_[len];
        util::require(left >= 0,
                      "HuffmanDecoder: over-subscribed code");
    }
    size_t usedCount = 0;
    for (int len = 1; len <= maxBitsSupported; ++len)
        usedCount += counts_[len];
    if (left > 0 && !(allowIncomplete || usedCount <= 1))
        throw util::Error("HuffmanDecoder: incomplete code");

    // Canonical symbol table: offset per length, then fill.
    uint16_t offsets[maxBitsSupported + 2] = {};
    for (int len = 1; len <= maxBitsSupported; ++len)
        offsets[len + 1] =
            static_cast<uint16_t>(offsets[len] + counts_[len]);
    symbols_.resize(usedCount);
    for (size_t sym = 0; sym < lengths.size(); ++sym)
        if (lengths[sym] > 0)
            symbols_[offsets[lengths[sym]]++] =
                static_cast<uint16_t>(sym);
}

int
HuffmanDecoder::decode(util::BitReader &bits) const
{
    // Bit-serial canonical decode (puff algorithm).
    int code = 0, first = 0, index = 0;
    for (int len = 1; len <= maxBitsSupported; ++len) {
        code |= static_cast<int>(bits.get(1));
        int count = counts_[len];
        if (code - first < count)
            return symbols_[index + (code - first)];
        index += count;
        first = (first + count) << 1;
        code <<= 1;
    }
    throw util::Error("HuffmanDecoder: invalid code in stream");
}

} // namespace fcc::codec::deflate
