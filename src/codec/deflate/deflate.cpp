/**
 * @file
 * DEFLATE encoder/decoder: per-block choice among stored, fixed-
 * and dynamic-Huffman encodings (including the RFC 1951 code-
 * length-code machinery), plus the zlib and gzip containers with
 * Adler-32 / CRC-32 trailers.
 */

#include "codec/deflate/deflate.hpp"

#include <algorithm>
#include <array>

#include "codec/deflate/huffman.hpp"
#include "codec/deflate/inflate_stream.hpp"
#include "codec/deflate/rfc1951.hpp"
#include "trace/tsh.hpp"
#include "util/bitstream.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

namespace fcc::codec::deflate {

namespace {

/** Map a match length (3..258) to its length code index (0..28). */
int
lengthCodeIndex(uint16_t len)
{
    FCC_ASSERT(len >= minMatch && len <= maxMatch,
               "match length out of range");
    int lo = 0;
    for (int i = 28; i >= 0; --i) {
        if (len >= lengthBase[i]) {
            lo = i;
            break;
        }
    }
    return lo;
}

/** Map a distance (1..32768) to its distance code (0..29). */
int
distCodeIndex(uint16_t dist)
{
    FCC_ASSERT(dist >= 1, "distance out of range");
    int lo = 0;
    for (int i = 29; i >= 0; --i) {
        if (dist >= distBase[i]) {
            lo = i;
            break;
        }
    }
    return lo;
}

// ---- encoder --------------------------------------------------------

/** Code-length sequence RLE item (RFC 1951 §3.2.7). */
struct ClcItem
{
    uint8_t symbol;   // 0..18
    uint8_t extra;    // repeat count payload
    uint8_t extraBits;
};

/** RLE-encode the concatenated lit+dist code-length sequence. */
std::vector<ClcItem>
rleCodeLengths(std::span<const uint8_t> lens)
{
    std::vector<ClcItem> items;
    size_t i = 0;
    while (i < lens.size()) {
        uint8_t value = lens[i];
        size_t run = 1;
        while (i + run < lens.size() && lens[i + run] == value)
            ++run;
        if (value == 0) {
            size_t left = run;
            while (left >= 11) {
                size_t take = std::min<size_t>(left, 138);
                items.push_back({18,
                                 static_cast<uint8_t>(take - 11), 7});
                left -= take;
            }
            if (left >= 3) {
                items.push_back({17,
                                 static_cast<uint8_t>(left - 3), 3});
                left = 0;
            }
            for (; left > 0; --left)
                items.push_back({0, 0, 0});
        } else {
            items.push_back({value, 0, 0});
            size_t left = run - 1;
            while (left >= 3) {
                size_t take = std::min<size_t>(left, 6);
                items.push_back({16,
                                 static_cast<uint8_t>(take - 3), 2});
                left -= take;
            }
            for (; left > 0; --left)
                items.push_back({value, 0, 0});
        }
        i += run;
    }
    return items;
}

/** Everything needed to emit one block under a code pair. */
struct BlockCodes
{
    std::vector<uint8_t> litLens, distLens;
    std::vector<uint16_t> litCodes, distCodes;
};

/** Bit cost of the token payload under the given lengths. */
uint64_t
payloadCost(std::span<const uint64_t> litFreq,
            std::span<const uint64_t> distFreq,
            std::span<const uint8_t> litLens,
            std::span<const uint8_t> distLens)
{
    uint64_t bits = 0;
    for (int sym = 0; sym < numLitCodes; ++sym) {
        bits += litFreq[sym] * litLens[sym];
        if (sym >= 257)
            bits += litFreq[sym] * lengthExtra[sym - 257];
    }
    for (int sym = 0; sym < numDistCodes; ++sym)
        bits += distFreq[sym] * (distLens[sym] + distExtra[sym]);
    return bits;
}

/** Emit the token payload plus end-of-block. */
void
emitTokens(util::BitWriter &out,
           std::span<const Lz77Token> tokens,
           const BlockCodes &codes)
{
    for (const auto &tok : tokens) {
        if (tok.isLiteral()) {
            out.putHuff(codes.litCodes[tok.length],
                        codes.litLens[tok.length]);
        } else {
            int li = lengthCodeIndex(tok.length);
            int sym = 257 + li;
            out.putHuff(codes.litCodes[sym], codes.litLens[sym]);
            out.put(tok.length - lengthBase[li], lengthExtra[li]);
            int di = distCodeIndex(tok.distance);
            out.putHuff(codes.distCodes[di], codes.distLens[di]);
            out.put(tok.distance - distBase[di], distExtra[di]);
        }
    }
    out.putHuff(codes.litCodes[endOfBlock],
                codes.litLens[endOfBlock]);
}

/** One encoder block: tokens plus the raw bytes they cover. */
void
emitBlock(util::BitWriter &out, std::span<const Lz77Token> tokens,
          std::span<const uint8_t> raw, bool final)
{
    // Token frequencies (end-of-block included once).
    std::vector<uint64_t> litFreq(numLitCodes, 0);
    std::vector<uint64_t> distFreq(numDistCodes, 0);
    litFreq[endOfBlock] = 1;
    for (const auto &tok : tokens) {
        if (tok.isLiteral()) {
            ++litFreq[tok.length];
        } else {
            ++litFreq[257 + lengthCodeIndex(tok.length)];
            ++distFreq[distCodeIndex(tok.distance)];
        }
    }

    // Dynamic code construction.
    BlockCodes dyn;
    dyn.litLens = buildCodeLengths(litFreq, 15);
    dyn.distLens = buildCodeLengths(distFreq, 15);
    dyn.litLens.resize(numLitCodes);
    dyn.distLens.resize(numDistCodes);

    int hlit = numLitCodes;
    while (hlit > 257 && dyn.litLens[hlit - 1] == 0)
        --hlit;
    int hdist = numDistCodes;
    while (hdist > 1 && dyn.distLens[hdist - 1] == 0)
        --hdist;

    std::vector<uint8_t> seq(dyn.litLens.begin(),
                             dyn.litLens.begin() + hlit);
    seq.insert(seq.end(), dyn.distLens.begin(),
               dyn.distLens.begin() + hdist);
    auto rle = rleCodeLengths(seq);

    std::vector<uint64_t> clcFreq(19, 0);
    for (const auto &item : rle)
        ++clcFreq[item.symbol];
    auto clcLens = buildCodeLengths(clcFreq, 7);
    clcLens.resize(19);
    auto clcCodes = canonicalCodes(clcLens);

    int hclen = 19;
    while (hclen > 4 && clcLens[clcOrder[hclen - 1]] == 0)
        --hclen;

    uint64_t dynHeaderBits = 5 + 5 + 4 + 3ull * hclen;
    for (const auto &item : rle)
        dynHeaderBits += clcLens[item.symbol] + item.extraBits;
    uint64_t dynCost = dynHeaderBits +
                       payloadCost(litFreq, distFreq, dyn.litLens,
                                   dyn.distLens);

    // Fixed-code cost.
    BlockCodes fixed;
    fixed.litLens = fixedLitLengths();
    fixed.distLens = fixedDistLengths();
    uint64_t fixedCost = payloadCost(
        litFreq, distFreq,
        std::span<const uint8_t>(fixed.litLens.data(), numLitCodes),
        std::span<const uint8_t>(fixed.distLens.data(),
                                 numDistCodes));

    // Stored cost (only possible for blocks within the 64 KiB limit).
    uint64_t storedCost = raw.size() <= 0xffff
        ? 7 + 32 + 8ull * raw.size()
        : ~0ull;

    out.put(final ? 1 : 0, 1);
    if (storedCost < dynCost + 3 && storedCost < fixedCost + 3) {
        out.put(0, 2);  // BTYPE=00
        out.alignToByte();
        out.byte(static_cast<uint8_t>(raw.size()));
        out.byte(static_cast<uint8_t>(raw.size() >> 8));
        out.byte(static_cast<uint8_t>(~raw.size()));
        out.byte(static_cast<uint8_t>(~raw.size() >> 8));
        for (uint8_t b : raw)
            out.byte(b);
        return;
    }
    if (fixedCost <= dynCost) {
        out.put(1, 2);  // BTYPE=01
        fixed.litCodes = canonicalCodes(fixed.litLens);
        fixed.distCodes = canonicalCodes(fixed.distLens);
        emitTokens(out, tokens, fixed);
        return;
    }
    out.put(2, 2);  // BTYPE=10
    out.put(hlit - 257, 5);
    out.put(hdist - 1, 5);
    out.put(hclen - 4, 4);
    for (int i = 0; i < hclen; ++i)
        out.put(clcLens[clcOrder[i]], 3);
    for (const auto &item : rle) {
        out.putHuff(clcCodes[item.symbol], clcLens[item.symbol]);
        if (item.extraBits > 0)
            out.put(item.extra, item.extraBits);
    }
    dyn.litCodes = canonicalCodes(dyn.litLens);
    dyn.distCodes = canonicalCodes(dyn.distLens);
    emitTokens(out, tokens, dyn);
}

} // namespace

std::vector<uint8_t>
deflateCompress(std::span<const uint8_t> data, const Lz77Config &cfg)
{
    util::BitWriter out;
    if (data.empty()) {
        // A single empty stored block.
        out.put(1, 1);
        out.put(0, 2);
        out.alignToByte();
        out.byte(0);
        out.byte(0);
        out.byte(0xff);
        out.byte(0xff);
        return out.take();
    }

    auto tokens = lz77Tokenize(data, cfg);

    // Split the token stream into blocks so each gets Huffman codes
    // fitted to its local statistics.
    constexpr size_t tokensPerBlock = 32768;
    size_t rawStart = 0;
    for (size_t begin = 0; begin < tokens.size();
         begin += tokensPerBlock) {
        size_t end = std::min(tokens.size(), begin + tokensPerBlock);
        size_t rawLen = 0;
        for (size_t i = begin; i < end; ++i)
            rawLen += tokens[i].isLiteral() ? 1 : tokens[i].length;
        bool final = end == tokens.size();
        emitBlock(out,
                  std::span<const Lz77Token>(tokens.data() + begin,
                                             end - begin),
                  data.subspan(rawStart, rawLen), final);
        rawStart += rawLen;
    }
    FCC_ASSERT(rawStart == data.size(),
               "token stream does not cover the input");
    return out.take();
}

std::vector<uint8_t>
inflate(std::span<const uint8_t> data)
{
    // One-shot convenience over the resumable decoder — a single
    // decoder implementation serves both the batch and streaming
    // paths (and the zlib cross-validation tests cover both).
    InflateStream stream(data);
    std::vector<uint8_t> out;
    uint8_t buf[1 << 16];
    size_t n;
    while ((n = stream.read(buf, sizeof(buf))) > 0)
        out.insert(out.end(), buf, buf + n);
    return out;
}

std::vector<uint8_t>
zlibCompress(std::span<const uint8_t> data, const Lz77Config &cfg)
{
    std::vector<uint8_t> out;
    out.push_back(0x78);  // CM=8, CINFO=7 (32K window)
    out.push_back(0x9c);  // FCHECK making the pair % 31 == 0
    auto body = deflateCompress(data, cfg);
    out.insert(out.end(), body.begin(), body.end());
    uint32_t adler = util::Adler32::of(data);
    out.push_back(static_cast<uint8_t>(adler >> 24));
    out.push_back(static_cast<uint8_t>(adler >> 16));
    out.push_back(static_cast<uint8_t>(adler >> 8));
    out.push_back(static_cast<uint8_t>(adler));
    return out;
}

std::vector<uint8_t>
zlibDecompress(std::span<const uint8_t> data)
{
    util::require(data.size() >= 6, "zlib: stream too short");
    uint8_t cmf = data[0], flg = data[1];
    util::require((cmf & 0x0f) == 8, "zlib: not deflate");
    util::require((static_cast<unsigned>(cmf) * 256 + flg) % 31 == 0,
                  "zlib: bad header check");
    util::require(!(flg & 0x20), "zlib: preset dictionary unsupported");
    auto body = inflate(data.subspan(2, data.size() - 6));
    const uint8_t *t = data.data() + data.size() - 4;
    uint32_t expect = static_cast<uint32_t>(t[0]) << 24 |
                      static_cast<uint32_t>(t[1]) << 16 |
                      static_cast<uint32_t>(t[2]) << 8 | t[3];
    util::require(util::Adler32::of(body) == expect,
                  "zlib: Adler-32 mismatch");
    return body;
}

std::vector<uint8_t>
gzipCompress(std::span<const uint8_t> data, const Lz77Config &cfg)
{
    std::vector<uint8_t> out = {
        0x1f, 0x8b,  // magic
        8,           // CM = deflate
        0,           // FLG
        0, 0, 0, 0,  // MTIME
        0,           // XFL
        255,         // OS = unknown
    };
    auto body = deflateCompress(data, cfg);
    out.insert(out.end(), body.begin(), body.end());
    uint32_t crc = util::Crc32::of(data);
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(crc >> (8 * i)));
    uint32_t isize = static_cast<uint32_t>(data.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(isize >> (8 * i)));
    return out;
}

std::vector<uint8_t>
gzipDecompress(std::span<const uint8_t> data)
{
    util::require(data.size() >= 18, "gzip: stream too short");
    size_t pos = gzipHeaderSize(data);
    util::require(data.size() >= pos + 8, "gzip: truncated member");

    auto body = inflate(data.subspan(pos, data.size() - pos - 8));
    const uint8_t *t = data.data() + data.size() - 8;
    uint32_t crc = 0, isize = 0;
    for (int i = 0; i < 4; ++i) {
        crc |= static_cast<uint32_t>(t[i]) << (8 * i);
        isize |= static_cast<uint32_t>(t[4 + i]) << (8 * i);
    }
    util::require(util::Crc32::of(body) == crc,
                  "gzip: CRC-32 mismatch");
    util::require(static_cast<uint32_t>(body.size()) == isize,
                  "gzip: length mismatch");
    return body;
}

std::vector<uint8_t>
GzipTraceCompressor::compress(const trace::Trace &trace) const
{
    return gzipCompress(trace::writeTsh(trace));
}

trace::Trace
GzipTraceCompressor::decompress(std::span<const uint8_t> data) const
{
    return trace::readTsh(gzipDecompress(data));
}

} // namespace fcc::codec::deflate
