/**
 * @file
 * Canonical, length-limited Huffman coding as required by DEFLATE
 * (RFC 1951): optimal code-length construction via the package-merge
 * algorithm, canonical code assignment, and a count-based decoder.
 */

#ifndef FCC_CODEC_DEFLATE_HUFFMAN_HPP
#define FCC_CODEC_DEFLATE_HUFFMAN_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "util/bitstream.hpp"

namespace fcc::codec::deflate {

/**
 * Compute optimal code lengths bounded by @p maxBits for the given
 * symbol frequencies (package-merge / coin-collector algorithm).
 *
 * Symbols with zero frequency get length 0 (not coded). A single
 * used symbol gets length 1, as DEFLATE requires at least one bit.
 *
 * @throws fcc::util::Error if the used symbols cannot fit in
 *         @p maxBits (i.e. count > 2^maxBits).
 */
std::vector<uint8_t>
buildCodeLengths(std::span<const uint64_t> freqs, int maxBits);

/**
 * Assign canonical codes (RFC 1951 §3.2.2): shorter codes first,
 * ties broken by symbol order. lengths[i] == 0 yields code 0.
 */
std::vector<uint16_t>
canonicalCodes(std::span<const uint8_t> lengths);

/**
 * Canonical Huffman decoder over code lengths, bit-serial in the
 * style of Mark Adler's puff: O(code length) per symbol with no
 * tables beyond per-length counts.
 */
class HuffmanDecoder
{
  public:
    /**
     * Build from code lengths. Verifies the code is neither over-
     * nor under-subscribed (incomplete codes are only tolerated when
     * @p allowIncomplete — DEFLATE permits one unused distance code).
     *
     * @throws fcc::util::Error on an invalid code description.
     */
    explicit HuffmanDecoder(std::span<const uint8_t> lengths,
                            bool allowIncomplete = false);

    /**
     * Decode one symbol from @p bits.
     * @throws fcc::util::Error on truncation or invalid code.
     */
    int decode(util::BitReader &bits) const;

    /** Number of symbols with non-zero length. */
    size_t usedSymbols() const { return symbols_.size(); }

  private:
    static constexpr int maxBitsSupported = 15;
    // counts_[l] = number of codes of length l.
    uint16_t counts_[maxBitsSupported + 1] = {};
    std::vector<uint16_t> symbols_;  // canonical order
};

} // namespace fcc::codec::deflate

#endif // FCC_CODEC_DEFLATE_HUFFMAN_HPP
