/**
 * @file
 * Resumable DEFLATE decoder (block state machine over a 32 KiB ring
 * that doubles as back-reference window and pending-output buffer)
 * and the streaming gzip member reader layered on top of it.
 */

#include "codec/deflate/inflate_stream.hpp"

#include <algorithm>
#include <cstring>

#include "codec/deflate/rfc1951.hpp"
#include "util/error.hpp"

namespace fcc::codec::deflate {

namespace {

/** Largest LZ77 match — the most one decoded symbol can emit. */
constexpr size_t maxMatchRun = 258;

} // namespace

// ---- InflateStream -------------------------------------------------

InflateStream::InflateStream(std::span<const uint8_t> compressed)
    : bits_(compressed), window_(windowSize)
{}

void
InflateStream::emit(uint8_t b)
{
    window_[windowFill_ & windowMask] = b;
    ++windowFill_;
}

void
InflateStream::copyMatch(uint32_t dist, uint32_t len)
{
    util::require(dist <= windowFill_,
                  "inflate: distance beyond output");
    // Byte-serial on purpose: overlapping matches (dist < len) must
    // see the bytes the copy itself produces.
    for (uint32_t i = 0; i < len; ++i)
        emit(window_[(windowFill_ - dist) & windowMask]);
}

/**
 * Decode forward until the ring holds a comfortable amount of pending
 * output or the final block ends. The cap keeps undrained bytes from
 * being overwritten: pending never exceeds windowSize.
 */
void
InflateStream::decodeMore()
{
    const size_t cap = windowSize - maxMatchRun;
    while (!done_ && pendingSize() < cap) {
        if (!inBlock_) {
            // Block header: final bit + type.
            bool final = bits_.get(1) != 0;
            uint32_t btype = bits_.get(2);
            util::require(btype != 3, "inflate: reserved block type");
            inBlock_ = true;
            finalBlock_ = final;
            storedBlock_ = btype == 0;
            if (storedBlock_) {
                bits_.alignToByte();
                uint32_t len = bits_.byte();
                len |= static_cast<uint32_t>(bits_.byte()) << 8;
                uint32_t nlen = bits_.byte();
                nlen |= static_cast<uint32_t>(bits_.byte()) << 8;
                util::require((len ^ nlen) == 0xffff,
                              "inflate: stored block LEN/NLEN "
                              "mismatch");
                storedLeft_ = len;
            } else if (btype == 1) {
                auto litLens = fixedLitLengths();
                auto distLens = fixedDistLengths();
                lit_ = std::make_unique<HuffmanDecoder>(litLens);
                dist_ = std::make_unique<HuffmanDecoder>(
                    distLens, /*allowIncomplete=*/true);
            } else {
                uint32_t hlit = bits_.get(5) + 257;
                uint32_t hdist = bits_.get(5) + 1;
                uint32_t hclen = bits_.get(4) + 4;
                util::require(hlit <= 286 && hdist <= 30,
                              "inflate: bad HLIT/HDIST");
                std::vector<uint8_t> clcLens(19, 0);
                for (uint32_t i = 0; i < hclen; ++i)
                    clcLens[clcOrder[i]] =
                        static_cast<uint8_t>(bits_.get(3));
                HuffmanDecoder clc(clcLens);

                std::vector<uint8_t> seq;
                seq.reserve(hlit + hdist);
                while (seq.size() < hlit + hdist) {
                    int sym = clc.decode(bits_);
                    if (sym < 16) {
                        seq.push_back(static_cast<uint8_t>(sym));
                    } else if (sym == 16) {
                        util::require(!seq.empty(),
                                      "inflate: repeat with no "
                                      "previous length");
                        uint32_t rep = 3 + bits_.get(2);
                        uint8_t prev = seq.back();
                        for (uint32_t r = 0; r < rep; ++r)
                            seq.push_back(prev);
                    } else if (sym == 17) {
                        uint32_t rep = 3 + bits_.get(3);
                        seq.insert(seq.end(), rep, 0);
                    } else {
                        uint32_t rep = 11 + bits_.get(7);
                        seq.insert(seq.end(), rep, 0);
                    }
                }
                util::require(seq.size() == hlit + hdist,
                              "inflate: code length overflow");
                lit_ = std::make_unique<HuffmanDecoder>(
                    std::span<const uint8_t>(seq.data(), hlit));
                dist_ = std::make_unique<HuffmanDecoder>(
                    std::span<const uint8_t>(seq.data() + hlit,
                                             hdist),
                    /*allowIncomplete=*/true);
            }
            continue;
        }

        if (storedBlock_) {
            size_t room = windowSize - pendingSize();
            size_t take = std::min<size_t>(storedLeft_, room);
            for (size_t i = 0; i < take; ++i)
                emit(bits_.byte());
            storedLeft_ -= static_cast<uint32_t>(take);
            if (storedLeft_ == 0) {
                inBlock_ = false;
                done_ = finalBlock_;
            }
            continue;
        }

        // Huffman-coded block: one symbol per iteration.
        int sym = lit_->decode(bits_);
        if (sym < 256) {
            emit(static_cast<uint8_t>(sym));
        } else if (sym == endOfBlock) {
            inBlock_ = false;
            lit_.reset();
            dist_.reset();
            done_ = finalBlock_;
        } else {
            util::require(sym <= 285, "inflate: bad length symbol");
            int li = sym - 257;
            uint32_t len = lengthBase[li] + bits_.get(lengthExtra[li]);
            int dsym = dist_->decode(bits_);
            util::require(dsym < numDistCodes,
                          "inflate: bad distance symbol");
            uint32_t d = distBase[dsym] + bits_.get(distExtra[dsym]);
            copyMatch(d, len);
        }
    }
}

size_t
InflateStream::read(uint8_t *out, size_t maxLen)
{
    size_t total = 0;
    while (total < maxLen) {
        if (pendingSize() == 0) {
            if (done_)
                break;
            decodeMore();
            if (pendingSize() == 0)
                break;  // done_ just became true with no output
        }
        size_t n = std::min<size_t>(maxLen - total, pendingSize());
        // The pending region may wrap the ring: copy in <= 2 pieces.
        while (n > 0) {
            size_t at = static_cast<size_t>(drained_) & windowMask;
            size_t piece = std::min(n, windowSize - at);
            std::memcpy(out + total, window_.data() + at, piece);
            total += piece;
            drained_ += piece;
            n -= piece;
        }
    }
    return total;
}

// ---- gzip framing --------------------------------------------------

size_t
gzipHeaderSize(std::span<const uint8_t> data)
{
    util::require(data.size() >= 10, "gzip: truncated header");
    util::require(data[0] == 0x1f && data[1] == 0x8b,
                  "gzip: bad magic");
    util::require(data[2] == 8, "gzip: not deflate");
    uint8_t flg = data[3];
    size_t pos = 10;
    if (flg & 0x04) {  // FEXTRA
        util::require(data.size() >= pos + 2,
                      "gzip: truncated FEXTRA");
        uint16_t xlen = static_cast<uint16_t>(data[pos] |
                                              data[pos + 1] << 8);
        pos += 2 + xlen;
        util::require(pos <= data.size(), "gzip: truncated FEXTRA");
    }
    auto skipZeroTerminated = [&data, &pos](const char *what) {
        while (pos < data.size() && data[pos] != 0)
            ++pos;
        util::require(pos < data.size(), what);
        ++pos;
    };
    if (flg & 0x08)  // FNAME
        skipZeroTerminated("gzip: truncated FNAME");
    if (flg & 0x10)  // FCOMMENT
        skipZeroTerminated("gzip: truncated FCOMMENT");
    if (flg & 0x02) {  // FHCRC
        pos += 2;
        util::require(pos <= data.size(), "gzip: truncated FHCRC");
    }
    return pos;
}

GzipInflateSource::GzipInflateSource(
    std::unique_ptr<util::ByteSource> inner)
    : inner_(std::move(inner))
{
    data_ = inner_->contiguous();
    if (data_.empty()) {
        // Source cannot expose its content in place (stdio, gzip-in-
        // gzip); buffer the compressed bytes — still bounded by the
        // compressed size, never the decompressed one.
        uint8_t buf[1 << 16];
        size_t n;
        while ((n = inner_->read(buf, sizeof(buf))) > 0)
            owned_.insert(owned_.end(), buf, buf + n);
        data_ = {owned_.data(), owned_.size()};
    }
    startMember();
}

void
GzipInflateSource::startMember()
{
    pos_ += gzipHeaderSize(data_.subspan(pos_));
    stream_ = std::make_unique<InflateStream>(data_.subspan(pos_));
    crc_ = util::Crc32();
    memberBytes_ = 0;
}

size_t
GzipInflateSource::read(uint8_t *out, size_t maxLen)
{
    if (done_ || maxLen == 0)
        return 0;
    for (;;) {
        size_t n = stream_->read(out, maxLen);
        if (n > 0) {
            crc_.update({out, n});
            memberBytes_ += n;
            return n;
        }

        // Member finished: verify the CRC-32 / ISIZE trailer.
        size_t end = pos_ + stream_->compressedBytesConsumed();
        util::require(data_.size() - end >= 8,
                      "gzip: truncated member trailer");
        const uint8_t *t = data_.data() + end;
        uint32_t wantCrc = 0, wantSize = 0;
        for (int i = 0; i < 4; ++i) {
            wantCrc |= static_cast<uint32_t>(t[i]) << (8 * i);
            wantSize |= static_cast<uint32_t>(t[4 + i]) << (8 * i);
        }
        util::require(crc_.value() == wantCrc,
                      "gzip: CRC-32 mismatch");
        util::require(static_cast<uint32_t>(memberBytes_) == wantSize,
                      "gzip: length mismatch");
        pos_ = end + 8;
        if (pos_ == data_.size()) {
            done_ = true;
            return 0;
        }
        startMember();  // concatenated members stream transparently
    }
}

} // namespace fcc::codec::deflate
