/**
 * @file
 * Resumable DEFLATE decoding and the streaming gzip byte source.
 *
 * InflateStream is the library's single DEFLATE decoder: it walks the
 * block structure incrementally and hands the caller output in
 * caller-sized chunks, keeping only the 32 KiB back-reference window
 * (plus at most one match, 258 bytes) buffered. The one-shot
 * inflate() in deflate.hpp is a thin loop over it, so the existing
 * zlib cross-validation tests exercise this decoder too.
 *
 * GzipInflateSource layers RFC 1952 member framing on top and plugs
 * into the trace I/O stack as a fcc::util::ByteSource decorator: a
 * gzip-compressed trace is read with memory bounded by the
 * *compressed* size (zero-copy from an mmap'd file) plus the window —
 * the decompressed stream is never materialized.
 */

#ifndef FCC_CODEC_DEFLATE_INFLATE_STREAM_HPP
#define FCC_CODEC_DEFLATE_INFLATE_STREAM_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "codec/deflate/huffman.hpp"
#include "util/bitstream.hpp"
#include "util/checksum.hpp"
#include "util/io.hpp"

namespace fcc::codec::deflate {

/**
 * Incremental DEFLATE (RFC 1951) decoder over a complete compressed
 * buffer. The compressed memory must outlive the stream; output is
 * produced on demand by read().
 */
class InflateStream
{
  public:
    explicit InflateStream(std::span<const uint8_t> compressed);

    /**
     * Decode up to @p maxLen further bytes into @p out.
     * @returns the number of bytes produced; 0 means the final block
     *          has been fully decoded.
     * @throws fcc::util::Error on any malformed construct.
     */
    size_t read(uint8_t *out, size_t maxLen);

    /** True once the final block has been consumed and drained. */
    bool finished() const { return done_ && pendingSize() == 0; }

    /**
     * Bytes of compressed input consumed, rounded up to a whole byte
     * — the offset where container framing (a gzip trailer) resumes.
     * Only meaningful once finished().
     */
    size_t compressedBytesConsumed() const
    {
        return (bits_.bitPosition() + 7) / 8;
    }

  private:
    size_t pendingSize() const { return windowFill_ - drained_; }
    void decodeMore();
    void emit(uint8_t b);
    void copyMatch(uint32_t dist, uint32_t len);

    util::BitReader bits_;

    // 32 KiB ring: both the LZ77 back-reference window and the
    // pending-output buffer (bytes decoded but not yet read()).
    static constexpr size_t windowSize = 1u << 15;
    static constexpr size_t windowMask = windowSize - 1;
    std::vector<uint8_t> window_;
    uint64_t windowFill_ = 0;  ///< total bytes decoded so far
    uint64_t drained_ = 0;     ///< total bytes handed to read()

    // Per-block state (valid while inBlock_).
    bool done_ = false;
    bool inBlock_ = false;
    bool finalBlock_ = false;
    bool storedBlock_ = false;
    uint32_t storedLeft_ = 0;
    std::unique_ptr<HuffmanDecoder> lit_, dist_;
};

/**
 * Streaming gzip (RFC 1952) reader as a ByteSource decorator.
 *
 * Accepts one or more concatenated members, verifies each member's
 * CRC-32 and ISIZE trailer as the stream is drained, and rejects
 * trailing garbage. When the inner source exposes its content
 * contiguously (mmap, memory buffer) no copy of the compressed data
 * is made.
 */
class GzipInflateSource : public util::ByteSource
{
  public:
    /** @throws fcc::util::Error when the first member header is bad. */
    explicit GzipInflateSource(std::unique_ptr<util::ByteSource> inner);

    size_t read(uint8_t *out, size_t maxLen) override;

  private:
    void startMember();

    std::unique_ptr<util::ByteSource> inner_;  ///< keeps mmap alive
    std::vector<uint8_t> owned_;               ///< slurped fallback
    std::span<const uint8_t> data_;            ///< whole gzip file
    size_t pos_ = 0;                           ///< current member offset
    std::unique_ptr<InflateStream> stream_;
    util::Crc32 crc_;
    uint64_t memberBytes_ = 0;
    bool done_ = false;
};

/**
 * Parse a gzip member header starting at @p data .
 * @returns the size of the header (offset of the deflate payload).
 * @throws fcc::util::Error on a malformed or truncated header.
 */
size_t gzipHeaderSize(std::span<const uint8_t> data);

} // namespace fcc::codec::deflate

#endif // FCC_CODEC_DEFLATE_INFLATE_STREAM_HPP
