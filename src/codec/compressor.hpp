/**
 * @file
 * Common interface of every packet-trace compression method under
 * study (paper §5): GZIP/deflate, Van Jacobson, Peuhkuri and the
 * proposed flow-clustering compressor.
 *
 * The unit of comparison is the serialized TSH trace: ratios are
 * compressed bytes divided by the 44-byte-per-packet TSH encoding of
 * the same trace, matching the paper's "percentage of the original
 * TSH file size".
 */

#ifndef FCC_CODEC_COMPRESSOR_HPP
#define FCC_CODEC_COMPRESSOR_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace fcc::codec {

namespace fcc {
struct FccConfig;
}

/** Abstract packet-trace compressor. */
class TraceCompressor
{
  public:
    virtual ~TraceCompressor() = default;

    /** Human-readable method name ("gzip", "vj", ...). */
    virtual std::string name() const = 0;

    /** True when decompress() recovers the input exactly. */
    virtual bool lossless() const = 0;

    /** Compress a trace into a self-contained byte stream. */
    virtual std::vector<uint8_t>
    compress(const trace::Trace &trace) const = 0;

    /**
     * Reconstruct a trace from compress() output.
     *
     * Lossy methods return a statistically equivalent trace rather
     * than the original packets.
     *
     * @throws fcc::util::Error on malformed input.
     */
    virtual trace::Trace
    decompress(std::span<const uint8_t> data) const = 0;
};

/** Size accounting for one codec on one trace. */
struct CompressionReport
{
    std::string codec;
    uint64_t originalTshBytes = 0;
    uint64_t compressedBytes = 0;

    /** compressed size as a fraction of the TSH original. */
    double
    ratio() const
    {
        return originalTshBytes
            ? static_cast<double>(compressedBytes) /
                  static_cast<double>(originalTshBytes)
            : 0.0;
    }
};

/** Run @p codec on @p trace and account sizes against TSH. */
CompressionReport measure(const TraceCompressor &codec,
                          const trace::Trace &trace);

/**
 * Registry of all built-in codecs, in the order the paper's Figure 1
 * presents them (gzip, vj, peuhkuri, fcc).
 */
std::vector<std::unique_ptr<TraceCompressor>> makeAllCodecs();

/** Same registry with the proposed codec under a custom config. */
std::vector<std::unique_ptr<TraceCompressor>>
makeAllCodecs(const fcc::FccConfig &fccConfig);

} // namespace fcc::codec

#endif // FCC_CODEC_COMPRESSOR_HPP
