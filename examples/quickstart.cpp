/**
 * @file
 * Quickstart: the 60-second tour of the library.
 *
 *   1. synthesize a small Web header trace (or load your own);
 *   2. compress it with the flow-clustering compressor (FCC);
 *   3. write the compressed bytes to disk and read them back;
 *   4. decompress and compare the traces statistically.
 *
 * Build & run:  ./build/examples/quickstart [output.fcc]
 */

#include <cstdio>
#include <fstream>

#include "codec/fcc/fcc_codec.hpp"
#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;

int
main(int argc, char **argv)
{
    const char *outPath = argc > 1 ? argv[1] : "quickstart.fcc";

    // 1. A deterministic synthetic Web trace: ~10 seconds of HTTP
    //    connections (SYN/SYN+ACK handshakes, requests, responses,
    //    FIN/RST teardowns) captured as TCP/IP headers.
    trace::WebGenConfig genCfg;
    genCfg.seed = 42;
    genCfg.durationSec = 10.0;
    genCfg.flowsPerSec = 100.0;
    trace::WebTrafficGenerator generator(genCfg);
    trace::Trace original = generator.generate();
    std::printf("generated %zu packets over %.1f s\n",
                original.size(), original.durationSec());

    // 2. Compress. The compressor clusters short TCP flows by their
    //    S-value vectors and stores one ~8-byte record per flow.
    codec::fcc::FccTraceCompressor compressor;
    codec::fcc::FccCompressStats stats;
    std::vector<uint8_t> compressed =
        compressor.compressWithStats(original, stats);

    uint64_t tshBytes = original.size() * trace::tshRecordBytes;
    std::printf("TSH size: %llu bytes, compressed: %zu bytes "
                "(ratio %.2f%%)\n",
                static_cast<unsigned long long>(tshBytes),
                compressed.size(),
                100.0 * static_cast<double>(compressed.size()) /
                    static_cast<double>(tshBytes));
    std::printf("flows: %llu (%llu short in %llu clusters, "
                "%llu long)\n",
                static_cast<unsigned long long>(stats.flows),
                static_cast<unsigned long long>(stats.shortFlows),
                static_cast<unsigned long long>(
                    stats.shortTemplatesCreated),
                static_cast<unsigned long long>(stats.longFlows));

    // 3. Round trip through a file.
    {
        std::ofstream out(outPath, std::ios::binary);
        out.write(reinterpret_cast<const char *>(compressed.data()),
                  static_cast<std::streamsize>(compressed.size()));
    }
    std::vector<uint8_t> fromDisk;
    {
        std::ifstream in(outPath, std::ios::binary);
        fromDisk.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    }
    std::printf("wrote and re-read %s (%zu bytes)\n", outPath,
                fromDisk.size());

    // 4. Decompress and compare flow populations. The method is
    //    lossy, but flow structure is preserved exactly and the
    //    per-packet statistics closely.
    trace::Trace restored = compressor.decompress(fromDisk);
    flow::FlowTable table;
    auto origStats =
        flow::computeFlowStats(table.assemble(original), original);
    auto backStats =
        flow::computeFlowStats(table.assemble(restored), restored);
    std::printf("\n%-28s %12s %12s\n", "metric", "original",
                "restored");
    std::printf("%-28s %12zu %12zu\n", "packets", original.size(),
                restored.size());
    std::printf("%-28s %12llu %12llu\n", "flows",
                static_cast<unsigned long long>(origStats.flows),
                static_cast<unsigned long long>(backStats.flows));
    std::printf("%-28s %12.2f %12.2f\n", "mean flow length",
                origStats.meanFlowLength(),
                backStats.meanFlowLength());
    std::printf("%-28s %11.1f%% %11.1f%%\n", "short-flow packets",
                100.0 * origStats.shortPacketShare(),
                100.0 * backStats.shortPacketShare());
    return 0;
}
