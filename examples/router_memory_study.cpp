/**
 * @file
 * Router memory-performance study — the paper's §6 validation as a
 * tool: is a trace reconstructed by the lossy compressor still good
 * enough to drive memory studies of packet-processing kernels?
 *
 * Runs the chosen kernel (route | nat | rtr) over the original,
 * decompressed, random-address and fracexp traces and reports the
 * per-packet access distribution and cache-miss buckets.
 *
 * Usage:
 *   ./build/examples/router_memory_study [route|nat|rtr]
 */

#include <cstdio>
#include <cstring>

#include "experiments/experiments.hpp"
#include "memsim/profile_report.hpp"
#include "util/stats.hpp"

namespace ex = fcc::experiments;
namespace memsim = fcc::memsim;

int
main(int argc, char **argv)
{
    ex::ValidationConfig cfg;
    cfg.webCfg.seed = 11;
    cfg.webCfg.durationSec = 15.0;
    cfg.webCfg.flowsPerSec = 100.0;

    if (argc > 1) {
        if (std::strcmp(argv[1], "nat") == 0)
            cfg.kernel = ex::Kernel::Nat;
        else if (std::strcmp(argv[1], "rtr") == 0)
            cfg.kernel = ex::Kernel::Rtr;
        else if (std::strcmp(argv[1], "route") != 0) {
            std::fprintf(stderr, "usage: %s [route|nat|rtr]\n",
                         argv[0]);
            return 1;
        }
    }

    std::printf("kernel: %s, table: %zu routes, cache: %u KB "
                "%u-way\n\n",
                ex::kernelName(cfg.kernel), cfg.routingEntries,
                cfg.cache.sizeBytes / 1024, cfg.cache.ways);

    auto results = ex::runMemoryValidation(cfg);

    std::printf("%-13s %10s %10s %10s | %s\n", "trace", "mean#acc",
                "p50#acc", "p95#acc", "miss-rate buckets "
                "(0-5/5-10/10-20/>20 %)");
    for (const auto &result : results) {
        fcc::util::Ecdf ecdf;
        for (const auto &sample : result.samples)
            ecdf.add(sample.accesses);
        auto buckets = memsim::missRateBuckets(result.samples);
        std::printf("%-13s %10.1f %10.0f %10.0f |  %5.1f / %5.1f / "
                    "%5.1f / %5.1f\n",
                    ex::validationTraceName(result.trace),
                    memsim::meanAccesses(result.samples),
                    ecdf.quantile(0.5), ecdf.quantile(0.95),
                    100.0 * buckets.share[0],
                    100.0 * buckets.share[1],
                    100.0 * buckets.share[2],
                    100.0 * buckets.share[3]);
    }

    // Summary verdict in the paper's terms.
    fcc::util::Ecdf orig, decomp;
    for (const auto &sample : results[0].samples)
        orig.add(sample.accesses);
    for (const auto &sample : results[1].samples)
        decomp.add(sample.accesses);
    std::printf("\nKS(original, decompressed) = %.3f -> the "
                "reconstructed trace %s\n",
                orig.ksDistance(decomp),
                orig.ksDistance(decomp) < 0.45
                    ? "preserves the memory-access profile"
                    : "DIVERGES from the original");
    return 0;
}
