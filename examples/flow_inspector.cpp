/**
 * @file
 * Flow inspector — explore the §2 characterization interactively:
 * assemble TCP connections from a trace, print their SF vectors,
 * and show how the template store groups them into clusters.
 *
 * Usage:
 *   ./build/examples/flow_inspector              (synthetic trace)
 *   ./build/examples/flow_inspector trace.pcap
 *   ./build/examples/flow_inspector trace.tsh
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "flow/characterize.hpp"
#include "flow/template_store.hpp"
#include "flow/flow_table.hpp"
#include "trace/pcap.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"
#include "util/error.hpp"

using namespace fcc;

namespace {

trace::Trace
loadTrace(int argc, char **argv)
{
    if (argc <= 1) {
        trace::WebGenConfig cfg;
        cfg.seed = 3;
        cfg.durationSec = 5.0;
        cfg.flowsPerSec = 60.0;
        trace::WebTrafficGenerator gen(cfg);
        return gen.generate();
    }
    std::string path = argv[1];
    if (path.ends_with(".pcap"))
        return trace::readPcapFile(path);
    if (path.ends_with(".tsh"))
        return trace::readTshFile(path);
    throw util::Error("unknown trace extension (want .pcap or .tsh)");
}

const char *
flagClassName(flow::FlagClass cls)
{
    switch (cls) {
      case flow::FlagClass::Syn:
        return "SYN";
      case flow::FlagClass::SynAck:
        return "SYN+ACK";
      case flow::FlagClass::Ack:
        return "ACK/data";
      case flow::FlagClass::FinRst:
        return "FIN/RST";
    }
    return "?";
}

} // namespace

int
main(int argc, char **argv)
{
    trace::Trace tr;
    try {
        tr = loadTrace(argc, argv);
    } catch (const util::Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    if (!tr.isTimeOrdered())
        tr.sortByTime();

    flow::FlowTable table;
    auto flows = table.assemble(tr);
    flow::Characterizer chi;
    flow::TemplateStore store;

    std::printf("%zu packets -> %zu connections\n\n", tr.size(),
                flows.size());

    // Show the first few flows in detail.
    size_t shown = 0;
    for (const auto &f : flows) {
        if (shown >= 3 || f.size() > 12)
            continue;
        ++shown;
        std::printf("flow %s:%u <-> %s:%u  (%zu packets)\n",
                    trace::formatIp(f.clientIp).c_str(),
                    f.clientPort,
                    trace::formatIp(f.serverIp).c_str(),
                    f.serverPort, f.size());
        auto sf = chi.characterize(f, tr);
        std::printf("  SF = <");
        for (size_t i = 0; i < sf.size(); ++i)
            std::printf("%s%u", i ? " " : "", sf.values[i]);
        std::printf(">\n");
        for (size_t i = 0; i < f.size(); ++i) {
            auto cls = chi.classify(f, tr, i);
            std::printf("  p%-2zu S=%-3u %-8s %-9s dep=%d  %s\n", i,
                        sf.values[i],
                        f.fromClient[i] ? "c->s" : "s->c",
                        flagClassName(cls.flag), cls.dependent,
                        tr[f.packetIndex[i]].str().c_str());
        }
        std::printf("\n");
    }

    // Cluster everything short and summarize.
    size_t shortFlows = 0;
    for (const auto &f : flows) {
        if (f.size() > 50)
            continue;
        ++shortFlows;
        store.findOrInsert(chi.characterize(f, tr));
    }
    std::printf("template store: %zu short flows -> %zu clusters\n",
                shortFlows, store.size());

    // Top clusters by population.
    std::vector<std::pair<uint64_t, uint32_t>> ranked;
    for (uint32_t i = 0; i < store.size(); ++i)
        ranked.emplace_back(store.populations()[i], i);
    std::sort(ranked.rbegin(), ranked.rend());
    std::printf("top clusters:\n");
    for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
        const auto &tmpl = store.at(ranked[i].second);
        std::printf("  #%u: %llu flows, n=%zu, centre = <",
                    ranked[i].second,
                    static_cast<unsigned long long>(ranked[i].first),
                    tmpl.size());
        for (size_t k = 0; k < tmpl.size() && k < 12; ++k)
            std::printf("%s%u", k ? " " : "", tmpl.values[k]);
        std::printf("%s>\n", tmpl.size() > 12 ? " ..." : "");
    }
    return 0;
}
