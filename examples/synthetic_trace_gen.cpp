/**
 * @file
 * Synthetic packet-trace generator — the tool the paper lists as
 * future work ("implement a synthetic packet trace generator based
 * on the described methodology"). Produces a Web header trace with
 * the §3 aggregate structure and writes it as TSH and/or pcap.
 *
 * Usage:
 *   ./build/examples/synthetic_trace_gen [seconds] [flows/s] [seed]
 *
 * Writes synthetic.tsh and synthetic.pcap in the working directory.
 */

#include <cstdio>
#include <cstdlib>

#include "flow/flow_stats.hpp"
#include "flow/flow_table.hpp"
#include "trace/pcap.hpp"
#include "trace/tsh.hpp"
#include "trace/web_gen.hpp"

using namespace fcc;

int
main(int argc, char **argv)
{
    trace::WebGenConfig cfg;
    cfg.durationSec = argc > 1 ? std::atof(argv[1]) : 30.0;
    cfg.flowsPerSec = argc > 2 ? std::atof(argv[2]) : 100.0;
    cfg.seed = argc > 3
        ? static_cast<uint64_t>(std::atoll(argv[3]))
        : 1u;
    if (cfg.durationSec <= 0 || cfg.flowsPerSec <= 0) {
        std::fprintf(stderr,
                     "usage: %s [seconds>0] [flows/s>0] [seed]\n",
                     argv[0]);
        return 1;
    }

    trace::WebTrafficGenerator gen(cfg);
    trace::Trace tr = gen.generate();

    trace::writeTshFile(tr, "synthetic.tsh");
    trace::writePcapFile(tr, "synthetic.pcap");

    flow::FlowTable table;
    auto stats = flow::computeFlowStats(table.assemble(tr), tr);

    std::printf("wrote synthetic.tsh (%zu records, %zu bytes) and "
                "synthetic.pcap\n",
                tr.size(), tr.size() * trace::tshRecordBytes);
    std::printf("duration:            %.1f s\n", tr.durationSec());
    std::printf("flows:               %llu\n",
                static_cast<unsigned long long>(stats.flows));
    std::printf("mean flow length:    %.1f packets\n",
                stats.meanFlowLength());
    std::printf("flows < 51 packets:  %.1f%%  (paper: 98%%)\n",
                100.0 * stats.shortFlowShare());
    std::printf("short-flow packets:  %.1f%%  (paper: 75%%)\n",
                100.0 * stats.shortPacketShare());
    std::printf("short-flow bytes:    %.1f%%  (paper: 80%%)\n",
                100.0 * stats.shortByteShare());
    return 0;
}
