/**
 * @file
 * fccquery — random access into seekable FCC archives: extract one
 * flow or one time window without inflating the whole file.
 *
 *   fccquery [options] <in.fcc> [<out>]
 *
 * Predicates (AND-combined; no predicate = everything):
 *   --flow A.B.C.D       flows whose stored server (destination)
 *                        address matches — the 5-tuple component
 *                        the lossy codec preserves
 *   --time T0:T1         packets inside [T0, T1] seconds (floats,
 *                        absolute trace time)
 *   --min-packets N      flows of at least N packets
 *
 * Modes and options:
 *   --count              print match counts only (no output file)
 *   --no-index           force the full-decode path (comparison /
 *                        troubleshooting)
 *   --threads N          worker threads (0 = all cores, default)
 *   --out-format F       auto|tsh|pcap|pcapng (default: auto — by
 *                        output extension)
 *   --help               this text
 *
 * On an indexed archive (fcctool --index compress) the tool reads
 * the index block from the file's tail, rules chunks out via the
 * per-chunk summaries (Bloom server fingerprints, timestamp
 * bounds, flow-size maxima) and decodes only the surviving chunks —
 * the "chunks decoded" / "bytes read" lines show the saving. On
 * un-indexed files (FCC1/FCC2/plain FCC3) it falls back to a full
 * decode with identical results. Extracted packets are bit-exact
 * with a full `fcctool decompress` filtered the same way: chunk
 * RNG streams are seeded by original chunk index. See
 * docs/QUERY.md.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "query/query.hpp"
#include "trace/packet.hpp"
#include "util/error.hpp"

using namespace fcc;

namespace {

int
usage(const char *argv0, bool failed)
{
    std::fprintf(
        failed ? stderr : stdout,
        "usage: %s [--flow A.B.C.D] [--time T0:T1] "
        "[--min-packets N]\n"
        "          [--count] [--no-index] [--threads N]\n"
        "          [--out-format auto|tsh|pcap|pcapng] "
        "<in.fcc> [<out>]\n"
        "\n"
        "Extract flows/packets from an FCC archive by predicate\n"
        "(all given predicates must hold):\n"
        "  --flow A.B.C.D    flows with this server (destination)\n"
        "                    address\n"
        "  --time T0:T1      packets between T0 and T1 seconds\n"
        "                    (absolute trace time, floats)\n"
        "  --min-packets N   flows of at least N packets\n"
        "  --count           print counts only; no <out> needed\n"
        "  --no-index        ignore the chunk index (full decode)\n"
        "  --threads N       workers, 0 = all cores (default)\n"
        "  --out-format F    auto|tsh|pcap|pcapng (default auto:\n"
        "                    picked from the <out> extension)\n"
        "  --help            show this text\n",
        argv0);
    return failed ? 2 : 0;
}

/** Parse "T0:T1" in (float) seconds to inclusive microseconds. */
std::pair<uint64_t, uint64_t>
parseTimeWindow(const char *text)
{
    const char *colon = std::strchr(text, ':');
    util::require(colon != nullptr && colon != text &&
                      colon[1] != '\0',
                  "--time expects T0:T1 (seconds)");
    char *end = nullptr;
    double t0 = std::strtod(text, &end);
    util::require(end == colon, "--time: bad T0");
    double t1 = std::strtod(colon + 1, &end);
    util::require(*end == '\0', "--time: bad T1");
    util::require(t0 >= 0 && t1 >= t0,
                  "--time: window must be 0 <= T0 <= T1");
    return {static_cast<uint64_t>(t0 * 1e6),
            static_cast<uint64_t>(t1 * 1e6)};
}

} // namespace

int
main(int argc, char **argv)
{
    codec::fcc::FccConfig cfg;
    query::Predicate pred;
    trace::TraceFormatSpec outFormat;
    bool countOnly = false;
    bool noIndex = false;
    int arg = 1;
    try {
        while (arg < argc && std::strncmp(argv[arg], "--", 2) == 0) {
            if (std::strcmp(argv[arg], "--help") == 0) {
                return usage(argv[0], false);
            } else if (std::strcmp(argv[arg], "--flow") == 0 &&
                       arg + 1 < argc) {
                pred.serverIp = trace::parseIp(argv[arg + 1]);
                arg += 2;
            } else if (std::strcmp(argv[arg], "--time") == 0 &&
                       arg + 1 < argc) {
                pred.timeUs = parseTimeWindow(argv[arg + 1]);
                arg += 2;
            } else if (std::strcmp(argv[arg], "--min-packets") == 0 &&
                       arg + 1 < argc) {
                int n = std::atoi(argv[arg + 1]);
                if (n < 1) {
                    std::fprintf(
                        stderr,
                        "error: --min-packets must be >= 1\n");
                    return 2;
                }
                pred.minFlowPackets = static_cast<uint32_t>(n);
                arg += 2;
            } else if (std::strcmp(argv[arg], "--count") == 0) {
                countOnly = true;
                ++arg;
            } else if (std::strcmp(argv[arg], "--no-index") == 0) {
                noIndex = true;
                ++arg;
            } else if (std::strcmp(argv[arg], "--threads") == 0 &&
                       arg + 1 < argc) {
                int threads = std::atoi(argv[arg + 1]);
                if (threads < 0) {
                    std::fprintf(stderr,
                                 "error: --threads must be >= 0\n");
                    return 2;
                }
                cfg.threads = static_cast<uint32_t>(threads);
                arg += 2;
            } else if (std::strcmp(argv[arg], "--out-format") == 0 &&
                       arg + 1 < argc) {
                outFormat =
                    trace::parseTraceFormatSpec(argv[arg + 1]);
                arg += 2;
            } else {
                return usage(argv[0], true);
            }
        }
    } catch (const util::Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }
    if (arg >= argc || (!countOnly && arg + 1 >= argc))
        return usage(argv[0], true);
    std::string inPath = argv[arg];

    try {
        query::FccArchive archive(inPath, cfg);
        if (archive.indexCorrupt())
            std::fprintf(stderr,
                         "warning: %s: index block is corrupt; "
                         "falling back to full decode\n",
                         inPath.c_str());

        query::QueryStats stats;
        if (countOnly) {
            query::NullTraceSink sink;
            stats = archive.run(pred, sink, noIndex);
        } else {
            auto sink =
                trace::openTraceSink(argv[arg + 1], outFormat);
            stats = archive.run(pred, *sink, noIndex);
        }

        std::printf("matched:        %llu packets in %llu flows\n",
                    static_cast<unsigned long long>(
                        stats.packetsMatched),
                    static_cast<unsigned long long>(
                        stats.flowsMatched));
        std::printf("index:          %s\n",
                    stats.usedIndex ? "used"
                                    : (archive.hasIndex()
                                           ? "bypassed (--no-index)"
                                           : "none (full decode)"));
        std::printf("chunks decoded: %llu / %llu\n",
                    static_cast<unsigned long long>(
                        stats.chunksDecoded),
                    static_cast<unsigned long long>(
                        stats.chunksTotal));
        std::printf("bytes read:     %llu / %llu (%.1f%%)\n",
                    static_cast<unsigned long long>(stats.bytesRead),
                    static_cast<unsigned long long>(stats.fileBytes),
                    stats.fileBytes
                        ? 100.0 * static_cast<double>(
                                      stats.bytesRead) /
                              static_cast<double>(stats.fileBytes)
                        : 0.0);
        return 0;
    } catch (const util::Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
