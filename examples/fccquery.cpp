/**
 * @file
 * fccquery — random access into seekable FCC archives: extract one
 * flow, one time window, or any composed expression without
 * inflating the whole file.
 *
 *   fccquery [options] <in.fcc> [<out>]
 *
 * Two ways to say what you want:
 *   --expr 'E'           a composed query expression (docs/QUERY.md):
 *                        `server in 10.0.0.0/8 and time within
 *                        [0, 60] and not port = 443`
 *   --flow/--time/--min-packets
 *                        the legacy AND-only predicates; they lower
 *                        onto the same expression engine and keep
 *                        their exact semantics
 *
 * Aggregates (--agg) answer from the chunk index and the selected
 * columns without reconstructing packets at all.
 *
 * On an indexed archive (fcctool --index compress) the tool reads
 * the index block from the file's tail, rules chunks out via the
 * per-chunk summaries (Bloom server fingerprints, timestamp bounds,
 * flow-size maxima) and decodes only the surviving chunks — the
 * "chunks decoded" / "bytes read" lines show the saving. On
 * un-indexed files it falls back to a full decode with identical
 * results. Extracted packets are bit-exact with a full `fcctool
 * decompress` filtered the same way: chunk RNG streams are seeded by
 * original chunk index. See docs/QUERY.md.
 */

#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "query/aggregate.hpp"
#include "query/query.hpp"
#include "trace/packet.hpp"
#include "util/error.hpp"

#include "tools/cli.hpp"

using namespace fcc;

namespace {

/** Parse "T0:T1" in (float) seconds to inclusive microseconds. */
std::pair<uint64_t, uint64_t>
parseTimeWindow(const char *text)
{
    const char *colon = std::strchr(text, ':');
    util::require(colon != nullptr && colon != text &&
                      colon[1] != '\0',
                  "--time expects T0:T1 (seconds)");
    char *end = nullptr;
    double t0 = std::strtod(text, &end);
    util::require(end == colon, "--time: bad T0");
    double t1 = std::strtod(colon + 1, &end);
    util::require(*end == '\0', "--time: bad T1");
    util::require(t0 >= 0 && t1 >= t0,
                  "--time: window must be 0 <= T0 <= T1");
    return {static_cast<uint64_t>(t0 * 1e6),
            static_cast<uint64_t>(t1 * 1e6)};
}

} // namespace

int
main(int argc, char **argv)
{
    codec::fcc::FccConfig cfg;
    query::Predicate pred;
    std::optional<std::string> exprText;
    std::optional<query::AggregateKind> aggKind;
    uint32_t topK = 10;
    trace::TraceFormatSpec outFormat;
    bool countOnly = false;
    bool noIndex = false;

    cli::FlagSet flags(
        "[options] <in.fcc> [<out>]",
        "Extract flows/packets from an FCC archive by predicate or\n"
        "expression, or answer an aggregate from the index without\n"
        "reconstructing packets.");
    flags.add("--expr", "'E'",
              "composed query expression (docs/QUERY.md),\n"
              "e.g. 'server in 10.0.0.0/8 and time within\n"
              "[0, 60]'; exclusive with the legacy\n"
              "predicate flags below",
              [&](const char *v) { exprText = v; });
    flags.add("--flow", "A.B.C.D",
              "flows with this server (destination)\n"
              "address — the 5-tuple component the lossy\n"
              "codec preserves",
              [&](const char *v) {
                  pred.serverIp = trace::parseIp(v);
              });
    flags.add("--time", "T0:T1",
              "packets between T0 and T1 seconds\n"
              "(absolute trace time, floats)",
              [&](const char *v) {
                  pred.timeUs = parseTimeWindow(v);
              });
    flags.add("--min-packets", "N",
              "flows of at least N packets",
              [&](const char *v) {
                  pred.minFlowPackets = static_cast<uint32_t>(
                      cli::parseUnsigned("--min-packets", v, 1,
                                         UINT32_MAX));
              });
    flags.add("--agg", "KIND",
              "aggregate query instead of extraction:\n"
              "flow-counts|byte-histogram|top-talkers\n"
              "(answered from index + selected columns,\n"
              "no packet reconstruction; no <out>)",
              [&](const char *v) {
                  aggKind = query::parseAggregateKind(v);
              });
    flags.add("--top", "K", "row budget for --agg top-talkers\n"
                            "(default 10)",
              [&](const char *v) {
                  topK = static_cast<uint32_t>(cli::parseUnsigned(
                      "--top", v, 1, UINT32_MAX));
              });
    flags.add("--count", "print match counts only (no output file)",
              [&] { countOnly = true; });
    flags.add("--no-index",
              "ignore the chunk index (full decode)",
              [&] { noIndex = true; });
    flags.add("--threads", "N", "workers, 0 = all cores (default)",
              [&](const char *v) {
                  cfg.threads = static_cast<uint32_t>(
                      cli::parseUnsigned("--threads", v, 0,
                                         UINT32_MAX));
              });
    flags.add("--out-format", "F",
              "auto|tsh|pcap|pcapng (default auto:\n"
              "picked from the <out> extension)",
              [&](const char *v) {
                  outFormat = trace::parseTraceFormatSpec(v);
              });

    cli::ParseResult parsed = flags.parse(argc, argv);
    if (parsed.exit)
        return parsed.code;
    int arg = parsed.next;

    bool needsOut = !countOnly && !aggKind.has_value();
    if (arg >= argc || (needsOut && arg + 1 >= argc)) {
        flags.printHelp(argv[0], stderr);
        return 2;
    }
    if (exprText.has_value() && !pred.matchAll()) {
        std::fprintf(stderr,
                     "error: --expr is exclusive with "
                     "--flow/--time/--min-packets\n");
        return 2;
    }
    std::string inPath = argv[arg];

    try {
        // The same single config check every entry point runs.
        cfg.validate();
        query::Expr expr = exprText.has_value()
                               ? query::parseExpr(*exprText)
                               : pred.toExpr();

        query::FccArchive archive(inPath, cfg);
        if (archive.indexCorrupt())
            std::fprintf(stderr,
                         "warning: %s: index block is corrupt; "
                         "falling back to full decode\n",
                         inPath.c_str());

        if (aggKind.has_value()) {
            query::AggregateRequest req;
            req.kind = *aggKind;
            req.expr = expr;
            req.topK = topK;
            query::AggregateResult result =
                archive.aggregate(req);
            std::fputs(
                query::renderAggregate(result, req).c_str(),
                stdout);
            std::printf(
                "bytes touched:  %llu / %llu (reconstruction "
                "would read %llu)\n",
                static_cast<unsigned long long>(
                    result.stats.bytesTouched),
                static_cast<unsigned long long>(
                    result.stats.fileBytes),
                static_cast<unsigned long long>(
                    result.stats.reconstructBytes));
            return 0;
        }

        query::QueryStats stats;
        if (countOnly) {
            query::NullTraceSink sink;
            stats = archive.run(expr, sink, noIndex);
        } else {
            auto sink =
                trace::openTraceSink(argv[arg + 1], outFormat);
            stats = archive.run(expr, *sink, noIndex);
        }

        std::printf("matched:        %llu packets in %llu flows\n",
                    static_cast<unsigned long long>(
                        stats.packetsMatched),
                    static_cast<unsigned long long>(
                        stats.flowsMatched));
        std::printf("index:          %s\n",
                    stats.usedIndex ? "used"
                                    : (archive.hasIndex()
                                           ? "bypassed (--no-index)"
                                           : "none (full decode)"));
        std::printf("chunks decoded: %llu / %llu\n",
                    static_cast<unsigned long long>(
                        stats.chunksDecoded),
                    static_cast<unsigned long long>(
                        stats.chunksTotal));
        std::printf("bytes read:     %llu / %llu (%.1f%%)\n",
                    static_cast<unsigned long long>(stats.bytesRead),
                    static_cast<unsigned long long>(stats.fileBytes),
                    stats.fileBytes
                        ? 100.0 * static_cast<double>(
                                      stats.bytesRead) /
                              static_cast<double>(stats.fileBytes)
                        : 0.0);
        return 0;
    } catch (const util::Error &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
